package light

import "light/internal/gen"

// The synthetic generators are exported so downstream users (and the
// examples) can produce data graphs without external datasets. All are
// deterministic for a given seed and return degree-ordered graphs.

// GenerateBarabasiAlbert returns a preferential-attachment graph on n
// vertices with k edges per new vertex — a power-law degree distribution
// like social networks.
func GenerateBarabasiAlbert(n, k int, seed int64) *Graph {
	return newGraph(gen.BarabasiAlbert(n, k, seed), nil)
}

// GenerateErdosRenyi returns G(n, m): m uniform random edges on n
// vertices.
func GenerateErdosRenyi(n, m int, seed int64) *Graph {
	return newGraph(gen.ErdosRenyi(n, m, seed), nil)
}

// GenerateRMAT returns an R-MAT graph with 2^scale vertices and about
// edgeFactor·2^scale edges — a skewed, web-like degree distribution.
func GenerateRMAT(scale, edgeFactor int, seed int64) *Graph {
	return newGraph(gen.RMAT(scale, edgeFactor, seed), nil)
}

// GenerateComplete returns the complete graph K_n.
func GenerateComplete(n int) *Graph {
	return newGraph(gen.Complete(n), nil)
}

// GenerateGrid returns the rows×cols 2D grid graph.
func GenerateGrid(rows, cols int) *Graph {
	return newGraph(gen.Grid(rows, cols), nil)
}
