// Benchmarks mirroring every table and figure of the paper's evaluation
// (Section VIII), one bench family per experiment, on shrunken versions
// of the synthetic datasets so `go test -bench=.` finishes in minutes.
// The full-size experiment harness is cmd/benchpaper; EXPERIMENTS.md
// records paper-vs-measured for both.
package light

import (
	"fmt"
	"testing"
	"time"

	"light/internal/baselines"
	"light/internal/bfsjoin"
	"light/internal/engine"
	"light/internal/estimate"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/parallel"
	"light/internal/pattern"
	"light/internal/plan"
)

// Fast dataset stand-ins (same generators as gen.Suite, smaller).
var (
	ytFast = func() *graph.Graph { return gen.BarabasiAlbert(1200, 3, 101) }
	ljFast = func() *graph.Graph { return gen.BarabasiAlbert(1600, 7, 103) }
)

// pinnedPi mirrors cmd/benchpaper's π¹ (the paper's fixed orders for the
// individual-technique experiments).
var pinnedPi = map[string][]pattern.Vertex{
	"P2": {0, 2, 1, 3},
	"P4": {0, 1, 4, 2, 3},
	"P6": {0, 2, 1, 3, 4},
}

func pinnedPlan(b *testing.B, p *pattern.Pattern, mode plan.Mode) *plan.Plan {
	b.Helper()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, pinnedPi[shortName(p)], mode)
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

func shortName(p *pattern.Pattern) string {
	name := p.Name()
	for i := 0; i < len(name); i++ {
		if name[i] == '-' {
			return name[:i]
		}
	}
	return name
}

// BenchmarkFig4 measures the serial execution time of every algorithm in
// the Fig 4 comparison on (P2, yt-fast) and (P4, lj-fast).
func BenchmarkFig4(b *testing.B) {
	cases := []struct {
		data func() *graph.Graph
		dn   string
		pat  *pattern.Pattern
	}{
		{ytFast, "yt", pattern.P2()},
		{ljFast, "lj", pattern.P4()},
	}
	for _, c := range cases {
		g := c.data()
		for _, mode := range []plan.Mode{plan.ModeSE, plan.ModeLM, plan.ModeMSC, plan.ModeLIGHT} {
			pl := pinnedPlan(b, c.pat, mode)
			b.Run(fmt.Sprintf("%s/%s/%s", c.dn, shortName(c.pat), mode.Name()), func(b *testing.B) {
				e := engine.New(g, pl, engine.Options{Kernel: intersect.KindMerge})
				for i := 0; i < b.N; i++ {
					if _, err := e.Run(nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("%s/%s/EH", c.dn, shortName(c.pat)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baselines.EH(g, c.pat, baselines.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/%s/CFL", c.dn, shortName(c.pat)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baselines.CFL(g, c.pat, baselines.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5 reports the deterministic set-intersection counts of
// SE/LM/MSC/LIGHT as a custom metric (intersections/op).
func BenchmarkFig5(b *testing.B) {
	g := ljFast()
	for _, pat := range []*pattern.Pattern{pattern.P2(), pattern.P4(), pattern.P6()} {
		for _, mode := range []plan.Mode{plan.ModeSE, plan.ModeLM, plan.ModeMSC, plan.ModeLIGHT} {
			pl := pinnedPlan(b, pat, mode)
			b.Run(fmt.Sprintf("%s/%s", shortName(pat), mode.Name()), func(b *testing.B) {
				e := engine.New(g, pl, engine.Options{Kernel: intersect.KindMerge})
				var ints uint64
				for i := 0; i < b.N; i++ {
					res, err := e.Run(nil)
					if err != nil {
						b.Fatal(err)
					}
					ints = res.Stats.Intersections
				}
				b.ReportMetric(float64(ints), "intersections/op")
			})
		}
	}
}

// BenchmarkFig6 compares the intersection kernels inside LIGHT.
func BenchmarkFig6(b *testing.B) {
	g := ljFast()
	for _, pat := range []*pattern.Pattern{pattern.P2(), pattern.P4()} {
		pl := pinnedPlan(b, pat, plan.ModeLIGHT)
		for _, k := range []intersect.Kind{intersect.KindMerge, intersect.KindMergeBlock, intersect.KindHybrid, intersect.KindHybridBlock} {
			b.Run(fmt.Sprintf("%s/%s", shortName(pat), k), func(b *testing.B) {
				e := engine.New(g, pl, engine.Options{Kernel: k})
				for i := 0; i < b.N; i++ {
					if _, err := e.Run(nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3 reports the galloping share under the Hybrid kernel.
func BenchmarkTable3(b *testing.B) {
	g := ytFast()
	for _, pat := range []*pattern.Pattern{pattern.P2(), pattern.P4(), pattern.P6()} {
		pl := pinnedPlan(b, pat, plan.ModeLIGHT)
		b.Run(shortName(pat), func(b *testing.B) {
			e := engine.New(g, pl, engine.Options{Kernel: intersect.KindHybrid})
			var pct float64
			for i := 0; i < b.N; i++ {
				res, err := e.Run(nil)
				if err != nil {
					b.Fatal(err)
				}
				pct = res.Stats.GallopingPercent()
			}
			b.ReportMetric(pct, "galloping%")
		})
	}
}

// BenchmarkFig7 scales the worker count (thread-scaling shape depends on
// the machine's core count; see EXPERIMENTS.md).
func BenchmarkFig7(b *testing.B) {
	g := ljFast()
	pat := pattern.P4()
	pl := pinnedPlan(b, pat, plan.ModeLIGHT)
	for _, workers := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("threads=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Run(g, pl, parallel.Options{
					Engine:  engine.Options{Kernel: intersect.KindHybridBlock},
					Workers: workers,
				}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4 measures the four Table IV configurations.
func BenchmarkTable4(b *testing.B) {
	g := ljFast()
	pat := pattern.P4()
	run := func(name string, mode plan.Mode, kernel intersect.Kind, workers int) {
		pl := pinnedPlan(b, pat, mode)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if workers > 1 {
					_, err = parallel.Run(g, pl, parallel.Options{Engine: engine.Options{Kernel: kernel}, Workers: workers}, nil)
				} else {
					_, err = engine.New(g, pl, engine.Options{Kernel: kernel}).Run(nil)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("T_SE", plan.ModeSE, intersect.KindMerge, 1)
	run("T_SE+P", plan.ModeSE, intersect.KindHybridBlock, 8)
	run("T_LIGHT", plan.ModeLIGHT, intersect.KindMerge, 1)
	run("T_LIGHT+P", plan.ModeLIGHT, intersect.KindHybridBlock, 8)
}

// BenchmarkTable5 reports the candidate-set memory of a parallel P5 run.
func BenchmarkTable5(b *testing.B) {
	g := ljFast()
	pat := pattern.P5()
	po := pattern.SymmetryBreaking(pat)
	pl, err := plan.Compile(pat, po, plan.ConnectedOrders(pat, po)[0], plan.ModeLIGHT)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("P5/workers=8", func(b *testing.B) {
		var mem int64
		for i := 0; i < b.N; i++ {
			res, err := parallel.Run(g, pl, parallel.Options{Workers: 8}, nil)
			if err != nil {
				b.Fatal(err)
			}
			mem = res.CandidateMemBytes
		}
		b.ReportMetric(float64(mem), "candidate-bytes")
	})
}

// BenchmarkFig8 compares LIGHT against the simulated distributed
// systems and the DUALSIM proxy on one representative case.
func BenchmarkFig8(b *testing.B) {
	g := ljFast()
	pat := pattern.P1()
	po := pattern.SymmetryBreaking(pat)
	stats := estimate.Collect(g)
	pl, err := plan.Choose(pat, po, stats, plan.ModeLIGHT)
	if err != nil {
		b.Fatal(err)
	}
	sePlan, err := plan.Choose(pat, po, stats, plan.ModeSE)
	if err != nil {
		b.Fatal(err)
	}
	bfsOpts := bfsjoin.Options{ShufflePerTuple: 150 * time.Nanosecond, Sleep: true}

	b.Run("LIGHT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parallel.Run(g, pl, parallel.Options{Workers: 8}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DUALSIM-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parallel.Run(g, sePlan, parallel.Options{Workers: 8}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SEED-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bfsjoin.SEED(g, pat, bfsOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CRYSTAL-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bfsjoin.Crystal(g, pat, bfsOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TwinTwig-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bfsjoin.TwinTwig(g, pat, bfsOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationScheduler compares the work-stealing scheduler against
// plain root chunking on a hub-dominated graph (DESIGN.md §5).
func BenchmarkAblationScheduler(b *testing.B) {
	g := gen.BarabasiAlbert(2500, 8, 4)
	pat := pattern.P3()
	po := pattern.SymmetryBreaking(pat)
	pl, err := plan.Choose(pat, po, estimate.Collect(g), plan.ModeLIGHT)
	if err != nil {
		b.Fatal(err)
	}
	for _, sched := range []parallel.Scheduler{parallel.WorkStealing, parallel.RootChunk, parallel.StaticPartition} {
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Run(g, pl, parallel.Options{
					Workers: 8, Scheduler: sched, ChunkSize: 512,
				}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTailCount measures the leaf-MAT counting shortcut.
func BenchmarkAblationTailCount(b *testing.B) {
	g := ljFast()
	pl := pinnedPlan(b, pattern.P4(), plan.ModeLIGHT)
	for _, tail := range []bool{false, true} {
		b.Run(fmt.Sprintf("tailcount=%v", tail), func(b *testing.B) {
			e := engine.New(g, pl, engine.Options{TailCount: tail})
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCoverSolver compares Algorithm 3 with the exact
// minimum set cover against the greedy approximation, end to end
// (compile + enumerate). On patterns this small the covers usually
// coincide, so this measures the price of exactness at compile time and
// any runtime drift when they differ.
func BenchmarkAblationCoverSolver(b *testing.B) {
	g := ljFast()
	pat := pattern.P6()
	po := pattern.SymmetryBreaking(pat)
	for _, mode := range []plan.Mode{
		{LazyMaterialization: true, MinSetCover: true},
		{LazyMaterialization: true, MinSetCover: true, GreedyCover: true},
	} {
		name := "exact"
		if mode.GreedyCover {
			name = "greedy"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pl, err := plan.Compile(pat, po, pinnedPi["P6"], mode)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := engine.New(g, pl, engine.Options{}).Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOrder compares the cost-model-chosen enumeration
// order against the first (arbitrary) connected order — the value of
// Section VI's optimizer.
func BenchmarkAblationOrder(b *testing.B) {
	g := ljFast()
	pat := pattern.P4()
	po := pattern.SymmetryBreaking(pat)
	chosen, err := plan.Choose(pat, po, estimate.Collect(g), plan.ModeLIGHT)
	if err != nil {
		b.Fatal(err)
	}
	arbitrary, err := plan.Compile(pat, po, plan.ConnectedOrders(pat, po)[0], plan.ModeLIGHT)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		pl   *plan.Plan
	}{{"cost-chosen", chosen}, {"first-connected", arbitrary}} {
		b.Run(c.name, func(b *testing.B) {
			e := engine.New(g, c.pl, engine.Options{})
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionLabeled measures the labeled fast path: the same
// shape queried unlabeled vs with 4 labels (label classes shrink the
// root set and the NLF filter prunes candidates).
func BenchmarkExtensionLabeled(b *testing.B) {
	g := GenerateBarabasiAlbert(2000, 5, 31)
	labels := make([]Label, g.NumVertices())
	for v := range labels {
		labels[v] = Label(v % 4)
	}
	lg, err := WithLabels(g, labels)
	if err != nil {
		b.Fatal(err)
	}
	tri, _ := PatternByName("triangle")
	lp, err := WithPatternLabels(tri, []Label{0, 1, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unlabeled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Count(g, tri, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("labeled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CountLabeled(lg, lp, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionApprox compares exact counting against sampling at
// two probe budgets.
func BenchmarkExtensionApprox(b *testing.B) {
	g := GenerateBarabasiAlbert(3000, 5, 17)
	p, _ := PatternByName("P1")
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Count(g, p, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, samples := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("approx-%d", samples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ApproxCount(g, p, samples, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDelta sweeps the Hybrid threshold δ (the paper fixes
// δ = 50 from a prior study).
func BenchmarkAblationDelta(b *testing.B) {
	g := ytFast()
	pl := pinnedPlan(b, pattern.P2(), plan.ModeLIGHT)
	for _, delta := range []int{2, 8, 50, 500} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			e := engine.New(g, pl, engine.Options{Kernel: intersect.KindHybrid, Delta: delta})
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
