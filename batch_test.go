package light

import (
	"context"
	"testing"
)

// TestCountBatchCatalogParity runs the whole pattern catalog as one
// batch — each pattern at two degree thresholds — and checks every
// query's count and engine counters against its own sequential Count
// with the equivalent public Filter. This is the public-API face of
// the lane parity gate.
func TestCountBatchCatalogParity(t *testing.T) {
	g := GenerateBarabasiAlbert(150, 4, 5)
	var queries []BatchQuery
	var refs []Options
	for _, name := range CatalogNames() {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, minDeg := range []int{0, 5} {
			queries = append(queries, BatchQuery{Pattern: p, MinDegree: minDeg})
			ref := Options{}
			if minDeg > 0 {
				d := minDeg
				ref.Filter = func(u int, v VertexID) bool { return g.Degree(v) >= d }
			}
			refs = append(refs, ref)
		}
	}
	for _, workers := range []int{1, 4} {
		bres, err := CountBatch(g, queries, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if bres.Groups != len(CatalogNames()) {
			t.Fatalf("workers=%d: %d groups, want %d", workers, bres.Groups, len(CatalogNames()))
		}
		if len(bres.Queries) != len(queries) {
			t.Fatalf("workers=%d: %d results for %d queries", workers, len(bres.Queries), len(queries))
		}
		for i, q := range queries {
			ref := refs[i]
			solo, err := Count(g, q.Pattern, ref)
			if err != nil {
				t.Fatal(err)
			}
			got := bres.Queries[i]
			if got.Matches != solo.Matches {
				t.Errorf("workers=%d %s/minDeg=%d: batch %d matches, sequential %d",
					workers, q.Pattern.Name(), q.MinDegree, got.Matches, solo.Matches)
			}
			if got.Nodes != solo.Nodes || got.Intersections != solo.Intersections {
				t.Errorf("workers=%d %s/minDeg=%d: batch nodes/ints %d/%d, sequential %d/%d",
					workers, q.Pattern.Name(), q.MinDegree, got.Nodes, got.Intersections, solo.Nodes, solo.Intersections)
			}
			if got.Report == nil {
				t.Fatalf("query %d: nil report", i)
			}
			if got.Report.Matches != solo.Matches || got.Report.Comps != solo.Report.Comps ||
				got.Report.Elements != solo.Report.Elements {
				t.Errorf("workers=%d %s/minDeg=%d: report counters diverge: %+v vs %+v",
					workers, q.Pattern.Name(), q.MinDegree, got.Report, solo.Report)
			}
			if len(got.Order) == 0 || got.Duration <= 0 {
				t.Errorf("query %d: metadata missing: %+v", i, got)
			}
		}
	}
}

// TestCountBatchRootsAndFilter: per-query root sets and filters narrow
// exactly like their sequential Filter equivalents.
func TestCountBatchRootsAndFilter(t *testing.T) {
	g := GenerateBarabasiAlbert(120, 3, 9)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	var evens []VertexID
	for v := 0; v < g.NumVertices(); v += 2 {
		evens = append(evens, VertexID(v))
	}
	noMod5 := func(u int, v VertexID) bool { return v%5 != 0 }
	queries := []BatchQuery{
		{Pattern: p},
		{Pattern: p, Roots: evens},
		{Pattern: p, Filter: noMod5},
		{Pattern: p, Roots: evens, MinDegree: 3, Filter: noMod5},
	}
	bres, err := CountBatch(g, queries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bres.Groups != 1 {
		t.Fatalf("%d groups for one pattern, want 1", bres.Groups)
	}

	base, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bres.Queries[0].Matches != base.Matches {
		t.Errorf("unrestricted lane: %d, want %d", bres.Queries[0].Matches, base.Matches)
	}
	inEvens := make(map[VertexID]bool)
	for _, v := range evens {
		inEvens[v] = true
	}
	root := base.Order[0]
	for i, ref := range []func(u int, v VertexID) bool{
		nil,
		func(u int, v VertexID) bool { return u != root || inEvens[v] },
		noMod5,
		func(u int, v VertexID) bool {
			return (u != root || inEvens[v]) && g.Degree(v) >= 3 && noMod5(u, v)
		},
	} {
		solo, err := Count(g, p, Options{Filter: ref})
		if err != nil {
			t.Fatal(err)
		}
		if bres.Queries[i].Matches != solo.Matches || bres.Queries[i].Nodes != solo.Nodes {
			t.Errorf("query %d: batch %d/%d, sequential %d/%d",
				i, bres.Queries[i].Matches, bres.Queries[i].Nodes, solo.Matches, solo.Nodes)
		}
	}
}

func TestCountBatchValidation(t *testing.T) {
	g := GenerateComplete(8)
	p, _ := PatternByName("triangle")
	if _, err := CountBatch(g, []BatchQuery{{Pattern: p}}, Options{
		Filter: func(u int, v VertexID) bool { return true },
	}); err == nil {
		t.Error("Options.Filter accepted")
	}
	if _, err := CountBatch(g, []BatchQuery{{Pattern: p}}, Options{TailCount: true}); err == nil {
		t.Error("TailCount accepted")
	}
	if _, err := CountBatch(g, []BatchQuery{{Pattern: p}}, Options{CheckpointPath: "x"}); err == nil {
		t.Error("CheckpointPath accepted")
	}
	if _, err := CountBatch(g, []BatchQuery{{}}, Options{}); err == nil {
		t.Error("nil pattern accepted")
	}
	if bres, err := CountBatch(g, nil, Options{}); err != nil || len(bres.Queries) != 0 {
		t.Errorf("empty batch: %+v, %v", bres, err)
	}
}

// TestCountBatchGoverned: a governed batch takes one admission grant
// covering every group and reports it.
func TestCountBatchGoverned(t *testing.T) {
	g := GenerateBarabasiAlbert(100, 3, 2)
	gov := NewGovernor(GovernorConfig{Slots: 2})
	var queries []BatchQuery
	for _, name := range []string{"P1", "P2", "triangle"} {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, BatchQuery{Pattern: p})
	}
	bres, err := CountBatch(g, queries, Options{Workers: 4, Governor: gov})
	if err != nil {
		t.Fatal(err)
	}
	if bres.Workers > 2 {
		t.Fatalf("governed batch ran %d workers over a 2-slot governor", bres.Workers)
	}
	for i, q := range queries {
		solo, err := Count(g, q.Pattern, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if bres.Queries[i].Matches != solo.Matches {
			t.Errorf("%s: governed batch %d, want %d", q.Pattern.Name(), bres.Queries[i].Matches, solo.Matches)
		}
		if bres.Queries[i].Report.SlotsGranted != 0 {
			t.Errorf("per-query report claims its own admission grant")
		}
	}
}

// TestCountBatchContextCancel: cancellation surfaces the context error
// with partial results flagged.
func TestCountBatchContextCancel(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 5, 7)
	p, _ := PatternByName("P4")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bres, err := CountBatchContext(ctx, g, []BatchQuery{{Pattern: p}}, Options{Workers: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	for _, q := range bres.Queries {
		if !q.Stopped {
			t.Fatal("partial result not flagged Stopped")
		}
	}
}
