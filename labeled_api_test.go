package light

import (
	"math"
	"testing"
)

func TestLabeledAPI(t *testing.T) {
	// A 4-cycle alternating labels A-B-A-B: exactly one A-B-A path3 per
	// A vertex as the middle? Use explicit tiny case: count A-B edges.
	g := NewGraph(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	lg, err := WithLabels(g, []Label{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	edge, _ := PatternByName("path2")
	lp, err := WithPatternLabels(edge, []Label{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CountLabeled(lg, lp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All four cycle edges connect an A to a B.
	if res.Matches != 4 {
		t.Fatalf("A-B edges = %d, want 4", res.Matches)
	}
	if lg.Label(0) != 0 {
		t.Fatal("Label accessor broken")
	}
}

func TestLabeledAPIValidation(t *testing.T) {
	g := GenerateComplete(3)
	if _, err := WithLabels(g, []Label{0}); err == nil {
		t.Fatal("short labels accepted")
	}
	tri, _ := PatternByName("triangle")
	if _, err := WithPatternLabels(tri, []Label{0}); err == nil {
		t.Fatal("short pattern labels accepted")
	}
	lg, _ := WithLabels(g, []Label{0, 0, 0})
	lp, _ := WithPatternLabels(tri, []Label{0, 0, 0})
	if _, err := EnumerateLabeled(lg, lp, Options{}, nil); err == nil {
		t.Fatal("nil visitor accepted")
	}
}

func TestLabeledEnumerateAndParallelAgree(t *testing.T) {
	g := GenerateBarabasiAlbert(300, 4, 8)
	labels := make([]Label, g.NumVertices())
	for v := range labels {
		labels[v] = Label(v % 3)
	}
	lg, err := WithLabels(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	tri, _ := PatternByName("triangle")
	lp, err := WithPatternLabels(tri, []Label{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := CountLabeled(lg, lp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CountLabeled(lg, lp, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Matches != par.Matches {
		t.Fatalf("parallel %d != sequential %d", par.Matches, seq.Matches)
	}
	visited := uint64(0)
	_, err = EnumerateLabeled(lg, lp, Options{}, func(m []VertexID) bool {
		if lg.Label(m[0]) != 0 || lg.Label(m[1]) != 1 || lg.Label(m[2]) != 2 {
			t.Errorf("labels violated: %v", m)
		}
		visited++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != seq.Matches {
		t.Fatalf("visited %d, counted %d", visited, seq.Matches)
	}
}

func TestApproxCountAPI(t *testing.T) {
	g := GenerateComplete(12)
	tri, _ := PatternByName("triangle")
	est, hits, err := ApproxCount(g, tri, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("no hits on a complete graph")
	}
	if math.Abs(est-220)/220 > 0.1 {
		t.Fatalf("estimate %.1f, want ≈220", est)
	}
}
