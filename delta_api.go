package light

import (
	"context"
	"errors"
	"time"

	"light/internal/delta"
	"light/internal/graph"
)

// DeltaResult reports a CountDelta run: how the match count changed
// between two snapshots of the same graph.
type DeltaResult struct {
	// Gained is the number of matches present in the `to` snapshot that
	// use at least one edge added between the snapshots.
	Gained uint64
	// Lost is the number of matches present in the `from` snapshot that
	// use at least one edge removed between the snapshots.
	Lost uint64
	// Net is Gained - Lost: count(to) == count(from) + Net.
	Net int64
	// AddedEdges and RemovedEdges are the effective edge-delta sizes
	// between the snapshots (after cancellation across batches).
	AddedEdges   int
	RemovedEdges int
	// FromGeneration and ToGeneration identify the two snapshots.
	FromGeneration uint64
	ToGeneration   uint64
	// Duration is the wall-clock time of the two restricted
	// enumerations.
	Duration time.Duration
}

// CountDelta counts how the number of matches of p changed between two
// snapshots of g, without re-enumerating the whole graph: only matches
// incident to the changed edges are visited. Candidates are restricted
// to the ball of radius |V(P)|-1 around the changed edges' endpoints (a
// match using a changed edge cannot stray further), and each visited
// match is counted only if its image uses a changed edge. The identity
//
//	count(to) == count(from) + result.Net
//
// holds exactly: a match is gained iff it exists in `to` and uses an
// added edge, lost iff it exists in `from` and uses a removed edge, and
// matches using neither survive unchanged in both views.
//
// Both snapshots must come from g (in either generation order — Net is
// simply negative when `to` predates `from`'s additions). Options apply
// to the two underlying restricted enumerations; Snapshot, TailCount,
// CheckpointPath, and ResumeFrom are rejected, and Options.Filter, when
// set, narrows both enumerations (the identity then holds for the
// filtered counts).
func CountDelta(g *Graph, p *Pattern, from, to *Snapshot, opts Options) (DeltaResult, error) {
	return CountDeltaContext(context.Background(), g, p, from, to, opts)
}

// CountDeltaContext is CountDelta under a context.
func CountDeltaContext(ctx context.Context, g *Graph, p *Pattern, from, to *Snapshot, opts Options) (DeltaResult, error) {
	var dr DeltaResult
	if from == nil || to == nil {
		return dr, errNilSnapshot
	}
	if from.owner != g || to.owner != g {
		return dr, errors.New("light: CountDelta snapshots belong to a different Graph")
	}
	switch {
	case opts.Snapshot != nil:
		return dr, errors.New("light: CountDelta does not take Options.Snapshot (pass the snapshots directly)")
	case opts.TailCount:
		return dr, errors.New("light: CountDelta does not support TailCount (every match image is inspected)")
	case opts.CheckpointPath != "" || opts.ResumeFrom != "":
		return dr, errors.New("light: CountDelta does not support checkpointing")
	}
	added, removed := delta.Diff(from.st.base, from.st.ov, to.st.base, to.st.ov)
	dr.AddedEdges, dr.RemovedEdges = len(added), len(removed)
	dr.FromGeneration, dr.ToGeneration = from.st.gen, to.st.gen
	start := time.Now()
	if len(added) > 0 {
		n, err := countTouching(ctx, g, p, to, added, opts)
		if err != nil {
			return dr, err
		}
		dr.Gained = n
	}
	if len(removed) > 0 {
		n, err := countTouching(ctx, g, p, from, removed, opts)
		if err != nil {
			return dr, err
		}
		dr.Lost = n
	}
	dr.Net = int64(dr.Gained) - int64(dr.Lost)
	dr.Duration = time.Since(start)
	return dr, nil
}

// countTouching counts matches of p in the pinned snapshot whose image
// uses at least one edge from `edges`. The enumeration is restricted to
// the ball of radius |V(P)|-1 around the edges' endpoints via
// Options.Filter — sound because every vertex of a connected match
// using one of the edges lies within pattern-diameter hops of an
// endpoint — and the per-match edge test is automorphism-invariant, so
// symmetry breaking counts each gained/lost subgraph exactly once.
func countTouching(ctx context.Context, g *Graph, p *Pattern, snap *Snapshot, edges []delta.Edge, opts Options) (uint64, error) {
	edgeSet := make(map[uint64]struct{}, len(edges))
	for _, e := range edges {
		edgeSet[uint64(e.U)<<32|uint64(e.V)] = struct{}{}
	}
	ball := deltaBall(snap.st, edges, p.NumVertices()-1)

	ropts := opts
	ropts.Snapshot = snap
	userF := opts.Filter
	ropts.Filter = func(u int, v VertexID) bool {
		if int(v) >= len(ball) || !ball[v] {
			return false
		}
		return userF == nil || userF(u, v)
	}

	pEdges := p.p.Edges()
	var count uint64
	visit := func(m []VertexID) bool {
		for _, pe := range pEdges {
			a, b := m[pe[0]], m[pe[1]]
			if a > b {
				a, b = b, a
			}
			if _, hit := edgeSet[uint64(a)<<32|uint64(b)]; hit {
				count++
				break
			}
		}
		return true
	}
	// With Workers > 1 the visitor is serialized by the engine's mutex,
	// so the plain counter is safe.
	if _, err := EnumerateContext(ctx, g, p, ropts, visit); err != nil {
		return 0, err
	}
	return count, nil
}

// deltaBall marks every vertex within `radius` hops (in the snapshot's
// view) of any delta edge's endpoint — the sound candidate region for
// matches using a delta edge.
func deltaBall(st *snapshotState, edges []delta.Edge, radius int) []bool {
	n := st.numVertices()
	ball := make([]bool, n)
	var frontier []graph.VertexID
	for _, e := range edges {
		for _, v := range [2]graph.VertexID{e.U, e.V} {
			if int(v) < n && !ball[v] {
				ball[v] = true
				frontier = append(frontier, v)
			}
		}
	}
	neighbors := func(v graph.VertexID) []graph.VertexID {
		if st.ov != nil {
			return st.ov.Neighbors(v)
		}
		return st.base.Neighbors(v)
	}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		var next []graph.VertexID
		for _, v := range frontier {
			for _, u := range neighbors(v) {
				if !ball[u] {
					ball[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return ball
}
