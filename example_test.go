package light_test

import (
	"fmt"

	"light"
)

// Counting a pattern on a small explicit graph.
func ExampleCount() {
	// A 5-cycle with one chord: 0-1-2-3-4-0 plus 0-2.
	g := light.NewGraph(5, [][2]light.VertexID{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2},
	})
	p, _ := light.PatternByName("triangle")
	res, _ := light.Count(g, p, light.Options{})
	fmt.Println(res.Matches)
	// Output: 1
}

// Streaming matches with a visitor.
func ExampleEnumerate() {
	g := light.GenerateComplete(4)
	p, _ := light.PatternByName("triangle")
	light.Enumerate(g, p, light.Options{}, func(m []light.VertexID) bool {
		fmt.Println(m)
		return true
	})
	// Output:
	// [0 1 2]
	// [0 1 3]
	// [0 2 3]
	// [1 2 3]
}

// Comparing the paper's algorithms on the same query.
func ExampleOptions() {
	g := light.GenerateBarabasiAlbert(500, 4, 1)
	p, _ := light.PatternByName("P2")
	se, _ := light.Count(g, p, light.Options{Algorithm: light.SE})
	li, _ := light.Count(g, p, light.Options{Algorithm: light.LIGHT})
	fmt.Println(se.Matches == li.Matches, se.Intersections >= li.Intersections)
	// Output: true true
}

// Defining a custom pattern.
func ExampleNewPattern() {
	// The "bull": a triangle with two horns.
	p, err := light.NewPattern("bull", 5, [][2]int{
		{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 4},
	})
	if err != nil {
		panic(err)
	}
	g := light.GenerateBarabasiAlbert(400, 5, 3)
	res, _ := light.Count(g, p, light.Options{})
	fmt.Println(res.Matches > 0)
	// Output: true
}
