package light

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestCountContextDeadline(t *testing.T) {
	g := GenerateComplete(150)
	p, _ := PatternByName("clique5")
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		res, err := CountContext(ctx, g, p, Options{Workers: workers})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want DeadlineExceeded", workers, err)
		}
		if !res.Stopped {
			t.Fatalf("workers=%d: deadline-stopped run must report Stopped", workers)
		}
	}
}

func TestEnumerateContextCancelFromVisitor(t *testing.T) {
	g := GenerateComplete(150)
	p, _ := PatternByName("clique4")
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Uint64
		res, err := EnumerateContext(ctx, g, p, Options{Workers: workers}, func(m []VertexID) bool {
			if seen.Add(1) == 10 {
				cancel()
			}
			return true
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if !res.Stopped || res.Matches < 10 {
			t.Fatalf("workers=%d: partial result lost: stopped=%v matches=%d", workers, res.Stopped, res.Matches)
		}
	}
}

func TestEnumerateContextRequiresVisitor(t *testing.T) {
	g := GenerateComplete(5)
	p, _ := PatternByName("triangle")
	if _, err := EnumerateContext(context.Background(), g, p, Options{}, nil); err == nil {
		t.Fatal("nil visitor accepted")
	}
}

// TestVisitorPanicBecomesError: both the sequential and the parallel
// path must convert a visitor panic into an error instead of crashing.
func TestVisitorPanicBecomesError(t *testing.T) {
	g := GenerateBarabasiAlbert(300, 5, 2)
	p, _ := PatternByName("triangle")
	for _, workers := range []int{1, 4} {
		var seen atomic.Uint64
		_, err := Enumerate(g, p, Options{Workers: workers}, func(m []VertexID) bool {
			if seen.Add(1) == 3 {
				panic("user callback bug")
			}
			return true
		})
		if err == nil || !strings.Contains(err.Error(), "user callback bug") {
			t.Fatalf("workers=%d: err = %v, want the recovered panic", workers, err)
		}
	}
}

// TestCheckpointResumePublicAPI drives checkpoint/resume purely through
// light.Options, including the Workers<=1 case that silently routes
// through the parallel scheduler.
func TestCheckpointResumePublicAPI(t *testing.T) {
	g := GenerateBarabasiAlbert(400, 6, 4)
	p, _ := PatternByName("triangle")
	full, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		path := filepath.Join(t.TempDir(), "state.ckpt")
		opts := Options{
			Workers:            workers,
			CheckpointPath:     path,
			CheckpointInterval: time.Hour,
		}
		var res Result
		budget := uint64(150)
		for attempt := 0; ; attempt++ {
			if attempt > 60 {
				t.Fatalf("workers=%d: no convergence", workers)
			}
			runOpts := opts
			if attempt > 0 {
				runOpts.ResumeFrom = path
			}
			var seen atomic.Uint64
			res, err = Enumerate(g, p, runOpts, func(m []VertexID) bool {
				return seen.Add(1) < budget
			})
			if err != nil {
				t.Fatalf("workers=%d attempt %d: %v", workers, attempt, err)
			}
			if !res.Stopped {
				break
			}
			budget += budget / 2
		}
		if res.Matches != full.Matches {
			t.Fatalf("workers=%d: resumed total %d, want %d", workers, res.Matches, full.Matches)
		}
	}
}

func TestResumeFromMissingFile(t *testing.T) {
	g := GenerateComplete(6)
	p, _ := PatternByName("triangle")
	if _, err := Count(g, p, Options{ResumeFrom: filepath.Join(t.TempDir(), "nope.ckpt")}); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}
