package light

import "testing"

func TestPatternOrbits(t *testing.T) {
	tri, _ := PatternByName("triangle")
	o := PatternOrbits(tri)
	if o.NumOrbits() != 1 {
		t.Fatalf("triangle orbits = %d, want 1", o.NumOrbits())
	}
	// The house P4: apex pair {0,1} mirror, base pair {2,3} mirror, and
	// u4; plus u2/u3 swap with 0/1... compute: the house's mirror swaps
	// (0 1)(2 3) and fixes 4, giving orbits {0,1}, {2,3}, {4}.
	p4, _ := PatternByName("P4")
	o4 := PatternOrbits(p4)
	if o4.NumOrbits() != 3 {
		t.Fatalf("house orbits = %d (%v), want 3", o4.NumOrbits(), o4.OrbitOf)
	}
	if o4.OrbitOf[0] != o4.OrbitOf[1] || o4.OrbitOf[2] != o4.OrbitOf[3] || o4.OrbitOf[4] == o4.OrbitOf[0] {
		t.Fatalf("house orbit assignment wrong: %v", o4.OrbitOf)
	}
	// A path of 3: ends together, middle alone.
	p3, _ := PatternByName("path3")
	o3 := PatternOrbits(p3)
	if o3.NumOrbits() != 2 || o3.OrbitOf[0] != o3.OrbitOf[2] {
		t.Fatalf("path3 orbits: %v", o3.OrbitOf)
	}
}

func TestOrbitCountsTriangleOnComplete(t *testing.T) {
	g := GenerateComplete(5)
	tri, _ := PatternByName("triangle")
	counts, orbits, err := OrbitCounts(g, tri, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if orbits.NumOrbits() != 1 {
		t.Fatal("triangle has one orbit")
	}
	// Each vertex of K5 is in C(4,2) = 6 triangles.
	for v, c := range counts[0] {
		if c != 6 {
			t.Fatalf("vertex %d: %d triangles, want 6", v, c)
		}
	}
}

func TestOrbitCountsSumRule(t *testing.T) {
	// Σ_v counts[i][v] = matches × |orbit i| for every orbit.
	g := GenerateBarabasiAlbert(150, 4, 2)
	for _, name := range []string{"P1", "P2", "P4", "path3"} {
		p, _ := PatternByName(name)
		res, err := Count(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		counts, orbits, err := OrbitCounts(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		orbitSize := make([]uint64, orbits.NumOrbits())
		for _, o := range orbits.OrbitOf {
			orbitSize[o]++
		}
		for i := range counts {
			var sum uint64
			for _, c := range counts[i] {
				sum += c
			}
			if sum != res.Matches*orbitSize[i] {
				t.Fatalf("%s orbit %d: Σ = %d, want %d×%d", name, i, sum, res.Matches, orbitSize[i])
			}
		}
	}
}

func TestOrbitCountsStarCenters(t *testing.T) {
	// On a star graph, only the hub can play the star pattern's center.
	g := NewGraph(5, [][2]VertexID{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	p, _ := PatternByName("star3")
	counts, orbits, err := OrbitCounts(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if orbits.NumOrbits() != 2 {
		t.Fatalf("star3 orbits = %d", orbits.NumOrbits())
	}
	centerOrbit := orbits.OrbitOf[0]
	// After degree reordering the hub is vertex 4 (highest degree).
	hub := VertexID(4)
	if counts[centerOrbit][hub] != 4 { // C(4,3) = 4 leaf choices
		t.Fatalf("hub center count = %d, want 4", counts[centerOrbit][hub])
	}
	for v := VertexID(0); v < 4; v++ {
		if counts[centerOrbit][v] != 0 {
			t.Fatalf("leaf %d plays center %d times", v, counts[centerOrbit][v])
		}
	}
}
