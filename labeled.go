package light

import (
	"errors"
	"time"

	"light/internal/engine"
	"light/internal/graph"
	"light/internal/labeled"
)

// Label is a vertex label for labeled subgraph matching.
type Label = uint16

// LabeledGraph is a data graph whose vertices carry labels, with the
// candidate-filtering indexes (label classes and neighborhood label
// frequencies) built at construction.
type LabeledGraph struct {
	lg *labeled.Graph
}

// WithLabels attaches labels to a graph: labels[v] is the label of
// vertex v in g's (degree-ordered) numbering. The labeled view binds to
// the graph's current CSR, so pending edge deltas must be compacted
// first (later ApplyEdges calls on g do not change the labeled view).
func WithLabels(g *Graph, labels []Label) (*LabeledGraph, error) {
	st := g.snap()
	if st.ov != nil {
		return nil, errors.New("light: WithLabels with pending edge deltas; call Compact first")
	}
	lg, err := labeled.NewGraph(st.base, labels)
	if err != nil {
		return nil, err
	}
	return &LabeledGraph{lg: lg}, nil
}

// Label returns the label of data vertex v.
func (g *LabeledGraph) Label(v VertexID) Label { return g.lg.Labels[v] }

// LabeledPattern is a pattern whose vertices carry labels.
type LabeledPattern struct {
	lp *labeled.Pattern
}

// WithPatternLabels attaches labels to a pattern's vertices.
func WithPatternLabels(p *Pattern, labels []Label) (*LabeledPattern, error) {
	lp, err := labeled.NewPattern(p.p, labels)
	if err != nil {
		return nil, err
	}
	return &LabeledPattern{lp: lp}, nil
}

// CountLabeled returns the number of label-preserving matches: subgraphs
// of g isomorphic to p where every matched vertex carries the pattern
// vertex's label. Deduplication uses the label-preserving automorphisms
// only, so differently-labeled placements of a symmetric pattern are
// counted separately, as they should be.
func CountLabeled(g *LabeledGraph, p *LabeledPattern, opts Options) (Result, error) {
	return runLabeled(g, p, opts, nil)
}

// EnumerateLabeled streams every label-preserving match to visit (same
// contract as Enumerate).
func EnumerateLabeled(g *LabeledGraph, p *LabeledPattern, opts Options, visit func(mapping []VertexID) bool) (Result, error) {
	if visit == nil {
		return Result{}, errors.New("light: EnumerateLabeled requires a visitor; use CountLabeled")
	}
	return runLabeled(g, p, opts, visit)
}

func runLabeled(g *LabeledGraph, p *LabeledPattern, opts Options, visit func(mapping []VertexID) bool) (Result, error) {
	lopts := labeled.Options{
		Engine: engine.Options{
			Kernel:    opts.Intersection.kind(),
			TimeLimit: opts.TimeLimit,
		},
		Workers: opts.Workers,
		Mode:    opts.Algorithm.mode(),
	}
	var ev engine.VisitFunc
	if visit != nil {
		ev = func(m []graph.VertexID) bool { return visit(m) }
	}
	start := time.Now()
	var er engine.Result
	var err error
	if visit != nil {
		er, err = labeled.Enumerate(g.lg, p.lp, lopts, ev)
	} else {
		er, err = labeled.Count(g.lg, p.lp, lopts)
	}
	var res Result
	res = fill(res, er, time.Since(start))
	return res, mapErr(err)
}

// ApproxCount estimates the match count from random path-sampling
// probes instead of exhaustive enumeration — useful when the exact
// count is astronomically large and a ±few-percent answer suffices.
// The estimate is unbiased; variance shrinks with the number of
// samples. Hits reports how many probes completed (very small values
// mean the estimate is unreliable). Deterministic for a given seed.
func ApproxCount(g *Graph, p *Pattern, samples int, seed int64) (estimateValue float64, hits int, err error) {
	res, err := approxCount(g, p, samples, seed)
	if err != nil {
		return 0, 0, err
	}
	return res.Estimate, res.Hits, nil
}
