package light

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCountTriangleOnComplete(t *testing.T) {
	g := GenerateComplete(10)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 120 {
		t.Fatalf("C(10,3) = 120, got %d", res.Matches)
	}
	if res.Duration <= 0 || len(res.Order) != 3 {
		t.Fatalf("result metadata missing: %+v", res)
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 4, 1)
	for _, name := range CatalogNames() {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var want uint64
		for i, algo := range []Algorithm{LIGHT, SE, LM, MSC} {
			res, err := Count(g, p, Options{Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = res.Matches
			} else if res.Matches != want {
				t.Fatalf("%s/%v: %d != %d", name, algo, res.Matches, want)
			}
		}
	}
}

func TestAllKernelsAgree(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 5, 2)
	p, _ := PatternByName("P2")
	var want uint64
	for i, k := range []Intersection{HybridBlock, Merge, MergeBlock, Galloping, Hybrid, MergeBitmap, HybridBitmap} {
		res, err := Count(g, p, Options{Intersection: k})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Matches
		} else if res.Matches != want {
			t.Fatalf("kernel %v: %d != %d", k, res.Matches, want)
		}
	}
}

func TestParallelAgreesWithSequential(t *testing.T) {
	g := GenerateBarabasiAlbert(400, 5, 3)
	p, _ := PatternByName("P4")
	seq, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Count(g, p, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Matches != par.Matches {
		t.Fatalf("parallel %d != sequential %d", par.Matches, seq.Matches)
	}
	// Buffers come from per-worker arenas carved on demand, so the
	// parallel footprint is at least the sequential one (every worker
	// that touched work grew its own slab) and never zero.
	if par.CandidateMemoryBytes < seq.CandidateMemoryBytes || par.CandidateMemoryBytes <= 0 {
		t.Fatalf("parallel memory accounting missing: par %d, seq %d",
			par.CandidateMemoryBytes, seq.CandidateMemoryBytes)
	}
	if par.Report.ArenaBytes != uint64(par.CandidateMemoryBytes) {
		t.Fatalf("report arena bytes %d != candidate memory %d",
			par.Report.ArenaBytes, par.CandidateMemoryBytes)
	}
}

func TestEnumerateVisitsAllMatches(t *testing.T) {
	g := GenerateComplete(7)
	p, _ := PatternByName("triangle")
	var count int
	res, err := Enumerate(g, p, Options{}, func(m []VertexID) bool {
		if len(m) != 3 || !(m[0] < m[1] && m[1] < m[2]) {
			t.Errorf("bad mapping %v", m)
		}
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(count) != res.Matches || count != 35 {
		t.Fatalf("visited %d, matches %d, want 35", count, res.Matches)
	}
	if _, err := Enumerate(g, p, Options{}, nil); err == nil {
		t.Fatal("nil visitor accepted")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := GenerateComplete(12)
	p, _ := PatternByName("triangle")
	n := 0
	res, err := Enumerate(g, p, Options{}, func(m []VertexID) bool {
		n++
		return n < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || n != 3 {
		t.Fatalf("stopped=%v n=%d", res.Stopped, n)
	}
}

func TestTimeLimitSurfaced(t *testing.T) {
	g := GenerateComplete(150)
	p, _ := PatternByName("clique5")
	_, err := Count(g, p, Options{TimeLimit: time.Nanosecond})
	if err != ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}

func TestExplicitOrder(t *testing.T) {
	g := GenerateBarabasiAlbert(150, 4, 5)
	p, _ := PatternByName("P2")
	auto, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	manual, err := Count(g, p, Options{Order: []int{0, 2, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Matches != manual.Matches {
		t.Fatalf("explicit order changed the count: %d vs %d", manual.Matches, auto.Matches)
	}
	if _, err := Count(g, p, Options{Order: []int{1, 3, 0, 2}}); err == nil {
		t.Fatal("disconnected explicit order accepted")
	}
}

func TestNewGraphAndAccessors(t *testing.T) {
	g := NewGraph(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.NumVertices() != 4 || g.NumEdges() != 4 || g.MaxDegree() != 2 {
		t.Fatalf("bad graph: %v", g)
	}
	if g.MemoryBytes() <= 0 || g.String() == "" {
		t.Fatal("metadata accessors broken")
	}
	v := VertexID(0)
	if len(g.Neighbors(v)) != 2 || g.Degree(v) != 2 {
		t.Fatal("adjacency accessors broken")
	}
	if !g.HasEdge(g.Neighbors(0)[0], 0) {
		t.Fatal("HasEdge broken")
	}
}

func TestLoadEdgeListRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("# test\n0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := PatternByName("triangle")
	res, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 1 {
		t.Fatalf("triangle count = %d, want 1", res.Matches)
	}
	if _, err := LoadEdgeList(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n")); err != nil {
		t.Fatal(err)
	}
}

func TestNewPatternValidation(t *testing.T) {
	if _, err := NewPattern("disc", 4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Fatal("disconnected pattern accepted")
	}
	p, err := NewPattern("paw", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVertices() != 4 || p.NumEdges() != 4 || p.Name() != "paw" || p.String() == "" {
		t.Fatalf("pattern accessors broken: %v", p)
	}
}

func TestNames(t *testing.T) {
	if LIGHT.String() != "LIGHT" || SE.String() != "SE" || LM.String() != "LM" || MSC.String() != "MSC" {
		t.Fatal("algorithm names")
	}
	if HybridBlock.String() != "HybridBlock" || Merge.String() != "Merge" {
		t.Fatal("kernel names")
	}
	if len(CatalogNames()) != 7 {
		t.Fatal("catalog size")
	}
}

func TestGenerators(t *testing.T) {
	if g := GenerateErdosRenyi(50, 100, 1); g.NumEdges() != 100 {
		t.Fatal("ER")
	}
	if g := GenerateRMAT(8, 4, 1); g.NumVertices() != 256 {
		t.Fatal("RMAT")
	}
	if g := GenerateGrid(3, 3); g.NumVertices() != 9 {
		t.Fatal("grid")
	}
}

func TestCSRRoundTripPublic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	g := GenerateBarabasiAlbert(300, 4, 9)
	if err := g.SaveCSR(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := PatternByName("triangle")
	a, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Count(g2, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Matches != b.Matches {
		t.Fatalf("CSR round trip changed count: %d vs %d", a.Matches, b.Matches)
	}
	if _, err := LoadCSR(filepath.Join(dir, "none.csr")); err == nil {
		t.Fatal("missing CSR accepted")
	}
}

// TestGoldenCatalogCounts pins exact counts on a fixed seeded graph: a
// regression tripwire for any change to generators, ordering, symmetry
// breaking, planning, or the engines. The values were cross-validated
// against the brute-force reference at introduction.
func TestGoldenCatalogCounts(t *testing.T) {
	golden := map[string]uint64{
		"P1": 8832,
		"P2": 3859,
		"P3": 147,
		"P4": 112620,
		"P5": 814990,
		"P6": 1833,
		"P7": 30,
	}
	g := GenerateBarabasiAlbert(500, 5, 2026)
	for _, name := range CatalogNames() {
		p, _ := PatternByName(name)
		for _, algo := range []Algorithm{LIGHT, SE} {
			res, err := Count(g, p, Options{Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if res.Matches != golden[name] {
				t.Errorf("%s/%v: %d, golden %d", name, algo, res.Matches, golden[name])
			}
		}
	}
}
