package light

import "light/internal/approx"

// approxCount adapts the internal estimator to the public types.
func approxCount(g *Graph, p *Pattern, samples int, seed int64) (approx.Result, error) {
	return approx.Count(g.g, p.p, samples, seed)
}
