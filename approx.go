package light

import (
	"errors"

	"light/internal/approx"
)

// approxCount adapts the internal estimator to the public types. The
// estimator walks the raw CSR, so pending edge deltas must be compacted
// first; silently sampling the stale base would bias the estimate.
func approxCount(g *Graph, p *Pattern, samples int, seed int64) (approx.Result, error) {
	st := g.snap()
	if st.ov != nil {
		return approx.Result{}, errors.New("light: ApproxCount with pending edge deltas; call Compact first")
	}
	return approx.Count(st.base, p.p, samples, seed)
}
