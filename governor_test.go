package light

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOptionsValidation is the satellite table test: every invalid
// Options field is rejected with an error naming the field, at the
// validation choke point — before any worker, arena, or file exists.
func TestOptionsValidation(t *testing.T) {
	g := GenerateComplete(6)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts Options
		want string // substring the error must carry
	}{
		{"negative workers", Options{Workers: -1}, "Workers"},
		{"negative time limit", Options{TimeLimit: -time.Second}, "TimeLimit"},
		{"negative checkpoint interval", Options{CheckpointInterval: -time.Second}, "CheckpointInterval"},
		{"negative memory budget", Options{MemoryBudget: -1}, "MemoryBudget"},
		{"negative admission timeout", Options{AdmissionTimeout: -time.Second}, "AdmissionTimeout"},
		{"negative hub degree threshold", Options{HubDegreeThreshold: -1}, "HubDegreeThreshold"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Count(g, p, c.opts); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want error naming %s", err, c.want)
			}
			// The same rejection must protect the enumeration entry.
			if _, err := Enumerate(g, p, c.opts, func([]VertexID) bool { return true }); err == nil {
				t.Fatalf("Enumerate accepted invalid %s", c.name)
			}
		})
	}
	if _, err := Count(g, p, Options{}); err != nil {
		t.Fatalf("zero Options rejected: %v", err)
	}
}

// TestGovernorSingleQueryParity: running under an uncontended Governor
// must not change a single deterministic counter relative to an
// ungoverned run — the governor is observability plus admission, not a
// different engine.
func TestGovernorSingleQueryParity(t *testing.T) {
	g := GenerateBarabasiAlbert(500, 6, 11)
	p, err := PatternByName("P2")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Count(g, p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	gov := NewGovernor(GovernorConfig{Slots: 4})
	governed, err := Count(g, p, Options{Workers: 2, Governor: gov})
	if err != nil {
		t.Fatal(err)
	}
	if governed.Matches != plain.Matches || governed.Nodes != plain.Nodes ||
		governed.Intersections != plain.Intersections {
		t.Fatalf("governed run diverged: matches %d/%d nodes %d/%d intersections %d/%d",
			governed.Matches, plain.Matches, governed.Nodes, plain.Nodes,
			governed.Intersections, plain.Intersections)
	}
	r := governed.Report
	if r.SlotsGranted != 2 {
		t.Fatalf("SlotsGranted = %d, want 2", r.SlotsGranted)
	}
	if len(r.DegradationEvents) != 0 {
		t.Fatalf("uncontended run reported degradations: %v", r.DegradationEvents)
	}
	if gov.ActiveQueries() != 0 {
		t.Fatalf("admission leaked: ActiveQueries = %d after run", gov.ActiveQueries())
	}
}

// TestMemoryBudgetDegradesBeforeErroring walks the first rung of the
// ladder end-to-end: a budget at the unbudgeted run's arena high-water
// mark forces exact-size slab grows (visible in the RunReport) while
// the count stays exact.
func TestMemoryBudgetDegradesBeforeErroring(t *testing.T) {
	// Big enough that all four workers claim chunks and grow arenas —
	// the budget math below needs every worker's slab in the HWM.
	g := GenerateBarabasiAlbert(8000, 8, 13)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	free, err := Count(g, p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if free.CandidateMemoryBytes < 4*256<<10 {
		t.Skipf("only %d arena bytes across workers; fixture did not spread work", free.CandidateMemoryBytes)
	}
	res, err := Count(g, p, Options{Workers: 4, MemoryBudget: free.CandidateMemoryBytes})
	if err != nil {
		t.Fatalf("budget at the high-water mark must degrade, not fail: %v", err)
	}
	if res.Matches != free.Matches {
		t.Fatalf("count %d under budget, want %d", res.Matches, free.Matches)
	}
	if len(res.Report.DegradationEvents) == 0 {
		t.Fatalf("no degradation events at a budget equal to the high-water mark (memory %d)", res.CandidateMemoryBytes)
	}
	if res.CandidateMemoryBytes > free.CandidateMemoryBytes {
		t.Fatalf("budgeted run used %d bytes, over its %d budget", res.CandidateMemoryBytes, free.CandidateMemoryBytes)
	}
}

// TestMemoryBudgetShedsWorkers: a budget with room for only part of
// the requested pool sheds workers before spawning them — observable,
// exact, and within budget.
func TestMemoryBudgetShedsWorkers(t *testing.T) {
	g := GenerateBarabasiAlbert(600, 5, 7)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Per-worker tight footprint is (n+1)·d_max·4; fund two workers
	// with a little slack and ask for four.
	perWorker := int64(p.NumVertices()+1) * int64(g.MaxDegree()) * 4
	res, err := Count(g, p, Options{Workers: 4, MemoryBudget: 2*perWorker + perWorker/2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != ref.Matches {
		t.Fatalf("count %d after shedding, want %d", res.Matches, ref.Matches)
	}
	shed := false
	for _, ev := range res.Report.DegradationEvents {
		if strings.Contains(ev, "shed workers") {
			shed = true
		}
	}
	if !shed {
		t.Fatalf("no worker-shed degradation event: %v", res.Report.DegradationEvents)
	}
	if res.Report.Workers > 2 {
		t.Fatalf("ran %d workers on a 2-worker budget", res.Report.Workers)
	}
}

// TestMemoryBudgetHardStopResumes: a budget too small for even one
// worker hard-stops with ErrMemoryBudget but still writes a valid
// checkpoint; resuming without the budget reaches the exact reference
// count — the acceptance criterion's end-to-end path.
func TestMemoryBudgetHardStopResumes(t *testing.T) {
	g := GenerateBarabasiAlbert(600, 5, 7)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "budget.ckpt")
	_, err = Count(g, p, Options{Workers: 2, MemoryBudget: 64, CheckpointPath: ckpt, CheckpointInterval: time.Hour})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	res, err := Count(g, p, Options{Workers: 2, ResumeFrom: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != ref.Matches {
		t.Fatalf("resumed count %d, want %d", res.Matches, ref.Matches)
	}
}

// TestAdmissionOverloaded: with the governor's only slot held by a
// blocked run, a second run's admission deadline expires into
// ErrOverloaded without doing any work.
func TestAdmissionOverloaded(t *testing.T) {
	g := GenerateBarabasiAlbert(400, 5, 3)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	gov := NewGovernor(GovernorConfig{Slots: 1})
	hold := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := Enumerate(g, p, Options{Governor: gov}, func([]VertexID) bool {
			once.Do(func() { close(started) })
			<-hold
			return true
		})
		if err != nil {
			t.Errorf("holder run failed: %v", err)
		}
	}()
	<-started
	_, err = Count(g, p, Options{Governor: gov, AdmissionTimeout: 30 * time.Millisecond})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if gov.Timeouts() != 1 {
		t.Fatalf("governor Timeouts = %d, want 1", gov.Timeouts())
	}
	close(hold)
	wg.Wait()
}

// TestStallWatchdogCancels: a visitor that stops returning trips the
// watchdog, which records a diagnostic dump and — with CancelOnStall —
// cancels the run with ErrStalled.
func TestStallWatchdogCancels(t *testing.T) {
	g := GenerateBarabasiAlbert(800, 6, 17)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	gov := NewGovernor(GovernorConfig{
		Slots:         2,
		StallInterval: 10 * time.Millisecond,
		StallPatience: 3,
		CancelOnStall: true,
	})
	var stalled atomic.Bool
	res, err := Enumerate(g, p, Options{Workers: 2, Governor: gov}, func([]VertexID) bool {
		if stalled.CompareAndSwap(false, true) {
			time.Sleep(400 * time.Millisecond) // wedge one worker well past patience
		}
		return true
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	r := res.Report
	if r.WatchdogStalls == 0 {
		t.Fatal("no watchdog stalls recorded")
	}
	if !strings.Contains(r.StallDump, "stall watchdog: worker") || !strings.Contains(r.StallDump, "goroutine") {
		t.Fatalf("stall dump missing diagnostics:\n%.400s", r.StallDump)
	}
}

// TestStallWatchdogObservesWithoutCancel: without CancelOnStall the
// stall is recorded but the run completes exactly once the worker
// resumes.
func TestStallWatchdogObservesWithoutCancel(t *testing.T) {
	g := GenerateBarabasiAlbert(500, 5, 19)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gov := NewGovernor(GovernorConfig{
		Slots:         2,
		StallInterval: 10 * time.Millisecond,
		StallPatience: 3,
	})
	var total atomic.Uint64
	var stalled atomic.Bool
	res, err := Enumerate(g, p, Options{Workers: 2, Governor: gov}, func([]VertexID) bool {
		total.Add(1)
		if stalled.CompareAndSwap(false, true) {
			time.Sleep(150 * time.Millisecond)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != ref.Matches || total.Load() != ref.Matches {
		t.Fatalf("count %d (visited %d), want %d", res.Matches, total.Load(), ref.Matches)
	}
	if res.Report.WatchdogStalls == 0 {
		t.Fatal("stall not recorded")
	}
	for _, ev := range res.Report.DegradationEvents {
		if strings.Contains(ev, "stall") {
			return
		}
	}
	t.Fatalf("no stall degradation event: %v", res.Report.DegradationEvents)
}

// TestMemoryShedReturnsAdmissionSlots: when the memory-degradation
// ladder shrinks a governed run's pool below its admission grant, the
// surplus slots must go back to the governor before any worker spawns.
// If they stayed held, a query queued on the governor would make every
// pool worker — including the last — shed its slot and retire with
// root chunks unclaimed, silently undercounting with a nil error. The
// churn goroutines keep the governor's wait queue hot for the whole
// run so the scheduling boundaries actually exercise the shed guard.
func TestMemoryShedReturnsAdmissionSlots(t *testing.T) {
	g := GenerateBarabasiAlbert(800, 6, 7)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gov := NewGovernor(GovernorConfig{Slots: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := Count(g, p, Options{Workers: 4, Governor: gov})
				if err != nil {
					t.Errorf("churn query: %v", err)
					return
				}
				if res.Matches != ref.Matches {
					t.Errorf("churn query count %d, want %d", res.Matches, ref.Matches)
					return
				}
			}
		}()
	}
	// A budget funding roughly one worker: the run is granted up to 4
	// slots but spawns fewer, so the surplus must be released.
	perWorker := int64(p.NumVertices()+1) * int64(g.MaxDegree()) * 4
	shed := false
	for i := 0; i < 3; i++ {
		res, err := Count(g, p, Options{Workers: 4, Governor: gov, MemoryBudget: perWorker + perWorker/2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != ref.Matches {
			t.Fatalf("governed run under memory shed: count %d, want %d", res.Matches, ref.Matches)
		}
		for _, ev := range res.Report.DegradationEvents {
			if strings.Contains(ev, "shed workers") {
				shed = true
			}
		}
	}
	close(stop)
	wg.Wait()
	if !shed {
		t.Fatalf("budget never shed workers; the test did not exercise the grant-surplus path")
	}
	if gov.ActiveQueries() != 0 {
		t.Fatalf("ActiveQueries = %d after all runs", gov.ActiveQueries())
	}
}

// TestGovernorElasticSlotReturn: a wide run under a contended governor
// sheds surplus slots to a second query instead of keeping them parked
// — both finish exactly, and the shed is observable.
func TestGovernorElasticSlotReturn(t *testing.T) {
	g := GenerateBarabasiAlbert(1200, 8, 23)
	p, err := PatternByName("P2")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gov := NewGovernor(GovernorConfig{Slots: 4})
	var wg sync.WaitGroup
	results := make([]Result, 2)
	errs := make([]error, 2)
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = Count(g, p, Options{Workers: 4, Governor: gov})
		}()
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if results[i].Matches != ref.Matches {
			t.Fatalf("query %d count %d, want %d", i, results[i].Matches, ref.Matches)
		}
	}
	if gov.ActiveQueries() != 0 {
		t.Fatalf("ActiveQueries = %d after both runs", gov.ActiveQueries())
	}
}
