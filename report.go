package light

import (
	"time"

	"light/internal/metrics"
	"light/internal/parallel"
)

// RunReportSchema is the version tag carried by every RunReport; bump it
// when the report layout changes incompatibly.
const RunReportSchema = "light-report/1"

// RunReport is the structured metrics report of one Count/Enumerate
// run, built from the internal counter registry. The engine counters
// (matches, nodes, comps, intersections, galloping, merges, elements)
// are deterministic for a given (graph, pattern, options) configuration
// — independent of worker count and scheduling — while the parallel and
// checkpoint counters describe this specific run. `lightenum -stats`
// prints it as JSON.
type RunReport struct {
	// Schema is the report format version (RunReportSchema).
	Schema string `json:"schema"`
	// Algorithm is the enumeration algorithm name (LIGHT, SE, LM, MSC).
	Algorithm string `json:"algorithm"`
	// Kernel is the set-intersection kernel name.
	Kernel string `json:"kernel"`
	// Workers is the number of workers the run used.
	Workers int `json:"workers"`
	// WallNS is the wall-clock enumeration time in nanoseconds.
	WallNS int64 `json:"wall_ns"`

	// Matches is the number of subgraphs found.
	Matches uint64 `json:"matches"`
	// Nodes is the number of search-tree nodes expanded.
	Nodes uint64 `json:"nodes"`
	// Comps is the number of COMP (candidate-set) operations executed.
	Comps uint64 `json:"comps"`
	// Intersections is the number of pairwise set intersections.
	Intersections uint64 `json:"intersections"`
	// Galloping is how many intersections took the galloping path.
	Galloping uint64 `json:"galloping"`
	// Merges is how many intersections took a merge path.
	Merges uint64 `json:"merges"`
	// Elements is the total input elements scanned across intersections.
	Elements uint64 `json:"elements"`
	// BitmapProbes is the number of elements probed against hub bitmaps
	// (nonzero only for the bitmap kernels on graphs with indexed hubs).
	BitmapProbes uint64 `json:"bitmap_probes,omitempty"`
	// GallopingPercent is 100·Galloping/Intersections (Table III).
	GallopingPercent float64 `json:"galloping_percent"`

	// Donations counts frames pushed to the work-stealing queue.
	Donations uint64 `json:"donations,omitempty"`
	// Steals counts frames executed by a worker other than the donor.
	Steals uint64 `json:"steals,omitempty"`
	// RootChunks counts root chunks dispensed by the scheduler.
	RootChunks uint64 `json:"root_chunks,omitempty"`
	// QueueWaits counts worker blocking episodes on the frame queue.
	QueueWaits uint64 `json:"queue_waits,omitempty"`
	// QueueWaitNS is the total time workers spent blocked, in ns.
	QueueWaitNS uint64 `json:"queue_wait_ns,omitempty"`
	// BusyNS is the total time workers spent executing work, in ns.
	BusyNS uint64 `json:"busy_ns,omitempty"`
	// PerWorkerNodes is the nodes each worker expanded (load balance).
	PerWorkerNodes []uint64 `json:"per_worker_nodes,omitempty"`
	// PerWorkerBusyNS is the busy time of each worker, in ns.
	PerWorkerBusyNS []int64 `json:"per_worker_busy_ns,omitempty"`

	// CheckpointWrites counts checkpoint file writes (periodic + final).
	CheckpointWrites uint64 `json:"checkpoint_writes,omitempty"`
	// CheckpointWriteNS is the cumulative checkpoint write latency in ns.
	CheckpointWriteNS uint64 `json:"checkpoint_write_ns,omitempty"`
	// CheckpointWriteErrors counts failed checkpoint writes.
	CheckpointWriteErrors uint64 `json:"checkpoint_write_errors,omitempty"`
	// CheckpointRetries counts failed checkpoint writes that were
	// retried with jittered backoff (a retried-then-successful write
	// increments Retries and Errors but surfaces no error).
	CheckpointRetries uint64 `json:"checkpoint_retries,omitempty"`

	// AdmissionWaitNS is how long the run waited for its guaranteed
	// worker slot under a shared Governor, in ns.
	AdmissionWaitNS uint64 `json:"admission_wait_ns,omitempty"`
	// SlotsGranted is the worker-slot count held at admission (the
	// run's initial pool size under a Governor).
	SlotsGranted uint64 `json:"slots_granted,omitempty"`
	// SlotsShed counts workers retired early because the governor
	// handed their slot to a waiting query.
	SlotsShed uint64 `json:"slots_shed,omitempty"`
	// WatchdogStalls counts stall-watchdog firings during the run;
	// StallDump is the first stall's diagnostic (per-worker progress
	// table plus an all-goroutine stack capture).
	WatchdogStalls uint64 `json:"watchdog_stalls,omitempty"`
	StallDump      string `json:"stall_dump,omitempty"`
	// DegradationEvents lists, in order, every graceful-degradation
	// step the run took under resource pressure (reduced admission,
	// exact-size arena slabs, worker shedding, stalls) — empty for an
	// unpressured run.
	DegradationEvents []string `json:"degradation_events,omitempty"`

	// DeltaEdges is how many pending edge insertions plus deletions the
	// run's snapshot carried over its base CSR (0 for a compacted or
	// never-mutated graph).
	DeltaEdges int `json:"delta_edges,omitempty"`
	// SnapshotGen is the generation of the snapshot the run enumerated
	// (0 for a never-mutated graph).
	SnapshotGen uint64 `json:"snapshot_gen,omitempty"`

	// CandidateMemoryBytes is the candidate-buffer memory across workers.
	CandidateMemoryBytes int64 `json:"candidate_memory_bytes"`
	// ArenaBytes is the slab footprint of the per-worker candidate
	// arenas (equals CandidateMemoryBytes; kept as its own counter so
	// snapshots and the bench gate can track it independently).
	ArenaBytes uint64 `json:"arena_bytes,omitempty"`
}

// newRunReport assembles the public report from the run's recorder plus
// the scheduler extras only the parallel result carries.
func newRunReport(rec *metrics.Recorder, opts Options, workers int, d time.Duration, memBytes int64, pres *parallel.Result, degradations []string) *RunReport {
	r := &RunReport{
		Schema:        RunReportSchema,
		Algorithm:     opts.Algorithm.String(),
		Kernel:        opts.Intersection.String(),
		Workers:       workers,
		WallNS:        int64(d),
		Matches:       rec.Get(metrics.EngineMatches),
		Nodes:         rec.Get(metrics.EngineNodes),
		Comps:         rec.Get(metrics.EngineComps),
		Intersections: rec.Get(metrics.IntersectOps),
		Galloping:     rec.Get(metrics.IntersectGalloping),
		Merges:        rec.Get(metrics.IntersectMerge),
		Elements:      rec.Get(metrics.IntersectElements),
		BitmapProbes:  rec.Get(metrics.IntersectBitmapProbes),

		Donations:   rec.Get(metrics.ParallelDonations),
		Steals:      rec.Get(metrics.ParallelSteals),
		RootChunks:  rec.Get(metrics.ParallelRootChunks),
		QueueWaits:  rec.Get(metrics.ParallelQueueWaits),
		QueueWaitNS: rec.Get(metrics.ParallelQueueWaitNanos),
		BusyNS:      rec.Get(metrics.ParallelBusyNanos),

		CheckpointWrites:      rec.Get(metrics.CheckpointWrites),
		CheckpointWriteNS:     rec.Get(metrics.CheckpointWriteNanos),
		CheckpointWriteErrors: rec.Get(metrics.CheckpointWriteErrors),
		CheckpointRetries:     rec.Get(metrics.CheckpointRetries),

		AdmissionWaitNS:   rec.Get(metrics.AdmissionWaitNanos),
		SlotsGranted:      rec.Get(metrics.AdmissionSlotsGranted),
		SlotsShed:         rec.Get(metrics.AdmissionSlotsShed),
		WatchdogStalls:    rec.Get(metrics.WatchdogStalls),
		DegradationEvents: degradations,

		CandidateMemoryBytes: memBytes,
		ArenaBytes:           rec.Get(metrics.ArenaBytes),
	}
	if r.Intersections > 0 {
		r.GallopingPercent = 100 * float64(r.Galloping) / float64(r.Intersections)
	}
	if pres != nil {
		r.PerWorkerNodes = pres.PerWorkerNodes
		r.PerWorkerBusyNS = make([]int64, len(pres.PerWorkerBusy))
		for i, b := range pres.PerWorkerBusy {
			r.PerWorkerBusyNS[i] = int64(b)
		}
		r.StallDump = pres.StallDump
	}
	return r
}
