package light

import (
	"math/rand"
	"testing"
)

// TestCountDeltaIdentity checks the delta-counting identity
// count(to) == count(from) + Net over random mutation batches, in both
// snapshot orders, with one and several workers.
func TestCountDeltaIdentity(t *testing.T) {
	pats := []string{"triangle", "path3", "square"}
	g := GenerateBarabasiAlbert(100, 3, 13)
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 5; round++ {
		from := g.Snapshot()
		n := g.NumVertices()
		var add, rem [][2]VertexID
		for i := 0; i < 6; i++ {
			u, v := VertexID(rng.Intn(n+2)), VertexID(rng.Intn(n+2))
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 {
				rem = append(rem, [2]VertexID{u, v})
			} else {
				add = append(add, [2]VertexID{u, v})
			}
		}
		to, err := g.ApplyEdges(add, rem)
		if err != nil {
			t.Fatal(err)
		}
		if round == 2 {
			// Exercise the cross-compaction Diff path too.
			if to, err = g.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		for _, name := range pats {
			p, err := PatternByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cFrom, err := Count(g, p, Options{Snapshot: from})
			if err != nil {
				t.Fatal(err)
			}
			cTo, err := Count(g, p, Options{Snapshot: to})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				dr, err := CountDelta(g, p, from, to, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if int64(cTo.Matches) != int64(cFrom.Matches)+dr.Net {
					t.Fatalf("round %d %s workers %d: count(to)=%d, count(from)=%d + net %d (gained %d, lost %d)",
						round, name, workers, cTo.Matches, cFrom.Matches, dr.Net, dr.Gained, dr.Lost)
				}
				// Reversed snapshots negate the delta.
				rev, err := CountDelta(g, p, to, from, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if rev.Net != -dr.Net || rev.Gained != dr.Lost || rev.Lost != dr.Gained {
					t.Fatalf("round %d %s: reversed delta (net %d, gained %d, lost %d) does not mirror (net %d, gained %d, lost %d)",
						round, name, rev.Net, rev.Gained, rev.Lost, dr.Net, dr.Gained, dr.Lost)
				}
			}
		}
	}
}

func TestCountDeltaIdenticalSnapshotsIsZero(t *testing.T) {
	g := GenerateGrid(5, 5)
	p, err := PatternByName("path3")
	if err != nil {
		t.Fatal(err)
	}
	s := g.Snapshot()
	dr, err := CountDelta(g, p, s, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Net != 0 || dr.Gained != 0 || dr.Lost != 0 || dr.AddedEdges != 0 || dr.RemovedEdges != 0 {
		t.Fatalf("identical snapshots produced nonzero delta: %+v", dr)
	}
}

func TestCountDeltaRejectsBadOptions(t *testing.T) {
	g := GenerateGrid(4, 4)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	s := g.Snapshot()
	if _, err := CountDelta(g, p, nil, s, Options{}); err == nil {
		t.Fatal("accepted nil from-snapshot")
	}
	other := GenerateGrid(4, 4)
	if _, err := CountDelta(g, p, other.Snapshot(), s, Options{}); err == nil {
		t.Fatal("accepted a snapshot from a different Graph")
	}
	if _, err := CountDelta(g, p, s, s, Options{TailCount: true}); err == nil {
		t.Fatal("accepted TailCount")
	}
	if _, err := CountDelta(g, p, s, s, Options{Snapshot: s}); err == nil {
		t.Fatal("accepted Options.Snapshot")
	}
	if _, err := CountDelta(g, p, s, s, Options{CheckpointPath: "x"}); err == nil {
		t.Fatal("accepted checkpointing")
	}
}
