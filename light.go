// Package light is a parallel subgraph enumeration library for a single
// machine, reproducing the LIGHT algorithm of Sun, Che, Wang and Luo,
// "Efficient Parallel Subgraph Enumeration on a Single Machine"
// (ICDE 2019).
//
// Given an unlabeled pattern graph P and an unlabeled data graph G, the
// library finds every subgraph of G isomorphic to P. Internally it
// combines lazy materialization, minimum-set-cover candidate
// computation, a cost-based enumeration order optimizer, hybrid sorted
// set intersection, and work-stealing parallel DFS. The baseline
// algorithms the paper evaluates (SE, LM, MSC, and the distributed
// BFS-join systems) are available through the same API for comparison.
//
// Quick start:
//
//	g, err := light.LoadEdgeList("graph.txt")
//	p, err := light.PatternByName("triangle")
//	res, err := light.Count(g, p, light.Options{})
//	fmt.Println(res.Matches)
package light

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"light/internal/admission"
	"light/internal/arena"
	"light/internal/delta"
	"light/internal/engine"
	"light/internal/estimate"
	"light/internal/faultpoint"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/metrics"
	"light/internal/parallel"
	"light/internal/pattern"
	"light/internal/plan"
	"light/internal/supervise"
)

// ErrTimeLimit is returned when Options.TimeLimit elapses mid-run.
var ErrTimeLimit = errors.New("light: time limit exceeded")

// VertexID identifies a data vertex (a 32-bit unsigned integer, as in
// the paper).
type VertexID = uint32

// Graph is an unlabeled undirected data graph in CSR form, relabeled
// into degree order at construction (the paper's ordered graph).
// Construction retains the relabeling, so vertex ids from the caller's
// original numbering can be translated with MapVertex.
//
// A Graph is mutable through ApplyEdges, which publishes a new
// copy-on-write snapshot without touching the base CSR: queries that
// started earlier (or that pinned a Snapshot) keep seeing exactly the
// adjacency they started with. Accessors and queries without an explicit
// Options.Snapshot read the latest published snapshot. Compact folds
// accumulated deltas back into a fresh CSR.
type Graph struct {
	// head is the current published snapshot, swapped atomically by
	// ApplyEdges/Compact. Readers load it once and work with an
	// immutable state; they never block on writers.
	head atomic.Pointer[snapshotState]
	// mu serializes writers (ApplyEdges, Compact). Readers do not take
	// it.
	mu sync.Mutex

	oldToNew []graph.VertexID // nil when the original numbering is unknown
}

// snapshotState is one immutable published view of a Graph: a base CSR
// plus an optional copy-on-write edge overlay. All fields are read-only
// after publication.
type snapshotState struct {
	base *graph.Graph
	ov   *delta.Overlay // nil when the view equals base
	gen  uint64
	// stats caches the estimator's degree-distribution snapshot per
	// base CSR; shared by every query's planner (and across overlay
	// generations over the same base — the overlay shifts costs, never
	// correctness, so planning from base statistics stays sound).
	stats *baseStats
}

type baseStats struct {
	once  sync.Once
	stats estimate.GraphStats
}

// newGraph wraps a finalized CSR as a fresh generation-0 Graph.
func newGraph(gg *graph.Graph, oldToNew []graph.VertexID) *Graph {
	g := &Graph{oldToNew: oldToNew}
	g.head.Store(&snapshotState{base: gg, stats: &baseStats{}})
	return g
}

// snap returns the latest published snapshot state.
func (g *Graph) snap() *snapshotState { return g.head.Load() }

func (s *snapshotState) numVertices() int {
	if s.ov != nil {
		return s.ov.NumVertices()
	}
	return s.base.NumVertices()
}

func (s *snapshotState) numEdges() int64 {
	if s.ov != nil {
		return s.ov.NumEdges()
	}
	return s.base.NumEdges()
}

func (s *snapshotState) maxDegree() int {
	if s.ov != nil {
		return s.ov.MaxDegree()
	}
	return s.base.MaxDegree()
}

func (s *snapshotState) fingerprint() uint64 {
	if s.ov != nil {
		return s.ov.Fingerprint()
	}
	return s.base.Fingerprint()
}

func (s *snapshotState) deltaEdges() int {
	if s.ov != nil {
		return s.ov.DeltaEdges()
	}
	return 0
}

// planStats returns the cached estimator statistics for the snapshot's
// base CSR, computing them once per base. Safe for concurrent queries.
func (s *snapshotState) planStats() estimate.GraphStats {
	s.stats.once.Do(func() { s.stats.stats = estimate.Collect(s.base) })
	return s.stats.stats
}

// NumVertices returns |V(G)| of the latest snapshot.
func (g *Graph) NumVertices() int { return g.snap().numVertices() }

// NumEdges returns |E(G)| of the latest snapshot.
func (g *Graph) NumEdges() int64 { return g.snap().numEdges() }

// MaxDegree returns an upper bound on the maximum vertex degree of the
// latest snapshot (exact when no edge deltas are pending).
func (g *Graph) MaxDegree() int { return g.snap().maxDegree() }

// Degree returns the degree of v in the latest snapshot.
func (g *Graph) Degree(v VertexID) int {
	s := g.snap()
	if s.ov != nil {
		return s.ov.Degree(v)
	}
	return s.base.Degree(v)
}

// Neighbors returns the sorted neighbor list of v in the latest
// snapshot. The returned slice must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	s := g.snap()
	if s.ov != nil {
		return s.ov.Neighbors(v)
	}
	return s.base.Neighbors(v)
}

// HasEdge reports whether the edge (u, v) exists in the latest snapshot.
func (g *Graph) HasEdge(u, v VertexID) bool {
	s := g.snap()
	if s.ov != nil {
		return s.ov.HasEdge(u, v)
	}
	return s.base.HasEdge(u, v)
}

// MemoryBytes returns the CSR memory footprint (plus the overlay's,
// when edge deltas are pending).
func (g *Graph) MemoryBytes() int64 {
	s := g.snap()
	if s.ov != nil {
		return s.base.MemoryBytes() + s.ov.MemoryBytes()
	}
	return s.base.MemoryBytes()
}

// Fingerprint returns a stable content hash of the latest snapshot's
// adjacency, identifying it for graph registries and result caches (see
// cmd/lightd): equal fingerprints mean identical adjacency. With pending
// edge deltas the hash covers base plus delta, so every ApplyEdges batch
// that changes the view changes the fingerprint. Computed once per
// snapshot on first use; safe for concurrent callers.
func (g *Graph) Fingerprint() uint64 { return g.snap().fingerprint() }

// NumHubs returns how many vertices the current hub index holds
// bitmaps for (0 when the index was dropped as not worthwhile).
func (g *Graph) NumHubs() int { return g.snap().base.NumHubs() }

// String summarizes the graph.
func (g *Graph) String() string {
	s := g.snap()
	if s.ov != nil {
		return fmt.Sprintf("%s (+%d pending delta edges, gen %d)",
			s.base.String(), s.ov.DeltaEdges(), s.gen)
	}
	return s.base.String()
}

// NewGraph builds a data graph from an edge list over n vertices
// (vertices beyond n grow the graph). Duplicate edges and self-loops are
// dropped. The result is relabeled into degree order, so vertex IDs in
// results refer to the relabeled graph.
func NewGraph(n int, edges [][2]VertexID) *Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, mapping := graph.ReorderWithMapping(b.Build())
	return newGraph(g, mapping)
}

// MapVertex translates a vertex id from the numbering the graph was
// constructed with (NewGraph edge list, edge-list file) into the
// degree-ordered id used in results. It is the identity for graphs whose
// original numbering is unknown (LoadCSR).
func (g *Graph) MapVertex(original VertexID) VertexID {
	if g.oldToNew == nil {
		return original
	}
	return g.oldToNew[original]
}

// LoadEdgeList reads a whitespace-separated "u v" edge-list file ('#'
// and '%' comment lines allowed) and relabels it into degree order.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	g, err := ReadEdgeList(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// ReadEdgeList is LoadEdgeList over an io.Reader.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	og, mapping := graph.ReorderWithMapping(g)
	return newGraph(og, mapping), nil
}

// SaveCSR writes the graph to path in a compact binary CSR format that
// LoadCSR reads back without re-parsing or re-sorting — the right format
// for graphs that are queried repeatedly. Pending edge deltas are not
// representable in the CSR format; call Compact first.
func (g *Graph) SaveCSR(path string) error {
	s := g.snap()
	if s.ov != nil {
		return errors.New("light: SaveCSR with pending edge deltas; call Compact first")
	}
	return s.base.SaveCSR(path)
}

// LoadCSR reads a graph written by SaveCSR. Graphs written by this
// package are already degree-ordered; foreign CSR files are reordered on
// load to restore the invariant the symmetry-breaking machinery needs.
func LoadCSR(path string) (*Graph, error) {
	gg, err := graph.LoadCSR(path)
	if err != nil {
		return nil, err
	}
	if !gg.IsOrdered() {
		gg = graph.Reorder(gg)
	}
	return newGraph(gg, nil), nil
}

// Pattern is an immutable unlabeled connected pattern graph (n ≤ 16).
type Pattern struct {
	p *pattern.Pattern
}

// NewPattern builds a pattern over n vertices (0..n-1) from an edge
// list. The pattern must be connected.
func NewPattern(name string, n int, edges [][2]int) (*Pattern, error) {
	es := make([][2]pattern.Vertex, len(edges))
	for i, e := range edges {
		es[i] = [2]pattern.Vertex{e[0], e[1]}
	}
	p, err := pattern.New(name, n, es)
	if err != nil {
		return nil, err
	}
	if !p.IsConnected() {
		return nil, fmt.Errorf("light: pattern %s is disconnected", name)
	}
	return &Pattern{p: p}, nil
}

// PatternByName returns a named pattern: the paper's evaluation catalog
// "P1".."P7", or "triangle", "square", "cycleK", "pathK", "cliqueK",
// "starK" for small K (e.g. "clique4").
func PatternByName(name string) (*Pattern, error) {
	p, err := pattern.ByName(name)
	if err != nil {
		return nil, err
	}
	return &Pattern{p: p}, nil
}

// CatalogNames lists the paper's evaluation patterns in order.
func CatalogNames() []string {
	return []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7"}
}

// Name returns the pattern's name.
func (p *Pattern) Name() string { return p.p.Name() }

// NumVertices returns |V(P)|.
func (p *Pattern) NumVertices() int { return p.p.NumVertices() }

// NumEdges returns |E(P)|.
func (p *Pattern) NumEdges() int { return p.p.NumEdges() }

// String renders the pattern.
func (p *Pattern) String() string { return p.p.String() }

// Algorithm selects the enumeration algorithm (the paper's Section
// VIII-B1 ablation ladder).
type Algorithm int

const (
	// LIGHT uses both lazy materialization and minimum-set-cover
	// candidate computation (the paper's contribution; the default).
	LIGHT Algorithm = iota
	// SE is the baseline DFS enumerator (Algorithm 1).
	SE
	// LM is SE plus lazy materialization only.
	LM
	// MSC is SE plus minimum-set-cover candidate computation only.
	MSC
)

// String returns the algorithm name used in the paper.
func (a Algorithm) String() string { return a.mode().Name() }

func (a Algorithm) mode() plan.Mode {
	switch a {
	case SE:
		return plan.ModeSE
	case LM:
		return plan.ModeLM
	case MSC:
		return plan.ModeMSC
	}
	return plan.ModeLIGHT
}

// Intersection selects the sorted-set intersection kernel (Section
// VII-A). The Block variants stand in for the paper's AVX2 kernels.
type Intersection int

const (
	// HybridBlock is Algorithm 4 with the block-skipping merge — the
	// paper's production configuration (HybridAVX2) and the default.
	HybridBlock Intersection = iota
	// Merge is the scalar two-pointer merge.
	Merge
	// MergeBlock is the block-skipping merge (MergeAVX2 stand-in).
	MergeBlock
	// Galloping always uses exponential search.
	Galloping
	// Hybrid is Algorithm 4 with the scalar merge.
	Hybrid
	// MergeBitmap is the block-skipping merge with hub-bitmap probing:
	// intersections whose operands include a high-degree hub filter the
	// smallest operand through the hub's bitmap (O(1) per element)
	// instead of merging the lists. Falls back to MergeBlock when no
	// operand is an indexed hub.
	MergeBitmap
	// HybridBitmap is HybridBlock with hub-bitmap probing — the fastest
	// configuration on hub-dominated graphs.
	HybridBitmap
)

// String returns the kernel name used in the paper's figures.
func (i Intersection) String() string { return i.kind().String() }

func (i Intersection) kind() intersect.Kind {
	switch i {
	case Merge:
		return intersect.KindMerge
	case MergeBlock:
		return intersect.KindMergeBlock
	case Galloping:
		return intersect.KindGalloping
	case Hybrid:
		return intersect.KindHybrid
	case MergeBitmap:
		return intersect.KindMergeBitmap
	case HybridBitmap:
		return intersect.KindHybridBitmap
	}
	return intersect.KindHybridBlock
}

// Options configure Count and Enumerate. The zero value runs LIGHT with
// the HybridBlock kernel on one worker.
type Options struct {
	// Algorithm defaults to LIGHT.
	Algorithm Algorithm
	// Intersection defaults to HybridBlock.
	Intersection Intersection
	// Workers > 1 enables the work-stealing parallel DFS (Section
	// VII-B). 0 or 1 runs sequentially.
	Workers int
	// TimeLimit aborts the run with ErrTimeLimit when positive.
	TimeLimit time.Duration
	// TailCount enables the final-vertex counting shortcut for
	// count-only runs (an extension beyond the paper; see DESIGN.md).
	TailCount bool
	// Filter, when non-nil, must approve every (pattern vertex, data
	// vertex) assignment: return false to skip mapping data vertex v
	// to pattern vertex u. It must be sound (never reject an
	// assignment on some match the caller wants) and cheap — it runs
	// in the innermost loop, possibly from many workers at once. A
	// filtered run disables the TailCount shortcut so every leaf
	// assignment is individually checked; this is also the sequential
	// reference semantics for batch queries (see CountBatch).
	Filter func(u int, v VertexID) bool
	// Order overrides the cost-based enumeration order with an explicit
	// permutation of pattern vertices (advanced; must be connected).
	Order []int
	// HubDegreeThreshold tunes the graph's hub bitmap index, used by
	// the bitmap intersection kernels: 0 keeps the auto-tuned index
	// built at graph construction; a positive value prepares the index
	// with that degree threshold τ. Preparation is safe under
	// concurrent queries and first-wins per graph: the first query to
	// request a τ builds the index once (atomically published, never
	// partially visible), and every later query — same or conflicting
	// τ — shares that build. τ only shifts the bitmap/list kernel
	// trade-off, never the match set, so a lost race costs performance
	// at most. Negative values are rejected by validation.
	HubDegreeThreshold int
	// CheckpointPath, when non-empty, periodically persists the run's
	// committed state to this file (atomic temp-file+rename writes) so
	// an interrupted run can be resumed with ResumeFrom. Forces the
	// parallel work-stealing engine even for Workers <= 1.
	CheckpointPath string
	// CheckpointInterval is the period between checkpoint writes
	// (default 30s). A final checkpoint is always written when the run
	// ends, completes, or is cancelled.
	CheckpointInterval time.Duration
	// ResumeFrom, when non-empty, loads the checkpoint at this path and
	// enumerates only the work it does not cover; the returned Result
	// includes the checkpoint's committed matches, so the total equals
	// an uninterrupted run's. The graph, pattern, and options must
	// match the checkpointing run (verified by fingerprint).
	ResumeFrom string
	// Governor, when non-nil, admits this run through a shared resource
	// governor: the run waits (FIFO) for a guaranteed worker slot,
	// takes up to Workers slots opportunistically, returns surplus
	// slots while other runs wait, and is covered by the governor's
	// memory budget and stall watchdog. See NewGovernor.
	Governor *Governor
	// MemoryBudget caps this run's candidate-arena bytes (0 =
	// unlimited). Under pressure the run degrades gracefully —
	// exact-size arena slabs, then fewer workers — before failing with
	// ErrMemoryBudget; degradations are listed in the RunReport. Nests
	// under the Governor's shared budget when both are set.
	MemoryBudget int64
	// AdmissionTimeout bounds the wait for the guaranteed worker slot
	// under a Governor: past it the run fails fast with ErrOverloaded.
	// 0 waits until the context is cancelled. Ignored without a
	// Governor.
	AdmissionTimeout time.Duration
	// Snapshot, when non-nil, pins the run to that exact published view
	// of the graph instead of the latest one: concurrent ApplyEdges
	// calls never change what a pinned run enumerates. The snapshot
	// must come from the same Graph the run is given.
	Snapshot *Snapshot
}

// Result reports an enumeration.
type Result struct {
	// Matches is the number of subgraphs of G isomorphic to P.
	Matches uint64
	// Intersections is the number of pairwise set intersections
	// performed (the paper's Fig 5 metric).
	Intersections uint64
	// GallopingPercent is the share of intersections that took the
	// galloping path (Table III).
	GallopingPercent float64
	// Nodes is the number of search-tree nodes expanded.
	Nodes uint64
	// Duration is the wall-clock enumeration time.
	Duration time.Duration
	// Order is the enumeration order chosen by the optimizer.
	Order []int
	// CandidateMemoryBytes is the candidate-set buffer memory across all
	// workers (Table V).
	CandidateMemoryBytes int64
	// Stopped reports that the visitor ended the run early.
	Stopped bool
	// Report is the full structured metrics report of the run (counter
	// registry snapshot plus scheduler observability); always non-nil on
	// a run that started, nil only when setup failed.
	Report *RunReport
}

// preparePlan compiles the pattern under the options, planning from the
// snapshot's base-CSR statistics (pending deltas shift costs, never the
// match set, so base statistics keep the plan sound).
func preparePlan(st *snapshotState, p *Pattern, opts Options) (*plan.Plan, error) {
	po := pattern.SymmetryBreaking(p.p)
	if opts.Order != nil {
		pi := make([]pattern.Vertex, len(opts.Order))
		for i, u := range opts.Order {
			pi[i] = u
		}
		return plan.Compile(p.p, po, pi, opts.Algorithm.mode())
	}
	return plan.Choose(p.p, po, st.planStats(), opts.Algorithm.mode())
}

// resolveState picks the snapshot a run enumerates: the pinned one when
// Options.Snapshot is set (validated to belong to g), the latest
// published one otherwise.
func (g *Graph) resolveState(snap *Snapshot) (*snapshotState, error) {
	if snap == nil {
		return g.snap(), nil
	}
	if snap.owner != g {
		return nil, errors.New("light: Options.Snapshot belongs to a different Graph")
	}
	return snap.st, nil
}

// Count returns the number of subgraphs of g isomorphic to p.
func Count(g *Graph, p *Pattern, opts Options) (Result, error) {
	return run(context.Background(), g, p, opts, nil)
}

// CountContext is Count under a context: cancellation or a context
// deadline stops the run at its next poll and returns the partial
// count with Stopped=true and ctx.Err() as the error.
func CountContext(ctx context.Context, g *Graph, p *Pattern, opts Options) (Result, error) {
	return run(ctx, g, p, opts, nil)
}

// Enumerate calls visit for every subgraph of g isomorphic to p;
// visit(m) receives the data vertex m[u] matched to each pattern vertex
// u. The slice is reused — copy it to retain. Returning false stops the
// enumeration. With Workers > 1, visit is serialized by a mutex but may
// be called from different goroutines. A panic inside visit does not
// crash the process: the run stops cleanly and the panic is returned
// as an error (a *supervise.PanicError carrying the stack).
func Enumerate(g *Graph, p *Pattern, opts Options, visit func(mapping []VertexID) bool) (Result, error) {
	if visit == nil {
		return Result{}, errors.New("light: Enumerate requires a visitor; use Count")
	}
	return run(context.Background(), g, p, opts, visit)
}

// EnumerateContext is Enumerate under a context: cancellation or a
// context deadline stops the run at its next poll and returns the
// partial result with Stopped=true and ctx.Err() as the error.
func EnumerateContext(ctx context.Context, g *Graph, p *Pattern, opts Options, visit func(mapping []VertexID) bool) (Result, error) {
	if visit == nil {
		return Result{}, errors.New("light: EnumerateContext requires a visitor; use CountContext")
	}
	return run(ctx, g, p, opts, visit)
}

func run(ctx context.Context, g *Graph, p *Pattern, opts Options, visit engine.VisitFunc) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	st, err := g.resolveState(opts.Snapshot)
	if err != nil {
		return Result{}, err
	}
	if st.ov != nil && (opts.CheckpointPath != "" || opts.ResumeFrom != "") {
		return Result{}, errors.New(
			"light: checkpoint/resume require a compacted snapshot; call Compact before checkpointing")
	}
	pl, err := preparePlan(st, p, opts)
	if err != nil {
		return Result{}, err
	}
	rec := metrics.NewRecorder()
	if opts.HubDegreeThreshold > 0 {
		// First-wins preparation: the first query to request a τ on this
		// graph rebuilds the index once; concurrent and later queries —
		// even with a conflicting τ — share that build instead of
		// thrashing rebuilds (see graph.EnsureHubIndex).
		st.base.EnsureHubIndex(opts.HubDegreeThreshold)
	}
	eopts := engine.Options{
		Kernel:    opts.Intersection.kind(),
		TimeLimit: opts.TimeLimit,
		TailCount: opts.TailCount,
		Filter:    opts.Filter,
		Metrics:   rec,
		Overlay:   st.ov,
	}
	start := time.Now()
	var res Result
	res.Order = make([]int, len(pl.Pi))
	copy(res.Order, pl.Pi)

	// Checkpointing, resume, and resource governance all live in the
	// parallel scheduler, so any of those options routes through it
	// even for a single worker.
	if opts.Workers > 1 || opts.CheckpointPath != "" || opts.ResumeFrom != "" ||
		opts.Governor != nil || opts.MemoryBudget > 0 {
		popts := parallel.Options{Engine: eopts, Workers: opts.Workers, Metrics: rec}
		if opts.CheckpointPath != "" {
			popts.Checkpoint = &parallel.CheckpointOptions{
				Path:     opts.CheckpointPath,
				Interval: opts.CheckpointInterval,
			}
		}
		if opts.ResumeFrom != "" {
			ck, err := supervise.LoadCheckpoint(opts.ResumeFrom)
			if err != nil {
				return Result{}, fmt.Errorf("light: loading checkpoint: %w", err)
			}
			popts.Resume = ck
		}
		if opts.Workers <= 1 {
			popts.Workers = 1
		}

		// Admission: wait for the guaranteed slot, run with what was
		// granted, and chain the run's memory budget under the
		// governor's. Degradation events accumulate into the RunReport.
		var degradations []string
		var govLim *arena.Limiter
		if opts.Governor != nil {
			gov := opts.Governor.g
			a, aerr := gov.Admit(ctx, popts.Workers, opts.AdmissionTimeout)
			if aerr != nil {
				return Result{}, mapErr(aerr)
			}
			defer a.Close()
			popts.Gate = a
			popts.Watchdog = gov.Watchdog()
			govLim = gov.MemLimiter()
			rec.AddDuration(metrics.AdmissionWaitNanos, a.Wait())
			rec.Add(metrics.AdmissionSlotsGranted, uint64(a.Granted()))
			if a.Granted() < popts.Workers {
				degradations = append(degradations, fmt.Sprintf(
					"admission: granted %d of %d requested workers", a.Granted(), popts.Workers))
			}
			popts.Workers = a.Granted()
		}
		runLim := arena.NewLimiter(opts.MemoryBudget, govLim)
		defer runLim.ReleaseAll()
		popts.MemLimiter = runLim
		popts.Workers, degradations, err = sizeWorkers(popts.Workers, st.maxDegree(), p.NumVertices(), runLim, degradations)
		if err != nil {
			return Result{}, err
		}
		// If the degradation ladder shrank the pool below the admission
		// grant, return the surplus slots before any worker spawns: the
		// governor's shed protocol assumes held slots == live workers,
		// and holding more would let every worker — including the last —
		// retire to a waiting query with root chunks still unclaimed.
		popts.Gate.ReleaseTo(popts.Workers)

		pres, err := parallel.RunContext(ctx, st.base, pl, popts, visit)
		if n := runLim.TightGrows(); n > 0 {
			degradations = append(degradations, fmt.Sprintf(
				"memory: %d exact-size arena slab grows under budget pressure", n))
		}
		if pres.SlotsShed > 0 {
			degradations = append(degradations, fmt.Sprintf(
				"admission: shed %d worker slot(s) to waiting queries", pres.SlotsShed))
		}
		if pres.Stalls > 0 {
			degradations = append(degradations, fmt.Sprintf(
				"watchdog: %d stall(s) detected", pres.Stalls))
		}
		rec.Add(metrics.GovernorDegradations, uint64(len(degradations)))
		res = fill(res, pres.Result, time.Since(start))
		res.CandidateMemoryBytes = pres.CandidateMemBytes
		res.Report = newRunReport(rec, opts, pres.Workers, res.Duration, res.CandidateMemoryBytes, &pres, degradations)
		res.Report.DeltaEdges = st.deltaEdges()
		res.Report.SnapshotGen = st.gen
		return res, mapErr(err)
	}

	e := engine.New(st.base, pl, eopts)
	var ctxStop atomic.Bool
	e.Stop = &ctxStop
	release := supervise.WatchContext(ctx, func() { ctxStop.Store(true) })
	defer release()
	visit, visitErr := supervise.SafeVisit("visit callback", visit)
	var eres engine.Result
	err = supervise.Call("sequential enumeration", func() error {
		var rerr error
		eres, rerr = e.Run(visit)
		return rerr
	})
	res = fill(res, eres, time.Since(start))
	res.CandidateMemoryBytes = e.CandidateMemoryBytes()
	rec.Add(metrics.ArenaBytes, uint64(res.CandidateMemoryBytes))
	res.Report = newRunReport(rec, opts, 1, res.Duration, res.CandidateMemoryBytes, nil, nil)
	res.Report.DeltaEdges = st.deltaEdges()
	res.Report.SnapshotGen = st.gen
	if verr := visitErr(); verr != nil {
		err = verr
	}
	if err == nil && eres.Stopped && ctx != nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	return res, mapErr(err)
}

func fill(res Result, er engine.Result, d time.Duration) Result {
	res.Matches = er.Matches
	res.Intersections = er.Stats.Intersections
	res.GallopingPercent = er.Stats.GallopingPercent()
	res.Nodes = er.Nodes
	res.Duration = d
	res.Stopped = er.Stopped
	return res
}

func mapErr(err error) error {
	switch {
	case errors.Is(err, engine.ErrTimeLimit):
		return ErrTimeLimit
	case errors.Is(err, engine.ErrMemoryBudget):
		return ErrMemoryBudget
	case errors.Is(err, admission.ErrOverloaded):
		return ErrOverloaded
	case errors.Is(err, admission.ErrStalled):
		return ErrStalled
	}
	return err
}

// sizeWorkers walks the memory-degradation ladder before any worker
// spawns: if the requested pool's predicted arena footprint exceeds the
// budget headroom even with exact-size (tight) slabs, workers are shed
// — down to serial — so the run fits; the engine's hard
// ErrMemoryBudget stop remains as the last resort for predictions the
// estimate cannot see (the prediction covers per-worker candidate
// buffers, the dominant term).
func sizeWorkers(workers, maxDegree, patternVerts int, lim *arena.Limiter, degradations []string) (int, []string, error) {
	head := lim.Headroom()
	if head < 0 {
		return workers, degradations, nil
	}
	if err := faultpoint.Hit(faultpoint.PointBudgetCheck); err != nil {
		return 0, nil, fmt.Errorf("light: budget check: %w", err)
	}
	// Per-worker worst case: one cap-d_max buffer per pattern vertex
	// plus one scratch buffer.
	allocs := patternVerts + 1
	tightEst := arena.EstimateBytes(allocs, maxDegree, true)
	if tightEst <= 0 || int64(workers)*tightEst <= head {
		return workers, degradations, nil
	}
	fit := int(head / tightEst)
	if fit < 1 {
		fit = 1
	}
	if fit < workers {
		degradations = append(degradations, fmt.Sprintf(
			"memory: shed workers %d -> %d (predicted %d B/worker, headroom %d B)",
			workers, fit, tightEst, head))
		workers = fit
	}
	return workers, degradations, nil
}

// PlanKey returns the canonical key of the plan the optimizer would
// run for (g, p, opts): pattern adjacency, enumeration order, execution
// order, COMP operands, and symmetry constraints — everything that
// determines the search tree walked, and nothing cosmetic. Two queries
// with equal plan keys on the same graph walk identical trees and
// produce identical deterministic counters, which is what makes the key
// (together with Graph.Fingerprint and the option set) a sound result
// cache key; see cmd/lightd.
func PlanKey(g *Graph, p *Pattern, opts Options) (string, error) {
	st, err := g.resolveState(opts.Snapshot)
	if err != nil {
		return "", err
	}
	pl, err := preparePlan(st, p, opts)
	if err != nil {
		return "", err
	}
	return pl.CompatKey(), nil
}

// Explain returns a human-readable rendering of the plan the optimizer
// would run for (g, p, opts): enumeration order, execution order with
// COMP operands and MAT symmetry checks, anchor/free structure, and the
// cost-model breakdown — the library's EXPLAIN.
func Explain(g *Graph, p *Pattern, opts Options) (string, error) {
	st, err := g.resolveState(opts.Snapshot)
	if err != nil {
		return "", err
	}
	pl, err := preparePlan(st, p, opts)
	if err != nil {
		return "", err
	}
	return pl.Explain(st.planStats()), nil
}
