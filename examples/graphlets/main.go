// Graphlet kernel computation (the paper's fourth motivating
// application, [22] in its references): represent each graph by its
// vector of small-subgraph counts and compare graphs by the cosine
// similarity of those vectors — the graphlet kernel used for graph
// classification.
//
// Run with:
//
//	go run ./examples/graphlets
package main

import (
	"fmt"
	"log"
	"math"

	"light"
)

// graphletNames are the subgraph features: the connected 3- and
// 4-vertex patterns reachable through the public catalog.
var graphletNames = []string{"path3", "triangle", "path4", "star3", "P1", "P2", "P3"}

func main() {
	graphs := map[string]*light.Graph{
		"social-A (BA k=4)": light.GenerateBarabasiAlbert(900, 4, 1),
		"social-B (BA k=4)": light.GenerateBarabasiAlbert(900, 4, 2),
		"web-C  (RMAT)":     light.GenerateRMAT(10, 4, 3),
		"random-D (ER)":     light.GenerateErdosRenyi(900, 3600, 4),
		"lattice-E (grid)":  light.GenerateGrid(30, 30),
	}

	names := []string{"social-A (BA k=4)", "social-B (BA k=4)", "web-C  (RMAT)", "random-D (ER)", "lattice-E (grid)"}
	vectors := map[string][]float64{}
	for _, gname := range names {
		vectors[gname] = graphletVector(graphs[gname])
	}

	fmt.Println("graphlet count vectors (log-scaled):")
	fmt.Printf("%-20s", "")
	for _, f := range graphletNames {
		fmt.Printf(" %9s", f)
	}
	fmt.Println()
	for _, gname := range names {
		fmt.Printf("%-20s", gname)
		for _, v := range vectors[gname] {
			fmt.Printf(" %9.2f", v)
		}
		fmt.Println()
	}

	fmt.Println("\ncosine similarity of graphlet vectors:")
	fmt.Printf("%-20s", "")
	for _, gname := range names {
		fmt.Printf(" %9s", gname[:8])
	}
	fmt.Println()
	for _, a := range names {
		fmt.Printf("%-20s", a)
		for _, b := range names {
			fmt.Printf(" %9.3f", cosine(vectors[a], vectors[b]))
		}
		fmt.Println()
	}
	fmt.Println("\nThe two preferential-attachment graphs are near-identical under the")
	fmt.Println("kernel; the lattice (no triangles at all) is the clear outlier.")
}

// graphletVector counts each feature pattern and log-scales the counts
// (graphlet counts span orders of magnitude).
func graphletVector(g *light.Graph) []float64 {
	vec := make([]float64, len(graphletNames))
	for i, f := range graphletNames {
		p, err := light.PatternByName(f)
		if err != nil {
			log.Fatal(err)
		}
		res, err := light.Count(g, p, light.Options{})
		if err != nil {
			log.Fatal(err)
		}
		vec[i] = math.Log1p(float64(res.Matches))
	}
	return vec
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
