// Labeled subgraph matching: find typed structures in a heterogeneous
// network. We model a tiny "collaboration platform" with three vertex
// types — users, projects, and organizations — and query for typed
// patterns such as "two users of the same organization working on the
// same project" (a labeled square).
//
// Run with:
//
//	go run ./examples/labeled
package main

import (
	"fmt"
	"log"
	"math/rand"

	"light"
)

const (
	user light.Label = iota
	project
	org
)

var labelName = map[light.Label]string{user: "user", project: "project", org: "org"}

func main() {
	g, labels := buildPlatform(3000, 400, 40, 7)
	lg, err := light.WithLabels(g, labels)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[light.Label]int{}
	for _, l := range labels {
		counts[l]++
	}
	fmt.Printf("platform graph: %v (%d users, %d projects, %d orgs)\n\n",
		g, counts[user], counts[project], counts[org])

	// Query 1: collaboration square — user-project-user-org cycle: two
	// users in the same org contributing to the same project.
	square, _ := light.PatternByName("square")
	collab, err := light.WithPatternLabels(square, []light.Label{user, project, user, org})
	if err != nil {
		log.Fatal(err)
	}
	res, err := light.CountLabeled(lg, collab, light.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same-org co-contributors (labeled squares): %d (in %v)\n", res.Matches, res.Duration)

	// Query 2: a user bridging two projects (labeled path).
	path3, _ := light.PatternByName("path3")
	bridge, err := light.WithPatternLabels(path3, []light.Label{project, user, project})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := light.CountLabeled(lg, bridge, light.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users bridging two projects:               %d\n", res2.Matches)

	// Show a few concrete collaboration squares.
	fmt.Println("\nsample collaborations (u0=user, u1=project, u2=user, u3=org):")
	shown := 0
	_, err = light.EnumerateLabeled(lg, collab, light.Options{}, func(m []light.VertexID) bool {
		fmt.Printf("  users %d & %d, project %d, org %d\n", m[0], m[2], m[1], m[3])
		shown++
		return shown < 5
	})
	if err != nil {
		log.Fatal(err)
	}

	// Contrast with the unlabeled count of the same shape: labels prune
	// the space dramatically.
	un, err := light.Count(g, square, light.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunlabeled squares in the same graph: %d — labels cut the answer to %.2f%%\n",
		un.Matches, 100*float64(res.Matches)/float64(un.Matches))
}

// buildPlatform wires users to orgs (membership), users to projects
// (contribution), and projects to orgs (ownership), preferentially
// attaching to popular projects.
func buildPlatform(users, projects, orgs int, seed int64) (*light.Graph, []light.Label) {
	rng := rand.New(rand.NewSource(seed))
	n := users + projects + orgs
	labels := make([]light.Label, n)
	userID := func(i int) light.VertexID { return light.VertexID(i) }
	projID := func(i int) light.VertexID { return light.VertexID(users + i) }
	orgID := func(i int) light.VertexID { return light.VertexID(users + projects + i) }
	for i := 0; i < projects; i++ {
		labels[projID(i)] = project
	}
	for i := 0; i < orgs; i++ {
		labels[orgID(i)] = org
	}

	var edges [][2]light.VertexID
	popular := make([]int, 0, users*3)
	for i := 0; i < projects; i++ {
		popular = append(popular, i) // one base entry each
	}
	for u := 0; u < users; u++ {
		// Each user: one org, 1–4 projects.
		edges = append(edges, [2]light.VertexID{userID(u), orgID(rng.Intn(orgs))})
		k := 1 + rng.Intn(4)
		for j := 0; j < k; j++ {
			p := popular[rng.Intn(len(popular))]
			edges = append(edges, [2]light.VertexID{userID(u), projID(p)})
			popular = append(popular, p)
		}
	}
	for p := 0; p < projects; p++ {
		edges = append(edges, [2]light.VertexID{projID(p), orgID(rng.Intn(orgs))})
	}

	// NewGraph relabels vertices into degree order; MapVertex translates
	// our original ids, so labels follow the vertices.
	g := light.NewGraph(n, edges)
	ordered := make([]light.Label, n)
	for orig, l := range labels {
		ordered[g.MapVertex(light.VertexID(orig))] = l
	}
	return g, ordered
}
