// Cohesive-group analysis on a social network (the paper's social
// network applications, [10]/[23] in its references): enumerate
// 4-cliques with a visitor, rank members by how many tightly-knit
// groups they belong to, and measure group overlap — the kind of
// analysis used to study the evolution and longevity of online groups.
//
// Run with:
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"
	"sort"

	"light"
)

func main() {
	g := light.GenerateBarabasiAlbert(3000, 6, 2024)
	fmt.Printf("social network: %v\n", g)

	clique4, err := light.PatternByName("clique4")
	if err != nil {
		log.Fatal(err)
	}

	// Enumerate every 4-clique once (symmetry breaking dedups) and
	// accumulate per-member statistics with a visitor. Workers > 1
	// exercises the parallel path; the visitor is serialized for us.
	membership := make(map[light.VertexID]int)
	var cliques uint64
	res, err := light.Enumerate(g, clique4, light.Options{Workers: 4}, func(m []light.VertexID) bool {
		cliques++
		for _, v := range m {
			membership[v]++
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-cliques: %d (found in %v with %d workers)\n\n", res.Matches, res.Duration, 4)
	if cliques != res.Matches {
		log.Fatalf("visitor saw %d cliques, result says %d", cliques, res.Matches)
	}

	// Rank members by clique participation.
	type member struct {
		id light.VertexID
		n  int
	}
	ranked := make([]member, 0, len(membership))
	for v, n := range membership {
		ranked = append(ranked, member{v, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].id < ranked[j].id
	})
	fmt.Println("most clique-embedded members:")
	fmt.Printf("%8s %10s %8s\n", "member", "cliques", "degree")
	for i := 0; i < 10 && i < len(ranked); i++ {
		fmt.Printf("%8d %10d %8d\n", ranked[i].id, ranked[i].n, g.Degree(ranked[i].id))
	}

	// How concentrated is cohesion? A classic heavy-tail check.
	inAny := len(membership)
	fmt.Printf("\nmembers in ≥1 four-clique: %d of %d (%.1f%%)\n",
		inAny, g.NumVertices(), 100*float64(inAny)/float64(g.NumVertices()))
	top10 := 0
	for i := 0; i < len(ranked) && i < len(ranked)/10+1; i++ {
		top10 += ranked[i].n
	}
	total := 0
	for _, m := range ranked {
		total += m.n
	}
	if total > 0 {
		fmt.Printf("top 10%% of members hold %.1f%% of all clique memberships\n",
			100*float64(top10)/float64(total))
	}
}
