// Network motif discovery (the paper's first motivating application,
// [26] in its references): count each catalog pattern in a real-looking
// network and in degree-matched random baselines, then report which
// patterns are over-represented — the classic motif z-score analysis.
//
// Run with:
//
//	go run ./examples/motifs
package main

import (
	"fmt"
	"log"
	"math"

	"light"
)

const baselines = 5

func main() {
	// The "observed" network: preferential attachment produces many more
	// closed structures than uniform randomness.
	observed := light.GenerateBarabasiAlbert(1200, 4, 7)
	n := observed.NumVertices()
	m := int(observed.NumEdges())
	fmt.Printf("observed network: %v\n\n", observed)

	fmt.Printf("%-22s %10s %12s %10s %8s\n", "pattern", "observed", "random-mean", "random-sd", "z")
	for _, name := range []string{"triangle", "P1", "P2", "P3", "P4"} {
		p, err := light.PatternByName(name)
		if err != nil {
			log.Fatal(err)
		}
		obs := count(observed, p)

		// Baselines: random graphs with the same vertex and edge count.
		// (A full motif pipeline rewires edges preserving degrees; the
		// G(n,m) baseline keeps this example brief.)
		var sum, sumSq float64
		for i := 0; i < baselines; i++ {
			g := light.GenerateErdosRenyi(n, m, int64(1000+i))
			c := float64(count(g, p))
			sum += c
			sumSq += c * c
		}
		mean := sum / baselines
		sd := math.Sqrt(sumSq/baselines - mean*mean)
		z := 0.0
		if sd > 0 {
			z = (float64(obs) - mean) / sd
		}
		marker := ""
		if z > 2 {
			marker = "  ← motif"
		}
		fmt.Printf("%-22s %10d %12.1f %10.1f %8.1f%s\n", p, obs, mean, sd, z, marker)
	}
	fmt.Println("\nz > 2: the pattern appears far more often than chance — a network motif.")
}

func count(g *light.Graph, p *light.Pattern) uint64 {
	res, err := light.Count(g, p, light.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return res.Matches
}
