// Quickstart: load a graph, count a pattern, list a few matches.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"light"
)

func main() {
	// A synthetic social-style network: 2,000 members, power-law degrees.
	g := light.GenerateBarabasiAlbert(2000, 4, 42)
	fmt.Println("data graph:", g)

	// Count triangles with everything at defaults (LIGHT algorithm,
	// hybrid intersection, cost-based order).
	tri, err := light.PatternByName("triangle")
	if err != nil {
		log.Fatal(err)
	}
	res, err := light.Count(g, tri, light.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d (%.2fms, %d set intersections)\n",
		res.Matches, float64(res.Duration.Microseconds())/1000, res.Intersections)

	// Enumerate the first five chordal squares (the paper's running
	// example pattern) and print which members form them.
	p2, err := light.PatternByName("P2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first five chordal squares:")
	shown := 0
	_, err = light.Enumerate(g, p2, light.Options{}, func(m []light.VertexID) bool {
		fmt.Printf("  u0→%d u1→%d u2→%d u3→%d\n", m[0], m[1], m[2], m[3])
		shown++
		return shown < 5
	})
	if err != nil {
		log.Fatal(err)
	}

	// Scale up with workers and compare algorithms.
	p4, err := light.PatternByName("P4")
	if err != nil {
		log.Fatal(err)
	}
	for _, algo := range []light.Algorithm{light.SE, light.LIGHT} {
		res, err := light.Count(g, p4, light.Options{Algorithm: algo, Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("houses (P4) with %-5v: %d matches in %v\n", algo, res.Matches, res.Duration)
	}
}
