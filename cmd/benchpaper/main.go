// Command benchpaper regenerates every table and figure of the paper's
// evaluation (Section VIII) on the synthetic dataset suite. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers differ (different hardware, scaled datasets, simulated
// comparators) but the shape — who wins, by roughly what factor, where
// failures occur — is the reproduction target. See EXPERIMENTS.md.
//
// Usage:
//
//	benchpaper -exp fig4            # one experiment
//	benchpaper -exp all -scale 2    # everything, bigger datasets
//	benchpaper -exp fig5 -json      # also write BENCH_fig5.json
//
// With -json, each experiment additionally writes a schema-versioned
// BENCH_<exp>.json report (run fingerprint, host info, per-cell
// wall-clock + deterministic work counters) to -benchdir.
//
// Experiments: table2 fig4 fig5 fig6 table3 fig7 table4 table5 fig8 all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"light/internal/metrics"
)

type config struct {
	scale    int
	timeout  time.Duration
	workers  int
	spaceMB  int64
	shuffle  time.Duration
	twintwig bool
	patterns []string
	datasets []string
	col      *collector // non-nil when -json is set
}

func main() {
	exp := flag.String("exp", "all", "experiment: table2 fig4 fig5 fig6 table3 fig7 table4 table5 fig8 estimator all")
	scale := flag.Int("scale", 1, "dataset size multiplier")
	timeout := flag.Duration("timeout", 60*time.Second, "per-run time limit (the paper's OOT threshold)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max worker threads for the parallel experiments")
	spaceMB := flag.Int64("space", 256, "space budget in MiB for the BFS-join simulators (the paper's OOS threshold)")
	shuffle := flag.Duration("shuffle", 150*time.Nanosecond, "simulated shuffle cost per intermediate tuple for SEED/CRYSTAL")
	twintwig := flag.Bool("twintwig", false, "add a TwinTwig-sim column to fig8")
	pats := flag.String("patterns", "", "comma-separated pattern subset (default: experiment-specific)")
	data := flag.String("datasets", "", "comma-separated dataset subset (default: experiment-specific)")
	jsonOut := flag.Bool("json", false, "also write BENCH_<exp>.json machine-readable reports")
	benchDir := flag.String("benchdir", ".", "directory for BENCH_<exp>.json files (with -json)")
	flag.Parse()

	cfg := config{
		scale:    *scale,
		timeout:  *timeout,
		workers:  *workers,
		spaceMB:  *spaceMB,
		shuffle:  *shuffle,
		twintwig: *twintwig,
	}
	if *pats != "" {
		cfg.patterns = strings.Split(*pats, ",")
	}
	if *data != "" {
		cfg.datasets = strings.Split(*data, ",")
	}

	experiments := map[string]func(config){
		"table2":    table2,
		"fig4":      fig4,
		"fig5":      fig5,
		"fig6":      fig6,
		"table3":    table3,
		"fig7":      fig7,
		"table4":    table4,
		"table5":    table5,
		"fig8":      fig8,
		"estimator": estimator,
	}
	order := []string{"table2", "fig4", "fig5", "fig6", "table3", "fig7", "table4", "table5", "fig8"}

	runOne := func(name string, fn func(config)) {
		if *jsonOut {
			cfg.col = &collector{}
		}
		fn(cfg)
		if *jsonOut && len(cfg.col.rows) > 0 {
			path := filepath.Join(*benchDir, "BENCH_"+name+".json")
			rep := metrics.NewBenchReport(name, map[string]string{
				"scale":   fmt.Sprint(cfg.scale),
				"workers": fmt.Sprint(cfg.workers),
				"timeout": cfg.timeout.String(),
			}, cfg.col.rows)
			if err := metrics.WriteBenchFile(path, rep); err != nil {
				fmt.Fprintln(os.Stderr, "benchpaper:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d rows)\n", path, len(rep.Rows))
		}
	}

	if *exp == "all" {
		for _, name := range order {
			runOne(name, experiments[name])
			fmt.Println()
		}
		return
	}
	fn, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchpaper: unknown experiment %q (have %v, all)\n", *exp, order)
		os.Exit(1)
	}
	runOne(*exp, fn)
}
