package main

import (
	"errors"
	"fmt"
	"time"

	"light/internal/baselines"
	"light/internal/bfsjoin"
	"light/internal/engine"
	"light/internal/estimate"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/metrics"
	"light/internal/parallel"
	"light/internal/pattern"
	"light/internal/plan"
)

// ----- shared plumbing -----

type dataset struct {
	name string
	g    *graph.Graph
}

func (c config) loadDatasets(defaults ...string) []dataset {
	names := c.datasets
	if names == nil {
		names = defaults
	}
	out := make([]dataset, 0, len(names))
	for _, n := range names {
		d, err := gen.ByName(n, c.scale)
		if err != nil {
			panic(err)
		}
		out = append(out, dataset{n, d.Make()})
	}
	return out
}

func (c config) loadPatterns(defaults ...string) []*pattern.Pattern {
	names := c.patterns
	if names == nil {
		names = defaults
	}
	out := make([]*pattern.Pattern, 0, len(names))
	for _, n := range names {
		p, err := pattern.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// compilePlan chooses the cost-optimal order for (p, g) under mode.
func compilePlan(g *graph.Graph, p *pattern.Pattern, mode plan.Mode) *plan.Plan {
	pl, err := plan.Choose(p, nil, estimate.Collect(g), mode)
	if err != nil {
		panic(err)
	}
	return pl
}

// pinnedOrders are the paper's π¹ for the individual-technique
// experiments (Section VIII-B1 lists them explicitly): π¹(P2) =
// (u0,u2,u1,u3) and π¹(P4) = (u0,u1,u4,u2,u3). Our P6 analog differs
// from the paper's pattern, so its pinned order (u0,u2,u1,u3,u4) is the
// one that exhibits the same MSC reuse the paper reports for P6.
// Using one fixed order across SE/LM/MSC/LIGHT isolates the techniques
// from the order optimizer, exactly as the paper does.
var pinnedOrders = map[string][]pattern.Vertex{
	"P2": {0, 2, 1, 3},
	"P4": {0, 1, 4, 2, 3},
	"P6": {0, 2, 1, 3, 4},
}

// sharedPlans compiles SE, LM, MSC and LIGHT on the SAME enumeration
// order, matching the paper's Fig 4/5 protocol ("the enumeration orders
// of SE, LM, MSC and LIGHT are the same"). The paper's pinned π¹ is used
// when the pattern has one; otherwise LIGHT's cost-optimal order.
func sharedPlans(g *graph.Graph, p *pattern.Pattern) map[string]*plan.Plan {
	pi := pinnedOrders[short(p)]
	if pi == nil {
		pi = compilePlan(g, p, plan.ModeLIGHT).Pi
	}
	po := pattern.SymmetryBreaking(p)
	out := make(map[string]*plan.Plan, 4)
	for _, mode := range []plan.Mode{plan.ModeSE, plan.ModeLM, plan.ModeMSC, plan.ModeLIGHT} {
		pl, err := plan.Compile(p, po, pi, mode)
		if err != nil {
			panic(err)
		}
		out[mode.Name()] = pl
	}
	return out
}

// outcome is one cell of a results table: a duration, a count, or a
// failure mark (INF for out-of-time, OOS for out-of-space). The work
// counters are filled by the engine-backed runners; the comparison
// systems report only matches and intersections.
type outcome struct {
	dur     time.Duration
	count   uint64
	ints    uint64
	galloPc float64
	mark    string // "" = success
	nodes   uint64
	comps   uint64
	gallops uint64
	elems   uint64
	mem     int64
}

// collector accumulates BenchRows for -json output. A nil collector
// records nothing, so experiments call rec unconditionally.
type collector struct {
	rows []metrics.BenchRow
}

func (c *collector) rec(dataset, pat, system string, o outcome) {
	if c == nil {
		return
	}
	c.rows = append(c.rows, metrics.BenchRow{
		Dataset:       dataset,
		Pattern:       pat,
		System:        system,
		Mark:          o.mark,
		WallNS:        int64(o.dur),
		Matches:       o.count,
		Nodes:         o.nodes,
		Comps:         o.comps,
		Intersections: o.ints,
		Galloping:     o.gallops,
		Elements:      o.elems,
		MemoryBytes:   o.mem,
	})
}

func (o outcome) timeCell() string {
	if o.mark != "" {
		return o.mark
	}
	return fmtDur(o.dur)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// runSerial runs one engine-backed algorithm with one thread.
func runSerial(g *graph.Graph, p *pattern.Pattern, mode plan.Mode, kernel intersect.Kind, limit time.Duration) outcome {
	return runPlan(g, compilePlan(g, p, mode), kernel, limit)
}

// runPlan runs a precompiled plan with one thread.
func runPlan(g *graph.Graph, pl *plan.Plan, kernel intersect.Kind, limit time.Duration) outcome {
	e := engine.New(g, pl, engine.Options{Kernel: kernel, TimeLimit: limit})
	start := time.Now()
	res, err := e.Run(nil)
	o := engineOutcome(time.Since(start), res)
	if errors.Is(err, engine.ErrTimeLimit) {
		o.mark = "INF"
	}
	return o
}

// engineOutcome copies an engine result's counters into an outcome.
func engineOutcome(d time.Duration, res engine.Result) outcome {
	return outcome{
		dur:     d,
		count:   res.Matches,
		ints:    res.Stats.Intersections,
		galloPc: res.Stats.GallopingPercent(),
		nodes:   res.Nodes,
		comps:   res.Comps,
		gallops: res.Stats.Galloping,
		elems:   res.Stats.Elements,
	}
}

// runParallel runs one engine-backed algorithm with the work-stealing
// scheduler.
func runParallel(g *graph.Graph, p *pattern.Pattern, mode plan.Mode, kernel intersect.Kind, workers int, limit time.Duration) (outcome, parallel.Result) {
	return runParallelPlan(g, compilePlan(g, p, mode), kernel, workers, limit)
}

// runParallelPlan runs a precompiled plan under the work stealer.
func runParallelPlan(g *graph.Graph, pl *plan.Plan, kernel intersect.Kind, workers int, limit time.Duration) (outcome, parallel.Result) {
	return runParallelCount(g, pl, kernel, workers, limit, false)
}

// runParallelCount optionally enables the tail-MAT counting shortcut
// (used by the Fig 8 overall comparison for both LIGHT and the DUALSIM
// proxy — see EXPERIMENTS.md).
func runParallelCount(g *graph.Graph, pl *plan.Plan, kernel intersect.Kind, workers int, limit time.Duration, tailCount bool) (outcome, parallel.Result) {
	start := time.Now()
	res, err := parallel.Run(g, pl, parallel.Options{
		Engine:  engine.Options{Kernel: kernel, TimeLimit: limit, TailCount: tailCount},
		Workers: workers,
	}, nil)
	o := engineOutcome(time.Since(start), res.Result)
	o.mem = res.CandidateMemBytes
	if errors.Is(err, engine.ErrTimeLimit) {
		o.mark = "INF"
	}
	return o, res
}

// runEH / runCFL / runSEED / runCrystal wrap the comparison systems.
func runEH(g *graph.Graph, p *pattern.Pattern, limit time.Duration, spaceMB int64) outcome {
	start := time.Now()
	res, err := baselines.EH(g, p, baselines.Options{TimeLimit: limit, MaxBytes: spaceMB << 20})
	o := outcome{dur: time.Since(start), count: res.Matches, ints: res.Intersections}
	switch {
	case errors.Is(err, baselines.ErrTimeLimit):
		o.mark = "INF"
	case errors.Is(err, baselines.ErrOutOfSpace):
		o.mark = "OOS"
	}
	return o
}

func runCFL(g *graph.Graph, p *pattern.Pattern, limit time.Duration) outcome {
	start := time.Now()
	res, err := baselines.CFL(g, p, baselines.Options{TimeLimit: limit})
	o := outcome{dur: time.Since(start), count: res.Matches, ints: res.Intersections}
	if errors.Is(err, baselines.ErrTimeLimit) {
		o.mark = "INF"
	}
	return o
}

func runBFS(fn func(*graph.Graph, *pattern.Pattern, bfsjoin.Options) (bfsjoin.Result, error),
	g *graph.Graph, p *pattern.Pattern, c config) outcome {
	start := time.Now()
	res, err := fn(g, p, bfsjoin.Options{
		TimeLimit:       c.timeout,
		MaxBytes:        c.spaceMB << 20,
		ShufflePerTuple: c.shuffle,
		Sleep:           false, // report simulated time instead of sleeping
	})
	o := outcome{dur: time.Since(start) + res.ShuffleTime, count: res.Matches}
	switch {
	case errors.Is(err, bfsjoin.ErrTimeLimit):
		o.mark = "INF"
	case errors.Is(err, bfsjoin.ErrOutOfSpace):
		o.mark = "OOS"
	}
	return o
}

// ----- experiments -----

// table2 prints the dataset properties (the paper's Table II).
func table2(c config) {
	fmt.Printf("== Table II: dataset properties (scale=%d) ==\n", c.scale)
	fmt.Printf("%-8s %-14s %12s %12s %10s %8s\n", "Name", "Stands for", "N", "M", "Memory", "dmax")
	names := c.datasets
	if names == nil {
		names = []string{"yt-s", "eu-s", "lj-s", "ot-s", "uk-s", "fs-s"}
	}
	for _, n := range names {
		d, err := gen.ByName(n, c.scale)
		if err != nil {
			panic(err)
		}
		g := d.Make()
		fmt.Printf("%-8s %-14s %12d %12d %9.2fMB %8d\n",
			d.Name, d.Paper, g.NumVertices(), g.NumEdges(), float64(g.MemoryBytes())/(1<<20), g.MaxDegree())
	}
}

// fig4 compares the serial execution time of EH, CFL, SE, LM, MSC and
// LIGHT (all single-threaded, scalar Merge — the paper's no-SIMD setup).
func fig4(c config) {
	fmt.Println("== Fig 4: execution time, serial, no block kernels ==")
	fmt.Printf("%-8s %-4s | %10s %10s %10s %10s %10s %10s | %s\n",
		"dataset", "pat", "EH", "CFL", "SE", "LM", "MSC", "LIGHT", "matches")
	for _, d := range c.loadDatasets("yt-s", "lj-s") {
		for _, p := range c.loadPatterns("P2", "P4", "P6") {
			plans := sharedPlans(d.g, p)
			eh := runEH(d.g, p, c.timeout, c.spaceMB)
			cfl := runCFL(d.g, p, c.timeout)
			se := runPlan(d.g, plans["SE"], intersect.KindMerge, c.timeout)
			lm := runPlan(d.g, plans["LM"], intersect.KindMerge, c.timeout)
			msc := runPlan(d.g, plans["MSC"], intersect.KindMerge, c.timeout)
			li := runPlan(d.g, plans["LIGHT"], intersect.KindMerge, c.timeout)
			for _, cell := range []struct {
				sys string
				o   outcome
			}{{"EH", eh}, {"CFL", cfl}, {"SE", se}, {"LM", lm}, {"MSC", msc}, {"LIGHT", li}} {
				c.col.rec(d.name, short(p), cell.sys, cell.o)
			}
			fmt.Printf("%-8s %-4s | %10s %10s %10s %10s %10s %10s | %d\n",
				d.name, short(p), eh.timeCell(), cfl.timeCell(), se.timeCell(),
				lm.timeCell(), msc.timeCell(), li.timeCell(), li.count)
		}
	}
}

// fig5 compares the number of set intersections of the same algorithms.
func fig5(c config) {
	fmt.Println("== Fig 5: number of set intersections ==")
	fmt.Printf("%-8s %-4s | %12s %12s %12s %12s %12s %12s\n",
		"dataset", "pat", "EH", "CFL", "SE", "LM", "MSC", "LIGHT")
	for _, d := range c.loadDatasets("yt-s", "lj-s") {
		for _, p := range c.loadPatterns("P2", "P4", "P6") {
			plans := sharedPlans(d.g, p)
			eh := runEH(d.g, p, c.timeout, c.spaceMB)
			cfl := runCFL(d.g, p, c.timeout)
			se := runPlan(d.g, plans["SE"], intersect.KindMerge, c.timeout)
			lm := runPlan(d.g, plans["LM"], intersect.KindMerge, c.timeout)
			msc := runPlan(d.g, plans["MSC"], intersect.KindMerge, c.timeout)
			li := runPlan(d.g, plans["LIGHT"], intersect.KindMerge, c.timeout)
			for _, cell := range []struct {
				sys string
				o   outcome
			}{{"EH", eh}, {"CFL", cfl}, {"SE", se}, {"LM", lm}, {"MSC", msc}, {"LIGHT", li}} {
				c.col.rec(d.name, short(p), cell.sys, cell.o)
			}
			fmt.Printf("%-8s %-4s | %12s %12s %12s %12s %12s %12s\n",
				d.name, short(p), intCell(eh), intCell(cfl), intCell(se), intCell(lm), intCell(msc), intCell(li))
		}
	}
	fmt.Println("(failed runs show their mark; counts are exact and deterministic)")
}

func intCell(o outcome) string {
	if o.mark != "" {
		return o.mark
	}
	return fmt.Sprintf("%d", o.ints)
}

// fig6 compares the intersection kernels inside LIGHT (one thread).
func fig6(c config) {
	fmt.Println("== Fig 6: execution time by set intersection method (1 thread) ==")
	fmt.Printf("%-8s %-4s | %12s %12s %12s %12s\n",
		"dataset", "pat", "Merge", "MergeBlock", "Hybrid", "HybridBlock")
	for _, d := range c.loadDatasets("yt-s", "lj-s") {
		for _, p := range c.loadPatterns("P2", "P4", "P6") {
			pl := sharedPlans(d.g, p)["LIGHT"]
			cells := make([]string, 4)
			for i, k := range []intersect.Kind{intersect.KindMerge, intersect.KindMergeBlock, intersect.KindHybrid, intersect.KindHybridBlock} {
				o := runPlan(d.g, pl, k, c.timeout)
				c.col.rec(d.name, short(p), "LIGHT/"+k.String(), o)
				cells[i] = o.timeCell()
			}
			fmt.Printf("%-8s %-4s | %12s %12s %12s %12s\n", d.name, short(p), cells[0], cells[1], cells[2], cells[3])
		}
	}
}

// table3 prints the percentage of galloping searches under Hybrid.
func table3(c config) {
	fmt.Println("== Table III: percentage of Galloping search (Hybrid kernel) ==")
	fmt.Printf("%-8s %-4s | %10s\n", "dataset", "pat", "Galloping%")
	for _, d := range c.loadDatasets("yt-s", "lj-s") {
		for _, p := range c.loadPatterns("P2", "P4", "P6") {
			o := runPlan(d.g, sharedPlans(d.g, p)["LIGHT"], intersect.KindHybrid, c.timeout)
			c.col.rec(d.name, short(p), "LIGHT/Hybrid", o)
			cell := fmt.Sprintf("%.1f%%", o.galloPc)
			if o.mark != "" {
				cell = o.mark
			}
			fmt.Printf("%-8s %-4s | %10s\n", d.name, short(p), cell)
		}
	}
}

// fig7 scales the thread count for LIGHT with HybridBlock.
func fig7(c config) {
	fmt.Println("== Fig 7: LIGHT execution time vs threads (HybridBlock) ==")
	threads := []int{1, 2, 4, 8, 16, 32, 64}
	fmt.Printf("%-8s %-4s |", "dataset", "pat")
	for _, t := range threads {
		fmt.Printf(" %9s", fmt.Sprintf("%dT", t))
	}
	fmt.Printf(" | %9s\n", "speedup")
	for _, d := range c.loadDatasets("yt-s", "lj-s") {
		for _, p := range c.loadPatterns("P2", "P4", "P6") {
			fmt.Printf("%-8s %-4s |", d.name, short(p))
			var base, best time.Duration
			for _, t := range threads {
				o, _ := runParallel(d.g, p, plan.ModeLIGHT, intersect.KindHybridBlock, t, c.timeout)
				c.col.rec(d.name, short(p), fmt.Sprintf("LIGHT/%dT", t), o)
				fmt.Printf(" %9s", o.timeCell())
				if t == 1 {
					base = o.dur
				}
				if best == 0 || o.dur < best {
					best = o.dur
				}
			}
			fmt.Printf(" | %8.1fx\n", float64(base)/float64(best))
		}
	}
}

// table4 reproduces the SE vs LIGHT speedup table.
func table4(c config) {
	fmt.Println("== Table IV: comparison with SE ==")
	fmt.Printf("%-8s %-4s | %10s %10s %10s %10s | %9s\n",
		"dataset", "pat", "T_SE", "T_SE+P", "T_LIGHT", "T_LIGHT+P", "speedup")
	for _, d := range c.loadDatasets("yt-s", "lj-s") {
		for _, p := range c.loadPatterns("P2", "P4", "P6") {
			plans := sharedPlans(d.g, p)
			se := runPlan(d.g, plans["SE"], intersect.KindMerge, c.timeout)
			sep, _ := runParallelPlan(d.g, plans["SE"], intersect.KindHybridBlock, c.workers, c.timeout)
			li := runPlan(d.g, plans["LIGHT"], intersect.KindMerge, c.timeout)
			lip, _ := runParallelPlan(d.g, plans["LIGHT"], intersect.KindHybridBlock, c.workers, c.timeout)
			for _, cell := range []struct {
				sys string
				o   outcome
			}{{"SE", se}, {"SE+P", sep}, {"LIGHT", li}, {"LIGHT+P", lip}} {
				c.col.rec(d.name, short(p), cell.sys, cell.o)
			}
			speed := "-"
			if se.mark == "" && lip.mark == "" && lip.dur > 0 {
				speed = fmt.Sprintf("%.0fx", float64(se.dur)/float64(lip.dur))
			}
			fmt.Printf("%-8s %-4s | %10s %10s %10s %10s | %9s\n",
				d.name, short(p), se.timeCell(), sep.timeCell(), li.timeCell(), lip.timeCell(), speed)
		}
	}
}

// table5 reports the candidate-set memory of the parallel run on P5.
func table5(c config) {
	fmt.Printf("== Table V: candidate-set memory on P5 (%d workers) ==\n", c.workers)
	fmt.Printf("%-8s | %12s\n", "dataset", "memory")
	p := pattern.P5()
	for _, d := range c.loadDatasets("yt-s", "eu-s", "lj-s", "ot-s", "uk-s", "fs-s") {
		o, pres := runParallel(d.g, p, plan.ModeLIGHT, intersect.KindHybridBlock, c.workers, c.timeout)
		c.col.rec(d.name, "P5", "LIGHT", o)
		fmt.Printf("%-8s | %10.3fMB\n", d.name, float64(pres.CandidateMemBytes)/(1<<20))
	}
}

// fig8 is the overall comparison: LIGHT vs DUALSIM-sim (parallel SE) vs
// SEED-sim vs CRYSTAL-sim across the full pattern catalog and suite.
func fig8(c config) {
	fmt.Printf("== Fig 8: overall comparison (workers=%d, space budget=%dMiB, shuffle=%v/tuple) ==\n",
		c.workers, c.spaceMB, c.shuffle)
	hdr := "%-8s %-4s | %10s %10s %10s %10s"
	if c.twintwig {
		fmt.Printf(hdr+" %10s | %s\n", "dataset", "pat", "LIGHT", "DUALSIM*", "SEED*", "CRYSTAL*", "TWINTWIG*", "matches")
	} else {
		fmt.Printf(hdr+" | %s\n", "dataset", "pat", "LIGHT", "DUALSIM*", "SEED*", "CRYSTAL*", "matches")
	}
	for _, d := range c.loadDatasets("yt-s", "eu-s", "lj-s", "ot-s", "uk-s", "fs-s") {
		for _, p := range c.loadPatterns("P1", "P2", "P3", "P4", "P5", "P6", "P7") {
			li, _ := runParallelCount(d.g, compilePlan(d.g, p, plan.ModeLIGHT), intersect.KindHybridBlock, c.workers, c.timeout, true)
			du, _ := runParallelCount(d.g, compilePlan(d.g, p, plan.ModeSE), intersect.KindHybridBlock, c.workers, c.timeout, true)
			seed := runBFS(bfsjoin.SEED, d.g, p, c)
			cry := runBFS(bfsjoin.Crystal, d.g, p, c)
			for _, cell := range []struct {
				sys string
				o   outcome
			}{{"LIGHT", li}, {"DUALSIM*", du}, {"SEED*", seed}, {"CRYSTAL*", cry}} {
				c.col.rec(d.name, short(p), cell.sys, cell.o)
			}
			matches := "-"
			if li.mark == "" {
				matches = fmt.Sprintf("%d", li.count)
			}
			if c.twintwig {
				tt := runBFS(bfsjoin.TwinTwig, d.g, p, c)
				c.col.rec(d.name, short(p), "TWINTWIG*", tt)
				fmt.Printf("%-8s %-4s | %10s %10s %10s %10s %10s | %s\n",
					d.name, short(p), li.timeCell(), du.timeCell(), seed.timeCell(), cry.timeCell(), tt.timeCell(), matches)
				continue
			}
			fmt.Printf("%-8s %-4s | %10s %10s %10s %10s | %s\n",
				d.name, short(p), li.timeCell(), du.timeCell(), seed.timeCell(), cry.timeCell(), matches)
		}
	}
	fmt.Println("(*simulated comparators; see DESIGN.md §3. INF = out of time, OOS = out of space)")
}

// estimator is a supplementary experiment (not a paper table): how well
// the SEED-style cardinality estimator that drives the Section VI cost
// model tracks true match counts. The optimizer only needs relative
// accuracy across orders on the same graph; this prints the absolute
// ratios for transparency.
func estimator(c config) {
	fmt.Println("== Supplementary: cardinality estimator calibration ==")
	fmt.Printf("%-8s %-4s | %14s %14s %8s\n", "dataset", "pat", "true", "estimated", "ratio")
	for _, d := range c.loadDatasets("yt-s", "lj-s") {
		stats := estimate.Collect(d.g)
		for _, p := range c.loadPatterns("P1", "P2", "P3", "P4") {
			o := runSerial(d.g, p, plan.ModeLIGHT, intersect.KindHybridBlock, c.timeout)
			if o.mark != "" {
				fmt.Printf("%-8s %-4s | %14s\n", d.name, short(p), o.mark)
				continue
			}
			aut := float64(len(p.Automorphisms()))
			est := stats.Pattern(p) / aut
			ratio := 0.0
			if o.count > 0 {
				ratio = est / float64(o.count)
			}
			fmt.Printf("%-8s %-4s | %14d %14.3g %8.2f\n", d.name, short(p), o.count, est, ratio)
		}
	}
	fmt.Println("(ratio ≈ 1 is perfect; the optimizer needs only relative consistency)")
}

func short(p *pattern.Pattern) string {
	name := p.Name()
	if i := indexByte(name, '-'); i > 0 {
		return name[:i]
	}
	return name
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
