package main

import (
	"testing"
	"time"

	"light/internal/gen"
	"light/internal/intersect"
	"light/internal/pattern"
	"light/internal/plan"
)

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		90 * time.Second:        "1.5m",
		1500 * time.Millisecond: "1.50s",
		2500 * time.Microsecond: "2.5ms",
		800 * time.Nanosecond:   "0µs",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestOutcomeCells(t *testing.T) {
	o := outcome{dur: time.Second, ints: 42}
	if o.timeCell() != "1.00s" || intCell(o) != "42" {
		t.Fatalf("cells: %q %q", o.timeCell(), intCell(o))
	}
	o.mark = "OOS"
	if o.timeCell() != "OOS" || intCell(o) != "OOS" {
		t.Fatal("failure mark not propagated")
	}
}

func TestSharedPlansUsePinnedOrders(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	p := pattern.P2()
	plans := sharedPlans(g, p)
	if len(plans) != 4 {
		t.Fatalf("plans = %d, want 4", len(plans))
	}
	for name, pl := range plans {
		for i, u := range pinnedOrders["P2"] {
			if pl.Pi[i] != u {
				t.Fatalf("%s: π = %v, want pinned %v", name, pl.Pi, pinnedOrders["P2"])
			}
		}
	}
	// All four must count identically.
	var want uint64
	first := true
	for name, pl := range plans {
		o := runPlan(g, pl, intersect.KindMerge, 0)
		if first {
			want, first = o.count, false
		} else if o.count != want {
			t.Fatalf("%s diverged: %d vs %d", name, o.count, want)
		}
	}
}

func TestPinnedOrdersAreValid(t *testing.T) {
	for name, pi := range pinnedOrders {
		p, err := pattern.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		po := pattern.SymmetryBreaking(p)
		if _, err := plan.Compile(p, po, pi, plan.ModeLIGHT); err != nil {
			t.Fatalf("pinned order for %s invalid: %v", name, err)
		}
	}
}

func TestConfigLoaders(t *testing.T) {
	c := config{scale: 1, datasets: []string{"yt-s"}, patterns: []string{"P1", "P3"}}
	ds := c.loadDatasets("lj-s")
	if len(ds) != 1 || ds[0].name != "yt-s" {
		t.Fatalf("datasets = %v", ds)
	}
	ps := c.loadPatterns("P2")
	if len(ps) != 2 || ps[1].NumEdges() != 6 {
		t.Fatalf("patterns override broken")
	}
	def := config{scale: 1}
	if got := def.loadPatterns("P2"); len(got) != 1 {
		t.Fatal("default patterns broken")
	}
}
