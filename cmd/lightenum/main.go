// Command lightenum counts (or lists) the subgraphs of a data graph
// isomorphic to a pattern, using any of the paper's algorithms.
//
// Usage:
//
//	lightenum -pattern P2 -graph path.txt [-algo LIGHT] [-workers 8]
//	          [-kernel HybridBlock] [-timeout 60s] [-print 10]
//
// The graph may be an edge-list file (.txt), a binary CSR file written
// by gengraph (.csr), or the name of a built-in synthetic dataset
// (yt-s, eu-s, lj-s, ot-s, uk-s, fs-s — optionally with -scale).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"light"
	"light/internal/gen"
	"light/internal/graph"
)

func main() {
	patName := flag.String("pattern", "triangle", "pattern name (P1..P7, triangle, cliqueK, cycleK, pathK, starK)")
	graphArg := flag.String("graph", "yt-s", "edge list file, .csr file, or built-in dataset name")
	scale := flag.Int("scale", 1, "scale for built-in datasets")
	algoName := flag.String("algo", "LIGHT", "algorithm: SE, LM, MSC, LIGHT")
	workers := flag.Int("workers", 1, "worker threads (>1 enables work stealing)")
	kernel := flag.String("kernel", "HybridBlock", "intersection: Merge, MergeBlock, Galloping, Hybrid, HybridBlock")
	timeout := flag.Duration("timeout", 0, "abort after this long (0 = unlimited)")
	printN := flag.Int("print", 0, "print the first N matches")
	outPath := flag.String("out", "", "stream all matches to this file (one line per match)")
	explain := flag.Bool("explain", false, "print the compiled plan and exit")
	approx := flag.Int("approx", 0, "estimate the count from this many sampling probes instead of enumerating")
	flag.Parse()

	g, err := loadGraph(*graphArg, *scale)
	if err != nil {
		fatal(err)
	}
	p, err := light.PatternByName(*patName)
	if err != nil {
		fatal(err)
	}
	opts := light.Options{Workers: *workers, TimeLimit: *timeout}
	if opts.Algorithm, err = parseAlgo(*algoName); err != nil {
		fatal(err)
	}
	if opts.Intersection, err = parseKernel(*kernel); err != nil {
		fatal(err)
	}

	fmt.Printf("data graph: %v\npattern:    %v\n", g, p)

	if *explain {
		text, err := light.Explain(g, p, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		return
	}
	if *approx > 0 {
		est, hits, err := light.ApproxCount(g, p, *approx, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("estimated matches: %.0f (%d/%d probes hit)\n", est, hits, *approx)
		return
	}

	var out *bufio.Writer
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = bufio.NewWriterSize(f, 1<<20)
	}

	var res light.Result
	if *printN > 0 || out != nil {
		shown := 0
		res, err = light.Enumerate(g, p, opts, func(m []light.VertexID) bool {
			if shown < *printN {
				fmt.Printf("  match %v\n", m)
				shown++
			}
			if out != nil {
				for i, v := range m {
					if i > 0 {
						out.WriteByte(' ') //lightvet:ignore hygiene -- bufio sticky error is checked at Flush
					}
					fmt.Fprintf(out, "%d", v)
				}
				out.WriteByte('\n') //lightvet:ignore hygiene -- bufio sticky error is checked at Flush
			}
			return true
		})
	} else {
		res, err = light.Count(g, p, opts)
	}
	if err != nil {
		fatal(err)
	}
	if out != nil {
		if err := out.Flush(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("matches:          %d\n", res.Matches)
	fmt.Printf("time:             %v\n", res.Duration.Round(time.Microsecond))
	fmt.Printf("order:            %v\n", res.Order)
	fmt.Printf("intersections:    %d (%.1f%% galloping)\n", res.Intersections, res.GallopingPercent)
	fmt.Printf("candidate memory: %d bytes\n", res.CandidateMemoryBytes)
}

func loadGraph(arg string, scale int) (*light.Graph, error) {
	if strings.HasSuffix(arg, ".csr") {
		g, err := graph.LoadCSR(arg)
		if err != nil {
			return nil, err
		}
		return wrap(graph.Reorder(g)), nil
	}
	if _, err := os.Stat(arg); err == nil {
		return light.LoadEdgeList(arg)
	}
	d, err := gen.ByName(arg, scale)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a file nor a dataset: %v", arg, err)
	}
	return wrap(d.Make()), nil
}

// wrap adapts an internal graph to the public type via its edge list.
// cmd packages live in the same module, but the public constructor keeps
// the path honest.
func wrap(g *graph.Graph) *light.Graph {
	edges := make([][2]light.VertexID, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(light.VertexID(v)) {
			if light.VertexID(v) < w {
				edges = append(edges, [2]light.VertexID{light.VertexID(v), w})
			}
		}
	}
	return light.NewGraph(g.NumVertices(), edges)
}

func parseAlgo(s string) (light.Algorithm, error) {
	switch strings.ToUpper(s) {
	case "LIGHT":
		return light.LIGHT, nil
	case "SE":
		return light.SE, nil
	case "LM":
		return light.LM, nil
	case "MSC":
		return light.MSC, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func parseKernel(s string) (light.Intersection, error) {
	for _, k := range []light.Intersection{light.HybridBlock, light.Merge, light.MergeBlock, light.Galloping, light.Hybrid} {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kernel %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightenum:", err)
	os.Exit(1)
}
