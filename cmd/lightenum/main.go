// Command lightenum counts (or lists) the subgraphs of a data graph
// isomorphic to a pattern, using any of the paper's algorithms.
//
// Usage:
//
//	lightenum -pattern P2 -graph path.txt [-algo LIGHT] [-workers 8]
//	          [-kernel HybridBlock] [-timeout 60s] [-print 10] [-stats]
//	          [-checkpoint state.ckpt] [-resume state.ckpt]
//
// With -checkpoint, the run periodically persists its progress; if it
// is interrupted (Ctrl-C, SIGTERM, timeout), re-running with -resume
// continues from the saved state and reports the combined total.
//
// With -apply, an edge-update file is applied copy-on-write before the
// run: one update per line, "+ u v" adds an edge, "- u v" removes one,
// and a bare "u v" adds ('#'/'%' start comments). Vertex IDs use the
// loaded graph's numbering — the same IDs -print shows. Adding -delta
// also counts just the match delta the batch caused (gained, lost, net)
// before the full post-update count.
//
// The graph may be an edge-list file (.txt), a binary CSR file written
// by gengraph (.csr, optionally gzipped), or the name of a built-in
// synthetic dataset (yt-s, eu-s, lj-s, ot-s, uk-s, fs-s — optionally
// with -scale).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"light"
	"light/internal/gen"
	"light/internal/graph"
)

func main() {
	patName := flag.String("pattern", "triangle", "pattern name (P1..P7, triangle, cliqueK, cycleK, pathK, starK)")
	graphArg := flag.String("graph", "yt-s", "edge list file, .csr file, or built-in dataset name")
	scale := flag.Int("scale", 1, "scale for built-in datasets")
	algoName := flag.String("algo", "LIGHT", "algorithm: SE, LM, MSC, LIGHT")
	workers := flag.Int("workers", 1, "worker threads (>1 enables work stealing)")
	kernel := flag.String("kernel", "HybridBlock", "intersection: Merge, MergeBlock, Galloping, Hybrid, HybridBlock, MergeBitmap, HybridBitmap")
	timeout := flag.Duration("timeout", 0, "abort after this long (0 = unlimited)")
	printN := flag.Int("print", 0, "print the first N matches")
	outPath := flag.String("out", "", "stream all matches to this file (one line per match)")
	explain := flag.Bool("explain", false, "print the compiled plan and exit")
	approx := flag.Int("approx", 0, "estimate the count from this many sampling probes instead of enumerating")
	stats := flag.Bool("stats", false, "print the full run report (counters, scheduler stats) as JSON")
	ckptPath := flag.String("checkpoint", "", "periodically save resumable progress to this file")
	ckptEvery := flag.Duration("checkpoint-interval", 30*time.Second, "how often to write the checkpoint")
	resumePath := flag.String("resume", "", "resume from a checkpoint file written by -checkpoint")
	memBudget := flag.String("mem-budget", "", "cap candidate-arena memory (bytes, or with K/M/G suffix); degrades gracefully, exits 5 when exceeded")
	admitTimeout := flag.Duration("admission-timeout", 0, "fail fast (exit 4) if a worker slot is not granted within this long (runs under a process governor)")
	batch := flag.Bool("batch", false, "run the whole P1..P7 catalog as one bit-parallel lane batch (ignores -pattern)")
	applyPath := flag.String("apply", "", "apply an edge-update file ('+ u v' adds, '- u v' removes, bare 'u v' adds) before running")
	deltaCount := flag.Bool("delta", false, "with -apply: also count only the match delta the update batch caused")
	flag.Parse()

	g, err := loadGraph(*graphArg, *scale)
	if err != nil {
		fatal(err)
	}
	p, err := light.PatternByName(*patName)
	if err != nil {
		fatal(err)
	}
	opts := light.Options{
		Workers:            *workers,
		TimeLimit:          *timeout,
		CheckpointPath:     *ckptPath,
		CheckpointInterval: *ckptEvery,
		ResumeFrom:         *resumePath,
		AdmissionTimeout:   *admitTimeout,
	}
	if opts.Algorithm, err = parseAlgo(*algoName); err != nil {
		fatal(err)
	}
	if opts.Intersection, err = parseKernel(*kernel); err != nil {
		fatal(err)
	}
	if *memBudget != "" {
		if opts.MemoryBudget, err = parseBytes(*memBudget); err != nil {
			fatal(fmt.Errorf("-mem-budget: %w", err))
		}
	}
	if *admitTimeout > 0 {
		// A single-process CLI run still goes through a (private)
		// governor so the admission path, slot accounting, and watchdog
		// behave exactly as they would under a shared daemon.
		opts.Governor = light.NewGovernor(light.GovernorConfig{})
	}

	if *deltaCount && *applyPath == "" {
		fatal(errors.New("-delta requires -apply"))
	}
	if *deltaCount && *batch {
		fatal(errors.New("-delta is incompatible with -batch (delta counting needs one pattern)"))
	}
	var from, to *light.Snapshot
	if *applyPath != "" {
		add, rem, err := readEdgeUpdates(*applyPath)
		if err != nil {
			fatal(err)
		}
		from = g.Snapshot()
		if to, err = g.ApplyEdges(add, rem); err != nil {
			fatal(err)
		}
		fmt.Printf("applied:    +%d/-%d update(s) from %s -> generation %d, %d delta edge(s)\n",
			len(add), len(rem), *applyPath, to.Generation(), to.DeltaEdges())
	}

	if *batch {
		fmt.Printf("data graph: %v\n", g)
		runBatch(g, opts, *stats)
		return
	}

	fmt.Printf("data graph: %v\npattern:    %v\n", g, p)

	if *deltaCount {
		// Checkpoint/resume describe the full enumeration below, not the
		// delta pass, which runs on the overlay and cannot checkpoint.
		dopts := opts
		dopts.CheckpointPath, dopts.ResumeFrom = "", ""
		dr, err := light.CountDelta(g, p, from, to, dopts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("delta:      gained %d, lost %d, net %+d (generation %d -> %d, %v)\n",
			dr.Gained, dr.Lost, dr.Net, dr.FromGeneration, dr.ToGeneration,
			dr.Duration.Round(time.Microsecond))
	}

	if *explain {
		text, err := light.Explain(g, p, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		return
	}
	if *approx > 0 {
		est, hits, err := light.ApproxCount(g, p, *approx, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("estimated matches: %.0f (%d/%d probes hit)\n", est, hits, *approx)
		return
	}

	// Ctrl-C / SIGTERM cancel the run instead of killing the process, so
	// a -checkpoint run gets its final on-stop snapshot written before
	// exit.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var out *bufio.Writer
	var commitOut func() error
	if *outPath != "" {
		out, commitOut, err = atomicWriter(*outPath)
		if err != nil {
			fatal(err)
		}
	}

	var res light.Result
	if *printN > 0 || out != nil {
		shown := 0
		res, err = light.EnumerateContext(ctx, g, p, opts, func(m []light.VertexID) bool {
			if shown < *printN {
				fmt.Printf("  match %v\n", m)
				shown++
			}
			if out != nil {
				for i, v := range m {
					if i > 0 {
						out.WriteByte(' ') //lightvet:ignore hygiene -- bufio sticky error is checked at Flush
					}
					fmt.Fprintf(out, "%d", v) //lightvet:ignore hygiene -- bufio sticky error is checked at Flush
				}
				out.WriteByte('\n') //lightvet:ignore hygiene -- bufio sticky error is checked at Flush
			}
			return true
		})
	} else {
		res, err = light.CountContext(ctx, g, p, opts)
	}
	stopSignals()
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	// Resource sentinels keep their partial results and get distinct
	// exit codes + one-line stderr diagnostics (with the resume hint),
	// so wrappers and schedulers can react without parsing stdout.
	exitCode := 0
	switch {
	case errors.Is(err, light.ErrTimeLimit):
		exitCode = exitTimeLimit
		fmt.Fprintf(os.Stderr, "lightenum: time limit exceeded; partial results on stdout%s\n", resumeHint(*ckptPath))
	case errors.Is(err, light.ErrOverloaded):
		exitCode = exitOverloaded
		fmt.Fprintf(os.Stderr, "lightenum: overloaded: no worker slot within %v; retry later%s\n", *admitTimeout, resumeHint(*ckptPath))
	case errors.Is(err, light.ErrMemoryBudget):
		exitCode = exitMemoryBudget
		fmt.Fprintf(os.Stderr, "lightenum: memory budget %s exceeded; partial results on stdout%s\n", *memBudget, resumeHint(*ckptPath))
	default:
		if err != nil && !interrupted {
			fatal(err)
		}
	}
	if out != nil {
		if err := commitOut(); err != nil {
			fatal(err)
		}
	}
	if interrupted {
		fmt.Printf("interrupted:      partial results below (%v)\n", err)
		if *ckptPath != "" {
			fmt.Printf("resume with:      -resume %s\n", *ckptPath)
		}
	}
	fmt.Printf("matches:          %d\n", res.Matches)
	fmt.Printf("time:             %v\n", res.Duration.Round(time.Microsecond))
	fmt.Printf("order:            %v\n", res.Order)
	fmt.Printf("intersections:    %d (%.1f%% galloping)\n", res.Intersections, res.GallopingPercent)
	fmt.Printf("candidate memory: %d bytes\n", res.CandidateMemoryBytes)
	if *stats && res.Report != nil {
		data, err := json.MarshalIndent(res.Report, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("run report:\n%s\n", data)
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// runBatch counts every catalog pattern against g in one CountBatch
// call: the lane engine walks each compatibility group's shared search
// tree once and attributes exact per-pattern counters. Ctrl-C / SIGTERM
// cancel cleanly with partial results flagged.
func runBatch(g *light.Graph, opts light.Options, stats bool) {
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	names := light.CatalogNames()
	queries := make([]light.BatchQuery, len(names))
	for i, name := range names {
		p, err := light.PatternByName(name)
		if err != nil {
			fatal(err)
		}
		queries[i] = light.BatchQuery{Pattern: p}
	}
	bres, err := light.CountBatchContext(ctx, g, queries, opts)
	stopSignals()
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	exitCode := 0
	switch {
	case errors.Is(err, light.ErrTimeLimit):
		exitCode = exitTimeLimit
		fmt.Fprintln(os.Stderr, "lightenum: time limit exceeded; partial results on stdout")
	case errors.Is(err, light.ErrOverloaded):
		exitCode = exitOverloaded
		fmt.Fprintln(os.Stderr, "lightenum: overloaded: no worker slot granted; retry later")
	case errors.Is(err, light.ErrMemoryBudget):
		exitCode = exitMemoryBudget
		fmt.Fprintln(os.Stderr, "lightenum: memory budget exceeded; partial results on stdout")
	default:
		if err != nil && !interrupted {
			fatal(err)
		}
	}
	if interrupted {
		fmt.Printf("interrupted: partial results below (%v)\n", err)
	}
	fmt.Printf("batch:       %d queries in %d lane group(s), %d worker(s)\n",
		len(bres.Queries), bres.Groups, bres.Workers)
	for i, q := range bres.Queries {
		fmt.Printf("%-9s matches: %-14d nodes: %-12d intersections: %d\n",
			names[i], q.Matches, q.Nodes, q.Intersections)
	}
	if len(bres.Queries) > 0 {
		fmt.Printf("time:        %v (shared batch wall clock)\n", bres.Queries[0].Duration.Round(time.Microsecond))
	}
	for _, d := range bres.Degradations {
		fmt.Printf("degraded:    %s\n", d)
	}
	if stats {
		reports := make(map[string]*light.RunReport, len(bres.Queries))
		for i, q := range bres.Queries {
			reports[names[i]] = q.Report
		}
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("run reports:\n%s\n", data)
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// Exit codes beyond the conventional 0 (success), 1 (generic error),
// and 2 (flag misuse): each resource sentinel gets its own so callers
// can distinguish "ran out of time" from "shed by admission control"
// from "blew the memory budget" without parsing output.
const (
	exitTimeLimit    = 3
	exitOverloaded   = 4
	exitMemoryBudget = 5
)

// resumeHint names the checkpoint to resume from, when there is one.
func resumeHint(ckptPath string) string {
	if ckptPath == "" {
		return ""
	}
	return fmt.Sprintf("; resume with -resume %s", ckptPath)
}

// parseBytes parses a byte count with an optional K/M/G (binary)
// suffix: "512", "64K", "512M", "2G".
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 || n > math.MaxInt64/mult {
		return 0, fmt.Errorf("invalid byte count %q", s)
	}
	return n * mult, nil
}

// atomicWriter opens a buffered writer backed by a temp file next to
// path. commit flushes, syncs, closes, and renames the temp file over
// path, so readers never observe a partially written match list; any
// failure leaves path untouched and removes the temp file.
func atomicWriter(path string) (*bufio.Writer, func() error, error) {
	f, err := os.CreateTemp(filepath.Dir(path), ".out-*")
	if err != nil {
		return nil, nil, err
	}
	tmpName := f.Name()
	bw := bufio.NewWriterSize(f, 1<<20)
	commit := func() error {
		fail := func(err error) error {
			f.Close()          //lightvet:ignore hygiene -- already failing; best-effort cleanup
			os.Remove(tmpName) //lightvet:ignore hygiene -- already failing; best-effort cleanup
			return err
		}
		if err := bw.Flush(); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			os.Remove(tmpName) //lightvet:ignore hygiene -- already failing; best-effort cleanup
			return err
		}
		if err := os.Rename(tmpName, path); err != nil {
			os.Remove(tmpName) //lightvet:ignore hygiene -- already failing; best-effort cleanup
			return err
		}
		return nil
	}
	return bw, commit, nil
}

// readEdgeUpdates parses an edge-update file: one update per line,
// "+ u v" adds an edge, "- u v" removes one, a bare "u v" adds; '#' or
// '%' start comment lines. IDs are in the loaded graph's numbering.
func readEdgeUpdates(path string) (add, rem [][2]light.VertexID, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		op := "+"
		if fields[0] == "+" || fields[0] == "-" {
			op, fields = fields[0], fields[1:]
		}
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("%s: line %d: want '[+|-] u v', got %q", path, lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: line %d: bad vertex %q: %v", path, lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: line %d: bad vertex %q: %v", path, lineNo, fields[1], err)
		}
		e := [2]light.VertexID{light.VertexID(u), light.VertexID(v)} //lightvet:ignore indexsafety -- ParseUint bitSize 32 bounds both values
		if op == "-" {
			rem = append(rem, e)
		} else {
			add = append(add, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return add, rem, nil
}

func loadGraph(arg string, scale int) (*light.Graph, error) {
	if strings.HasSuffix(arg, ".csr") || strings.HasSuffix(arg, ".csr.gz") {
		g, err := graph.LoadCSR(arg)
		if err != nil {
			return nil, err
		}
		return wrap(graph.Reorder(g)), nil
	}
	if _, err := os.Stat(arg); err == nil {
		return light.LoadEdgeList(arg)
	}
	d, err := gen.ByName(arg, scale)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a file nor a dataset: %v", arg, err)
	}
	return wrap(d.Make()), nil
}

// wrap adapts an internal graph to the public type via its edge list.
// cmd packages live in the same module, but the public constructor keeps
// the path honest.
func wrap(g *graph.Graph) *light.Graph {
	edges := make([][2]light.VertexID, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(light.VertexID(v)) {
			if light.VertexID(v) < w {
				edges = append(edges, [2]light.VertexID{light.VertexID(v), w})
			}
		}
	}
	return light.NewGraph(g.NumVertices(), edges)
}

func parseAlgo(s string) (light.Algorithm, error) {
	switch strings.ToUpper(s) {
	case "LIGHT":
		return light.LIGHT, nil
	case "SE":
		return light.SE, nil
	case "LM":
		return light.LM, nil
	case "MSC":
		return light.MSC, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func parseKernel(s string) (light.Intersection, error) {
	for _, k := range []light.Intersection{light.HybridBlock, light.Merge, light.MergeBlock, light.Galloping, light.Hybrid, light.MergeBitmap, light.HybridBitmap} {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kernel %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightenum:", err)
	os.Exit(1)
}
