package main

import (
	"testing"

	"light"
	"light/internal/gen"
)

func TestParseAlgo(t *testing.T) {
	for name, want := range map[string]light.Algorithm{
		"LIGHT": light.LIGHT, "light": light.LIGHT,
		"SE": light.SE, "lm": light.LM, "MSC": light.MSC,
	} {
		got, err := parseAlgo(name)
		if err != nil || got != want {
			t.Errorf("parseAlgo(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseAlgo("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestParseKernel(t *testing.T) {
	got, err := parseKernel("hybridblock")
	if err != nil || got != light.HybridBlock {
		t.Fatalf("parseKernel = %v, %v", got, err)
	}
	if _, err := parseKernel("avx"); err == nil {
		t.Error("bogus kernel accepted")
	}
}

func TestParseBytes(t *testing.T) {
	for s, want := range map[string]int64{
		"512": 512, "64K": 64 << 10, "2k": 2 << 10,
		"512M": 512 << 20, "3m": 3 << 20, "2G": 2 << 30, "1g": 1 << 30,
		"0": 0,
	} {
		got, err := parseBytes(s)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v, want %d", s, got, err, want)
		}
	}
	for _, s := range []string{
		"", "-1", "12X", "1.5G", "K",
		// Values whose n*mult would wrap int64 must be rejected, not
		// silently accepted as a wrapped budget.
		"9223372036854775807G", "9007199254740992G", "9223372036854775808",
	} {
		if got, err := parseBytes(s); err == nil {
			t.Errorf("parseBytes(%q) = %d, want error", s, got)
		}
	}
}

func TestWrapPreservesCounts(t *testing.T) {
	internal := gen.BarabasiAlbert(150, 4, 1)
	pub := wrap(internal)
	if int64(pub.NumEdges()) != internal.NumEdges() || pub.NumVertices() != internal.NumVertices() {
		t.Fatalf("wrap changed size: %v vs %v", pub, internal)
	}
}

func TestLoadGraphDataset(t *testing.T) {
	g, err := loadGraph("yt-s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := loadGraph("no-such-thing", 1); err == nil {
		t.Fatal("bogus graph source accepted")
	}
}
