package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-cases", "6", "-quick", "-seed", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 discrepancies") {
		t.Fatalf("missing summary line: %s", out.String())
	}
}

func TestRunRejectsUnknownFamily(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-families", "er,bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown family") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRunVerboseAndFamilyFilter(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-cases", "3", "-quick", "-v", "-families", "clique,ties"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "clique") && !strings.Contains(out.String(), "ties") {
		t.Fatalf("verbose output missing family names: %s", out.String())
	}
}
