// Command lightdiff runs the differential correctness harness: random
// (pattern, data graph) cases from several generator families, each
// checked through the full oracle matrix — an independent brute-force
// reference, the BFS-join and worst-case-optimal baselines, and the
// LIGHT engine serial + parallel under every scheduler, kernel,
// TailCount and DegreeFilter combination, plus a kill-and-resume
// checkpoint round-trip, a lane-batched pass (root-window and
// mixed-spec batches, per-lane counters vs sequential references), and
// an edge-delta pass (a seed-derived mutation batch applied
// copy-on-write, checked against a fresh CSR rebuild and the CountDelta
// identity). On a discrepancy it shrinks the case to a minimal repro,
// prints it as a ready-to-paste Go test, and exits 1.
//
// Usage:
//
//	lightdiff -cases 200                 # CI smoke configuration
//	lightdiff -cases 5000 -seed 99       # nightly soak
//	lightdiff -families star,ties -v     # adversarial families only
//	lightdiff -quick                     # trimmed matrix (fast triage)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"light/internal/diffcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lightdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cases    = fs.Int("cases", 200, "number of executed (non-skipped) cases to run")
		seed     = fs.Int64("seed", 1, "base seed; case i of family f uses a seed derived from it")
		families = fs.String("families", strings.Join(diffcheck.Families, ","), "comma-separated generator families")
		quick    = fs.Bool("quick", false, "run the trimmed oracle matrix instead of the full one")
		workers  = fs.Int("workers", 3, "workers for the parallel oracle runs")
		maxEmb   = fs.Uint64("max-embeddings", 300000, "brute-force reference cap; larger cases are skipped")
		laneOrc  = fs.Bool("lanes", true, "run the lane-batch oracle stage even with -quick")
		deltaOrc = fs.Bool("delta", true, "run the edge-delta oracle stage even with -quick")
		verbose  = fs.Bool("v", false, "print one line per case")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fams := strings.Split(*families, ",")
	for _, f := range fams {
		known := false
		for _, k := range diffcheck.Families {
			known = known || f == k
		}
		if !known {
			fmt.Fprintf(stderr, "lightdiff: unknown family %q (known: %s)\n", f, strings.Join(diffcheck.Families, ","))
			return 2
		}
	}
	cfg := diffcheck.Config{Quick: *quick, Workers: *workers, MaxEmbeddings: *maxEmb, Lanes: *laneOrc, Delta: *deltaOrc}

	start := time.Now()
	executed, skipped, checks := 0, 0, 0
	// Attempt cap: skipped (reference-capped) cases don't count toward
	// -cases, but a pathological flag combination must still terminate.
	for attempt := 0; executed < *cases && attempt < 4*(*cases)+100; attempt++ {
		fam := fams[attempt%len(fams)]
		caseSeed := *seed + int64(attempt)*1000003
		c, err := diffcheck.GenerateCase(fam, caseSeed)
		if err != nil {
			fmt.Fprintf(stderr, "lightdiff: %v\n", err)
			return 2
		}
		out, d := diffcheck.RunCase(c, cfg)
		if d != nil {
			fmt.Fprintf(stderr, "lightdiff: DISCREPANCY after %d cases:\n%v\n\nshrinking...\n\n", executed, d)
			min := diffcheck.ShrinkDiscrepancy(d, cfg)
			fmt.Fprintf(stderr, "minimal repro (paste into internal/diffcheck as a regression test):\n\n%s\n", diffcheck.ReproTest(min))
			return 1
		}
		if out.Skipped {
			skipped++
			if *verbose {
				fmt.Fprintf(stdout, "skip %-10s seed=%-12d %s\n", fam, caseSeed, out.Reason)
			}
			continue
		}
		executed++
		checks += out.Checks
		if *verbose {
			fmt.Fprintf(stdout, "ok   %-10s seed=%-12d ref=%-8d checks=%d\n", fam, caseSeed, out.Ref, out.Checks)
		}
	}
	if executed < *cases {
		fmt.Fprintf(stderr, "lightdiff: only %d of %d cases executed (%d skipped) — lower -max-embeddings pressure or case count\n",
			executed, *cases, skipped)
		return 2
	}
	fmt.Fprintf(stdout, "lightdiff: %d cases across %d families, %d oracle comparisons, %d skipped, 0 discrepancies (%.1fs)\n",
		executed, len(fams), checks, skipped, time.Since(start).Seconds())
	return 0
}
