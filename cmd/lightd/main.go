// Command lightd is the long-lived subgraph-enumeration service: it
// loads graph snapshots once, keeps them resident, and serves count,
// enumerate, and batch queries over HTTP — all sharing one resource
// governor and one result cache.
//
// Usage:
//
//	lightd -addr :8090 [-slots 8] [-mem-budget 2G] [-admission-timeout 5s]
//	       [-deadline 30s] [-max-deadline 5m] [-cache-entries 1024]
//	       [-load name=path ...]
//
// Endpoints:
//
//	GET  /healthz            liveness
//	GET  /stats              governor gauges, cache stats, last run reports
//	GET  /graphs             list loaded graphs
//	POST /graphs             {"name": ..., "path": ...} load a graph
//	DELETE /graphs/{name}    unload a graph (invalidates its cache entries)
//	POST /query              {"graph": ..., "pattern": ..., "options": {...}}
//	POST /enumerate          same body; streams matches as NDJSON rows
//	POST /batch              {"graph": ..., "queries": [...], "options": {...}}
//
// Governor pressure maps to HTTP statuses: admission overload is 429,
// a blown memory budget 507, a deadline or stall 504.
//
// -smoke boots the daemon on a loopback port, drives one count, one
// streamed enumeration, and one lane batch against a generated graph,
// checks the exact counts against the in-process library, and exits —
// the self-check verify.sh runs.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"light"
	"light/internal/server"
)

// loadList collects repeated -load name=path flags.
type loadList []string

// String renders the accumulated flags.
func (l *loadList) String() string { return strings.Join(*l, ",") }

// Set appends one -load value.
func (l *loadList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return errors.New("want name=path")
	}
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	slots := flag.Int("slots", 0, "governor worker-slot budget shared by all queries (0 = GOMAXPROCS)")
	memBudget := flag.String("mem-budget", "", "shared candidate-arena budget (bytes, or with K/M/G suffix; empty = unlimited)")
	admitTimeout := flag.Duration("admission-timeout", 5*time.Second, "fail queries with 429 if no worker slot is granted within this long (0 = wait)")
	deadline := flag.Duration("deadline", 0, "default per-query deadline for requests without timeout_ms (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "clamp every per-query deadline to at most this (0 = unclamped)")
	cacheEntries := flag.Int("cache-entries", 0, "result cache capacity (0 = 1024, negative disables)")
	rowLimit := flag.Int("row-limit", 0, "default /enumerate row limit (0 = 1000)")
	maxRows := flag.Int("max-rows", 0, "hard /enumerate row ceiling (0 = 100000)")
	smoke := flag.Bool("smoke", false, "boot on a loopback port, run the self-check, and exit")
	var loads loadList
	flag.Var(&loads, "load", "load a graph at startup, as name=path (repeatable)")
	flag.Parse()

	cfg := server.Config{
		Slots:             *slots,
		AdmissionTimeout:  *admitTimeout,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDeadline,
		CacheEntries:      *cacheEntries,
		EnumerateRowLimit: *rowLimit,
		MaxEnumerateRows:  *maxRows,
	}
	if *memBudget != "" {
		b, err := parseBytes(*memBudget)
		if err != nil {
			fatal(fmt.Errorf("-mem-budget: %w", err))
		}
		cfg.MemoryBudget = b
	}
	s := server.New(cfg)
	for _, nv := range loads {
		name, path, _ := strings.Cut(nv, "=")
		info, err := s.Registry().Load(name, path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s: %d vertices, %d edges (%s)\n",
			info.Name, info.Vertices, info.Edges, info.Fingerprint)
	}

	if *smoke {
		if err := runSmoke(s); err != nil {
			fatal(fmt.Errorf("smoke: %w", err))
		}
		fmt.Println("smoke: PASS")
		return
	}

	serve(s, *addr)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then shuts down
// gracefully, letting in-flight queries finish.
func serve(s *server.Server, addr string) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		errCh <- hs.ListenAndServe()
	}()
	fmt.Printf("lightd listening on %s\n", addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		fmt.Println("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fatal(err)
		}
		<-errCh // reap the serve goroutine's http.ErrServerClosed
	}
}

// runSmoke is the end-to-end self-check: boot on a loopback port, load
// a generated graph over the API, run one count, one streamed
// enumeration, and one lane batch, verify every number against the
// in-process library, and confirm a repeated query hits the cache.
func runSmoke(s *server.Server) error {
	g := light.GenerateBarabasiAlbert(500, 5, 23)
	dir, err := os.MkdirTemp("", "lightd-smoke")
	if err != nil {
		return err
	}
	defer func() {
		if rerr := os.RemoveAll(dir); rerr != nil && err == nil {
			err = rerr
		}
	}()
	csr := filepath.Join(dir, "smoke.csr")
	if err := g.SaveCSR(csr); err != nil {
		return err
	}

	tri, err := light.PatternByName("triangle")
	if err != nil {
		return err
	}
	sq, err := light.PatternByName("square")
	if err != nil {
		return err
	}
	refTri, err := light.Count(g, tri, light.Options{})
	if err != nil {
		return err
	}
	refSq, err := light.Count(g, sq, light.Options{})
	if err != nil {
		return err
	}
	refBatch, err := light.CountBatch(g, []light.BatchQuery{{Pattern: tri}, {Pattern: sq}}, light.Options{})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		errCh <- hs.Serve(ln)
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: serving on %s\n", base)
	defer func() {
		if serr := hs.Close(); serr != nil && err == nil {
			err = serr
		}
		<-errCh // reap http.ErrServerClosed
	}()

	// Load the graph through the API, as a client would.
	var info struct {
		Vertices int `json:"vertices"`
	}
	if err := postJSON(base+"/graphs", map[string]string{"name": "smoke", "path": csr}, &info); err != nil {
		return fmt.Errorf("loading graph: %w", err)
	}
	if info.Vertices != g.NumVertices() {
		return fmt.Errorf("loaded %d vertices, want %d", info.Vertices, g.NumVertices())
	}

	// One count, checked exactly.
	type queryResp struct {
		Matches uint64 `json:"matches"`
		Cached  bool   `json:"cached"`
	}
	var q queryResp
	countBody := map[string]any{"graph": "smoke", "pattern": "triangle"}
	if err := postJSON(base+"/query", countBody, &q); err != nil {
		return fmt.Errorf("count: %w", err)
	}
	if q.Matches != refTri.Matches {
		return fmt.Errorf("count = %d, want %d", q.Matches, refTri.Matches)
	}
	fmt.Printf("smoke: count triangle = %d ok\n", q.Matches)

	// One streamed enumeration: the NDJSON row count must equal the count.
	rows, err := streamRows(base+"/enumerate", map[string]any{
		"graph": "smoke", "pattern": "triangle", "limit": 1000000})
	if err != nil {
		return fmt.Errorf("enumerate: %w", err)
	}
	if uint64(rows) != refTri.Matches {
		return fmt.Errorf("enumerate streamed %d rows, want %d", rows, refTri.Matches)
	}
	fmt.Printf("smoke: enumerate streamed %d rows ok\n", rows)

	// One lane batch, each member checked exactly.
	var b struct {
		Groups  int `json:"groups"`
		Queries []struct {
			Matches uint64 `json:"matches"`
		} `json:"queries"`
	}
	if err := postJSON(base+"/batch", map[string]any{
		"graph":   "smoke",
		"queries": []map[string]any{{"pattern": "triangle"}, {"pattern": "square"}},
	}, &b); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if len(b.Queries) != 2 ||
		b.Queries[0].Matches != refBatch.Queries[0].Matches ||
		b.Queries[1].Matches != refBatch.Queries[1].Matches ||
		b.Queries[1].Matches != refSq.Matches {
		return fmt.Errorf("batch = %+v, want %d and %d", b, refTri.Matches, refSq.Matches)
	}
	fmt.Printf("smoke: batch [%d %d] ok\n", b.Queries[0].Matches, b.Queries[1].Matches)

	// The repeated count must come from the result cache.
	if err := postJSON(base+"/query", countBody, &q); err != nil {
		return fmt.Errorf("cached count: %w", err)
	}
	if !q.Cached || q.Matches != refTri.Matches {
		return fmt.Errorf("repeat count cached=%t matches=%d, want cached %d", q.Cached, q.Matches, refTri.Matches)
	}
	var stats struct {
		Cache *struct {
			Hits uint64 `json:"hits"`
		} `json:"cache"`
	}
	if err := getJSON(base+"/stats", &stats); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if stats.Cache == nil || stats.Cache.Hits == 0 {
		return errors.New("cache hit not visible in /stats")
	}
	fmt.Println("smoke: cache hit ok")
	return nil
}

// postJSON posts body as JSON and decodes the response, failing on any
// non-200 status.
func postJSON(url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// getJSON fetches url and decodes the JSON response.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// decodeResponse checks the status and decodes the body into out.
func decodeResponse(resp *http.Response, out any) (err error) {
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw.String())
	}
	return json.Unmarshal(raw.Bytes(), out)
}

// streamRows posts an enumerate request and counts the NDJSON data
// rows, verifying the stream's trailer.
func streamRows(url string, body any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows := 0
	done := false
	for sc.Scan() {
		var trailer struct {
			Done  bool   `json:"done"`
			Rows  int    `json:"rows"`
			Error string `json:"error"`
		}
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				return rows, err
			}
			if trailer.Error != "" {
				return rows, errors.New(trailer.Error)
			}
			if trailer.Rows != rows {
				return rows, fmt.Errorf("trailer says %d rows, stream had %d", trailer.Rows, rows)
			}
			done = true
			continue
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return rows, err
	}
	if !done {
		return rows, errors.New("stream ended without trailer")
	}
	return rows, nil
}

// parseBytes parses a byte count with an optional K/M/G (binary)
// suffix: "512", "64K", "512M", "2G".
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte count %q", s)
	}
	return n * mult, nil
}

// fatal prints err and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightd:", err)
	os.Exit(1)
}
