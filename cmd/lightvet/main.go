// Command lightvet runs the project's static-analysis suite (see
// internal/lint) over the module: hotpath allocation discipline,
// concurrency discipline, CSR index safety, and API hygiene. It is part
// of the tier-1 verify line and exits non-zero on any finding.
//
// Usage:
//
//	lightvet [-analyzers hotpath,concurrency,indexsafety,hygiene] [packages]
//
// Packages default to ./... . Findings are suppressed with a
// "//lightvet:ignore <analyzer> -- reason" comment on or above the
// offending line; hot functions are declared with "//light:hotpath" in
// their doc comment.
package main

import (
	"flag"
	"fmt"
	"os"

	"light/internal/lint"
)

func main() {
	analyzerNames := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	listFlag := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *analyzerNames != "" {
		var err error
		analyzers, err = lint.ByName(*analyzerNames)
		if err != nil {
			fatal(err)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	m, err := lint.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	findings := m.Lint(analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lightvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightvet:", err)
	os.Exit(1)
}
