// Command lightvet runs the project's static-analysis suite (see
// internal/lint) over the module: hotpath allocation discipline,
// concurrency discipline, CSR index safety, API hygiene, and the
// interprocedural statflow / cancelpoll / capcontract invariants. It is
// part of the tier-1 verify line and exits non-zero on any finding.
//
// Usage:
//
//	lightvet [flags] [packages]
//
//	-analyzers names   comma-separated analyzer subset (default: all)
//	-list              list the available analyzers and exit
//	-json path         also write findings as JSON to path ("-" for stdout)
//	-unused-ignores    audit lightvet:ignore directives: stale
//	                   suppressions become findings (forces the full
//	                   analyzer suite)
//
// Packages default to ./... . Findings are suppressed with a
// "//lightvet:ignore <analyzer> -- reason" comment on or above the
// offending line; hot functions are declared with "//light:hotpath" and
// documented-panic capacity contracts with "//light:cap-contract" in
// doc comments. Under GitHub Actions (GITHUB_ACTIONS set), findings are
// additionally emitted as ::error workflow annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"light/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lightvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analyzerNames = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		listFlag      = fs.Bool("list", false, "list the available analyzers and exit")
		jsonPath      = fs.String("json", "", "write findings as JSON to this path (\"-\" for stdout)")
		auditIgnores  = fs.Bool("unused-ignores", false, "also report stale lightvet:ignore directives (runs the full suite)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *analyzerNames != "" {
		if *auditIgnores {
			fmt.Fprintln(stderr, "lightvet: -unused-ignores needs the full suite; drop -analyzers")
			return 2
		}
		var err error
		analyzers, err = lint.ByName(*analyzerNames)
		if err != nil {
			fmt.Fprintln(stderr, "lightvet:", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "lightvet:", err)
		return 1
	}
	m, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lightvet:", err)
		return 1
	}

	findings := m.Lint(analyzers)
	if *auditIgnores {
		findings = append(findings, m.UnusedIgnores(analyzers)...)
	}

	annotate := os.Getenv("GITHUB_ACTIONS") != ""
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
		if annotate {
			fmt.Fprintln(stdout, ghAnnotation(f))
		}
	}

	if *jsonPath != "" {
		if err := writeJSON(stdout, *jsonPath, m.Path, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "lightvet:", err)
			return 1
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(stderr, "lightvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// ghAnnotation renders one finding as a GitHub Actions workflow
// command, so CI failures surface inline on the PR diff. Paths are
// made repo-relative when possible since runners check out at the
// workspace root.
func ghAnnotation(f lint.Finding) string {
	file := f.Pos.Filename
	if cwd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			file = rel
		}
	}
	return fmt.Sprintf("::error file=%s,line=%d,col=%d::[%s] %s", file, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// jsonReport is the machine-readable findings document ("lightvet/1").
type jsonReport struct {
	Schema    string        `json:"schema"`
	Module    string        `json:"module"`
	Analyzers []string      `json:"analyzers"`
	Findings  []jsonFinding `json:"findings"`
}

// jsonFinding is one finding with its position split into fields.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// writeJSON renders the findings document to path, or to stdout when
// path is "-".
func writeJSON(stdout io.Writer, path, module string, analyzers []*lint.Analyzer, findings []lint.Finding) error {
	rep := jsonReport{
		Schema:   "lightvet/1",
		Module:   module,
		Findings: []jsonFinding{},
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
