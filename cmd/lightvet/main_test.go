package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"light/internal/lint"
)

func testFinding() lint.Finding {
	return lint.Finding{
		Analyzer: "statflow",
		Pos:      token.Position{Filename: "internal/intersect/intersect.go", Line: 42, Column: 7},
		Message:  "counters dropped",
	}
}

func TestGHAnnotationFormat(t *testing.T) {
	got := ghAnnotation(testFinding())
	want := "::error file=internal/intersect/intersect.go,line=42,col=7::[statflow] counters dropped"
	if got != want {
		t.Fatalf("annotation = %q, want %q", got, want)
	}
}

func TestWriteJSONSchema(t *testing.T) {
	var buf strings.Builder
	err := writeJSON(&buf, "-", "light", lint.All(), []lint.Finding{testFinding()})
	if err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Schema != "lightvet/1" || rep.Module != "light" {
		t.Fatalf("header = %q/%q", rep.Schema, rep.Module)
	}
	if len(rep.Analyzers) != len(lint.All()) {
		t.Fatalf("analyzers = %v", rep.Analyzers)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Line != 42 || rep.Findings[0].Analyzer != "statflow" {
		t.Fatalf("findings = %+v", rep.Findings)
	}
}

func TestWriteJSONEmptyFindingsIsArray(t *testing.T) {
	var buf strings.Builder
	if err := writeJSON(&buf, "-", "light", nil, nil); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "\"findings\": []") {
		t.Fatalf("empty findings must marshal as [], got:\n%s", buf.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Fatalf("stderr = %q", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-unused-ignores", "-analyzers", "hygiene"}, &out, &errOut); code != 2 {
		t.Fatalf("audit with subset: exit = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit = %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"hotpath", "statflow", "cancelpoll", "capcontract"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
