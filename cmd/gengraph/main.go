// Command gengraph generates the synthetic dataset suite that stands in
// for the paper's six real-world graphs (Table II) and prints their
// properties. With -dir it also writes each graph as a binary CSR file
// that cmd/lightenum and cmd/benchpaper can load.
//
// Usage:
//
//	gengraph [-scale N] [-dir out/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"light/internal/gen"
)

func main() {
	scale := flag.Int("scale", 1, "size multiplier for the dataset suite")
	dir := flag.String("dir", "", "write binary CSR files into this directory")
	flag.Parse()

	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("Synthetic dataset suite (scale=%d) — Table II analog\n", *scale)
	fmt.Printf("%-8s %-14s %12s %12s %10s %8s\n", "Name", "Stands for", "N", "M", "Memory", "dmax")
	for _, d := range gen.Suite(*scale) {
		g := d.Make()
		fmt.Printf("%-8s %-14s %12d %12d %9.2fMB %8d\n",
			d.Name, d.Paper, g.NumVertices(), g.NumEdges(),
			float64(g.MemoryBytes())/(1<<20), g.MaxDegree())
		if *dir != "" {
			path := filepath.Join(*dir, d.Name+".csr")
			if err := g.SaveCSR(path); err != nil {
				fmt.Fprintln(os.Stderr, "gengraph:", err)
				os.Exit(1)
			}
			fmt.Printf("         wrote %s\n", path)
		}
	}
}
