package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"light/internal/metrics"
)

func writeReport(t *testing.T, path string, rows []metrics.BenchRow) {
	t.Helper()
	rep := metrics.NewBenchReport("smoke", nil, rows)
	if err := metrics.WriteBenchFile(path, rep); err != nil {
		t.Fatal(err)
	}
}

func testRows() []metrics.BenchRow {
	return []metrics.BenchRow{
		{Dataset: "yt-s", Pattern: "P2", System: "LIGHT/serial", WallNS: 2e6,
			Matches: 992, Nodes: 14947, Comps: 13602, Intersections: 9594, Galloping: 111, Elements: 333444},
		{Dataset: "yt-s", Pattern: "P2", System: "LIGHT/4T", WallNS: 2e6,
			Matches: 992, Nodes: 14947, Comps: 13602, Intersections: 9594, Galloping: 111, Elements: 333444},
	}
}

func TestCompareFilesExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeReport(t, base, testRows())

	same := filepath.Join(dir, "same.json")
	writeReport(t, same, testRows())
	if code := compareFiles(base, same, 0.15, false); code != 0 {
		t.Fatalf("identical reports: exit %d, want 0", code)
	}

	rows := testRows()
	rows[0].Intersections += 100 // injected counter regression
	drift := filepath.Join(dir, "drift.json")
	writeReport(t, drift, rows)
	if code := compareFiles(base, drift, 0.15, false); code != 1 {
		t.Fatalf("counter drift: exit %d, want 1", code)
	}
	// Counter regressions fail even in advisory-time mode.
	if code := compareFiles(base, drift, 0.15, true); code != 1 {
		t.Fatalf("counter drift (advisory): exit %d, want 1", code)
	}

	rows = testRows()
	rows[0].WallNS *= 1000 // 2ms → 2s: past both tolerance and slack
	slow := filepath.Join(dir, "slow.json")
	writeReport(t, slow, rows)
	if code := compareFiles(base, slow, 0.15, false); code != 1 {
		t.Fatalf("wall regression: exit %d, want 1", code)
	}
	if code := compareFiles(base, slow, 0.15, true); code != 0 {
		t.Fatalf("wall regression with -advisory-time: exit %d, want 0", code)
	}

	if code := compareFiles(filepath.Join(dir, "missing.json"), same, 0.15, false); code != 2 {
		t.Fatalf("unreadable baseline: exit %d, want 2", code)
	}
}

// TestBenchGateScriptFailsOnInjectedRegression is the acceptance-
// criterion demonstration: scripts/bench_gate.sh must exit non-zero
// when a deterministic counter in the fresh report drifts from the
// committed baseline, and zero when the reports agree. The fresh report
// is injected through BENCH_GATE_FRESH so the test never runs the
// actual benchmark suite.
func TestBenchGateScriptFailsOnInjectedRegression(t *testing.T) {
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(repoRoot, "scripts", "bench_gate.sh")
	baselinePath := filepath.Join(repoRoot, "bench", "BENCH_smoke.json")
	baseline, err := metrics.LoadBenchFile(baselinePath)
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "lightbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lightbench: %v\n%s", err, out)
	}

	runGate := func(freshPath string) (int, string) {
		cmd := exec.Command("bash", script, "-advisory-time")
		cmd.Dir = repoRoot
		cmd.Env = append(os.Environ(),
			"BENCH_GATE_FRESH="+freshPath,
			"LIGHTBENCH_BIN="+bin,
		)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), string(out)
		}
		t.Fatalf("running gate: %v\n%s", err, out)
		return -1, ""
	}

	// Positive control: the baseline gated against itself passes.
	clean := filepath.Join(dir, "clean.json")
	writeReport(t, clean, baseline.Rows)
	if code, out := runGate(clean); code != 0 {
		t.Fatalf("clean gate exited %d:\n%s", code, out)
	}

	// Injected regression: one deterministic counter drifts.
	rows := append([]metrics.BenchRow(nil), baseline.Rows...)
	rows[0].Nodes++
	bad := filepath.Join(dir, "bad.json")
	writeReport(t, bad, rows)
	if code, out := runGate(bad); code == 0 {
		t.Fatalf("gate passed an injected counter regression:\n%s", out)
	}
}
