// Command lightbench is the deterministic smoke-benchmark suite behind
// scripts/bench_gate.sh: P2/P4/P6 on a seeded synthetic graph, serial
// and 4-thread, plus a hub-bitmap kernel section (HybridBlock vs
// HybridBitmap on a seeded star-chords graph), a governor-overhead
// section (the same cell ungoverned and under an uncontended Governor,
// gated on counter parity), and a catalog-throughput section (the full
// P1..P7 catalog over a minimum-degree ladder, lane-batched vs a
// sequential loop at equal workers, gated on per-query counter parity
// with the aggregate speedup advisory), written as a schema-versioned
// BENCH_smoke.json report.
//
// The work counters in the report (matches, nodes, comps,
// intersections, galloping, elements) depend only on (graph, plan,
// kernel) — the suite verifies that itself by requiring the serial and
// parallel runs of every pattern to agree — so CI gates them on exact
// equality against the committed baseline in bench/BENCH_smoke.json.
// Wall-clock times are gated with a tolerance, or advisory on noisy
// shared runners.
//
// Usage:
//
//	lightbench [-out BENCH_smoke.json]           # run the suite
//	lightbench -compare [-advisory-time] A B     # gate B against baseline A
//
// In -compare mode the exit status is non-zero when any deterministic
// counter differs, or (unless -advisory-time) when a wall-clock time
// regresses past -wall-tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"light"
	"light/internal/gen"
	"light/internal/metrics"
)

// benchDataset / benchScale pin the suite's graph: the seeded yt-s
// generator, so every machine builds the identical graph.
const (
	benchDataset = "yt-s"
	benchScale   = 1
	wallSlack    = 25 * time.Millisecond
)

var benchPatterns = []string{"P2", "P4", "P6"}

// The bitmap section's graph: a seeded star-with-chords, whose hub
// vertex dominates every intersection — the shape the hub-bitmap index
// targets. Large enough that the serial wall time is well above timer
// noise, so the HybridBlock→HybridBitmap speedup is measurable.
const (
	bitmapDataset = "star-chords"
	bitmapLeaves  = 4000
	bitmapChords  = 24000
	bitmapSeed    = 7
)

var bitmapPatterns = []string{"triangle", "P2"}

func main() {
	out := flag.String("out", "BENCH_smoke.json", "report output path")
	compare := flag.Bool("compare", false, "compare two reports (args: baseline fresh) instead of running")
	advisoryTime := flag.Bool("advisory-time", false, "with -compare: report wall-clock regressions without failing")
	wallTol := flag.Float64("wall-tolerance", 0.15, "with -compare: allowed wall-clock slowdown fraction")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "lightbench: -compare needs two arguments: baseline fresh")
			os.Exit(2)
		}
		os.Exit(compareFiles(flag.Arg(0), flag.Arg(1), *wallTol, *advisoryTime))
	}

	rep, err := runSuite()
	if err != nil {
		fatal(err)
	}
	if err := metrics.WriteBenchFile(*out, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d rows, fingerprint %s)\n", *out, len(rep.Rows), rep.Fingerprint)
}

// runSuite executes every (pattern, system) cell and self-checks the
// determinism invariant the CI gate relies on: serial and 4-thread runs
// must produce identical work counters.
func runSuite() (*metrics.BenchReport, error) {
	d, err := gen.ByName(benchDataset, benchScale)
	if err != nil {
		return nil, err
	}
	ig := d.Make()
	edges := make([][2]light.VertexID, 0, ig.NumEdges())
	for v := 0; v < ig.NumVertices(); v++ {
		for _, w := range ig.Neighbors(light.VertexID(v)) {
			if light.VertexID(v) < w {
				edges = append(edges, [2]light.VertexID{light.VertexID(v), w})
			}
		}
	}
	g := light.NewGraph(ig.NumVertices(), edges)

	var rows []metrics.BenchRow
	for _, name := range benchPatterns {
		p, err := light.PatternByName(name)
		if err != nil {
			return nil, err
		}
		serial, err := runCell(g, p, 1)
		if err != nil {
			return nil, fmt.Errorf("%s serial: %w", name, err)
		}
		par, err := runCell(g, p, 4)
		if err != nil {
			return nil, fmt.Errorf("%s 4T: %w", name, err)
		}
		if serial.Matches != par.Matches || serial.Nodes != par.Nodes ||
			serial.Comps != par.Comps || serial.Intersections != par.Intersections ||
			serial.Galloping != par.Galloping || serial.Elements != par.Elements {
			return nil, fmt.Errorf("%s: determinism self-check failed: serial %+v vs 4T %+v", name, serial, par)
		}
		rows = append(rows, serial, par)
	}
	bitmapRows, err := runBitmapSection()
	if err != nil {
		return nil, err
	}
	rows = append(rows, bitmapRows...)
	govRows, err := runGovernorSection(g)
	if err != nil {
		return nil, err
	}
	rows = append(rows, govRows...)
	catalogRows, err := runCatalogSection(g)
	if err != nil {
		return nil, err
	}
	rows = append(rows, catalogRows...)
	return metrics.NewBenchReport("smoke", map[string]string{
		"dataset":        benchDataset,
		"scale":          fmt.Sprint(benchScale),
		"bitmap_dataset": fmt.Sprintf("%s(%d,%d,%d)", bitmapDataset, bitmapLeaves, bitmapChords, bitmapSeed),
		"governor":       fmt.Sprintf("slots=%d pattern=%s", govSlots, govPattern),
		"catalog":        fmt.Sprintf("ladder=%v workers=%d", catalogMinDegrees, catalogWorkers),
	}, rows), nil
}

// The catalog section's configuration: the full P1..P7 catalog, each
// pattern queried at every threshold of a nested minimum-degree ladder
// — the analytics shape lane batching targets, where every stricter
// query's search tree nests inside the loosest one's, so the batch
// walks each pattern's tree once where the sequential loop walks it
// len(ladder) times.
var catalogMinDegrees = []int{0, 1, 2, 3, 4}

const catalogWorkers = 4

// runCatalogSection runs the whole catalog ladder as one lane batch and
// as a sequential loop of filtered Count calls at the same worker
// count. Per-query counter parity between the two is a hard self-check
// — the lane engine's exactness gate — and the aggregate batch-vs-loop
// speedup is printed and recorded in two gate-able aggregate rows
// (counters exact, wall clock advisory in CI).
func runCatalogSection(g *light.Graph) ([]metrics.BenchRow, error) {
	names := light.CatalogNames()
	var queries []light.BatchQuery
	for _, name := range names {
		p, err := light.PatternByName(name)
		if err != nil {
			return nil, err
		}
		for _, md := range catalogMinDegrees {
			queries = append(queries, light.BatchQuery{Pattern: p, MinDegree: md})
		}
	}
	bres, err := light.CountBatch(g, queries, light.Options{Workers: catalogWorkers})
	if err != nil {
		return nil, fmt.Errorf("catalog section batch: %w", err)
	}
	if bres.Groups != len(names) {
		return nil, fmt.Errorf("catalog section: %d lane groups for %d patterns", bres.Groups, len(names))
	}

	var batchAgg, seqAgg metrics.BenchRow
	var seqWall time.Duration
	for i, q := range queries {
		md := catalogMinDegrees[i%len(catalogMinDegrees)]
		opts := light.Options{Workers: catalogWorkers}
		if md > 0 {
			min := md
			opts.Filter = func(u int, v light.VertexID) bool { return g.Degree(v) >= min }
		}
		solo, err := light.Count(g, q.Pattern, opts)
		if err != nil {
			return nil, fmt.Errorf("catalog section %s/minDeg=%d sequential: %w", q.Pattern.Name(), md, err)
		}
		seqWall += solo.Duration
		b := bres.Queries[i]
		// Hard self-check: the lane-attributed counters must equal the
		// sequential reference exactly, per query. Any drift here means
		// the shared traversal is mis-attributing work and the whole
		// section is invalid.
		if b.Matches != solo.Matches || b.Nodes != solo.Nodes ||
			b.Report.Comps != solo.Report.Comps ||
			b.Report.Intersections != solo.Report.Intersections ||
			b.Report.Galloping != solo.Report.Galloping ||
			b.Report.Elements != solo.Report.Elements {
			return nil, fmt.Errorf("catalog section: lane parity failed for %s/minDeg=%d: batch %+v vs sequential %+v",
				q.Pattern.Name(), md, b.Report, solo.Report)
		}
		addReport(&batchAgg, b.Report)
		addReport(&seqAgg, solo.Report)
	}
	batchAgg.Dataset, batchAgg.Pattern, batchAgg.System = benchDataset, "catalog", fmt.Sprintf("LIGHT-batch/%dT", catalogWorkers)
	batchAgg.WallNS = int64(bres.Duration)
	batchAgg.MemoryBytes = bres.Queries[0].CandidateMemoryBytes
	seqAgg.Dataset, seqAgg.Pattern, seqAgg.System = benchDataset, "catalog", fmt.Sprintf("LIGHT-seq-loop/%dT", catalogWorkers)
	seqAgg.WallNS = int64(seqWall)

	fmt.Printf("catalog section: %d queries, batch %v vs sequential loop %v (%.2fx aggregate throughput, advisory)\n",
		len(queries), bres.Duration.Round(time.Microsecond), seqWall.Round(time.Microsecond),
		float64(seqWall)/float64(bres.Duration))
	return []metrics.BenchRow{batchAgg, seqAgg}, nil
}

// addReport accumulates a run's deterministic counters into an
// aggregate row.
func addReport(row *metrics.BenchRow, r *light.RunReport) {
	row.Matches += r.Matches
	row.Nodes += r.Nodes
	row.Comps += r.Comps
	row.Intersections += r.Intersections
	row.Galloping += r.Galloping
	row.Elements += r.Elements
	row.BitmapProbes += r.BitmapProbes
}

// The governor section's configuration: one pattern from the main
// suite, 4 workers, an uncontended 4-slot governor — the pure-overhead
// case, where admission must grant the full request immediately and
// perturb no work counter.
const (
	govPattern = "P4"
	govSlots   = 4
)

// runGovernorSection measures the resource governor's overhead on the
// main suite graph: the same (pattern, 4T) cell ungoverned and under an
// uncontended default Governor. The work counters must be identical —
// admission control sits entirely outside the enumeration loop — and
// the governed run must report a full grant, so a regression that
// sneaks governor bookkeeping into the hot path or quietly under-admits
// trips the exact-equality gate. The wall-clock delta is advisory.
func runGovernorSection(g *light.Graph) ([]metrics.BenchRow, error) {
	p, err := light.PatternByName(govPattern)
	if err != nil {
		return nil, err
	}
	bare, err := runKernelCell(g, p, benchDataset, light.HybridBlock, govSlots)
	if err != nil {
		return nil, fmt.Errorf("governor section ungoverned: %w", err)
	}
	bare.System = "LIGHT-gov/off"

	gov := light.NewGovernor(light.GovernorConfig{Slots: govSlots})
	res, err := light.Count(g, p, light.Options{
		Workers:      govSlots,
		Intersection: light.HybridBlock,
		Governor:     gov,
	})
	if err != nil {
		return nil, fmt.Errorf("governor section governed: %w", err)
	}
	r := res.Report
	governed := metrics.BenchRow{
		Dataset:       benchDataset,
		Pattern:       p.Name(),
		System:        "LIGHT-gov/on",
		WallNS:        r.WallNS,
		Matches:       r.Matches,
		Nodes:         r.Nodes,
		Comps:         r.Comps,
		Intersections: r.Intersections,
		Galloping:     r.Galloping,
		Elements:      r.Elements,
		BitmapProbes:  r.BitmapProbes,
		Slots:         r.SlotsGranted,
		MemoryBytes:   r.CandidateMemoryBytes,
	}

	if governed.Matches != bare.Matches || governed.Nodes != bare.Nodes ||
		governed.Comps != bare.Comps || governed.Intersections != bare.Intersections ||
		governed.Galloping != bare.Galloping || governed.Elements != bare.Elements {
		return nil, fmt.Errorf("governor section: counter parity failed: ungoverned %+v vs governed %+v", bare, governed)
	}
	if governed.Slots != govSlots {
		return nil, fmt.Errorf("governor section: uncontended governor granted %d slots, want %d", governed.Slots, govSlots)
	}
	if len(r.DegradationEvents) != 0 {
		return nil, fmt.Errorf("governor section: unpressured run degraded: %v", r.DegradationEvents)
	}
	fmt.Printf("governor section %s: ungoverned %v, governed %v (%.1f%% overhead, advisory)\n",
		govPattern, time.Duration(bare.WallNS), time.Duration(governed.WallNS),
		100*(float64(governed.WallNS)/float64(bare.WallNS)-1))
	return []metrics.BenchRow{bare, governed}, nil
}

// runBitmapSection benchmarks the hub-bitmap kernel against its list
// fallback on the star-chords graph, with the same serial-vs-parallel
// counter self-check as the main section plus two of its own: the two
// kernels must agree on matches, and the bitmap kernel must actually
// probe (a silent fall-back to the list path would quietly hollow the
// benchmark out). The speedup itself is wall-clock and therefore
// advisory — it is printed, not gated.
func runBitmapSection() ([]metrics.BenchRow, error) {
	ig := gen.StarChords(bitmapLeaves, bitmapChords, bitmapSeed)
	edges := make([][2]light.VertexID, 0, ig.NumEdges())
	for v := 0; v < ig.NumVertices(); v++ {
		for _, w := range ig.Neighbors(light.VertexID(v)) {
			if light.VertexID(v) < w {
				edges = append(edges, [2]light.VertexID{light.VertexID(v), w})
			}
		}
	}
	g := light.NewGraph(ig.NumVertices(), edges)

	var rows []metrics.BenchRow
	for _, name := range bitmapPatterns {
		p, err := light.PatternByName(name)
		if err != nil {
			return nil, err
		}
		var wallList, wallBitmap int64
		var matchesList, matchesBitmap uint64
		for _, kernel := range []light.Intersection{light.HybridBlock, light.HybridBitmap} {
			serial, err := runKernelCell(g, p, bitmapDataset, kernel, 1)
			if err != nil {
				return nil, fmt.Errorf("%s %v serial: %w", name, kernel, err)
			}
			par, err := runKernelCell(g, p, bitmapDataset, kernel, 4)
			if err != nil {
				return nil, fmt.Errorf("%s %v 4T: %w", name, kernel, err)
			}
			if serial.Matches != par.Matches || serial.Nodes != par.Nodes ||
				serial.Comps != par.Comps || serial.Intersections != par.Intersections ||
				serial.Galloping != par.Galloping || serial.Elements != par.Elements ||
				serial.BitmapProbes != par.BitmapProbes {
				return nil, fmt.Errorf("%s/%v: determinism self-check failed: serial %+v vs 4T %+v", name, kernel, serial, par)
			}
			if kernel == light.HybridBitmap {
				if serial.BitmapProbes == 0 {
					return nil, fmt.Errorf("%s: HybridBitmap recorded zero bitmap probes on a hub graph", name)
				}
				wallBitmap, matchesBitmap = serial.WallNS, serial.Matches
			} else {
				if serial.BitmapProbes != 0 {
					return nil, fmt.Errorf("%s: list kernel recorded %d bitmap probes", name, serial.BitmapProbes)
				}
				wallList, matchesList = serial.WallNS, serial.Matches
			}
			rows = append(rows, serial, par)
		}
		if matchesList != matchesBitmap {
			return nil, fmt.Errorf("%s: HybridBitmap found %d matches, HybridBlock %d", name, matchesBitmap, matchesList)
		}
		fmt.Printf("bitmap section %s: HybridBlock %v, HybridBitmap %v (%.1f%% faster, advisory)\n",
			name, time.Duration(wallList), time.Duration(wallBitmap),
			100*(1-float64(wallBitmap)/float64(wallList)))
	}
	return rows, nil
}

// runCell measures one (pattern, workers) configuration of the main
// LIGHT section.
func runCell(g *light.Graph, p *light.Pattern, workers int) (metrics.BenchRow, error) {
	row, err := runKernelCell(g, p, benchDataset, light.HybridBlock, workers)
	if err != nil {
		return row, err
	}
	row.System = "LIGHT/serial"
	if workers > 1 {
		row.System = fmt.Sprintf("LIGHT/%dT", workers)
	}
	return row, nil
}

// runKernelCell measures one (pattern, kernel, workers) cell; the
// system name carries the kernel so bitmap rows gate separately.
func runKernelCell(g *light.Graph, p *light.Pattern, dataset string, kernel light.Intersection, workers int) (metrics.BenchRow, error) {
	res, err := light.Count(g, p, light.Options{Workers: workers, Intersection: kernel})
	if err != nil {
		return metrics.BenchRow{}, err
	}
	r := res.Report
	suffix := "serial"
	if workers > 1 {
		suffix = fmt.Sprintf("%dT", workers)
	}
	return metrics.BenchRow{
		Dataset:       dataset,
		Pattern:       p.Name(),
		System:        fmt.Sprintf("%v/%s", kernel, suffix),
		WallNS:        r.WallNS,
		Matches:       r.Matches,
		Nodes:         r.Nodes,
		Comps:         r.Comps,
		Intersections: r.Intersections,
		Galloping:     r.Galloping,
		Elements:      r.Elements,
		BitmapProbes:  r.BitmapProbes,
		MemoryBytes:   r.CandidateMemoryBytes,
	}, nil
}

// compareFiles gates fresh against baseline and returns the process
// exit code: 0 clean, 1 regression, 2 unreadable input.
func compareFiles(basePath, freshPath string, wallTol float64, advisoryTime bool) int {
	base, err := metrics.LoadBenchFile(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightbench:", err)
		return 2
	}
	fresh, err := metrics.LoadBenchFile(freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightbench:", err)
		return 2
	}
	c := metrics.CompareBench(base, fresh, wallTol, wallSlack)
	for _, msg := range c.CounterRegressions {
		fmt.Printf("COUNTER REGRESSION: %s\n", msg)
	}
	for _, msg := range c.WallRegressions {
		if advisoryTime {
			fmt.Printf("wall regression (advisory): %s\n", msg)
		} else {
			fmt.Printf("WALL REGRESSION: %s\n", msg)
		}
	}
	if len(c.CounterRegressions) > 0 {
		fmt.Printf("bench gate: FAIL (%d counter regressions)\n", len(c.CounterRegressions))
		return 1
	}
	if len(c.WallRegressions) > 0 && !advisoryTime {
		fmt.Printf("bench gate: FAIL (%d wall-clock regressions)\n", len(c.WallRegressions))
		return 1
	}
	fmt.Printf("bench gate: OK (%d rows, fingerprint %s)\n", len(fresh.Rows), fresh.Fingerprint)
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightbench:", err)
	os.Exit(1)
}
