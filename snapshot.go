package light

import (
	"errors"
	"fmt"

	"light/internal/delta"
	"light/internal/graph"
)

// Snapshot pins one published view of a mutable Graph. A query run with
// Options.Snapshot set enumerates exactly that view — edge batches
// applied concurrently by other goroutines publish new snapshots without
// disturbing pinned runs (snapshot isolation). Snapshots are cheap
// handles: pinning copies nothing, and a pinned base CSR plus overlay
// stay reachable only while some snapshot (or the graph head) references
// them.
type Snapshot struct {
	owner *Graph
	st    *snapshotState
}

// Snapshot pins the graph's latest published view.
func (g *Graph) Snapshot() *Snapshot { return &Snapshot{owner: g, st: g.snap()} }

// Generation returns the snapshot's monotonically increasing version:
// 0 at construction, +1 per effective ApplyEdges batch or Compact.
func (s *Snapshot) Generation() uint64 { return s.st.gen }

// Fingerprint returns the content hash of the snapshot's adjacency
// (base CSR plus pending deltas); equal fingerprints mean identical
// adjacency.
func (s *Snapshot) Fingerprint() uint64 { return s.st.fingerprint() }

// NumVertices returns |V| of the snapshot's view.
func (s *Snapshot) NumVertices() int { return s.st.numVertices() }

// NumEdges returns |E| of the snapshot's view.
func (s *Snapshot) NumEdges() int64 { return s.st.numEdges() }

// DeltaEdges returns how many edge insertions plus deletions the
// snapshot carries over its base CSR (0 after construction or Compact).
func (s *Snapshot) DeltaEdges() int { return s.st.deltaEdges() }

// String summarizes the snapshot.
func (s *Snapshot) String() string {
	return fmt.Sprintf("snapshot{gen %d, n=%d m=%d, %d delta edges}",
		s.st.gen, s.st.numVertices(), s.st.numEdges(), s.st.deltaEdges())
}

// toDeltaEdges converts public edge pairs to canonical delta edges.
func toDeltaEdges(pairs [][2]VertexID) []delta.Edge {
	if len(pairs) == 0 {
		return nil
	}
	es := make([]delta.Edge, len(pairs))
	for i, e := range pairs {
		es[i] = delta.Edge{U: graph.VertexID(e[0]), V: graph.VertexID(e[1])}.Canon()
	}
	return es
}

// ApplyEdges applies one batch of edge insertions and deletions and
// publishes the result as the graph's new snapshot, leaving every
// earlier snapshot untouched (copy-on-write: only the adjacency lists
// of vertices the batch touches are rebuilt). Vertex IDs are in the
// graph's current (degree-ordered) numbering, as returned in results;
// endpoints at or beyond NumVertices grow the graph. Duplicate edges,
// self-loops, already-present insertions, and already-absent deletions
// are ignored; a deletion beats an insertion of the same edge within
// one batch. A batch with no effective change returns the current
// snapshot unchanged.
//
// Mutations are serialized internally; concurrent queries keep running
// against whatever snapshot they started with. Deltas accumulate across
// batches on the same base CSR — call Compact periodically to fold them
// into a fresh CSR (required before checkpointing or SaveCSR).
func (g *Graph) ApplyEdges(add, remove [][2]VertexID) (*Snapshot, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.snap()
	ov, err := delta.Apply(cur.base, cur.ov, toDeltaEdges(add), toDeltaEdges(remove))
	if err != nil {
		return nil, fmt.Errorf("light: ApplyEdges: %w", err)
	}
	if ov == cur.ov {
		return &Snapshot{owner: g, st: cur}, nil
	}
	st := &snapshotState{base: cur.base, ov: ov, gen: cur.gen + 1, stats: cur.stats}
	g.head.Store(st)
	return &Snapshot{owner: g, st: st}, nil
}

// Compact folds the pending edge deltas into a fresh CSR and publishes
// it as the graph's new snapshot. Vertex IDs are preserved (no
// reordering), so counts and match images are unchanged; only the
// overlay indirection disappears from the enumeration hot path. With no
// pending deltas Compact is a no-op returning the current snapshot.
func (g *Graph) Compact() (*Snapshot, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.snap()
	if cur.ov == nil {
		return &Snapshot{owner: g, st: cur}, nil
	}
	base, err := delta.Compact(cur.ov)
	if err != nil {
		return nil, fmt.Errorf("light: Compact: %w", err)
	}
	st := &snapshotState{base: base, gen: cur.gen + 1, stats: &baseStats{}}
	g.head.Store(st)
	return &Snapshot{owner: g, st: st}, nil
}

// errNilSnapshot is shared by the delta-counting entry points.
var errNilSnapshot = errors.New("light: CountDelta requires non-nil from and to snapshots")
