package light

import (
	"context"
	"errors"
	"fmt"
	"time"

	"light/internal/arena"
	"light/internal/engine"
	"light/internal/graph"
	"light/internal/lanes"
	"light/internal/metrics"
)

// BatchQuery is one member of a CountBatch: a pattern plus optional
// query-specific narrowing. Queries with the same pattern (and batch
// options) compile to structurally identical plans and are packed into
// one bit-parallel lane group — the engine walks their shared search
// tree once, so a batch of overlapping queries costs far less than
// running them one by one.
type BatchQuery struct {
	// Pattern is the pattern to enumerate (required).
	Pattern *Pattern
	// Roots, when non-nil, restricts this query to matches whose root
	// pattern vertex (the first vertex of the chosen enumeration
	// order) maps into this set of data vertices. IDs are in the
	// graph's degree-ordered numbering, as returned in results and by
	// Graph.MapVertex.
	Roots []VertexID
	// MinDegree, when positive, restricts this query to matches using
	// only data vertices of at least this degree — the degree-profile
	// analytics knob. Equivalent to a sequential run whose Filter
	// rejects lower-degree vertices, but evaluated bit-parallel across
	// the whole lane word in one ladder lookup.
	MinDegree int
	// Filter, when non-nil, must approve every (pattern vertex, data
	// vertex) assignment for this query; same contract as
	// Options.Filter.
	Filter func(u int, v VertexID) bool
}

// BatchResult reports a CountBatch run.
type BatchResult struct {
	// Queries holds one Result per input query, in order. Counters
	// (Matches, Nodes, Intersections, and each Report's engine
	// counters) are exactly what a sequential run of that query alone
	// would report; Duration and CandidateMemoryBytes describe the
	// shared batch run and repeat on every entry.
	Queries []Result
	// Groups is how many shared traversals (lane groups) the batch
	// compiled into — batches of one pattern family run in a single
	// pass.
	Groups int
	// Workers is the largest worker pool any group ran with.
	Workers int
	// Duration is the whole batch's wall-clock time.
	Duration time.Duration
	// Degradations lists graceful-degradation events (reduced
	// admission, shed workers, arena pressure) for the batch.
	Degradations []string
}

// CountBatch evaluates up to hundreds of queries against one graph in
// bit-parallel lanes (64 queries per machine word per group),
// returning each query's exact individual count and counters. All
// queries run under opts' shared configuration (algorithm, kernel,
// workers, time limit, governor); per-query state lives in each
// BatchQuery. Under a Governor the whole batch is admitted once —
// one grant covers every lane group.
//
// Options.Filter, TailCount, CheckpointPath, and ResumeFrom do not
// apply to batches (per-query filters belong in BatchQuery; lane
// batches always take the full leaf loop) and are rejected.
func CountBatch(g *Graph, queries []BatchQuery, opts Options) (BatchResult, error) {
	return CountBatchContext(context.Background(), g, queries, opts)
}

// CountBatchContext is CountBatch under a context: cancellation stops
// the batch at its next poll and returns partial, non-attributable
// results with the context's error.
func CountBatchContext(ctx context.Context, g *Graph, queries []BatchQuery, opts Options) (BatchResult, error) {
	var bres BatchResult
	if err := opts.validate(); err != nil {
		return bres, err
	}
	switch {
	case opts.Filter != nil:
		return bres, errors.New("light: CountBatch does not take Options.Filter; set per-query BatchQuery.Filter instead")
	case opts.TailCount:
		return bres, errors.New("light: CountBatch does not support TailCount (lane batches always run the leaf loop)")
	case opts.CheckpointPath != "" || opts.ResumeFrom != "":
		return bres, errors.New("light: CountBatch does not support checkpointing")
	}
	if len(queries) == 0 {
		return bres, nil
	}
	st, err := g.resolveState(opts.Snapshot)
	if err != nil {
		return bres, err
	}

	// Compile one plan per query; identical patterns compile to
	// identical plans and group automatically by compatibility key.
	lq := make([]lanes.Query, len(queries))
	recs := make([]*metrics.Recorder, len(queries))
	maxPatternVerts := 0
	for i, q := range queries {
		if q.Pattern == nil {
			return bres, fmt.Errorf("light: batch query %d has no pattern", i)
		}
		pl, err := preparePlan(st, q.Pattern, opts)
		if err != nil {
			return bres, fmt.Errorf("light: batch query %d (%s): %w", i, q.Pattern.Name(), err)
		}
		if n := q.Pattern.NumVertices(); n > maxPatternVerts {
			maxPatternVerts = n
		}
		spec := lanes.Spec{MinDegree: q.MinDegree}
		if q.Roots != nil {
			roots := make([]graph.VertexID, len(q.Roots))
			copy(roots, q.Roots)
			spec.Roots = roots
		}
		if q.Filter != nil {
			spec.Filter = q.Filter
		}
		lq[i] = lanes.Query{Plan: pl, Spec: spec}
		recs[i] = metrics.NewRecorder()
	}
	if opts.HubDegreeThreshold > 0 {
		// Same first-wins preparation as single-query runs: one build,
		// shared by every concurrent query on this graph.
		st.base.EnsureHubIndex(opts.HubDegreeThreshold)
	}

	batchRec := metrics.NewRecorder()
	lopts := lanes.Options{
		Engine: engine.Options{
			Kernel:    opts.Intersection.kind(),
			TimeLimit: opts.TimeLimit,
			Metrics:   batchRec,
			Overlay:   st.ov,
		},
		Workers:   opts.Workers,
		Recorders: recs,
	}
	if lopts.Workers <= 1 {
		lopts.Workers = 1
	}

	// Governance: one admission grant for the whole batch, the memory
	// budget chained under the governor's, and the degradation ladder
	// sized against the largest pattern in the batch.
	var degradations []string
	var govLim *arena.Limiter
	start := time.Now()
	if opts.Governor != nil {
		gov := opts.Governor.g
		a, aerr := gov.Admit(ctx, lopts.Workers, opts.AdmissionTimeout)
		if aerr != nil {
			return bres, mapErr(aerr)
		}
		defer a.Close()
		lopts.Gate = a
		lopts.Watchdog = gov.Watchdog()
		govLim = gov.MemLimiter()
		batchRec.AddDuration(metrics.AdmissionWaitNanos, a.Wait())
		batchRec.Add(metrics.AdmissionSlotsGranted, uint64(a.Granted()))
		if a.Granted() < lopts.Workers {
			degradations = append(degradations, fmt.Sprintf(
				"admission: granted %d of %d requested workers", a.Granted(), lopts.Workers))
		}
		lopts.Workers = a.Granted()
	}
	runLim := arena.NewLimiter(opts.MemoryBudget, govLim)
	defer runLim.ReleaseAll()
	lopts.MemLimiter = runLim
	lopts.Workers, degradations, err = sizeBatchWorkers(lopts.Workers, st.maxDegree(), maxPatternVerts, runLim, degradations)
	if err != nil {
		return bres, err
	}
	lopts.Gate.ReleaseTo(lopts.Workers)

	lres, err := lanes.Run(ctx, st.base, lq, lopts)
	bres.Duration = time.Since(start)
	if n := runLim.TightGrows(); n > 0 {
		degradations = append(degradations, fmt.Sprintf(
			"memory: %d exact-size arena slab grows under budget pressure", n))
	}
	if lres.SlotsShed > 0 {
		degradations = append(degradations, fmt.Sprintf(
			"admission: shed %d worker slot(s) to waiting queries", lres.SlotsShed))
	}
	if lres.Stalls > 0 {
		degradations = append(degradations, fmt.Sprintf(
			"watchdog: %d stall(s) detected", lres.Stalls))
	}
	batchRec.Add(metrics.GovernorDegradations, uint64(len(degradations)))

	bres.Groups = lres.Groups
	bres.Workers = lres.Workers
	bres.Degradations = degradations
	bres.Queries = make([]Result, len(queries))
	for i := range queries {
		lc := lres.PerQuery[i]
		r := Result{
			Matches:              lc.Matches,
			Intersections:        lc.Stats.Intersections,
			GallopingPercent:     lc.Stats.GallopingPercent(),
			Nodes:                lc.Nodes,
			Duration:             bres.Duration,
			CandidateMemoryBytes: lres.CandidateMemBytes,
			Stopped:              lres.Stopped,
		}
		r.Order = make([]int, len(lq[i].Plan.Pi))
		copy(r.Order, lq[i].Plan.Pi)
		r.Report = newRunReport(recs[i], opts, lres.Workers, bres.Duration, lres.CandidateMemBytes, nil, nil)
		r.Report.DeltaEdges = st.deltaEdges()
		r.Report.SnapshotGen = st.gen
		bres.Queries[i] = r
	}
	return bres, mapErr(err)
}

// sizeBatchWorkers is sizeWorkers for a batch: the per-worker
// footprint estimate uses the largest pattern any group runs.
func sizeBatchWorkers(workers, maxDegree, maxPatternVerts int, lim *arena.Limiter, degradations []string) (int, []string, error) {
	head := lim.Headroom()
	if head < 0 {
		return workers, degradations, nil
	}
	allocs := maxPatternVerts + 1
	tightEst := arena.EstimateBytes(allocs, maxDegree, true)
	if tightEst <= 0 || int64(workers)*tightEst <= head {
		return workers, degradations, nil
	}
	fit := int(head / tightEst)
	if fit < 1 {
		fit = 1
	}
	if fit < workers {
		degradations = append(degradations, fmt.Sprintf(
			"memory: shed workers %d -> %d (predicted %d B/worker, headroom %d B)",
			workers, fit, tightEst, head))
		workers = fit
	}
	return workers, degradations, nil
}
