#!/usr/bin/env bash
# verify.sh — the repository's full verification gate, identical to CI.
# Usage: scripts/verify.sh [-short]
#   -short  trims the slow paths (stress iterations, module-load test)
set -euo pipefail
cd "$(dirname "$0")/.."

SHORT=()
if [[ "${1:-}" == "-short" ]]; then
    SHORT=(-short)
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> lightvet ./... (findings -> lightvet-findings.json, 30s budget)"
# The full analyzer suite must finish well under 30s wall-clock on the
# whole module — it runs on every CI push, so its cost is part of the
# contract. The JSON report is uploaded as a CI artifact.
LINT_START=$(date +%s)
go run ./cmd/lightvet -json lightvet-findings.json ./...
LINT_ELAPSED=$(( $(date +%s) - LINT_START ))
if (( LINT_ELAPSED > 30 )); then
    echo "verify: FAIL — lightvet took ${LINT_ELAPSED}s, budget is 30s" >&2
    exit 1
fi

echo "==> lightvet -unused-ignores ./... (stale suppression audit)"
go run ./cmd/lightvet -unused-ignores ./...

echo "==> lint-self: go test -race ./internal/lint/..."
go test -race "${SHORT[@]}" ./internal/lint/...

echo "==> go test -count=1 -shuffle=on ./..."
go test -count=1 -shuffle=on "${SHORT[@]}" ./...

echo "==> go test -race (parallel, engine, lanes, delta, metrics, admission, server incl. soaks)"
# Explicit -timeout: under -race these are the slowest steps, and a hang
# should fail with goroutine dumps inside the CI job budget, not at it.
go test -race -timeout 10m "${SHORT[@]}" \
    ./internal/parallel/... ./internal/engine/... ./internal/lanes/... ./internal/delta/... ./internal/metrics/... ./internal/admission/... ./internal/server/...

echo "==> go test -race shared-graph regressions (hub index, snapshot isolation)"
go test -race -timeout 5m -run 'TestConcurrentQueriesHubThreshold|TestHubIndexOneBuildAcrossQueries|TestSnapshotIsolation' .

echo "==> lightd smoke: boot the daemon, load a graph, count + enumerate + batch over HTTP"
go run ./cmd/lightd -smoke

echo "==> chaos: go test -race -tags faultinject"
go build -tags faultinject ./...
go test -race -tags faultinject -timeout 10m "${SHORT[@]}" \
    ./internal/faultpoint/ ./internal/parallel/ ./internal/supervise/ ./internal/graph/ ./internal/engine/ ./internal/admission/ ./internal/lanes/

echo "==> fuzz smoke: FuzzCSRRoundTrip (10s)"
go test ./internal/graph/ -run FuzzCSRRoundTrip -fuzz FuzzCSRRoundTrip -fuzztime 10s

echo "==> lightdiff differential smoke (lane + edge-delta oracles on)"
if [[ ${#SHORT[@]} -gt 0 ]]; then
    go run ./cmd/lightdiff -cases 40 -quick -lanes -delta
else
    go run ./cmd/lightdiff -cases 200
fi

echo "verify: OK"
