#!/usr/bin/env bash
# bench_gate.sh — run the deterministic smoke-benchmark suite and gate
# it against the committed baseline (bench/BENCH_smoke.json).
#
# Deterministic work counters are gated on exact equality; wall-clock
# times are gated with lightbench's tolerance unless -advisory-time is
# passed (recommended on shared CI runners). Extra arguments are passed
# through to `lightbench -compare`.
#
# Environment overrides (used by tests and CI):
#   BENCH_GATE_BASELINE  baseline report path (default bench/BENCH_smoke.json)
#   BENCH_GATE_FRESH     fresh report path; if the file already exists it
#                        is gated as-is, otherwise the suite runs into it
#   LIGHTBENCH_BIN       prebuilt lightbench binary (default: go run)
#
# Refresh the baseline after an intentional behaviour change with:
#   go run ./cmd/lightbench -out bench/BENCH_smoke.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${BENCH_GATE_BASELINE:-bench/BENCH_smoke.json}"
FRESH="${BENCH_GATE_FRESH:-}"

run_lightbench() {
  if [ -n "${LIGHTBENCH_BIN:-}" ]; then
    "$LIGHTBENCH_BIN" "$@"
  else
    go run ./cmd/lightbench "$@"
  fi
}

if [ ! -f "$BASELINE" ]; then
  echo "bench_gate: baseline $BASELINE not found" >&2
  echo "bench_gate: generate it with: go run ./cmd/lightbench -out $BASELINE" >&2
  exit 2
fi

if [ -z "$FRESH" ]; then
  FRESH="$(mktemp -d)/BENCH_smoke_fresh.json"
fi
if [ ! -f "$FRESH" ]; then
  echo "bench_gate: running smoke suite -> $FRESH"
  run_lightbench -out "$FRESH"
fi

run_lightbench -compare "$@" "$BASELINE" "$FRESH"
