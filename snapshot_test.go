package light

import (
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func triangles(t *testing.T) *Pattern {
	t.Helper()
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// rebuild reconstructs the graph's current view from scratch through the
// public accessors — the independent reference a mutated graph must match.
func rebuild(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var edges [][2]VertexID
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < u {
				edges = append(edges, [2]VertexID{VertexID(v), u})
			}
		}
	}
	return NewGraph(g.NumVertices(), edges)
}

func TestApplyEdgesCountsMatchRebuild(t *testing.T) {
	g := GenerateBarabasiAlbert(120, 3, 7)
	p := triangles(t)
	rng := rand.New(rand.NewSource(21))
	for round := 0; round < 4; round++ {
		n := g.NumVertices()
		var add, rem [][2]VertexID
		for i := 0; i < 8; i++ {
			u, v := VertexID(rng.Intn(n+3)), VertexID(rng.Intn(n+3))
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 {
				rem = append(rem, [2]VertexID{u, v})
			} else {
				add = append(add, [2]VertexID{u, v})
			}
		}
		snap, err := g.ApplyEdges(add, rem)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Count(rebuild(t, g), p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got, err := Count(g, p, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got.Matches != want.Matches {
				t.Fatalf("round %d workers %d: overlay count %d, rebuild %d",
					round, workers, got.Matches, want.Matches)
			}
			if got.Report.SnapshotGen != snap.Generation() {
				t.Errorf("round %d: report gen %d, snapshot gen %d",
					round, got.Report.SnapshotGen, snap.Generation())
			}
			if got.Report.DeltaEdges != snap.DeltaEdges() {
				t.Errorf("round %d: report delta edges %d, snapshot %d",
					round, got.Report.DeltaEdges, snap.DeltaEdges())
			}
		}
	}
	// Compaction preserves the count and clears the delta accounting.
	want, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := g.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if snap.DeltaEdges() != 0 {
		t.Fatalf("compacted snapshot carries %d delta edges", snap.DeltaEdges())
	}
	got, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Matches != want.Matches {
		t.Fatalf("compaction changed count: %d -> %d", want.Matches, got.Matches)
	}
	if got.Report.DeltaEdges != 0 {
		t.Fatalf("compacted run reports %d delta edges", got.Report.DeltaEdges)
	}
}

// TestSnapshotIsolation is the snapshot-isolation proof: queries pinned
// to generation N keep returning N's exact count while ApplyEdges
// publishes N+1, N+2, ... concurrently. Run under -race this also
// checks the publication discipline (no locks on the read side).
func TestSnapshotIsolation(t *testing.T) {
	g := GenerateBarabasiAlbert(150, 3, 9)
	p := triangles(t)
	pinned := g.Snapshot()
	want, err := Count(g, p, Options{Snapshot: pinned})
	if err != nil {
		t.Fatal(err)
	}

	const readers, rounds = 4, 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				res, err := Count(g, p, Options{Snapshot: pinned, Workers: workers})
				if err != nil {
					errs <- err
					return
				}
				if res.Matches != want.Matches {
					t.Errorf("pinned reader saw %d matches, want %d", res.Matches, want.Matches)
					return
				}
			}
		}(1 + r%3)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		rng := rand.New(rand.NewSource(33))
		for i := 0; i < rounds; i++ {
			n := g.NumVertices()
			add := [][2]VertexID{{VertexID(rng.Intn(n)), VertexID(rng.Intn(n + 2))}}
			rem := [][2]VertexID{{VertexID(rng.Intn(n)), VertexID(rng.Intn(n))}}
			if _, err := g.ApplyEdges(add, rem); err != nil {
				errs <- err
				return
			}
			if i == rounds/2 {
				if _, err := g.Compact(); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The pinned snapshot still answers exactly even though the graph
	// head moved on (and was compacted under it).
	res, err := Count(g, p, Options{Snapshot: pinned})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want.Matches {
		t.Fatalf("pinned count drifted after mutations: %d -> %d", want.Matches, res.Matches)
	}
	if g.Snapshot().Generation() == pinned.Generation() {
		t.Fatal("head generation did not advance")
	}
}

// edgeAndNonEdge finds one present and one absent pair at vertex 0.
func edgeAndNonEdge(t *testing.T, g *Graph) (present, absent [2]VertexID) {
	t.Helper()
	havePresent, haveAbsent := false, false
	for v := 1; v < g.NumVertices(); v++ {
		if g.HasEdge(0, VertexID(v)) {
			if !havePresent {
				present, havePresent = [2]VertexID{0, VertexID(v)}, true
			}
		} else if !haveAbsent {
			absent, haveAbsent = [2]VertexID{0, VertexID(v)}, true
		}
	}
	if !havePresent || !haveAbsent {
		t.Fatal("fixture graph lacks a present/absent pair at vertex 0")
	}
	return present, absent
}

func TestApplyEdgesNoOpKeepsSnapshot(t *testing.T) {
	g := GenerateGrid(4, 4)
	present, absent := edgeAndNonEdge(t, g)
	before := g.Snapshot()
	// Self-loops, already-present insertions, and already-absent
	// deletions change nothing.
	snap, err := g.ApplyEdges([][2]VertexID{{0, 0}, present}, [][2]VertexID{absent})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation() != before.Generation() || snap.Fingerprint() != before.Fingerprint() {
		t.Fatalf("no-op batch advanced the snapshot: gen %d -> %d", before.Generation(), snap.Generation())
	}
}

func TestApplyEdgesChangesFingerprint(t *testing.T) {
	g := GenerateGrid(4, 4)
	_, absent := edgeAndNonEdge(t, g)
	before := g.Fingerprint()
	if _, err := g.ApplyEdges([][2]VertexID{absent}, nil); err != nil {
		t.Fatal(err)
	}
	after := g.Fingerprint()
	if after == before {
		t.Fatal("fingerprint unchanged after effective edge batch")
	}
	snap, err := g.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Fingerprint() == before {
		t.Fatal("compacted fingerprint equals pre-mutation fingerprint")
	}
}

func TestPendingDeltasRejectCheckpointAndSave(t *testing.T) {
	g := GenerateBarabasiAlbert(60, 3, 4)
	if _, err := g.ApplyEdges([][2]VertexID{{0, 59}}, nil); err != nil {
		t.Fatal(err)
	}
	p := triangles(t)
	dir := t.TempDir()
	_, err := Count(g, p, Options{CheckpointPath: filepath.Join(dir, "ck")})
	if err == nil || !strings.Contains(err.Error(), "Compact") {
		t.Fatalf("checkpoint with pending deltas: err = %v, want compact-first rejection", err)
	}
	_, err = Count(g, p, Options{ResumeFrom: filepath.Join(dir, "ck")})
	if err == nil || !strings.Contains(err.Error(), "Compact") {
		t.Fatalf("resume with pending deltas: err = %v, want compact-first rejection", err)
	}
	if err := g.SaveCSR(filepath.Join(dir, "g.csr")); err == nil || !strings.Contains(err.Error(), "Compact") {
		t.Fatalf("SaveCSR with pending deltas: err = %v, want compact-first rejection", err)
	}
	if _, _, err := ApproxCount(g, p, 10, 1); err == nil || !strings.Contains(err.Error(), "Compact") {
		t.Fatalf("ApproxCount with pending deltas: err = %v, want compact-first rejection", err)
	}
	if _, err := WithLabels(g, make([]Label, g.NumVertices())); err == nil || !strings.Contains(err.Error(), "Compact") {
		t.Fatalf("WithLabels with pending deltas: err = %v, want compact-first rejection", err)
	}
	// After compaction they all work again.
	if _, err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := g.SaveCSR(filepath.Join(dir, "g.csr")); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(g, p, Options{CheckpointPath: filepath.Join(dir, "ck")}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotForeignGraphRejected(t *testing.T) {
	g1 := GenerateGrid(3, 3)
	g2 := GenerateGrid(3, 3)
	p := triangles(t)
	if _, err := Count(g1, p, Options{Snapshot: g2.Snapshot()}); err == nil {
		t.Fatal("Count accepted a snapshot from a different Graph")
	}
}

func TestCountBatchOnOverlay(t *testing.T) {
	g := GenerateBarabasiAlbert(90, 3, 6)
	if _, err := g.ApplyEdges([][2]VertexID{{0, 89}, {1, 95}}, [][2]VertexID{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	p := triangles(t)
	want, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := CountBatch(g, []BatchQuery{{Pattern: p}, {Pattern: p}}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range bres.Queries {
		if q.Matches != want.Matches {
			t.Errorf("batch query %d on overlay: %d matches, want %d", i, q.Matches, want.Matches)
		}
	}
}
