package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"light"
)

// testServer builds a Server plus a graph registered as "g", returning
// the direct triangle count as reference.
func testServer(t *testing.T, cfg Config) (*Server, *light.Graph, uint64) {
	t.Helper()
	s := New(cfg)
	g := light.GenerateBarabasiAlbert(400, 5, 3)
	if _, err := s.Registry().Add("g", g); err != nil {
		t.Fatalf("registering graph: %v", err)
	}
	p, err := light.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := light.Count(g, p, light.Options{})
	if err != nil {
		t.Fatalf("reference count: %v", err)
	}
	return s, g, ref.Matches
}

// do posts body (marshalled to JSON) to path and returns the recorder.
func do(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// decode unmarshals the recorder body into v.
func decode(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
}

// TestStatusForRunError pins the governor-error → HTTP-status contract:
// overload 429, memory budget 507, deadline and stall 504, everything
// else 400.
func TestStatusForRunError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{light.ErrOverloaded, http.StatusTooManyRequests},
		{light.ErrMemoryBudget, http.StatusInsufficientStorage},
		{light.ErrTimeLimit, http.StatusGatewayTimeout},
		{light.ErrStalled, http.StatusGatewayTimeout},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{fmt.Errorf("wrapped: %w", light.ErrOverloaded), http.StatusTooManyRequests},
		{errors.New("bad option"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := statusForRunError(c.err); got != c.want {
			t.Errorf("statusForRunError(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestQueryCountAndCacheHit runs the same count twice: the first runs
// the engine, the second must be served from the result cache with the
// identical Matches, and /stats must show the hit.
func TestQueryCountAndCacheHit(t *testing.T) {
	s, _, ref := testServer(t, Config{})
	body := queryRequest{Graph: "g", Pattern: "triangle"}

	w := do(t, s, "POST", "/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("first query status = %d: %s", w.Code, w.Body.String())
	}
	var first QueryResponse
	decode(t, w, &first)
	if first.Matches != ref {
		t.Fatalf("matches = %d, want %d", first.Matches, ref)
	}
	if first.Cached {
		t.Fatal("first query reported cached")
	}
	if first.Report == nil {
		t.Fatal("first query carried no report")
	}

	w = do(t, s, "POST", "/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("second query status = %d: %s", w.Code, w.Body.String())
	}
	var second QueryResponse
	decode(t, w, &second)
	if !second.Cached {
		t.Fatal("second identical query was not served from cache")
	}
	if second.Matches != first.Matches {
		t.Fatalf("cached matches = %d, want %d", second.Matches, first.Matches)
	}

	var stats StatsResponse
	decode(t, do(t, s, "GET", "/stats", nil), &stats)
	if stats.Cache == nil || stats.Cache.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit", stats.Cache)
	}
	if stats.Served["query"] != 2 {
		t.Fatalf("served[query] = %d, want 2", stats.Served["query"])
	}
	if len(stats.LastReports) == 0 {
		t.Fatal("no reports retained in /stats")
	}
}

// TestQueryOptionsChangeCacheKey: a different kernel or a no_cache
// request must not be served the other option set's entry.
func TestQueryOptionsChangeCacheKey(t *testing.T) {
	s, _, ref := testServer(t, Config{})
	base := queryRequest{Graph: "g", Pattern: "triangle"}
	merge := queryRequest{Graph: "g", Pattern: "triangle",
		Options: QueryOptions{Kernel: "Merge"}}

	var r1, r2 QueryResponse
	decode(t, do(t, s, "POST", "/query", base), &r1)
	decode(t, do(t, s, "POST", "/query", merge), &r2)
	if r2.Cached {
		t.Fatal("different kernel served from the default kernel's cache entry")
	}
	if r1.Matches != ref || r2.Matches != ref {
		t.Fatalf("matches = %d/%d, want %d", r1.Matches, r2.Matches, ref)
	}

	noCache := base
	noCache.Options.NoCache = true
	var r3 QueryResponse
	decode(t, do(t, s, "POST", "/query", noCache), &r3)
	if r3.Cached {
		t.Fatal("no_cache request was served from cache")
	}
}

// TestQueryRequestErrors pins the 4xx mapping for malformed requests.
func TestQueryRequestErrors(t *testing.T) {
	s, _, _ := testServer(t, Config{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown graph", queryRequest{Graph: "nope", Pattern: "triangle"}, http.StatusNotFound},
		{"missing graph", queryRequest{Pattern: "triangle"}, http.StatusBadRequest},
		{"unknown pattern", queryRequest{Graph: "g", Pattern: "dodecahedron"}, http.StatusBadRequest},
		{"missing pattern", queryRequest{Graph: "g"}, http.StatusBadRequest},
		{"bad algorithm", queryRequest{Graph: "g", Pattern: "triangle",
			Options: QueryOptions{Algorithm: "QUANTUM"}}, http.StatusBadRequest},
		{"bad kernel", queryRequest{Graph: "g", Pattern: "triangle",
			Options: QueryOptions{Kernel: "Quicksort"}}, http.StatusBadRequest},
		{"negative tau", queryRequest{Graph: "g", Pattern: "triangle",
			Options: QueryOptions{HubDegreeThreshold: -1}}, http.StatusBadRequest},
		{"both patterns", queryRequest{Graph: "g", Pattern: "triangle",
			PatternGraph: &patternSpec{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := do(t, s, "POST", "/query", c.body); w.Code != c.want {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, w.Code, c.want, w.Body.String())
		}
	}
	if w := do(t, s, "POST", "/query", json.RawMessage(`{"graph": 42}`)); w.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", w.Code)
	}
}

// TestInlinePatternQuery counts an inline pattern_graph triangle and
// must agree with the catalog triangle.
func TestInlinePatternQuery(t *testing.T) {
	s, _, ref := testServer(t, Config{})
	var resp QueryResponse
	w := do(t, s, "POST", "/query", queryRequest{
		Graph:        "g",
		PatternGraph: &patternSpec{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	decode(t, w, &resp)
	if resp.Matches != ref {
		t.Fatalf("inline triangle matches = %d, want %d", resp.Matches, ref)
	}
}

// TestEnumerateStreamsNDJSON checks the row stream: every line is a
// mapping row until the trailer, the row count matches the count
// query, and a small limit truncates with the trailer saying so.
func TestEnumerateStreamsNDJSON(t *testing.T) {
	s, _, ref := testServer(t, Config{})

	w := do(t, s, "POST", "/enumerate", queryRequest{Graph: "g", Pattern: "triangle", Limit: 100000})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	rows, trailer := scanStream(t, w.Body.Bytes())
	if uint64(rows) != ref {
		t.Fatalf("streamed %d rows, want %d", rows, ref)
	}
	if !trailer.Done || trailer.Truncated || trailer.Error != "" {
		t.Fatalf("trailer = %+v", trailer)
	}

	w = do(t, s, "POST", "/enumerate", queryRequest{Graph: "g", Pattern: "triangle", Limit: 7})
	rows, trailer = scanStream(t, w.Body.Bytes())
	if rows != 7 || !trailer.Truncated || trailer.Rows != 7 {
		t.Fatalf("limited stream: rows = %d, trailer = %+v", rows, trailer)
	}

	if w := do(t, s, "POST", "/enumerate", queryRequest{Graph: "g", Pattern: "triangle",
		Options: QueryOptions{TailCount: true}}); w.Code != http.StatusBadRequest {
		t.Fatalf("tail_count enumerate: status = %d, want 400", w.Code)
	}
}

// scanStream parses an NDJSON body into its row count and trailer.
func scanStream(t *testing.T, body []byte) (int, enumerateTrailer) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows := 0
	var trailer enumerateTrailer
	sawTrailer := false
	for sc.Scan() {
		line := sc.Bytes()
		if sawTrailer {
			t.Fatalf("data after trailer: %s", line)
		}
		if strings.Contains(string(line), `"done"`) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("bad trailer %q: %v", line, err)
			}
			sawTrailer = true
			continue
		}
		var row enumerateRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		if len(row.Mapping) == 0 {
			t.Fatalf("empty mapping row: %s", line)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrailer {
		t.Fatal("stream ended without trailer")
	}
	if trailer.Rows != rows {
		t.Fatalf("trailer.Rows = %d, stream had %d", trailer.Rows, rows)
	}
	return rows, trailer
}

// TestBatchEndpoint runs a mixed batch and checks each query's exact
// count, then repeats it for a cache hit.
func TestBatchEndpoint(t *testing.T) {
	s, g, refTriangle := testServer(t, Config{})
	sq, err := light.PatternByName("square")
	if err != nil {
		t.Fatal(err)
	}
	refSquare, err := light.Count(g, sq, light.Options{})
	if err != nil {
		t.Fatal(err)
	}

	body := batchRequest{
		Graph: "g",
		Queries: []batchQueryRequest{
			{Pattern: "triangle"},
			{Pattern: "square"},
			{Pattern: "triangle", MinDegree: 8},
		},
	}
	w := do(t, s, "POST", "/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	decode(t, w, &resp)
	if len(resp.Queries) != 3 {
		t.Fatalf("got %d query results, want 3", len(resp.Queries))
	}
	if resp.Queries[0].Matches != refTriangle {
		t.Fatalf("batch triangle = %d, want %d", resp.Queries[0].Matches, refTriangle)
	}
	if resp.Queries[1].Matches != refSquare.Matches {
		t.Fatalf("batch square = %d, want %d", resp.Queries[1].Matches, refSquare.Matches)
	}
	if resp.Queries[2].Matches >= refTriangle {
		t.Fatalf("min_degree batch member = %d, want < %d", resp.Queries[2].Matches, refTriangle)
	}
	if resp.Groups < 1 {
		t.Fatalf("groups = %d", resp.Groups)
	}

	var again BatchResponse
	decode(t, do(t, s, "POST", "/batch", body), &again)
	if !again.Cached {
		t.Fatal("repeated batch was not served from cache")
	}
	if again.Queries[0].Matches != refTriangle || again.Queries[1].Matches != refSquare.Matches {
		t.Fatal("cached batch returned different counts")
	}

	if w := do(t, s, "POST", "/batch", batchRequest{Graph: "g"}); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status = %d, want 400", w.Code)
	}
}

// TestGraphLifecycle loads a graph from a file over HTTP, queries it,
// unloads it, and checks the cache entries died with it.
func TestGraphLifecycle(t *testing.T) {
	s, _, _ := testServer(t, Config{})

	path := filepath.Join(t.TempDir(), "tiny.txt")
	// A 4-clique: every triangle query counts 4.
	edges := "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n"
	if err := os.WriteFile(path, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "POST", "/graphs", map[string]string{"name": "tiny", "path": path})
	if w.Code != http.StatusOK {
		t.Fatalf("load status = %d: %s", w.Code, w.Body.String())
	}
	var info GraphInfo
	decode(t, w, &info)
	if info.Vertices != 4 || info.Edges != 6 {
		t.Fatalf("loaded info = %+v", info)
	}

	var list struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	decode(t, do(t, s, "GET", "/graphs", nil), &list)
	if len(list.Graphs) != 2 {
		t.Fatalf("listed %d graphs, want 2", len(list.Graphs))
	}

	var resp QueryResponse
	decode(t, do(t, s, "POST", "/query", queryRequest{Graph: "tiny", Pattern: "triangle"}), &resp)
	if resp.Matches != 4 {
		t.Fatalf("4-clique triangles = %d, want 4", resp.Matches)
	}

	w = do(t, s, "DELETE", "/graphs/tiny", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("unload status = %d: %s", w.Code, w.Body.String())
	}
	var un struct {
		Unloaded    string `json:"unloaded"`
		Invalidated int    `json:"invalidated"`
	}
	decode(t, w, &un)
	if un.Invalidated < 1 {
		t.Fatalf("invalidated = %d, want >= 1", un.Invalidated)
	}
	if w := do(t, s, "POST", "/query", queryRequest{Graph: "tiny", Pattern: "triangle"}); w.Code != http.StatusNotFound {
		t.Fatalf("query after unload: status = %d, want 404", w.Code)
	}
	if w := do(t, s, "DELETE", "/graphs/tiny", nil); w.Code != http.StatusNotFound {
		t.Fatalf("double unload: status = %d, want 404", w.Code)
	}
}

// TestRegistryLoadOnceDedup loads the same file under two names and
// checks both names share one in-memory snapshot.
func TestRegistryLoadOnceDedup(t *testing.T) {
	s := New(Config{})
	path := filepath.Join(t.TempDir(), "dup.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := s.Registry().Load("a", path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Registry().Load("b", path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	ga, _, _ := s.Registry().Get("a")
	gb, _, _ := s.Registry().Get("b")
	if ga != gb {
		t.Fatal("same content loaded twice: snapshots not deduplicated")
	}
	// Re-loading an existing name with the same content is idempotent.
	if _, err := s.Registry().Load("a", path); err != nil {
		t.Fatalf("idempotent reload failed: %v", err)
	}
}

// TestOverloadedMapsTo429: with the server's only governor slot held by
// a blocked direct run, an HTTP query must fail admission with 429.
func TestOverloadedMapsTo429(t *testing.T) {
	s, g, _ := testServer(t, Config{Slots: 1, AdmissionTimeout: 30 * time.Millisecond})
	p, err := light.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := light.Enumerate(g, p, light.Options{Governor: s.Governor()}, func([]light.VertexID) bool {
			once.Do(func() { close(started) })
			<-hold
			return true
		})
		if err != nil {
			t.Errorf("holder run failed: %v", err)
		}
	}()
	<-started
	w := do(t, s, "POST", "/query", queryRequest{Graph: "g", Pattern: "triangle",
		Options: QueryOptions{NoCache: true}})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", w.Code, w.Body.String())
	}
	close(hold)
	wg.Wait()
}

// TestMemoryBudgetMapsTo507: a per-query budget too small for one
// worker's candidate arena must surface as 507.
func TestMemoryBudgetMapsTo507(t *testing.T) {
	s := New(Config{})
	if _, err := s.Registry().Add("g", light.GenerateBarabasiAlbert(600, 5, 7)); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "POST", "/query", queryRequest{Graph: "g", Pattern: "triangle",
		Options: QueryOptions{Workers: 2, MemoryBudgetBytes: 64}})
	if w.Code != http.StatusInsufficientStorage {
		t.Fatalf("status = %d, want 507: %s", w.Code, w.Body.String())
	}
	var er errorResponse
	decode(t, do(t, s, "POST", "/query", queryRequest{Graph: "g", Pattern: "triangle",
		Options: QueryOptions{Workers: 2, MemoryBudgetBytes: 64}}), &er)
	if er.Status != http.StatusInsufficientStorage || er.Error == "" {
		t.Fatalf("error body = %+v", er)
	}
}

// TestDeadlineMapsTo504: a 1ms deadline on a non-trivial count must
// expire into 504.
func TestDeadlineMapsTo504(t *testing.T) {
	s := New(Config{})
	if _, err := s.Registry().Add("g", light.GenerateBarabasiAlbert(8000, 16, 11)); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "POST", "/query", queryRequest{Graph: "g", Pattern: "clique5",
		Options: QueryOptions{TimeoutMS: 1}})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", w.Code, w.Body.String())
	}
}

// TestHealthz pins the liveness endpoint.
func TestHealthz(t *testing.T) {
	s := New(Config{})
	w := do(t, s, "GET", "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var body map[string]any
	decode(t, w, &body)
	if body["status"] != "ok" {
		t.Fatalf("body = %v", body)
	}
}

// TestCacheDisabled: CacheEntries < 0 must serve correct results with
// no cache section in /stats and no Cached repeats.
func TestCacheDisabled(t *testing.T) {
	s, _, ref := testServer(t, Config{CacheEntries: -1})
	body := queryRequest{Graph: "g", Pattern: "triangle"}
	var r1, r2 QueryResponse
	decode(t, do(t, s, "POST", "/query", body), &r1)
	decode(t, do(t, s, "POST", "/query", body), &r2)
	if r1.Matches != ref || r2.Matches != ref {
		t.Fatalf("matches = %d/%d, want %d", r1.Matches, r2.Matches, ref)
	}
	if r1.Cached || r2.Cached {
		t.Fatal("cache disabled but a response reported cached")
	}
	var stats StatsResponse
	decode(t, do(t, s, "GET", "/stats", nil), &stats)
	if stats.Cache != nil {
		t.Fatalf("cache stats present with caching disabled: %+v", stats.Cache)
	}
}
