// Package server implements lightd, the long-lived enumeration
// service: a stdlib net/http daemon exposing the light library's
// count, enumerate, and batch APIs over a registry of loaded graph
// snapshots, governed by one process-wide resource governor and fronted
// by a result cache. See DESIGN.md §17.
package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"light"
)

// GraphInfo describes one registered graph snapshot.
type GraphInfo struct {
	// Name is the registry handle queries refer to.
	Name string `json:"name"`
	// Fingerprint is the graph's content hash (hex), the key snapshots
	// are deduplicated and cache entries are invalidated by.
	Fingerprint string `json:"fingerprint"`
	// Path is the file the graph was loaded from ("" for graphs
	// registered in-process).
	Path string `json:"path,omitempty"`
	// Vertices, Edges, and MaxDegree summarize the graph.
	Vertices  int   `json:"vertices"`
	Edges     int64 `json:"edges"`
	MaxDegree int   `json:"max_degree"`
	// MemoryBytes is the CSR footprint.
	MemoryBytes int64 `json:"memory_bytes"`
	// Hubs is the number of bitmap-indexed hub vertices.
	Hubs int `json:"hubs"`
	// LoadedAt is when this name was registered.
	LoadedAt time.Time `json:"loaded_at"`
}

// regEntry pairs a graph snapshot with its registry metadata. Multiple
// names may share one entry's *light.Graph (load-once deduplication by
// fingerprint) while carrying their own metadata.
type regEntry struct {
	g    *light.Graph
	info GraphInfo
}

// Registry holds the server's loaded graph snapshots: load-once CSR
// graphs keyed by content fingerprint, addressed by caller-chosen
// names. Loading a file whose content is already registered reuses the
// in-memory snapshot instead of duplicating it. All methods are safe
// for concurrent use.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*regEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*regEntry)}
}

// Load reads the graph at path (a .csr snapshot, or an edge-list file,
// optionally gzipped) and registers it under name. If a graph with the
// same content fingerprint is already registered, the existing
// in-memory snapshot is reused (load-once); if name is already taken by
// a different graph, Load fails. Returns the registered info.
func (r *Registry) Load(name, path string) (GraphInfo, error) {
	if err := validName(name); err != nil {
		return GraphInfo{}, err
	}
	var (
		g   *light.Graph
		err error
	)
	if strings.HasSuffix(path, ".csr") || strings.HasSuffix(path, ".csr.gz") {
		g, err = light.LoadCSR(path)
	} else {
		g, err = light.LoadEdgeList(path)
	}
	if err != nil {
		return GraphInfo{}, fmt.Errorf("server: loading %s: %w", path, err)
	}
	return r.register(name, path, g)
}

// Add registers an in-process graph under name (no file involved) —
// the path tests, smoke checks, and embedding callers use.
func (r *Registry) Add(name string, g *light.Graph) (GraphInfo, error) {
	if err := validName(name); err != nil {
		return GraphInfo{}, err
	}
	return r.register(name, "", g)
}

// validName accepts exactly the documented safe charset: letters,
// digits, dots, underscores, and dashes. Names appear verbatim in URL
// paths (DELETE /graphs/{name}, POST /graphs/{name}/edges) and cache
// keys, so URL metacharacters ('?', '#', '%', ...) — which an
// everything-but-slashes-and-spaces rule used to let through — must be
// rejected, not just the characters that break routing outright.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("server: invalid graph name %q (must be non-empty)", name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("server: invalid graph name %q (allowed characters: A-Z a-z 0-9 . _ -)", name)
		}
	}
	return nil
}

func (r *Registry) register(name, path string, g *light.Graph) (GraphInfo, error) {
	fp := g.Fingerprint()
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		if prev.g.Fingerprint() == fp {
			// Idempotent re-load of the same content: keep the original
			// snapshot and LoadedAt, but track the file's current
			// location — the caller may have re-loaded precisely because
			// the file moved.
			if path != "" {
				prev.info.Path = path
			}
			return prev.info, nil
		}
		return GraphInfo{}, fmt.Errorf("server: graph name %q already registered with different content", name)
	}
	// Load-once: reuse an existing snapshot with the same fingerprint,
	// so N names for one graph cost one CSR in memory (and share one
	// hub index and plan-stats cache).
	for _, e := range r.byName {
		if e.g.Fingerprint() == fp {
			g = e.g
			break
		}
	}
	e := &regEntry{
		g: g,
		info: GraphInfo{
			Name:        name,
			Fingerprint: fmt.Sprintf("%016x", fp),
			Path:        path,
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			MaxDegree:   g.MaxDegree(),
			MemoryBytes: g.MemoryBytes(),
			Hubs:        g.NumHubs(),
			LoadedAt:    time.Now().UTC(),
		},
	}
	r.byName[name] = e
	return e.info, nil
}

// Get returns the graph registered under name.
func (r *Registry) Get(name string) (*light.Graph, GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byName[name]
	if !ok {
		return nil, GraphInfo{}, false
	}
	return e.g, e.info, true
}

// Unload removes name from the registry, returning the snapshot's
// fingerprint and whether this was the last name referencing that
// content. Load-once deduplication means several names can share one
// snapshot (and its cached results); the cache must be invalidated only
// when the last reference goes away, or unloading an alias would evict
// entries the surviving names still serve from.
func (r *Registry) Unload(name string) (fingerprint uint64, lastRef, existed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byName[name]
	if !ok {
		return 0, false, false
	}
	delete(r.byName, name)
	fp := e.g.Fingerprint()
	for _, other := range r.byName {
		if other.g.Fingerprint() == fp {
			return fp, false, true
		}
	}
	return fp, true, true
}

// RefreshInfo re-derives the registry metadata of every name sharing
// the given graph after a mutation (ApplyEdges/Compact change the
// fingerprint, sizes, and degree bound of all aliases at once),
// returning the updated infos. The graph is matched by identity:
// aliases share the one mutable *light.Graph.
func (r *Registry) RefreshInfo(g *light.Graph) []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []GraphInfo
	for _, e := range r.byName {
		if e.g != g {
			continue
		}
		e.info.Fingerprint = fmt.Sprintf("%016x", g.Fingerprint())
		e.info.Vertices = g.NumVertices()
		e.info.Edges = g.NumEdges()
		e.info.MaxDegree = g.MaxDegree()
		e.info.MemoryBytes = g.MemoryBytes()
		e.info.Hubs = g.NumHubs()
		out = append(out, e.info)
	}
	return out
}

// List returns the registered graphs, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.byName))
	for _, e := range r.byName {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
