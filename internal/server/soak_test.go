// Server-shaped soak: many client goroutines firing mixed /query,
// /batch, and /enumerate requests over real HTTP at one Server — one
// registry graph, one governor, one result cache — all under -race.
// Every response must carry the exact sequential count, conflicting
// hub-τ requests must resolve first-wins without a data race, and the
// process must settle back to its starting goroutine count.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"light"
)

// soakFixture builds the shared graph and the serial reference counts.
// -short shrinks the graph so verify.sh's quick pass stays fast.
func soakFixture(t *testing.T) (*light.Graph, []string, []uint64) {
	t.Helper()
	size := 2500
	if testing.Short() {
		size = 700
	}
	g := light.GenerateBarabasiAlbert(size, 6, 41)
	names := []string{"triangle", "square"}
	refs := make([]uint64, len(names))
	for i, name := range names {
		p, err := light.PatternByName(name)
		if err != nil {
			t.Fatalf("PatternByName(%s): %v", name, err)
		}
		res, err := light.Count(g, p, light.Options{})
		if err != nil {
			t.Fatalf("reference Count(%s): %v", name, err)
		}
		refs[i] = res.Matches
	}
	return g, names, refs
}

// settleGoroutines polls until the process goroutine count returns to
// at most base+slack, failing with a full stack dump if it never does.
func settleGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not settle: %d now vs %d before\n%s", n, base, buf)
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

// postJSON posts body to url and decodes the response into out,
// returning the status code. Non-2xx responses come back as errors
// carrying the server's error body.
func postJSON(client *http.Client, url string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	raw := new(bytes.Buffer)
	_, err = raw.ReadFrom(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %s", url, raw.String())
	}
	if out != nil {
		if derr := json.Unmarshal(raw.Bytes(), out); derr != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s response: %w", url, derr)
		}
	}
	return resp.StatusCode, nil
}

// TestServerSoakMixedTraffic is the lightd acceptance soak: 12 client
// goroutines, each issuing a mix of count, batch, and enumerate
// requests with clashing hub-τ and worker options, against one
// registered graph and a 4-slot governor. Exact counts, no races, no
// leaked goroutines, zero server-side errors.
func TestServerSoakMixedTraffic(t *testing.T) {
	g, names, refs := soakFixture(t)

	before := runtime.NumGoroutine()
	s := New(Config{
		Slots:         4,
		StallInterval: 20 * time.Millisecond,
		StallPatience: 3,
	})
	if _, err := s.Registry().Add("soak", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	const (
		clients = 12
		rounds  = 5
	)
	errCh := make(chan error, clients*rounds)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rnd := 0; rnd < rounds; rnd++ {
				pi := (c + rnd) % len(names)
				opts := QueryOptions{
					Workers: 1 + c%3,
					// Clashing τ requests from concurrent clients: the
					// shared graph's hub index must build once,
					// first-wins, with no data race.
					HubDegreeThreshold: 3 + c%3,
					Kernel:             "HybridBitmap",
					NoCache:            c%4 == 0,
				}
				switch (c + rnd) % 3 {
				case 0: // single count
					var resp QueryResponse
					code, err := postJSON(client, ts.URL+"/query",
						queryRequest{Graph: "soak", Pattern: names[pi], Options: opts}, &resp)
					if err != nil || code != http.StatusOK {
						errCh <- fmt.Errorf("client %d round %d query: code %d err %v", c, rnd, code, err)
						return
					}
					if resp.Matches != refs[pi] {
						errCh <- fmt.Errorf("client %d round %d query %s: matches %d, want %d",
							c, rnd, names[pi], resp.Matches, refs[pi])
						return
					}
				case 1: // lane batch over both patterns
					var resp BatchResponse
					code, err := postJSON(client, ts.URL+"/batch", batchRequest{
						Graph: "soak",
						Queries: []batchQueryRequest{
							{Pattern: names[0]},
							{Pattern: names[1]},
						},
						Options: opts,
					}, &resp)
					if err != nil || code != http.StatusOK {
						errCh <- fmt.Errorf("client %d round %d batch: code %d err %v", c, rnd, code, err)
						return
					}
					for qi := range resp.Queries {
						if resp.Queries[qi].Matches != refs[qi] {
							errCh <- fmt.Errorf("client %d round %d batch[%d]: matches %d, want %d",
								c, rnd, qi, resp.Queries[qi].Matches, refs[qi])
							return
						}
					}
				case 2: // streamed enumeration with a row limit
					limit := 200
					b, err := json.Marshal(queryRequest{
						Graph: "soak", Pattern: names[pi], Limit: limit, Options: opts})
					if err != nil {
						errCh <- err
						return
					}
					resp, err := client.Post(ts.URL+"/enumerate", "application/json", bytes.NewReader(b))
					if err != nil {
						errCh <- fmt.Errorf("client %d round %d enumerate: %v", c, rnd, err)
						return
					}
					body := new(bytes.Buffer)
					if _, err := body.ReadFrom(resp.Body); err != nil {
						errCh <- err
						return
					}
					if err := resp.Body.Close(); err != nil {
						errCh <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("client %d round %d enumerate: code %d", c, rnd, resp.StatusCode)
						return
					}
					rows, trailer := scanStream(t, body.Bytes())
					want := int(refs[pi])
					if want > limit {
						want = limit
					}
					if rows != want || trailer.Error != "" {
						errCh <- fmt.Errorf("client %d round %d enumerate %s: rows %d (trailer %+v), want %d",
							c, rnd, names[pi], rows, trailer, want)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The governor must be fully drained and /stats coherent.
	var stats StatsResponse
	if code, err := postStats(client, ts.URL+"/stats", &stats); err != nil || code != http.StatusOK {
		t.Fatalf("stats: code %d err %v", code, err)
	}
	if stats.Governor.ActiveQueries != 0 {
		t.Errorf("ActiveQueries = %d after soak, want 0", stats.Governor.ActiveQueries)
	}
	if stats.Governor.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after soak, want 0", stats.Governor.MemoryInUse)
	}
	if stats.Errors != 0 {
		t.Errorf("server errors = %d after soak, want 0", stats.Errors)
	}
	var total uint64
	for _, n := range stats.Served {
		total += n
	}
	if total != clients*rounds {
		t.Errorf("served = %d requests, want %d", total, clients*rounds)
	}
	if stats.Cache == nil || stats.Cache.Hits == 0 {
		t.Errorf("soak produced no cache hits: %+v", stats.Cache)
	}

	ts.Close()
	settleGoroutines(t, before, 3)
}

// postStats GETs url and decodes the JSON body into out.
func postStats(client *http.Client, url string, out any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
		return resp.StatusCode, derr
	}
	return resp.StatusCode, err
}
