package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"light"
)

// Config configures a Server. The zero value serves with a
// GOMAXPROCS-slot governor, no memory budget, no default deadline, and
// a 1024-entry result cache.
type Config struct {
	// Slots is the governor's worker-slot budget shared by all
	// concurrent queries (0 = GOMAXPROCS).
	Slots int
	// MemoryBudget caps candidate-arena bytes across all queries
	// (0 = unlimited).
	MemoryBudget int64
	// AdmissionTimeout bounds every query's wait for its guaranteed
	// worker slot; past it the query fails with 429 (0 = wait until the
	// request context is done).
	AdmissionTimeout time.Duration
	// DefaultDeadline is applied to queries that set no timeout_ms
	// (0 = none); MaxDeadline clamps every per-query deadline
	// (0 = unclamped).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// CacheEntries bounds the result cache (0 = 1024; negative
	// disables caching).
	CacheEntries int
	// EnumerateRowLimit caps /enumerate streams that set no limit
	// (0 = 1000); MaxEnumerateRows clamps every stream (0 = 100000).
	EnumerateRowLimit int
	MaxEnumerateRows  int
	// Watchdog configures the governor's stall watchdog; zero values
	// keep the admission package defaults.
	StallInterval time.Duration
	StallPatience int
}

// Server is the lightd HTTP service: a graph registry, a result cache,
// and one process-wide governor, exposed through a stdlib ServeMux.
// Create with New; the handler from Handler is safe for concurrent use.
type Server struct {
	cfg   Config
	gov   *light.Governor
	reg   *Registry
	cache *Cache // nil when caching is disabled
	mux   *http.ServeMux
	start time.Time

	served  [endpointCount]atomic.Uint64
	errors  atomic.Uint64
	reports reportRing
}

// endpoint indexes the served-query counters.
type endpoint int

const (
	epQuery endpoint = iota
	epEnumerate
	epBatch
	endpointCount
)

var endpointNames = [endpointCount]string{"query", "enumerate", "batch"}

// New builds a Server from cfg, creating its governor, registry, and
// cache.
func New(cfg Config) *Server {
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.EnumerateRowLimit == 0 {
		cfg.EnumerateRowLimit = 1000
	}
	if cfg.MaxEnumerateRows == 0 {
		cfg.MaxEnumerateRows = 100000
	}
	s := &Server{
		cfg: cfg,
		gov: light.NewGovernor(light.GovernorConfig{
			Slots:         cfg.Slots,
			MemoryBudget:  cfg.MemoryBudget,
			StallInterval: cfg.StallInterval,
			StallPatience: cfg.StallPatience,
		}),
		reg:   NewRegistry(),
		start: time.Now(),
	}
	if cfg.CacheEntries > 0 {
		s.cache = NewCache(cfg.CacheEntries)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	s.mux.HandleFunc("DELETE /graphs/{name}", s.handleUnloadGraph)
	s.mux.HandleFunc("POST /graphs/{name}/edges", s.handleApplyEdges)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /enumerate", s.handleEnumerate)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's graph registry, for in-process
// registration (tests, smoke checks, preloading).
func (s *Server) Registry() *Registry { return s.reg }

// Governor returns the server's shared governor.
func (s *Server) Governor() *light.Governor { return s.gov }

// reportRing keeps the last few RunReports for /stats.
type reportRing struct {
	mu      sync.Mutex
	entries []ReportEntry
	next    int
}

// reportRingSize bounds how many recent reports /stats returns.
const reportRingSize = 16

// ReportEntry labels one retained RunReport with its query context.
type ReportEntry struct {
	// Endpoint is "query", "enumerate", or "batch"; Graph and Pattern
	// identify what ran; When is the completion time.
	Endpoint string    `json:"endpoint"`
	Graph    string    `json:"graph"`
	Pattern  string    `json:"pattern"`
	When     time.Time `json:"when"`
	// Report is the run's full metrics report.
	Report *light.RunReport `json:"report"`
}

func (r *reportRing) add(e ReportEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < reportRingSize {
		r.entries = append(r.entries, e)
		return
	}
	r.entries[r.next] = e
	r.next = (r.next + 1) % reportRingSize
}

// snapshot returns the retained entries, oldest first.
func (r *reportRing) snapshot() []ReportEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ReportEntry, 0, len(r.entries))
	out = append(out, r.entries[r.next:]...)
	out = append(out, r.entries[:r.next]...)
	return out
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	// Error is the human-readable failure; Status repeats the HTTP
	// status code for clients reading bodies off a stream.
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeJSON writes v as the response body with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response is already committed; nothing to do but count it.
		s.errors.Add(1)
	}
}

// writeError maps err to its HTTP status and writes the error body.
func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.errors.Add(1)
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Status: status})
}

// handleHealthz reports liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.start).Nanoseconds(),
	})
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	// UptimeNS is time since server start.
	UptimeNS int64 `json:"uptime_ns"`
	// Governor carries the shared governor's gauges.
	Governor GovernorStats `json:"governor"`
	// Cache carries the result cache's gauges (absent when disabled).
	Cache *CacheStats `json:"cache,omitempty"`
	// Graphs lists the registered snapshots.
	Graphs []GraphInfo `json:"graphs"`
	// Served counts completed queries per endpoint; Errors counts
	// non-2xx responses.
	Served map[string]uint64 `json:"served"`
	Errors uint64            `json:"errors"`
	// LastReports holds the most recent RunReports, oldest first.
	LastReports []ReportEntry `json:"last_reports,omitempty"`
}

// GovernorStats is the /stats view of the shared governor.
type GovernorStats struct {
	// Slots is the total worker-slot budget; ActiveQueries the
	// currently admitted runs; MemoryInUse the bytes reserved against
	// the shared budget; AdmissionTimeouts the ErrOverloaded count.
	Slots             int    `json:"slots"`
	ActiveQueries     int    `json:"active_queries"`
	MemoryInUse       int64  `json:"memory_in_use_bytes"`
	AdmissionTimeouts uint64 `json:"admission_timeouts"`
}

// handleStats reports governor gauges, cache stats, registered graphs,
// and the last RunReports.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		UptimeNS: time.Since(s.start).Nanoseconds(),
		Governor: GovernorStats{
			Slots:             s.gov.Slots(),
			ActiveQueries:     s.gov.ActiveQueries(),
			MemoryInUse:       s.gov.MemoryInUse(),
			AdmissionTimeouts: s.gov.Timeouts(),
		},
		Graphs:      s.reg.List(),
		Served:      make(map[string]uint64, int(endpointCount)),
		Errors:      s.errors.Load(),
		LastReports: s.reports.snapshot(),
	}
	for ep := endpoint(0); ep < endpointCount; ep++ {
		resp.Served[endpointNames[ep]] = s.served[ep].Load()
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		resp.Cache = &cs
	}
	s.writeJSON(w, http.StatusOK, resp)
}
