package server

import (
	"compress/gzip"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"light"
)

// TestUnloadSharedSnapshotKeepsCache is the regression test for the
// over-invalidation bug: two names sharing one load-once snapshot must
// keep their cached results when only one of the names is unloaded.
// Before the fix, DELETE /graphs/b invalidated every cache entry keyed
// by the shared fingerprint, evicting results the surviving name "a"
// was still serving.
func TestUnloadSharedSnapshotKeepsCache(t *testing.T) {
	s := New(Config{})
	g := light.GenerateBarabasiAlbert(200, 4, 5)
	if _, err := s.Registry().Add("a", g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Add("b", g); err != nil {
		t.Fatal(err)
	}

	// Warm the cache through name "a".
	body := queryRequest{Graph: "a", Pattern: "triangle"}
	w := do(t, s, "POST", "/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("warming query status = %d: %s", w.Code, w.Body.String())
	}
	var warm QueryResponse
	decode(t, w, &warm)
	if warm.Cached {
		t.Fatal("warming query reported cached")
	}

	// Unload the alias: the snapshot is still referenced by "a".
	w = do(t, s, "DELETE", "/graphs/b", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("unload b status = %d: %s", w.Code, w.Body.String())
	}
	var unload struct {
		Invalidated int  `json:"invalidated"`
		Shared      bool `json:"shared"`
	}
	decode(t, w, &unload)
	if !unload.Shared {
		t.Fatal("unloading alias b did not report the snapshot as shared")
	}
	if unload.Invalidated != 0 {
		t.Fatalf("unloading alias b invalidated %d cache entries; want 0", unload.Invalidated)
	}

	// "a" must still be served from cache.
	w = do(t, s, "POST", "/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("post-unload query status = %d: %s", w.Code, w.Body.String())
	}
	var hit QueryResponse
	decode(t, w, &hit)
	if !hit.Cached {
		t.Fatal("query via surviving name missed the cache after alias unload")
	}
	if hit.Matches != warm.Matches {
		t.Fatalf("cached matches %d, want %d", hit.Matches, warm.Matches)
	}

	// Unloading the last reference does invalidate.
	w = do(t, s, "DELETE", "/graphs/a", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("unload a status = %d: %s", w.Code, w.Body.String())
	}
	decode(t, w, &unload)
	if unload.Shared {
		t.Fatal("last unload still reported shared")
	}
	if unload.Invalidated == 0 {
		t.Fatal("last unload invalidated no cache entries")
	}
}

// TestValidNameCharset pins the documented safe charset. The rejected
// rows include names the old everything-but-slashes-and-spaces rule
// accepted: URL metacharacters that corrupt DELETE /graphs/{name} and
// cache keys.
func TestValidNameCharset(t *testing.T) {
	accepted := []string{"g", "G1", "my-graph.v2_final", "0", "a.b-c_d"}
	rejected := []string{
		"", "a/b", "a b", "a\tb", "a\nb", // rejected before and after
		"a?b", "a#b", "a%b", "a&b", "a=b", "g(1)", "café", // previously accepted
	}
	for _, name := range accepted {
		if err := validName(name); err != nil {
			t.Errorf("validName(%q) = %v, want accepted", name, err)
		}
	}
	for _, name := range rejected {
		if err := validName(name); err == nil {
			t.Errorf("validName(%q) accepted, want rejected", name)
		}
	}
}

// TestLoadRoutesCSRAndGzip checks the loader routing: both g.csr and
// g.csr.gz must parse as binary CSR snapshots (the old suffix test sent
// .csr.gz through the edge-list parser).
func TestLoadRoutesCSRAndGzip(t *testing.T) {
	dir := t.TempDir()
	g := light.GenerateGrid(6, 6)
	plain := filepath.Join(dir, "g.csr")
	if err := g.SaveCSR(plain); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	zipped := filepath.Join(dir, "g.csr.gz")
	zf, err := os.Create(zipped)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(zf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := zf.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	plainInfo, err := r.Load("plain", plain)
	if err != nil {
		t.Fatalf("loading %s: %v", plain, err)
	}
	zipInfo, err := r.Load("zipped", zipped)
	if err != nil {
		t.Fatalf("loading %s: %v", zipped, err)
	}
	if plainInfo.Fingerprint != zipInfo.Fingerprint {
		t.Fatalf("fingerprint mismatch: %s (plain) vs %s (gzip)", plainInfo.Fingerprint, zipInfo.Fingerprint)
	}
	if zipInfo.Vertices != g.NumVertices() || zipInfo.Edges != g.NumEdges() {
		t.Fatalf("gzip load got %d vertices / %d edges, want %d / %d",
			zipInfo.Vertices, zipInfo.Edges, g.NumVertices(), g.NumEdges())
	}
}

// TestIdempotentReloadRefreshesPath pins the re-register contract:
// loading the same content under the same name keeps the original
// snapshot and LoadedAt but tracks the file's new location.
func TestIdempotentReloadRefreshesPath(t *testing.T) {
	dir := t.TempDir()
	g := light.GenerateGrid(5, 5)
	p1 := filepath.Join(dir, "first.csr")
	if err := g.SaveCSR(p1); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	info1, err := r.Load("g", p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, "moved.csr")
	if err := os.Rename(p1, p2); err != nil {
		t.Fatal(err)
	}
	info2, err := r.Load("g", p2)
	if err != nil {
		t.Fatalf("idempotent re-load: %v", err)
	}
	if info2.Fingerprint != info1.Fingerprint {
		t.Fatalf("re-load changed fingerprint: %s -> %s", info1.Fingerprint, info2.Fingerprint)
	}
	if info2.Path != p2 {
		t.Fatalf("re-load kept stale path %q, want %q", info2.Path, p2)
	}
	if !info2.LoadedAt.Equal(info1.LoadedAt) {
		t.Fatalf("re-load changed LoadedAt: %v -> %v", info1.LoadedAt, info2.LoadedAt)
	}
	// The refreshed path must be visible through Get and List too.
	if _, info, ok := r.Get("g"); !ok || info.Path != p2 {
		t.Fatalf("Get after re-load: path %q, want %q", info.Path, p2)
	}
}

// TestApplyEdgesEndpoint drives POST /graphs/{name}/edges: the count
// changes, the registry metadata (all aliases) moves to the new
// fingerprint, stale cache entries go away, and compaction clears the
// delta accounting without changing the view.
func TestApplyEdgesEndpoint(t *testing.T) {
	s, g, ref := testServer(t, Config{})
	if _, err := s.Registry().Add("alias", g); err != nil {
		t.Fatal(err)
	}
	body := queryRequest{Graph: "g", Pattern: "triangle"}
	w := do(t, s, "POST", "/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("warm query status = %d: %s", w.Code, w.Body.String())
	}
	_, infoBefore, _ := s.Registry().Get("g")

	// Close a wedge: adding an edge between two neighbors of a shared
	// vertex creates at least one new triangle.
	var u, v light.VertexID
	found := false
	for c := 0; c < g.NumVertices() && !found; c++ {
		nbrs := g.Neighbors(light.VertexID(c))
		for i := 0; i < len(nbrs) && !found; i++ {
			for j := i + 1; j < len(nbrs) && !found; j++ {
				if !g.HasEdge(nbrs[i], nbrs[j]) {
					u, v, found = nbrs[i], nbrs[j], true
				}
			}
		}
	}
	if !found {
		t.Fatal("fixture graph has no open wedge")
	}
	w = do(t, s, "POST", "/graphs/g/edges", map[string]any{
		"add": [][2]light.VertexID{{u, v}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("apply edges status = %d: %s", w.Code, w.Body.String())
	}
	var mut struct {
		Fingerprint string `json:"fingerprint"`
		Generation  uint64 `json:"generation"`
		DeltaEdges  int    `json:"delta_edges"`
		Aliases     int    `json:"aliases"`
	}
	decode(t, w, &mut)
	if mut.Fingerprint == infoBefore.Fingerprint {
		t.Fatal("mutation did not change the fingerprint")
	}
	if mut.Generation != 1 || mut.DeltaEdges != 1 || mut.Aliases != 2 {
		t.Fatalf("mutation response = %+v, want gen 1, 1 delta edge, 2 aliases", mut)
	}
	// Both names observe the new fingerprint.
	for _, name := range []string{"g", "alias"} {
		if _, info, _ := s.Registry().Get(name); info.Fingerprint != mut.Fingerprint {
			t.Fatalf("%s registry fingerprint %s, want %s", name, info.Fingerprint, mut.Fingerprint)
		}
	}

	// The post-mutation count runs fresh (new cache key) and is larger.
	w = do(t, s, "POST", "/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("post-mutation query status = %d: %s", w.Code, w.Body.String())
	}
	var after QueryResponse
	decode(t, w, &after)
	if after.Cached {
		t.Fatal("post-mutation query served the pre-mutation cached result")
	}
	if after.Matches <= ref {
		t.Fatalf("post-mutation matches %d, want > %d", after.Matches, ref)
	}
	if after.Report == nil || after.Report.DeltaEdges != 1 || after.Report.SnapshotGen != 1 {
		t.Fatalf("post-mutation report = %+v, want delta_edges 1 / snapshot_gen 1", after.Report)
	}

	// Compaction folds the overlay into a fresh CSR: the delta
	// accounting clears, the fingerprint moves to the compacted CSR's
	// (invalidating overlay-keyed cache entries), and the count is
	// unchanged.
	w = do(t, s, "POST", "/graphs/g/edges", map[string]any{"compact": true})
	if w.Code != http.StatusOK {
		t.Fatalf("compact status = %d: %s", w.Code, w.Body.String())
	}
	var comp struct {
		Fingerprint string `json:"fingerprint"`
		Generation  uint64 `json:"generation"`
		DeltaEdges  int    `json:"delta_edges"`
	}
	decode(t, w, &comp)
	if comp.Fingerprint == mut.Fingerprint {
		t.Fatal("compaction kept the overlay fingerprint")
	}
	if comp.DeltaEdges != 0 || comp.Generation != 2 {
		t.Fatalf("compaction response = %+v, want gen 2, 0 delta edges", comp)
	}
	w = do(t, s, "POST", "/query", body)
	var compacted QueryResponse
	decode(t, w, &compacted)
	if compacted.Matches != after.Matches {
		t.Fatalf("compaction changed count: %d -> %d", after.Matches, compacted.Matches)
	}
}
