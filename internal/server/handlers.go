package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"light"
)

// maxRequestBytes bounds request bodies; batch root lists are the
// largest legitimate payload.
const maxRequestBytes = 8 << 20

// QueryOptions is the options block shared by /query, /enumerate, and
// /batch requests. Zero values mean the library defaults (LIGHT,
// HybridBlock, one worker).
type QueryOptions struct {
	// Algorithm is SE, LM, MSC, or LIGHT.
	Algorithm string `json:"algorithm,omitempty"`
	// Kernel is Merge, MergeBlock, Galloping, Hybrid, HybridBlock,
	// MergeBitmap, or HybridBitmap.
	Kernel string `json:"kernel,omitempty"`
	// Workers is the worker-pool request; the governor may grant fewer
	// under load.
	Workers int `json:"workers,omitempty"`
	// TailCount enables the count-only leaf shortcut (rejected by
	// /enumerate and /batch).
	TailCount bool `json:"tail_count,omitempty"`
	// HubDegreeThreshold prepares the graph's hub index with this τ
	// (first-wins across concurrent queries; see light.Options).
	HubDegreeThreshold int `json:"hub_degree_threshold,omitempty"`
	// MemoryBudgetBytes caps this query's candidate-arena bytes,
	// nesting under the server-wide budget.
	MemoryBudgetBytes int64 `json:"memory_budget_bytes,omitempty"`
	// TimeoutMS is the per-query deadline in milliseconds; 0 applies
	// the server default. The server's MaxDeadline clamps it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this request (the fresh
	// result is still stored).
	NoCache bool `json:"no_cache,omitempty"`
}

// patternSpec is an inline pattern definition for callers querying
// shapes outside the named catalog.
type patternSpec struct {
	// Name labels the pattern (cosmetic; defaults to "custom").
	Name string `json:"name,omitempty"`
	// N is the vertex count; Edges the undirected edge list over 0..N-1.
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// queryRequest is the body of /query and /enumerate.
type queryRequest struct {
	// Graph names a registered graph; Pattern a catalog pattern
	// (P1..P7, triangle, clique4, ...). PatternGraph defines an inline
	// pattern instead of Pattern.
	Graph        string       `json:"graph"`
	Pattern      string       `json:"pattern,omitempty"`
	PatternGraph *patternSpec `json:"pattern_graph,omitempty"`
	// Limit caps /enumerate rows (ignored by /query); 0 applies the
	// server default.
	Limit   int          `json:"limit,omitempty"`
	Options QueryOptions `json:"options"`
}

// QueryResponse is the /query response body.
type QueryResponse struct {
	// Graph and Pattern echo the request; Matches is the exact count.
	Graph   string `json:"graph"`
	Pattern string `json:"pattern"`
	Matches uint64 `json:"matches"`
	// Order is the enumeration order the planner chose.
	Order []int `json:"order"`
	// DurationNS is this request's wall time (0 ns re-enumeration on a
	// cache hit); Cached reports whether the result came from the cache.
	DurationNS int64 `json:"duration_ns"`
	Cached     bool  `json:"cached"`
	// Report is the run's full metrics report (the original run's on a
	// cache hit).
	Report *light.RunReport `json:"report,omitempty"`
}

// decodeRequest parses the JSON body into v.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// resolvePattern returns the pattern a request names or defines inline.
func resolvePattern(req *queryRequest) (*light.Pattern, error) {
	switch {
	case req.Pattern != "" && req.PatternGraph != nil:
		return nil, errors.New("set pattern or pattern_graph, not both")
	case req.Pattern != "":
		return light.PatternByName(req.Pattern)
	case req.PatternGraph != nil:
		name := req.PatternGraph.Name
		if name == "" {
			name = "custom"
		}
		return light.NewPattern(name, req.PatternGraph.N, req.PatternGraph.Edges)
	default:
		return nil, errors.New("missing pattern")
	}
}

// parseAlgorithm maps the wire name to the library enum.
func parseAlgorithm(name string) (light.Algorithm, error) {
	switch name {
	case "", "LIGHT":
		return light.LIGHT, nil
	case "SE":
		return light.SE, nil
	case "LM":
		return light.LM, nil
	case "MSC":
		return light.MSC, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want SE, LM, MSC, or LIGHT)", name)
}

// parseKernel maps the wire name to the library enum.
func parseKernel(name string) (light.Intersection, error) {
	switch name {
	case "", "HybridBlock":
		return light.HybridBlock, nil
	case "Merge":
		return light.Merge, nil
	case "MergeBlock":
		return light.MergeBlock, nil
	case "Galloping":
		return light.Galloping, nil
	case "Hybrid":
		return light.Hybrid, nil
	case "MergeBitmap":
		return light.MergeBitmap, nil
	case "HybridBitmap":
		return light.HybridBitmap, nil
	}
	return 0, fmt.Errorf("unknown kernel %q", name)
}

// buildOptions translates wire options into light.Options under the
// server's governor, also returning the canonical option-key fragment
// for the result cache: exactly the fields that can change the response
// payload (workers and deadlines shift wall time and scheduling, never
// matches or the deterministic counters, so they stay out of the key).
func (s *Server) buildOptions(qo QueryOptions) (light.Options, string, error) {
	algo, err := parseAlgorithm(qo.Algorithm)
	if err != nil {
		return light.Options{}, "", err
	}
	kern, err := parseKernel(qo.Kernel)
	if err != nil {
		return light.Options{}, "", err
	}
	if qo.Workers < 0 || qo.HubDegreeThreshold < 0 || qo.MemoryBudgetBytes < 0 || qo.TimeoutMS < 0 {
		return light.Options{}, "", errors.New("options must be non-negative")
	}
	opts := light.Options{
		Algorithm:          algo,
		Intersection:       kern,
		Workers:            qo.Workers,
		TailCount:          qo.TailCount,
		HubDegreeThreshold: qo.HubDegreeThreshold,
		MemoryBudget:       qo.MemoryBudgetBytes,
		Governor:           s.gov,
		AdmissionTimeout:   s.cfg.AdmissionTimeout,
	}
	key := fmt.Sprintf("algo=%s;kern=%s;tail=%t;tau=%d;mem=%d",
		algo, kern, qo.TailCount, qo.HubDegreeThreshold, qo.MemoryBudgetBytes)
	return opts, key, nil
}

// queryContext applies the per-query deadline policy to the request
// context.
func (s *Server) queryContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if s.cfg.MaxDeadline > 0 && (d == 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// statusForRunError maps run failures to HTTP statuses: overload →
// 429, memory budget → 507 Insufficient Storage, deadline or stall →
// 504 Gateway Timeout; anything else is a 400-class option error the
// caller can fix, reported as 400.
func statusForRunError(err error) int {
	switch {
	case errors.Is(err, light.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, light.ErrMemoryBudget):
		return http.StatusInsufficientStorage
	case errors.Is(err, light.ErrTimeLimit),
		errors.Is(err, light.ErrStalled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

// handleLoadGraph loads a graph file into the registry.
func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req struct {
		// Name registers the graph; Path is the server-local file.
		Name string `json:"name"`
		Path string `json:"path"`
	}
	if err := decodeRequest(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Path == "" {
		s.writeError(w, http.StatusBadRequest, "missing path")
		return
	}
	info, err := s.reg.Load(req.Name, req.Path)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// handleListGraphs lists registered graphs.
func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

// handleUnloadGraph removes a graph name. Cache entries are invalidated
// only when the last name referencing the snapshot is unloaded:
// load-once deduplication lets several names share one snapshot, and
// their cache entries (keyed by the shared fingerprint) must survive an
// alias being dropped.
func (s *Server) handleUnloadGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	fp, lastRef, ok := s.reg.Unload(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "graph %q not loaded", name)
		return
	}
	invalidated := 0
	if s.cache != nil && lastRef {
		invalidated = s.cache.InvalidateGraph(fp)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"unloaded":    name,
		"invalidated": invalidated,
		"shared":      !lastRef,
	})
}

// handleApplyEdges applies an edge batch to a registered graph and
// publishes the new snapshot: earlier-started queries finish against
// the view they pinned, later requests see (and cache under) the new
// fingerprint. All registry names sharing the graph move together.
func (s *Server) handleApplyEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req struct {
		// Add and Remove are undirected edge batches in the graph's
		// result numbering; endpoints beyond the vertex count grow the
		// graph. Compact folds all pending deltas into a fresh CSR after
		// applying the batch.
		Add     [][2]light.VertexID `json:"add,omitempty"`
		Remove  [][2]light.VertexID `json:"remove,omitempty"`
		Compact bool                `json:"compact,omitempty"`
	}
	if err := decodeRequest(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Add) == 0 && len(req.Remove) == 0 && !req.Compact {
		s.writeError(w, http.StatusBadRequest, "empty edge batch (set add, remove, or compact)")
		return
	}
	g, _, ok := s.reg.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "graph %q not loaded", name)
		return
	}
	oldFP := g.Fingerprint()
	snap, err := g.ApplyEdges(req.Add, req.Remove)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "apply edges on %s: %v", name, err)
		return
	}
	if req.Compact {
		if snap, err = g.Compact(); err != nil {
			s.writeError(w, http.StatusInternalServerError, "compacting %s: %v", name, err)
			return
		}
	}
	infos := s.reg.RefreshInfo(g)
	// The pre-mutation snapshot is no longer reachable through any
	// registry name (aliases share the mutable graph), so its cache
	// entries are dead weight; reclaim them.
	invalidated := 0
	if s.cache != nil && snap.Fingerprint() != oldFP {
		invalidated = s.cache.InvalidateGraph(oldFP)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"graph":       name,
		"fingerprint": fmt.Sprintf("%016x", snap.Fingerprint()),
		"generation":  snap.Generation(),
		"delta_edges": snap.DeltaEdges(),
		"vertices":    snap.NumVertices(),
		"edges":       snap.NumEdges(),
		"invalidated": invalidated,
		"aliases":     len(infos),
	})
}

// prepared is the common front half of the query endpoints: everything
// resolved and validated, ready to run. The pinned snapshot makes the
// request atomic against concurrent edge batches: the run, the cache
// key, and the stored fingerprint all describe the same view.
type prepared struct {
	g        *light.Graph
	info     GraphInfo
	p        *light.Pattern
	opts     light.Options
	snap     *light.Snapshot
	cacheKey string // "" when uncacheable/disabled
}

// prepare resolves the request's graph, pattern, and options, pins the
// graph's current snapshot, and composes the cache key (snapshot
// fingerprint | canonical plan key | option set).
func (s *Server) prepare(req *queryRequest, endpointKey string) (prepared, int, error) {
	var pr prepared
	if req.Graph == "" {
		return pr, http.StatusBadRequest, errors.New("missing graph")
	}
	g, info, ok := s.reg.Get(req.Graph)
	if !ok {
		return pr, http.StatusNotFound, fmt.Errorf("graph %q not loaded", req.Graph)
	}
	p, err := resolvePattern(req)
	if err != nil {
		return pr, http.StatusBadRequest, err
	}
	opts, optKey, err := s.buildOptions(req.Options)
	if err != nil {
		return pr, http.StatusBadRequest, err
	}
	snap := g.Snapshot()
	opts.Snapshot = snap
	pr = prepared{g: g, info: info, p: p, opts: opts, snap: snap}
	if s.cache == nil {
		return pr, 0, nil
	}
	planKey, err := light.PlanKey(g, p, opts)
	if err != nil {
		return pr, http.StatusBadRequest, err
	}
	pr.cacheKey = fmt.Sprintf("%s|%016x|%s|%s", endpointKey, snap.Fingerprint(), planKey, optKey)
	return pr, 0, nil
}

// handleQuery runs a count query, serving repeats from the result
// cache.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeRequest(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pr, status, err := s.prepare(&req, "count")
	if err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	if pr.cacheKey != "" && !req.Options.NoCache {
		if v, ok := s.cache.Get(pr.cacheKey); ok {
			resp := v.(QueryResponse)
			resp.Cached = true
			resp.DurationNS = 0
			s.served[epQuery].Add(1)
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	ctx, cancel := s.queryContext(r, req.Options.TimeoutMS)
	defer cancel()
	start := time.Now()
	res, err := light.CountContext(ctx, pr.g, pr.p, pr.opts)
	if err != nil {
		s.writeError(w, statusForRunError(err), "count %s on %s: %v", pr.p.Name(), req.Graph, err)
		return
	}
	resp := QueryResponse{
		Graph:      req.Graph,
		Pattern:    pr.p.Name(),
		Matches:    res.Matches,
		Order:      res.Order,
		DurationNS: time.Since(start).Nanoseconds(),
		Report:     res.Report,
	}
	if pr.cacheKey != "" {
		s.cache.Put(pr.cacheKey, pr.snap.Fingerprint(), resp)
	}
	s.served[epQuery].Add(1)
	s.reports.add(ReportEntry{
		Endpoint: endpointNames[epQuery], Graph: req.Graph, Pattern: pr.p.Name(),
		When: time.Now().UTC(), Report: res.Report,
	})
	s.writeJSON(w, http.StatusOK, resp)
}

// enumerateRow is one NDJSON line of a match stream.
type enumerateRow struct {
	// Mapping is the data vertex matched to each pattern vertex.
	Mapping []light.VertexID `json:"mapping"`
}

// enumerateTrailer is the final NDJSON line of a match stream.
type enumerateTrailer struct {
	// Done marks the trailer; Rows is how many rows were streamed;
	// Truncated reports the row limit cut the stream short.
	Done      bool `json:"done"`
	Rows      int  `json:"rows"`
	Truncated bool `json:"truncated"`
	// Error carries a mid-stream failure (deadline, stall); empty on
	// success. The HTTP status is already committed when streaming
	// starts, so stream consumers must check this field.
	Error string `json:"error,omitempty"`
}

// handleEnumerate streams matches as NDJSON rows with a row limit.
func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeRequest(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Options.TailCount {
		s.writeError(w, http.StatusBadRequest, "tail_count does not apply to /enumerate")
		return
	}
	if req.Limit < 0 {
		s.writeError(w, http.StatusBadRequest, "limit must be non-negative")
		return
	}
	limit := req.Limit
	if limit == 0 {
		limit = s.cfg.EnumerateRowLimit
	}
	if limit > s.cfg.MaxEnumerateRows {
		limit = s.cfg.MaxEnumerateRows
	}
	pr, status, err := s.prepare(&req, "enumerate")
	if err != nil {
		s.writeError(w, status, "%v", err)
		return
	}

	ctx, cancel := s.queryContext(r, req.Options.TimeoutMS)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	rows, writeErr := 0, error(nil)
	truncated := false
	_, err = light.EnumerateContext(ctx, pr.g, pr.p, pr.opts, func(m []light.VertexID) bool {
		row := enumerateRow{Mapping: make([]light.VertexID, len(m))}
		copy(row.Mapping, m)
		if writeErr = enc.Encode(row); writeErr != nil {
			return false // client went away; stop enumerating
		}
		rows++
		if flusher != nil && rows%64 == 0 {
			flusher.Flush()
		}
		if rows >= limit {
			truncated = true
			return false
		}
		return true
	})
	trailer := enumerateTrailer{Done: true, Rows: rows, Truncated: truncated}
	if err != nil && !truncated && writeErr == nil {
		trailer.Error = err.Error()
	}
	if encErr := enc.Encode(trailer); encErr != nil {
		s.errors.Add(1)
	}
	if flusher != nil {
		flusher.Flush()
	}
	s.served[epEnumerate].Add(1)
	s.reports.add(ReportEntry{
		Endpoint: endpointNames[epEnumerate], Graph: req.Graph, Pattern: pr.p.Name(),
		When: time.Now().UTC(),
	})
}

// batchQueryRequest is one member of a /batch request.
type batchQueryRequest struct {
	// Pattern / PatternGraph select the pattern, as in /query.
	Pattern      string       `json:"pattern,omitempty"`
	PatternGraph *patternSpec `json:"pattern_graph,omitempty"`
	// Roots restricts matches to those rooted in this vertex set;
	// MinDegree to matches using only vertices of at least this degree.
	Roots     []light.VertexID `json:"roots,omitempty"`
	MinDegree int              `json:"min_degree,omitempty"`
}

// batchRequest is the /batch body: up to hundreds of queries evaluated
// in bit-parallel lanes against one graph.
type batchRequest struct {
	// Graph names a registered graph; Queries are the batch members.
	Graph   string              `json:"graph"`
	Queries []batchQueryRequest `json:"queries"`
	Options QueryOptions        `json:"options"`
}

// BatchQueryResponse is one query's slice of a /batch response.
type BatchQueryResponse struct {
	// Pattern echoes the query; Matches is its exact individual count
	// (equal to a solo run of the same query).
	Pattern string `json:"pattern"`
	Matches uint64 `json:"matches"`
	// Report is the query's attributed metrics report.
	Report *light.RunReport `json:"report,omitempty"`
}

// BatchResponse is the /batch response body.
type BatchResponse struct {
	// Graph echoes the request. Groups is how many shared traversals
	// the batch compiled into; Workers the largest pool any group used.
	Graph   string `json:"graph"`
	Groups  int    `json:"groups"`
	Workers int    `json:"workers"`
	// DurationNS is this request's wall time (0 on a cache hit);
	// Cached reports a cache hit.
	DurationNS int64 `json:"duration_ns"`
	Cached     bool  `json:"cached"`
	// Degradations lists governor degradation events for the batch.
	Degradations []string `json:"degradations,omitempty"`
	// Queries hold per-query results in request order.
	Queries []BatchQueryResponse `json:"queries"`
}

// handleBatch runs a lane-batched catalog of queries via CountBatch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeRequest(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Graph == "" {
		s.writeError(w, http.StatusBadRequest, "missing graph")
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if req.Options.TailCount {
		s.writeError(w, http.StatusBadRequest, "tail_count does not apply to /batch")
		return
	}
	g, _, ok := s.reg.Get(req.Graph)
	if !ok {
		s.writeError(w, http.StatusNotFound, "graph %q not loaded", req.Graph)
		return
	}
	opts, optKey, err := s.buildOptions(req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Pin the snapshot so every query in the batch, the cache key, and
	// the stored fingerprint describe one consistent view even while
	// edge batches land concurrently.
	snap := g.Snapshot()
	opts.Snapshot = snap

	queries := make([]light.BatchQuery, len(req.Queries))
	keyParts := make([]string, 0, len(req.Queries)+2)
	keyParts = append(keyParts, fmt.Sprintf("batch|%016x|%s", snap.Fingerprint(), optKey))
	for i := range req.Queries {
		bq := &req.Queries[i]
		qr := queryRequest{Pattern: bq.Pattern, PatternGraph: bq.PatternGraph}
		p, err := resolvePattern(&qr)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "batch query %d: %v", i, err)
			return
		}
		if bq.MinDegree < 0 {
			s.writeError(w, http.StatusBadRequest, "batch query %d: min_degree must be non-negative", i)
			return
		}
		queries[i] = light.BatchQuery{
			Pattern:   p,
			Roots:     bq.Roots,
			MinDegree: bq.MinDegree,
		}
		if s.cache != nil {
			planKey, err := light.PlanKey(g, p, opts)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "batch query %d: %v", i, err)
				return
			}
			keyParts = append(keyParts, fmt.Sprintf("%s;mind=%d;roots=%s",
				planKey, bq.MinDegree, rootsKey(bq.Roots)))
		}
	}
	cacheKey := ""
	if s.cache != nil {
		cacheKey = strings.Join(keyParts, "|")
	}
	if cacheKey != "" && !req.Options.NoCache {
		if v, ok := s.cache.Get(cacheKey); ok {
			resp := v.(BatchResponse)
			resp.Cached = true
			resp.DurationNS = 0
			s.served[epBatch].Add(1)
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	ctx, cancel := s.queryContext(r, req.Options.TimeoutMS)
	defer cancel()
	start := time.Now()
	bres, err := light.CountBatchContext(ctx, g, queries, opts)
	if err != nil {
		s.writeError(w, statusForRunError(err), "batch on %s: %v", req.Graph, err)
		return
	}
	resp := BatchResponse{
		Graph:        req.Graph,
		Groups:       bres.Groups,
		Workers:      bres.Workers,
		DurationNS:   time.Since(start).Nanoseconds(),
		Degradations: bres.Degradations,
		Queries:      make([]BatchQueryResponse, len(bres.Queries)),
	}
	for i, qres := range bres.Queries {
		resp.Queries[i] = BatchQueryResponse{
			Pattern: queries[i].Pattern.Name(),
			Matches: qres.Matches,
			Report:  qres.Report,
		}
	}
	if cacheKey != "" {
		s.cache.Put(cacheKey, snap.Fingerprint(), resp)
	}
	s.served[epBatch].Add(1)
	last := len(bres.Queries) - 1
	s.reports.add(ReportEntry{
		Endpoint: endpointNames[epBatch], Graph: req.Graph,
		Pattern: fmt.Sprintf("%d queries", len(queries)),
		When:    time.Now().UTC(), Report: bres.Queries[last].Report,
	})
	s.writeJSON(w, http.StatusOK, resp)
}

// rootsKey canonicalizes a root set for the cache key: sorted and
// deduplicated, so semantically equal sets share entries.
func rootsKey(roots []light.VertexID) string {
	if roots == nil {
		return "all"
	}
	sorted := make([]light.VertexID, len(roots))
	copy(sorted, roots)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sb strings.Builder
	for i, v := range sorted {
		if i > 0 && sorted[i-1] == v {
			continue
		}
		fmt.Fprintf(&sb, "%d,", v)
	}
	return sb.String()
}
