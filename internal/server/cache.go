package server

import (
	"container/list"
	"sync"
)

// Cache is the server's result cache: an LRU map from query identity —
// (graph fingerprint, canonical plan key, option set), pre-composed by
// the caller via cacheKey — to the finished response payload. A hit
// returns the identical result (same Matches, same deterministic
// counters) without re-enumeration, which is sound because every key
// component that could change the payload is part of the key and graphs
// are immutable snapshots; unloading a graph explicitly invalidates its
// entries. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, invalidations uint64
}

// cacheItem is one LRU node: the key (for map deletion on eviction),
// the graph fingerprint (for invalidation on unload), and the stored
// response value.
type cacheItem struct {
	key string
	fp  uint64
	val any
}

// CacheStats is the /stats view of the cache.
type CacheStats struct {
	// Capacity is the maximum entry count; Entries the current one.
	Capacity int `json:"capacity"`
	Entries  int `json:"entries"`
	// Hits and Misses count Get outcomes; Invalidations counts entries
	// dropped by graph unloads (evictions are not invalidations).
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// Put stores val under key, tagged with the graph fingerprint fp for
// invalidation, evicting the least recently used entry when full.
func (c *Cache) Put(key string, fp uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheItem{key: key, fp: fp, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheItem).key)
	}
}

// InvalidateGraph drops every entry tagged with fingerprint fp (called
// when a graph is unloaded) and returns how many were removed.
func (c *Cache) InvalidateGraph(fp uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var drop []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*cacheItem).fp == fp {
			drop = append(drop, el)
		}
	}
	for _, el := range drop {
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*cacheItem).key)
	}
	c.invalidations += uint64(len(drop))
	return len(drop)
}

// Stats returns a snapshot of the cache's gauges.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:      c.cap,
		Entries:       c.ll.Len(),
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
	}
}
