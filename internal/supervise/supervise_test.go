package supervise

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"light/internal/graph"
)

func TestCallPassesThroughResults(t *testing.T) {
	if err := Call("ok", func() error { return nil }); err != nil {
		t.Fatalf("nil-returning fn: %v", err)
	}
	sentinel := errors.New("boom")
	if err := Call("err", func() error { return sentinel }); err != sentinel {
		t.Fatalf("error identity lost: %v", err)
	}
}

func TestCallConvertsPanic(t *testing.T) {
	err := Call("the region", func() error { panic("blew up") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Where != "the region" || pe.Value != "blew up" {
		t.Fatalf("got %q / %v", pe.Where, pe.Value)
	}
	msg := pe.Error()
	if !strings.Contains(msg, "the region") || !strings.Contains(msg, "blew up") {
		t.Fatalf("Error() lost context: %q", msg)
	}
	if !strings.Contains(msg, "supervise_test.go") {
		t.Fatalf("Error() lost the stack: %q", msg)
	}
}

func TestGoRecoversAndReleasesWaitGroup(t *testing.T) {
	var wg sync.WaitGroup
	var got atomic.Value
	Go(&wg, "crasher", func(err error) { got.Store(err) }, func() { panic(42) })
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wg.Wait hung after a worker panic")
	}
	err, _ := got.Load().(error)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("onErr got %v", err)
	}
}

func TestGoCleanRunSkipsOnErr(t *testing.T) {
	var wg sync.WaitGroup
	var calls atomic.Int32
	var ran atomic.Bool
	Go(&wg, "fine", func(error) { calls.Add(1) }, func() { ran.Store(true) })
	wg.Wait()
	if !ran.Load() || calls.Load() != 0 {
		t.Fatalf("ran=%v onErr calls=%d", ran.Load(), calls.Load())
	}
}

func TestSafeVisitNil(t *testing.T) {
	wrapped, errf := SafeVisit("x", nil)
	if wrapped != nil {
		t.Fatal("nil visit must stay nil (engine count-only path)")
	}
	if err := errf(); err != nil {
		t.Fatalf("err func on nil visit: %v", err)
	}
}

func TestSafeVisitPanicStopsAndReports(t *testing.T) {
	calls := 0
	wrapped, errf := SafeVisit("visit", func(m []graph.VertexID) bool {
		calls++
		if calls == 2 {
			panic("second match")
		}
		return true
	})
	if !wrapped(nil) {
		t.Fatal("first call should pass through true")
	}
	if wrapped(nil) {
		t.Fatal("panicking call must return false to stop the engine")
	}
	var pe *PanicError
	if err := errf(); !errors.As(err, &pe) || pe.Value != "second match" {
		t.Fatalf("err func returned %v", err)
	}
}

func TestSafeVisitKeepsFirstPanic(t *testing.T) {
	n := 0
	wrapped, errf := SafeVisit("visit", func(m []graph.VertexID) bool {
		n++
		panic(n)
	})
	wrapped(nil)
	wrapped(nil)
	var pe *PanicError
	if err := errf(); !errors.As(err, &pe) || pe.Value != 1 {
		t.Fatalf("want first panic retained, got %v", err)
	}
}

func TestSafeVisitPassesThroughFalse(t *testing.T) {
	wrapped, errf := SafeVisit("visit", func(m []graph.VertexID) bool { return false })
	if wrapped(nil) {
		t.Fatal("visitor's false must pass through")
	}
	if err := errf(); err != nil {
		t.Fatalf("no panic, but err = %v", err)
	}
}

func TestWatchContextFiresOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fired := make(chan struct{})
	release := WatchContext(ctx, func() { close(fired) })
	cancel()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("onStop never fired after cancel")
	}
	release()
}

func TestWatchContextReleaseSuppressesOnStop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	release := WatchContext(ctx, func() { fired.Store(true) })
	release() // run finished first; watcher must detach
	cancel()
	time.Sleep(10 * time.Millisecond)
	if fired.Load() {
		t.Fatal("onStop fired after release returned")
	}
}

func TestWatchContextBackgroundIsNoop(t *testing.T) {
	release := WatchContext(context.Background(), func() { t.Fatal("onStop on background ctx") })
	release()
	release = WatchContext(nil, func() { t.Fatal("onStop on nil ctx") })
	release()
}
