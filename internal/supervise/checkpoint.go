package supervise

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"

	"light/internal/engine"
	"light/internal/faultpoint"
	"light/internal/graph"
	"light/internal/plan"
)

// Checkpoint file format (little-endian, version 3):
//
//	u32 magic "LCKP", u32 version
//	u64 fingerprint   (plan+graph binding, see Fingerprint)
//	u64 cursor        (root cursor at capture, informational)
//	u8  complete
//	u64 matches, u64 nodes, u64 intersections, u64 galloping
//	u64 elements, u64 comps       (version ≥ 2 only)
//	u64 bitmapProbes              (version ≥ 3 only)
//	u32 nLanes, then nLanes × lane    (version ≥ 3 only)
//	u32 nDone,   then nDone × (u32 lo, u32 hi)
//	u32 nFrames, then nFrames × frame
//	u32 CRC32 (IEEE) of everything above
//
// lane := u64 matches, u64 nodes, u64 comps,
//
//	u64 intersections, u64 galloping, u64 elements, u64 bitmapProbes
//
// frame := u32 sigmaIdx, u32 matMask,
//
//	u32 nAssigned × u32,
//	u32 nCands × (u8 present [, u32 len × u32]),
//	u32 nRemaining × u32,
//	u64 laneMask                  (version ≥ 3 only)
//
// Version 3 added the bit-parallel lane state: each frame carries the
// mask of lanes live at its suspension point, and the committed base
// carries the per-lane attributed counters, so a resumed lane batch
// still reports exact per-query totals. Versions 1 and 2 remain
// readable; the missing fields load as zero (frames from those files
// necessarily predate lane batching, so a zero mask is correct and the
// lane engine rejects them explicitly on resume).
const (
	ckptMagic   = 0x4c434b50 // "LCKP"
	ckptVersion = 3
)

// RootRange is a half-open range [Lo, Hi) of root vertex ids whose
// enumeration is committed: every match rooted in the range is already
// reflected in the checkpoint's Base result.
type RootRange struct {
	Lo, Hi uint32
}

// Checkpoint is the resumable state of an interrupted parallel run:
// the results committed so far, which root ranges produced them, and
// the donated frames whose subtrees are not covered by any pending
// root. Resuming re-enumerates exactly the complement, so the combined
// match count equals an uninterrupted run's.
type Checkpoint struct {
	// Fingerprint binds the checkpoint to one (graph, plan) pair;
	// resuming under a different pattern, order, or graph is rejected.
	Fingerprint uint64
	// Cursor is the root cursor when the checkpoint was captured
	// (informational; Done is authoritative for what remains).
	Cursor int64
	// Complete marks a checkpoint written after a finished run;
	// resuming it returns Base with no further work.
	Complete bool
	// Base is the result committed from Done ranges and finished
	// frames.
	Base engine.Result
	// Done lists the committed root ranges.
	Done []RootRange
	// Frames are outstanding donated frames to re-execute on resume.
	Frames []*engine.Frame
}

// Fingerprint hashes the identity of a (graph, plan) pair — graph
// shape, pattern adjacency, enumeration order π, execution order σ,
// and COMP operands — so a checkpoint can refuse to resume against a
// different run. Engine options that do not change the match set
// (kernel, TailCount) are deliberately excluded.
func Fingerprint(g *graph.Graph, pl *plan.Plan) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(x uint64) {
		binary.LittleEndian.PutUint64(b[:], x)
		h.Write(b[:]) //lightvet:ignore hygiene -- fnv.Write cannot fail
	}
	w(uint64(g.NumVertices()))
	w(uint64(g.NumEdges()))
	w(uint64(g.MaxDegree()))
	n := pl.Pattern.NumVertices()
	w(uint64(n))
	for u := 0; u < n; u++ {
		w(uint64(pl.Pattern.NeighborMask(u)))
	}
	for _, u := range pl.Pi {
		w(uint64(u))
	}
	for _, op := range pl.Sigma {
		w(uint64(op.Mode)<<32 | uint64(uint32(op.Vertex)))
	}
	for _, ops := range pl.Ops {
		w(uint64(len(ops.K1))<<32 | uint64(len(ops.K2)))
		for _, u := range ops.K1 {
			w(uint64(u))
		}
		for _, u := range ops.K2 {
			w(uint64(u))
		}
	}
	return h.Sum64()
}

// encoder accumulates the little-endian checkpoint payload.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(x uint8)   { e.buf = append(e.buf, x) }
func (e *encoder) u32(x uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, x) }
func (e *encoder) u64(x uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, x) }

func (e *encoder) vertices(vs []graph.VertexID) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u32(v)
	}
}

func (c *Checkpoint) encode() []byte {
	e := &encoder{buf: make([]byte, 0, 1024)}
	e.u32(ckptMagic)
	e.u32(ckptVersion)
	e.u64(c.Fingerprint)
	e.u64(uint64(c.Cursor))
	if c.Complete {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u64(c.Base.Matches)
	e.u64(c.Base.Nodes)
	e.u64(c.Base.Stats.Intersections)
	e.u64(c.Base.Stats.Galloping)
	e.u64(c.Base.Stats.Elements)
	e.u64(c.Base.Comps)
	e.u64(c.Base.Stats.BitmapProbes)
	e.u32(uint32(len(c.Base.Lanes)))
	for _, lc := range c.Base.Lanes {
		e.u64(lc.Matches)
		e.u64(lc.Nodes)
		e.u64(lc.Comps)
		e.u64(lc.Stats.Intersections)
		e.u64(lc.Stats.Galloping)
		e.u64(lc.Stats.Elements)
		e.u64(lc.Stats.BitmapProbes)
	}
	e.u32(uint32(len(c.Done)))
	for _, r := range c.Done {
		e.u32(r.Lo)
		e.u32(r.Hi)
	}
	e.u32(uint32(len(c.Frames)))
	for _, f := range c.Frames {
		e.u32(uint32(f.SigmaIdx))
		e.u32(f.MatMask)
		e.vertices(f.Assigned)
		e.u32(uint32(len(f.Cands)))
		for _, cand := range f.Cands {
			if cand == nil {
				e.u8(0)
				continue
			}
			e.u8(1)
			e.vertices(cand)
		}
		e.vertices(f.Remaining)
		e.u64(f.LaneMask)
	}
	e.u32(crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// Save writes the checkpoint to path atomically: the encoded,
// CRC-trailed payload goes to a temp file in the same directory, is
// synced, and is renamed over path, so a crash mid-write can never
// leave a truncated checkpoint that looks valid.
func (c *Checkpoint) Save(path string) error {
	if err := faultpoint.Hit(faultpoint.PointCheckpointWrite); err != nil {
		return fmt.Errorf("supervise: checkpoint write: %w", err)
	}
	for _, f := range c.Frames {
		if f.LaneMask != 0 {
			if err := faultpoint.Hit(faultpoint.PointCheckpointMask); err != nil {
				return fmt.Errorf("supervise: checkpoint write (lane mask): %w", err)
			}
			break
		}
	}
	data := c.encode()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("supervise: checkpoint write: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()        //lightvet:ignore hygiene -- already failing; best-effort cleanup
		os.Remove(tmpName) //lightvet:ignore hygiene -- already failing; best-effort cleanup
		return fmt.Errorf("supervise: checkpoint write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //lightvet:ignore hygiene -- already failing; best-effort cleanup
		return fmt.Errorf("supervise: checkpoint write: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //lightvet:ignore hygiene -- already failing; best-effort cleanup
		return fmt.Errorf("supervise: checkpoint write: %w", err)
	}
	return nil
}

// decoder walks the checkpoint payload with bounds checks; every read
// validates against the remaining bytes, so a corrupt length field can
// neither over-read nor trigger an oversized allocation.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("supervise: corrupt checkpoint: truncated %s", what)
	}
}

func (d *decoder) u8(what string) uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail(what)
		return 0
	}
	x := d.buf[d.off]
	d.off++
	return x
}

func (d *decoder) u32(what string) uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail(what)
		return 0
	}
	x := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return x
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail(what)
		return 0
	}
	x := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return x
}

// count reads a u32 length and rejects values that cannot fit in the
// remaining payload at width bytes per element.
func (d *decoder) count(what string, width int) int {
	n := d.u32(what)
	if d.err == nil && int64(n)*int64(width) > int64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("supervise: corrupt checkpoint: %s length %d exceeds payload", what, n)
	}
	if d.err != nil {
		return 0
	}
	return int(n)
}

func (d *decoder) vertices(what string) []graph.VertexID {
	n := d.count(what, 4)
	if d.err != nil {
		return nil
	}
	vs := make([]graph.VertexID, n)
	for i := range vs {
		vs[i] = d.u32(what)
	}
	return vs
}

// LoadCheckpoint reads and verifies a checkpoint written by Save:
// magic, version, CRC32 trailer, and internal length consistency. The
// caller must still bind it to a run via Fingerprint and validate each
// frame against the plan before resuming.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 12 {
		return nil, fmt.Errorf("supervise: corrupt checkpoint %s: %d bytes", path, len(data))
	}
	payload, trailer := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != trailer {
		return nil, fmt.Errorf("supervise: corrupt checkpoint %s: CRC %#x, want %#x", path, got, trailer)
	}
	d := &decoder{buf: payload}
	if magic := d.u32("magic"); d.err == nil && magic != ckptMagic {
		return nil, fmt.Errorf("supervise: %s is not a checkpoint (magic %#x)", path, magic)
	}
	version := d.u32("version")
	if d.err == nil && (version < 1 || version > ckptVersion) {
		return nil, fmt.Errorf("supervise: checkpoint %s: unsupported version %d", path, version)
	}
	c := &Checkpoint{}
	c.Fingerprint = d.u64("fingerprint")
	c.Cursor = int64(d.u64("cursor"))
	c.Complete = d.u8("complete") != 0
	c.Base.Matches = d.u64("matches")
	c.Base.Nodes = d.u64("nodes")
	c.Base.Stats.Intersections = d.u64("intersections")
	c.Base.Stats.Galloping = d.u64("galloping")
	if version >= 2 {
		c.Base.Stats.Elements = d.u64("elements")
		c.Base.Comps = d.u64("comps")
	}
	if version >= 3 {
		c.Base.Stats.BitmapProbes = d.u64("bitmap probes")
		nLanes := d.count("lanes", 56)
		if nLanes > 64 {
			return nil, fmt.Errorf("supervise: corrupt checkpoint %s: %d lanes (max 64)", path, nLanes)
		}
		for i := 0; i < nLanes && d.err == nil; i++ {
			var lc engine.LaneCounts
			lc.Matches = d.u64("lane matches")
			lc.Nodes = d.u64("lane nodes")
			lc.Comps = d.u64("lane comps")
			lc.Stats.Intersections = d.u64("lane intersections")
			lc.Stats.Galloping = d.u64("lane galloping")
			lc.Stats.Elements = d.u64("lane elements")
			lc.Stats.BitmapProbes = d.u64("lane bitmap probes")
			c.Base.Lanes = append(c.Base.Lanes, lc)
		}
	}
	nDone := d.count("done ranges", 8)
	for i := 0; i < nDone && d.err == nil; i++ {
		r := RootRange{Lo: d.u32("range lo"), Hi: d.u32("range hi")}
		if d.err == nil && r.Hi < r.Lo {
			return nil, fmt.Errorf("supervise: corrupt checkpoint %s: inverted range [%d,%d)", path, r.Lo, r.Hi)
		}
		c.Done = append(c.Done, r)
	}
	nFrames := d.count("frames", 8)
	for i := 0; i < nFrames && d.err == nil; i++ {
		f := &engine.Frame{}
		f.SigmaIdx = int(d.u32("frame sigma"))
		f.MatMask = d.u32("frame mask")
		f.Assigned = d.vertices("frame assigned")
		nCands := d.count("frame cands", 1)
		f.Cands = make([][]graph.VertexID, 0, nCands)
		for j := 0; j < nCands && d.err == nil; j++ {
			if d.u8("cand flag") == 0 {
				f.Cands = append(f.Cands, nil)
				continue
			}
			f.Cands = append(f.Cands, d.vertices("cand set"))
		}
		f.Remaining = d.vertices("frame remaining")
		if version >= 3 {
			f.LaneMask = d.u64("frame lane mask")
		}
		c.Frames = append(c.Frames, f)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%s: %w", path, d.err)
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("supervise: corrupt checkpoint %s: %d trailing bytes", path, len(payload)-d.off)
	}
	return c, nil
}
