//go:build faultinject

package supervise

import (
	"errors"
	"path/filepath"
	"testing"

	"light/internal/faultpoint"
)

// TestChaosCheckpointMaskPoint: the lane-mask fault point fires only
// for checkpoints that actually carry lane masks — a failed lane-batch
// write must surface as an error, while plain checkpoints pass the
// armed point untouched.
func TestChaosCheckpointMaskPoint(t *testing.T) {
	defer faultpoint.Reset()
	errInjected := errors.New("injected")
	faultpoint.Set(faultpoint.PointCheckpointMask, func() error { return errInjected })
	dir := t.TempDir()

	laneCk := sampleCheckpoint() // carries a LaneMask frame
	if err := laneCk.Save(filepath.Join(dir, "lanes.ckpt")); !errors.Is(err, errInjected) {
		t.Fatalf("lane-mask save err = %v", err)
	}

	plain := sampleCheckpoint()
	for _, f := range plain.Frames {
		f.LaneMask = 0
	}
	plain.Base.Lanes = nil
	if err := plain.Save(filepath.Join(dir, "plain.ckpt")); err != nil {
		t.Fatalf("plain save under armed mask point: %v", err)
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "plain.ckpt")); err != nil {
		t.Fatal(err)
	}
}
