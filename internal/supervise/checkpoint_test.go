package supervise

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"light/internal/engine"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/pattern"
	"light/internal/plan"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Fingerprint: 0xdeadbeefcafe,
		Cursor:      17,
		Base: engine.Result{
			Matches: 123,
			Nodes:   456,
			Comps:   78,
			Stats:   intersect.Stats{Intersections: 40, Galloping: 9, Elements: 8000, BitmapProbes: 11},
			Lanes: []engine.LaneCounts{
				{Matches: 100, Nodes: 300, Comps: 50, Stats: intersect.Stats{Intersections: 30, Galloping: 7, Elements: 6000, BitmapProbes: 5}},
				{Matches: 23, Nodes: 156, Comps: 28, Stats: intersect.Stats{Intersections: 10, Galloping: 2, Elements: 2000, BitmapProbes: 6}},
			},
		},
		Done: []RootRange{{Lo: 0, Hi: 10}, {Lo: 14, Hi: 30}},
		Frames: []*engine.Frame{
			{
				SigmaIdx:  2,
				MatMask:   0b101,
				Assigned:  []graph.VertexID{7, 0, 9},
				Cands:     [][]graph.VertexID{{1, 2, 3}, nil, {4}},
				Remaining: []graph.VertexID{5, 6},
				LaneMask:  0b11,
			},
			{
				SigmaIdx: 1,
				MatMask:  0b1,
				Assigned: []graph.VertexID{3},
				Cands:    [][]graph.VertexID{nil},
			},
		},
	}
}

func framesEqual(a, b *engine.Frame) bool {
	if a.SigmaIdx != b.SigmaIdx || a.MatMask != b.MatMask || a.LaneMask != b.LaneMask {
		return false
	}
	eq := func(x, y []graph.VertexID) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eq(a.Assigned, b.Assigned) || !eq(a.Remaining, b.Remaining) {
		return false
	}
	if len(a.Cands) != len(b.Cands) {
		return false
	}
	for i := range a.Cands {
		if (a.Cands[i] == nil) != (b.Cands[i] == nil) || !eq(a.Cands[i], b.Cands[i]) {
			return false
		}
	}
	return true
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	ck := sampleCheckpoint()
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != ck.Fingerprint || got.Cursor != ck.Cursor || got.Complete != ck.Complete {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Base, ck.Base) {
		t.Fatalf("base mismatch: %+v vs %+v", got.Base, ck.Base)
	}
	if len(got.Done) != len(ck.Done) {
		t.Fatalf("done ranges: %v", got.Done)
	}
	for i, r := range ck.Done {
		if got.Done[i] != r {
			t.Fatalf("range %d: %v vs %v", i, got.Done[i], r)
		}
	}
	if len(got.Frames) != len(ck.Frames) {
		t.Fatalf("frames: %d vs %d", len(got.Frames), len(ck.Frames))
	}
	for i := range ck.Frames {
		if !framesEqual(got.Frames[i], ck.Frames[i]) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, got.Frames[i], ck.Frames[i])
		}
	}
}

func TestCheckpointCompleteFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "done.ckpt")
	ck := &Checkpoint{Complete: true, Base: engine.Result{Matches: 9}}
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Complete || got.Base.Matches != 9 {
		t.Fatalf("got %+v", got)
	}
}

// TestCheckpointRejectsCorruption flips every byte of a saved
// checkpoint in turn; the CRC trailer must reject each variant.
func TestCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := sampleCheckpoint().Save(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ckpt")
	for pos := range orig {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(bad); err == nil {
			t.Fatalf("flip at byte %d accepted", pos)
		}
	}
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := sampleCheckpoint().Save(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ckpt")
	for cut := 0; cut < len(orig); cut++ {
		if err := os.WriteFile(bad, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(bad); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestCheckpointRejectsTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := sampleCheckpoint().Save(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Splice extra payload in before the CRC and fix the trailer so only
	// the length consistency check can catch it.
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	grown := append(append([]byte(nil), orig...), 0, 0, 0, 0)
	if err := os.WriteFile(path, grown, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("grown checkpoint accepted")
	}
}

// TestCheckpointSaveIsAtomic: a failed save (unwritable directory) must
// leave an existing checkpoint untouched, and no temp files behind
// after a successful one.
func TestCheckpointSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := sampleCheckpoint().Save(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sampleCheckpoint().Save(filepath.Join(dir, "no", "such", "dir.ckpt")); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save disturbed the existing checkpoint")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover temp files: %v", entries)
	}
}

func TestLoadCheckpointRejectsWrongMagic(t *testing.T) {
	// A CSR graph file shares the CRC-trailer convention but not the
	// magic; it must be refused as a checkpoint.
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.csr")
	if err := gen.Star(20).SaveCSR(gpath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(gpath); err == nil {
		t.Fatal("CSR graph accepted as checkpoint")
	}
}

func TestFingerprintDistinguishesRuns(t *testing.T) {
	g1 := gen.BarabasiAlbert(100, 3, 1)
	g2 := gen.BarabasiAlbert(100, 3, 2)
	mk := func(p *pattern.Pattern) *plan.Plan {
		po := pattern.SymmetryBreaking(p)
		pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	tri, p4 := mk(pattern.Triangle()), mk(pattern.P4())
	base := Fingerprint(g1, tri)
	if base == 0 {
		t.Fatal("zero fingerprint")
	}
	if Fingerprint(g1, tri) != base {
		t.Fatal("fingerprint not deterministic")
	}
	if Fingerprint(g2, tri) == base {
		t.Fatal("different graph, same fingerprint")
	}
	if Fingerprint(g1, p4) == base {
		t.Fatal("different pattern, same fingerprint")
	}
}
