// Package supervise is the supervision layer of the enumeration
// runtime: it isolates panics (from user visit callbacks and from
// worker internals) into ordinary errors, ties runs to a
// context.Context, and persists resumable checkpoints of parallel
// runs. The parallel scheduler and the public light API build on it;
// nothing here is specific to one scheduler.
package supervise

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"light/internal/engine"
	"light/internal/graph"
)

// PanicError is a panic converted into an error: the recovered value,
// the goroutine stack at the point of recovery, and a label for the
// supervised region that panicked.
type PanicError struct {
	Where string // supervised region, e.g. "parallel worker 3"
	Value any    // the value passed to panic
	Stack []byte // debug.Stack() captured inside the deferred recover
}

// Error renders the panic with its stack so the crash site is never
// lost even though the process survived.
func (e *PanicError) Error() string {
	return fmt.Sprintf("supervise: panic in %s: %v\n%s", e.Where, e.Value, e.Stack)
}

// Call runs fn, converting a panic inside it into a *PanicError. A
// nil-returning, non-panicking fn yields nil.
func Call(where string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Where: where, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Go launches fn on a supervised goroutine registered with wg. A panic
// in fn is recovered, converted to a *PanicError and handed to onErr;
// wg.Done always runs, so wg.Wait never deadlocks on a crashed worker.
func Go(wg *sync.WaitGroup, where string, onErr func(error), fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := Call(where, func() error { fn(); return nil }); err != nil {
			onErr(err)
		}
	}()
}

// SafeVisit wraps a user visit callback so a panic inside it stops the
// enumeration cleanly instead of unwinding through the engine: the
// wrapped visitor returns false (the engine's early-stop path) and the
// recovered *PanicError is available from the returned err function
// after the run. A nil visit returns a nil wrapper.
func SafeVisit(where string, visit engine.VisitFunc) (wrapped engine.VisitFunc, err func() error) {
	if visit == nil {
		return nil, func() error { return nil }
	}
	var mu sync.Mutex
	var perr error
	wrapped = func(m []graph.VertexID) bool {
		ok := true
		if cerr := Call(where, func() error { ok = visit(m); return nil }); cerr != nil {
			mu.Lock()
			if perr == nil {
				perr = cerr
			}
			mu.Unlock()
			return false
		}
		return ok
	}
	return wrapped, func() error {
		mu.Lock()
		defer mu.Unlock()
		return perr
	}
}

// WatchContext invokes onStop once when ctx is cancelled or its
// deadline passes. The returned release function detaches the watcher
// and must be called when the run finishes; it blocks until the
// watcher goroutine has exited, so onStop never fires after release
// returns. Contexts that can never be cancelled install no watcher.
func WatchContext(ctx context.Context, onStop func()) (release func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	finished := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
			onStop()
		case <-finished:
		}
	}()
	return func() {
		close(finished)
		wg.Wait()
	}
}
