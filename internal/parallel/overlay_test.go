package parallel

import (
	"path/filepath"
	"strings"
	"testing"

	"light/internal/delta"
	"light/internal/engine"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
	"light/internal/supervise"
)

func overlayFixture(t *testing.T) (*graph.Graph, *delta.Overlay, *plan.Plan) {
	t.Helper()
	g := gen.BarabasiAlbert(80, 3, 5)
	ov, err := delta.Apply(g, nil, []delta.Edge{{U: 0, V: 1}, {U: 2, V: 85}}, []delta.Edge{{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ov == nil {
		t.Fatal("fixture batch was a no-op")
	}
	p, err := pattern.New("triangle", 3, [][2]pattern.Vertex{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	return g, ov, pl
}

// TestParallelOverlayMatchesSequential checks that the work-stealing
// pool over an overlay view (including roots at overlay-grown vertices)
// equals the sequential engine on the same view.
func TestParallelOverlayMatchesSequential(t *testing.T) {
	g, ov, pl := overlayFixture(t)
	want, err := engine.New(g, pl, engine.Options{Overlay: ov}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Scheduler{WorkStealing, RootChunk, StaticPartition} {
		got, err := Run(g, pl, Options{
			Engine:    engine.Options{Overlay: ov},
			Workers:   4,
			Scheduler: sched,
			ChunkSize: 7,
			MinSplit:  2,
		}, nil)
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if got.Matches != want.Matches {
			t.Errorf("%v: parallel overlay %d matches, sequential %d", sched, got.Matches, want.Matches)
		}
	}
}

// TestParallelOverlayRejectsCheckpointAndResume pins the guard: a view
// with pending deltas can neither checkpoint nor resume — the
// fingerprint binds only the base graph, so the file would validate
// against the wrong adjacency.
func TestParallelOverlayRejectsCheckpointAndResume(t *testing.T) {
	g, ov, pl := overlayFixture(t)
	_, err := Run(g, pl, Options{
		Engine:     engine.Options{Overlay: ov},
		Workers:    2,
		Checkpoint: &CheckpointOptions{Path: filepath.Join(t.TempDir(), "ck")},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "compact") {
		t.Fatalf("checkpoint with overlay: err = %v, want compact-first rejection", err)
	}
	_, err = Run(g, pl, Options{
		Engine: engine.Options{Overlay: ov},
		Resume: &supervise.Checkpoint{},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "compact") {
		t.Fatalf("resume with overlay: err = %v, want compact-first rejection", err)
	}
}
