package parallel

import (
	"testing"

	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

// TestWorkStealingStressDeterministic hammers the donate/steal path.
// Single-root chunks over a complete graph front-load the heavy roots
// (symmetry breaking makes low ids carry most of the subtree), so
// workers drain the cheap tail and go hungry while early roots are
// still running — forcing the donation hook. Every iteration has to
// reproduce the sequential count exactly (run this under -race: the
// donation hook, the frame queue and the termination latch all
// interleave differently each pass), and the aggregate run must show
// real donations and steals — if the hook never fires, the scheduler
// silently degrades to RootChunk and this test is the tripwire.
func TestWorkStealingStressDeterministic(t *testing.T) {
	iters, n := 25, 80
	if testing.Short() {
		iters, n = 5, 60
	}
	g := gen.Complete(n)
	pl := compile(t, pattern.Clique(4), plan.ModeLIGHT)
	want := sequentialCount(t, g, pl)
	rootsPerRun := uint64(g.NumVertices())

	var donations, steals, chunks uint64
	for i := 0; i < iters; i++ {
		res, err := Run(g, pl, Options{Workers: 8, ChunkSize: 1, MinSplit: 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want {
			t.Fatalf("iter %d: matches = %d, want %d (donations=%d steals=%d)",
				i, res.Matches, want, res.Donations, res.Steals)
		}
		if res.Steals > res.Donations {
			t.Fatalf("iter %d: steals %d exceed donations %d", i, res.Steals, res.Donations)
		}
		donations += res.Donations
		steals += res.Steals
		chunks += res.RootChunksDispensed
	}
	if chunks != uint64(iters)*rootsPerRun {
		t.Fatalf("chunks dispensed = %d, want %d: roots skipped or double-claimed", chunks, uint64(iters)*rootsPerRun)
	}
	if donations == 0 || steals == 0 {
		t.Fatalf("stress never exercised the donation path: donations=%d steals=%d", donations, steals)
	}
	t.Logf("stress: %d iterations, %d donations, %d steals", iters, donations, steals)
}

// TestWorkStealingStressVisitor repeats the stress shape in enumeration
// mode, where the serialized visitor adds another lock to the interleave
// and every match must be delivered exactly once across donated frames.
func TestWorkStealingStressVisitor(t *testing.T) {
	iters, n := 10, 30
	if testing.Short() {
		iters, n = 3, 18
	}
	g := gen.Complete(n)
	pl := compile(t, pattern.Clique(4), plan.ModeLIGHT)
	want := sequentialCount(t, g, pl)
	for i := 0; i < iters; i++ {
		seen := map[[4]graph.VertexID]int{}
		res, err := Run(g, pl, Options{Workers: 8, ChunkSize: 1, MinSplit: 2}, func(m []graph.VertexID) bool {
			seen[[4]graph.VertexID{m[0], m[1], m[2], m[3]}]++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want || uint64(len(seen)) != want {
			t.Fatalf("iter %d: matches=%d distinct=%d, want %d", i, res.Matches, len(seen), want)
		}
		for key, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("iter %d: match %v delivered %d times", i, key, cnt)
			}
		}
	}
}
