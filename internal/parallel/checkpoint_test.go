package parallel

import (
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
	"light/internal/supervise"
)

// interruptResume interrupts a checkpointed run every stopAfter matches
// (via the visitor's early-stop path — equivalent to a kill between
// checkpoint writes) and resumes it from the file until it completes,
// asserting the final total matches an uninterrupted sequential run.
func interruptResume(t *testing.T, g *graph.Graph, pl *plan.Plan, sched Scheduler, stopAfter uint64) {
	t.Helper()
	want := sequentialCount(t, g, pl)
	path := filepath.Join(t.TempDir(), "state.ckpt")
	opts := Options{
		Workers:   4,
		Scheduler: sched,
		ChunkSize: 16,
		// Only the final on-stop snapshot is written; the interrupt point
		// is controlled entirely by the visitor.
		Checkpoint: &CheckpointOptions{Path: path, Interval: time.Hour},
	}
	var res Result
	var err error
	interruptions := 0
	for attempt := 0; ; attempt++ {
		if attempt > 200 {
			t.Fatal("no forward progress across 200 interrupted runs")
		}
		runOpts := opts
		if attempt > 0 {
			ck, lerr := supervise.LoadCheckpoint(path)
			if lerr != nil {
				t.Fatalf("attempt %d: %v", attempt, lerr)
			}
			runOpts.Resume = ck
		}
		// Commit granularity is one chunk: if a single chunk holds more
		// than stopAfter matches, a fixed budget would re-kill inside it
		// forever. Growing the budget models each retry living longer and
		// guarantees convergence.
		budget := stopAfter
		if attempt < 40 {
			budget <<= uint(attempt / 4)
		} else {
			budget = 1 << 40
		}
		var seen atomic.Uint64
		res, err = Run(g, pl, runOpts, func(m []graph.VertexID) bool {
			return seen.Add(1) < budget
		})
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if !res.Stopped {
			break
		}
		interruptions++
	}
	if res.Matches != want {
		t.Fatalf("resumed total %d, uninterrupted total %d (after %d interruptions)",
			res.Matches, want, interruptions)
	}
	if interruptions == 0 {
		t.Fatalf("run was never interrupted (stopAfter=%d too large for this workload)", stopAfter)
	}
	// One more resume from the Complete checkpoint must return the full
	// total immediately with no further enumeration.
	ck, lerr := supervise.LoadCheckpoint(path)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if !ck.Complete {
		t.Fatal("final checkpoint not marked Complete")
	}
	final := opts
	final.Resume = ck
	res2, err := Run(g, pl, final, func(m []graph.VertexID) bool {
		t.Error("resume of a Complete checkpoint re-enumerated matches")
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Matches != want {
		t.Fatalf("complete-checkpoint resume returned %d, want %d", res2.Matches, want)
	}
}

// TestKillAndResumeExactCounts is the integration guarantee: kill-and-
// resume cycles converge to exactly the uninterrupted total, across
// pattern/dataset pairs and both resumable schedulers.
func TestKillAndResumeExactCounts(t *testing.T) {
	cases := []struct {
		name      string
		g         *graph.Graph
		p         *pattern.Pattern
		stopAfter uint64
	}{
		{"triangle-ba", gen.BarabasiAlbert(500, 6, 11), pattern.Triangle(), 300},
		{"p4-rmat", gen.RMAT(9, 6, 5), pattern.P4(), 500},
		{"clique4-ba", gen.BarabasiAlbert(300, 8, 2), pattern.Clique(4), 200},
	}
	for _, sched := range []Scheduler{WorkStealing, RootChunk} {
		for _, tc := range cases {
			t.Run(sched.String()+"/"+tc.name, func(t *testing.T) {
				pl := compile(t, tc.p, plan.ModeLIGHT)
				interruptResume(t, tc.g, pl, sched, tc.stopAfter)
			})
		}
	}
}

// TestCheckpointFingerprintMismatch: a checkpoint from one (graph,
// pattern) pair must refuse to resume any other.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	g := gen.BarabasiAlbert(300, 5, 3)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	path := filepath.Join(t.TempDir(), "state.ckpt")
	var seen atomic.Uint64
	_, err := Run(g, pl, Options{
		Workers:    2,
		Checkpoint: &CheckpointOptions{Path: path, Interval: time.Hour},
	}, func(m []graph.VertexID) bool { return seen.Add(1) < 50 })
	if err != nil {
		t.Fatal(err)
	}
	ck, err := supervise.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	otherPl := compile(t, pattern.P4(), plan.ModeLIGHT)
	if _, err := Run(g, otherPl, Options{Workers: 2, Resume: ck}, nil); err == nil {
		t.Fatal("resume with a different pattern accepted")
	}
	otherG := gen.BarabasiAlbert(301, 5, 3)
	if _, err := Run(otherG, pl, Options{Workers: 2, Resume: ck}, nil); err == nil {
		t.Fatal("resume with a different graph accepted")
	}
}

// TestStaticPartitionRejectsCheckpointing: the no-rebalancing baseline
// has no chunk accounting, so both checkpointing and resuming must be
// refused up front.
func TestStaticPartitionRejectsCheckpointing(t *testing.T) {
	g := gen.Star(100)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	path := filepath.Join(t.TempDir(), "state.ckpt")
	_, err := Run(g, pl, Options{
		Workers:    2,
		Scheduler:  StaticPartition,
		Checkpoint: &CheckpointOptions{Path: path},
	}, nil)
	if err == nil {
		t.Fatal("StaticPartition accepted a checkpoint config")
	}
	if _, err := Run(g, pl, Options{Workers: 2, Scheduler: StaticPartition, Resume: &supervise.Checkpoint{}}, nil); err == nil {
		t.Fatal("StaticPartition accepted a resume")
	}
}

// TestCheckpointOfCompletedRun: an uninterrupted checkpointed run
// writes a Complete checkpoint whose base equals the full count.
func TestCheckpointOfCompletedRun(t *testing.T) {
	g := gen.BarabasiAlbert(300, 5, 9)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	want := sequentialCount(t, g, pl)
	path := filepath.Join(t.TempDir(), "state.ckpt")
	res, err := Run(g, pl, Options{
		Workers:    4,
		Checkpoint: &CheckpointOptions{Path: path, Interval: time.Hour},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Fatalf("checkpointed run counted %d, want %d", res.Matches, want)
	}
	ck, err := supervise.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Complete || ck.Base.Matches != want {
		t.Fatalf("final checkpoint: complete=%v matches=%d, want complete with %d", ck.Complete, ck.Base.Matches, want)
	}
}

func TestMergeRanges(t *testing.T) {
	rr := func(lo, hi uint32) supervise.RootRange { return supervise.RootRange{Lo: lo, Hi: hi} }
	got := mergeRanges([]supervise.RootRange{rr(10, 20), rr(0, 5), rr(18, 25), rr(5, 7), rr(30, 31)})
	want := []supervise.RootRange{rr(0, 7), rr(10, 25), rr(30, 31)}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if mergeRanges(nil) != nil {
		t.Fatal("empty input must merge to nil")
	}
}

func TestPendingRoots(t *testing.T) {
	rr := func(lo, hi uint32) supervise.RootRange { return supervise.RootRange{Lo: lo, Hi: hi} }
	got := pendingRoots(10, []supervise.RootRange{rr(2, 4), rr(7, 9)})
	want := []graph.VertexID{0, 1, 4, 5, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if got := pendingRoots(5, nil); len(got) != 5 {
		t.Fatalf("no checkpoint: want all 5 roots, got %v", got)
	}
	if got := pendingRoots(5, []supervise.RootRange{rr(0, 5)}); len(got) != 0 {
		t.Fatalf("fully covered: want none, got %v", got)
	}
}
