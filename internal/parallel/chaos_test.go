//go:build faultinject

package parallel

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"light/internal/faultpoint"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
	"light/internal/supervise"
)

// chaosRun executes a WorkStealing run with the current fault registry
// and a watchdog: a deadlocked pool fails the test rather than hanging
// the suite.
func chaosRun(t *testing.T, g *graph.Graph, pl *plan.Plan, opts Options, visit func(m []graph.VertexID) bool) (Result, error) {
	t.Helper()
	type outcome struct {
		res Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(g, pl, opts, visit)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(60 * time.Second):
		t.Fatal("pool deadlocked under injected fault")
		return Result{}, nil
	}
}

func chaosFixture(t *testing.T) (*graph.Graph, *plan.Plan, uint64) {
	t.Helper()
	g := gen.BarabasiAlbert(400, 6, 21)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	return g, pl, sequentialCount(t, g, pl)
}

// TestChaosPanicAtEachPoint injects a one-shot panic at every scheduler
// faultpoint in turn: each must surface as a *supervise.PanicError with
// all workers exited cleanly — never a crash or deadlock.
func TestChaosPanicAtEachPoint(t *testing.T) {
	g, pl, _ := chaosFixture(t)
	points := []string{
		faultpoint.PointWorkerStart,
		faultpoint.PointDonate,
		faultpoint.PointFrameResume,
		faultpoint.PointCheckpointWrite,
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			defer faultpoint.Reset()
			faultpoint.Set(point, faultpoint.PanicOnce("chaos: "+point))
			opts := Options{Workers: 4, ChunkSize: 8, MinSplit: 2}
			if point == faultpoint.PointCheckpointWrite {
				opts.Checkpoint = &CheckpointOptions{
					Path:     filepath.Join(t.TempDir(), "state.ckpt"),
					Interval: time.Hour,
				}
			}
			_, err := chaosRun(t, g, pl, opts, nil)
			var pe *supervise.PanicError
			if !errors.As(err, &pe) {
				// Donation and frame resume only fire when stealing actually
				// happens; on a small graph the run may finish without ever
				// reaching the point. That is a clean pass, not a miss.
				if err == nil && (point == faultpoint.PointDonate || point == faultpoint.PointFrameResume) {
					t.Skipf("point %s never reached in this run", point)
				}
				t.Fatalf("err = %v, want *supervise.PanicError", err)
			}
		})
	}
}

// TestChaosWorkerStartFailure: an injected error at worker start must
// abort the run with that error and no deadlock of the remaining
// workers.
func TestChaosWorkerStartFailure(t *testing.T) {
	defer faultpoint.Reset()
	g, pl, _ := chaosFixture(t)
	injected := errors.New("injected start failure")
	faultpoint.Set(faultpoint.PointWorkerStart, faultpoint.FailTimes(2, injected))
	_, err := chaosRun(t, g, pl, Options{Workers: 4, ChunkSize: 8}, nil)
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected start failure", err)
	}
}

// TestChaosFrameResumeFailure: an injected I/O-style error when a
// worker picks up a stolen frame stops the pool with that error.
func TestChaosFrameResumeFailure(t *testing.T) {
	defer faultpoint.Reset()
	// A dense graph with tiny chunks: workers exhaust the root cursor
	// quickly and go hungry while others still hold big loops, so
	// donation (and therefore frame resume) is all but guaranteed.
	g := gen.Complete(80)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	injected := errors.New("injected resume failure")
	faultpoint.Set(faultpoint.PointFrameResume, faultpoint.FailTimes(1, injected))
	res, err := chaosRun(t, g, pl, Options{Workers: 8, ChunkSize: 1, MinSplit: 2}, nil)
	if err == nil {
		// No donation happened, so the point never fired; the run must
		// then have completed correctly.
		if res.Steals != 0 {
			t.Fatalf("frames were stolen yet the injected error vanished")
		}
		t.Skip("no donation in this run")
	}
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected resume failure", err)
	}
}

// TestChaosDonationFailureIsSkipped: a failing donation point is
// optional work — the donor keeps its loop and the total stays exact.
func TestChaosDonationFailureIsSkipped(t *testing.T) {
	defer faultpoint.Reset()
	g, pl, want := chaosFixture(t)
	faultpoint.Set(faultpoint.PointDonate, faultpoint.FailTimes(1<<30, errors.New("donation vetoed")))
	res, err := chaosRun(t, g, pl, Options{Workers: 4, ChunkSize: 8, MinSplit: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Fatalf("count %d, want %d", res.Matches, want)
	}
	if res.Donations != 0 {
		t.Fatalf("vetoed donations still published %d frames", res.Donations)
	}
}

// TestChaosDelayAtDonation widens the donation race window under -race
// without changing semantics: the count must stay exact.
func TestChaosDelayAtDonation(t *testing.T) {
	defer faultpoint.Reset()
	g, pl, want := chaosFixture(t)
	faultpoint.Set(faultpoint.PointDonate, faultpoint.Delay(500*time.Microsecond))
	faultpoint.Set(faultpoint.PointFrameResume, faultpoint.Delay(200*time.Microsecond))
	res, err := chaosRun(t, g, pl, Options{Workers: 8, ChunkSize: 4, MinSplit: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Fatalf("count %d, want %d", res.Matches, want)
	}
}

// TestChaosCheckpointWriteFailure: when every checkpoint write fails,
// the run still finishes and surfaces the write error; when only the
// periodic writes fail, the final checkpoint supersedes them and the
// file stays usable.
func TestChaosCheckpointWriteFailure(t *testing.T) {
	defer faultpoint.Reset()
	g, pl, want := chaosFixture(t)
	path := filepath.Join(t.TempDir(), "state.ckpt")
	injected := errors.New("injected write failure")
	faultpoint.Set(faultpoint.PointCheckpointWrite, faultpoint.FailTimes(1<<30, injected))
	res, err := chaosRun(t, g, pl, Options{
		Workers:    4,
		Checkpoint: &CheckpointOptions{Path: path, Interval: time.Hour},
	}, nil)
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected write failure", err)
	}
	if res.Matches != want {
		t.Fatalf("count %d, want %d (write failures must not lose results)", res.Matches, want)
	}

	// Now let only the first write fail. If the run outlives the first
	// periodic tick, the transient failure lands there and the final
	// write supersedes it: no error, usable Complete checkpoint. (On a
	// machine fast enough to finish before the tick, the transient hits
	// the final write instead — nothing left to assert.)
	faultpoint.Reset()
	transient := errors.New("transient")
	faultpoint.Set(faultpoint.PointCheckpointWrite, faultpoint.FailTimes(1, transient))
	res, err = chaosRun(t, g, pl, Options{
		Workers:    4,
		Checkpoint: &CheckpointOptions{Path: path, Interval: time.Millisecond},
	}, nil)
	if err != nil {
		if !errors.Is(err, transient) {
			t.Fatal(err)
		}
		t.Skip("run finished before the first periodic tick")
	}
	if res.Matches != want {
		t.Fatalf("count %d, want %d", res.Matches, want)
	}
	ck, err := supervise.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("final checkpoint unreadable after transient write failure: %v", err)
	}
	if !ck.Complete || ck.Base.Matches != want {
		t.Fatalf("final checkpoint complete=%v matches=%d, want complete with %d", ck.Complete, ck.Base.Matches, want)
	}
}

// TestChaosPanicInVisitorDuringSteals combines stealing pressure with a
// visitor panic to exercise the donation lock's defer-unlock path.
func TestChaosPanicInVisitorDuringSteals(t *testing.T) {
	defer faultpoint.Reset()
	g, pl, _ := chaosFixture(t)
	faultpoint.Set(faultpoint.PointDonate, faultpoint.Delay(100*time.Microsecond))
	var seen atomic.Uint64
	_, err := chaosRun(t, g, pl, Options{Workers: 8, ChunkSize: 4, MinSplit: 2},
		func(m []graph.VertexID) bool {
			if seen.Add(1) == 50 {
				panic("visitor chaos")
			}
			return true
		})
	var pe *supervise.PanicError
	if !errors.As(err, &pe) || pe.Value != "visitor chaos" {
		t.Fatalf("err = %v, want visitor panic", err)
	}
}
