// Package parallel runs an enumeration plan across multiple workers
// (the paper's Section VII-B SMT parallelization). Two schedulers are
// provided:
//
//   - WorkStealing (default, the paper's design): workers start from
//     dynamic chunks of the root candidate set and, while busy, donate
//     halves of their current materialization loops to a global
//     concurrent queue whenever idle workers are waiting — the
//     sender-initiated strategy of Rao & Kumar / Acar et al. that the
//     paper adopts.
//   - RootChunk (the ablation baseline): dynamic root chunks only, no
//     donation. Suffers when a few hub vertices dominate the search.
//
// Workers never share partial results; each owns an Enumerator with its
// candidate buffers, so memory stays O(workers · n · d_max) as in the
// paper's analysis.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"light/internal/engine"
	"light/internal/graph"
	"light/internal/plan"
)

// Scheduler selects the load-balancing strategy.
type Scheduler int

const (
	// WorkStealing is the paper's sender-initiated donation scheme.
	WorkStealing Scheduler = iota
	// RootChunk partitions only the root candidate set, dynamically.
	RootChunk
	// StaticPartition splits the root candidates into one fixed range
	// per worker with no rebalancing — the paper's "naive distributed
	// LIGHT" (Section VIII-A), which it reports suffering from load
	// imbalance. Kept as a measurable baseline.
	StaticPartition
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case RootChunk:
		return "RootChunk"
	case StaticPartition:
		return "StaticPartition"
	}
	return "WorkStealing"
}

// Options configure a parallel run.
type Options struct {
	Engine engine.Options
	// Workers is the number of worker goroutines; defaults to GOMAXPROCS.
	Workers int
	// Scheduler defaults to WorkStealing.
	Scheduler Scheduler
	// ChunkSize is the number of root candidates claimed at a time
	// (default 256).
	ChunkSize int
	// MinSplit is the smallest materialization loop a worker will split
	// for donation (default 8).
	MinSplit int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256
	}
	if o.MinSplit <= 0 {
		o.MinSplit = 8
	}
	return o
}

// Result extends the engine result with scheduler observability.
type Result struct {
	engine.Result
	Donations           uint64 // frames pushed to the global queue
	Steals              uint64 // frames executed by a worker other than the donor
	Workers             int
	CandidateMemBytes   int64 // total candidate-buffer memory across workers (Table V)
	RootChunksDispensed uint64
	// PerWorkerNodes is the search-tree nodes each worker expanded — the
	// load-balance evidence (static partitioning shows wide spreads on
	// hub-dominated graphs; work stealing flattens them).
	PerWorkerNodes []uint64
}

// Run enumerates pl over g with opts.Workers workers and returns the
// combined result. If visit is non-nil it is serialized by a mutex, so
// enumeration-mode scaling is limited; counting mode (visit == nil) is
// fully parallel.
func Run(g *graph.Graph, pl *plan.Plan, opts Options, visit engine.VisitFunc) (Result, error) {
	opts = opts.withDefaults()
	// Pin one absolute deadline for the whole run: workers process many
	// chunks and frames, each of which restarts the engine's clock.
	if opts.Engine.TimeLimit > 0 && opts.Engine.Deadline.IsZero() {
		opts.Engine.Deadline = time.Now().Add(opts.Engine.TimeLimit)
	}
	if visit != nil {
		var mu sync.Mutex
		inner := visit
		visit = func(m []graph.VertexID) bool {
			mu.Lock()
			defer mu.Unlock()
			return inner(m)
		}
	}

	p := &pool{
		g:     g,
		pl:    pl,
		opts:  opts,
		visit: visit,
	}
	p.cond = sync.NewCond(&p.mu)
	n := g.NumVertices()
	p.roots = make([]graph.VertexID, n)
	for i := range p.roots {
		p.roots[i] = graph.VertexID(i)
	}

	var wg sync.WaitGroup
	results := make([]engine.Result, opts.Workers)
	errs := make([]error, opts.Workers)
	memBytes := make([]int64, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], memBytes[w], errs[w] = p.worker(w)
		}(w)
	}
	wg.Wait()

	var out Result
	out.Workers = opts.Workers
	out.PerWorkerNodes = make([]uint64, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		out.Result.Add(results[w])
		out.CandidateMemBytes += memBytes[w]
		out.PerWorkerNodes[w] = results[w].Nodes
	}
	out.Donations = p.donations.Load()
	out.Steals = p.steals.Load()
	out.RootChunksDispensed = p.chunks.Load()
	var err error
	for _, e := range errs {
		if e != nil {
			err = e
			break
		}
	}
	return out, err
}

// pool is the shared scheduler state.
type pool struct {
	g     *graph.Graph
	pl    *plan.Plan
	opts  Options
	visit engine.VisitFunc

	roots  []graph.VertexID
	cursor atomic.Int64 // next unclaimed root index

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*engine.Frame
	idle     int
	finished bool
	stop     atomic.Bool
	hungry   atomic.Int32 // idle workers wanting tasks (donation trigger)
	chunks   atomic.Uint64

	donations atomic.Uint64
	steals    atomic.Uint64
}

// worker sets up this worker's enumerator and hands off to the
// scheduling loop; it returns when the roots are exhausted and the queue
// stays empty with every other worker idle.
func (p *pool) worker(idx int) (engine.Result, int64, error) {
	e := engine.New(p.g, p.pl, p.opts.Engine)
	e.Stop = &p.stop
	if p.opts.Scheduler == WorkStealing {
		e.Hook = p.makeHook()
	}
	if p.opts.Scheduler == StaticPartition {
		// One fixed slice per worker, no rebalancing of any kind.
		var acc engine.Result
		n := len(p.roots)
		lo := idx * n / p.opts.Workers
		hi := (idx + 1) * n / p.opts.Workers
		res, err := e.RunRoots(p.roots[lo:hi], p.visit)
		if err != nil || res.Stopped {
			p.stop.Store(true)
		}
		acc.Add(res)
		return acc, e.CandidateMemoryBytes(), err
	}
	acc, err := p.runLoop(e)
	return acc, e.CandidateMemoryBytes(), err
}

// runLoop is the worker body proper: claim root chunks while any remain,
// then execute donated frames until global termination. It stays
// allocation-free — every per-worker buffer was allocated by engine.New
// before entry.
//
//light:hotpath
func (p *pool) runLoop(e *engine.Enumerator) (engine.Result, error) {
	var acc engine.Result
	for {
		// Phase 1: claim a root chunk.
		if lo := p.cursor.Add(int64(p.opts.ChunkSize)) - int64(p.opts.ChunkSize); lo < int64(len(p.roots)) {
			hi := lo + int64(p.opts.ChunkSize)
			if hi > int64(len(p.roots)) {
				hi = int64(len(p.roots))
			}
			p.chunks.Add(1)
			res, err := e.RunRoots(p.roots[lo:hi], p.visit)
			acc.Add(res)
			if err != nil || res.Stopped {
				p.stop.Store(true)
				p.wakeAll()
				return acc, err
			}
			continue
		}
		// Phase 2: take donated frames, or wait for some.
		f, ok := p.takeFrame()
		if !ok {
			return acc, nil
		}
		p.steals.Add(1)
		res, err := e.Resume(f, p.visit)
		acc.Add(res)
		if err != nil || res.Stopped {
			p.stop.Store(true)
			p.wakeAll()
			return acc, err
		}
	}
}

// makeHook builds the sender-initiated donation hook: when idle workers
// are waiting and the queue is empty, split the remaining candidates of
// the current materialization loop in half and publish a frame.
func (p *pool) makeHook() engine.MatHook {
	return func(e *engine.Enumerator, sigmaIdx int, cands []graph.VertexID) int {
		if len(cands) < p.opts.MinSplit || p.hungry.Load() == 0 {
			return len(cands)
		}
		p.mu.Lock()
		if p.idle == 0 || len(p.queue) >= p.idle {
			p.mu.Unlock()
			return len(cands)
		}
		keep := len(cands) / 2
		f := e.Snapshot(sigmaIdx, cands[keep:])
		p.queue = append(p.queue, f)
		p.donations.Add(1)
		p.cond.Broadcast()
		p.mu.Unlock()
		return keep
	}
}

// takeFrame blocks until a frame is available or the pool terminates.
func (p *pool) takeFrame() (*engine.Frame, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idle++
	p.hungry.Add(1)
	for {
		if len(p.queue) > 0 {
			f := p.queue[len(p.queue)-1]
			p.queue = p.queue[:len(p.queue)-1]
			p.idle--
			p.hungry.Add(-1)
			return f, true
		}
		if p.finished || p.stop.Load() || p.idle == p.opts.Workers {
			// Termination: all workers idle and nothing queued. Latch the
			// state and wake the rest so they observe it too.
			p.finished = true
			p.cond.Broadcast()
			p.idle--
			p.hungry.Add(-1)
			return nil, false
		}
		p.cond.Wait()
	}
}

func (p *pool) wakeAll() {
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}
