// Package parallel runs an enumeration plan across multiple workers
// (the paper's Section VII-B SMT parallelization). Two schedulers are
// provided:
//
//   - WorkStealing (default, the paper's design): workers start from
//     dynamic chunks of the root candidate set and, while busy, donate
//     halves of their current materialization loops to a global
//     concurrent queue whenever idle workers are waiting — the
//     sender-initiated strategy of Rao & Kumar / Acar et al. that the
//     paper adopts.
//   - RootChunk (the ablation baseline): dynamic root chunks only, no
//     donation. Suffers when a few hub vertices dominate the search.
//
// Workers never share partial results; each owns an Enumerator with its
// candidate buffers, so memory stays O(workers · n · d_max) as in the
// paper's analysis.
//
// The package is supervised (see internal/supervise): worker panics —
// including panics inside user visit callbacks — become ordinary
// errors that stop the pool cleanly, runs can be cancelled through a
// context.Context, and WorkStealing/RootChunk runs can periodically
// checkpoint their committed state to disk and later resume with an
// exactly-equal total match count.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"light/internal/admission"
	"light/internal/arena"
	"light/internal/engine"
	"light/internal/faultpoint"
	"light/internal/graph"
	"light/internal/metrics"
	"light/internal/plan"
	"light/internal/supervise"
)

// Scheduler selects the load-balancing strategy.
type Scheduler int

const (
	// WorkStealing is the paper's sender-initiated donation scheme.
	WorkStealing Scheduler = iota
	// RootChunk partitions only the root candidate set, dynamically.
	RootChunk
	// StaticPartition splits the root candidates into one fixed range
	// per worker with no rebalancing — the paper's "naive distributed
	// LIGHT" (Section VIII-A), which it reports suffering from load
	// imbalance. Kept as a measurable baseline.
	StaticPartition
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case RootChunk:
		return "RootChunk"
	case StaticPartition:
		return "StaticPartition"
	}
	return "WorkStealing"
}

// CheckpointOptions configure periodic checkpointing of a run.
type CheckpointOptions struct {
	// Path is the checkpoint file. Every write is atomic (temp file +
	// rename), so the file is always either absent, the previous
	// checkpoint, or the new one — never a torn mix.
	Path string
	// Interval between periodic checkpoints (default 30s). Independent
	// of the interval, a final checkpoint is written when the run ends,
	// whether it completed, errored, or was cancelled.
	Interval time.Duration
	// MaxRetries is how many times a failed checkpoint write is retried
	// with jittered exponential backoff before the error is surfaced
	// (default 3; negative disables retries). Transient filesystem
	// errors then no longer cost a long run its checkpoint.
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry, doubled
	// per attempt with ±50% jitter (default 5ms).
	RetryBackoff time.Duration
}

// Options configure a parallel run.
type Options struct {
	// Engine configures each worker's enumerator. Engine.Arena is
	// overridden: every worker gets its own private arena (a shared one
	// would race), and the summed slab footprint is reported as
	// Result.CandidateMemBytes and the arena.bytes counter.
	Engine engine.Options
	// Workers is the number of worker goroutines; defaults to GOMAXPROCS.
	Workers int
	// Scheduler defaults to WorkStealing.
	Scheduler Scheduler
	// ChunkSize is the number of root candidates claimed at a time
	// (default 256).
	ChunkSize int
	// MinSplit is the smallest materialization loop a worker will split
	// for donation (default 8).
	MinSplit int
	// Checkpoint, when non-nil, periodically persists the run's
	// committed state so it can be resumed after a crash or kill.
	// Requires the WorkStealing or RootChunk scheduler.
	Checkpoint *CheckpointOptions
	// Resume, when non-nil, continues a previous run from its
	// checkpoint: only uncommitted roots and outstanding donated frames
	// are enumerated, and the checkpoint's committed result is folded
	// into the returned Result. The plan and graph must match the ones
	// the checkpoint was written under (verified by fingerprint).
	Resume *supervise.Checkpoint
	// Metrics, when non-nil, receives the run's counters: engine work
	// folded per chunk/frame plus scheduler events (steals, donations,
	// queue waits, busy time, checkpoint write latency). It overrides
	// Engine.Metrics so every worker folds into the same recorder.
	Metrics *metrics.Recorder
	// Gate, when non-nil, is this run's admission under a shared
	// Governor: workers check it at scheduling boundaries (between
	// chunks and frames, and while parked on the queue) and retire when
	// a surplus slot is shed to a waiting query. Requires WorkStealing
	// or RootChunk.
	Gate *admission.Admission
	// MemLimiter, when non-nil, budgets every worker's candidate arena;
	// a denied slab grow hard-stops the run with engine.ErrMemoryBudget
	// (still writing a valid final checkpoint when configured).
	MemLimiter *arena.Limiter
	// Watchdog, when non-nil, starts a stall watchdog that samples
	// per-worker progress heartbeats every Interval and, after Patience
	// intervals without progress from a busy worker, records a
	// diagnostic dump (Result.StallDump) and optionally cancels the run
	// with admission.ErrStalled.
	Watchdog *admission.WatchdogConfig
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256
	}
	if o.MinSplit <= 0 {
		o.MinSplit = 8
	}
	return o
}

// Result extends the engine result with scheduler observability.
type Result struct {
	engine.Result
	Donations           uint64 // frames pushed to the global queue
	Steals              uint64 // frames executed by a worker other than the donor
	Workers             int
	CandidateMemBytes   int64 // total candidate-buffer memory across workers (Table V)
	RootChunksDispensed uint64
	// PerWorkerNodes is the search-tree nodes each worker expanded — the
	// load-balance evidence (static partitioning shows wide spreads on
	// hub-dominated graphs; work stealing flattens them).
	PerWorkerNodes []uint64
	// PerWorkerBusy is the time each worker spent executing root chunks
	// and donated frames (the per-thread utilization numerator).
	PerWorkerBusy []time.Duration
	// QueueWaits counts worker blocking episodes on the frame queue;
	// QueueWaitTotal is the time spent blocked across all workers.
	QueueWaits     uint64
	QueueWaitTotal time.Duration
	// CheckpointWrites counts checkpoint file writes (periodic + final);
	// CheckpointWriteTotal is their cumulative latency.
	CheckpointWrites     uint64
	CheckpointWriteTotal time.Duration
	// CheckpointRetries counts failed checkpoint writes that were
	// retried (the jittered-backoff path).
	CheckpointRetries uint64
	// SlotsShed counts workers retired early because the admission
	// governor handed their slot to a waiting query.
	SlotsShed uint64
	// Stalls counts stall-watchdog firings; StallDump is the first
	// stall's diagnostic (per-worker progress table + full stack dump).
	Stalls    uint64
	StallDump string
}

// Run enumerates pl over g with opts.Workers workers and returns the
// combined result. It is RunContext with a background context.
func Run(g *graph.Graph, pl *plan.Plan, opts Options, visit engine.VisitFunc) (Result, error) {
	return RunContext(context.Background(), g, pl, opts, visit)
}

// RunContext enumerates pl over g under ctx. Cancellation and ctx
// deadlines share the engine's stop-flag path: the run unwinds at the
// next poll, the partial result is returned with Stopped=true, and the
// error is ctx.Err(). If visit is non-nil it is serialized by a mutex,
// so enumeration-mode scaling is limited; counting mode (visit == nil)
// is fully parallel. A panic in visit or in a worker is recovered,
// stops the pool cleanly, and is returned as a *supervise.PanicError.
func RunContext(ctx context.Context, g *graph.Graph, pl *plan.Plan, opts Options, visit engine.VisitFunc) (Result, error) {
	if opts.Engine.Delta < 0 {
		// Reject here, before workers spawn: engine.New panics on a
		// negative δ (it would silently degrade every Hybrid kernel to
		// pure Galloping), and a panic inside a supervised worker is a
		// worse failure report than a plain error at the entry point.
		return Result{}, fmt.Errorf("parallel: Engine.Delta is %d, must be non-negative", opts.Engine.Delta)
	}
	if opts.Engine.Overlay != nil && (opts.Checkpoint != nil || opts.Resume != nil) {
		// Checkpoint fingerprints bind only the base graph's structure
		// (supervise.Fingerprint hashes N/M/d_max + plan), so a pending
		// edge delta would silently validate against a stale file; and a
		// resumed frame's candidate sets were computed under whatever view
		// the writer had. Snapshots must be compacted into a real CSR
		// before they can checkpoint or resume.
		return Result{}, errors.New("parallel: checkpoint/resume require a compacted snapshot; compact the pending edge deltas first")
	}
	opts = opts.withDefaults()
	// Pin one absolute deadline for the whole run: workers process many
	// chunks and frames, each of which restarts the engine's clock.
	if opts.Engine.TimeLimit > 0 && opts.Engine.Deadline.IsZero() {
		opts.Engine.Deadline = time.Now().Add(opts.Engine.TimeLimit)
	}
	if visit != nil {
		var mu sync.Mutex
		inner := visit
		visit = func(m []graph.VertexID) bool {
			mu.Lock()
			defer mu.Unlock()
			return inner(m)
		}
	}
	visit, visitErr := supervise.SafeVisit("visit callback", visit)

	// One recorder for the whole pool: workers fold engine results into
	// it per chunk/frame, scheduler events hit it from blocking paths.
	rec := opts.Metrics
	if rec == nil {
		rec = opts.Engine.Metrics
	}
	opts.Engine.Metrics = rec

	p := &pool{
		g:      g,
		pl:     pl,
		opts:   opts,
		visit:  visit,
		alive:  opts.Workers,
		beats:  make([]atomic.Uint64, opts.Workers),
		epochs: make([]atomic.Uint64, opts.Workers),
	}
	p.cond = sync.NewCond(&p.mu)
	if opts.Gate != nil {
		if opts.Scheduler == StaticPartition {
			return Result{}, errors.New("parallel: StaticPartition cannot run under an admission gate; use WorkStealing or RootChunk")
		}
		// Wake parked workers when the governor's queue goes non-empty,
		// so surplus slots are shed promptly instead of at the next
		// scheduling event.
		opts.Gate.SetNotify(p.wakeAll)
	}

	var base engine.Result
	var priorDone []supervise.RootRange
	if opts.Resume != nil {
		ck := opts.Resume
		if opts.Scheduler == StaticPartition {
			return Result{}, errors.New("parallel: StaticPartition cannot resume a checkpoint")
		}
		if fp := supervise.Fingerprint(g, pl); ck.Fingerprint != fp {
			return Result{}, fmt.Errorf("parallel: checkpoint fingerprint %#x does not match this run (%#x): different graph, pattern, or plan", ck.Fingerprint, fp)
		}
		base = ck.Base
		priorDone = ck.Done
		if ck.Complete {
			var out Result
			out.Workers = opts.Workers
			out.PerWorkerNodes = make([]uint64, opts.Workers)
			out.PerWorkerBusy = make([]time.Duration, opts.Workers)
			out.Result = base
			base.AddTo(rec)
			return out, nil
		}
		for _, f := range ck.Frames {
			if err := f.Validate(pl, g); err != nil {
				return Result{}, fmt.Errorf("parallel: invalid checkpoint frame: %w", err)
			}
		}
		p.roots = pendingRoots(g.NumVertices(), ck.Done)
	} else {
		// The root candidate set is every vertex of the queried view —
		// overlay vertices included, so matches rooted at a newly inserted
		// vertex are not lost.
		n := g.NumVertices()
		if opts.Engine.Overlay != nil {
			n = opts.Engine.Overlay.NumVertices()
		}
		p.roots = make([]graph.VertexID, n)
		for i := range p.roots {
			p.roots[i] = graph.VertexID(i)
		}
	}

	if opts.Checkpoint != nil {
		if opts.Scheduler == StaticPartition {
			return Result{}, errors.New("parallel: StaticPartition cannot checkpoint; use WorkStealing or RootChunk")
		}
		p.led = newLedger(p.roots, supervise.Fingerprint(g, pl), base, priorDone)
	}
	if opts.Resume != nil {
		for _, f := range opts.Resume.Frames {
			p.queue = append(p.queue, queuedFrame{f: f, unit: p.led.beginFrame(0, f)})
		}
	}

	release := supervise.WatchContext(ctx, func() {
		p.stop.Store(true)
		p.wakeAll()
	})
	defer release()

	var wg sync.WaitGroup
	results := make([]engine.Result, opts.Workers)
	errs := make([]error, opts.Workers)
	memBytes := make([]int64, opts.Workers)
	busys := make([]time.Duration, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		w := w
		supervise.Go(&wg, fmt.Sprintf("parallel worker %d", w), func(err error) {
			// Panic path: the worker died without returning. Record the
			// converted panic and make sure no peer waits for it.
			errs[w] = err
			p.stop.Store(true)
			p.wakeAll()
		}, func() {
			results[w], memBytes[w], busys[w], errs[w] = p.worker(w)
			if errs[w] != nil {
				p.stop.Store(true)
				p.wakeAll()
			}
		})
	}

	var ckWG sync.WaitGroup
	var ckStop chan struct{}
	if opts.Checkpoint != nil {
		interval := opts.Checkpoint.Interval
		if interval <= 0 {
			interval = 30 * time.Second
		}
		ckStop = make(chan struct{})
		supervise.Go(&ckWG, "checkpoint writer", func(err error) {
			p.led.noteWriteErr(err)
		}, func() {
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					// A panicking write (e.g. injected faults) must not kill
					// the process; it is recorded like any write error and
					// superseded by the next successful write.
					p.led.noteWriteErr(supervise.Call("checkpoint write", func() error {
						return p.timedCheckpoint(false)
					}))
				case <-ckStop:
					return
				}
			}
		})
	}

	var wdWG sync.WaitGroup
	var wdStop chan struct{}
	if opts.Watchdog != nil && opts.Watchdog.Interval > 0 {
		wdStop = make(chan struct{})
		supervise.Go(&wdWG, "stall watchdog", func(err error) {
			// A watchdog panic must never take the run down; the pool
			// simply loses stall coverage.
			_ = err
		}, func() {
			p.watchdog(opts.Watchdog, wdStop)
		})
	}

	wg.Wait()
	if wdStop != nil {
		close(wdStop)
		wdWG.Wait()
	}
	if ckStop != nil {
		close(ckStop)
		ckWG.Wait()
	}

	var out Result
	out.Workers = opts.Workers
	out.PerWorkerNodes = make([]uint64, opts.Workers)
	out.PerWorkerBusy = busys
	for w := 0; w < opts.Workers; w++ {
		out.Result.Add(results[w])
		out.CandidateMemBytes += memBytes[w]
		out.PerWorkerNodes[w] = results[w].Nodes
		rec.AddDuration(metrics.ParallelBusyNanos, busys[w])
		rec.Add(metrics.ArenaBytes, uint64(memBytes[w]))
	}
	out.Donations = p.donations.Load()
	out.Steals = p.steals.Load()
	out.RootChunksDispensed = p.chunks.Load()

	err := joinErrors(errs)
	if verr := visitErr(); verr != nil {
		err = joinErrors([]error{err, verr})
	}
	if opts.Checkpoint != nil {
		complete := err == nil && !out.Stopped
		werr := supervise.Call("checkpoint write", func() error {
			return p.timedCheckpoint(complete)
		})
		if werr != nil {
			err = joinErrors([]error{err, werr})
		}
	}
	if err == nil && out.Stopped && p.stallCancelled.Load() {
		err = admission.ErrStalled
	}
	if err == nil && out.Stopped && ctx != nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	out.Result.Add(base)

	// Scheduler-level counters: pool atomics folded once per run, plus
	// the resumed checkpoint's committed engine counters.
	out.QueueWaits = p.qWaits.Load()
	out.QueueWaitTotal = time.Duration(p.qWaitNS.Load())
	out.CheckpointWrites = p.ckWrites.Load()
	out.CheckpointWriteTotal = time.Duration(p.ckWriteNS.Load())
	out.CheckpointRetries = p.ckRetries.Load()
	out.SlotsShed = p.shed.Load()
	out.Stalls = p.stalls.Load()
	p.mu.Lock()
	out.StallDump = p.stallDump
	p.mu.Unlock()
	rec.Add(metrics.ParallelDonations, out.Donations)
	rec.Add(metrics.ParallelSteals, out.Steals)
	rec.Add(metrics.ParallelRootChunks, out.RootChunksDispensed)
	rec.Add(metrics.ParallelQueueWaits, out.QueueWaits)
	rec.Add(metrics.ParallelQueueWaitNanos, p.qWaitNS.Load())
	rec.Add(metrics.CheckpointWrites, out.CheckpointWrites)
	rec.Add(metrics.CheckpointWriteNanos, p.ckWriteNS.Load())
	rec.Add(metrics.CheckpointWriteErrors, p.ckWriteErrs.Load())
	rec.Add(metrics.CheckpointRetries, out.CheckpointRetries)
	rec.Add(metrics.AdmissionSlotsShed, out.SlotsShed)
	rec.Add(metrics.WatchdogStalls, out.Stalls)
	base.AddTo(rec)
	return out, err
}

// joinErrors aggregates worker errors: nil when all are nil, the
// first error when every failure is the same value (preserving sentinel
// comparisons like err == engine.ErrTimeLimit), errors.Join otherwise.
func joinErrors(errs []error) error {
	var nonNil []error
	for _, e := range errs {
		if e != nil {
			nonNil = append(nonNil, e)
		}
	}
	if len(nonNil) == 0 {
		return nil
	}
	same := true
	for _, e := range nonNil[1:] {
		if e != nonNil[0] {
			same = false
			break
		}
	}
	if same {
		return nonNil[0]
	}
	return errors.Join(nonNil...)
}

// queuedFrame is one donated frame awaiting a worker, paired with its
// ledger unit (0 when checkpointing is off).
type queuedFrame struct {
	f    *engine.Frame
	unit unitID
}

// workerState is per-worker scheduler state reachable from the
// donation hook: the ledger unit of the chunk or frame the worker is
// currently executing, so donated frames can be parented correctly,
// and the worker's accumulated busy time (owned by one goroutine, no
// synchronization needed).
type workerState struct {
	idx  int
	unit unitID
	busy time.Duration
}

// pool is the shared scheduler state.
type pool struct {
	g     *graph.Graph
	pl    *plan.Plan
	opts  Options
	visit engine.VisitFunc
	led   *ledger // nil when checkpointing is off

	roots  []graph.VertexID
	cursor atomic.Int64 // next unclaimed root index

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []queuedFrame
	idle     int
	alive    int // workers not yet retired by slot shedding (mu-guarded)
	finished bool
	stop     atomic.Bool
	hungry   atomic.Int32 // idle workers wanting tasks (donation trigger)
	chunks   atomic.Uint64

	donations atomic.Uint64
	steals    atomic.Uint64

	// Stall-watchdog state: beats is the engine's deadline-poll
	// heartbeat, epochs goes odd when a worker enters RunRoots/Resume
	// and even when it returns — a worker whose epoch is odd and whose
	// beat stops moving is wedged, not merely between work items.
	beats  []atomic.Uint64
	epochs []atomic.Uint64
	// stallDump (mu-guarded) keeps the first stall's diagnostic.
	stallDump      string
	stallCancelled atomic.Bool
	stalls         atomic.Uint64
	shed           atomic.Uint64
	ckRetries      atomic.Uint64

	// Scheduler-event counters folded into the run's metrics recorder
	// (and the Result) once, at the end of RunContext.
	qWaits      atomic.Uint64 // blocking episodes in takeFrame
	qWaitNS     atomic.Uint64 // nanoseconds spent blocked in takeFrame
	ckWrites    atomic.Uint64 // checkpoint writes attempted
	ckWriteNS   atomic.Uint64 // cumulative checkpoint write latency
	ckWriteErrs atomic.Uint64 // checkpoint writes that failed
}

// worker sets up this worker's enumerator and hands off to the
// scheduling loop; it returns when the roots are exhausted and the queue
// stays empty with every other worker idle.
func (p *pool) worker(idx int) (engine.Result, int64, time.Duration, error) {
	if err := faultpoint.Hit(faultpoint.PointWorkerStart); err != nil {
		return engine.Result{}, 0, 0, fmt.Errorf("parallel: worker %d start: %w", idx, err)
	}
	// Per-worker: arenas must never be shared across goroutines. Under a
	// memory budget each worker's arena charges the shared limiter.
	eopts := p.opts.Engine
	eopts.Arena = arena.NewBudgeted(p.opts.MemLimiter)
	e := engine.New(p.g, p.pl, eopts)
	e.Stop = &p.stop
	e.Progress = &p.beats[idx]
	ws := &workerState{idx: idx}
	if p.opts.Scheduler == WorkStealing {
		e.Hook = p.makeHook(ws)
	}
	if p.opts.Scheduler == StaticPartition {
		// One fixed slice per worker, no rebalancing of any kind.
		var acc engine.Result
		n := len(p.roots)
		lo := idx * n / p.opts.Workers
		hi := (idx + 1) * n / p.opts.Workers
		t0 := time.Now()
		res, err := e.RunRoots(p.roots[lo:hi], p.visit)
		ws.busy = time.Since(t0)
		if err != nil || res.Stopped {
			p.stop.Store(true)
		}
		acc.Add(res)
		return acc, e.CandidateMemoryBytes(), ws.busy, err
	}
	acc, err := p.runLoop(e, ws)
	return acc, e.CandidateMemoryBytes(), ws.busy, err
}

// runLoop is the worker body proper: claim root chunks while any remain,
// then execute donated frames until global termination. It stays
// allocation-free in steady state — candidate buffers come from the
// worker's arena (slabs grown on the first chunk, reused afterwards),
// and the ledger (acknowledged-cold, once per chunk) owns its own
// memory.
//
//light:hotpath
func (p *pool) runLoop(e *engine.Enumerator, ws *workerState) (engine.Result, error) {
	var acc engine.Result
	for {
		// Elastic slot return: between work items, hand a surplus slot
		// to a query waiting on the shared governor and retire this
		// worker (a single atomic load when no one is waiting).
		if p.opts.Gate.TryShed() {
			p.retire()
			return acc, nil
		}
		// Phase 1: claim a root chunk.
		if lo := p.cursor.Add(int64(p.opts.ChunkSize)) - int64(p.opts.ChunkSize); lo < int64(len(p.roots)) {
			hi := lo + int64(p.opts.ChunkSize)
			if hi > int64(len(p.roots)) {
				hi = int64(len(p.roots))
			}
			p.chunks.Add(1)
			ws.unit = p.led.beginChunk(lo, hi)
			t0 := time.Now()
			p.epochs[ws.idx].Add(1)
			res, err := e.RunRoots(p.roots[lo:hi], p.visit)
			p.epochs[ws.idx].Add(1)
			ws.busy += time.Since(t0)
			acc.Add(res)
			if err != nil || res.Stopped {
				p.stop.Store(true)
				p.wakeAll()
				return acc, err
			}
			p.led.finish(ws.unit, res)
			continue
		}
		// Phase 2: take donated frames, or wait for some.
		qf, ok := p.takeFrame()
		if !ok {
			return acc, nil
		}
		if err := faultpoint.Hit(faultpoint.PointFrameResume); err != nil {
			p.stop.Store(true)
			p.wakeAll()
			return acc, err
		}
		p.steals.Add(1)
		ws.unit = qf.unit
		t0 := time.Now()
		p.epochs[ws.idx].Add(1)
		res, err := e.Resume(qf.f, p.visit)
		p.epochs[ws.idx].Add(1)
		ws.busy += time.Since(t0)
		acc.Add(res)
		if err != nil || res.Stopped {
			p.stop.Store(true)
			p.wakeAll()
			return acc, err
		}
		p.led.finish(qf.unit, res)
	}
}

// retire removes a worker from the pool's accounting after its slot
// was shed to another query. The idle==alive termination equality is
// re-broadcast so parked peers re-evaluate it.
func (p *pool) retire() {
	p.shed.Add(1)
	p.mu.Lock()
	p.alive--
	p.cond.Broadcast()
	p.mu.Unlock()
}

// makeHook builds the sender-initiated donation hook: when idle workers
// are waiting and the queue is empty, split the remaining candidates of
// the current materialization loop in half and publish a frame. The
// scheduler lock is released by defer, so a panic anywhere inside the
// donation path (snapshotting, injected faults) unwinds with the lock
// free and can never wedge the other workers.
func (p *pool) makeHook(ws *workerState) engine.MatHook {
	return func(e *engine.Enumerator, sigmaIdx int, cands []graph.VertexID) int {
		if len(cands) < p.opts.MinSplit || p.hungry.Load() == 0 {
			return len(cands)
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.idle == 0 || len(p.queue) >= p.idle {
			return len(cands)
		}
		if err := faultpoint.Hit(faultpoint.PointDonate); err != nil {
			// Donation is optional work: an injected fault skips this
			// donation and the worker keeps its whole loop.
			return len(cands)
		}
		keep := len(cands) / 2
		f := e.Snapshot(sigmaIdx, cands[keep:])
		p.queue = append(p.queue, queuedFrame{f: f, unit: p.led.beginFrame(ws.unit, f)})
		p.donations.Add(1)
		p.cond.Broadcast()
		return keep
	}
}

// takeFrame blocks until a frame is available or the pool terminates.
// Each blocking episode (one takeFrame call that had to Wait, however
// many spurious wakeups it saw) counts as one queue wait.
func (p *pool) takeFrame() (queuedFrame, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idle++
	p.hungry.Add(1)
	var waitStart time.Time
	for {
		if len(p.queue) > 0 {
			qf := p.queue[len(p.queue)-1]
			p.queue = p.queue[:len(p.queue)-1]
			p.idle--
			p.hungry.Add(-1)
			p.noteWait(waitStart)
			return qf, true
		}
		if p.finished || p.stop.Load() || p.idle == p.alive {
			// Termination: all live workers idle and nothing queued.
			// Latch the state and wake the rest so they observe it too.
			p.finished = true
			p.cond.Broadcast()
			p.idle--
			p.hungry.Add(-1)
			p.noteWait(waitStart)
			return queuedFrame{}, false
		}
		// A parked worker is the cheapest one to retire: hand its slot
		// to a waiting query. idle and alive drop together, so the
		// termination equality for the remaining workers is unchanged.
		// Lock order is p.mu → governor mu, here and everywhere.
		if p.opts.Gate.TryShed() {
			p.shed.Add(1)
			p.idle--
			p.alive--
			p.hungry.Add(-1)
			p.cond.Broadcast()
			p.noteWait(waitStart)
			return queuedFrame{}, false
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
			p.qWaits.Add(1)
		}
		p.cond.Wait()
	}
}

// noteWait records the blocked span of one takeFrame episode; start is
// zero when the call never blocked.
func (p *pool) noteWait(start time.Time) {
	if !start.IsZero() {
		p.qWaitNS.Add(uint64(time.Since(start)))
	}
}

func (p *pool) wakeAll() {
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// writeCheckpoint persists the ledger's committed state to the
// configured checkpoint path.
func (p *pool) writeCheckpoint(complete bool) error {
	ck := p.led.snapshot(p.cursor.Load())
	ck.Complete = complete
	return ck.Save(p.opts.Checkpoint.Path)
}

// timedCheckpoint wraps writeCheckpoint with write-latency accounting
// and retry-with-jittered-backoff: a transient filesystem error costs
// a few milliseconds, not the run's checkpoint. A panicking write skips
// the accounting — the supervising Call converts it to an error above
// this frame (and is not retried: a panic is a bug, not a transient).
func (p *pool) timedCheckpoint(complete bool) error {
	retries := 3
	if c := p.opts.Checkpoint; c != nil && c.MaxRetries != 0 {
		retries = c.MaxRetries
		if retries < 0 {
			retries = 0
		}
	}
	backoff := 5 * time.Millisecond
	if c := p.opts.Checkpoint; c != nil && c.RetryBackoff > 0 {
		backoff = c.RetryBackoff
	}
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		err := p.writeCheckpoint(complete)
		p.ckWrites.Add(1)
		p.ckWriteNS.Add(uint64(time.Since(t0)))
		if err == nil {
			return nil
		}
		p.ckWriteErrs.Add(1)
		if attempt >= retries {
			return err
		}
		p.ckRetries.Add(1)
		// Exponential backoff with ±50% jitter, capped so a large
		// user-configured MaxRetries can never shift the duration into
		// overflow (a zero or negative d would panic rand.Int63n); the
		// cold path may use math/rand freely.
		maxSleep := 2 * time.Second
		if backoff > maxSleep {
			maxSleep = backoff
		}
		d := backoff
		for i := 0; i < attempt && d < maxSleep; i++ {
			d <<= 1
		}
		if d > maxSleep {
			d = maxSleep
		}
		time.Sleep(d/2 + time.Duration(rand.Int63n(int64(d))))
	}
}
