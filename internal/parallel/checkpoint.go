package parallel

import (
	"sort"
	"sync"

	"light/internal/engine"
	"light/internal/graph"
	"light/internal/supervise"
)

// unitID identifies one unit of work — a claimed root chunk or a
// donated frame — in the checkpoint ledger. 0 is the pseudo-root: the
// already-committed state a resumed run starts from.
type unitID int64

// unit is the ledger's record of one work unit. A unit is *done* when
// the worker executing it returned cleanly, and *committed* when its
// whole ancestry is also done — only then is its result delta folded
// into the checkpointable base. The distinction matters because a
// donated frame's subtree is carved out of its donor's loop: if the
// donor never finishes, a resumed run re-executes the donor's unit in
// full (donation decisions are not replayed), which re-covers the
// frame's subtree. Committing the frame's delta early would then count
// those matches twice.
type unit struct {
	parent    unitID
	done      bool
	committed bool
	delta     engine.Result
	lo, hi    int64         // root-slice index range; frames use -1
	frame     *engine.Frame // non-nil for frame units until commit
	children  []unitID
}

// ledger tracks which work units have committed, accumulating the
// exactly-once result base and completed root ranges a checkpoint
// snapshot persists. A nil *ledger is valid and inert, so the
// scheduler hot loop calls it unconditionally.
type ledger struct {
	mu    sync.Mutex
	next  unitID
	units map[unitID]*unit
	roots []graph.VertexID // the run's root slice, for index→id conversion
	done  []supervise.RootRange
	base  engine.Result
	fp    uint64
	werr  error // most recent periodic checkpoint write failure
}

// newLedger starts a ledger for a run over roots, seeded with the
// committed state (base result and done ranges) of the checkpoint the
// run resumes from, if any.
func newLedger(roots []graph.VertexID, fp uint64, base engine.Result, done []supervise.RootRange) *ledger {
	l := &ledger{
		units: map[unitID]*unit{},
		roots: roots,
		base:  base,
		fp:    fp,
	}
	l.done = append(l.done, done...)
	return l
}

// beginChunk registers a claimed root chunk [lo, hi) (indices into the
// run's root slice) and returns its unit.
//
//lightvet:ignore hotpath -- ledger bookkeeping runs once per chunk, not per node
func (l *ledger) beginChunk(lo, hi int64) unitID {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	l.units[l.next] = &unit{parent: 0, lo: lo, hi: hi}
	return l.next
}

// beginFrame registers a donated frame under the unit that donated it
// (0 for frames seeded from a loaded checkpoint, whose covering work
// is already committed). Only dynamic hook plumbing reaches it, so it
// carries no hotpath obligation to suppress.
func (l *ledger) beginFrame(parent unitID, f *engine.Frame) unitID {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	l.units[l.next] = &unit{parent: parent, lo: -1, hi: -1, frame: f}
	if pu := l.units[parent]; pu != nil {
		pu.children = append(pu.children, l.next)
	}
	return l.next
}

// finish marks a unit done with its result delta and commits it — and
// any buffered done descendants — once its ancestry is committed.
//
//lightvet:ignore hotpath -- ledger bookkeeping runs once per chunk/frame, not per node
func (l *ledger) finish(id unitID, delta engine.Result) {
	if l == nil || id == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	u := l.units[id]
	if u == nil || u.done {
		return
	}
	u.done = true
	// Lane counters alias the enumerator's persistent per-lane buffer,
	// which the worker resets on its next chunk; a stored delta must
	// own its copy.
	delta.Lanes = append([]engine.LaneCounts(nil), delta.Lanes...)
	u.delta = delta
	if l.parentCommitted(u) {
		l.commit(id, u)
	}
}

// parentCommitted reports whether a unit's parent has committed. A
// parent missing from the map has committed and been pruned.
func (l *ledger) parentCommitted(u *unit) bool {
	if u.parent == 0 {
		return true
	}
	pu := l.units[u.parent]
	return pu == nil || pu.committed
}

// commit folds the unit's delta into the base, records its root range,
// cascades into buffered done children, and prunes the unit. Callers
// hold l.mu.
func (l *ledger) commit(id unitID, u *unit) {
	u.committed = true
	l.base.Add(u.delta)
	if u.frame == nil && u.lo >= 0 {
		l.appendRootRanges(u.lo, u.hi)
	}
	u.frame = nil
	children := u.children
	delete(l.units, id)
	for _, c := range children {
		if cu := l.units[c]; cu != nil && cu.done && !cu.committed {
			l.commit(c, cu)
		}
	}
}

// appendRootRanges converts the root-slice index range [lo, hi) into
// vertex-id ranges (the slice may have holes after a resume) and
// appends them to the committed set. Callers hold l.mu.
func (l *ledger) appendRootRanges(lo, hi int64) {
	for i := lo; i < hi; {
		j := i + 1
		for j < hi && l.roots[j] == l.roots[j-1]+1 {
			j++
		}
		l.done = append(l.done, supervise.RootRange{Lo: l.roots[i], Hi: l.roots[j-1] + 1})
		i = j
	}
}

// noteWriteErr records a periodic checkpoint write failure. A later
// successful write supersedes it (the on-disk state is good again).
func (l *ledger) noteWriteErr(err error) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.werr = err
	l.mu.Unlock()
}

// snapshot captures the committed state as a persistable checkpoint:
// the base result, merged done ranges, and every outstanding frame
// whose covering work is committed (frames under an uncommitted
// ancestor are omitted — re-executing that ancestor re-covers them).
func (l *ledger) snapshot(cursor int64) *supervise.Checkpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	ck := &supervise.Checkpoint{
		Fingerprint: l.fp,
		Cursor:      cursor,
		Base:        l.base,
		Done:        mergeRanges(l.done),
	}
	// The base's lane counters keep accumulating after the lock drops;
	// the snapshot must own a stable copy for the file write.
	ck.Base.Lanes = append([]engine.LaneCounts(nil), l.base.Lanes...)
	// Keep the stored set compact; the merge result is authoritative.
	l.done = ck.Done
	ids := make([]unitID, 0, len(l.units))
	for id := range l.units {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		u := l.units[id]
		if u.frame != nil && !u.done && l.parentCommitted(u) {
			ck.Frames = append(ck.Frames, u.frame)
		}
	}
	return ck
}

// mergeRanges sorts and coalesces overlapping or adjacent root ranges.
func mergeRanges(rs []supervise.RootRange) []supervise.RootRange {
	if len(rs) == 0 {
		return nil
	}
	sorted := append([]supervise.RootRange(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo {
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].Hi < sorted[j].Hi
	})
	out := sorted[:1]
	for _, r := range sorted[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// pendingRoots returns the ascending root vertex ids of an n-vertex
// graph not covered by the committed ranges — the roots a resumed run
// still has to enumerate.
func pendingRoots(n int, done []supervise.RootRange) []graph.VertexID {
	merged := mergeRanges(done)
	roots := make([]graph.VertexID, 0, n)
	next := int64(0)
	for _, r := range merged {
		for v := next; v < int64(r.Lo) && v < int64(n); v++ {
			roots = append(roots, graph.VertexID(v))
		}
		if int64(r.Hi) > next {
			next = int64(r.Hi)
		}
	}
	for v := next; v < int64(n); v++ {
		roots = append(roots, graph.VertexID(v))
	}
	return roots
}
