package parallel

import (
	"sync"
	"testing"
	"time"

	"light/internal/engine"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

func compile(t *testing.T, p *pattern.Pattern, mode plan.Mode) *plan.Plan {
	t.Helper()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], mode)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func sequentialCount(t *testing.T, g *graph.Graph, pl *plan.Plan) uint64 {
	t.Helper()
	res, err := engine.New(g, pl, engine.Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Matches
}

func TestParallelMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ba":   gen.BarabasiAlbert(400, 5, 1),
		"rmat": gen.RMAT(9, 6, 2),
		"star": gen.Star(300), // one hub: the worst case for RootChunk
	}
	pats := []*pattern.Pattern{pattern.Triangle(), pattern.P2(), pattern.P4()}
	for gname, g := range graphs {
		for _, p := range pats {
			pl := compile(t, p, plan.ModeLIGHT)
			want := sequentialCount(t, g, pl)
			for _, sched := range []Scheduler{WorkStealing, RootChunk} {
				for _, workers := range []int{1, 2, 4, 8} {
					res, err := Run(g, pl, Options{Workers: workers, Scheduler: sched, ChunkSize: 16, MinSplit: 4}, nil)
					if err != nil {
						t.Fatal(err)
					}
					if res.Matches != want {
						t.Fatalf("%s/%s %v workers=%d: got %d, want %d",
							gname, p.Name(), sched, workers, res.Matches, want)
					}
				}
			}
		}
	}
}

func TestParallelAllModes(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 9)
	p := pattern.P5()
	for _, mode := range []plan.Mode{plan.ModeSE, plan.ModeLM, plan.ModeMSC, plan.ModeLIGHT} {
		pl := compile(t, p, mode)
		want := sequentialCount(t, g, pl)
		res, err := Run(g, pl, Options{Workers: 6, ChunkSize: 8, MinSplit: 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want {
			t.Fatalf("mode %s: got %d, want %d", mode.Name(), res.Matches, want)
		}
	}
}

func TestWorkStealingActuallySteals(t *testing.T) {
	// A hub-dominated graph with tiny chunks: all the work hides under
	// few roots, so donation must kick in for other workers to help.
	g := gen.BarabasiAlbert(2000, 8, 4)
	pl := compile(t, pattern.P3(), plan.ModeLIGHT)
	res, err := Run(g, pl, Options{Workers: 8, ChunkSize: 1024, MinSplit: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialCount(t, g, pl)
	if res.Matches != want {
		t.Fatalf("got %d, want %d", res.Matches, want)
	}
	if res.Donations == 0 || res.Steals == 0 {
		t.Logf("warning: no stealing observed (donations=%d steals=%d); load may have been balanced", res.Donations, res.Steals)
	}
	if res.Steals > res.Donations {
		t.Fatalf("steals %d > donations %d", res.Steals, res.Donations)
	}
}

func TestParallelVisitor(t *testing.T) {
	g := gen.Complete(10)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	var mu sync.Mutex
	seen := map[[3]graph.VertexID]bool{}
	res, err := Run(g, pl, Options{Workers: 4, ChunkSize: 2}, func(m []graph.VertexID) bool {
		mu.Lock()
		defer mu.Unlock()
		key := [3]graph.VertexID{m[0], m[1], m[2]}
		if seen[key] {
			t.Errorf("duplicate %v", key)
		}
		seen[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 120 || len(seen) != 120 {
		t.Fatalf("C(10,3) = 120, got matches=%d seen=%d", res.Matches, len(seen))
	}
}

func TestParallelEarlyStop(t *testing.T) {
	g := gen.Complete(40)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	var mu sync.Mutex
	calls := 0
	res, err := Run(g, pl, Options{Workers: 4, ChunkSize: 1}, func(m []graph.VertexID) bool {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return calls < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("expected Stopped")
	}
	if res.Matches >= 9880 { // far fewer than the full C(40,3)
		t.Fatalf("early stop ineffective: %d matches", res.Matches)
	}
}

func TestParallelTimeLimit(t *testing.T) {
	g := gen.Complete(150)
	pl := compile(t, pattern.Clique(5), plan.ModeLIGHT)
	start := time.Now()
	_, err := Run(g, pl, Options{Workers: 4, Engine: engine.Options{TimeLimit: 50 * time.Millisecond}}, nil)
	if err != engine.ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("time limit not enforced promptly: %v", elapsed)
	}
}

func TestTimeLimitSpansChunks(t *testing.T) {
	// Regression: the limit must be absolute across the whole run, not
	// restarted per root chunk. With ChunkSize 1 there are many chunks,
	// each heavy; the old per-chunk clock never expired.
	g := gen.Complete(300)
	pl := compile(t, pattern.Clique(4), plan.ModeLIGHT)
	start := time.Now()
	_, err := Run(g, pl, Options{
		Workers:   2,
		ChunkSize: 1,
		Engine:    engine.Options{TimeLimit: 300 * time.Millisecond},
	}, nil)
	if err != engine.ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("limit not absolute: ran %v", elapsed)
	}
}

func TestCandidateMemoryScalesWithWorkers(t *testing.T) {
	g := gen.BarabasiAlbert(500, 5, 6)
	pl := compile(t, pattern.P5(), plan.ModeLIGHT)
	res1, err := Run(g, pl, Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res4, err := Run(g, pl, Options{Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res4.CandidateMemBytes != 4*res1.CandidateMemBytes {
		t.Fatalf("memory %d with 4 workers, %d with 1 (want 4×)", res4.CandidateMemBytes, res1.CandidateMemBytes)
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers < 1 || o.ChunkSize < 1 || o.MinSplit < 1 {
		t.Fatalf("bad defaults: %+v", o)
	}
	if WorkStealing.String() != "WorkStealing" || RootChunk.String() != "RootChunk" {
		t.Fatal("scheduler names")
	}
}

func TestManyWorkersSmallGraph(t *testing.T) {
	// More workers than roots must still terminate and be correct.
	g := gen.Complete(6)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	res, err := Run(g, pl, Options{Workers: 32, ChunkSize: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 20 {
		t.Fatalf("got %d, want 20", res.Matches)
	}
}

func TestStaticPartitionCorrectAndImbalanced(t *testing.T) {
	// The paper's §VIII-A observation: naive static partitioning of
	// C(π[1]) is correct but badly load-imbalanced on skewed graphs,
	// because degree-ordered ids concentrate the heavy hubs in the last
	// worker's range.
	g := gen.BarabasiAlbert(2000, 8, 4)
	pl := compile(t, pattern.P3(), plan.ModeLIGHT)
	want := sequentialCount(t, g, pl)

	static, err := Run(g, pl, Options{Workers: 8, Scheduler: StaticPartition}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if static.Matches != want {
		t.Fatalf("static partition wrong count: %d, want %d", static.Matches, want)
	}
	if len(static.PerWorkerNodes) != 8 {
		t.Fatalf("per-worker accounting missing: %v", static.PerWorkerNodes)
	}
	// The intrinsic work distribution of the static ranges, measured
	// deterministically by running each range on one sequential engine
	// (per-goroutine node counts on a single-core box reflect the Go
	// scheduler, not the workload). The paper's point: equal-width root
	// ranges carry very unequal work on skewed graphs.
	workers := 8
	e := engine.New(g, pl, engine.Options{})
	n := g.NumVertices()
	roots := make([]graph.VertexID, n)
	for i := range roots {
		roots[i] = graph.VertexID(i)
	}
	var max, sum uint64
	for w := 0; w < workers; w++ {
		res, err := e.RunRoots(roots[w*n/workers:(w+1)*n/workers], nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Nodes
		if res.Nodes > max {
			max = res.Nodes
		}
	}
	imbalance := float64(max) * float64(workers) / float64(sum)
	t.Logf("static range imbalance (max/mean nodes): %.2f", imbalance)
	if imbalance < 1.5 {
		t.Fatalf("static partitioning unexpectedly balanced (%.2f) — test graph not skewed enough", imbalance)
	}
}

func TestStaticPartitionEarlyStopAndLimit(t *testing.T) {
	g := gen.Complete(40)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	n := 0
	var mu sync.Mutex
	res, err := Run(g, pl, Options{Workers: 4, Scheduler: StaticPartition}, func(m []graph.VertexID) bool {
		mu.Lock()
		defer mu.Unlock()
		n++
		return n < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("expected Stopped")
	}
	_, err = Run(gen.Complete(150), compile(t, pattern.Clique(5), plan.ModeLIGHT),
		Options{Workers: 2, Scheduler: StaticPartition, Engine: engine.Options{TimeLimit: 50 * time.Millisecond}}, nil)
	if err != engine.ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}
