package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"light/internal/engine"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
	"light/internal/supervise"
)

// TestContextCancellationMidRun cancels from inside the visitor after a
// few matches: every scheduler must stop promptly, report the partial
// count with Stopped=true, and return context.Canceled.
func TestContextCancellationMidRun(t *testing.T) {
	// The workload must dwarf the engine's stop-poll interval so the
	// cancellation is observed long before the run could finish.
	g := gen.Complete(160)
	pl := compile(t, pattern.Clique(5), plan.ModeLIGHT)
	for _, sched := range []Scheduler{WorkStealing, RootChunk, StaticPartition} {
		t.Run(sched.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var seen atomic.Uint64
			res, err := RunContext(ctx, g, pl, Options{
				Workers:   4,
				Scheduler: sched,
				ChunkSize: 8,
			}, func(m []graph.VertexID) bool {
				if seen.Add(1) == 5 {
					cancel()
				}
				return true
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !res.Stopped {
				t.Fatal("cancelled run must report Stopped")
			}
			if res.Matches < 5 {
				t.Fatalf("partial count %d lost visited matches", res.Matches)
			}
		})
	}
}

// TestContextDeadlineMidRun lets a context deadline fire during a long
// count-only run.
func TestContextDeadlineMidRun(t *testing.T) {
	g := gen.Complete(160)
	pl := compile(t, pattern.Clique(5), plan.ModeLIGHT)
	for _, sched := range []Scheduler{WorkStealing, RootChunk, StaticPartition} {
		t.Run(sched.String(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			res, err := RunContext(ctx, g, pl, Options{Workers: 4, Scheduler: sched}, nil)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if !res.Stopped {
				t.Fatal("deadline-stopped run must report Stopped")
			}
		})
	}
}

// TestContextAlreadyCancelled: a pre-cancelled context stops a long run
// at its first poll without crashing. The workload is large enough that
// it cannot finish before the stop flag is observed.
func TestContextAlreadyCancelled(t *testing.T) {
	g := gen.Complete(160)
	pl := compile(t, pattern.Clique(5), plan.ModeLIGHT)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, g, pl, Options{Workers: 4}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Stopped {
		t.Fatalf("pre-cancelled long run completed: %+v", res.Result)
	}
}

// TestVisitorPanicIsIsolated: a panic inside the user visitor must come
// back as a *supervise.PanicError with all workers exited — not crash
// the process or deadlock the pool.
func TestVisitorPanicIsIsolated(t *testing.T) {
	g := gen.BarabasiAlbert(500, 6, 3)
	pl := compile(t, pattern.Triangle(), plan.ModeLIGHT)
	for _, sched := range []Scheduler{WorkStealing, RootChunk, StaticPartition} {
		t.Run(sched.String(), func(t *testing.T) {
			var seen atomic.Uint64
			done := make(chan struct{})
			var res Result
			var err error
			go func() {
				defer close(done)
				res, err = Run(g, pl, Options{Workers: 4, Scheduler: sched, ChunkSize: 8},
					func(m []graph.VertexID) bool {
						if seen.Add(1) == 7 {
							panic("visitor exploded")
						}
						return true
					})
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("pool deadlocked after visitor panic")
			}
			var pe *supervise.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *supervise.PanicError", err)
			}
			if pe.Value != "visitor exploded" {
				t.Fatalf("panic value %v", pe.Value)
			}
			if !res.Stopped {
				t.Fatal("panic-stopped run must report Stopped")
			}
		})
	}
}

// TestTimeLimitStillSentinel: the supervised error path must keep
// returning the exact engine.ErrTimeLimit sentinel for deadline runs.
func TestTimeLimitStillSentinel(t *testing.T) {
	g := gen.Complete(160)
	pl := compile(t, pattern.Clique(5), plan.ModeLIGHT)
	_, err := Run(g, pl, Options{
		Workers: 4,
		Engine:  engine.Options{TimeLimit: 20 * time.Millisecond},
	}, nil)
	if !errors.Is(err, engine.ErrTimeLimit) {
		t.Fatalf("err = %v, want engine.ErrTimeLimit", err)
	}
}
