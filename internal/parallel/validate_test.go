package parallel

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"light/internal/engine"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
	"light/internal/supervise"
)

// TestNegativeDeltaRejectedAtEntry pins the parallel-entry validation of
// Options.Engine.Delta: a negative δ must be rejected as an error before
// workers spawn (engine.New panics on it, and a supervised worker panic
// is a worse failure report).
func TestNegativeDeltaRejectedAtEntry(t *testing.T) {
	g := gen.Complete(6)
	p := pattern.Triangle()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(g, pl, Options{Engine: engine.Options{Delta: -5}, Workers: 2}, nil)
	if err == nil || !strings.Contains(err.Error(), "Delta") {
		t.Fatalf("Run with Delta=-5: err = %v, want Delta validation error", err)
	}
}

// TestResumeRejectsMaskCorruptedFrame writes a real checkpoint with an
// outstanding donated frame, corrupts the frame's MatMask so it
// disagrees with the σ prefix (CRC re-sealed, so only frame validation
// can catch it), and asserts the resume path refuses it.
func TestResumeRejectsMaskCorruptedFrame(t *testing.T) {
	g := gen.BarabasiAlbert(300, 5, 11)
	p := pattern.P4()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.ckpt")
	opts := Options{
		Workers:    4,
		Scheduler:  WorkStealing,
		ChunkSize:  4,
		MinSplit:   2,
		Checkpoint: &CheckpointOptions{Path: path, Interval: time.Hour},
	}
	// Interrupt mid-run so the final snapshot carries outstanding state.
	n := 0
	_, err = Run(g, pl, opts, func(m []graph.VertexID) bool {
		n++
		return n < 50
	})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := supervise.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Frames) == 0 {
		// Donation timing can leave no outstanding frames; synthesize one
		// the way Snapshot would, so the corruption still goes through the
		// full load/validate path.
		sigmaIdx := -1
		for i := 1; i < len(pl.Sigma); i++ {
			if pl.Sigma[i].Mode == plan.Mat {
				sigmaIdx = i
				break
			}
		}
		ck.Frames = append(ck.Frames, &engine.Frame{
			SigmaIdx:  sigmaIdx,
			Assigned:  make([]graph.VertexID, p.NumVertices()),
			MatMask:   pl.MatMaskBefore(sigmaIdx),
			Cands:     make([][]graph.VertexID, p.NumVertices()),
			Remaining: []graph.VertexID{0, 1, 2},
		})
	}
	// Sanity: the untampered checkpoint resumes cleanly.
	clean := opts
	clean.Resume = ck
	if _, err := Run(g, pl, clean, nil); err != nil {
		t.Fatalf("untampered resume failed: %v", err)
	}

	ck.Frames[0].MatMask ^= 1 << uint(pl.Pi[0]) // flip the root bit
	corrupt := opts
	corrupt.Resume = ck
	_, err = Run(g, pl, corrupt, nil)
	if err == nil || !strings.Contains(err.Error(), "inconsistent with σ") {
		t.Fatalf("resume with mask-corrupted frame: err = %v, want frame validation error", err)
	}
}
