package parallel

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"light/internal/admission"
	"light/internal/faultpoint"
)

// stackDumpCap bounds the all-goroutine stack capture embedded in a
// stall diagnostic (64 KiB is enough for every pool goroutine's frames
// without letting a huge process image bloat the RunReport).
const stackDumpCap = 64 << 10

// watchdog samples every worker's progress heartbeat each wd.Interval
// and fires after wd.Patience consecutive intervals in which a busy
// worker (odd epoch) advanced neither its epoch nor its beat. A worker
// parked on the frame queue has an even epoch and is never flagged; a
// slow-but-advancing worker moves its beat (the engine bumps it every
// 8192 σ steps) and is never flagged either — only a wedged one (e.g.
// a visit callback that stopped returning) trips the patience counter.
func (p *pool) watchdog(wd *admission.WatchdogConfig, stop <-chan struct{}) {
	n := len(p.beats)
	lastBeat := make([]uint64, n)
	lastEpoch := make([]uint64, n)
	still := make([]int, n)
	fired := make([]bool, n)
	patience := wd.Patience
	if patience <= 0 {
		patience = 5
	}
	ticker := time.NewTicker(wd.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if p.stop.Load() {
				return
			}
			for w := 0; w < n; w++ {
				epoch := p.epochs[w].Load()
				beat := p.beats[w].Load()
				busy := epoch&1 == 1
				if busy && epoch == lastEpoch[w] && beat == lastBeat[w] {
					still[w]++
				} else {
					still[w] = 0
					fired[w] = false
				}
				lastEpoch[w] = epoch
				lastBeat[w] = beat
				if still[w] >= patience && !fired[w] {
					fired[w] = true
					p.fireStall(w, wd, still[w])
				}
			}
		}
	}
}

// fireStall records one stall: counter, first-wins diagnostic dump
// (per-worker progress table + all-goroutine stacks), and — when the
// watchdog is configured to cancel — cooperative termination of the
// pool, which RunContext surfaces as admission.ErrStalled.
func (p *pool) fireStall(w int, wd *admission.WatchdogConfig, intervals int) {
	if err := faultpoint.Hit(faultpoint.PointWatchdogFire); err != nil {
		// An injected fault suppresses this firing (chaos coverage for
		// the diagnostic path itself).
		return
	}
	p.stalls.Add(1)
	var b strings.Builder
	fmt.Fprintf(&b, "stall watchdog: worker %d made no progress for %d intervals of %v\n",
		w, intervals, wd.Interval)
	b.WriteString("per-worker progress (beat = engine polls/8192, epoch odd = executing):\n")
	for i := range p.beats {
		fmt.Fprintf(&b, "  worker %d: beat=%d epoch=%d\n",
			i, p.beats[i].Load(), p.epochs[i].Load())
	}
	buf := make([]byte, stackDumpCap)
	b.WriteString("goroutine stacks:\n")
	b.Write(buf[:runtime.Stack(buf, true)])
	p.mu.Lock()
	if p.stallDump == "" {
		p.stallDump = b.String()
	}
	p.mu.Unlock()
	if wd.Cancel {
		p.stallCancelled.Store(true)
		p.stop.Store(true)
		p.wakeAll()
	}
}
