//go:build !faultinject

package faultpoint

// Enabled reports whether fault injection is compiled into this binary.
// In the default build it is not, and every other function here is a
// no-op the compiler can erase.
func Enabled() bool { return false }

// Set is a no-op in production builds.
func Set(name string, fn func() error) {}

// Clear is a no-op in production builds.
func Clear(name string) {}

// Reset is a no-op in production builds.
func Reset() {}

// Hit reports no fault; in production builds it compiles to nothing.
func Hit(name string) error { return nil }
