//go:build faultinject

package faultpoint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRegistryLifecycle(t *testing.T) {
	defer Reset()
	if !Enabled() {
		t.Fatal("faultinject build must report Enabled")
	}
	if err := Hit("nope"); err != nil {
		t.Fatalf("unregistered point fired: %v", err)
	}
	boom := errors.New("boom")
	Set("a", func() error { return boom })
	if err := Hit("a"); !errors.Is(err, boom) {
		t.Fatalf("Hit(a) = %v, want boom", err)
	}
	if err := Hit("b"); err != nil {
		t.Fatalf("sibling point fired: %v", err)
	}
	Clear("a")
	if err := Hit("a"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed = %d after clear, want 0", armed.Load())
	}
	Set("a", func() error { return boom })
	Set("a", func() error { return nil }) // replace must not double-arm
	if armed.Load() != 1 {
		t.Fatalf("armed = %d after replace, want 1", armed.Load())
	}
	Reset()
	if armed.Load() != 0 {
		t.Fatalf("armed = %d after Reset, want 0", armed.Load())
	}
}

func TestHelpers(t *testing.T) {
	defer Reset()
	pan := PanicOnce("once")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PanicOnce did not panic on first call")
			}
		}()
		pan() //lightvet:ignore hygiene -- the panic is the result under test
	}()
	if err := pan(); err != nil {
		t.Fatalf("PanicOnce second call: %v", err)
	}

	boom := errors.New("io down")
	ft := FailTimes(2, boom)
	if err := ft(); !errors.Is(err, boom) {
		t.Fatal("FailTimes first call should fail")
	}
	if err := ft(); !errors.Is(err, boom) {
		t.Fatal("FailTimes second call should fail")
	}
	if err := ft(); err != nil {
		t.Fatalf("FailTimes third call: %v", err)
	}

	start := time.Now()
	if err := Delay(5 * time.Millisecond)(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("Delay returned early")
	}
}

func TestConcurrentHits(t *testing.T) {
	defer Reset()
	Set("p", FailTimes(100, errors.New("x")))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				Hit("p") //lightvet:ignore hygiene -- errors expected and irrelevant here
			}
		}()
	}
	wg.Wait()
}
