//go:build !faultinject

package faultpoint

import (
	"errors"
	"testing"
)

// TestProductionBuildIsInert proves the default build never fires a
// hook: Set is a no-op and Hit always reports no fault, so the
// injection sites in the engine cost one call that returns nil.
func TestProductionBuildIsInert(t *testing.T) {
	if Enabled() {
		t.Fatal("production build must not report Enabled")
	}
	Set(PointWorkerStart, func() error { return errors.New("boom") })
	defer Reset()
	if err := Hit(PointWorkerStart); err != nil {
		t.Fatalf("production Hit fired a hook: %v", err)
	}
	Clear(PointWorkerStart)
}
