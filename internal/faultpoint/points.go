// Package faultpoint is a named fault-injection-point registry for
// chaos testing the enumeration runtime. Production code calls
// Hit(name) at the places where faults matter (worker start, work
// donation, frame resume, checkpoint write, CSR read); chaos tests
// built with the "faultinject" tag register hooks at those names that
// panic, sleep, or fail. In the default build every function in this
// package compiles to a no-op, so the injection sites cost nothing.
package faultpoint

// Canonical injection-point names. Production call sites and chaos
// tests refer to these constants so they cannot drift apart.
const (
	// PointWorkerStart fires as each parallel worker begins, before it
	// claims any work.
	PointWorkerStart = "parallel.worker.start"
	// PointDonate fires inside the donation hook while the scheduler
	// lock is held, just before a frame is snapshotted and published.
	PointDonate = "parallel.donate"
	// PointFrameResume fires after a worker takes a donated frame from
	// the queue and before it resumes execution.
	PointFrameResume = "parallel.frame.resume"
	// PointCheckpointWrite fires at the start of every checkpoint file
	// write (periodic and final).
	PointCheckpointWrite = "supervise.checkpoint.write"
	// PointCSRRead fires at the start of binary CSR deserialization.
	PointCSRRead = "graph.csr.read"
	// PointSlotGrant fires at the top of Governor.Admit, before any
	// slot bookkeeping.
	PointSlotGrant = "admission.slot.grant"
	// PointSlotReturn fires inside Admission.TryShed just before a
	// surplus slot is handed back; an injected error skips that shed.
	PointSlotReturn = "admission.slot.return"
	// PointBudgetCheck fires when the admission layer sizes a run's
	// worker pool against the memory budget headroom.
	PointBudgetCheck = "admission.budget.check"
	// PointWatchdogFire fires when the stall watchdog is about to
	// record a stall diagnostic; an injected error suppresses it.
	PointWatchdogFire = "admission.watchdog.fire"
	// PointBatchAdmit fires as a lane-batch run begins, after its
	// single admission grant and before the first compatibility group
	// executes.
	PointBatchAdmit = "lanes.batch.admit"
	// PointLaneFold fires when a finished lane group folds its
	// per-lane counters into the per-query metrics recorders.
	PointLaneFold = "lanes.fold"
	// PointCheckpointMask fires when a checkpoint about to be written
	// carries frames with a live lane mask (lane-batch state).
	PointCheckpointMask = "supervise.checkpoint.mask"
)
