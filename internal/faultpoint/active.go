//go:build faultinject

package faultpoint

import (
	"sync"
	"sync/atomic"
	"time"
)

// armed counts registered hooks so Hit can take a lock-free fast path
// while the registry is empty (the common state even in chaos builds).
var armed atomic.Int32

var (
	mu     sync.Mutex
	points = map[string]func() error{}
)

// Enabled reports whether fault injection is compiled into this binary.
func Enabled() bool { return true }

// Set registers fn to run at every Hit(name). A nil fn clears the
// point. Replacing an existing hook keeps the registry size stable.
func Set(name string, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	_, had := points[name]
	if fn == nil {
		if had {
			delete(points, name)
			armed.Add(-1)
		}
		return
	}
	points[name] = fn
	if !had {
		armed.Add(1)
	}
}

// Clear removes the hook at name, if any.
func Clear(name string) { Set(name, nil) }

// Reset removes every registered hook. Chaos tests defer it so one
// test's faults never leak into the next.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	clear(points)
}

// Hit runs the hook registered at name. With no hook registered it
// returns nil after a single atomic load.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := points[name]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// PanicOnce returns a hook that panics with msg on its first firing and
// is inert afterwards — the injected crash happens exactly once even if
// several workers pass the point.
func PanicOnce(msg string) func() error {
	var done atomic.Bool
	return func() error {
		if done.CompareAndSwap(false, true) {
			panic(msg)
		}
		return nil
	}
}

// FailTimes returns a hook that returns err for the first n firings and
// nil afterwards.
func FailTimes(n int, err error) func() error {
	var count atomic.Int64
	return func() error {
		if count.Add(1) <= int64(n) {
			return err
		}
		return nil
	}
}

// Delay returns a hook that sleeps for d on every firing and never
// fails — for widening race windows under -race.
func Delay(d time.Duration) func() error {
	return func() error {
		time.Sleep(d)
		return nil
	}
}
