package plan

import (
	"fmt"
	"strings"

	"light/internal/estimate"
)

// Explain renders the plan the way a database EXPLAIN would: the
// enumeration order, the execution order with per-operation detail
// (operands for COMP, symmetry checks for MAT), the anchor/free
// structure, and the cost-model breakdown under stats.
func (pl *Plan) Explain(stats estimate.GraphStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for %s\n", pl.Pattern.Name())
	fmt.Fprintf(&sb, "  enumeration order π: %s\n", vertexList(pl.Pi))
	if !pl.PO.Empty() {
		fmt.Fprintf(&sb, "  symmetry breaking:   %s\n", pl.PO)
	} else {
		sb.WriteString("  symmetry breaking:   (trivial automorphism group)\n")
	}
	fmt.Fprintf(&sb, "  lazy: %v, per-path intersections w: %d\n", pl.Lazy(), pl.WTotal())
	sb.WriteString("  execution order σ:\n")
	for i, op := range pl.Sigma {
		fmt.Fprintf(&sb, "    %2d. %-4s u%d", i, op.Mode, op.Vertex)
		switch op.Mode {
		case Comp:
			o := pl.Ops[op.Vertex]
			var parts []string
			for _, w := range o.K1 {
				parts = append(parts, fmt.Sprintf("N(φ(u%d))", w))
			}
			for _, w := range o.K2 {
				parts = append(parts, fmt.Sprintf("C(u%d)", w))
			}
			fmt.Fprintf(&sb, "  ← %s", strings.Join(parts, " ∩ "))
			if o.W() == 0 {
				sb.WriteString("  (aliased, 0 intersections)")
			}
		case Mat:
			if cs := pl.MatConstraints[i]; len(cs) > 0 {
				var parts []string
				for _, c := range cs {
					if c.Lower {
						parts = append(parts, fmt.Sprintf("v > φ(u%d)", c.Other))
					} else {
						parts = append(parts, fmt.Sprintf("v < φ(u%d)", c.Other))
					}
				}
				fmt.Fprintf(&sb, "  require %s", strings.Join(parts, ", "))
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("  anchors/free:\n")
	for pos := 1; pos < len(pl.Pi); pos++ {
		u := pl.Pi[pos]
		fmt.Fprintf(&sb, "    u%d: A=%s F=%s  |Φ| ≈ %.3g\n",
			u, maskList(pl.Anchors[u]), maskList(pl.Free[u]),
			stats.Subgraph(pl.Pattern, pl.Anchors[u]))
	}
	fmt.Fprintf(&sb, "  estimated cost (Eq. 8): %.4g  (α = %.2f)\n", pl.Cost(stats), stats.Alpha())
	return sb.String()
}

func vertexList(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("u%d", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func maskList(m uint32) string {
	if m == 0 {
		return "∅"
	}
	var parts []string
	for _, v := range maskVertices(m) {
		parts = append(parts, fmt.Sprintf("u%d", v))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
