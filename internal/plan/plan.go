// Package plan compiles a pattern graph into an executable enumeration
// plan: the enumeration order π (Section VI), the execution order σ of
// COMP/MAT operations (Algorithm 2), and the minimum-set-cover operands
// K1/K2 per pattern vertex (Algorithm 3). The enumeration engines in
// internal/engine interpret the compiled plan.
package plan

import (
	"fmt"
	"math/bits"
	"strings"

	"light/internal/estimate"
	"light/internal/pattern"
	"light/internal/setcover"
)

// OpMode distinguishes the two operations of the execution order σ.
type OpMode uint8

const (
	// Comp computes the candidate set of a pattern vertex.
	Comp OpMode = iota
	// Mat materializes a pattern vertex: extends the partial result by
	// mapping it to each candidate in turn.
	Mat
)

// String returns COMP or MAT.
func (m OpMode) String() string {
	if m == Comp {
		return "COMP"
	}
	return "MAT"
}

// Op is one σ entry: an operation applied to a pattern vertex.
type Op struct {
	Mode   OpMode
	Vertex pattern.Vertex
}

// Operands are the inputs of one candidate-set computation (Equation 6):
// C(u) = ∩_{w ∈ K1} N(φ(w)) ∩ ∩_{w ∈ K2} C(w).
type Operands struct {
	K1 []pattern.Vertex // materialized vertices contributing neighbor lists
	K2 []pattern.Vertex // earlier vertices contributing candidate sets
}

// W returns w_u, the number of set intersections one computation costs
// (Equation 7): |K1| + |K2| − 1, or 0 when there is at most one operand.
func (o Operands) W() int {
	w := len(o.K1) + len(o.K2) - 1
	if w < 0 {
		return 0
	}
	return w
}

// Constraint is a symmetry-breaking check applied when materializing a
// vertex: the new mapping must relate to the mapping of Other as
// indicated. Lower means φ(Other) must be below the new data vertex
// (Other < u), i.e. the new vertex needs ids greater than φ(Other).
type Constraint struct {
	Other pattern.Vertex
	Lower bool // true: require φ(Other) < v; false: require v < φ(Other)
}

// Plan is a compiled enumeration plan for one pattern. Immutable once
// built; safe for concurrent use by many workers.
type Plan struct {
	Pattern *pattern.Pattern
	PO      *pattern.PartialOrder

	Pi    []pattern.Vertex // enumeration order π; Pi[0] is the root vertex
	Sigma []Op             // execution order; Sigma[0] is always (MAT, Pi[0])

	// Ops[u] holds the candidate computation operands for vertex u
	// (unused for Pi[0], whose candidate set is V(G)).
	Ops []Operands

	// MatConstraints[i] lists the symmetry-breaking checks to apply at
	// σ[i] when σ[i] is a MAT: each constraint references a vertex whose
	// MAT precedes σ[i].
	MatConstraints [][]Constraint

	// PosInPi[u] is the position of u in π.
	PosInPi []int

	// Anchors[u] and Free[u] are the anchor/free vertex masks of u
	// (Definition IV.1); meaningful for u ≠ Pi[0].
	Anchors []uint32
	Free    []uint32

	// MatOrder is π′: the vertices in the order their MAT ops appear in σ.
	MatOrder []pattern.Vertex
}

// MatMaskBefore returns the bitmask of pattern vertices whose MAT
// operation appears in σ[:i]. Because σ is a linear sequence, this is
// exactly the set of materialized vertices (root included) when the
// search is suspended at σ[i]; the engine uses it to validate resumable
// frames against the plan.
func (pl *Plan) MatMaskBefore(i int) uint32 {
	var mask uint32
	if i > len(pl.Sigma) {
		i = len(pl.Sigma)
	}
	for _, op := range pl.Sigma[:i] {
		if op.Mode == Mat {
			mask |= 1 << uint(op.Vertex)
		}
	}
	return mask
}

// Lazy reports whether the plan defers any materialization (i.e. σ is not
// the strictly interleaved COMP/MAT sequence).
func (pl *Plan) Lazy() bool {
	for u, free := range pl.Free {
		if u != pl.Pi[0] && free != 0 {
			return true
		}
	}
	return false
}

// WTotal returns Σ_u w_u over all vertices, a static measure of per-path
// intersection work.
func (pl *Plan) WTotal() int {
	total := 0
	for u := range pl.Ops {
		if u == pl.Pi[0] {
			continue
		}
		total += pl.Ops[u].W()
	}
	return total
}

// String renders π, σ and the operands for debugging and logs.
func (pl *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "π=%v σ=[", pl.Pi)
	for i, op := range pl.Sigma {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v(u%d)", op.Mode, op.Vertex)
	}
	sb.WriteString("] operands{")
	for u := range pl.Ops {
		if u == pl.Pi[0] {
			continue
		}
		fmt.Fprintf(&sb, " u%d:K1=%v,K2=%v", u, pl.Ops[u].K1, pl.Ops[u].K2)
	}
	sb.WriteString(" }")
	return sb.String()
}

// Mode selects which of the paper's optimizations a plan uses; the four
// combinations of the first two fields are the four algorithms of
// Section VIII-B1.
type Mode struct {
	LazyMaterialization bool // Algorithm 2's deferred σ (LM)
	MinSetCover         bool // Algorithm 3's operands (MSC)
	// GreedyCover swaps Algorithm 3's exact minimum set cover for the
	// ln(n)-approximate greedy solver — an ablation of the paper's
	// choice to pay O(4^n) for exactness.
	GreedyCover bool
}

// Modes for the four evaluated algorithms.
var (
	ModeSE    = Mode{LazyMaterialization: false, MinSetCover: false}
	ModeLM    = Mode{LazyMaterialization: true, MinSetCover: false}
	ModeMSC   = Mode{LazyMaterialization: false, MinSetCover: true}
	ModeLIGHT = Mode{LazyMaterialization: true, MinSetCover: true}
)

// Name returns SE, LM, MSC, or LIGHT (ignoring the cover-solver knob).
func (m Mode) Name() string {
	switch {
	case !m.LazyMaterialization && !m.MinSetCover:
		return "SE"
	case m.LazyMaterialization && !m.MinSetCover:
		return "LM"
	case !m.LazyMaterialization && m.MinSetCover:
		return "MSC"
	}
	return "LIGHT"
}

// backwardMask returns N+π(u) for the vertex at position pos in pi, as a
// bitmask over pattern vertices.
func backwardMask(p *pattern.Pattern, pi []pattern.Vertex, pos int) uint32 {
	var before uint32
	for i := 0; i < pos; i++ {
		before |= 1 << uint(pi[i])
	}
	return p.NeighborMask(pi[pos]) & before
}

// IsConnectedOrder reports whether π is a connected enumeration order:
// every vertex after the first has at least one backward neighbor.
func IsConnectedOrder(p *pattern.Pattern, pi []pattern.Vertex) bool {
	for pos := 1; pos < len(pi); pos++ {
		if backwardMask(p, pi, pos) == 0 {
			return false
		}
	}
	return true
}

// executionOrder is Algorithm 2's GenerateExecutionOrder: MAT every
// still-unvisited backward neighbor of each vertex (in π order) before
// its COMP, then MAT the leftovers in π order.
func executionOrder(p *pattern.Pattern, pi []pattern.Vertex) []Op {
	n := len(pi)
	visited := make([]bool, p.NumVertices())
	sigma := make([]Op, 0, 2*n-1)
	for pos := 1; pos < n; pos++ {
		u := pi[pos]
		back := backwardMask(p, pi, pos)
		for i := 0; i < pos; i++ {
			w := pi[i]
			if back&(1<<uint(w)) != 0 && !visited[w] {
				visited[w] = true
				sigma = append(sigma, Op{Mat, w})
			}
		}
		sigma = append(sigma, Op{Comp, u})
	}
	for _, u := range pi {
		if !visited[u] {
			visited[u] = true
			sigma = append(sigma, Op{Mat, u})
		}
	}
	return sigma
}

// interleavedOrder is SE's implicit execution order: (MAT π[1]),
// (COMP π[2]), (MAT π[2]), … — compute then immediately materialize.
func interleavedOrder(pi []pattern.Vertex) []Op {
	sigma := make([]Op, 0, 2*len(pi)-1)
	sigma = append(sigma, Op{Mat, pi[0]})
	for _, u := range pi[1:] {
		sigma = append(sigma, Op{Comp, u}, Op{Mat, u})
	}
	return sigma
}

// operands computes K1/K2 per vertex. With useCover (Algorithm 3), the
// universe N+(u) is covered by a minimum sub-collection of singletons and
// reusable candidate sets N+(u′) ⊆ N+(u) of earlier vertices; otherwise
// (SE semantics) K1 = N+(u) and K2 = ∅. greedy selects the approximate
// solver instead of the exact one.
func operands(p *pattern.Pattern, pi []pattern.Vertex, useCover, greedy bool) []Operands {
	n := p.NumVertices()
	ops := make([]Operands, n)
	for pos := 1; pos < len(pi); pos++ {
		u := pi[pos]
		universe := backwardMask(p, pi, pos)
		if !useCover {
			ops[u] = Operands{K1: maskVertices(universe)}
			continue
		}
		// Collection: reusable candidate sets first (so the exact solver's
		// earliest-set tie-break prefers them), then singletons.
		type entry struct {
			mask uint32
			k2   pattern.Vertex // -1 for singletons
		}
		var entries []entry
		for j := 1; j < pos; j++ {
			w := pi[j]
			bw := backwardMask(p, pi, j)
			if bw != 0 && bw&universe == bw {
				entries = append(entries, entry{bw, w})
			}
		}
		for m := universe; m != 0; m &= m - 1 {
			w := pattern.Vertex(bits.TrailingZeros32(m))
			entries = append(entries, entry{1 << uint(w), -1})
		}
		sets := make([]uint32, len(entries))
		for i, e := range entries {
			sets[i] = e.mask
		}
		solver := setcover.Exact
		if greedy {
			solver = setcover.Greedy
		}
		cover, ok := solver(universe, sets)
		if !ok {
			// Cannot happen: singletons always cover. Fall back to SE.
			ops[u] = Operands{K1: maskVertices(universe)}
			continue
		}
		var o Operands
		for _, idx := range cover {
			e := entries[idx]
			if e.k2 >= 0 {
				o.K2 = append(o.K2, e.k2)
			} else {
				o.K1 = append(o.K1, bits.TrailingZeros32(e.mask))
			}
		}
		ops[u] = o
	}
	return ops
}

func maskVertices(m uint32) []pattern.Vertex {
	if m == 0 {
		return nil
	}
	out := make([]pattern.Vertex, 0, bits.OnesCount32(m))
	for ; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros32(m))
	}
	return out
}

// Compile builds the plan for pattern p with enumeration order pi,
// symmetry-breaking order po, and the given mode. pi must be a connected
// order; po may be nil for patterns with trivial automorphisms.
func Compile(p *pattern.Pattern, po *pattern.PartialOrder, pi []pattern.Vertex, mode Mode) (*Plan, error) {
	n := p.NumVertices()
	if len(pi) != n {
		return nil, fmt.Errorf("plan: order has %d vertices, pattern has %d", len(pi), n)
	}
	seen := uint32(0)
	for _, u := range pi {
		if u < 0 || u >= n || seen&(1<<uint(u)) != 0 {
			return nil, fmt.Errorf("plan: order %v is not a permutation of V(P)", pi)
		}
		seen |= 1 << uint(u)
	}
	if n > 1 && !IsConnectedOrder(p, pi) {
		return nil, fmt.Errorf("plan: order %v is not connected", pi)
	}
	if po == nil {
		po = &pattern.PartialOrder{}
	}

	pl := &Plan{Pattern: p, PO: po, Pi: pi}
	if mode.LazyMaterialization {
		pl.Sigma = executionOrder(p, pi)
	} else {
		pl.Sigma = interleavedOrder(pi)
	}
	// Algorithm 2 appends (MAT, π[1]) inside the loop for π[2]'s backward
	// neighbors; in both modes σ[0] must be (MAT, Pi[0]) because the
	// engine's root loop performs it.
	if pl.Sigma[0].Mode != Mat || pl.Sigma[0].Vertex != pi[0] {
		return nil, fmt.Errorf("plan: internal error: σ[0] = %v, want MAT u%d", pl.Sigma[0], pi[0])
	}
	pl.Ops = operands(p, pi, mode.MinSetCover, mode.GreedyCover)

	// Positions, anchors, free vertices, MAT order.
	pl.PosInPi = make([]int, n)
	for i, u := range pi {
		pl.PosInPi[u] = i
	}
	matPos := make([]int, n)  // σ index of each vertex's MAT
	compPos := make([]int, n) // σ index of each vertex's COMP (root: -1)
	compPos[pi[0]] = -1
	for i, op := range pl.Sigma {
		if op.Mode == Mat {
			matPos[op.Vertex] = i
			pl.MatOrder = append(pl.MatOrder, op.Vertex)
		} else {
			compPos[op.Vertex] = i
		}
	}
	pl.Anchors = make([]uint32, n)
	pl.Free = make([]uint32, n)
	for pos := 1; pos < n; pos++ {
		u := pi[pos]
		for i := 0; i < pos; i++ {
			w := pi[i]
			if matPos[w] < compPos[u] {
				pl.Anchors[u] |= 1 << uint(w)
			} else {
				pl.Free[u] |= 1 << uint(w)
			}
		}
	}

	// Symmetry-breaking checks: each constrained pair (a < b) is checked
	// at the later MAT of the two.
	pl.MatConstraints = make([][]Constraint, len(pl.Sigma))
	for a := 0; a < n; a++ {
		for m := po.Less[a]; m != 0; m &= m - 1 {
			b := pattern.Vertex(bits.TrailingZeros32(m))
			// Constraint φ(a) < φ(b).
			if matPos[a] < matPos[b] {
				i := matPos[b]
				pl.MatConstraints[i] = append(pl.MatConstraints[i], Constraint{Other: a, Lower: true})
			} else {
				i := matPos[a]
				pl.MatConstraints[i] = append(pl.MatConstraints[i], Constraint{Other: b, Lower: false})
			}
		}
	}
	return pl, nil
}

// Cost evaluates Equation 8 for the plan on a graph described by stats:
// T = α · Σ_u w_u · |R(P[Aπ(u)])|  +  Σ_i |R(P_i^{π′})|.
func (pl *Plan) Cost(stats estimate.GraphStats) float64 {
	alpha := stats.Alpha()
	comp := 0.0
	for pos := 1; pos < len(pl.Pi); pos++ {
		u := pl.Pi[pos]
		w := float64(pl.Ops[u].W())
		if w == 0 {
			continue
		}
		comp += w * stats.Subgraph(pl.Pattern, pl.Anchors[u])
	}
	mat := 0.0
	var mask uint32
	for _, u := range pl.MatOrder {
		mask |= 1 << uint(u)
		mat += stats.Subgraph(pl.Pattern, mask)
	}
	return alpha*comp + mat
}
