package plan

import (
	"fmt"

	"light/internal/estimate"
	"light/internal/pattern"
)

// ConnectedOrders enumerates every connected enumeration order of V(P),
// pruned by the symmetry-breaking partial order as in Section VI: if
// u < u′ is a constraint, u must precede u′ in π. po may be nil.
func ConnectedOrders(p *pattern.Pattern, po *pattern.PartialOrder) [][]pattern.Vertex {
	n := p.NumVertices()
	if po == nil {
		po = &pattern.PartialOrder{}
	}
	// greaterMask[u] = vertices that must come after u.
	var mustFollow [pattern.MaxVertices]uint32
	for u := 0; u < n; u++ {
		mustFollow[u] = po.Less[u]
	}
	var out [][]pattern.Vertex
	order := make([]pattern.Vertex, 0, n)
	var placed uint32
	var rec func()
	rec = func() {
		if len(order) == n {
			cp := make([]pattern.Vertex, n)
			copy(cp, order)
			out = append(out, cp)
			return
		}
		for u := 0; u < n; u++ {
			bit := uint32(1 << uint(u))
			if placed&bit != 0 {
				continue
			}
			// Connectivity: after the first vertex, u needs a placed neighbor.
			if len(order) > 0 && p.NeighborMask(u)&placed == 0 {
				continue
			}
			// Partial order: everything constrained to precede u is placed.
			violates := false
			for w := 0; w < n; w++ {
				if mustFollow[w]&bit != 0 && placed&(1<<uint(w)) == 0 {
					violates = true
					break
				}
			}
			if violates {
				continue
			}
			order = append(order, u)
			placed |= bit
			rec()
			order = order[:len(order)-1]
			placed &^= bit
		}
	}
	rec()
	return out
}

// Choose compiles every candidate order and returns the plan with the
// minimum Equation 8 cost. Ties are broken toward orders placing
// partial-order-constrained vertices earlier, then lexicographically, so
// Choose is deterministic. The partial order is computed from the
// pattern's automorphisms when po is nil.
func Choose(p *pattern.Pattern, po *pattern.PartialOrder, stats estimate.GraphStats, mode Mode) (*Plan, error) {
	if po == nil {
		po = pattern.SymmetryBreaking(p)
	}
	orders := ConnectedOrders(p, po)
	if len(orders) == 0 {
		return nil, fmt.Errorf("plan: pattern %s has no connected order (disconnected pattern?)", p.Name())
	}
	var best *Plan
	var bestCost float64
	var bestKey [2]int
	for _, pi := range orders {
		pl, err := Compile(p, po, pi, mode)
		if err != nil {
			return nil, err
		}
		cost := pl.Cost(stats)
		key := tieKey(pl, po)
		if best == nil || cost < bestCost || (cost == bestCost && lessKey(key, bestKey, pi, best.Pi)) {
			best, bestCost, bestKey = pl, cost, key
		}
	}
	return best, nil
}

// tieKey returns the secondary ranking for equal-cost orders:
// (−laziness slack, sum of constrained-vertex positions). The slack is
// Σ_u |Fπ(u)| — the estimator bounds |Φ_u| by |R(P[Aπ(u)])|, which is an
// upper bound whose unseen savings grow with the free-vertex mass
// (Equation 5), so lazier orders are preferred at equal estimated cost.
// The position sum implements the paper's stated preference for placing
// partial-order-constrained vertices early.
func tieKey(pl *Plan, po *pattern.PartialOrder) [2]int {
	slack := 0
	for u := range pl.Free {
		if u != pl.Pi[0] {
			slack += popcount32(pl.Free[u])
		}
	}
	constrained := uint32(0)
	for u := range pl.Pi {
		constrained |= po.Less[u]
		if po.Less[u] != 0 {
			constrained |= 1 << uint(u)
		}
	}
	sum := 0
	for pos, u := range pl.Pi {
		if constrained&(1<<uint(u)) != 0 {
			sum += pos
		}
	}
	return [2]int{-slack, sum}
}

func lessKey(a, b [2]int, piA, piB []pattern.Vertex) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	for i := range piA {
		if piA[i] != piB[i] {
			return piA[i] < piB[i]
		}
	}
	return false
}

func popcount32(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
