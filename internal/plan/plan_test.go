package plan

import (
	"reflect"
	"strings"
	"testing"

	"light/internal/estimate"
	"light/internal/gen"
	"light/internal/pattern"
)

// paperPi is the running example's enumeration order (u0, u2, u1, u3).
var paperPi = []pattern.Vertex{0, 2, 1, 3}

func TestExecutionOrderPaperExample(t *testing.T) {
	// Example IV.1: σ = (MAT u0, COMP u2, MAT u2, COMP u1, COMP u3,
	// MAT u1, MAT u3) for P2 with π = (u0, u2, u1, u3).
	p := pattern.P2()
	pl, err := Compile(p, &pattern.PartialOrder{}, paperPi, ModeLM)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Mat, 0}, {Comp, 2}, {Mat, 2}, {Comp, 1}, {Comp, 3}, {Mat, 1}, {Mat, 3},
	}
	if !reflect.DeepEqual(pl.Sigma, want) {
		t.Fatalf("σ = %v, want %v", pl.Sigma, want)
	}
	if !pl.Lazy() {
		t.Error("LM plan should be lazy")
	}
}

func TestInterleavedOrder(t *testing.T) {
	p := pattern.P2()
	pl, err := Compile(p, &pattern.PartialOrder{}, paperPi, ModeSE)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Mat, 0}, {Comp, 2}, {Mat, 2}, {Comp, 1}, {Mat, 1}, {Comp, 3}, {Mat, 3},
	}
	if !reflect.DeepEqual(pl.Sigma, want) {
		t.Fatalf("σ = %v, want %v", pl.Sigma, want)
	}
	if pl.Lazy() {
		t.Error("SE plan should not be lazy")
	}
}

func TestAnchorsAndFree(t *testing.T) {
	// Example IV.2: for u3 (fourth in π), A = {u0, u2}, F = {u1}.
	p := pattern.P2()
	pl, err := Compile(p, &pattern.PartialOrder{}, paperPi, ModeLM)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Anchors[3] != 0b0101 {
		t.Errorf("Anchors(u3) = %04b, want 0101", pl.Anchors[3])
	}
	if pl.Free[3] != 0b0010 {
		t.Errorf("Free(u3) = %04b, want 0010", pl.Free[3])
	}
	// For u1 (third in π), anchors are {u0, u2} and free is empty.
	if pl.Anchors[1] != 0b0101 || pl.Free[1] != 0 {
		t.Errorf("u1: anchors=%04b free=%04b", pl.Anchors[1], pl.Free[1])
	}
}

func TestOperandsMSCPaperExample(t *testing.T) {
	// Example V.1: for u3, U = {u0,u2}, and the min cover is N+(u1) =
	// {u0,u2}, so K1 = ∅ and K2 = {u1}.
	p := pattern.P2()
	pl, err := Compile(p, &pattern.PartialOrder{}, paperPi, ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	o3 := pl.Ops[3]
	if len(o3.K1) != 0 || !reflect.DeepEqual(o3.K2, []pattern.Vertex{1}) {
		t.Fatalf("operands(u3) = %+v, want K1=∅ K2=[1]", o3)
	}
	if o3.W() != 0 {
		t.Errorf("w(u3) = %d, want 0", o3.W())
	}
	// u1: U = {u0,u2}; no reusable set strictly earlier covers it (u2's
	// backward set is {u0}, a subset but smaller) — cover must be either
	// the two singletons or {u0 singleton is covered by N+(u2)={u0}}…
	// minimal size is 2 either way, so w(u1) = 1.
	if got := pl.Ops[1].W(); got != 1 {
		t.Errorf("w(u1) = %d, want 1", got)
	}
	// SE mode: w(u1) = w(u3) = |N+|-1 = 1 each.
	se, _ := Compile(p, &pattern.PartialOrder{}, paperPi, ModeSE)
	if se.Ops[3].W() != 1 || se.Ops[1].W() != 1 {
		t.Errorf("SE w = %d,%d, want 1,1", se.Ops[1].W(), se.Ops[3].W())
	}
	// Proposition V.1: w_MSC ≤ w_SE for every vertex.
	for u := 0; u < p.NumVertices(); u++ {
		if pl.Ops[u].W() > se.Ops[u].W() {
			t.Errorf("Proposition V.1 violated at u%d: %d > %d", u, pl.Ops[u].W(), se.Ops[u].W())
		}
	}
}

func TestPropositionV1AllCatalog(t *testing.T) {
	for _, p := range pattern.Catalog() {
		po := pattern.SymmetryBreaking(p)
		for _, pi := range ConnectedOrders(p, po) {
			msc, err := Compile(p, po, pi, ModeMSC)
			if err != nil {
				t.Fatal(err)
			}
			se, err := Compile(p, po, pi, ModeSE)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < p.NumVertices(); u++ {
				if msc.Ops[u].W() > se.Ops[u].W() {
					t.Fatalf("%s π=%v u%d: w_MSC %d > w_SE %d", p.Name(), pi, u, msc.Ops[u].W(), se.Ops[u].W())
				}
			}
		}
	}
}

func TestSigmaWellFormed(t *testing.T) {
	// For every catalog pattern, order and mode: σ contains each vertex's
	// MAT exactly once, each non-root COMP exactly once, every backward
	// neighbor's MAT precedes the COMP, every K1 vertex's MAT precedes
	// the COMP, and every K2 vertex's COMP precedes the COMP.
	for _, p := range pattern.Catalog() {
		po := pattern.SymmetryBreaking(p)
		for _, mode := range []Mode{ModeSE, ModeLM, ModeMSC, ModeLIGHT} {
			for _, pi := range ConnectedOrders(p, po) {
				pl, err := Compile(p, po, pi, mode)
				if err != nil {
					t.Fatal(err)
				}
				n := p.NumVertices()
				if len(pl.Sigma) != 2*n-1 {
					t.Fatalf("%s %s: |σ| = %d, want %d", p.Name(), mode.Name(), len(pl.Sigma), 2*n-1)
				}
				matPos := make([]int, n)
				compPos := make([]int, n)
				for i := range matPos {
					matPos[i], compPos[i] = -1, -1
				}
				for i, op := range pl.Sigma {
					if op.Mode == Mat {
						if matPos[op.Vertex] != -1 {
							t.Fatalf("duplicate MAT u%d", op.Vertex)
						}
						matPos[op.Vertex] = i
					} else {
						if compPos[op.Vertex] != -1 {
							t.Fatalf("duplicate COMP u%d", op.Vertex)
						}
						compPos[op.Vertex] = i
					}
				}
				for u := 0; u < n; u++ {
					if matPos[u] == -1 {
						t.Fatalf("missing MAT u%d", u)
					}
					if u != pi[0] && compPos[u] == -1 {
						t.Fatalf("missing COMP u%d", u)
					}
					if u == pi[0] {
						continue
					}
					for _, w := range pl.Ops[u].K1 {
						if matPos[w] > compPos[u] {
							t.Fatalf("%s %s π=%v: K1 vertex u%d not materialized before COMP u%d", p.Name(), mode.Name(), pi, w, u)
						}
					}
					for _, w := range pl.Ops[u].K2 {
						if compPos[w] > compPos[u] {
							t.Fatalf("%s %s π=%v: K2 vertex u%d not computed before COMP u%d", p.Name(), mode.Name(), pi, w, u)
						}
					}
					// Operand union must equal the backward neighborhood:
					// ∩K1 neighbor lists ∩ K2 candidate sets ≡ ∩ N+(u).
					var covered uint32
					for _, w := range pl.Ops[u].K1 {
						covered |= 1 << uint(w)
					}
					for _, w := range pl.Ops[u].K2 {
						covered |= backwardOf(p, pi, w)
					}
					if covered != backwardOf(p, pi, u) {
						t.Fatalf("%s %s π=%v u%d: operands cover %b, want %b", p.Name(), mode.Name(), pi, u, covered, backwardOf(p, pi, u))
					}
				}
			}
		}
	}
}

// backwardOf recomputes N+π(u) independently of the plan internals.
func backwardOf(p *pattern.Pattern, pi []pattern.Vertex, u pattern.Vertex) uint32 {
	var before uint32
	for _, w := range pi {
		if w == u {
			break
		}
		before |= 1 << uint(w)
	}
	return p.NeighborMask(u) & before
}

func TestMatConstraintsCoverAllPairs(t *testing.T) {
	for _, p := range pattern.Catalog() {
		po := pattern.SymmetryBreaking(p)
		pi := ConnectedOrders(p, po)[0]
		for _, mode := range []Mode{ModeSE, ModeLIGHT} {
			pl, err := Compile(p, po, pi, mode)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, cs := range pl.MatConstraints {
				total += len(cs)
			}
			if want := len(po.Pairs()); total != want {
				t.Fatalf("%s %s: %d constraint checks, want %d", p.Name(), mode.Name(), total, want)
			}
		}
	}
}

func TestCompileRejectsBadOrders(t *testing.T) {
	p := pattern.P2()
	if _, err := Compile(p, nil, []pattern.Vertex{0, 1}, ModeSE); err == nil {
		t.Error("accepted short order")
	}
	if _, err := Compile(p, nil, []pattern.Vertex{0, 0, 1, 2}, ModeSE); err == nil {
		t.Error("accepted non-permutation")
	}
	if _, err := Compile(p, nil, []pattern.Vertex{1, 3, 0, 2}, ModeSE); err == nil {
		t.Error("accepted disconnected order (1 and 3 are not adjacent)")
	}
}

func TestConnectedOrdersCounts(t *testing.T) {
	// Triangle with no partial order: all 3! = 6 permutations are
	// connected.
	if got := len(ConnectedOrders(pattern.Triangle(), nil)); got != 6 {
		t.Errorf("triangle orders = %d, want 6", got)
	}
	// With symmetry breaking (u0<u1<u2) only one order remains.
	po := pattern.SymmetryBreaking(pattern.Triangle())
	if got := len(ConnectedOrders(pattern.Triangle(), po)); got != 1 {
		t.Errorf("triangle constrained orders = %d, want 1", got)
	}
	// Path 0-1-2: connected orders are 012, 102, 120, 210 = 4.
	if got := len(ConnectedOrders(pattern.Path(3), nil)); got != 4 {
		t.Errorf("path3 orders = %d, want 4", got)
	}
}

func TestChooseDeterministicAndValid(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 3)
	stats := estimate.Collect(g)
	for _, p := range pattern.Catalog() {
		pl1, err := Choose(p, nil, stats, ModeLIGHT)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		pl2, err := Choose(p, nil, stats, ModeLIGHT)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pl1.Pi, pl2.Pi) {
			t.Fatalf("%s: Choose not deterministic: %v vs %v", p.Name(), pl1.Pi, pl2.Pi)
		}
		if !IsConnectedOrder(p, pl1.Pi) {
			t.Fatalf("%s: chosen order not connected", p.Name())
		}
	}
}

func TestChooseRespectsPartialOrderPositions(t *testing.T) {
	// Symmetry-breaking pairs must appear in π respecting u before v.
	g := gen.BarabasiAlbert(300, 4, 5)
	stats := estimate.Collect(g)
	for _, p := range pattern.Catalog() {
		po := pattern.SymmetryBreaking(p)
		pl, err := Choose(p, po, stats, ModeLIGHT)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range po.Pairs() {
			if pl.PosInPi[pr[0]] > pl.PosInPi[pr[1]] {
				t.Fatalf("%s: constraint u%d<u%d violated by π=%v", p.Name(), pr[0], pr[1], pl.Pi)
			}
		}
	}
}

func TestCostPositiveAndComparable(t *testing.T) {
	g := gen.BarabasiAlbert(500, 5, 9)
	stats := estimate.Collect(g)
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	pi := ConnectedOrders(p, po)[0]
	light, _ := Compile(p, po, pi, ModeLIGHT)
	se, _ := Compile(p, po, pi, ModeSE)
	cl, cs := light.Cost(stats), se.Cost(stats)
	if cl <= 0 || cs <= 0 {
		t.Fatalf("costs must be positive: light=%g se=%g", cl, cs)
	}
	if cl > cs {
		t.Fatalf("LIGHT cost %g should not exceed SE cost %g on the same order", cl, cs)
	}
}

func TestGreedyCoverStillCoversAndNeverBeatsExact(t *testing.T) {
	for _, p := range pattern.Catalog() {
		po := pattern.SymmetryBreaking(p)
		for _, pi := range ConnectedOrders(p, po) {
			exact, err := Compile(p, po, pi, ModeLIGHT)
			if err != nil {
				t.Fatal(err)
			}
			greedy, err := Compile(p, po, pi, Mode{LazyMaterialization: true, MinSetCover: true, GreedyCover: true})
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < p.NumVertices(); u++ {
				if u == pi[0] {
					continue
				}
				// Greedy still covers N+(u)...
				var covered uint32
				for _, w := range greedy.Ops[u].K1 {
					covered |= 1 << uint(w)
				}
				for _, w := range greedy.Ops[u].K2 {
					covered |= backwardOf(p, pi, w)
				}
				if covered != backwardOf(p, pi, u) {
					t.Fatalf("%s π=%v u%d: greedy cover incomplete", p.Name(), pi, u)
				}
				// ...and exact never costs more intersections.
				if exact.Ops[u].W() > greedy.Ops[u].W() {
					t.Fatalf("%s π=%v u%d: exact w %d > greedy w %d", p.Name(), pi, u, exact.Ops[u].W(), greedy.Ops[u].W())
				}
			}
		}
	}
}

func TestModeNames(t *testing.T) {
	if ModeSE.Name() != "SE" || ModeLM.Name() != "LM" || ModeMSC.Name() != "MSC" || ModeLIGHT.Name() != "LIGHT" {
		t.Fatal("mode names wrong")
	}
	if Comp.String() != "COMP" || Mat.String() != "MAT" {
		t.Fatal("op mode names wrong")
	}
}

func TestStringAndWTotal(t *testing.T) {
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	light, err := Compile(p, po, paperPi, ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	se, err := Compile(p, po, paperPi, ModeSE)
	if err != nil {
		t.Fatal(err)
	}
	// LIGHT's per-path intersection budget on the running example: 1
	// (COMP u1 does one, u2 and u3 are free). SE does 2 (u1, u3).
	if light.WTotal() != 1 || se.WTotal() != 2 {
		t.Fatalf("WTotal: light=%d se=%d, want 1,2", light.WTotal(), se.WTotal())
	}
	s := light.String()
	if s == "" || len(s) < 20 {
		t.Fatalf("String = %q", s)
	}
}

func TestSingleVertexPattern(t *testing.T) {
	p := pattern.MustNew("v", 1, nil)
	pl, err := Compile(p, nil, []pattern.Vertex{0}, ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Sigma) != 1 || pl.Sigma[0].Mode != Mat {
		t.Fatalf("σ = %v", pl.Sigma)
	}
}

func TestExplain(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	stats := estimate.Collect(g)
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	pl, err := Compile(p, po, paperPi, ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	out := pl.Explain(stats)
	for _, want := range []string{"enumeration order", "COMP", "MAT", "aliased", "Eq. 8", "u0<u2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
	// A pattern with no symmetry must say so.
	paw := pattern.MustNew("asympaw", 4, [][2]pattern.Vertex{{0, 1}, {1, 2}, {2, 3}, {1, 3}})
	_ = paw // paw has one swap; build truly asymmetric 5-vertex pattern
	asym := pattern.MustNew("asym", 5, [][2]pattern.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 3}, {0, 2}})
	if len(asym.Automorphisms()) == 1 {
		apo := pattern.SymmetryBreaking(asym)
		apl, err := Compile(asym, apo, ConnectedOrders(asym, apo)[0], ModeLIGHT)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(apl.Explain(stats), "trivial automorphism") {
			t.Fatal("Explain should note trivial groups")
		}
	}
}
