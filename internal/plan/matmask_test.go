package plan

import (
	"math/bits"
	"testing"

	"light/internal/pattern"
)

// TestMatMaskBefore checks the helper against a direct recount on every
// catalog pattern × mode: the mask over σ[:i] must contain exactly the
// MAT vertices seen so far, monotonically growing from the root.
func TestMatMaskBefore(t *testing.T) {
	for _, p := range pattern.Catalog() {
		po := pattern.SymmetryBreaking(p)
		for _, mode := range []Mode{ModeSE, ModeLM, ModeMSC, ModeLIGHT} {
			pl, err := Compile(p, po, ConnectedOrders(p, po)[0], mode)
			if err != nil {
				t.Fatal(err)
			}
			var want uint32
			mats := 0
			for i := 0; i <= len(pl.Sigma); i++ {
				got := pl.MatMaskBefore(i)
				if got != want {
					t.Fatalf("%s/%s: MatMaskBefore(%d) = %#x, want %#x", p.Name(), mode.Name(), i, got, want)
				}
				if bits.OnesCount32(got) != mats {
					t.Fatalf("%s/%s: popcount(MatMaskBefore(%d)) = %d, want %d MATs",
						p.Name(), mode.Name(), i, bits.OnesCount32(got), mats)
				}
				if i < len(pl.Sigma) && pl.Sigma[i].Mode == Mat {
					want |= 1 << uint(pl.Sigma[i].Vertex)
					mats++
				}
			}
			if pl.MatMaskBefore(len(pl.Sigma)+3) != want {
				t.Fatalf("%s/%s: MatMaskBefore past σ should clamp to the full mask", p.Name(), mode.Name())
			}
			if pl.MatMaskBefore(1) != 1<<uint(pl.Pi[0]) {
				t.Fatalf("%s/%s: MatMaskBefore(1) must be the root bit", p.Name(), mode.Name())
			}
		}
	}
}
