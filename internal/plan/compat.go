package plan

import (
	"fmt"
	"strings"
)

// CompatKey returns a canonical string identifying everything about a
// compiled plan that determines its execution shape: pattern adjacency,
// enumeration order π, execution order σ, COMP operands K1/K2, and the
// symmetry-breaking constraints applied at each MAT. Two plans with
// equal keys walk identical search trees over any data graph — the
// per-node COMP results and MAT candidate windows depend only on these
// fields — so their queries can share one bit-parallel lane batch: the
// lanes then differ only in per-lane root sets and assignment filters,
// which the lane mask applies on top of the shared traversal.
//
// Deliberately excluded: the pattern's name (cosmetic), and engine
// options like the intersection kernel or TailCount (batch-wide, fixed
// by the executor, and irrelevant to which tree is walked).
func (pl *Plan) CompatKey() string {
	var sb strings.Builder
	n := pl.Pattern.NumVertices()
	fmt.Fprintf(&sb, "n=%d;adj=", n)
	for u := 0; u < n; u++ {
		fmt.Fprintf(&sb, "%x,", pl.Pattern.NeighborMask(u))
	}
	sb.WriteString(";pi=")
	for _, u := range pl.Pi {
		fmt.Fprintf(&sb, "%d,", u)
	}
	sb.WriteString(";sigma=")
	for _, op := range pl.Sigma {
		fmt.Fprintf(&sb, "%s%d,", op.Mode, op.Vertex)
	}
	sb.WriteString(";ops=")
	for u := range pl.Ops {
		fmt.Fprintf(&sb, "u%d:%v|%v,", u, pl.Ops[u].K1, pl.Ops[u].K2)
	}
	sb.WriteString(";con=")
	for i, cs := range pl.MatConstraints {
		if len(cs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "s%d:", i)
		for _, c := range cs {
			fmt.Fprintf(&sb, "%d/%t,", c.Other, c.Lower)
		}
	}
	return sb.String()
}
