//go:build faultinject

package lanes

import (
	"context"
	"errors"
	"strings"
	"testing"

	"light/internal/faultpoint"
	"light/internal/gen"
	"light/internal/metrics"
	"light/internal/pattern"
)

var errInjected = errors.New("injected")

// TestChaosBatchAdmit: a fault at batch admission fails the batch
// before any group runs, with no partial counts.
func TestChaosBatchAdmit(t *testing.T) {
	defer faultpoint.Reset()
	g := gen.ErdosRenyi(50, 150, 1)
	pl := compile(t, pattern.Triangle())
	faultpoint.Set(faultpoint.PointBatchAdmit, faultpoint.FailTimes(1, errInjected))
	res, err := Run(context.Background(), g, []Query{{Plan: pl}}, Options{})
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "batch admission") {
		t.Fatalf("err = %v", err)
	}
	if res.PerQuery[0].Nodes != 0 {
		t.Fatalf("work ran past a failed admission: %+v", res.PerQuery[0])
	}
}

// TestChaosLaneFold: a fault during the lane fold surfaces as the batch
// error; the traversal's counts are already banked (PerQuery filled)
// but the recorders must not be half-folded for the failing group.
func TestChaosLaneFold(t *testing.T) {
	defer faultpoint.Reset()
	g := gen.ErdosRenyi(50, 150, 1)
	pl := compile(t, pattern.Triangle())
	faultpoint.Set(faultpoint.PointLaneFold, faultpoint.FailTimes(1, errInjected))
	recs := []*metrics.Recorder{metrics.NewRecorder()}
	res, err := Run(context.Background(), g, []Query{{Plan: pl}}, Options{Recorders: recs})
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	if res.PerQuery[0].Matches == 0 {
		t.Fatal("counts not banked before the fold fault")
	}
	// A second run with the fault spent must succeed and fold cleanly.
	recs2 := []*metrics.Recorder{metrics.NewRecorder()}
	res2, err := Run(context.Background(), g, []Query{{Plan: pl}}, Options{Recorders: recs2})
	if err != nil {
		t.Fatal(err)
	}
	if recs2[0].Get(metrics.EngineMatches) != res2.PerQuery[0].Matches {
		t.Fatal("recorder fold mismatch after fault cleared")
	}
	if res2.PerQuery[0] != res.PerQuery[0] {
		t.Fatalf("counts drifted across fault: %+v vs %+v", res2.PerQuery[0], res.PerQuery[0])
	}
}
