// Package lanes is the bit-parallel batch executor: it evaluates up to
// 64 queries that share one data graph in SIMD-within-a-register lanes,
// one query per bit of a uint64 word (the Cluster-BFS packing applied
// to subgraph enumeration). Queries whose compiled plans are
// structurally identical — same pattern adjacency, enumeration order,
// execution order, COMP operands, and symmetry constraints, keyed by
// plan.CompatKey — form a lane group; the engine then walks that
// group's search tree once, computing every candidate set a single
// time, while a per-path lane mask tracks which queries are still
// live. Per-query differences (root sets, minimum-degree thresholds,
// arbitrary assignment filters) are applied by masking lanes off, not
// by re-walking, so the shared traversal's cost is paid once for the
// whole group.
//
// Attribution stays exact: a lane is live at a node iff a sequential
// run of its query would expand that node, and every COMP depends only
// on the assignments above it, so charging shared work to each live
// lane reproduces every query's solo counters bit-for-bit (the engine
// asserts the same invariant; internal/diffcheck and the lightbench
// catalog section both gate on it).
package lanes

import (
	"fmt"
	"math/bits"
	"sort"

	"light/internal/engine"
	"light/internal/graph"
)

// Spec describes one lane's query-specific narrowing of the group's
// shared plan. The zero value is the unrestricted query: all roots, no
// degree threshold, no filter.
type Spec struct {
	// Roots, when non-nil, restricts the lane to matches whose root
	// pattern vertex maps into this set. nil means every root.
	Roots []graph.VertexID
	// MinDegree, when positive, drops assignments of data vertices
	// with degree below it (applied at every pattern vertex, exactly
	// like a sequential run with a degree filter).
	MinDegree int
	// Filter, when non-nil, must approve every (pattern vertex, data
	// vertex) assignment for this lane. It runs under the innermost
	// mask probe, but only for candidates that survived the bit-
	// parallel degree ladder, and only for lanes that carry a filter.
	Filter func(u int, v graph.VertexID) bool
}

// Set implements engine.LaneProber for one lane group: per-query state
// packed into uint64 masks, probed once per candidate assignment.
// Immutable after NewSet; safe for concurrent workers.
type Set struct {
	n   int
	all uint64

	// rootMasks[v] is the mask of lanes whose root set contains data
	// vertex v — the transposed bit-parallel packing of all per-lane
	// root sets. nil when every lane takes all roots.
	rootMasks []uint64

	// The degree ladder: thresholds holds the distinct MinDegree
	// values ascending, and degMasks[i] is the mask of lanes whose
	// threshold is at most thresholds[i]. A candidate of degree d is
	// alive (degree-wise) in degMasks[i] for the largest thresholds[i]
	// <= d — one binary search over at most 64 entries, no per-lane
	// work.
	thresholds []int
	degMasks   []uint64

	// filterMask marks lanes carrying an arbitrary filter; filters is
	// indexed per lane (nil entries for unfiltered lanes).
	filterMask uint64
	filters    []func(u int, v graph.VertexID) bool
}

// NewSet packs specs (one per lane, at most 64) into a prober over a
// graph with numVertices data vertices.
func NewSet(numVertices int, specs []Spec) (*Set, error) {
	if len(specs) == 0 || len(specs) > 64 {
		return nil, fmt.Errorf("lanes: %d lanes, must be 1..64", len(specs))
	}
	s := &Set{n: len(specs)}
	if s.n == 64 {
		s.all = ^uint64(0)
	} else {
		s.all = 1<<uint(s.n) - 1
	}

	// Root sets, transposed: rootMasks[v] collects the lanes listing v.
	anyRestricted := false
	for _, sp := range specs {
		if sp.Roots != nil {
			anyRestricted = true
			break
		}
	}
	if anyRestricted {
		s.rootMasks = make([]uint64, numVertices)
		for lane, sp := range specs {
			bit := uint64(1) << uint(lane)
			if sp.Roots == nil {
				for v := range s.rootMasks {
					s.rootMasks[v] |= bit
				}
				continue
			}
			for _, v := range sp.Roots {
				if int(v) >= numVertices {
					return nil, fmt.Errorf("lanes: lane %d root %d out of range (|V|=%d)", lane, v, numVertices)
				}
				s.rootMasks[v] |= bit
			}
		}
	}

	// Degree ladder: distinct thresholds ascending, cumulative masks.
	distinct := map[int]bool{}
	for _, sp := range specs {
		t := sp.MinDegree
		if t < 0 {
			t = 0
		}
		distinct[t] = true
	}
	for t := range distinct {
		s.thresholds = append(s.thresholds, t)
	}
	sort.Ints(s.thresholds)
	s.degMasks = make([]uint64, len(s.thresholds))
	for i, t := range s.thresholds {
		var m uint64
		for lane, sp := range specs {
			lt := sp.MinDegree
			if lt < 0 {
				lt = 0
			}
			if lt <= t {
				m |= 1 << uint(lane)
			}
		}
		s.degMasks[i] = m
	}

	s.filters = make([]func(u int, v graph.VertexID) bool, len(specs))
	for lane, sp := range specs {
		if sp.Filter != nil {
			s.filters[lane] = sp.Filter
			s.filterMask |= 1 << uint(lane)
		}
	}
	return s, nil
}

// NumLanes returns the number of packed queries.
func (s *Set) NumLanes() int { return s.n }

// All returns the mask with one bit per lane.
func (s *Set) All() uint64 { return s.all }

// RootMask returns the lanes whose root set contains v.
//
//light:hotpath
func (s *Set) RootMask(v graph.VertexID) uint64 {
	if s.rootMasks == nil {
		return s.all
	}
	return s.rootMasks[v]
}

// MaskFor returns the lanes accepting the assignment of data vertex v
// (degree deg) to pattern vertex u: the degree-ladder mask intersected
// with each carried filter's verdict. One ladder lookup covers every
// lane's threshold at once; only filtered lanes pay a per-lane call.
//
//light:hotpath
func (s *Set) MaskFor(u int, v graph.VertexID, deg int) uint64 {
	m := s.degMask(deg)
	fm := m & s.filterMask
	for ; fm != 0; fm &= fm - 1 {
		lane := bits.TrailingZeros64(fm)
		if !s.filters[lane](u, v) {
			m &^= 1 << uint(lane)
		}
	}
	return m
}

// degMask returns the union of lanes whose MinDegree is at most deg:
// the cumulative mask at the largest threshold not exceeding deg, or 0
// when even the smallest threshold is too high.
//
//light:hotpath
func (s *Set) degMask(deg int) uint64 {
	// Binary search over at most 64 sorted thresholds.
	lo, hi := 0, len(s.thresholds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.thresholds[mid] <= deg {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return s.degMasks[lo-1]
}

var _ engine.LaneProber = (*Set)(nil)
