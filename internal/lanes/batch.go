package lanes

import (
	"context"
	"fmt"

	"light/internal/admission"
	"light/internal/arena"
	"light/internal/engine"
	"light/internal/faultpoint"
	"light/internal/graph"
	"light/internal/metrics"
	"light/internal/parallel"
	"light/internal/plan"
)

// Query is one batch member: a compiled plan plus this query's lane
// spec. Queries whose plans share a CompatKey are packed into the same
// lane group and executed in one traversal.
type Query struct {
	Plan *plan.Plan
	Spec Spec
}

// Options configure a batch run. Engine options (kernel, δ, deadline,
// degree filter) are batch-wide: every group runs under the same
// configuration, which is what makes the shared traversal's counters
// attributable. Engine.Lanes and Engine.Filter must be nil — lanes are
// built per group, and per-query filters belong in each Spec.
type Options struct {
	// Engine configures every group's enumerators. Engine.Metrics,
	// when non-nil, receives the batch's shared (actually-performed)
	// work; per-query counters go to Recorders.
	Engine engine.Options
	// Workers per group (the groups run sequentially, each using the
	// full pool); defaults to GOMAXPROCS via the parallel layer.
	Workers int
	// Scheduler defaults to WorkStealing.
	Scheduler parallel.Scheduler
	// Gate, when non-nil, is the batch's single admission under a
	// shared governor: one grant covers every group, workers re-check
	// it at scheduling boundaries, and slots shed to waiting queries
	// stay shed for the remaining groups.
	Gate *admission.Admission
	// MemLimiter, when non-nil, budgets every worker's candidate arena.
	MemLimiter *arena.Limiter
	// Watchdog, when non-nil, enables the stall watchdog per group.
	Watchdog *admission.WatchdogConfig
	// Recorders, when non-nil, must have one entry per query (nil
	// entries allowed); query i's exact attributed counters are folded
	// into Recorders[i], giving each query an individually-reportable
	// metrics snapshot.
	Recorders []*metrics.Recorder
	// Checkpoint, when non-nil, enables periodic checkpointing per
	// group (frames carry their lane masks; see the supervise format).
	Checkpoint *parallel.CheckpointOptions
}

// Result is a batch run's outcome.
type Result struct {
	// PerQuery holds query i's exactly-attributed counters — equal to
	// what a sequential run of that query alone would report.
	PerQuery []engine.LaneCounts
	// Groups is how many lane groups (shared traversals) the batch
	// compiled into; Workers is the largest pool any group ran with.
	Groups  int
	Workers int
	// CandidateMemBytes sums candidate-buffer memory across groups.
	CandidateMemBytes int64
	// SlotsShed and Stalls aggregate governor events across groups.
	SlotsShed uint64
	Stalls    uint64
	// Stopped reports an early stop (context cancellation) — PerQuery
	// is then partial and not attributable.
	Stopped bool
}

// Run executes the batch: queries are grouped by plan compatibility,
// each group packs into one LaneProber (≤64 lanes; larger groups split)
// and runs through the parallel work-stealing scheduler as a single
// shared traversal. Groups run sequentially — each already scales to
// the full worker pool — under one admission grant.
func Run(ctx context.Context, g *graph.Graph, queries []Query, opts Options) (Result, error) {
	res := Result{PerQuery: make([]engine.LaneCounts, len(queries))}
	if len(queries) == 0 {
		return res, nil
	}
	if opts.Engine.Lanes != nil || opts.Engine.Filter != nil {
		return res, fmt.Errorf("lanes: Options.Engine must not set Lanes or Filter (per-query state belongs in Specs)")
	}
	if opts.Recorders != nil && len(opts.Recorders) != len(queries) {
		return res, fmt.Errorf("lanes: %d recorders for %d queries", len(opts.Recorders), len(queries))
	}
	for i, q := range queries {
		if q.Plan == nil {
			return res, fmt.Errorf("lanes: query %d has no plan", i)
		}
	}
	if err := faultpoint.Hit(faultpoint.PointBatchAdmit); err != nil {
		return res, fmt.Errorf("lanes: batch admission: %w", err)
	}

	groups := groupQueries(queries)
	res.Groups = len(groups)
	for _, grp := range groups {
		if ctx != nil && ctx.Err() != nil {
			res.Stopped = true
			return res, ctx.Err()
		}
		specs := make([]Spec, len(grp))
		for lane, qi := range grp {
			specs[lane] = queries[qi].Spec
		}
		// Root bitsets must span the queried view: an overlay can add
		// vertices beyond the base CSR's count.
		nv := g.NumVertices()
		if opts.Engine.Overlay != nil {
			nv = opts.Engine.Overlay.NumVertices()
		}
		set, err := NewSet(nv, specs)
		if err != nil {
			return res, err
		}
		popts := parallel.Options{
			Engine:     opts.Engine,
			Workers:    opts.Workers,
			Scheduler:  opts.Scheduler,
			Metrics:    opts.Engine.Metrics,
			Gate:       opts.Gate,
			MemLimiter: opts.MemLimiter,
			Watchdog:   opts.Watchdog,
			Checkpoint: opts.Checkpoint,
		}
		popts.Engine.Lanes = set
		// Under a governor, earlier groups may have shed slots to
		// waiting queries; the pool must not spawn more workers than
		// the admission still holds (held slots == live workers is the
		// shed protocol's invariant).
		if opts.Gate != nil {
			if held := opts.Gate.Slots(); popts.Workers <= 0 || held < popts.Workers {
				popts.Workers = held
			}
		}
		pres, err := parallel.RunContext(ctx, g, queries[grp[0]].Plan, popts, nil)
		res.CandidateMemBytes += pres.CandidateMemBytes
		res.SlotsShed += pres.SlotsShed
		res.Stalls += pres.Stalls
		if pres.Workers > res.Workers {
			res.Workers = pres.Workers
		}
		for lane, qi := range grp {
			if lane < len(pres.Lanes) {
				res.PerQuery[qi] = pres.Lanes[lane]
			}
		}
		if err != nil || pres.Stopped {
			res.Stopped = res.Stopped || pres.Stopped
			return res, err
		}
		if err := foldGroup(grp, pres.Lanes, opts.Recorders); err != nil {
			return res, err
		}
	}
	return res, nil
}

// foldGroup folds each lane's attributed counters into its query's
// recorder — the lane-masked analogue of engine.Result.AddTo.
func foldGroup(grp []int, lanes []engine.LaneCounts, recorders []*metrics.Recorder) error {
	if recorders == nil {
		return nil
	}
	if err := faultpoint.Hit(faultpoint.PointLaneFold); err != nil {
		return fmt.Errorf("lanes: lane fold: %w", err)
	}
	for lane, qi := range grp {
		rec := recorders[qi]
		if rec == nil || lane >= len(lanes) {
			continue
		}
		lc := lanes[lane]
		rec.Add(metrics.EngineNodes, lc.Nodes)
		rec.Add(metrics.EngineMatches, lc.Matches)
		rec.Add(metrics.EngineComps, lc.Comps)
		rec.Add(metrics.IntersectOps, lc.Stats.Intersections)
		rec.Add(metrics.IntersectGalloping, lc.Stats.Galloping)
		rec.Add(metrics.IntersectMerge, lc.Stats.Intersections-lc.Stats.Galloping)
		rec.Add(metrics.IntersectElements, lc.Stats.Elements)
		rec.Add(metrics.IntersectBitmapProbes, lc.Stats.BitmapProbes)
	}
	return nil
}

// groupQueries partitions query indices into lane groups: queries with
// equal plan CompatKeys share a group, in first-appearance order, and
// groups larger than 64 split into word-sized chunks.
func groupQueries(queries []Query) [][]int {
	byKey := map[string]int{}
	var groups [][]int
	for i, q := range queries {
		key := q.Plan.CompatKey()
		gi, ok := byKey[key]
		if !ok || len(groups[gi]) >= 64 {
			groups = append(groups, nil)
			gi = len(groups) - 1
			byKey[key] = gi
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}
