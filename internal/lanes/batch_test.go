package lanes

import (
	"context"
	"testing"

	"light/internal/engine"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/metrics"
	"light/internal/pattern"
	"light/internal/plan"
)

// TestBatchRunParity runs a mixed-catalog batch — several patterns,
// several lane specs per pattern — through the full work-stealing
// scheduler at 1 and 3 workers, and checks every query's attributed
// counters against its solo sequential run. This is the end-to-end
// parity gate: grouping, lane packing, donation frames carrying masks,
// and the recorder fold all sit on this path.
func TestBatchRunParity(t *testing.T) {
	g := gen.BarabasiAlbert(150, 4, 17)
	g.BuildHubIndex(3)
	var firstHalf []graph.VertexID
	for v := 0; v < g.NumVertices()/2; v++ {
		firstHalf = append(firstHalf, graph.VertexID(v))
	}
	mod3 := func(u int, v graph.VertexID) bool { return v%3 != 0 }

	var queries []Query
	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.P2(), pattern.P4()} {
		pl := compile(t, p)
		queries = append(queries,
			Query{Plan: pl},
			Query{Plan: pl, Spec: Spec{MinDegree: 4}},
			Query{Plan: pl, Spec: Spec{Roots: firstHalf, Filter: mod3}},
		)
	}

	want := make([]engine.LaneCounts, len(queries))
	for i, q := range queries {
		solo, err := engine.New(g, q.Plan, engine.Options{
			Filter: refFilter(g, q.Plan, q.Spec),
		}).Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = engine.LaneCounts{Matches: solo.Matches, Nodes: solo.Nodes, Comps: solo.Comps, Stats: solo.Stats}
	}

	for _, workers := range []int{1, 3} {
		recs := make([]*metrics.Recorder, len(queries))
		for i := range recs {
			recs[i] = metrics.NewRecorder()
		}
		res, err := Run(context.Background(), g, queries, Options{
			Workers:   workers,
			Recorders: recs,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Groups != 3 {
			t.Fatalf("workers=%d: %d groups, want 3", workers, res.Groups)
		}
		for i := range queries {
			if res.PerQuery[i] != want[i] {
				t.Errorf("workers=%d query=%d: batched %+v, sequential %+v",
					workers, i, res.PerQuery[i], want[i])
			}
			// The fold must give each query an individually-reportable
			// recorder snapshot equal to its attributed counters.
			if n := recs[i].Get(metrics.EngineMatches); n != want[i].Matches {
				t.Errorf("workers=%d query=%d: recorder matches %d, want %d", workers, i, n, want[i].Matches)
			}
			if n := recs[i].Get(metrics.IntersectOps); n != want[i].Stats.Intersections {
				t.Errorf("workers=%d query=%d: recorder intersections %d, want %d", workers, i, n, want[i].Stats.Intersections)
			}
			merges := want[i].Stats.Intersections - want[i].Stats.Galloping
			if n := recs[i].Get(metrics.IntersectMerge); n != merges {
				t.Errorf("workers=%d query=%d: recorder merges %d, want %d", workers, i, n, merges)
			}
		}
	}
}

// TestBatchRunValidation pins the batch preconditions.
func TestBatchRunValidation(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 1)
	pl := compile(t, pattern.Triangle())
	ctx := context.Background()

	if res, err := Run(ctx, g, nil, Options{}); err != nil || res.Groups != 0 {
		t.Errorf("empty batch: %+v, %v", res, err)
	}
	if _, err := Run(ctx, g, []Query{{}}, Options{}); err == nil {
		t.Error("nil plan accepted")
	}
	set, _ := NewSet(g.NumVertices(), []Spec{{}})
	if _, err := Run(ctx, g, []Query{{Plan: pl}}, Options{
		Engine: engine.Options{Lanes: set},
	}); err == nil {
		t.Error("pre-set Engine.Lanes accepted")
	}
	if _, err := Run(ctx, g, []Query{{Plan: pl}}, Options{
		Engine: engine.Options{Filter: func(u int, v graph.VertexID) bool { return true }},
	}); err == nil {
		t.Error("batch-wide Engine.Filter accepted")
	}
	if _, err := Run(ctx, g, []Query{{Plan: pl}, {Plan: pl}}, Options{
		Recorders: make([]*metrics.Recorder, 1),
	}); err == nil {
		t.Error("recorder count mismatch accepted")
	}
}

// TestBatchRunCancellation: a cancelled context stops the batch with
// Stopped set and the context's error.
func TestBatchRunCancellation(t *testing.T) {
	g := gen.BarabasiAlbert(200, 5, 3)
	pl := compile(t, pattern.P4())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, g, []Query{{Plan: pl}}, Options{Workers: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if !res.Stopped {
		t.Fatal("Stopped not set")
	}
}

// TestBatchCompatKeyGroups: plans compiled from the same pattern under
// the same mode share a CompatKey; distinct patterns never do. This is
// the grouping invariant the shared traversal's soundness rests on.
func TestBatchCompatKeyGroups(t *testing.T) {
	seen := map[string]string{}
	for _, p := range pattern.Catalog() {
		pl1, pl2 := compile(t, p), compile(t, p)
		if pl1.CompatKey() != pl2.CompatKey() {
			t.Errorf("%s: recompile changed CompatKey", p.Name())
		}
		if prev, dup := seen[pl1.CompatKey()]; dup {
			t.Errorf("%s and %s share a CompatKey", p.Name(), prev)
		}
		seen[pl1.CompatKey()] = p.Name()
	}
	// Different modes of the same pattern compile different σ/ops and
	// must not be lane-grouped.
	p := pattern.P4()
	po := pattern.SymmetryBreaking(p)
	pi := plan.ConnectedOrders(p, po)[0]
	light, err := plan.Compile(p, po, pi, plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	se, err := plan.Compile(p, po, pi, plan.ModeSE)
	if err != nil {
		t.Fatal(err)
	}
	if light.CompatKey() == se.CompatKey() {
		t.Error("LIGHT and SE plans share a CompatKey")
	}
}
