package lanes

import (
	"fmt"
	"testing"

	"light/internal/engine"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/pattern"
	"light/internal/plan"
)

func compile(t *testing.T, p *pattern.Pattern) *plan.Plan {
	t.Helper()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// refFilter builds the sequential-reference filter equivalent to a lane
// Spec: reject roots outside the root set, assignments below the degree
// threshold, and assignments the lane's own filter rejects. Running the
// engine alone under this filter is, by definition, the ground truth a
// lane's attributed counters must reproduce.
func refFilter(g *graph.Graph, pl *plan.Plan, sp Spec) func(u int, v graph.VertexID) bool {
	var inRoots map[graph.VertexID]bool
	if sp.Roots != nil {
		inRoots = make(map[graph.VertexID]bool, len(sp.Roots))
		for _, v := range sp.Roots {
			inRoots[v] = true
		}
	}
	root := pl.Pi[0]
	return func(u int, v graph.VertexID) bool {
		if inRoots != nil && u == root && !inRoots[v] {
			return false
		}
		if g.Degree(v) < sp.MinDegree {
			return false
		}
		return sp.Filter == nil || sp.Filter(u, v)
	}
}

func laneSpecs(g *graph.Graph) []Spec {
	n := g.NumVertices()
	var even, firstHalf []graph.VertexID
	for v := 0; v < n; v++ {
		if v%2 == 0 {
			even = append(even, graph.VertexID(v))
		}
		if v < n/2 {
			firstHalf = append(firstHalf, graph.VertexID(v))
		}
	}
	mod3 := func(u int, v graph.VertexID) bool { return v%3 != 0 }
	evenOnly := func(u int, v graph.VertexID) bool { return v%2 == 0 }
	return []Spec{
		{}, // the unrestricted lane: must reproduce a plain run exactly
		{Roots: even},
		{MinDegree: 3},
		{Filter: mod3},
		{Roots: firstHalf, MinDegree: 2, Filter: evenOnly},
		{MinDegree: 1000}, // dead everywhere on these graphs
	}
}

// TestLaneParityMatrix is the deterministic parity sweep the issue
// gates on: for seeded graphs × the full pattern catalog × kernels, a
// lane-batched run's per-lane counters (matches, nodes, comps, and the
// full intersection stats) must equal, bit for bit, what a sequential
// run of each lane's query alone reports.
func TestLaneParityMatrix(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er", gen.ErdosRenyi(80, 240, 7)},
		{"ba", gen.BarabasiAlbert(120, 3, 9)},
		{"starchords", gen.StarChords(40, 60, 5)},
	}
	for _, tg := range graphs {
		tg.g.BuildHubIndex(3)
	}
	kernels := []intersect.Kind{intersect.KindHybrid, intersect.KindHybridBitmap}
	for _, tg := range graphs {
		specs := laneSpecs(tg.g)
		for _, p := range pattern.Catalog() {
			pl := compile(t, p)
			for _, k := range kernels {
				set, err := NewSet(tg.g.NumVertices(), specs)
				if err != nil {
					t.Fatal(err)
				}
				batched, err := engine.New(tg.g, pl, engine.Options{Kernel: k, Lanes: set}).Run(nil)
				if err != nil {
					t.Fatalf("%s/%s: %v", tg.name, p.Name(), err)
				}
				if len(batched.Lanes) != len(specs) {
					t.Fatalf("%s/%s: %d lane results for %d specs", tg.name, p.Name(), len(batched.Lanes), len(specs))
				}
				for lane, sp := range specs {
					solo, err := engine.New(tg.g, pl, engine.Options{
						Kernel: k,
						Filter: refFilter(tg.g, pl, sp),
					}).Run(nil)
					if err != nil {
						t.Fatal(err)
					}
					got := batched.Lanes[lane]
					want := engine.LaneCounts{
						Matches: solo.Matches, Nodes: solo.Nodes, Comps: solo.Comps, Stats: solo.Stats,
					}
					if got != want {
						t.Errorf("%s/%s kernel=%d lane=%d: batched %+v, sequential %+v",
							tg.name, p.Name(), k, lane, got, want)
					}
				}
			}
		}
	}
}

// TestLaneSharedWorkIsShared pins the point of batching: the shared
// traversal's actually-performed intersections must be far fewer than
// the sum of the per-lane attributed intersections when lanes overlap
// (here: six lanes whose trees nest inside the unrestricted lane's).
func TestLaneSharedWorkIsShared(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 11)
	pl := compile(t, pattern.P2())
	specs := []Spec{{}, {MinDegree: 2}, {MinDegree: 4}, {MinDegree: 8}}
	set, err := NewSet(g.NumVertices(), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.New(g, pl, engine.Options{Lanes: set}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var attributed uint64
	for _, lc := range res.Lanes {
		attributed += lc.Stats.Intersections
	}
	// The shared count is what the engine really did; with four nested
	// lanes every intersection below the loosest threshold is charged
	// to several lanes at once.
	if res.Stats.Intersections >= attributed {
		t.Fatalf("no sharing: %d shared intersections vs %d attributed",
			res.Stats.Intersections, attributed)
	}
}

// TestLaneResumeMask: Snapshot must capture the live-lane mask, and
// Resume in lane mode must reject frames whose mask is empty or claims
// lanes outside the set — resuming those would attribute a subtree to
// the wrong queries.
func TestLaneResumeMask(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 3)
	pl := compile(t, pattern.Triangle())
	set, err := NewSet(g.NumVertices(), []Spec{{}, {MinDegree: 2}})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(g, pl, engine.Options{Lanes: set})
	var frames []*engine.Frame
	e.Hook = func(en *engine.Enumerator, sigmaIdx int, candidates []graph.VertexID) int {
		if len(frames) == 0 && len(candidates) > 1 {
			frames = append(frames, en.Snapshot(sigmaIdx, candidates[1:]))
			return 1
		}
		return len(candidates)
	}
	full, err := engine.New(g, pl, engine.Options{Lanes: set}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	head, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Result.Lanes aliases the enumerator's reused lane buffer: copy
	// before running the same enumerator again (as the parallel ledger
	// does when it banks a chunk's delta).
	headLanes := append([]engine.LaneCounts(nil), head.Lanes...)
	if len(frames) == 0 {
		t.Fatal("donation hook never fired")
	}
	f := frames[0]
	if f.LaneMask == 0 || f.LaneMask&^set.All() != 0 {
		t.Fatalf("snapshot lane mask %b outside set %b", f.LaneMask, set.All())
	}

	// Resuming the donated tail must complete the lane-exact counts.
	e.Hook = nil
	tail, err := e.Resume(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	for lane := range full.Lanes {
		sum := headLanes[lane]
		sum.Add(tail.Lanes[lane])
		if sum != full.Lanes[lane] {
			t.Errorf("lane %d: head+tail %+v != full %+v", lane, sum, full.Lanes[lane])
		}
	}

	// A zero or foreign mask must be refused.
	for _, mask := range []uint64{0, 1 << 7} {
		bad := *f
		bad.LaneMask = mask
		if _, err := e.Resume(&bad, nil); err == nil {
			t.Errorf("Resume accepted lane mask %b", mask)
		}
	}
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(10, nil); err == nil {
		t.Error("0 lanes accepted")
	}
	if _, err := NewSet(10, make([]Spec, 65)); err == nil {
		t.Error("65 lanes accepted")
	}
	if _, err := NewSet(10, []Spec{{Roots: []graph.VertexID{10}}}); err == nil {
		t.Error("out-of-range root accepted")
	}
	s, err := NewSet(10, make([]Spec, 64))
	if err != nil {
		t.Fatal(err)
	}
	if s.All() != ^uint64(0) || s.NumLanes() != 64 {
		t.Errorf("full word: all=%x n=%d", s.All(), s.NumLanes())
	}
}

// TestDegreeLadder pins the bit-parallel MinDegree evaluation: one
// ladder lookup must reproduce every lane's threshold comparison.
func TestDegreeLadder(t *testing.T) {
	specs := []Spec{{MinDegree: 0}, {MinDegree: 2}, {MinDegree: 2}, {MinDegree: 5}, {MinDegree: -3}}
	s, err := NewSet(100, specs)
	if err != nil {
		t.Fatal(err)
	}
	for deg := 0; deg <= 6; deg++ {
		var want uint64
		for lane, sp := range specs {
			if t := sp.MinDegree; t <= deg || t < 0 {
				want |= 1 << uint(lane)
			}
		}
		if got := s.MaskFor(0, 0, deg); got != want {
			t.Errorf("deg=%d: mask %b, want %b", deg, got, want)
		}
	}
	// An empty root set is legal and means "no roots", not "all roots".
	s2, err := NewSet(4, []Spec{{}, {Roots: []graph.VertexID{}}})
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.VertexID(0); v < 4; v++ {
		if m := s2.RootMask(v); m != 0b01 {
			t.Errorf("root %d: mask %b, want 01", v, m)
		}
	}
}

func TestGroupQueries(t *testing.T) {
	tri := compile(t, pattern.Triangle())
	p4 := compile(t, pattern.P4())
	qs := []Query{{Plan: tri}, {Plan: p4}, {Plan: tri}, {Plan: p4}, {Plan: tri}}
	groups := groupQueries(qs)
	if len(groups) != 2 {
		t.Fatalf("got %d groups: %v", len(groups), groups)
	}
	if fmt.Sprint(groups[0]) != "[0 2 4]" || fmt.Sprint(groups[1]) != "[1 3]" {
		t.Fatalf("grouping: %v", groups)
	}

	// 65 compatible queries must split into word-sized chunks.
	big := make([]Query, 65)
	for i := range big {
		big[i] = Query{Plan: tri}
	}
	groups = groupQueries(big)
	if len(groups) != 2 || len(groups[0]) != 64 || len(groups[1]) != 1 {
		t.Fatalf("65-way split: %d groups, sizes %d/%d", len(groups), len(groups[0]), len(groups[len(groups)-1]))
	}
}
