package gen

import (
	"fmt"
	"sort"

	"light/internal/graph"
)

// Dataset is one entry of the synthetic evaluation suite (the Table II
// analog): a named, seeded generator invocation.
type Dataset struct {
	Name  string // short name mirroring the paper's (yt-s for youtube, …)
	Paper string // the real-world graph it stands in for
	Make  func() *graph.Graph
}

// Suite returns the six synthetic analogs of the paper's datasets, in the
// paper's order. Sizes keep the paper's relative ladder (yt smallest and
// sparse, fs largest) while staying laptop-sized. The scale parameter
// multiplies all vertex counts; scale 1 targets seconds-per-experiment,
// suitable for `go test`. The harness uses larger scales.
func Suite(scale int) []Dataset {
	if scale < 1 {
		scale = 1
	}
	s := scale
	return []Dataset{
		{"yt-s", "youtube", func() *graph.Graph { return BarabasiAlbert(3200*s, 3, 101) }},
		{"eu-s", "eu-2005", func() *graph.Graph { return RMATSoft(ilog2(900*s)+1, 10, 102) }},
		{"lj-s", "live-journal", func() *graph.Graph { return BarabasiAlbert(4800*s, 7, 103) }},
		{"ot-s", "com-orkut", func() *graph.Graph { return BarabasiAlbert(3100*s, 10, 104) }},
		{"uk-s", "uk-2002", func() *graph.Graph { return RMATSoft(ilog2(6000*s)+1, 5, 105) }},
		{"fs-s", "friendster", func() *graph.Graph { return BarabasiAlbert(14000*s, 6, 106) }},
	}
}

// ByName returns the named dataset from Suite(scale), or an error listing
// the valid names.
func ByName(name string, scale int) (Dataset, error) {
	suite := Suite(scale)
	names := make([]string, 0, len(suite))
	for _, d := range suite {
		if d.Name == name {
			return d, nil
		}
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, names)
}

// ilog2 returns floor(log2(x)) for x >= 1.
func ilog2(x int) int {
	l := 0
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}
