// Package gen produces deterministic synthetic data graphs.
//
// The paper evaluates on six real-world graphs (youtube, eu-2005,
// live-journal, com-orkut, uk-2002, friendster) that are unavailable
// offline and, at up to 1.8 billion edges, beyond a laptop reproduction.
// This package substitutes seeded generators whose outputs preserve the
// properties the evaluation depends on: heavy-tailed degree distributions
// (power-law via preferential attachment and R-MAT) and a ladder of sizes
// and densities (see Suite). All generators are deterministic for a given
// seed.
package gen

import (
	"math/rand"

	"light/internal/graph"
)

// ErdosRenyi generates G(n, m): m distinct uniformly random edges on n
// vertices. Degree distribution is binomial (no skew); used as the
// low-skew contrast case in tests and benchmarks.
func ErdosRenyi(n int, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	seen := make(map[[2]graph.VertexID]bool, m)
	for len(seen) < m && len(seen) < n*(n-1)/2 {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]graph.VertexID{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.BuildOrdered()
}

// BarabasiAlbert generates a preferential-attachment graph: vertices
// arrive one at a time and attach k edges to existing vertices chosen
// proportionally to their current degree. Produces a power-law degree
// distribution similar to social networks (the yt/lj/ot analogs).
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// targets holds one entry per edge endpoint, so uniform sampling from
	// it is degree-proportional sampling.
	targets := make([]graph.VertexID, 0, 2*n*k)
	// Seed clique on the first k+1 vertices.
	seedSize := k + 1
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			targets = append(targets, graph.VertexID(i), graph.VertexID(j))
		}
	}
	picked := make([]graph.VertexID, 0, k)
	for v := seedSize; v < n; v++ {
		picked = picked[:0]
		for len(picked) < k {
			t := targets[rng.Intn(len(targets))]
			dup := false
			for _, p := range picked {
				if p == t {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, t)
			}
		}
		for _, t := range picked {
			b.AddEdge(graph.VertexID(v), t)
			targets = append(targets, graph.VertexID(v), t)
		}
	}
	return b.BuildOrdered()
}

// RMAT generates a recursive-matrix graph with 2^scale vertices and
// roughly edgeFactor * 2^scale edges using the standard (a,b,c,d) =
// (0.57, 0.19, 0.19, 0.05) parameters, which yield the skewed,
// community-structured degree distribution of web graphs. Self-loops and
// duplicates are dropped, so the final edge count is slightly below the
// nominal one.
func RMAT(scale, edgeFactor int, seed int64) *graph.Graph {
	return rmat(scale, edgeFactor, seed, 0.57, 0.19, 0.19)
}

// RMATSoft is RMAT with milder corner weights (0.45, 0.22, 0.22, 0.11):
// still heavy-tailed but without the extreme hubs that make dense-cycle
// patterns infeasible at reproduction scale. The web-graph stand-ins in
// Suite use it; see DESIGN.md §3.
func RMATSoft(scale, edgeFactor int, seed int64) *graph.Graph {
	return rmat(scale, edgeFactor, seed, 0.45, 0.22, 0.22)
}

func rmat(scale, edgeFactor int, seed int64, a, bb, c float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := edgeFactor * n
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		var u, v int
		half := n / 2
		for half >= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: nothing to add
			case r < a+bb:
				v += half
			case r < a+bb+c:
				u += half
			default:
				u += half
				v += half
			}
			half /= 2
		}
		b.AddEdge(graph.VertexID(u), graph.VertexID(v))
	}
	return b.BuildOrdered()
}

// Complete generates K_n, the complete graph on n vertices. Used by the
// AGM-bound worst-case tests (Example II.1: the chordal square has
// Θ(M²) results on a complete graph).
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return b.Build() // already ordered: all degrees equal
}

// Grid generates the rows×cols 2D grid graph (4-neighborhood). Low,
// uniform degree; useful as a "no skew, no triangles" stress case.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.BuildOrdered()
}

// Star generates K_{1,n}: one hub adjacent to n leaves. The extreme
// cardinality-skew case for intersection benchmarks.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n + 1)
	for i := 1; i <= n; i++ {
		b.AddEdge(0, graph.VertexID(i))
	}
	return b.BuildOrdered()
}

// StarChords generates a star K_{1,leaves} plus chords random leaf–leaf
// edges: the hub keeps its extreme cardinality skew, while the chords
// close triangles so cyclic patterns have matches. An adversarial
// family for the differential harness — one huge candidate set feeding
// every intersection, and hub/leaf id extremes exercising the
// symmetry-breaking bounds.
func StarChords(leaves, chords int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(leaves + 1)
	for i := 1; i <= leaves; i++ {
		b.AddEdge(0, graph.VertexID(i))
	}
	for i := 0; i < chords && leaves >= 2; i++ {
		u := graph.VertexID(1 + rng.Intn(leaves))
		v := graph.VertexID(1 + rng.Intn(leaves))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.BuildOrdered()
}

// NearBipartite generates the complete bipartite graph K_{a,b} with
// `flips` perturbations: each flip removes one random cross edge and
// adds one random same-side edge. Pure bipartite graphs have zero
// odd-cycle matches and maximal even-cycle counts; the flips create
// rare odd cycles, an adversarial mix for symmetry breaking and for
// count cross-checks (a miscounted family shows up as a small absolute
// discrepancy instead of vanishing in a sea of matches).
func NearBipartite(a, b, flips int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	bl := graph.NewBuilder(a + b)
	type edge struct{ u, v graph.VertexID }
	cross := make([]edge, 0, a*b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			cross = append(cross, edge{graph.VertexID(i), graph.VertexID(a + j)})
		}
	}
	removed := map[int]bool{}
	for i := 0; i < flips && i < len(cross)/2; i++ {
		removed[rng.Intn(len(cross))] = true
		// Same-side edge: pick the side at random.
		if rng.Intn(2) == 0 && a >= 2 {
			u, v := rng.Intn(a), rng.Intn(a)
			if u != v {
				bl.AddEdge(graph.VertexID(u), graph.VertexID(v))
			}
		} else if b >= 2 {
			u, v := a+rng.Intn(b), a+rng.Intn(b)
			if u != v {
				bl.AddEdge(graph.VertexID(u), graph.VertexID(v))
			}
		}
	}
	for i, e := range cross {
		if !removed[i] {
			bl.AddEdge(e.u, e.v)
		}
	}
	return bl.BuildOrdered()
}

// DegreeTies generates `copies` disjoint identical gadgets — a cycle of
// `size` vertices with one chord — joined into one component by a light
// random matching between consecutive copies. Almost every vertex has
// degree 2 or 3, so the ordered-graph relabeling (degree, then id) is
// decided nearly everywhere by id tie-breaks: the adversarial family
// for bugs that only show up when many vertices compare equal under
// the degree order.
func DegreeTies(copies, size int, seed int64) *graph.Graph {
	if size < 4 {
		size = 4
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(copies * size)
	for c := 0; c < copies; c++ {
		base := graph.VertexID(c * size)
		for i := 0; i < size; i++ {
			b.AddEdge(base+graph.VertexID(i), base+graph.VertexID((i+1)%size))
		}
		b.AddEdge(base, base+graph.VertexID(size/2)) // the chord
		if c > 0 {
			// One connector edge to the previous copy keeps the graph
			// connected without disturbing the tie structure much.
			b.AddEdge(base-graph.VertexID(1+rng.Intn(size)), base+graph.VertexID(rng.Intn(size)))
		}
	}
	return b.BuildOrdered()
}
