package gen

import (
	"testing"

	"light/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("N = %d, want 100", g.NumVertices())
	}
	if g.NumEdges() != 300 {
		t.Fatalf("M = %d, want 300", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsOrdered() {
		t.Fatal("not degree-ordered")
	}
}

func TestErdosRenyiSaturates(t *testing.T) {
	// Asking for more edges than possible must terminate with K_n.
	g := ErdosRenyi(5, 100, 1)
	if g.NumEdges() != 10 {
		t.Fatalf("M = %d, want 10 (complete)", g.NumEdges())
	}
}

func TestDeterminism(t *testing.T) {
	a := BarabasiAlbert(200, 3, 7)
	b := BarabasiAlbert(200, 3, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("BA not deterministic")
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(graph.VertexID(v)), b.Neighbors(graph.VertexID(v))
		if len(na) != len(nb) {
			t.Fatalf("BA not deterministic at vertex %d", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("BA not deterministic at vertex %d", v)
			}
		}
	}
	c := RMAT(8, 4, 9)
	d := RMAT(8, 4, 9)
	if c.NumEdges() != d.NumEdges() {
		t.Fatal("RMAT not deterministic")
	}
}

func TestBarabasiAlbertSkew(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Preferential attachment must produce hubs: max degree well above
	// the average.
	if float64(g.MaxDegree()) < 5*g.AverageDegree() {
		t.Fatalf("no skew: dmax=%d avg=%.1f", g.MaxDegree(), g.AverageDegree())
	}
	// Every vertex has degree >= k (each new vertex attaches k edges).
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.VertexID(v)) < 3 {
			t.Fatalf("vertex %d has degree %d < k", v, g.Degree(graph.VertexID(v)))
		}
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT(10, 8, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("N = %d, want 1024", g.NumVertices())
	}
	if float64(g.MaxDegree()) < 4*g.AverageDegree() {
		t.Fatalf("no skew: dmax=%d avg=%.1f", g.MaxDegree(), g.AverageDegree())
	}
}

func TestComplete(t *testing.T) {
	g := Complete(10)
	if g.NumEdges() != 45 {
		t.Fatalf("M = %d, want 45", g.NumEdges())
	}
	if g.MaxDegree() != 9 {
		t.Fatalf("dmax = %d, want 9", g.MaxDegree())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("N = %d, want 12", g.NumVertices())
	}
	// 3 rows of 3 horizontal edges + 2 rows of 4 vertical edges = 9+8.
	if g.NumEdges() != 17 {
		t.Fatalf("M = %d, want 17", g.NumEdges())
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.NumVertices() != 7 || g.NumEdges() != 6 || g.MaxDegree() != 6 {
		t.Fatalf("bad star: %v", g)
	}
}

func TestSuite(t *testing.T) {
	suite := Suite(1)
	if len(suite) != 6 {
		t.Fatalf("suite has %d datasets, want 6", len(suite))
	}
	var prevEdges int64
	for i, d := range suite {
		g := d.Make()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		t.Logf("%s (%s): %v", d.Name, d.Paper, g)
		_ = i
		_ = prevEdges
	}
	// The size ladder: fs-s must be the largest by edge count, yt-s among
	// the smallest, as in the paper's Table II.
	first := suite[0].Make()
	last := suite[5].Make()
	if last.NumEdges() <= first.NumEdges() {
		t.Fatalf("size ladder broken: fs-s (%d) <= yt-s (%d)", last.NumEdges(), first.NumEdges())
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("yt-s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Paper != "youtube" {
		t.Fatalf("Paper = %q", d.Paper)
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestStarChords(t *testing.T) {
	g := StarChords(50, 30, 3)
	if g.NumVertices() != 51 {
		t.Fatalf("N = %d, want 51", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hub keeps its full degree; chords can only add to leaves.
	if g.MaxDegree() < 50 {
		t.Fatalf("hub degree %d < 50", g.MaxDegree())
	}
	if g.NumEdges() <= 50 {
		t.Fatal("no chords landed")
	}
	a, b := StarChords(50, 30, 3), StarChords(50, 30, 3)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("StarChords not deterministic")
	}
}

// bipartite reports whether g is 2-colorable, via BFS over every
// component.
func bipartite(g *graph.Graph) bool {
	color := make([]int8, g.NumVertices())
	for s := 0; s < g.NumVertices(); s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue := []graph.VertexID{graph.VertexID(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if color[v] == 0 {
					color[v] = -color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return false
				}
			}
		}
	}
	return true
}

func TestNearBipartite(t *testing.T) {
	// Zero flips is exactly K_{a,b}: a*b edges and genuinely bipartite.
	g := NearBipartite(6, 7, 0, 1)
	if g.NumVertices() != 13 || g.NumEdges() != 42 {
		t.Fatalf("K_{6,7}: got %v", g)
	}
	if !bipartite(g) {
		t.Fatal("unflipped NearBipartite is not bipartite")
	}
	// Flips break bipartiteness (for this seed a same-side edge lands).
	f := NearBipartite(6, 7, 8, 1)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if bipartite(f) {
		t.Fatal("flips produced no odd cycle")
	}
	if f.NumEdges() >= 42+8 || f.NumEdges() <= 42-2*8 {
		t.Fatalf("flipped edge count %d implausible", f.NumEdges())
	}
	a, b := NearBipartite(6, 7, 8, 1), NearBipartite(6, 7, 8, 1)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("NearBipartite not deterministic")
	}
}

func TestDegreeTies(t *testing.T) {
	g := DegreeTies(8, 6, 5)
	if g.NumVertices() != 48 {
		t.Fatalf("N = %d, want 48", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The point of the family: nearly every vertex shares its degree with
	// many others. Check the degree spectrum is tiny.
	degrees := map[int]int{}
	for v := 0; v < g.NumVertices(); v++ {
		degrees[g.Degree(graph.VertexID(v))]++
	}
	if len(degrees) > 4 {
		t.Fatalf("degree spectrum too wide for a tie family: %v", degrees)
	}
	// Connector edges must make it one component.
	seen := make([]bool, g.NumVertices())
	queue := []graph.VertexID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	if count != g.NumVertices() {
		t.Fatalf("DegreeTies disconnected: reached %d of %d", count, g.NumVertices())
	}
}

func TestRMATSoft(t *testing.T) {
	soft := RMATSoft(10, 8, 3)
	hard := RMAT(10, 8, 3)
	if err := soft.Validate(); err != nil {
		t.Fatal(err)
	}
	if soft.NumVertices() != 1024 {
		t.Fatalf("N = %d", soft.NumVertices())
	}
	// Softer corner weights must produce a flatter degree distribution.
	if soft.MaxDegree() >= hard.MaxDegree() {
		t.Fatalf("soft dmax %d !< hard dmax %d", soft.MaxDegree(), hard.MaxDegree())
	}
	// ...but still skewed relative to the average.
	if float64(soft.MaxDegree()) < 3*soft.AverageDegree() {
		t.Fatalf("RMATSoft lost its skew: dmax=%d avg=%.1f", soft.MaxDegree(), soft.AverageDegree())
	}
}
