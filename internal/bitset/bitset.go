// Package bitset provides word-packed bitmaps scoped to a vertex-id
// interval. The hub-bitmap intersection strategy (Ferraz et al.,
// "Efficient Strategies for Graph Pattern Mining Algorithms on GPUs")
// represents the neighbor list of a high-degree vertex as a bitmap so
// that intersecting any sorted set against it degenerates to one O(1)
// membership probe per element — O(|small|) total, versus
// O(|small|·log|large|) for galloping.
//
// A Bitmap covers only the span [Lo, Lo+Span) of the sorted ids it was
// built from, not the whole id universe, so memory is proportional to
// the list's value range rather than |V(G)|. Contains is branch-light
// and allocation-free (hotpath-verified by lightvet).
package bitset

import "math/bits"

// wordBits is the width of one storage word.
const wordBits = 64

// Bitmap is an immutable membership structure over a half-open uint32
// interval. The zero value is an empty bitmap containing nothing.
type Bitmap struct {
	lo    uint32
	words []uint64
	ones  int
}

// FromSorted builds a bitmap containing exactly the values of vs, which
// must be sorted ascending and duplicate-free (the CSR neighbor-list
// invariant). The bitmap's span is [vs[0], vs[len-1]+1). An empty input
// yields an empty bitmap.
func FromSorted(vs []uint32) *Bitmap {
	b := &Bitmap{}
	if len(vs) == 0 {
		return b
	}
	b.lo = vs[0]
	span := int64(vs[len(vs)-1]) - int64(vs[0]) + 1
	b.words = make([]uint64, (span+wordBits-1)/wordBits)
	for _, v := range vs {
		d := uint64(v - b.lo)
		b.words[d/wordBits] |= 1 << (d % wordBits)
	}
	b.ones = len(vs)
	return b
}

// Contains reports whether v is in the bitmap. Values outside the span
// are simply absent — no bounds panic, no wraparound (the v < lo guard
// runs before the offset subtraction).
//
//light:hotpath
func (b *Bitmap) Contains(v uint32) bool {
	if v < b.lo {
		return false
	}
	d := uint64(v - b.lo)
	w := d / wordBits
	if w >= uint64(len(b.words)) {
		return false
	}
	return b.words[w]&(1<<(d%wordBits)) != 0
}

// Lo returns the smallest value the span covers (0 for an empty bitmap).
func (b *Bitmap) Lo() uint32 { return b.lo }

// Span returns the number of values the interval covers.
func (b *Bitmap) Span() int64 { return int64(len(b.words)) * wordBits }

// Ones returns the number of set bits, i.e. the cardinality of the set
// the bitmap was built from.
func (b *Bitmap) Ones() int { return b.ones }

// MemoryBytes returns the heap footprint of the word storage.
func (b *Bitmap) MemoryBytes() int64 { return int64(len(b.words)) * 8 }

// EstimateBytes returns the word-storage size FromSorted would allocate
// for a sorted list spanning [lo, hi] inclusive, letting callers budget
// an index without building it. lo > hi returns 0.
func EstimateBytes(lo, hi uint32) int64 {
	if lo > hi {
		return 0
	}
	span := int64(hi) - int64(lo) + 1
	return (span + wordBits - 1) / wordBits * 8
}

// count recomputes the popcount; used by tests to cross-check Ones.
func (b *Bitmap) count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}
