package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

func sortedUnique(r *rand.Rand, n int, max uint32) []uint32 {
	if int64(n) > int64(max)+1 {
		n = int(max) + 1 // only max+1 distinct values exist in [0, max]
	}
	seen := map[uint32]bool{}
	for len(seen) < n {
		seen[uint32(r.Int63n(int64(max)+1))] = true
	}
	out := make([]uint32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestEmpty(t *testing.T) {
	b := FromSorted(nil)
	for _, v := range []uint32{0, 1, 63, 64, 1 << 31, ^uint32(0)} {
		if b.Contains(v) {
			t.Errorf("empty bitmap contains %d", v)
		}
	}
	if b.Ones() != 0 || b.MemoryBytes() != 0 || b.Span() != 0 {
		t.Errorf("empty bitmap has Ones=%d MemoryBytes=%d Span=%d", b.Ones(), b.MemoryBytes(), b.Span())
	}
	var zero Bitmap
	if zero.Contains(0) {
		t.Error("zero-value bitmap contains 0")
	}
}

func TestSingle(t *testing.T) {
	for _, v := range []uint32{0, 1, 63, 64, 65, 1 << 20, ^uint32(0)} {
		b := FromSorted([]uint32{v})
		if !b.Contains(v) {
			t.Errorf("bitmap of {%d} misses %d", v, v)
		}
		if v > 0 && b.Contains(v-1) {
			t.Errorf("bitmap of {%d} contains %d", v, v-1)
		}
		if v < ^uint32(0) && b.Contains(v+1) {
			t.Errorf("bitmap of {%d} contains %d", v, v+1)
		}
		if b.Ones() != 1 || b.MemoryBytes() != 8 {
			t.Errorf("bitmap of {%d}: Ones=%d MemoryBytes=%d", v, b.Ones(), b.MemoryBytes())
		}
	}
}

// TestWordBoundaries exercises spans that end exactly at, one short of,
// and one past a 64-bit word edge, where an off-by-one in the word
// count silently drops the top values.
func TestWordBoundaries(t *testing.T) {
	for _, span := range []int{62, 63, 64, 65, 127, 128, 129} {
		for _, lo := range []uint32{0, 1, 63, 64, 1000} {
			vs := []uint32{lo, lo + uint32(span) - 1}
			b := FromSorted(vs)
			for _, v := range vs {
				if !b.Contains(v) {
					t.Fatalf("span=%d lo=%d: missing %d", span, lo, v)
				}
			}
			if b.Contains(lo + uint32(span)) {
				t.Fatalf("span=%d lo=%d: contains one past the end", span, lo)
			}
		}
	}
}

// TestRandomAgainstMap is the membership property test: a bitmap built
// from a random sorted set answers Contains exactly like the set, for
// members, non-members inside the span, and values outside it.
func TestRandomAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		max := uint32(1 + r.Intn(10000))
		n := 1 + r.Intn(200)
		if int64(n) > int64(max) {
			n = int(max)
		}
		vs := sortedUnique(r, n, max)
		b := FromSorted(vs)
		if b.Ones() != len(vs) || b.count() != len(vs) {
			t.Fatalf("trial %d: Ones=%d popcount=%d want %d", trial, b.Ones(), b.count(), len(vs))
		}
		in := map[uint32]bool{}
		for _, v := range vs {
			in[v] = true
		}
		for q := uint32(0); q <= max; q++ {
			if b.Contains(q) != in[q] {
				t.Fatalf("trial %d: Contains(%d)=%v want %v", trial, q, b.Contains(q), in[q])
			}
		}
		// Probes far outside the span in both directions.
		if vs[0] > 0 && b.Contains(vs[0]-1) && !in[vs[0]-1] {
			t.Fatalf("trial %d: below-span false positive", trial)
		}
		if b.Contains(^uint32(0)) && !in[^uint32(0)] {
			t.Fatalf("trial %d: above-span false positive", trial)
		}
	}
}

func TestEstimateBytes(t *testing.T) {
	cases := []struct {
		lo, hi uint32
		want   int64
	}{
		{0, 0, 8}, {0, 63, 8}, {0, 64, 16}, {5, 5, 8},
		{100, 99, 0}, {0, 127, 16}, {0, 128, 24},
	}
	for _, c := range cases {
		if got := EstimateBytes(c.lo, c.hi); got != c.want {
			t.Errorf("EstimateBytes(%d,%d)=%d want %d", c.lo, c.hi, got, c.want)
		}
	}
	// Estimate must agree with what FromSorted actually allocates.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		vs := sortedUnique(r, 1+r.Intn(50), uint32(1+r.Intn(5000)))
		b := FromSorted(vs)
		if got := EstimateBytes(vs[0], vs[len(vs)-1]); got != b.MemoryBytes() {
			t.Fatalf("trial %d: estimate %d != actual %d", trial, got, b.MemoryBytes())
		}
	}
}

func TestContainsZeroAlloc(t *testing.T) {
	b := FromSorted([]uint32{3, 70, 500})
	if n := testing.AllocsPerRun(100, func() {
		_ = b.Contains(70)
		_ = b.Contains(71)
		_ = b.Contains(0)
	}); n != 0 {
		t.Fatalf("Contains allocates %v per run", n)
	}
}
