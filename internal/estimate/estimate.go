// Package estimate provides the cardinality estimation the paper's
// Section VI needs: |R(P')| for subgraphs P' of the pattern, via the
// SEED-style expand-factor simulation, plus the AGM bound machinery
// (fractional edge covers) used in the paper's analysis.
//
// The SEED estimator simulates building the partial results of P' by
// adding one vertex at a time along a connected order and multiplying an
// expand factor per added edge. On skewed graphs the expected degree of a
// vertex reached by following an edge is Σd²/2M (degree-biased), not
// 2M/N; the estimator uses the biased moment for the first backward edge
// of each new vertex and a degree-biased closing probability for the
// rest. Absolute accuracy is secondary: the optimizer only compares
// orders on the same graph, so consistent relative error is what matters.
package estimate

import (
	"math"
	"math/bits"

	"light/internal/graph"
	"light/internal/pattern"
)

// GraphStats summarizes a data graph for estimation. Build one with
// Collect; it is cheap (reads only cached degree moments).
type GraphStats struct {
	N          float64 // |V(G)|
	M          float64 // |E(G)|
	DegreeSum2 float64 // Σ d(v)²
}

// Collect extracts estimation statistics from g.
func Collect(g *graph.Graph) GraphStats {
	return GraphStats{
		N:          float64(g.NumVertices()),
		M:          float64(g.NumEdges()),
		DegreeSum2: g.DegreeSum2(),
	}
}

// ExpandFactor returns the expected number of extensions when following
// one new edge out of an existing partial result: the degree-biased mean
// degree Σd²/2M (an edge endpoint is reached with probability
// proportional to its degree). Falls back to the average degree when the
// graph has no edges.
func (s GraphStats) ExpandFactor() float64 {
	if s.M <= 0 {
		return 0
	}
	return s.DegreeSum2 / (2 * s.M)
}

// ClosingProbability returns the probability that a degree-biased random
// vertex is adjacent to a specific already-matched vertex, used for every
// backward edge beyond the first: ExpandFactor / N.
func (s GraphStats) ClosingProbability() float64 {
	if s.N <= 0 {
		return 0
	}
	p := s.ExpandFactor() / s.N
	return math.Min(p, 1)
}

// Alpha returns the paper's α: the estimated cost weight of one set
// intersection, taken as the maximum expand factor (Section VI takes the
// max "to give a higher weight to the cost of the computation").
func (s GraphStats) Alpha() float64 {
	f := s.ExpandFactor()
	if f < 1 {
		return 1
	}
	return f
}

// Subgraph estimates |R(P[mask])|: the number of matches of the
// vertex-induced subgraph of p on the vertices in mask. Disconnected
// induced subgraphs multiply their components' estimates. An empty mask
// estimates 1.
func (s GraphStats) Subgraph(p *pattern.Pattern, mask uint32) float64 {
	total := 1.0
	for mask != 0 {
		comp := componentOf(p, mask, lowestBit(mask))
		total *= s.connectedComponent(p, comp)
		mask &^= comp
	}
	return total
}

// Pattern estimates |R(P)| for the whole pattern.
func (s GraphStats) Pattern(p *pattern.Pattern) float64 {
	return s.Subgraph(p, uint32(1<<uint(p.NumVertices()))-1)
}

// connectedComponent estimates the match count of the connected induced
// subgraph on mask by simulating vertex-at-a-time growth along a
// connected order (highest-degree-in-mask first).
func (s GraphStats) connectedComponent(p *pattern.Pattern, mask uint32) float64 {
	if mask == 0 {
		return 1
	}
	// Pick the start vertex: highest induced degree, ties to lowest id.
	start, bestDeg := -1, -1
	for m := mask; m != 0; m &= m - 1 {
		u := lowestBit(m)
		d := bits.OnesCount32(p.NeighborMask(u) & mask)
		if d > bestDeg {
			start, bestDeg = u, d
		}
	}
	count := s.N
	placed := uint32(1 << uint(start))
	for placed != mask {
		// Next vertex: most backward edges into placed (maximizes early
		// pruning, mirroring how good orders behave), ties to lowest id.
		next, nextBack := -1, -1
		for m := mask &^ placed; m != 0; m &= m - 1 {
			u := lowestBit(m)
			back := bits.OnesCount32(p.NeighborMask(u) & placed)
			if back > nextBack {
				next, nextBack = u, back
			}
		}
		if nextBack == 0 {
			// Disconnected remainder (callers prevent this); treat as a
			// fresh component factor.
			count *= s.N
			placed |= 1 << uint(next)
			continue
		}
		f := s.ExpandFactor()
		pc := s.ClosingProbability()
		count *= f * math.Pow(pc, float64(nextBack-1))
		placed |= 1 << uint(next)
	}
	return count
}

// componentOf returns the connected component of start within the induced
// subgraph on mask.
func componentOf(p *pattern.Pattern, mask uint32, start int) uint32 {
	visited := uint32(1 << uint(start))
	frontier := visited
	for frontier != 0 {
		next := uint32(0)
		for f := frontier; f != 0; f &= f - 1 {
			u := lowestBit(f)
			next |= p.NeighborMask(u) & mask
		}
		frontier = next &^ visited
		visited |= frontier
	}
	return visited
}

func lowestBit(m uint32) int { return bits.TrailingZeros32(m) }

// FractionalEdgeCover computes the optimal fractional edge cover number
// ρ* of p (Definition II.7). Fractional edge cover LPs have
// half-integral optima, so an exhaustive search over x(e) ∈ {0, ½, 1}
// (3^m assignments, m ≤ 10 in the catalog) is exact.
func FractionalEdgeCover(p *pattern.Pattern) float64 {
	edges := p.Edges()
	m := len(edges)
	n := p.NumVertices()
	best := math.Inf(1)
	weights := make([]float64, m)
	var rec func(i int, sum float64)
	rec = func(i int, sum float64) {
		if sum >= best {
			return
		}
		if i == m {
			// Check coverage: Σ_{e ∋ u} x(e) ≥ 1 for every vertex.
			for u := 0; u < n; u++ {
				cov := 0.0
				for j, e := range edges {
					if e[0] == u || e[1] == u {
						cov += weights[j]
					}
				}
				if cov < 1-1e-9 {
					return
				}
			}
			best = sum
			return
		}
		for _, w := range [...]float64{0, 0.5, 1} {
			weights[i] = w
			rec(i+1, sum+w)
		}
		weights[i] = 0
	}
	rec(0, 0)
	return best
}

// AGMBound returns the AGM output-size bound M^ρ*(P) for a graph with M
// edges (Example II.1).
func AGMBound(p *pattern.Pattern, m int64) float64 {
	return math.Pow(float64(m), FractionalEdgeCover(p))
}
