package estimate

import (
	"math"
	"testing"

	"light/internal/gen"
	"light/internal/pattern"
)

func TestCollectAndMoments(t *testing.T) {
	g := gen.Complete(10)
	s := Collect(g)
	if s.N != 10 || s.M != 45 {
		t.Fatalf("stats = %+v", s)
	}
	// Complete graph: every degree 9, Σd² = 810, expand factor = 9.
	if got := s.ExpandFactor(); got != 9 {
		t.Fatalf("ExpandFactor = %v, want 9", got)
	}
	if got := s.ClosingProbability(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("ClosingProbability = %v, want 0.9", got)
	}
	if s.Alpha() != 9 {
		t.Fatalf("Alpha = %v", s.Alpha())
	}
}

func TestZeroGraph(t *testing.T) {
	var s GraphStats
	if s.ExpandFactor() != 0 || s.ClosingProbability() != 0 {
		t.Fatal("zero stats should yield zero factors")
	}
	if s.Alpha() != 1 {
		t.Fatalf("Alpha floor = %v, want 1", s.Alpha())
	}
}

func TestSubgraphEstimatesOrdering(t *testing.T) {
	// On any graph, richer subgraphs of the same vertex count must not be
	// estimated larger: triangle ≤ path3 ≤ pair of disconnected edges? —
	// at least the clique chain must be monotone decreasing relative to
	// products of independent vertices.
	g := gen.BarabasiAlbert(2000, 5, 1)
	s := Collect(g)
	tri := s.Pattern(pattern.Triangle())
	p3 := s.Pattern(pattern.Path(3))
	if tri > p3 {
		t.Fatalf("triangle estimate %g > path3 estimate %g", tri, p3)
	}
	c4 := s.Pattern(pattern.Clique(4))
	if c4 > tri*s.N {
		t.Fatalf("clique4 estimate %g implausibly large", c4)
	}
	if tri <= 0 || p3 <= 0 {
		t.Fatal("estimates must be positive")
	}
}

func TestSubgraphEmptyAndSingle(t *testing.T) {
	g := gen.Complete(5)
	s := Collect(g)
	p := pattern.P1()
	if got := s.Subgraph(p, 0); got != 1 {
		t.Fatalf("empty mask = %v, want 1", got)
	}
	if got := s.Subgraph(p, 1); got != 5 {
		t.Fatalf("single vertex = %v, want N", got)
	}
}

func TestSubgraphDisconnectedMultiplies(t *testing.T) {
	g := gen.Complete(6)
	s := Collect(g)
	p := pattern.P1() // square: mask {u0,u2} and {u1,u3} have no edges
	single := s.Subgraph(p, 0b0001)
	pair := s.Subgraph(p, 0b0101)
	if math.Abs(pair-single*single) > 1e-9 {
		t.Fatalf("disconnected pair = %v, want %v", pair, single*single)
	}
}

func TestSubgraphExactOnCompleteEdge(t *testing.T) {
	// One edge on K_n: N * expand = n * (n-1) ordered matches. For K10:
	// 90. The estimator should be exact here.
	g := gen.Complete(10)
	s := Collect(g)
	p := pattern.Path(2)
	if got := s.Pattern(p); math.Abs(got-90) > 1e-9 {
		t.Fatalf("edge estimate on K10 = %v, want 90", got)
	}
}

func TestFractionalEdgeCover(t *testing.T) {
	cases := []struct {
		p    *pattern.Pattern
		want float64
	}{
		{pattern.Triangle(), 1.5}, // each edge ½
		{pattern.P1(), 2},         // square: alternating 1s or all ½
		{pattern.P2(), 2},         // Example II.1: the chordal square has ρ* = 2
		{pattern.P3(), 2},         // K4: all edges ⅓? no — half-integral: 4 vertices need Σ ≥ 2
		{pattern.Path(2), 1},
		{pattern.Path(3), 2}, // middle vertex shared; ends need their edge at 1... min is 2? e1=1,e2=1
		{pattern.Cycle(5), 2.5},
	}
	for _, c := range cases {
		if got := FractionalEdgeCover(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: ρ* = %v, want %v", c.p.Name(), got, c.want)
		}
	}
}

func TestAGMBound(t *testing.T) {
	// Example II.1: the chordal square on a graph with M edges is bounded
	// by M².
	got := AGMBound(pattern.P2(), 100)
	if math.Abs(got-10000) > 1e-6 {
		t.Fatalf("AGM(P2, M=100) = %v, want 10000", got)
	}
}
