package metrics

import (
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestRecorderAddGet(t *testing.T) {
	r := NewRecorder()
	r.Add(EngineNodes, 41)
	r.Inc(EngineNodes)
	r.Inc(IntersectOps)
	r.AddDuration(ParallelBusyNanos, 3*time.Millisecond)
	r.AddDuration(ParallelBusyNanos, -time.Second) // negative: ignored
	if got := r.Get(EngineNodes); got != 42 {
		t.Fatalf("EngineNodes = %d, want 42", got)
	}
	if got := r.Get(IntersectOps); got != 1 {
		t.Fatalf("IntersectOps = %d, want 1", got)
	}
	if got := r.GetDuration(ParallelBusyNanos); got != 3*time.Millisecond {
		t.Fatalf("busy = %v, want 3ms", got)
	}
	if got := r.Get(EngineMatches); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
	r.Reset()
	if got := r.Get(EngineNodes); got != 0 {
		t.Fatalf("after Reset: %d, want 0", got)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Add(EngineNodes, 7)
	r.Inc(EngineMatches)
	r.AddDuration(ParallelBusyNanos, time.Second)
	r.Reset()
	if got := r.Get(EngineNodes); got != 0 {
		t.Fatalf("nil recorder Get = %d, want 0", got)
	}
	snap := r.Snapshot()
	for k, v := range snap {
		if v != 0 {
			t.Fatalf("nil recorder snapshot %s = %d, want 0", k, v)
		}
	}
}

// TestDisabledModeZeroAllocations is the disabled-overhead contract:
// recording into a nil Recorder — the disabled mode — must not allocate,
// and neither must recording into a live one.
func TestDisabledModeZeroAllocations(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.Add(EngineNodes, 3)
		nilRec.Inc(IntersectOps)
		nilRec.AddDuration(ParallelBusyNanos, time.Millisecond)
	}); n != 0 {
		t.Fatalf("nil recorder: %v allocs/op, want 0", n)
	}
	live := NewRecorder()
	if n := testing.AllocsPerRun(1000, func() {
		live.Add(EngineNodes, 3)
		live.Inc(IntersectOps)
		live.AddDuration(ParallelBusyNanos, time.Millisecond)
	}); n != 0 {
		t.Fatalf("live recorder: %v allocs/op, want 0", n)
	}
}

// TestConcurrentAdds proves counts are exact under concurrency (and
// race-clean under -race).
func TestConcurrentAdds(t *testing.T) {
	r := NewRecorder()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Inc(EngineNodes)
				r.Add(IntersectElements, 2)
			}
		}()
	}
	wg.Wait()
	if got := r.Get(EngineNodes); got != workers*perWorker {
		t.Fatalf("EngineNodes = %d, want %d", got, workers*perWorker)
	}
	if got := r.Get(IntersectElements); got != 2*workers*perWorker {
		t.Fatalf("IntersectElements = %d, want %d", got, 2*workers*perWorker)
	}
}

// TestCounterPadding pins the false-sharing defence: every counter cell
// spans a full cache line.
func TestCounterPadding(t *testing.T) {
	if sz := unsafe.Sizeof(counter{}); sz != cacheLine {
		t.Fatalf("sizeof(counter) = %d, want %d", sz, cacheLine)
	}
}

func TestEveryIDHasAName(t *testing.T) {
	seen := map[string]ID{}
	for id := ID(0); id < NumIDs; id++ {
		name := id.String()
		if name == "" || name == "unknown" {
			t.Fatalf("counter %d has no name", id)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("counters %d and %d share the name %q", prev, id, name)
		}
		seen[name] = id
	}
	if ID(NumIDs+1).String() != "unknown" {
		t.Fatal("out-of-range ID should stringify as unknown")
	}
}

func TestSnapshotKeys(t *testing.T) {
	r := NewRecorder()
	r.Add(ParallelSteals, 5)
	snap := r.Snapshot()
	if len(snap) != int(NumIDs) {
		t.Fatalf("snapshot has %d keys, want %d", len(snap), NumIDs)
	}
	if snap["parallel.steals"] != 5 {
		t.Fatalf("snapshot[parallel.steals] = %d, want 5", snap["parallel.steals"])
	}
}
