// Package metrics is the run-report metrics layer: a low-overhead
// counter registry threaded through the enumeration engine
// (internal/engine), the intersection kernels (internal/intersect via
// engine result folding), and the work-stealing scheduler
// (internal/parallel).
//
// The design keeps the enumeration hot path allocation-free (enforced
// by the lightvet hotpath analyzer): workers accumulate plain per-run
// counters in their own engine.Result and fold them into a shared
// Recorder at unit boundaries (end of a root chunk, a resumed frame, or
// a whole run), while scheduler-level events (queue waits, checkpoint
// writes) hit the Recorder directly. Every Recorder counter is an
// atomic uint64 padded to its own cache line, so concurrent folds from
// many workers never false-share, and a nil *Recorder is valid and
// inert — disabled-mode instrumentation costs a nil check and nothing
// else.
package metrics

import (
	"sync/atomic"
	"time"
)

// ID names one counter in the registry. The set is closed and small so
// a Recorder can be a fixed array — no map lookups, no allocation.
type ID uint32

// The counter registry. Engine and intersect counters are exact and
// deterministic for a given (graph, plan, kernel) configuration —
// independent of worker count, donation timing, and scheduling — which
// is what makes them gateable in CI. Parallel counters describe one
// specific run.
const (
	// EngineNodes counts search-tree nodes expanded (MAT extensions).
	EngineNodes ID = iota
	// EngineMatches counts emitted matches.
	EngineMatches
	// EngineComps counts COMP operations executed (candidate-set
	// computations, including single-operand aliases).
	EngineComps
	// IntersectOps counts pairwise set intersections (the paper's Fig 5
	// metric).
	IntersectOps
	// IntersectGalloping counts intersections that took the galloping
	// path (Table III numerator).
	IntersectGalloping
	// IntersectMerge counts intersections that took a merge path.
	IntersectMerge
	// IntersectElements counts input elements scanned across all
	// pairwise intersections (len(a)+len(b) per operation) — the
	// element-throughput base.
	IntersectElements
	// IntersectBitmapProbes counts elements probed against hub bitmaps
	// by the bitmap kernels (each probe replaces a gallop step).
	IntersectBitmapProbes
	// ParallelDonations counts frames pushed to the global queue.
	ParallelDonations
	// ParallelSteals counts frames executed by a worker other than the
	// donor.
	ParallelSteals
	// ParallelRootChunks counts root chunks dispensed.
	ParallelRootChunks
	// ParallelQueueWaits counts worker blocking episodes on the frame
	// queue.
	ParallelQueueWaits
	// ParallelQueueWaitNanos accumulates time workers spent blocked on
	// the frame queue.
	ParallelQueueWaitNanos
	// ParallelBusyNanos accumulates time workers spent executing chunks
	// and frames (the per-thread utilization numerator).
	ParallelBusyNanos
	// CheckpointWrites counts checkpoint file writes (periodic + final).
	CheckpointWrites
	// CheckpointWriteNanos accumulates checkpoint write latency.
	CheckpointWriteNanos
	// CheckpointWriteErrors counts failed checkpoint writes.
	CheckpointWriteErrors
	// ArenaBytes accumulates the slab footprint of the per-worker
	// candidate arenas (the Table V memory metric for the arena path).
	ArenaBytes
	// AdmissionWaitNanos is how long the run waited for its guaranteed
	// worker slot under a shared Governor.
	AdmissionWaitNanos
	// AdmissionSlotsGranted is the worker-slot count held at admission.
	AdmissionSlotsGranted
	// AdmissionSlotsShed counts slots returned early to waiting queries
	// (the worker-shedding degradation rung).
	AdmissionSlotsShed
	// GovernorDegradations counts degradation events of any kind
	// (arena tight mode, worker shedding, reduced admission).
	GovernorDegradations
	// CheckpointRetries counts checkpoint writes that succeeded only
	// after retry-with-backoff.
	CheckpointRetries
	// WatchdogStalls counts stall-watchdog firings.
	WatchdogStalls
	// NumIDs is the registry size; not a counter.
	NumIDs
)

// String returns the counter's stable snapshot key.
func (id ID) String() string {
	if int(id) < len(idNames) {
		return idNames[id]
	}
	return "unknown"
}

var idNames = [NumIDs]string{
	EngineNodes:            "engine.nodes",
	EngineMatches:          "engine.matches",
	EngineComps:            "engine.comps",
	IntersectOps:           "intersect.ops",
	IntersectGalloping:     "intersect.galloping",
	IntersectMerge:         "intersect.merge",
	IntersectElements:      "intersect.elements",
	IntersectBitmapProbes:  "intersect.bitmap_probes",
	ParallelDonations:      "parallel.donations",
	ParallelSteals:         "parallel.steals",
	ParallelRootChunks:     "parallel.root_chunks",
	ParallelQueueWaits:     "parallel.queue_waits",
	ParallelQueueWaitNanos: "parallel.queue_wait_ns",
	ParallelBusyNanos:      "parallel.busy_ns",
	CheckpointWrites:       "checkpoint.writes",
	CheckpointWriteNanos:   "checkpoint.write_ns",
	CheckpointWriteErrors:  "checkpoint.write_errors",
	ArenaBytes:             "arena.bytes",
	AdmissionWaitNanos:     "admission.wait_ns",
	AdmissionSlotsGranted:  "admission.slots_granted",
	AdmissionSlotsShed:     "admission.slots_shed",
	GovernorDegradations:   "governor.degradations",
	CheckpointRetries:      "checkpoint.retries",
	WatchdogStalls:         "watchdog.stalls",
}

// cacheLine is the assumed cache-line size; each counter occupies one
// full line so two workers folding different counters never contend.
const cacheLine = 64

// counter is one padded atomic cell. The padding matters: without it,
// eight counters share a line and every cross-worker fold ping-pongs it.
type counter struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Recorder is a fixed-size registry of padded atomic counters. The zero
// value is ready to use; a nil *Recorder is valid and records nothing,
// so call sites need no branching beyond the receiver nil check the
// methods already do.
type Recorder struct {
	c [NumIDs]counter
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add atomically adds n to the counter. No-op on a nil receiver;
// allocation-free always (hot-path safe).
//
//light:hotpath
func (r *Recorder) Add(id ID, n uint64) {
	if r == nil {
		return
	}
	r.c[id].v.Add(n)
}

// Inc atomically increments the counter. No-op on a nil receiver.
//
//light:hotpath
func (r *Recorder) Inc(id ID) { r.Add(id, 1) }

// AddDuration adds a non-negative duration to a nanosecond counter.
// No-op on a nil receiver.
func (r *Recorder) AddDuration(id ID, d time.Duration) {
	if d > 0 {
		r.Add(id, uint64(d))
	}
}

// Get atomically reads one counter; 0 on a nil receiver.
func (r *Recorder) Get(id ID) uint64 {
	if r == nil {
		return 0
	}
	return r.c[id].v.Load()
}

// GetDuration reads a nanosecond counter as a time.Duration.
func (r *Recorder) GetDuration(id ID) time.Duration {
	return time.Duration(r.Get(id))
}

// Reset zeroes every counter. No-op on a nil receiver.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.c {
		r.c[i].v.Store(0)
	}
}

// Snapshot returns every counter keyed by its stable name. Allocates;
// call it from cold code only.
func (r *Recorder) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, NumIDs)
	for id := ID(0); id < NumIDs; id++ {
		out[id.String()] = r.Get(id)
	}
	return out
}
