package metrics

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleRows() []BenchRow {
	return []BenchRow{
		{Dataset: "yt-s", Pattern: "P2", System: "LIGHT/serial", WallNS: 100e6,
			Matches: 1000, Nodes: 5000, Comps: 2000, Intersections: 800, Galloping: 30, Elements: 64000},
		{Dataset: "yt-s", Pattern: "P4", System: "LIGHT/4T", WallNS: 200e6,
			Matches: 77, Nodes: 400, Comps: 90, Intersections: 60, Galloping: 0, Elements: 5200},
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	rep := NewBenchReport("smoke", map[string]string{"scale": "1"}, sampleRows())
	if rep.Schema != BenchSchema || rep.Fingerprint == "" {
		t.Fatalf("report not stamped: %+v", rep)
	}
	if err := WriteBenchFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != rep.Fingerprint || len(got.Rows) != len(rep.Rows) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Rows[0] != rep.Rows[0] {
		t.Fatalf("row 0: %+v vs %+v", got.Rows[0], rep.Rows[0])
	}
}

func TestLoadBenchFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	rep := NewBenchReport("smoke", nil, sampleRows())
	rep.Schema = "light-bench/999"
	if err := WriteBenchFile(path, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

func TestLoadBenchFileRejectsEditedCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_edit.json")
	rep := NewBenchReport("smoke", nil, sampleRows())
	if err := WriteBenchFile(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data), `"matches": 1000`, `"matches": 999`, 1)
	if edited == string(data) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchFile(path); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("edited file accepted: %v", err)
	}
}

func TestCompareBenchPassesOnIdenticalReports(t *testing.T) {
	a := NewBenchReport("smoke", nil, sampleRows())
	b := NewBenchReport("smoke", nil, sampleRows())
	c := CompareBench(a, b, 0.15, 25*time.Millisecond)
	if !c.OK() {
		t.Fatalf("identical reports flagged: %+v", c)
	}
}

// TestCompareBenchCatchesCounterRegression is the injected-regression
// demonstration the gate is built around: a single drifted deterministic
// counter must fail the comparison.
func TestCompareBenchCatchesCounterRegression(t *testing.T) {
	base := NewBenchReport("smoke", nil, sampleRows())
	mutations := []func(*BenchRow){
		func(r *BenchRow) { r.Matches++ },
		func(r *BenchRow) { r.Nodes-- },
		func(r *BenchRow) { r.Comps += 5 },
		func(r *BenchRow) { r.Intersections++ },
		func(r *BenchRow) { r.Galloping++ },
		func(r *BenchRow) { r.Elements += 8 },
		func(r *BenchRow) { r.Mark = "INF" },
	}
	for i, mutate := range mutations {
		rows := sampleRows()
		mutate(&rows[0])
		fresh := NewBenchReport("smoke", nil, rows)
		c := CompareBench(base, fresh, 0.15, 25*time.Millisecond)
		if len(c.CounterRegressions) == 0 {
			t.Fatalf("mutation %d not caught", i)
		}
		if len(c.WallRegressions) != 0 {
			t.Fatalf("mutation %d produced wall regressions: %v", i, c.WallRegressions)
		}
	}
}

func TestCompareBenchCatchesMissingAndNewRows(t *testing.T) {
	base := NewBenchReport("smoke", nil, sampleRows())
	fresh := NewBenchReport("smoke", nil, sampleRows()[:1])
	if c := CompareBench(base, fresh, 0.15, 0); len(c.CounterRegressions) != 1 ||
		!strings.Contains(c.CounterRegressions[0], "not in fresh run") {
		t.Fatalf("dropped row not caught: %+v", c)
	}
	extra := append(sampleRows(), BenchRow{Dataset: "new", Pattern: "P9", System: "X", Matches: 1})
	fresh = NewBenchReport("smoke", nil, extra)
	if c := CompareBench(base, fresh, 0.15, 0); len(c.CounterRegressions) != 1 ||
		!strings.Contains(c.CounterRegressions[0], "not in baseline") {
		t.Fatalf("new row not caught: %+v", c)
	}
}

func TestCompareBenchWallGate(t *testing.T) {
	base := NewBenchReport("smoke", nil, sampleRows())
	rows := sampleRows()
	rows[0].WallNS = rows[0].WallNS * 2 // 100ms → 200ms: way past 15%+slack
	fresh := NewBenchReport("smoke", nil, rows)
	c := CompareBench(base, fresh, 0.15, 25*time.Millisecond)
	if len(c.CounterRegressions) != 0 {
		t.Fatalf("wall-only change flagged counters: %+v", c.CounterRegressions)
	}
	if len(c.WallRegressions) != 1 {
		t.Fatalf("2x slowdown not caught: %+v", c)
	}

	// Inside tolerance: 10% slower passes a 15% gate.
	rows = sampleRows()
	rows[0].WallNS = rows[0].WallNS * 110 / 100
	fresh = NewBenchReport("smoke", nil, rows)
	if c := CompareBench(base, fresh, 0.15, 25*time.Millisecond); !c.OK() {
		t.Fatalf("10%% slowdown failed a 15%% gate: %+v", c)
	}

	// The additive slack shields tiny rows from percentage noise: 1ms →
	// 1.4ms is +40% but far under the 25ms slack.
	rows = sampleRows()
	rows[0].WallNS = 1e6
	base = NewBenchReport("smoke", nil, rows)
	rows2 := sampleRows()
	rows2[0].WallNS = 1.4e6
	fresh = NewBenchReport("smoke", nil, rows2)
	if c := CompareBench(base, fresh, 0.15, 25*time.Millisecond); !c.OK() {
		t.Fatalf("sub-slack jitter failed the gate: %+v", c)
	}
}
