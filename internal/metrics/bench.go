package metrics

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// BenchSchema is the version tag every BENCH_*.json file carries. Bump
// it when the file layout changes incompatibly; the gate refuses to
// compare files with mismatched schemas.
const BenchSchema = "light-bench/2"

// BenchHost describes the machine a benchmark report was produced on —
// context for interpreting wall-clock numbers across runs.
type BenchHost struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	Hostname  string `json:"hostname,omitempty"`
}

// BenchRow is one measured configuration: a (dataset, pattern, system)
// cell with its wall-clock time and deterministic work counters. The
// counters (matches, nodes, comps, intersections, galloping, elements)
// depend only on graph, plan, and kernel — not on worker count or
// scheduling — so the regression gate holds them to exact equality.
type BenchRow struct {
	Dataset       string `json:"dataset"`
	Pattern       string `json:"pattern"`
	System        string `json:"system"`
	Mark          string `json:"mark,omitempty"` // "INF"/"OOS" failure marks
	WallNS        int64  `json:"wall_ns"`
	Matches       uint64 `json:"matches"`
	Nodes         uint64 `json:"nodes,omitempty"`
	Comps         uint64 `json:"comps,omitempty"`
	Intersections uint64 `json:"intersections,omitempty"`
	Galloping     uint64 `json:"galloping,omitempty"`
	Elements      uint64 `json:"elements,omitempty"`
	BitmapProbes  uint64 `json:"bitmap_probes,omitempty"`
	// Slots is the worker-slot count the run held at admission —
	// nonzero only for governed rows, where it is deterministic (an
	// uncontended governor always grants the full request) and
	// therefore part of the fingerprint.
	Slots       uint64 `json:"slots,omitempty"`
	MemoryBytes int64  `json:"memory_bytes,omitempty"`
}

// key identifies the row for baseline matching.
func (r BenchRow) key() string {
	return r.Dataset + "|" + r.Pattern + "|" + r.System
}

// BenchReport is the versioned on-disk format of a benchmark run
// (BENCH_<experiment>.json): host and configuration context, a
// fingerprint over the deterministic row fields, and the rows.
type BenchReport struct {
	Schema      string            `json:"schema"`
	Experiment  string            `json:"experiment"`
	GeneratedAt string            `json:"generated_at"`
	Host        BenchHost         `json:"host"`
	Config      map[string]string `json:"config,omitempty"`
	Fingerprint string            `json:"fingerprint"`
	Rows        []BenchRow        `json:"rows"`
}

// NewBenchReport assembles a schema-stamped report for one experiment:
// host info and the deterministic fingerprint are filled in, the rows
// are taken as measured.
func NewBenchReport(experiment string, config map[string]string, rows []BenchRow) *BenchReport {
	hostname, _ := os.Hostname() // optional context; empty on error is fine
	r := &BenchReport{
		Schema:      BenchSchema,
		Experiment:  experiment,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host: BenchHost{
			GoVersion: runtime.Version(),
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
			Hostname:  hostname,
		},
		Config: config,
		Rows:   rows,
	}
	r.Fingerprint = r.computeFingerprint()
	return r
}

// computeFingerprint hashes the deterministic identity of the run — row
// keys, failure marks, and work counters, in row order — so two reports
// with equal fingerprints are counter-identical. Wall-clock times and
// host info are deliberately excluded.
func (r *BenchReport) computeFingerprint() string {
	h := fnv.New64a()
	w := func(s string) {
		h.Write([]byte(s)) //lightvet:ignore hygiene -- fnv.Write cannot fail
	}
	for _, row := range r.Rows {
		w(fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d|%d|%d|%d\n",
			row.key(), row.Mark, row.Matches, row.Nodes, row.Comps,
			row.Intersections, row.Galloping, row.Elements, row.BitmapProbes,
			row.Slots))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteBenchFile writes the report as indented JSON, creating the
// destination directory if needed.
func WriteBenchFile(path string, r *BenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: encoding bench report: %w", err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("metrics: creating bench report dir: %w", err)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("metrics: writing bench report: %w", err)
	}
	return nil
}

// LoadBenchFile reads a report and validates its schema tag and
// fingerprint, so a hand-edited or truncated baseline fails loudly
// rather than gating against garbage.
func LoadBenchFile(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("metrics: %s: %w", path, err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("metrics: %s: schema %q, this build expects %q", path, r.Schema, BenchSchema)
	}
	if got := r.computeFingerprint(); got != r.Fingerprint {
		return nil, fmt.Errorf("metrics: %s: fingerprint %s does not match rows (%s): file edited or corrupt", path, r.Fingerprint, got)
	}
	return &r, nil
}

// BenchComparison is the outcome of gating a fresh report against a
// baseline. Counter regressions are hard failures (the counters are
// deterministic, so any drift is a behaviour change); wall regressions
// may be treated as advisory on noisy shared runners.
type BenchComparison struct {
	CounterRegressions []string
	WallRegressions    []string
}

// OK reports whether the comparison found nothing at all.
func (c *BenchComparison) OK() bool {
	return len(c.CounterRegressions) == 0 && len(c.WallRegressions) == 0
}

// CompareBench gates fresh against baseline. Rows are matched by
// (dataset, pattern, system); a row missing from either side, a changed
// failure mark, or any deterministic-counter difference is a counter
// regression. A row whose wall-clock time exceeds
// baseline·(1+wallTolerance)+wallSlack is a wall regression; the
// additive slack keeps sub-millisecond rows from tripping the
// percentage gate on timer noise.
func CompareBench(baseline, fresh *BenchReport, wallTolerance float64, wallSlack time.Duration) *BenchComparison {
	c := &BenchComparison{}
	base := make(map[string]BenchRow, len(baseline.Rows))
	for _, row := range baseline.Rows {
		base[row.key()] = row
	}
	seen := make(map[string]bool, len(fresh.Rows))
	for _, row := range fresh.Rows {
		seen[row.key()] = true
		b, ok := base[row.key()]
		if !ok {
			c.CounterRegressions = append(c.CounterRegressions,
				fmt.Sprintf("%s: not in baseline (suite changed — refresh the baseline)", row.key()))
			continue
		}
		if b.Mark != row.Mark {
			c.CounterRegressions = append(c.CounterRegressions,
				fmt.Sprintf("%s: failure mark %q, baseline %q", row.key(), row.Mark, b.Mark))
			continue
		}
		counters := []struct {
			name     string
			old, new uint64
		}{
			{"matches", b.Matches, row.Matches},
			{"nodes", b.Nodes, row.Nodes},
			{"comps", b.Comps, row.Comps},
			{"intersections", b.Intersections, row.Intersections},
			{"galloping", b.Galloping, row.Galloping},
			{"elements", b.Elements, row.Elements},
			{"bitmap_probes", b.BitmapProbes, row.BitmapProbes},
			{"slots", b.Slots, row.Slots},
		}
		for _, cc := range counters {
			if cc.old != cc.new {
				c.CounterRegressions = append(c.CounterRegressions,
					fmt.Sprintf("%s: %s %d, baseline %d (deterministic counter drifted)", row.key(), cc.name, cc.new, cc.old))
			}
		}
		if b.WallNS > 0 && row.WallNS > 0 {
			limit := int64(float64(b.WallNS)*(1+wallTolerance)) + int64(wallSlack)
			if row.WallNS > limit {
				c.WallRegressions = append(c.WallRegressions,
					fmt.Sprintf("%s: wall %v, baseline %v (limit %v = +%.0f%% + %v slack)",
						row.key(), time.Duration(row.WallNS), time.Duration(b.WallNS),
						time.Duration(limit), wallTolerance*100, wallSlack))
			}
		}
	}
	missing := make([]string, 0)
	for key := range base {
		if !seen[key] {
			missing = append(missing, fmt.Sprintf("%s: in baseline but not in fresh run", key))
		}
	}
	sort.Strings(missing)
	c.CounterRegressions = append(c.CounterRegressions, missing...)
	return c
}
