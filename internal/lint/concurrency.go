package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Concurrency enforces the synchronization discipline of the parallel
// scheduler. It flags:
//
//   - values containing sync or sync/atomic state copied by value
//     (parameters, results, assignments, range variables),
//   - struct fields accessed both through sync/atomic calls and through
//     plain reads/writes,
//   - sync.Cond Signal/Broadcast calls in functions that never acquire
//     a lock (the condition's guarding mutex cannot be held),
//   - go statements in functions with no WaitGroup use and no channel
//     operation in scope (nothing can wait for or stop the goroutine).
//
// Goroutines launched through supervise.Go are supervised by
// construction (the helper registers them with a WaitGroup and recovers
// panics), so a supervise.Go call counts as WaitGroup evidence in its
// scope.
var Concurrency = &Analyzer{
	Name: "concurrency",
	Doc:  "lock copies, mixed atomic access, unguarded Cond wakeups, unsupervised goroutines",
	Run:  runConcurrency,
}

func runConcurrency(m *Module) []Finding {
	var findings []Finding
	atomicFields, atomicUses := collectAtomicFields(m)
	for _, pkg := range m.Packages {
		findings = append(findings, checkLockCopies(pkg)...)
		findings = append(findings, checkMixedAtomic(pkg, atomicFields, atomicUses)...)
		findings = append(findings, checkFuncBodies(pkg)...)
	}
	return findings
}

// containsLockState reports whether t (by value) embeds synchronization
// state that must not be copied, returning the offending type's name.
func containsLockState(t types.Type) (string, bool) {
	return lockSearch(t, map[types.Type]bool{})
}

func lockSearch(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
					return "sync." + obj.Name(), true
				}
			case "sync/atomic":
				return "atomic." + obj.Name(), true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := lockSearch(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return lockSearch(u.Elem(), seen)
	}
	return "", false
}

// checkLockCopies flags by-value copies of lock-bearing values.
func checkLockCopies(pkg *Package) []Finding {
	info := pkg.Info
	var findings []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Type.Params != nil {
					for _, field := range node.Type.Params.List {
						t := info.TypeOf(field.Type)
						if t == nil {
							continue
						}
						if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
							continue
						}
						if name, ok := containsLockState(t); ok {
							findings = append(findings, pkg.finding("concurrency", field.Type, "parameter passes %s by value; use a pointer", name))
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					if i >= len(node.Lhs) {
						break
					}
					if !copiesValue(rhs) {
						continue
					}
					t := info.TypeOf(rhs)
					if t == nil {
						continue
					}
					if name, ok := containsLockState(t); ok {
						findings = append(findings, pkg.finding("concurrency", rhs, "assignment copies %s by value", name))
					}
				}
			case *ast.RangeStmt:
				if node.Value != nil {
					t := info.TypeOf(node.Value)
					if t != nil {
						if name, ok := containsLockState(t); ok {
							findings = append(findings, pkg.finding("concurrency", node.Value, "range copies %s by value; iterate by index", name))
						}
					}
				}
			}
			return true
		})
	}
	return findings
}

// copiesValue reports whether the RHS expression reads an existing value
// (as opposed to constructing a fresh one, which is initialization, not
// a copy).
func copiesValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// collectAtomicFields finds every struct field that is passed by address
// to a sync/atomic function anywhere in the module, along with the exact
// selector nodes used in those calls (which are the sanctioned uses).
func collectAtomicFields(m *Module) (map[*types.Var]bool, map[*ast.SelectorExpr]bool) {
	fields := map[*types.Var]bool{}
	uses := map[*ast.SelectorExpr]bool{}
	for _, pkg := range m.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				x, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := info.Uses[x].(*types.PkgName)
				if !ok || pn.Imported().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					fieldSel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if fv := fieldVar(info, fieldSel); fv != nil {
						fields[fv] = true
						uses[fieldSel] = true
					}
				}
				return true
			})
		}
	}
	return fields, uses
}

func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// checkMixedAtomic flags plain accesses to fields that are elsewhere
// accessed through sync/atomic.
func checkMixedAtomic(pkg *Package, atomicFields map[*types.Var]bool, atomicUses map[*ast.SelectorExpr]bool) []Finding {
	if len(atomicFields) == 0 {
		return nil
	}
	info := pkg.Info
	var findings []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			fv := fieldVar(info, sel)
			if fv == nil || !atomicFields[fv] {
				return true
			}
			findings = append(findings, pkg.finding("concurrency", sel, "field %s is accessed atomically elsewhere; this plain access races", fv.Name()))
			return true
		})
	}
	return findings
}

// checkFuncBodies runs the per-function-scope checks: Cond wakeups
// without a lock acquisition in scope, and goroutines without a
// WaitGroup or channel in scope. Each function literal is its own scope.
func checkFuncBodies(pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			findings = append(findings, checkScope(pkg, fd.Body)...)
		}
	}
	return findings
}

// checkScope inspects one function body, recursing manually into nested
// function literals so each gets its own scope analysis.
func checkScope(pkg *Package, body *ast.BlockStmt) []Finding {
	info := pkg.Info
	var findings []Finding

	locksHeld := false  // a .Lock()/.RLock() call appears in this scope
	waitGroup := false  // a WaitGroup method call appears in this scope
	channelOps := false // any channel operation appears in this scope
	type goSite struct {
		node ast.Node
		// supervised is true when the launched call itself carries its
		// coordination (a producer goroutine sending on / closing a
		// channel, or joining a WaitGroup in its own body).
		supervised bool
	}
	var conds []ast.Node // Signal/Broadcast calls on sync.Cond
	var gos []goSite

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			findings = append(findings, checkScope(pkg, node.Body)...)
			return false
		case *ast.GoStmt:
			wg, ch := scanCoordination(info, node.Call)
			gos = append(gos, goSite{node: node, supervised: wg || ch})
			// The goroutine's own body is a fresh scope for the nested
			// checks; its call arguments stay in this one.
			if fl, ok := node.Call.Fun.(*ast.FuncLit); ok {
				findings = append(findings, checkScope(pkg, fl.Body)...)
				for _, arg := range node.Call.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
			return true
		case *ast.SendStmt, *ast.SelectStmt:
			channelOps = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				channelOps = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(node.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					channelOps = true
				}
			}
		case *ast.CallExpr:
			if isCloseCall(info, node) {
				channelOps = true
			}
			if isSuperviseGo(info, node) {
				waitGroup = true
			}
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				recv := methodRecvNamed(info, sel)
				switch {
				case recv == "sync.Mutex" || recv == "sync.RWMutex":
					if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
						locksHeld = true
					}
				case recv == "sync.WaitGroup":
					waitGroup = true
				case recv == "sync.Cond":
					if sel.Sel.Name == "Signal" || sel.Sel.Name == "Broadcast" {
						conds = append(conds, node)
					}
					if sel.Sel.Name == "Wait" {
						// Cond.Wait reacquires L, so the scope holds it.
						locksHeld = true
					}
				}
				// cond.L.Lock() goes through an interface; treat any
				// .Lock()/.RLock() method call as acquiring.
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					if sig, ok := info.TypeOf(node.Fun).(*types.Signature); ok && sig.Params().Len() == 0 {
						locksHeld = true
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	if !locksHeld {
		for _, n := range conds {
			findings = append(findings, pkg.finding("concurrency", n, "sync.Cond wakeup in a function that never acquires a lock; the guarding mutex cannot be held"))
		}
	}
	if !waitGroup && !channelOps {
		for _, g := range gos {
			if g.supervised {
				continue
			}
			findings = append(findings, pkg.finding("concurrency", g.node, "goroutine launched with no WaitGroup or channel in scope; nothing can wait for or stop it"))
		}
	}
	return findings
}

// isCloseCall reports whether the call is the close builtin.
func isCloseCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// scanCoordination looks through a subtree — including nested function
// literals — for WaitGroup method calls and channel operations.
func scanCoordination(info *types.Info, n ast.Node) (waitGroup, channelOps bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			channelOps = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				channelOps = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(node.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					channelOps = true
				}
			}
		case *ast.CallExpr:
			if isCloseCall(info, node) {
				channelOps = true
			}
			if isSuperviseGo(info, node) {
				waitGroup = true
			}
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				if methodRecvNamed(info, sel) == "sync.WaitGroup" {
					waitGroup = true
				}
			}
		}
		return true
	})
	return waitGroup, channelOps
}

// isSuperviseGo reports whether the call is supervise.Go — the
// project's panic-isolating goroutine launcher, which registers the
// goroutine with a WaitGroup itself.
func isSuperviseGo(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Go" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	return ok && pn.Imported().Name() == "supervise"
}

// methodRecvNamed returns "pkg.Type" for a method call's receiver type
// (pointers stripped), or "" when the call is not a method selection.
func methodRecvNamed(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
