package lint

import (
	"go/ast"
	"go/types"
)

// Hygiene enforces baseline API discipline:
//
//   - every exported package-level identifier (and exported method on an
//     exported type) carries a doc comment; struct fields are covered by
//     their type's comment and are not checked,
//   - error returns are never silently discarded in an expression
//     statement. Exempt: calls into package fmt (their errors are
//     conventionally ignored), methods on strings.Builder and
//     bytes.Buffer (documented to always return nil errors), and
//     deferred calls, whose error has nowhere to go — check the sticky
//     error explicitly instead,
//   - in command mains, the fmt exemption does not cover fmt.Fprint*
//     into a concrete buffered writer (e.g. *bufio.Writer): its write
//     errors are sticky and surface only at Flush, so either the
//     Fprint error or the final Flush error must be checked (the
//     lightenum fix from PR 1, generalized). Writes to *os.File
//     (os.Stdout/os.Stderr) and to interface-typed writers stay
//     exempt.
var Hygiene = &Analyzer{
	Name: "hygiene",
	Doc:  "exported identifiers need doc comments; error returns must not be discarded",
	Run:  runHygiene,
}

func runHygiene(m *Module) []Finding {
	var findings []Finding
	for _, pkg := range m.Packages {
		findings = append(findings, checkDocComments(pkg)...)
		findings = append(findings, checkDiscardedErrors(pkg)...)
	}
	return findings
}

func checkDocComments(pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				findings = append(findings, pkg.finding("hygiene", d.Name, "exported %s %s has no doc comment", kind, d.Name.Name))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						// Unlike const/var groups, a trailing line
						// comment is not documentation for a type.
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							findings = append(findings, pkg.finding("hygiene", s.Name, "exported type %s has no doc comment", s.Name.Name))
						}
					case *ast.ValueSpec:
						if d.Doc != nil || s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, name := range s.Names {
							if name.IsExported() {
								findings = append(findings, pkg.finding("hygiene", name, "exported %s %s has no doc comment", valueKind(d), name.Name))
							}
						}
					}
				}
			}
		}
	}
	return findings
}

func valueKind(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "const"
	}
	return "var"
}

// exportedReceiver reports whether a method's receiver base type is
// exported (methods on unexported types are internal API).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func checkDiscardedErrors(pkg *Package) []Finding {
	info := pkg.Info
	var findings []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if isFmtCall(info, call) {
				if pkg.Pkg.Name() != "main" || !isFallibleFprint(info, call) {
					return true
				}
				findings = append(findings, pkg.finding("hygiene", stmt, "error return of fmt.%s into a buffered writer is silently discarded (write errors surface only at Flush)", callName(call)))
				return true
			}
			if isInfallibleWriter(info, call) {
				return true
			}
			t := info.TypeOf(call)
			if t == nil || !lastIsError(t) {
				return true
			}
			findings = append(findings, pkg.finding("hygiene", stmt, "error return of %s is silently discarded", callName(call)))
			return true
		})
	}
	return findings
}

// isFallibleFprint reports whether the call is fmt.Fprint/Fprintf/
// Fprintln whose writer argument has a concrete non-*os.File type that
// is not documented-infallible — a buffered writer whose sticky error
// someone must eventually check.
func isFallibleFprint(info *types.Info, call *ast.CallExpr) bool {
	switch callName(call) {
	case "Fprint", "Fprintf", "Fprintln":
	default:
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	t := info.TypeOf(call.Args[0])
	if t == nil || types.IsInterface(t) {
		return false // interface-typed writer: concrete sink unknown
	}
	base := t
	if p, ok := base.Underlying().(*types.Pointer); ok {
		base = p.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return true // concrete unnamed writer: be strict
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	switch full {
	case "os.File", "strings.Builder", "bytes.Buffer":
		return false
	}
	return true
}

func isFmtCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

// isInfallibleWriter reports whether the call is a method on
// strings.Builder or bytes.Buffer, whose Write* methods are documented
// to always return a nil error.
func isInfallibleWriter(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// lastIsError reports whether the call's (possibly tuple) result ends in
// an error.
func lastIsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}
