// Dataflow helpers shared by the interprocedural analyzers: parameter
// collection and expression/object reference tests (statflow,
// capcontract), and a bottom-up existential fixpoint over the call graph
// (cancelpoll's may-poll computation).
package lint

import (
	"go/ast"
	"go/types"
)

// paramObjects returns the declared parameter objects of fd whose type
// satisfies pred, in declaration order.
func paramObjects(info *types.Info, fd *ast.FuncDecl, pred func(types.Type) bool) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := info.Defs[name].(*types.Var)
			if !ok || !pred(v.Type()) {
				continue
			}
			out = append(out, v)
		}
	}
	return out
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprIsObject reports whether e (modulo parens) is an identifier bound
// to obj.
func exprIsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// isNilExpr reports whether e is the predeclared nil (possibly
// parenthesized).
func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// propagateUp computes the least fixpoint of "fn satisfies the property,
// or fn has an out-edge (of a selected kind) to a function that does":
// the bottom-up existential closure of base over the call graph.
// cancelpoll uses it for "may reach a cancellation poll".
func propagateUp(g *CallGraph, kinds EdgeKind, base map[*types.Func]bool) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for fn := range base {
		if base[fn] {
			out[fn] = true
		}
	}
	// Iterate to fixpoint; the graph is small (one module), so the
	// simple worklist-free sweep is fine and deterministic.
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			if out[fn] {
				continue
			}
			for _, e := range g.Node(fn).Out {
				if e.Kind&kinds != 0 && out[e.Callee] {
					out[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
