package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// Hotpath enforces the allocation-free discipline of the enumeration
// hot path. Functions annotated //light:hotpath are roots; every module
// function a root statically calls (transitively) inherits the
// obligation. Inside hot code the analyzer flags:
//
//   - make and new calls,
//   - composite literals that allocate (address-taken, or slice/map),
//   - function literals (closure headers allocate per call),
//   - append into a destination not visibly preallocated (derived from
//     a buf[:0] reslice in the same function),
//   - any call into package fmt,
//   - explicit conversions to interface types and implicit boxing of
//     concrete arguments into interface parameters.
//
// Calls through function-typed fields or interface methods are dynamic
// and do not propagate hotness; a //lightvet:ignore hotpath directive in
// a callee's doc comment marks it acknowledged-cold and stops
// propagation into it.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "allocation and boxing discipline for //light:hotpath functions",
	Run:  runHotpath,
}

// hotFunc is one hot module function: its call-graph node plus the
// annotated root it inherits the obligation from.
type hotFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func
	// root is the //light:hotpath function this one is reachable from
	// (itself, for annotated roots).
	root *types.Func
}

func runHotpath(m *Module) []Finding {
	g := m.CallGraph()

	// Propagate hotness from the annotated roots over statically
	// resolved calls only (EdgeCall): a dynamic dispatch cannot prove a
	// callee hot. Functions whose doc comment declares them
	// acknowledged-cold stop propagation. Per-root BFS in declaration
	// order keeps the "reached from root X" attribution deterministic.
	hot := map[*types.Func]*hotFunc{}
	var order []*types.Func
	mark := func(fn, root *types.Func) bool {
		if _, seen := hot[fn]; seen {
			return false
		}
		n := g.Node(fn)
		hot[fn] = &hotFunc{pkg: n.Pkg, decl: n.Decl, obj: fn, root: root}
		order = append(order, fn)
		return true
	}
	for _, fn := range g.Funcs() {
		n := g.Node(fn)
		if !hotpathAnnotated(n.Decl.Doc) {
			continue
		}
		mark(fn, fn)
		queue := []*types.Func{fn}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range g.Node(cur).Out {
				if e.Kind != EdgeCall {
					continue
				}
				if _, seen := hot[e.Callee]; seen {
					continue
				}
				if m.FuncIgnores(g.Node(e.Callee).Decl, "hotpath") {
					continue
				}
				mark(e.Callee, hot[fn].root)
				queue = append(queue, e.Callee)
			}
		}
	}

	var findings []Finding
	for _, fn := range order {
		findings = append(findings, checkHotBody(hot[fn])...)
	}
	// Per-root marking order is not global declaration order; restore
	// it for deterministic reporting.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return findings
}

// checkHotBody reports every allocation-discipline violation in one hot
// function body.
func checkHotBody(fn *hotFunc) []Finding {
	pkg, body := fn.pkg, fn.decl.Body
	info := pkg.Info
	where := fmt.Sprintf("in hot path (%s", fn.obj.Name())
	if fn.root != fn.obj {
		where = fmt.Sprintf("in hot path (%s, reached from //light:hotpath root %s", fn.obj.Name(), fn.root.FullName())
	}
	where += ")"

	prealloc := preallocatedVars(info, body)
	var findings []Finding
	addrTaken := map[*ast.CompositeLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if lit, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					addrTaken[lit] = true
					findings = append(findings, pkg.finding("hotpath", node, "&composite literal allocates %s", where))
				}
			}
		case *ast.CompositeLit:
			if addrTaken[node] {
				return true
			}
			switch info.TypeOf(node).Underlying().(type) {
			case *types.Slice, *types.Map:
				findings = append(findings, pkg.finding("hotpath", node, "%s literal allocates %s", typeKindName(info.TypeOf(node)), where))
			}
		case *ast.FuncLit:
			findings = append(findings, pkg.finding("hotpath", node, "function literal allocates a closure %s", where))
		case *ast.CallExpr:
			findings = append(findings, checkHotCall(pkg, node, prealloc, where)...)
		}
		return true
	})
	return findings
}

func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// checkHotCall inspects one call expression inside hot code.
func checkHotCall(pkg *Package, call *ast.CallExpr, prealloc map[types.Object]bool, where string) []Finding {
	info := pkg.Info
	var findings []Finding

	// Explicit type conversions: flag conversions whose target is an
	// interface (boxing).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if !types.IsInterface(info.TypeOf(call.Args[0])) {
				findings = append(findings, pkg.finding("hotpath", call, "conversion to interface %s allocates %s", tv.Type, where))
			}
		}
		return findings
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				findings = append(findings, pkg.finding("hotpath", call, "make allocates %s", where))
			case "new":
				findings = append(findings, pkg.finding("hotpath", call, "new allocates %s", where))
			case "append":
				if len(call.Args) > 0 && !isPreallocated(info, call.Args[0], prealloc) {
					findings = append(findings, pkg.finding("hotpath", call, "append without visible preallocation may grow the backing array %s", where))
				}
			}
			return findings
		}
	}

	// Calls into package fmt.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				findings = append(findings, pkg.finding("hotpath", call, "fmt.%s call %s (formats and boxes arguments)", sel.Sel.Name, where))
				return findings
			}
		}
	}

	// Implicit boxing: a concrete argument passed for an interface
	// parameter is converted (and usually heap-allocated) at the call.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return findings
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		findings = append(findings, pkg.finding("hotpath", arg, "argument boxes %s into interface %s %s", at, pt, where))
	}
	return findings
}

// preallocatedVars finds variables bound to a zero-length reslice of an
// existing buffer (x := buf[:0] and the like). Appending to these reuses
// the buffer's capacity, so hot-path appends into them are allowed.
func preallocatedVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if isZeroReslice(info, rhs) {
				if obj := lhsObject(info, id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isZeroReslice reports whether e has the form x[:0] (or x[0:0]).
func isZeroReslice(info *types.Info, e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	tv, ok := info.Types[se.High]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 0
}

// isPreallocated reports whether the append destination is a variable
// known to reuse a preallocated buffer, or directly a zero reslice.
func isPreallocated(info *types.Info, dst ast.Expr, prealloc map[types.Object]bool) bool {
	if isZeroReslice(info, dst) {
		return true
	}
	id, ok := ast.Unparen(dst).(*ast.Ident)
	if !ok {
		return false
	}
	obj := lhsObject(info, id)
	return obj != nil && prealloc[obj]
}

func lhsObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
