package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Cancelpoll bounds cancellation latency: in any function reachable
// from the public enumeration entry points (Count, CountContext,
// Enumerate, EnumerateContext), a loop whose trip count is
// data-dependent and whose body can reach a cancellation poll must
// reach one on every path that completes an iteration. A poll is a
// call to a checkDeadline method/function or to ctx.Err/ctx.Done on a
// context.Context, directly or through any statically-known callee.
//
// The analysis is the shape of PR 4's tail-batch starvation bug: a
// poll guarded by a data-dependent condition (there, a counter residue
// the batch increments stepped over) leaves iteration paths that never
// observe cancellation. Paths that exit the loop (return, break,
// panic) need no poll — they hand control back. Loops that cannot
// reach a poll at all (pure kernels) and loops bounded by a
// compile-time constant are out of scope, as is everything not
// reachable from an entry point.
var Cancelpoll = &Analyzer{
	Name: "cancelpoll",
	Doc:  "loops reachable from Count/Enumerate must poll cancellation on every iteration path",
	Run:  runCancelpoll,
}

// entryNames are the public enumeration entry points the engine
// contract promises bounded cancellation latency for.
var entryNames = map[string]bool{
	"Count": true, "CountContext": true,
	"Enumerate": true, "EnumerateContext": true,
}

func runCancelpoll(m *Module) []Finding {
	g := m.CallGraph()

	// mayPoll: functions whose body contains a poll primitive, closed
	// upward over every edge kind (an interface or value call that may
	// poll counts as polling — the conservative direction for "this
	// statement satisfies the obligation").
	base := map[*types.Func]bool{}
	for _, fn := range g.Funcs() {
		n := g.Node(fn)
		has := false
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			if has {
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok && isPollPrimitive(n.Pkg.Info, call) {
				has = true
			}
			return !has
		})
		if has {
			base[fn] = true
		}
	}
	mayPoll := propagateUp(g, EdgeAll, base)

	var entries []*types.Func
	for _, fn := range g.Funcs() {
		if entryNames[fn.Name()] {
			entries = append(entries, fn)
		}
	}
	reach := g.Reachable(entries, EdgeAll, func(n *Node) bool {
		return m.FuncIgnores(n.Decl, "cancelpoll")
	})

	var findings []Finding
	for _, fn := range g.Funcs() {
		if !reach[fn] {
			continue
		}
		n := g.Node(fn)
		a := &pollAnalysis{m: m, n: n, mayPoll: mayPoll}
		findings = append(findings, a.checkLoops()...)
	}
	return findings
}

// isPollPrimitive reports whether the call is a cancellation poll: any
// checkDeadline call (matched by name, the project's polling
// convention), or Err/Done on a context.Context.
func isPollPrimitive(info *types.Info, call *ast.CallExpr) bool {
	name := callName(call)
	if name == "checkDeadline" {
		return true
	}
	if name != "Err" && name != "Done" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	named, ok := s.Recv().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// pollAnalysis runs the per-loop path analysis inside one declaration.
type pollAnalysis struct {
	m       *Module
	n       *Node
	mayPoll map[*types.Func]bool
}

func (a *pollAnalysis) checkLoops() []Finding {
	var findings []Finding
	// loopLabels maps a loop statement to its label, for labeled
	// continues.
	loopLabels := map[ast.Stmt]string{}
	ast.Inspect(a.n.Decl.Body, func(x ast.Node) bool {
		if ls, ok := x.(*ast.LabeledStmt); ok {
			switch ls.Stmt.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopLabels[ls.Stmt] = ls.Label.Name
			}
		}
		return true
	})
	ast.Inspect(a.n.Decl.Body, func(x ast.Node) bool {
		var body *ast.BlockStmt
		perIterPolled := false
		switch loop := x.(type) {
		case *ast.ForStmt:
			if !a.dataDependentFor(loop) {
				return true
			}
			body = loop.Body
			// A poll in Cond or Post runs on every iteration boundary.
			perIterPolled = a.nodePolls(loop.Cond) || a.nodePolls(loop.Post)
		case *ast.RangeStmt:
			if !a.dataDependentRange(loop) {
				return true
			}
			body = loop.Body
		default:
			return true
		}
		// Out of scope unless the body can reach a poll at all.
		if !perIterPolled && !a.nodePolls(body) {
			return true
		}
		if perIterPolled {
			return true
		}
		r := a.flowStmts(body.List, false, nil, loopLabels[x.(ast.Stmt)])
		if (r.fall.reach && !r.fall.polledAll) || (r.cont.reach && !r.cont.polledAll) {
			findings = append(findings, a.n.Pkg.finding("cancelpoll", x,
				"data-dependent loop reachable from %s can complete an iteration without passing a cancellation poll; make every fall-through and continue path reach checkDeadline/ctx.Err", entryLabel()))
		}
		return true
	})
	return findings
}

func entryLabel() string { return "Count/Enumerate" }

// dataDependentFor reports whether a for statement's trip count is not
// bounded by a compile-time constant.
func (a *pollAnalysis) dataDependentFor(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true // for {} — unbounded by construction
	}
	bin, ok := ast.Unparen(loop.Cond).(*ast.BinaryExpr)
	if !ok {
		return true
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := a.n.Pkg.Info.Types[e]
		return ok && tv.Value != nil
	}
	switch bin.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
		return !isConst(bin.X) && !isConst(bin.Y)
	}
	return true
}

// dataDependentRange reports whether a range statement's trip count is
// not bounded at compile time (ranging over an array or a constant
// integer is bounded; slices, maps, channels and ints are not).
func (a *pollAnalysis) dataDependentRange(loop *ast.RangeStmt) bool {
	info := a.n.Pkg.Info
	if tv, ok := info.Types[loop.X]; ok {
		if tv.Value != nil {
			return false // range over a constant (Go 1.22 int form)
		}
		switch t := tv.Type.Underlying().(type) {
		case *types.Array:
			return false
		case *types.Pointer:
			if _, ok := t.Elem().Underlying().(*types.Array); ok {
				return false
			}
		}
	}
	return true
}

// nodePolls reports whether the subtree contains a poll: a poll
// primitive or a call to a statically-known may-poll callee. Function
// literals are descended into — a closure created here plausibly runs
// here or on this path's behalf.
func (a *pollAnalysis) nodePolls(x ast.Node) bool {
	if x == nil {
		return false
	}
	info := a.n.Pkg.Info
	polls := false
	ast.Inspect(x, func(y ast.Node) bool {
		if polls {
			return false
		}
		call, ok := y.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPollPrimitive(info, call) {
			polls = true
			return false
		}
		if callee := staticCallee(info, call); callee != nil && a.mayPoll[callee] {
			polls = true
			return false
		}
		return true
	})
	return polls
}

// pathSet summarizes a set of control-flow paths arriving somewhere:
// whether any path arrives, and whether all arriving paths have passed
// a poll.
type pathSet struct {
	reach     bool
	polledAll bool
}

func (p *pathSet) add(polled bool) {
	if !p.reach {
		p.reach, p.polledAll = true, polled
	} else {
		p.polledAll = p.polledAll && polled
	}
}

func (p *pathSet) merge(q pathSet) {
	if q.reach {
		p.add(q.polledAll)
	}
}

// flowRes is the result of flowing through a statement (or list):
// fall — control falls past it; cont — control continues the analyzed
// loop from within it. Exits (return, loop break, panic) vanish: they
// do not complete an iteration, so they carry no poll obligation.
type flowRes struct {
	fall pathSet
	cont pathSet
}

// flowStmts flows a statement list. polled is the status on entry;
// brk, when non-nil, collects unlabeled breaks (we are inside a switch
// or select, where break does not exit the loop). label is the
// analyzed loop's label ("" if none) so labeled continues resolve.
func (a *pollAnalysis) flowStmts(stmts []ast.Stmt, polled bool, brk *pathSet, label string) flowRes {
	res := flowRes{}
	cur := pathSet{reach: true, polledAll: polled}
	for _, s := range stmts {
		if !cur.reach {
			break
		}
		r := a.flowStmt(s, cur.polledAll, brk, label)
		res.cont.merge(r.cont)
		cur = r.fall
	}
	res.fall = cur
	return res
}

// flowStmt flows one statement.
func (a *pollAnalysis) flowStmt(s ast.Stmt, polled bool, brk *pathSet, label string) flowRes {
	fallWith := func(p bool) flowRes {
		r := flowRes{}
		r.fall.add(p)
		return r
	}
	exit := func() flowRes { return flowRes{} }

	switch st := s.(type) {
	case *ast.BlockStmt:
		return a.flowStmts(st.List, polled, brk, label)

	case *ast.LabeledStmt:
		return a.flowStmt(st.Stmt, polled, brk, label)

	case *ast.ReturnStmt:
		return exit()

	case *ast.BranchStmt:
		switch st.Tok {
		case token.CONTINUE:
			if st.Label == nil || st.Label.Name == label {
				r := flowRes{}
				r.cont.add(polled)
				return r
			}
			return exit() // continue of an enclosing loop exits this one
		case token.BREAK:
			if st.Label == nil && brk != nil {
				brk.add(polled) // breaks the switch/select, not the loop
				return exit()
			}
			return exit() // exits the loop (or an enclosing construct)
		case token.GOTO:
			return exit() // conservative: treat as leaving the loop
		case token.FALLTHROUGH:
			// Approximate: end of this case's flow; the next case body
			// is analyzed on its own with the pre-switch status.
			return exit()
		}
		return fallWith(polled)

	case *ast.IfStmt:
		p := polled || a.nodePolls(st.Init) || a.nodePolls(st.Cond)
		then := a.flowStmts(st.Body.List, p, brk, label)
		var els flowRes
		if st.Else != nil {
			els = a.flowStmt(st.Else, p, brk, label)
		} else {
			els.fall.add(p)
		}
		then.fall.merge(els.fall)
		then.cont.merge(els.cont)
		return then

	case *ast.ForStmt, *ast.RangeStmt:
		// Nested loops are opaque: they may run zero iterations, so
		// polls inside them do not discharge this loop's obligation.
		// A labeled continue of the analyzed loop inside the nested
		// body is still an iteration ending here; conservatively
		// treat it as unpolled-at-entry.
		r := fallWith(polled || a.loopHeaderPolls(st))
		if label != "" && hasLabeledContinue(st, label) {
			r.cont.add(polled)
		}
		return r

	case *ast.SwitchStmt:
		p := polled || a.nodePolls(st.Init) || a.nodePolls(st.Tag)
		return a.flowCases(st.Body, p, label, true)

	case *ast.TypeSwitchStmt:
		p := polled || a.nodePolls(st.Init) || a.nodePolls(st.Assign)
		return a.flowCases(st.Body, p, label, true)

	case *ast.SelectStmt:
		// A select evaluates every comm operand before choosing a
		// clause, so a <-ctx.Done() case polls on every path through
		// the statement, including default.
		p := polled
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && a.nodePolls(cc.Comm) {
				p = true
			}
		}
		return a.flowCases(st.Body, p, label, false)

	default:
		// Leaf statement (expression, assignment, declaration, send,
		// go, defer, ...): check for panic/os.Exit termination, then
		// for polls anywhere in the statement.
		if terminates(a.n.Pkg.Info, s) {
			return exit()
		}
		return fallWith(polled || a.nodePolls(s))
	}
}

// loopHeaderPolls reports whether a nested loop's per-iteration header
// (cond/post) or once-evaluated range operand polls. Only the
// once-or-more evaluated parts count toward the enclosing path.
func (a *pollAnalysis) loopHeaderPolls(s ast.Stmt) bool {
	switch loop := s.(type) {
	case *ast.ForStmt:
		return a.nodePolls(loop.Init) || a.nodePolls(loop.Cond)
	case *ast.RangeStmt:
		return a.nodePolls(loop.X)
	}
	return false
}

// flowCases flows a switch/type-switch/select body: each clause is an
// alternative; unlabeled breaks inside land after the statement. A
// switch without a default can fall through untaken; a select always
// takes a clause.
func (a *pollAnalysis) flowCases(body *ast.BlockStmt, polled bool, label string, implicitFall bool) flowRes {
	res := flowRes{}
	var after pathSet // paths landing after the statement via break
	hasDefault := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		p := polled
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				if a.nodePolls(e) {
					p = true
				}
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			p = p || a.nodePolls(c.Comm)
			stmts = c.Body
		}
		r := a.flowStmts(stmts, p, &after, label)
		res.fall.merge(r.fall)
		res.cont.merge(r.cont)
	}
	if implicitFall && !hasDefault {
		res.fall.add(polled)
	}
	res.fall.merge(after)
	return res
}

// hasLabeledContinue reports whether the subtree contains
// "continue label".
func hasLabeledContinue(n ast.Node, label string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if b, ok := x.(*ast.BranchStmt); ok && b.Tok == token.CONTINUE && b.Label != nil && b.Label.Name == label {
			found = true
		}
		return !found
	})
	return found
}

// terminates reports whether a leaf statement certainly does not fall
// through: a direct panic or os.Exit call.
func terminates(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	if builtinName(info, call) == "panic" {
		return true
	}
	if f := staticCallee(info, call); f != nil && f.Pkg() != nil {
		full := f.Pkg().Path() + "." + f.Name()
		return full == "os.Exit" || full == "runtime.Goexit"
	}
	return false
}
