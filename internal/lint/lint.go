// Package lint is the reusable core of cmd/lightvet, a project-specific
// static-analysis suite for the LIGHT engine. It is built purely on the
// standard library's go/ast, go/parser and go/types (no x/tools
// dependency, honoring the repo's stdlib-only constraint).
//
// Four analyzers guard the invariants the paper's performance model
// depends on:
//
//   - hotpath: functions annotated //light:hotpath — and every module
//     function they statically call — must stay allocation-free: no
//     make/new, no heap composite literals, no closures, no fmt calls,
//     no interface boxing, and no append into buffers that were not
//     visibly preallocated.
//   - concurrency: synchronization discipline — locks copied by value,
//     fields accessed both atomically and non-atomically,
//     sync.Cond.Signal/Broadcast outside any lock, and goroutines
//     launched without a WaitGroup or channel in scope.
//   - indexsafety: 32-bit narrowing conversions and 32-bit arithmetic
//     in the CSR graph package, where int32/uint32 overflow is a real
//     failure mode at production graph scale.
//   - hygiene: exported identifiers without doc comments and silently
//     discarded error returns.
//
// Findings can be suppressed with a trailing or preceding
// "//lightvet:ignore <analyzer>..." comment; a bare "//lightvet:ignore"
// suppresses every analyzer. The same directive in a function's doc
// comment suppresses the named analyzers for the whole function (and
// keeps hotpath from propagating through it).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional path:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the full analysis universe: every loaded package of one Go
// module, in dependency order, sharing a FileSet.
type Module struct {
	Path     string // module path, e.g. "light"
	Fset     *token.FileSet
	Packages []*Package
}

// Analyzer is one named check over a whole module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Hotpath, Concurrency, IndexSafety, Hygiene}
}

// ByName resolves a comma-separated analyzer list ("hotpath,hygiene").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Lint runs the analyzers over the module, drops suppressed findings,
// and returns the remainder sorted by position.
func (m *Module) Lint(analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, a := range analyzers {
		all = append(all, a.Run(m)...)
	}
	sup := m.suppressions()
	kept := all[:0]
	for _, f := range all {
		if !sup.matches(f) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// ignoreDirective parses a "lightvet:ignore ..." comment, returning the
// analyzer names it names (nil, true for the bare form that suppresses
// everything).
func ignoreDirective(text string) (names []string, ok bool) {
	const prefix = "//lightvet:ignore"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	// Allow a trailing justification after " -- ".
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return nil, true
	}
	return strings.Fields(rest), true
}

// hotpathAnnotated reports whether a doc comment carries the
// //light:hotpath directive.
func hotpathAnnotated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//light:hotpath" {
			return true
		}
	}
	return false
}

// suppressionSet records, per file, which lines and line ranges have
// active lightvet:ignore directives.
type suppressionSet struct {
	// lines[file][line] holds analyzer names suppressed at that line
	// (the sentinel "*" suppresses all analyzers).
	lines map[string]map[int][]string
}

func (s *suppressionSet) add(file string, line int, names []string) {
	if s.lines == nil {
		s.lines = map[string]map[int][]string{}
	}
	fl := s.lines[file]
	if fl == nil {
		fl = map[int][]string{}
		s.lines[file] = fl
	}
	if names == nil {
		names = []string{"*"}
	}
	fl[line] = append(fl[line], names...)
}

func (s *suppressionSet) matches(f Finding) bool {
	fl := s.lines[f.Pos.Filename]
	if fl == nil {
		return false
	}
	for _, name := range fl[f.Pos.Line] {
		if name == "*" || name == f.Analyzer {
			return true
		}
	}
	return false
}

// suppressions gathers every lightvet:ignore directive in the module. A
// directive covers its own line and the following line (so it works both
// trailing an offending expression and on its own line above one). A
// directive in a function's doc comment covers the function's whole
// body.
func (m *Module) suppressions() *suppressionSet {
	s := &suppressionSet{}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					names, ok := ignoreDirective(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					s.add(pos.Filename, pos.Line, names)
					s.add(pos.Filename, pos.Line+1, names)
				}
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					names, ok := ignoreDirective(c.Text)
					if !ok {
						continue
					}
					start := pkg.Fset.Position(fd.Pos()).Line
					end := pkg.Fset.Position(fd.End()).Line
					fname := pkg.Fset.Position(fd.Pos()).Filename
					for line := start; line <= end; line++ {
						s.add(fname, line, names)
					}
				}
			}
		}
	}
	return s
}

// funcIgnores reports whether the function's doc comment suppresses the
// named analyzer for the entire declaration (used by hotpath to stop
// propagation into acknowledged-cold callees).
func funcIgnores(fd *ast.FuncDecl, analyzer string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		names, ok := ignoreDirective(c.Text)
		if !ok {
			continue
		}
		if names == nil {
			return true
		}
		for _, n := range names {
			if n == "*" || n == analyzer {
				return true
			}
		}
	}
	return false
}

// finding is a small helper building a Finding at a node's position.
func (p *Package) finding(analyzer string, n ast.Node, format string, args ...any) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      p.Fset.Position(n.Pos()),
		Message:  fmt.Sprintf(format, args...),
	}
}
