// Package lint is the reusable core of cmd/lightvet, a project-specific
// static-analysis suite for the LIGHT engine. It is built purely on the
// standard library's go/ast, go/parser and go/types (no x/tools
// dependency, honoring the repo's stdlib-only constraint).
//
// The suite is interprocedural: a static call graph over the loaded
// module (see CallGraph) plus small shared dataflow helpers back the
// analyzers that reason across function boundaries.
//
// Seven analyzers guard the invariants the paper's performance and
// exactness model depends on:
//
//   - hotpath: functions annotated //light:hotpath — and every module
//     function they statically call, transitively over the call
//     graph — must stay allocation-free: no make/new, no heap composite
//     literals, no closures, no fmt calls, no interface boxing, and no
//     append into buffers that were not visibly preallocated.
//   - concurrency: synchronization discipline — locks copied by value,
//     fields accessed both atomically and non-atomically,
//     sync.Cond.Signal/Broadcast outside any lock, and goroutines
//     launched without a WaitGroup or channel in scope.
//   - indexsafety: 32-bit narrowing conversions and 32-bit arithmetic
//     in the CSR graph package, where int32/uint32 overflow is a real
//     failure mode at production graph scale.
//   - hygiene: exported identifiers without doc comments and silently
//     discarded error returns (in command mains, also fmt.Fprint* into
//     fallible buffered writers).
//   - statflow: counter parity — paths through the intersect kernels
//     must thread the *intersect.Stats parameter; a dropped, shadowed,
//     or missing stats argument silently corrupts the per-run counters
//     the bench gate and run reports compare.
//   - cancelpoll: any data-dependent loop reachable from the public
//     Count/Enumerate entry points that can reach a cancellation poll
//     must reach one on every iteration path, so cancellation latency
//     stays bounded by one iteration.
//   - capcontract: a copy or cap-extending reslice of a caller-supplied
//     slice needs a checked cap/len guard or an explicit
//     //light:cap-contract annotation on the function.
//
// Findings can be suppressed with a trailing or preceding
// "//lightvet:ignore <analyzer>..." comment; a bare "//lightvet:ignore"
// suppresses every analyzer. The same directive in a function's doc
// comment suppresses the named analyzers for the whole function (and
// keeps hotpath from propagating through it). Suppressions that no
// longer suppress anything are themselves findings under the
// UnusedIgnores audit.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional path:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the full analysis universe: every loaded package of one Go
// module, in dependency order, sharing a FileSet.
type Module struct {
	Path     string // module path, e.g. "light"
	Fset     *token.FileSet
	Packages []*Package

	cg  *CallGraph      // lazily built, shared by analyzers
	sup *suppressionSet // lazily built; accumulates usage marks
}

// Analyzer is one named check over a whole module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Hotpath, Concurrency, IndexSafety, Hygiene, Statflow, Cancelpoll, CapContract}
}

// ByName resolves a comma-separated analyzer list ("hotpath,hygiene").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Lint runs the analyzers over the module, drops suppressed findings,
// and returns the remainder sorted by position.
func (m *Module) Lint(analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, a := range analyzers {
		all = append(all, a.Run(m)...)
	}
	sup := m.suppressions()
	kept := all[:0]
	for _, f := range all {
		if !sup.matches(f) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// ignoreDirective parses a "lightvet:ignore ..." comment, returning the
// analyzer names it names (nil, true for the bare form that suppresses
// everything).
func ignoreDirective(text string) (names []string, ok bool) {
	const prefix = "//lightvet:ignore"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	// Allow a trailing justification after " -- ".
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return nil, true
	}
	return strings.Fields(rest), true
}

// hotpathAnnotated reports whether a doc comment carries the
// //light:hotpath directive.
func hotpathAnnotated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//light:hotpath" {
			return true
		}
	}
	return false
}

// directive is one parsed lightvet:ignore comment, tracked individually
// so the UnusedIgnores audit can tell which suppressions still earn
// their keep.
type directive struct {
	pos   token.Position // the comment's own position
	names []string       // nil suppresses every analyzer
	used  bool           // set when the directive suppressed a finding
	// or stopped propagation
}

// covers reports whether the directive suppresses the named analyzer.
func (d *directive) covers(analyzer string) bool {
	if d.names == nil {
		return true
	}
	for _, n := range d.names {
		if n == "*" || n == analyzer {
			return true
		}
	}
	return false
}

// label renders the directive's analyzer list for audit messages.
func (d *directive) label() string {
	if d.names == nil {
		return "(all analyzers)"
	}
	return strings.Join(d.names, " ")
}

// suppressionSet records, per file, which lines have active
// lightvet:ignore directives, keeping the identity of each directive so
// usage can be audited.
type suppressionSet struct {
	// lines[file][line] holds the directives covering that line.
	lines map[string]map[int][]*directive
	// byPos[file][line] holds the directives declared at that line
	// (their own comment position), for the function-scope lookup.
	byPos map[string]map[int][]*directive
	// order lists every directive once, in module source order.
	order []*directive
}

func (s *suppressionSet) cover(d *directive, file string, line int) {
	if s.lines == nil {
		s.lines = map[string]map[int][]*directive{}
	}
	fl := s.lines[file]
	if fl == nil {
		fl = map[int][]*directive{}
		s.lines[file] = fl
	}
	fl[line] = append(fl[line], d)
}

func (s *suppressionSet) declare(d *directive) {
	if s.byPos == nil {
		s.byPos = map[string]map[int][]*directive{}
	}
	fl := s.byPos[d.pos.Filename]
	if fl == nil {
		fl = map[int][]*directive{}
		s.byPos[d.pos.Filename] = fl
	}
	fl[d.pos.Line] = append(fl[d.pos.Line], d)
	s.order = append(s.order, d)
}

// matches reports whether the finding is suppressed, marking every
// directive that covers it as used.
func (s *suppressionSet) matches(f Finding) bool {
	hit := false
	for _, d := range s.lines[f.Pos.Filename][f.Pos.Line] {
		if d.covers(f.Analyzer) {
			d.used = true
			hit = true
		}
	}
	return hit
}

// suppressions gathers every lightvet:ignore directive in the module,
// building the set once and caching it so usage marks accumulate across
// Lint and FuncIgnores calls. A directive covers its own line and the
// following line (so it works both trailing an offending expression and
// on its own line above one). A directive in a function's doc comment
// covers the function's whole body.
func (m *Module) suppressions() *suppressionSet {
	if m.sup != nil {
		return m.sup
	}
	s := &suppressionSet{}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			// Doc-comment directives get function-wide coverage; note
			// their comment positions so the loop below does not
			// double-register them with line-local coverage.
			funcScoped := map[token.Pos]bool{}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					names, ok := ignoreDirective(c.Text)
					if !ok {
						continue
					}
					d := &directive{pos: pkg.Fset.Position(c.Pos()), names: names}
					s.declare(d)
					funcScoped[c.Pos()] = true
					start := pkg.Fset.Position(fd.Pos()).Line
					end := pkg.Fset.Position(fd.End()).Line
					fname := pkg.Fset.Position(fd.Pos()).Filename
					for line := start; line <= end; line++ {
						s.cover(d, fname, line)
					}
				}
			}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					names, ok := ignoreDirective(c.Text)
					if !ok || funcScoped[c.Pos()] {
						continue
					}
					d := &directive{pos: pkg.Fset.Position(c.Pos()), names: names}
					s.declare(d)
					s.cover(d, d.pos.Filename, d.pos.Line)
					s.cover(d, d.pos.Filename, d.pos.Line+1)
				}
			}
		}
	}
	m.sup = s
	return s
}

// FuncIgnores reports whether the function's doc comment suppresses the
// named analyzer for the entire declaration (used by the
// call-graph-based analyzers to stop propagation into acknowledged
// functions). The matching directive is marked used for the
// UnusedIgnores audit.
func (m *Module) FuncIgnores(fd *ast.FuncDecl, analyzer string) bool {
	if fd.Doc == nil {
		return false
	}
	s := m.suppressions()
	hit := false
	for _, c := range fd.Doc.List {
		if _, ok := ignoreDirective(c.Text); !ok {
			continue
		}
		pos := m.Fset.Position(c.Pos())
		for _, d := range s.byPos[pos.Filename][pos.Line] {
			if d.covers(analyzer) {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// UnusedIgnores runs the analyzers (marking every suppression they
// trip) and returns a finding, under the synthetic analyzer name
// "unusedignore", for each lightvet:ignore directive that suppressed
// nothing. Run it with the full suite: a directive naming an analyzer
// that did not run would otherwise be reported stale.
func (m *Module) UnusedIgnores(analyzers []*Analyzer) []Finding {
	m.Lint(analyzers)
	var out []Finding
	for _, d := range m.suppressions().order {
		if d.used {
			continue
		}
		out = append(out, Finding{
			Analyzer: "unusedignore",
			Pos:      d.pos,
			Message:  fmt.Sprintf("lightvet:ignore %s suppresses nothing; remove the stale directive", d.label()),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// finding is a small helper building a Finding at a node's position.
func (p *Package) finding(analyzer string, n ast.Node, format string, args ...any) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      p.Fset.Position(n.Pos()),
		Message:  fmt.Sprintf(format, args...),
	}
}
