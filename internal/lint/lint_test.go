package lint_test

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"light/internal/lint"
)

// fixturePkgs lists every fixture package under testdata/src. Each
// analyzer has a violation fixture (findings expected on every line
// carrying a "// want <analyzer>" marker) and a clean fixture (no
// findings allowed). All are loaded as one fixture module so the
// full suite cross-checks: an analyzer firing on another analyzer's
// fixture is reported as an unexpected finding. Order matters for
// packages with module-internal imports: dependencies first.
var fixturePkgs = []string{
	"hotpath_bad", "hotpath_clean",
	"supervise", // stub dependency; must precede its importers
	"concurrency_bad", "concurrency_clean",
	"indexsafety_bad", "indexsafety_clean",
	"hygiene_bad", "hygiene_clean",
	"hygiene_main_bad", "hygiene_main_clean",
	"statflow_bad", // must precede statflow_caller
	"statflow_clean", "statflow_caller",
	"cancelpoll_bad", "cancelpoll_clean",
	"admission_bad", "admission_clean",
	"capcontract_bad", "capcontract_clean",
	"callgraph",
}

var (
	fixtureOnce sync.Once
	fixtureMod  *lint.Module
	fixtureErr  error
)

func loadFixtures(t *testing.T) *lint.Module {
	t.Helper()
	fixtureOnce.Do(func() {
		paths := make([]string, 0, len(fixturePkgs))
		dirs := map[string]string{}
		for _, name := range fixturePkgs {
			path := "fixture/" + name
			paths = append(paths, path)
			dirs[path] = filepath.Join("testdata", "src", name)
		}
		fixtureMod, fixtureErr = lint.LoadDirs("fixture", paths, dirs)
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixtures: %v", fixtureErr)
	}
	return fixtureMod
}

// mark identifies one expected finding: a file/line plus the analyzer
// that must fire there.
type mark struct {
	file     string
	line     int
	analyzer string
}

// wantMarks scans the fixture sources for "// want <analyzer>" trailing
// comments.
func wantMarks(m *lint.Module) map[mark]bool {
	out := map[mark]bool{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					fields := strings.Fields(strings.TrimPrefix(c.Text, "//"))
					if len(fields) != 2 || fields[0] != "want" {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					out[mark{filepath.Base(pos.Filename), pos.Line, fields[1]}] = true
				}
			}
		}
	}
	return out
}

// TestAnalyzersMatchFixtureMarkers runs the whole suite over the whole
// fixture module and requires the findings to match the want markers
// exactly: every marked line fires, nothing else does. Clean fixtures
// carry no markers, so any finding in them fails the test.
func TestAnalyzersMatchFixtureMarkers(t *testing.T) {
	m := loadFixtures(t)
	want := wantMarks(m)
	if len(want) == 0 {
		t.Fatal("no want markers found in fixtures")
	}
	got := map[mark]bool{}
	var unexpected []string
	for _, f := range m.Lint(lint.All()) {
		k := mark{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer}
		got[k] = true
		if !want[k] {
			unexpected = append(unexpected, f.String())
		}
	}
	sort.Strings(unexpected)
	for _, s := range unexpected {
		t.Errorf("unexpected finding: %s", s)
	}
	var missing []string
	for k := range want {
		if !got[k] {
			missing = append(missing, fmt.Sprintf("%s:%d: expected a %s finding, got none", k.file, k.line, k.analyzer))
		}
	}
	sort.Strings(missing)
	for _, s := range missing {
		t.Error(s)
	}
}

// TestEachAnalyzerFires guards against an analyzer silently matching
// nothing (e.g. a scoping bug that skips every package).
func TestEachAnalyzerFires(t *testing.T) {
	m := loadFixtures(t)
	byAnalyzer := map[string]int{}
	for _, f := range m.Lint(lint.All()) {
		byAnalyzer[f.Analyzer]++
	}
	for _, a := range lint.All() {
		if byAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s produced no findings on its violation fixture", a.Name)
		}
	}
}

// TestSingleAnalyzerScoping runs one analyzer in isolation and checks it
// reports only its own findings.
func TestSingleAnalyzerScoping(t *testing.T) {
	m := loadFixtures(t)
	for _, f := range m.Lint([]*lint.Analyzer{lint.IndexSafety}) {
		if f.Analyzer != "indexsafety" {
			t.Errorf("indexsafety run produced foreign finding: %s", f)
		}
		if !strings.Contains(f.Pos.Filename, "indexsafety_bad") {
			t.Errorf("indexsafety fired outside its fixture: %s", f)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := lint.ByName("hotpath, hygiene")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(as) != 2 || as[0].Name != "hotpath" || as[1].Name != "hygiene" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := lint.ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
}

// TestLoadRealModule smoke-tests the go-list-driven loader against the
// repository itself using a package with module-internal imports.
func TestLoadRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping module load in -short mode")
	}
	m, err := lint.Load(".", []string{"light/internal/intersect"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m.Path != "light" {
		t.Fatalf("module path = %q, want light", m.Path)
	}
	if len(m.Packages) == 0 {
		t.Fatal("Load returned no packages")
	}
}
