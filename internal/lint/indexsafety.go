package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// IndexSafety guards the CSR graph package (package name "graph")
// against 32-bit overflow, a real failure mode once graphs approach
// production scale (vertex ids are uint32, adjacency offsets int64). It
// flags:
//
//   - narrowing integer conversions — conversions whose target type
//     cannot represent every value of the source type (uint64→int,
//     int→uint32, …). Conversions of constants that fit, and of
//     visibly bounded loop/range index variables, are accepted.
//   - arithmetic (+, -, *, <<) carried out in a 32-bit integer type,
//     where wraparound silently corrupts vertex ids or offsets; do the
//     arithmetic in int64 and convert at the edges.
var IndexSafety = &Analyzer{
	Name: "indexsafety",
	Doc:  "narrowing conversions and 32-bit arithmetic in the CSR graph package",
	Run:  runIndexSafety,
}

func runIndexSafety(m *Module) []Finding {
	var findings []Finding
	for _, pkg := range m.Packages {
		if pkg.Pkg.Name() != "graph" {
			continue
		}
		findings = append(findings, checkIndexSafety(pkg)...)
	}
	return findings
}

func checkIndexSafety(pkg *Package) []Finding {
	info := pkg.Info
	var findings []Finding
	for _, file := range pkg.Files {
		bounded := boundedIndexVars(info, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				tv, ok := info.Types[node.Fun]
				if !ok || !tv.IsType() || len(node.Args) != 1 {
					return true
				}
				dst, ok := basicInt(tv.Type)
				if !ok {
					return true
				}
				arg := ast.Unparen(node.Args[0])
				src, ok := basicInt(info.TypeOf(arg))
				if !ok {
					return true
				}
				if !narrows(src, dst) {
					return true
				}
				if av, aok := info.Types[arg]; aok && av.Value != nil {
					return true // constants that fit are checked by the compiler
				}
				if id, ok := arg.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && bounded[obj] {
						return true
					}
				}
				findings = append(findings, pkg.finding("indexsafety", node, "narrowing conversion %s→%s may overflow at production graph scale", typeName(src), typeName(dst)))
			case *ast.BinaryExpr:
				switch node.Op {
				case token.ADD, token.SUB, token.MUL, token.SHL:
				default:
					return true
				}
				tv, ok := info.Types[node]
				if !ok || tv.Value != nil {
					return true // constant-folded
				}
				b, ok := basicInt(tv.Type)
				if !ok {
					return true
				}
				if b.Kind() == types.Int32 || b.Kind() == types.Uint32 {
					findings = append(findings, pkg.finding("indexsafety", node, "32-bit %s arithmetic may wrap; compute in int64 and convert at the edges", typeName(b)))
				}
			}
			return true
		})
	}
	return findings
}

// basicInt unwraps t to a basic integer type.
func basicInt(t types.Type) (*types.Basic, bool) {
	if t == nil {
		return nil, false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil, false
	}
	return b, true
}

// intMaxRank maps an integer kind to a rank ordered by the maximum value
// the type can hold (int/uint treated as 64-bit, matching every platform
// the engine targets).
func intMaxRank(b *types.Basic) int {
	switch b.Kind() {
	case types.Int8:
		return 1
	case types.Uint8:
		return 2
	case types.Int16:
		return 3
	case types.Uint16:
		return 4
	case types.Int32:
		return 5
	case types.Uint32:
		return 6
	case types.Int64, types.Int, types.UntypedInt:
		return 7
	case types.Uint64, types.Uint, types.Uintptr:
		return 8
	}
	return 7
}

// narrows reports whether converting src to dst can lose high bits: the
// source's maximum value exceeds the destination's. Sign-only changes at
// the same width (int64→uint64) are not flagged.
func narrows(src, dst *types.Basic) bool {
	return intMaxRank(src) > intMaxRank(dst)
}

func typeName(b *types.Basic) string { return b.Name() }

// boundedIndexVars collects loop variables whose value is visibly
// bounded: `for i := 0; i < bound; i++` counters and range indices over
// slices or arrays. Narrowing conversions of these are accepted — the
// bound keeps them in range wherever the container itself is in range.
func boundedIndexVars(info *types.Info, file *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ForStmt:
			assign, ok := node.Init.(*ast.AssignStmt)
			if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) != 1 {
				return true
			}
			id, ok := assign.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			cond, ok := node.Cond.(*ast.BinaryExpr)
			if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
				return true
			}
			left, ok := cond.X.(*ast.Ident)
			if !ok || left.Name != id.Name {
				return true
			}
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			}
		case *ast.RangeStmt:
			id, ok := node.Key.(*ast.Ident)
			if !ok {
				return true
			}
			t := info.TypeOf(node.X)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array:
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
