package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CapContract guards the kernels' caller-supplied-buffer convention:
// writing into a caller's slice beyond what the call site can see must
// be either checked or documented. In any function taking slice
// parameters, two operations are findings unless covered:
//
//   - reslicing a parameter to its capacity (p[:cap(p)]), which
//     exposes memory past len(p) to writes, and
//   - copy into a parameter-derived destination, which silently
//     truncates when the destination is shorter than the source (the
//     pre-fix MultiWay shape from PR 5).
//
// Coverage is either a checked guard — an if condition mentioning
// cap(p) or len(p) for the same parameter anywhere in the function —
// or the //light:cap-contract annotation in the function's doc
// comment, which documents that the function's contract makes
// under-capacity a caller bug (typically a documented panic). A copy
// whose destination and source are reslices with syntactically
// identical bounds (copy(dst[:n], src[:n])) is provably
// non-truncating and exempt.
var CapContract = &Analyzer{
	Name: "capcontract",
	Doc:  "copies and cap-reslices of caller-supplied slices need a guard or //light:cap-contract",
	Run:  runCapContract,
}

// capContractAnnotated reports whether a doc comment carries the
// //light:cap-contract directive.
func capContractAnnotated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//light:cap-contract" {
			return true
		}
	}
	return false
}

func runCapContract(m *Module) []Finding {
	g := m.CallGraph()
	var findings []Finding
	for _, fn := range g.Funcs() {
		n := g.Node(fn)
		if capContractAnnotated(n.Decl.Doc) {
			continue
		}
		findings = append(findings, checkCapContract(n)...)
	}
	return findings
}

func checkCapContract(n *Node) []Finding {
	info := n.Pkg.Info
	isSlice := func(t types.Type) bool {
		_, ok := t.Underlying().(*types.Slice)
		return ok
	}
	params := paramObjects(info, n.Decl, isSlice)
	if len(params) == 0 {
		return nil
	}
	paramSet := map[types.Object]bool{}
	for _, p := range params {
		paramSet[p] = true
	}

	// paramOf resolves an expression to the slice parameter it denotes
	// (through parens and reslices of the parameter).
	var paramOf func(e ast.Expr) types.Object
	paramOf = func(e ast.Expr) types.Object {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && paramSet[obj] {
				return obj
			}
		case *ast.SliceExpr:
			return paramOf(x.X)
		}
		return nil
	}

	// guarded: parameters whose cap or len appears in an if condition
	// anywhere in the function (the copySingle discipline:
	// "if cap(dst) < len(s) { panic }").
	guarded := map[types.Object]bool{}
	markGuards := func(cond ast.Expr) {
		if cond == nil {
			return
		}
		ast.Inspect(cond, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch builtinName(info, call) {
			case "cap", "len":
				if len(call.Args) == 1 {
					if obj := paramOf(call.Args[0]); obj != nil {
						guarded[obj] = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if ifs, ok := x.(*ast.IfStmt); ok {
			markGuards(ifs.Cond)
		}
		return true
	})

	// copyDsts marks slice expressions used directly as a copy
	// destination, so the cap-reslice rule defers to the copy rule and
	// one site yields one finding.
	copyDsts := map[ast.Expr]bool{}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if ok && builtinName(info, call) == "copy" && len(call.Args) == 2 {
			copyDsts[ast.Unparen(call.Args[0])] = true
		}
		return true
	})

	var findings []Finding
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch node := x.(type) {
		case *ast.SliceExpr:
			if copyDsts[node] {
				return true
			}
			obj := paramOf(node.X)
			if obj == nil || guarded[obj] {
				return true
			}
			if isCapReslice(info, node, obj) {
				findings = append(findings, n.Pkg.finding("capcontract", node,
					"reslices caller-supplied %s to cap(%s) without a capacity guard; add a checked guard or annotate the function //light:cap-contract", obj.Name(), obj.Name()))
			}
		case *ast.CallExpr:
			if builtinName(info, node) != "copy" || len(node.Args) != 2 {
				return true
			}
			dst, src := node.Args[0], node.Args[1]
			obj := paramOf(dst)
			if obj == nil || guarded[obj] {
				return true
			}
			if identicalBounds(dst, src) {
				return true
			}
			findings = append(findings, n.Pkg.finding("capcontract", node,
				"copy into caller-supplied %s may silently truncate; guard cap(%s)/len(%s) or annotate the function //light:cap-contract", obj.Name(), obj.Name(), obj.Name()))
		}
		return true
	})
	return findings
}

// isCapReslice reports whether the slice expression's high bound is
// cap(obj) — the shape that exposes memory past len to writes.
func isCapReslice(info *types.Info, se *ast.SliceExpr, obj types.Object) bool {
	if se.High == nil {
		return false
	}
	call, ok := ast.Unparen(se.High).(*ast.CallExpr)
	if !ok || builtinName(info, call) != "cap" || len(call.Args) != 1 {
		return false
	}
	return exprIsObject(info, call.Args[0], obj)
}

// identicalBounds reports whether dst and src are both slice
// expressions with syntactically identical high bounds
// (copy(dst[:n], src[:n])), which cannot truncate.
func identicalBounds(dst, src ast.Expr) bool {
	d, ok := ast.Unparen(dst).(*ast.SliceExpr)
	if !ok || d.High == nil {
		return false
	}
	s, ok := ast.Unparen(src).(*ast.SliceExpr)
	if !ok || s.High == nil {
		return false
	}
	return types.ExprString(d.High) == types.ExprString(s.High)
}
