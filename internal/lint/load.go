package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// rawPackage is an unparsed package: an import path plus its Go files.
type rawPackage struct {
	path    string
	dir     string
	files   []string // absolute paths
	imports []string
}

// listedPackage mirrors the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
}

// goList runs `go list -json` in dir for the given patterns and decodes
// the stream of package objects.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles,Imports,Module", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists the packages matching patterns (relative to dir, e.g.
// "./...") with the go tool, pulls in any module-internal dependencies
// that the patterns missed, and type-checks everything in dependency
// order. Standard-library imports are type-checked from GOROOT source by
// the stdlib "source" importer.
func Load(dir string, patterns []string) (*Module, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(listed) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}
	modPath := ""
	for _, p := range listed {
		if p.Module != nil && p.Module.Path != "" {
			modPath = p.Module.Path
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: packages %v are not inside a module", patterns)
	}

	byPath := map[string]listedPackage{}
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}
	// Chase module-internal imports the patterns did not match, so the
	// type checker always has its dependencies available.
	for {
		var missing []string
		for _, p := range byPath {
			for _, imp := range p.Imports {
				if isModuleLocal(imp, modPath) {
					if _, ok := byPath[imp]; !ok {
						missing = append(missing, imp)
					}
				}
			}
		}
		if len(missing) == 0 {
			break
		}
		sort.Strings(missing)
		extra, err := goList(dir, missing)
		if err != nil {
			return nil, err
		}
		for _, p := range extra {
			byPath[p.ImportPath] = p
		}
	}

	raw := make([]*rawPackage, 0, len(byPath))
	for _, p := range byPath {
		rp := &rawPackage{path: p.ImportPath, dir: p.Dir}
		for _, f := range p.GoFiles {
			rp.files = append(rp.files, filepath.Join(p.Dir, f))
		}
		for _, imp := range p.Imports {
			if isModuleLocal(imp, modPath) {
				rp.imports = append(rp.imports, imp)
			}
		}
		raw = append(raw, rp)
	}
	ordered, err := topoSort(raw)
	if err != nil {
		return nil, err
	}
	return typeCheck(modPath, ordered)
}

// LoadDirs type-checks stand-alone package directories (fixture trees in
// tests). dirs maps an import path to the directory holding the
// package's files; packages may import each other by those paths and
// anything from the standard library.
func LoadDirs(modPath string, paths []string, dirs map[string]string) (*Module, error) {
	raw := make([]*rawPackage, 0, len(paths))
	for _, path := range paths {
		dir, ok := dirs[path]
		if !ok {
			return nil, fmt.Errorf("lint: no directory for package %q", path)
		}
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		raw = append(raw, &rawPackage{path: path, dir: dir, files: matches})
	}
	// Imports are discovered during parsing; order is the caller's.
	return typeCheck(modPath, raw)
}

func isModuleLocal(importPath, modPath string) bool {
	return importPath == modPath || strings.HasPrefix(importPath, modPath+"/")
}

// topoSort orders packages so every module-internal dependency precedes
// its importers.
func topoSort(raw []*rawPackage) ([]*rawPackage, error) {
	byPath := map[string]*rawPackage{}
	for _, p := range raw {
		byPath[p.path] = p
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[string]int{}
	var ordered []*rawPackage
	var visit func(p *rawPackage) error
	visit = func(p *rawPackage) error {
		switch state[p.path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle through %s", p.path)
		}
		state[p.path] = grey
		for _, imp := range p.imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.path] = black
		ordered = append(ordered, p)
		return nil
	}
	paths := make([]string, 0, len(raw))
	for _, p := range raw {
		paths = append(paths, p.path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(byPath[path]); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// moduleImporter resolves module-internal imports from the packages
// type-checked so far and everything else from GOROOT source.
type moduleImporter struct {
	modPath string
	done    map[string]*types.Package
	std     types.ImporterFrom
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := im.done[path]; ok {
		return pkg, nil
	}
	if isModuleLocal(path, im.modPath) {
		return nil, fmt.Errorf("lint: internal package %s not yet type-checked (load order bug)", path)
	}
	return im.std.ImportFrom(path, dir, mode)
}

// typeCheck parses and type-checks the packages in the given order and
// assembles the Module.
func typeCheck(modPath string, ordered []*rawPackage) (*Module, error) {
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImportFrom")
	}
	im := &moduleImporter{modPath: modPath, done: map[string]*types.Package{}, std: std}
	m := &Module{Path: modPath, Fset: fset}
	for _, rp := range ordered {
		files := make([]*ast.File, 0, len(rp.files))
		for _, path := range rp.files {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: im}
		tpkg, err := conf.Check(rp.path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", rp.path, err)
		}
		im.done[rp.path] = tpkg
		m.Packages = append(m.Packages, &Package{
			Path:  rp.path,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	return m, nil
}
