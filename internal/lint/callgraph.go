package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies how control may transfer along a call-graph edge.
// Kinds are bit flags so analyzers can select the subset whose soundness
// trade-off fits their invariant: hotpath propagates over EdgeCall only
// (a dynamic call cannot prove a callee hot), while reachability-style
// analyzers (statflow, cancelpoll) traverse EdgeAll to over-approximate.
type EdgeKind uint8

const (
	// EdgeCall is a statically resolved direct call: a plain function
	// call, a package-qualified call, or a method call on a concrete
	// receiver.
	EdgeCall EdgeKind = 1 << iota
	// EdgeRef is a function or method value reference outside call
	// position. The callee may run wherever the value flows, so
	// reachability analyses treat a reference as a possible call.
	EdgeRef
	// EdgeIface is a conservative interface-dispatch candidate: an edge
	// to every module method whose receiver type implements the
	// interface the call (or method value) goes through.
	EdgeIface
)

// EdgeAll selects every edge kind.
const EdgeAll = EdgeCall | EdgeRef | EdgeIface

// String renders the kind for diagnostics and determinism tests.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeRef:
		return "ref"
	case EdgeIface:
		return "iface"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Edge is one directed edge of the static call graph.
type Edge struct {
	Caller *types.Func
	Callee *types.Func
	Kind   EdgeKind
	Site   token.Pos
}

// Node is one module function that has a body. Function literals do not
// get nodes of their own: calls inside a literal are attributed to the
// enclosing declaration, which over-approximates "defining the closure
// may run its body" — the right direction for reachability analyses.
type Node struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// Out holds the node's outgoing edges in source order (interface
	// candidates for one site are ordered by candidate declaration
	// order), so two builds of the same module yield identical graphs.
	Out []Edge
}

// CallGraph is the static call graph over every function declared with a
// body in the loaded module. It is built once per Module and shared by
// all interprocedural analyzers.
type CallGraph struct {
	nodes map[*types.Func]*Node
	order []*types.Func
}

// CallGraph returns the module's call graph, building it on first use.
func (m *Module) CallGraph() *CallGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m)
	}
	return m.cg
}

// Funcs returns every node's function in deterministic (declaration
// source) order.
func (g *CallGraph) Funcs() []*types.Func {
	return g.order
}

// Node returns the graph node for fn, or nil if fn is not a module
// function with a body.
func (g *CallGraph) Node(fn *types.Func) *Node {
	return g.nodes[fn]
}

// Edges returns every edge of the graph, callers in declaration order,
// each caller's edges in source order.
func (g *CallGraph) Edges() []Edge {
	var out []Edge
	for _, fn := range g.order {
		out = append(out, g.nodes[fn].Out...)
	}
	return out
}

// Reachable returns the functions reachable from roots over edges whose
// kind is in kinds. Roots themselves are included. A function for which
// skip returns true is not entered: it is excluded from the result and
// its callees are not explored through it. skip may be nil.
func (g *CallGraph) Reachable(roots []*types.Func, kinds EdgeKind, skip func(*Node) bool) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	var queue []*types.Func
	push := func(fn *types.Func) {
		n := g.nodes[fn]
		if n == nil || seen[fn] || (skip != nil && skip(n)) {
			return
		}
		seen[fn] = true
		queue = append(queue, fn)
	}
	for _, r := range roots {
		push(r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.nodes[fn].Out {
			if e.Kind&kinds != 0 {
				push(e.Callee)
			}
		}
	}
	return seen
}

// buildCallGraph constructs the graph: one pass collecting nodes and the
// interface-method candidate index, one pass per body emitting edges.
func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*Node{}}
	// methodsByName indexes concrete module methods for interface
	// dispatch candidates, in declaration order for determinism.
	methodsByName := map[string][]*types.Func{}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[obj] = &Node{Fn: obj, Pkg: pkg, Decl: fd}
				g.order = append(g.order, obj)
				if fd.Recv != nil {
					methodsByName[obj.Name()] = append(methodsByName[obj.Name()], obj)
				}
			}
		}
	}
	for _, fn := range g.order {
		n := g.nodes[fn]
		emitEdges(g, n, methodsByName)
	}
	return g
}

// emitEdges walks one declaration body and appends its outgoing edges.
func emitEdges(g *CallGraph, n *Node, methodsByName map[string][]*types.Func) {
	info := n.Pkg.Info
	// callFuns marks expressions appearing in call position so the
	// reference pass below does not double-count them.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	// consumed marks selector Sel idents already handled so the plain
	// ident case does not re-emit them.
	consumed := map[*ast.Ident]bool{}
	add := func(callee *types.Func, kind EdgeKind, site token.Pos) {
		if _, inModule := g.nodes[callee]; !inModule {
			return
		}
		n.Out = append(n.Out, Edge{Caller: n.Fn, Callee: callee, Kind: kind, Site: site})
	}
	// ifaceCandidates appends an edge per module method implementing
	// the interface method called or referenced at the site.
	ifaceCandidates := func(sel *types.Selection, kind EdgeKind, site token.Pos) {
		iface, ok := sel.Recv().Underlying().(*types.Interface)
		if !ok {
			return
		}
		for _, cand := range methodsByName[sel.Obj().Name()] {
			recv := cand.Type().(*types.Signature).Recv().Type()
			if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
				add(cand, kind, site)
			}
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if callee := staticCallee(info, x); callee != nil {
				add(callee, EdgeCall, x.Pos())
				return true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok {
					switch s.Kind() {
					case types.MethodVal:
						ifaceCandidates(s, EdgeIface, x.Pos())
					case types.MethodExpr:
						// T.m(recv, ...): a direct call when T is
						// concrete, dispatch candidates when T is an
						// interface.
						if f, ok := s.Obj().(*types.Func); ok {
							if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
								ifaceCandidates(s, EdgeIface, x.Pos())
							} else {
								add(f, EdgeCall, x.Pos())
							}
						}
					}
				}
			}
		case *ast.SelectorExpr:
			if callFuns[x] {
				consumed[x.Sel] = true
				return true
			}
			if s, ok := info.Selections[x]; ok {
				// Method value (x.m) or method expression (T.m)
				// outside call position.
				if f, ok := s.Obj().(*types.Func); ok {
					consumed[x.Sel] = true
					if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
						ifaceCandidates(s, EdgeIface, x.Pos())
					} else {
						add(f, EdgeRef, x.Pos())
					}
				}
				return true
			}
			// Package-qualified function reference: pkg.F as a value.
			if f, ok := info.Uses[x.Sel].(*types.Func); ok {
				consumed[x.Sel] = true
				add(f, EdgeRef, x.Pos())
			}
		case *ast.Ident:
			if callFuns[x] || consumed[x] || info.Defs[x] != nil {
				return true
			}
			if f, ok := info.Uses[x].(*types.Func); ok {
				add(f, EdgeRef, x.Pos())
			}
		}
		return true
	})
}

// staticCallee resolves a call expression to the *types.Func it
// statically invokes: plain function calls, package-qualified calls, and
// method calls on concrete receivers. Calls through function values,
// fields, and interface methods return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if f, ok := sel.Obj().(*types.Func); ok {
					// Interface method calls dispatch dynamically.
					if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
						return nil
					}
					return f
				}
			}
			return nil
		}
		// Package-qualified: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
