package lint_test

import (
	"fmt"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"light/internal/lint"
)

// edgeStrings renders a node's outgoing edges as "callee [kind]" in
// source order, with package paths trimmed for readable assertions.
func edgeStrings(g *lint.CallGraph, fn *types.Func) []string {
	var out []string
	for _, e := range g.Node(fn).Out {
		name := e.Callee.FullName()
		name = strings.ReplaceAll(name, "fixture/callgraph.", "")
		out = append(out, fmt.Sprintf("%s [%s]", name, e.Kind))
	}
	return out
}

// findFunc locates a function by name inside the callgraph fixture
// package (methods match on "Type.Name").
func findFunc(t *testing.T, g *lint.CallGraph, name string) *types.Func {
	t.Helper()
	for _, fn := range g.Funcs() {
		if fn.Pkg() == nil || fn.Pkg().Path() != "fixture/callgraph" {
			continue
		}
		id := fn.Name()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				id = named.Obj().Name() + "." + fn.Name()
			}
		}
		if id == name {
			return fn
		}
	}
	t.Fatalf("function %s not found in fixture/callgraph", name)
	return nil
}

func TestCallGraphEdges(t *testing.T) {
	m := loadFixtures(t)
	g := m.CallGraph()
	cases := []struct {
		fn   string
		want []string
	}{
		// Interface dispatch: conservative candidates to every module
		// method implementing Shape, in declaration order.
		{"Total", []string{"(Square).Area [iface]", "(Disc).Area [iface]"}},
		// Bound method value on a concrete receiver: a reference edge.
		{"Pick", []string{"(Square).Area [ref]"}},
		// Dynamic call through a function value: no edges.
		{"Apply", nil},
		// Static call plus a function reference passed as a value.
		{"Use", []string{"Apply [call]", "double [ref]"}},
		// Direct recursion.
		{"Fact", []string{"Fact [call]"}},
		// Mutual recursion.
		{"IsEven", []string{"isOdd [call]"}},
		{"isOdd", []string{"IsEven [call]"}},
	}
	for _, c := range cases {
		fn := findFunc(t, g, c.fn)
		got := edgeStrings(g, fn)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("%s: edges = %v, want %v", c.fn, got, c.want)
		}
	}
}

func TestCallGraphReachable(t *testing.T) {
	m := loadFixtures(t)
	g := m.CallGraph()
	use := findFunc(t, g, "Use")
	apply := findFunc(t, g, "Apply")
	double := findFunc(t, g, "double")
	total := findFunc(t, g, "Total")

	calls := g.Reachable([]*types.Func{use}, lint.EdgeCall, nil)
	if !calls[apply] {
		t.Error("Apply not reachable from Use over call edges")
	}
	if calls[double] {
		t.Error("double reachable from Use over call edges; the reference is not a static call")
	}
	all := g.Reachable([]*types.Func{use}, lint.EdgeAll, nil)
	if !all[double] {
		t.Error("double not reachable from Use over all edge kinds")
	}
	if all[total] {
		t.Error("Total reachable from Use; graphs are leaking edges")
	}
}

// TestCallGraphDeterminism loads the fixture module twice from disk and
// requires both call graphs to dump identical edge lists.
func TestCallGraphDeterminism(t *testing.T) {
	dump := func() []string {
		paths := make([]string, 0, len(fixturePkgs))
		dirs := map[string]string{}
		for _, name := range fixturePkgs {
			path := "fixture/" + name
			paths = append(paths, path)
			dirs[path] = filepath.Join("testdata", "src", name)
		}
		m, err := lint.LoadDirs("fixture", paths, dirs)
		if err != nil {
			t.Fatalf("loading fixtures: %v", err)
		}
		g := m.CallGraph()
		var out []string
		for _, e := range g.Edges() {
			pos := m.Fset.Position(e.Site)
			out = append(out, fmt.Sprintf("%s -> %s [%s] at %s:%d:%d",
				e.Caller.FullName(), e.Callee.FullName(), e.Kind,
				filepath.Base(pos.Filename), pos.Line, pos.Column))
		}
		return out
	}
	first, second := dump(), dump()
	if len(first) == 0 {
		t.Fatal("call graph has no edges")
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("two builds differ:\nfirst:  %d edges\nsecond: %d edges", len(first), len(second))
	}
}
