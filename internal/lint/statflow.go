package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Statflow enforces counter parity across the intersect kernels: the
// paper's exactness argument (and the repo's bench gate and run
// reports) assume every intersection performed is visible in the
// *intersect.Stats the caller threads through the kernel chain. Four
// ways of silently dropping counts are findings:
//
//  1. passing a nil *Stats at a call site while the enclosing function
//     itself received a *Stats parameter (the caller has a live
//     counter sink and drops it),
//  2. reassigning or shadowing a *Stats parameter (counts recorded
//     into the original sink stop flowing),
//  3. a *Stats parameter that is never used in a function reachable
//     from an instrumented intersect entry point (declared parity,
//     no actual counting),
//  4. calling an exported, count-returning intersect kernel that has
//     no *Stats parameter at all from outside the package (the
//     pre-instrumentation shape of intersect.Count).
//
// Passing nil where the enclosing function has no stats sink in scope
// is legal: uninstrumented probing (approx, planners) is a documented
// pattern.
var Statflow = &Analyzer{
	Name: "statflow",
	Doc:  "intersect kernel paths must thread the *Stats counter parameter",
	Run:  runStatflow,
}

// statsTypes collects the named Stats types declared in packages named
// intersect (the real module has one; fixture modules may add more).
func statsTypes(m *Module) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, pkg := range m.Packages {
		if pkg.Pkg.Name() != "intersect" {
			continue
		}
		if tn, ok := pkg.Pkg.Scope().Lookup("Stats").(*types.TypeName); ok {
			out[tn] = true
		}
	}
	return out
}

// isStatsPtr reports whether t is a pointer to one of the Stats types.
func isStatsPtr(stats map[*types.TypeName]bool, t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && stats[named.Obj()]
}

func runStatflow(m *Module) []Finding {
	stats := statsTypes(m)
	if len(stats) == 0 {
		return nil
	}
	g := m.CallGraph()
	isStats := func(t types.Type) bool { return isStatsPtr(stats, t) }

	// Instrumented entry points: exported intersect functions carrying
	// a *Stats parameter. Everything reachable from them is a counting
	// path, where an unused *Stats parameter means dropped parity.
	var entries []*types.Func
	for _, fn := range g.Funcs() {
		n := g.Node(fn)
		if n.Pkg.Pkg.Name() != "intersect" || !fn.Exported() {
			continue
		}
		if len(paramObjects(n.Pkg.Info, n.Decl, isStats)) > 0 {
			entries = append(entries, fn)
		}
	}
	counting := g.Reachable(entries, EdgeAll, func(n *Node) bool {
		return m.FuncIgnores(n.Decl, "statflow")
	})

	var findings []Finding
	for _, fn := range g.Funcs() {
		n := g.Node(fn)
		if m.FuncIgnores(n.Decl, "statflow") {
			continue
		}
		findings = append(findings, checkStatflowFunc(m, g, n, stats, counting)...)
	}
	return findings
}

// checkStatflowFunc applies the four rules to one declaration.
func checkStatflowFunc(m *Module, g *CallGraph, n *Node, stats map[*types.TypeName]bool, counting map[*types.Func]bool) []Finding {
	info := n.Pkg.Info
	isStats := func(t types.Type) bool { return isStatsPtr(stats, t) }
	params := paramObjects(info, n.Decl, isStats)
	var findings []Finding

	// Rule 3: declared-but-dead parity on a counting path. Named
	// parameters that are never read, plus blank or anonymous *Stats
	// parameters (which can never be read), in functions reachable
	// from an instrumented entry point.
	if counting[n.Fn] {
		for _, p := range params {
			if !usesObject(info, n.Decl.Body, p) {
				findings = append(findings, n.Pkg.finding("statflow", n.Decl.Name,
					"*Stats parameter %s is never used; counts on this path are invisible to callers", p.Name()))
			}
		}
		if n.Decl.Type.Params != nil {
			for _, field := range n.Decl.Type.Params.List {
				tv := info.TypeOf(field.Type)
				if tv == nil || !isStats(tv) {
					continue
				}
				if len(field.Names) == 0 {
					findings = append(findings, n.Pkg.finding("statflow", field,
						"anonymous *Stats parameter can never be used; counts on this path are invisible to callers"))
				}
				for _, name := range field.Names {
					if name.Name == "_" {
						findings = append(findings, n.Pkg.finding("statflow", name,
							"blank *Stats parameter discards counts on this path"))
					}
				}
			}
		}
	}

	// Rule 2: reassigning or shadowing a *Stats parameter.
	paramNames := map[string]bool{}
	for _, p := range params {
		paramNames[p.Name()] = true
	}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		assign, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if assign.Tok == token.DEFINE {
				if paramNames[id.Name] && info.Defs[id] != nil {
					findings = append(findings, n.Pkg.finding("statflow", id,
						"shadows the *Stats parameter %s; later counts go to the shadow and are dropped", id.Name))
				}
				continue
			}
			for _, p := range params {
				if info.Uses[id] == p {
					findings = append(findings, n.Pkg.finding("statflow", id,
						"reassigns the *Stats parameter %s; counts recorded so far stop flowing to the caller", id.Name))
				}
			}
		}
		return true
	})

	// Rules 1 and 4: call-site checks.
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 1: nil passed in a *Stats slot while a *Stats parameter
		// is in scope.
		if len(params) > 0 {
			if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
				for i, arg := range call.Args {
					if i >= sig.Params().Len() {
						break
					}
					if isStats(sig.Params().At(i).Type()) && isNilExpr(info, arg) {
						findings = append(findings, n.Pkg.finding("statflow", arg,
							"passes nil for the *Stats argument while %s is in scope; counters on this path are silently dropped", params[0].Name()))
					}
				}
			}
		}
		// Rule 4: cross-package call to an uninstrumented kernel.
		callee := staticCallee(info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg() == n.Pkg.Pkg {
			return true
		}
		cn := g.Node(callee)
		if cn == nil || cn.Pkg.Pkg.Name() != "intersect" || !callee.Exported() {
			return true
		}
		if isUninstrumentedKernel(callee, stats) {
			findings = append(findings, n.Pkg.finding("statflow", call,
				"calls uninstrumented intersect kernel %s (no *Stats parameter); intersections on this path are invisible to run accounting", callee.Name()))
		}
		return true
	})
	return findings
}

// isUninstrumentedKernel reports whether fn has the shape of a counting
// kernel — at least two parameters of one identical slice type and an
// integer first result — but no *Stats parameter to record into.
func isUninstrumentedKernel(fn *types.Func, stats map[*types.TypeName]bool) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	res, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	if !ok || res.Info()&types.IsInteger == 0 {
		return false
	}
	var sliceTypes []types.Type
	for i := 0; i < sig.Params().Len(); i++ {
		pt := sig.Params().At(i).Type()
		if isStatsPtr(stats, pt) {
			return false
		}
		if _, ok := pt.Underlying().(*types.Slice); ok {
			sliceTypes = append(sliceTypes, pt)
		}
	}
	for i := 0; i < len(sliceTypes); i++ {
		for j := i + 1; j < len(sliceTypes); j++ {
			if types.Identical(sliceTypes[i], sliceTypes[j]) {
				return true
			}
		}
	}
	return false
}
