// Package intersect (fixture) holds statflow-clean shapes: correctly
// threaded sinks, the sanctioned nil-probe pattern, and kernels whose
// signatures put them outside the counting contract.
package intersect

// Stats mirrors the real kernel counter block.
type Stats struct {
	Intersections uint64
	Elements      uint64
}

// Pair threads its sink into the helper chain.
func Pair(a, b []uint32, stats *Stats) int {
	return galloping(a, b, stats)
}

// galloping records through the threaded sink.
func galloping(a, b []uint32, stats *Stats) int {
	if stats != nil {
		stats.Intersections++
		stats.Elements += uint64(len(a) + len(b))
	}
	n := 0
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Probe has no sink in scope; passing nil is the documented
// uninstrumented-probe pattern and is not a finding.
func Probe(a, b []uint32) int {
	return Pair(a, b, nil)
}

// Contains is exported and stats-less but is not a counting kernel (one
// slice parameter, boolean result), so calling it stays clean.
func Contains(s []uint32, v uint32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
