// Package graph holds index-safety clean fixtures: widening
// conversions, visibly bounded index variables, constants, and 64-bit
// arithmetic must produce no findings.
package graph

// VertexID mirrors the engine's 32-bit vertex handle.
type VertexID uint32

// Widen moves a vertex id into 64-bit space; widening never loses bits.
func Widen(v VertexID) int64 {
	return int64(v)
}

// FillCounter converts a loop counter whose bound is visible in the for
// statement.
func FillCounter(out []VertexID, n int) {
	for i := 0; i < n; i++ {
		out[i] = VertexID(i)
	}
}

// RangeIndex converts range indices over a slice; the container bounds
// them.
func RangeIndex(adj []VertexID) []int64 {
	offs := make([]int64, len(adj))
	for i := range adj {
		offs[i] = int64(uint32(i)) + Widen(adj[i])
	}
	return offs
}

// Add64 keeps arithmetic in 64-bit space and converts only constants.
func Add64(a, b int64) int64 {
	const base = 16
	return a + b + int64(base)
}
