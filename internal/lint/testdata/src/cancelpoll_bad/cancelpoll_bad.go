// Package cp holds cancelpoll violation fixtures: data-dependent loops
// reachable from Count/Enumerate whose iteration paths can bypass the
// cancellation poll. The shapes mirror PR 4's tail-batch starvation
// bug, where the poll was keyed to a counter residue the batch
// increments stepped over.
package cp

// engine is a miniature of the real enumerator's polling state.
type engine struct {
	nodes    uint64
	deadline int64
	clock    func() int64
}

// checkDeadline is the polling primitive, matched by name like the
// real engine's.
func (e *engine) checkDeadline() bool {
	return e.clock() < e.deadline
}

// Count is an enumeration entry point whose inner loop polls only on a
// counter residue: a batch increment that steps over the residue
// starves cancellation for the rest of the input.
func Count(candidates []uint64) uint64 {
	e := &engine{clock: func() int64 { return 0 }, deadline: 1}
	return e.run(candidates)
}

func (e *engine) run(candidates []uint64) uint64 {
	for _, v := range candidates { // want cancelpoll
		if e.nodes&8191 == 0 {
			if !e.checkDeadline() {
				return e.nodes
			}
		}
		e.nodes += v
	}
	return e.nodes
}

// Enumerate rejects filtered roots before ever reaching the poll: the
// continue path completes iterations unpolled, so a filter rejecting
// everything never observes cancellation.
func Enumerate(roots []uint64, filter func(uint64) bool) uint64 {
	e := &engine{clock: func() int64 { return 0 }, deadline: 1}
	for _, r := range roots { // want cancelpoll
		if !filter(r) {
			continue
		}
		if !e.checkDeadline() {
			break
		}
		e.nodes += r
	}
	return e.nodes
}
