// Package hy holds hygiene-clean fixtures: documented exports and the
// sanctioned error-discard exemptions must produce no findings.
package hy

import (
	"fmt"
	"os"
	"strings"
)

// MaxDepth bounds recursion.
const MaxDepth = 8

// Config carries options.
type Config struct {
	N int
}

// Render exercises every exemption: fmt calls, infallible writers, and
// deferred calls whose sticky error is handled elsewhere.
func Render(c Config) (string, error) {
	var b strings.Builder
	b.WriteString("n=")
	fmt.Println(c.N)
	f, err := os.CreateTemp("", "hy")
	if err != nil {
		return "", err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "%d", c.N); err != nil {
		return "", err
	}
	return b.String(), nil
}
