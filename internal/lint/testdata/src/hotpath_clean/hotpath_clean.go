// Package hp holds hotpath-clean fixtures: annotated code following the
// allocation-free discipline must produce no findings.
package hp

// Kernel holds preallocated buffers.
type Kernel struct {
	buf     []uint32
	scratch []uint32
	hook    func(int) int
}

// result is a plain value struct; value literals of it do not allocate.
type result struct {
	count int
	last  uint32
}

// Setup allocates the buffers up front; it is not annotated and is not
// called from hot code.
func Setup(n int) *Kernel {
	return &Kernel{buf: make([]uint32, n), scratch: make([]uint32, n)}
}

// Run is the annotated hot entry point: appends reuse preallocated
// capacity, literals are plain values, and the hook call is dynamic (so
// coldMake is not pulled into the hot set).
//
//light:hotpath
func Run(k *Kernel, xs []uint32) result {
	out := k.buf[:0]
	for _, x := range xs {
		if x%2 == 0 {
			out = append(out, x)
		}
	}
	r := result{count: len(out)}
	if len(out) > 0 {
		r.last = out[len(out)-1]
	}
	if k.hook != nil {
		r.count = k.hook(r.count)
	}
	coldRefill(k)
	return r
}

// coldRefill is acknowledged-cold: the directive stops hotpath
// propagation into it, mirroring setup work behind a rare branch.
//
//lightvet:ignore hotpath -- rare refill path, measured off the hot loop
func coldRefill(k *Kernel) {
	if cap(k.scratch) == 0 {
		k.scratch = make([]uint32, 64)
	}
}
