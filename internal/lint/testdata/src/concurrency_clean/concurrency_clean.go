// Package cc holds concurrency-clean fixtures: disciplined use of the
// same primitives must produce no findings.
package cc

import (
	"sync"
	"sync/atomic"

	"fixture/supervise"
)

// Pool carries scheduler state behind a pointer everywhere.
type Pool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count atomic.Uint64
	queue []int
}

// NewPool wires the condition to its mutex.
func NewPool() *Pool {
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Bump uses the typed atomic; there is no plain access to count.
func (p *Pool) Bump() { p.count.Add(1) }

// Push publishes work under the lock and wakes a waiter while holding it.
func (p *Pool) Push(v int) {
	p.mu.Lock()
	p.queue = append(p.queue, v)
	p.cond.Signal()
	p.mu.Unlock()
}

// Pop blocks until work arrives; Cond.Wait holds the lock on return.
func (p *Pool) Pop() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 {
		p.cond.Wait()
	}
	v := p.queue[0]
	p.queue = p.queue[1:]
	return v
}

// RunWorkers launches goroutines with a WaitGroup to join them.
func RunWorkers(p *Pool, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Bump()
		}()
	}
	wg.Wait()
}

// Stream launches a producer goroutine supervised by a channel.
func Stream(n int) <-chan int {
	out := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			out <- i
		}
		close(out)
	}()
	return out
}

// RunSupervised launches a worker through the supervised launcher. The
// launcher registers the goroutine with the caller's WaitGroup itself,
// so the raw sibling goroutine in the same scope counts as coordinated.
func RunSupervised(p *Pool, wg *sync.WaitGroup) {
	supervise.Go(wg, "worker", func(error) {}, func() { p.Bump() })
	go p.Bump()
}

// Monitor wraps a supervised fan-out inside its own goroutine; the
// supervise.Go call in the body is its coordination evidence.
func Monitor(p *Pool, wg *sync.WaitGroup) {
	go func() {
		supervise.Go(wg, "inner", func(error) {}, func() { p.Bump() })
	}()
}
