// Package cg exercises the call-graph builder: static calls, method
// values, function references, conservative interface dispatch, and
// direct and mutual recursion. The callgraph tests assert exact edges
// over this package; it must stay finding-free for every analyzer.
package cg

// Shape is the dispatch interface.
type Shape interface {
	// Area reports the shape's area.
	Area() int
}

// Square implements Shape by value.
type Square struct {
	// N is the side length.
	N int
}

// Area returns N squared.
func (s Square) Area() int { return s.N * s.N }

// Disc implements Shape by value.
type Disc struct {
	// R is the radius.
	R int
}

// Area returns a rough disc area.
func (d Disc) Area() int { return 3 * d.R * d.R }

// Total sums areas through the interface: the builder must emit
// conservative dispatch candidates to every implementing module
// method.
func Total(shapes []Shape) int {
	n := 0
	for _, s := range shapes {
		n += s.Area()
	}
	return n
}

// Pick returns a bound method value without calling it.
func Pick(s Square) func() int {
	return s.Area
}

// Apply invokes a function value (dynamic: no edge to double from
// here).
func Apply(f func(int) int, v int) int {
	return f(v)
}

// Use passes a top-level function reference into Apply.
func Use(v int) int {
	return Apply(double, v)
}

func double(v int) int { return v + v }

// Fact is directly recursive.
func Fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * Fact(n-1)
}

// IsEven is mutually recursive with isOdd.
func IsEven(n int) bool {
	if n == 0 {
		return true
	}
	return isOdd(n - 1)
}

func isOdd(n int) bool {
	if n == 0 {
		return false
	}
	return IsEven(n - 1)
}
