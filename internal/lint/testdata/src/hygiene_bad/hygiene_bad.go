// Package hy holds hygiene violation fixtures.
package hy

import "os"

// fail is an unexported helper returning an error.
func fail() error { return nil }

func Exported() {} // want hygiene

type Config struct{ N int } // want hygiene

var MaxDepth = // want hygiene
	8

// Run discards error returns in expression statements.
func Run() {
	fail()         // want hygiene
	os.Remove("x") // want hygiene
}
