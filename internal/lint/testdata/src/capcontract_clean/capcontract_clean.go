// Package cc holds capcontract-clean shapes: each sanctioned way of
// writing into a caller-supplied slice.
package cc

// Guarded checks the capacity contract explicitly before extending and
// copying — the real copySingle discipline.
func Guarded(dst, s []uint32) int {
	if cap(dst) < len(s) {
		panic("cc: dst capacity too small")
	}
	dst = dst[:cap(dst)]
	return copy(dst, s)
}

// Annotated documents the panic-on-under-capacity contract instead of
// branching; the annotation accepts the obligation.
//
//light:cap-contract
func Annotated(dst, s []uint32) int {
	dst = dst[:cap(dst)]
	return copy(dst, s)
}

// EqualBounds copies between reslices with identical bounds, which
// cannot truncate.
func EqualBounds(dst, src []uint32, n int) {
	copy(dst[:n], src[:n])
}

// Local only reslices a locally allocated buffer; the caller's slices
// are untouched.
func Local(n int) []uint32 {
	buf := make([]uint32, 0, n)
	buf = buf[:cap(buf)]
	return buf
}
