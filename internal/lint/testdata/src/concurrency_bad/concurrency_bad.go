// Package cc holds concurrency violation fixtures.
package cc

import (
	"sync"
	"sync/atomic"
)

// Pool carries scheduler state.
type Pool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count uint64
	queue []int
}

// TakeByValue copies the embedded mutex.
func TakeByValue(p Pool) int { // want concurrency
	return int(p.count) // want concurrency
}

// CopyAssign copies a lock-bearing value into a local.
func CopyAssign(p *Pool) int {
	local := *p // want concurrency
	return len(local.queue)
}

// RangeCopy iterates lock-bearing values by value.
func RangeCopy(ps []Pool) int {
	n := 0
	for _, p := range ps { // want concurrency
		n += int(p.count) // want concurrency
	}
	return n
}

// BumpAtomic updates count through sync/atomic.
func BumpAtomic(p *Pool) {
	atomic.AddUint64(&p.count, 1)
}

// ReadPlain reads the same field without atomic — a data race.
func ReadPlain(p *Pool) uint64 {
	return p.count // want concurrency
}

// WakeWithoutLock signals the condition with no lock in scope.
func WakeWithoutLock(p *Pool) {
	p.cond.Broadcast() // want concurrency
}

// FireAndForget launches an unsupervised goroutine.
func FireAndForget(p *Pool) {
	go BumpAtomic(p) // want concurrency
}
