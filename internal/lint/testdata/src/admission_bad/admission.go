// Package adm holds admission-themed cancelpoll violations: slot-wait
// loops reachable from the enumeration entry points whose cancellation
// poll is keyed to a counter residue or skipped by a fast-path
// continue, so a query waiting for admission can outlive its context.
package adm

import "context"

// governor is a miniature of the admission governor's slot state.
type governor struct {
	free    int
	waiters int
}

// tryGrant models the opportunistic fast-path grant.
func (g *governor) tryGrant() bool {
	if g.free > 0 && g.waiters == 0 {
		g.free--
		return true
	}
	return false
}

// Count models admission as a spin-wait that polls its context only on
// a residue of the spin counter: a grant race that bumps the counter
// past the residue starves cancellation until the slot frees.
func Count(ctx context.Context, g *governor, spins []int) int {
	waited := 0
	for range spins { // want cancelpoll
		if waited&1023 == 0 {
			if ctx.Err() != nil {
				return -1
			}
		}
		if g.tryGrant() {
			break
		}
		waited += 2
	}
	return waited
}

// Enumerate models the shed path: iterations that return a surplus
// slot continue before ever reaching the poll, so a run that sheds on
// every pass never observes cancellation.
func Enumerate(ctx context.Context, g *governor, frames []int) int {
	done := 0
	for _, f := range frames { // want cancelpoll
		if g.waiters > 0 && g.free == 0 {
			g.waiters--
			continue
		}
		if ctx.Err() != nil {
			return done
		}
		done += f
	}
	return done
}
