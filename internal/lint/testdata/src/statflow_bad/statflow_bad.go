// Package intersect (fixture) holds statflow violation fixtures: every
// way of dropping the *Stats counter sink on a counting path. The
// package is named intersect because statflow scopes its Stats type
// discovery to intersect-named packages, mirroring the real kernels.
package intersect

// Stats mirrors the real kernel counter block.
type Stats struct {
	Intersections uint64
	Elements      uint64
}

// Pair is an instrumented entry point; it delegates to helpers that
// mishandle the sink in the ways statflow flags.
func Pair(a, b []uint32, stats *Stats) int {
	n := dropped(a, b, stats)
	n += shadowed(a, b, stats)
	n += reassigned(a, b, stats)
	n += nilPassed(a, b, stats)
	return n
}

// dropped declares parity but never records: rule 3.
func dropped(a, b []uint32, stats *Stats) int { // want statflow
	return len(a) + len(b)
}

// shadowed re-declares stats in a nested block, sending the counts
// recorded there to the shadow instead of the caller's sink.
func shadowed(a, b []uint32, stats *Stats) int {
	if stats != nil {
		stats := &Stats{} // want statflow
		stats.Elements++
	}
	return len(a) + len(b)
}

// reassigned overwrites the caller's sink mid-function.
func reassigned(a, b []uint32, stats *Stats) int {
	if stats != nil {
		stats.Intersections++
	}
	stats = nil // want statflow
	_ = stats
	return len(a) + len(b)
}

// nilPassed has a live sink in scope and drops it at the call site.
func nilPassed(a, b []uint32, stats *Stats) int {
	if stats != nil {
		stats.Intersections++
	}
	return counted(a, b, nil) // want statflow
}

// counted is a correctly instrumented helper.
func counted(a, b []uint32, stats *Stats) int {
	if stats != nil {
		stats.Intersections++
	}
	return len(a) + len(b)
}

// Count is the pre-instrumentation kernel shape from PR 5's bug: an
// exported, count-returning kernel with no *Stats parameter at all.
// The finding lands on cross-package call sites (see statflow_caller).
func Count(a, b []uint32, delta int) int {
	n := 0
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i += delta
		default:
			j += delta
		}
	}
	return n
}
