// Command hygmain exercises the command-main buffered-writer rule:
// fmt.Fprint* into a *bufio.Writer loses write errors unless either
// the call's error or the final Flush error is checked.
package main

import (
	"bufio"
	"fmt"
	"os"
)

func main() {
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "n=%d\n", 1) // want hygiene
	w.Flush()                   // want hygiene
}
