// Package cp holds cancelpoll-clean shapes: polls hoisted so every
// iteration path reaches one, plus each of the analyzer's deliberate
// scope exclusions (constant-bounded loops, pure kernels that cannot
// poll, loops unreachable from the entry points, and select-based
// polling).
package cp

import "context"

// engine is a miniature of the real enumerator's polling state.
type engine struct {
	nodes    uint64
	deadline int64
	clock    func() int64
}

// checkDeadline is the polling primitive, matched by name like the
// real engine's.
func (e *engine) checkDeadline() bool {
	return e.clock() < e.deadline
}

// Count polls at the top of the loop body, so the filter-reject
// continue and the fall-through both pass the poll; the second loop is
// a pure kernel that cannot reach a poll and is out of scope.
func Count(candidates []uint64, filter func(uint64) bool) uint64 {
	e := &engine{clock: func() int64 { return 0 }, deadline: 1}
	for _, v := range candidates {
		if !e.checkDeadline() {
			break
		}
		if !filter(v) {
			continue
		}
		e.nodes += v
	}
	var sum uint64
	for _, v := range candidates {
		sum += v
	}
	return e.nodes + sum
}

// CountContext polls through the context instead of an engine
// deadline.
func CountContext(ctx context.Context, items []int) int {
	n := 0
	for _, v := range items {
		if ctx.Err() != nil {
			return n
		}
		n += v
	}
	return n
}

// Enumerate shows the constant-bound exclusion: the unwind loop may
// poll conditionally because its trip count — and therefore the
// cancellation latency — is a compile-time constant.
func Enumerate(e *engine) uint64 {
	for i := 0; i < 64; i++ {
		if i == 32 && !e.checkDeadline() {
			break
		}
		e.nodes++
	}
	return e.nodes
}

// EnumerateContext polls through a select; every path through the
// select evaluates ctx.Done(), including the default clause.
func EnumerateContext(ctx context.Context, items []int) int {
	n := 0
	for _, v := range items {
		select {
		case <-ctx.Done():
			return n
		default:
		}
		n += v
	}
	return n
}

// prepare is not reachable from any entry point, so its
// conditionally-polling loop is outside the contract.
func prepare(e *engine, xs []int) {
	for _, x := range xs {
		if x > 0 {
			continue
		}
		if !e.checkDeadline() {
			return
		}
	}
}

var _ = prepare
