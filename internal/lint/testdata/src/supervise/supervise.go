// Package supervise is a fixture stub of the project's supervision
// helpers, just enough surface for the concurrency analyzer to resolve
// supervise.Go calls.
package supervise

import "sync"

// Go mimics the real launcher's signature: it registers fn with wg and
// recovers panics into onErr.
func Go(wg *sync.WaitGroup, where string, onErr func(error), fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
	_ = where
	_ = onErr
}
