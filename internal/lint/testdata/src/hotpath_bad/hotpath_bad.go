// Package hp holds hotpath violation fixtures: every construct the
// analyzer must flag inside annotated (or reachable) functions.
package hp

import "fmt"

// state is a helper carrying buffers.
type state struct {
	buf []uint32
	out []uint32
}

// Root is the annotated entry point.
//
//light:hotpath
func Root(s *state, n int) int {
	tmp := make([]uint32, n) // want hotpath
	s.out = append(s.out, 1) // want hotpath
	total := 0
	for _, v := range tmp {
		total += int(v)
	}
	fmt.Println(total) // want hotpath
	f := func() int { return total } // want hotpath
	helper(s)
	return f()
}

// helper is reached from Root, so it inherits the obligation.
func helper(s *state) {
	var sink interface{} = s.buf // box assignment is not flagged; calls are
	_ = sink
	box(s.buf) // want hotpath
	s.buf = new([8]uint32)[:] // want hotpath
}

// box takes an interface parameter.
func box(v interface{}) { _ = v }
