// Package graph holds index-safety violation fixtures; the analyzer is
// scoped to packages named graph, mirroring the real CSR package.
package graph

// VertexID mirrors the engine's 32-bit vertex handle.
type VertexID uint32

// Truncate narrows a 64-bit adjacency offset into an int32 index.
func Truncate(off int64) int32 {
	return int32(off) // want indexsafety
}

// ToVertex narrows an arbitrary int into a vertex id with no bound in
// sight.
func ToVertex(v int) VertexID {
	return VertexID(v) // want indexsafety
}

// SumIDs adds vertex ids in 32-bit space, where the sum can wrap.
func SumIDs(a, b VertexID) VertexID {
	return a + b // want indexsafety
}

// Scale shifts in 32-bit space.
func Scale(a uint32, k uint) uint32 {
	return a << k // want indexsafety
}

// FromUnsigned narrows uint64 into int.
func FromUnsigned(x uint64) int {
	return int(x) // want indexsafety
}
