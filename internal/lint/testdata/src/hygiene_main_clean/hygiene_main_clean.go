// Command hygmain shows the sanctioned command-main output forms:
// checked buffered writes, direct writes to the standard streams, and
// interface-typed writers whose concrete sink is the caller's concern.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

func main() {
	w := bufio.NewWriter(os.Stdout)
	if _, err := fmt.Fprintf(w, "n=%d\n", 1); err != nil {
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "done")
	emit(os.Stdout, 2)
}

// emit writes through an interface; the fmt exemption applies because
// the concrete sink is unknown here.
func emit(out io.Writer, n int) {
	fmt.Fprintln(out, n)
}
