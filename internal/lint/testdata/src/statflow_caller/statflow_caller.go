// Package caller exercises statflow's cross-package rule: calling an
// exported, count-returning intersect kernel that has no *Stats
// parameter makes the intersections on that path invisible to run
// accounting — the exact pre-fix shape of the PR 5 counter bug.
package caller

import isect "fixture/statflow_bad"

// Triangles counts through the uninstrumented kernel.
func Triangles(a, b []uint32) int {
	return isect.Count(a, b, 1) // want statflow
}

// Probe calls a properly instrumented kernel with a nil sink from a
// function with no sink in scope: the sanctioned uninstrumented-probe
// pattern, not a finding.
func Probe(a, b []uint32) int {
	return isect.Pair(a, b, nil)
}
