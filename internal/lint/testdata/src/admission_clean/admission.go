// Package adm holds admission-themed cancelpoll-clean shapes: the
// slot-wait loops from admission_bad with their polls hoisted so every
// iteration path — fast-path grant, shed continue, and fall-through —
// passes a cancellation check first.
package adm

import "context"

// governor is a miniature of the admission governor's slot state.
type governor struct {
	free    int
	waiters int
}

// tryGrant models the opportunistic fast-path grant.
func (g *governor) tryGrant() bool {
	if g.free > 0 && g.waiters == 0 {
		g.free--
		return true
	}
	return false
}

// Count polls unconditionally at the top of the spin, so no grant race
// or residue arithmetic can step past the check.
func Count(ctx context.Context, g *governor, spins []int) int {
	waited := 0
	for range spins {
		if ctx.Err() != nil {
			return -1
		}
		if g.tryGrant() {
			break
		}
		waited += 2
	}
	return waited
}

// EnumerateContext waits on the real primitive shape: a select whose
// every path evaluates ctx.Done(), including the default clause the
// shed fast path takes.
func EnumerateContext(ctx context.Context, g *governor, frames []int) int {
	done := 0
	for _, f := range frames {
		select {
		case <-ctx.Done():
			return done
		default:
		}
		if g.waiters > 0 && g.free == 0 {
			g.waiters--
			continue
		}
		done += f
	}
	return done
}
