// Package cc holds capcontract violation fixtures: unguarded writes
// into caller-supplied slices. Single is the pre-fix MultiWay shape
// from PR 5, whose copy silently truncated when the destination was
// shorter than the source.
package cc

// Single intersects a single set into dst — and truncates silently
// when cap is short, because nothing checks or documents the contract.
func Single(dst, s []uint32) int {
	return copy(dst, s) // want capcontract
}

// Extend exposes the destination's spare capacity to writes without a
// guard.
func Extend(dst []uint32) []uint32 {
	dst = dst[:cap(dst)] // want capcontract
	for i := range dst {
		dst[i] = 0
	}
	return dst
}
