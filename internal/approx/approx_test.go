package approx

import (
	"math"
	"testing"

	"light/internal/engine"
	"light/internal/estimate"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

func exact(t *testing.T, g *graph.Graph, p *pattern.Pattern) float64 {
	t.Helper()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Choose(p, po, estimate.Collect(g), plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.New(g, pl, engine.Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return float64(res.Matches)
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestTriangleOnComplete(t *testing.T) {
	g := gen.Complete(12)
	p := pattern.Triangle()
	want := exact(t, g, p) // C(12,3) = 220
	res, err := Count(g, p, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.Estimate, want); e > 0.1 {
		t.Fatalf("estimate %.1f vs exact %.0f (err %.1f%%)", res.Estimate, want, 100*e)
	}
	if res.Hits == 0 || res.Samples != 20000 {
		t.Fatalf("bad metadata: %+v", res)
	}
}

func TestTrianglesOnER(t *testing.T) {
	g := gen.ErdosRenyi(300, 3000, 7)
	p := pattern.Triangle()
	want := exact(t, g, p)
	res, err := Count(g, p, 100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.Estimate, want); e > 0.25 {
		t.Fatalf("estimate %.1f vs exact %.0f (err %.1f%%)", res.Estimate, want, 100*e)
	}
}

func TestSquaresOnBA(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 3)
	p := pattern.P1()
	want := exact(t, g, p)
	res, err := Count(g, p, 200000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.Estimate, want); e > 0.3 {
		t.Fatalf("estimate %.1f vs exact %.0f (err %.1f%%)", res.Estimate, want, 100*e)
	}
}

func TestZeroMatches(t *testing.T) {
	// A grid has no triangles: the estimator must return exactly 0.
	g := gen.Grid(10, 10)
	p := pattern.Triangle()
	res, err := Count(g, p, 5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 || res.Hits != 0 {
		t.Fatalf("grid triangles estimated %v (hits %d), want 0", res.Estimate, res.Hits)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 5)
	p := pattern.P2()
	a, err := Count(g, p, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Count(g, p, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate || a.Hits != b.Hits {
		t.Fatalf("not deterministic: %+v vs %+v", a, b)
	}
}

func TestConvergence(t *testing.T) {
	// More samples → error shrinks (on average; checked on fixed seeds
	// with a generous margin).
	g := gen.ErdosRenyi(200, 1600, 9)
	p := pattern.Triangle()
	want := exact(t, g, p)
	small, _ := Count(g, p, 500, 10)
	large, _ := Count(g, p, 200000, 10)
	if relErr(large.Estimate, want) > 0.2 {
		t.Fatalf("large-sample estimate off by %.1f%%", 100*relErr(large.Estimate, want))
	}
	_ = small // small-sample runs are allowed to be wild; only recorded
}

func TestCountWithPlanCustomOrder(t *testing.T) {
	g := gen.Complete(10)
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, []pattern.Vertex{0, 2, 1, 3}, plan.ModeSE)
	if err != nil {
		t.Fatal(err)
	}
	want := exact(t, g, p)
	res := CountWithPlan(g, pl, 30000, 6)
	if e := relErr(res.Estimate, want); e > 0.15 {
		t.Fatalf("estimate %.1f vs exact %.0f (err %.1f%%)", res.Estimate, want, 100*e)
	}
}
