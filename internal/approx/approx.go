// Package approx estimates subgraph counts by random path sampling — the
// approximation branch of the literature the paper's related work
// surveys ([15] and the triangle-sampling line [18]). Exact enumeration
// visits every match; sampling instead draws random root-to-leaf probes
// down the same search tree the exact engine explores and reweights them
// Horvitz–Thompson style, trading exactness for time independent of the
// match count.
//
// A probe follows the SE order: pick a uniform random root, then at each
// step compute the candidate set (with the same backward-neighbor
// intersection the engine uses), restrict it to candidates respecting
// injectivity and the symmetry-breaking partial order, and descend into
// one uniform choice. A completed probe contributes the product of its
// choice-set sizes; a dead end contributes zero. The estimator is
// unbiased: a match reached through its unique root-to-leaf path has
// inverse probability equal to exactly that product.
package approx

import (
	"math/rand"

	"light/internal/estimate"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/pattern"
	"light/internal/plan"
)

// Result reports an estimation run.
type Result struct {
	// Estimate is the estimated number of matches.
	Estimate float64
	// Samples is the number of probes drawn.
	Samples int
	// Hits is how many probes reached a full match (a coverage
	// indicator: estimates with very few hits have high variance).
	Hits int
}

// Count estimates the number of subgraphs of g isomorphic to p from the
// given number of random probes. Deterministic for a seed.
func Count(g *graph.Graph, p *pattern.Pattern, samples int, seed int64) (Result, error) {
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Choose(p, po, estimate.Collect(g), plan.ModeSE)
	if err != nil {
		return Result{}, err
	}
	return CountWithPlan(g, pl, samples, seed), nil
}

// CountWithPlan is Count with a caller-supplied plan (any mode; only the
// order π and partial order are used — probes always materialize
// step-by-step).
func CountWithPlan(g *graph.Graph, pl *plan.Plan, samples int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	s := newSampler(g, pl)
	var total float64
	hits := 0
	for i := 0; i < samples; i++ {
		w := s.probe(rng)
		if w > 0 {
			hits++
			total += w
		}
	}
	return Result{Estimate: total / float64(samples), Samples: samples, Hits: hits}
}

type sampler struct {
	g  *graph.Graph
	pl *plan.Plan

	assigned []graph.VertexID
	buf      []graph.VertexID
	scratch  []graph.VertexID
	eligible []graph.VertexID
	sets     [][]graph.VertexID
}

func newSampler(g *graph.Graph, pl *plan.Plan) *sampler {
	dmax := g.MaxDegree()
	return &sampler{
		g:        g,
		pl:       pl,
		assigned: make([]graph.VertexID, pl.Pattern.NumVertices()),
		buf:      make([]graph.VertexID, dmax),
		scratch:  make([]graph.VertexID, dmax),
		eligible: make([]graph.VertexID, 0, dmax),
		sets:     make([][]graph.VertexID, 0, pl.Pattern.NumVertices()),
	}
}

// probe draws one weighted sample. Returns 0 on a dead end.
func (s *sampler) probe(rng *rand.Rand) float64 {
	pi := s.pl.Pi
	n := len(pi)
	weight := float64(s.g.NumVertices())
	s.assigned[pi[0]] = graph.VertexID(rng.Intn(s.g.NumVertices()))

	for pos := 1; pos < n; pos++ {
		u := pi[pos]
		// Candidate set: intersect the backward neighbors' adjacency
		// lists (SE semantics — all of N+(u), K1-style).
		s.sets = s.sets[:0]
		for _, w := range pi[:pos] {
			if s.pl.Pattern.HasEdge(u, w) {
				s.sets = append(s.sets, s.g.Neighbors(s.assigned[w]))
			}
		}
		cnt := intersect.MultiWay(s.buf, s.scratch, s.sets, intersect.KindHybrid, intersect.DefaultDelta, nil)
		// Restrict to eligible candidates: injective and respecting the
		// partial order against already-assigned vertices.
		s.eligible = s.eligible[:0]
		for _, v := range s.buf[:cnt] {
			if s.ok(u, v, pi[:pos]) {
				s.eligible = append(s.eligible, v)
			}
		}
		if len(s.eligible) == 0 {
			return 0
		}
		weight *= float64(len(s.eligible))
		s.assigned[u] = s.eligible[rng.Intn(len(s.eligible))]
	}
	return weight
}

// ok checks injectivity and the symmetry-breaking constraints of u
// against the assigned prefix.
func (s *sampler) ok(u pattern.Vertex, v graph.VertexID, prefix []pattern.Vertex) bool {
	for _, w := range prefix {
		av := s.assigned[w]
		if av == v {
			return false
		}
		if s.pl.PO.Less[w]&(1<<uint(u)) != 0 && av >= v {
			return false
		}
		if s.pl.PO.Less[u]&(1<<uint(w)) != 0 && v >= av {
			return false
		}
	}
	return true
}
