package pattern

import (
	"fmt"
	"sort"
)

// The evaluation pattern catalog (the paper's Figure 3 analog; see
// DESIGN.md §4): seven patterns with n ∈ [4,6] and m ∈ [4,10], plus the
// small classics used in tests and examples.

// Triangle is K3.
func Triangle() *Pattern {
	return MustNew("triangle", 3, [][2]Vertex{{0, 1}, {1, 2}, {0, 2}})
}

// Path returns the simple path on k vertices.
func Path(k int) *Pattern {
	edges := make([][2]Vertex, 0, k-1)
	for i := 0; i+1 < k; i++ {
		edges = append(edges, [2]Vertex{i, i + 1})
	}
	return MustNew(fmt.Sprintf("path%d", k), k, edges)
}

// Cycle returns the cycle on k vertices.
func Cycle(k int) *Pattern {
	edges := make([][2]Vertex, 0, k)
	for i := 0; i < k; i++ {
		edges = append(edges, [2]Vertex{i, (i + 1) % k})
	}
	return MustNew(fmt.Sprintf("cycle%d", k), k, edges)
}

// Clique returns K_k.
func Clique(k int) *Pattern {
	var edges [][2]Vertex
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]Vertex{i, j})
		}
	}
	return MustNew(fmt.Sprintf("clique%d", k), k, edges)
}

// StarPattern returns K_{1,k}: vertex 0 adjacent to k leaves.
func StarPattern(k int) *Pattern {
	edges := make([][2]Vertex, 0, k)
	for i := 1; i <= k; i++ {
		edges = append(edges, [2]Vertex{0, i})
	}
	return MustNew(fmt.Sprintf("star%d", k), k+1, edges)
}

// P1 is the square: the 4-cycle u0-u1-u2-u3. n=4 m=4.
func P1() *Pattern {
	return MustNew("P1-square", 4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
}

// P2 is the chordal square of the paper's running example (Fig 1a): the
// 4-cycle plus chord u0-u2. n=4 m=5.
func P2() *Pattern {
	return MustNew("P2-chordalsquare", 4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
}

// P3 is the 4-clique. n=4 m=6.
func P3() *Pattern { p := Clique(4); p.name = "P3-4clique"; return p }

// P4 is the house: the square u0-u1-u2-u3 with an apex u4 adjacent to u0
// and u1. n=5 m=6.
func P4() *Pattern {
	return MustNew("P4-house", 5, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}})
}

// P5 is the double square (ladder): squares u0-u1-u3-u2 and u2-u3-u5-u4
// sharing edge u2-u3. n=6 m=7. P5 has the most vertices in the catalog,
// matching the paper's Table V note.
func P5() *Pattern {
	return MustNew("P5-doublesquare", 6, [][2]Vertex{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 5}, {4, 5},
	})
}

// P6 is the near-5-clique: K5 minus edges u0-u3 and u1-u4. n=5 m=8.
func P6() *Pattern {
	return MustNew("P6-near5clique", 5, [][2]Vertex{
		{0, 1}, {0, 2}, {0, 4}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4},
	})
}

// P7 is the 5-clique. n=5 m=10.
func P7() *Pattern { p := Clique(5); p.name = "P7-5clique"; return p }

// Catalog returns P1–P7 in order.
func Catalog() []*Pattern {
	return []*Pattern{P1(), P2(), P3(), P4(), P5(), P6(), P7()}
}

// ByName returns a catalog or classic pattern by name: "P1".."P7",
// "triangle", "square", "cycleK", "pathK", "cliqueK", "starK" (K a small
// integer, e.g. "clique4").
func ByName(name string) (*Pattern, error) {
	switch name {
	case "P1":
		return P1(), nil
	case "P2":
		return P2(), nil
	case "P3":
		return P3(), nil
	case "P4":
		return P4(), nil
	case "P5":
		return P5(), nil
	case "P6":
		return P6(), nil
	case "P7":
		return P7(), nil
	case "triangle":
		return Triangle(), nil
	case "square":
		return P1(), nil
	}
	var k int
	for _, pref := range []string{"cycle", "path", "clique", "star"} {
		minK := 3
		if pref == "path" {
			minK = 2 // path2 is the single-edge pattern
		}
		if _, err := fmt.Sscanf(name, pref+"%d", &k); err == nil && k >= minK && k <= MaxVertices-1 {
			switch pref {
			case "cycle":
				return Cycle(k), nil
			case "path":
				return Path(k), nil
			case "clique":
				return Clique(k), nil
			case "star":
				return StarPattern(k), nil
			}
		}
	}
	names := []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "triangle", "square", "cycleK", "pathK", "cliqueK", "starK"}
	sort.Strings(names)
	return nil, fmt.Errorf("pattern: unknown pattern %q (have %v)", name, names)
}
