// Package pattern represents pattern (query) graphs and the
// pattern-side machinery of the paper: automorphism enumeration,
// Grochow–Kellis symmetry-breaking partial orders (Section II-A), and
// vertex-induced subgraphs. Pattern graphs are tiny (the paper assumes
// |V(P)| is a constant, ≤ ~8 here), so bitmask adjacency and brute-force
// permutation search are appropriate.
package pattern

import (
	"fmt"
	"strings"
)

// MaxVertices bounds pattern size; bitmask representations rely on it.
const MaxVertices = 16

// Vertex identifies a pattern vertex (u_i in the paper).
type Vertex = int

// Pattern is a small undirected, unlabeled, connected graph. Immutable
// after construction.
type Pattern struct {
	name string
	n    int
	adj  [MaxVertices]uint32 // adjacency bitmasks
	m    int
}

// New builds a pattern over n vertices from an edge list. Vertices are
// 0..n-1. Duplicate edges are tolerated; self-loops are an error.
func New(name string, n int, edges [][2]Vertex) (*Pattern, error) {
	if n < 1 || n > MaxVertices {
		return nil, fmt.Errorf("pattern: vertex count %d out of range [1,%d]", n, MaxVertices)
	}
	p := &Pattern{name: name, n: n}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("pattern %s: edge (%d,%d) out of range", name, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("pattern %s: self-loop at %d", name, u)
		}
		if p.adj[u]&(1<<uint(v)) == 0 {
			p.adj[u] |= 1 << uint(v)
			p.adj[v] |= 1 << uint(u)
			p.m++
		}
	}
	return p, nil
}

// MustNew is New for static pattern definitions; it panics on error.
func MustNew(name string, n int, edges [][2]Vertex) *Pattern {
	p, err := New(name, n, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the pattern's name.
func (p *Pattern) Name() string { return p.name }

// NumVertices returns n = |V(P)|.
func (p *Pattern) NumVertices() int { return p.n }

// NumEdges returns m = |E(P)|.
func (p *Pattern) NumEdges() int { return p.m }

// HasEdge reports whether (u, v) ∈ E(P).
func (p *Pattern) HasEdge(u, v Vertex) bool { return p.adj[u]&(1<<uint(v)) != 0 }

// Degree returns d(u).
func (p *Pattern) Degree(u Vertex) int { return popcount(p.adj[u]) }

// NeighborMask returns the adjacency bitmask of u.
func (p *Pattern) NeighborMask(u Vertex) uint32 { return p.adj[u] }

// Neighbors returns N(u) in ascending order.
func (p *Pattern) Neighbors(u Vertex) []Vertex { return maskToSlice(p.adj[u]) }

// Edges returns each undirected edge once, with u < v, in lexicographic
// order.
func (p *Pattern) Edges() [][2]Vertex {
	out := make([][2]Vertex, 0, p.m)
	for u := 0; u < p.n; u++ {
		for v := u + 1; v < p.n; v++ {
			if p.HasEdge(u, v) {
				out = append(out, [2]Vertex{u, v})
			}
		}
	}
	return out
}

// IsConnected reports whether P is connected (assumption 1 in II-A).
func (p *Pattern) IsConnected() bool {
	if p.n == 0 {
		return true
	}
	return p.connectedMask(uint32(1<<uint(p.n))-1, 0)
}

// connectedMask reports whether the vertex-induced subgraph on mask is
// connected, starting the walk from vertex start (which must be in mask).
func (p *Pattern) connectedMask(mask uint32, start Vertex) bool {
	visited := uint32(1 << uint(start))
	frontier := visited
	for frontier != 0 {
		next := uint32(0)
		for f := frontier; f != 0; f &= f - 1 {
			u := trailingZeros(f)
			next |= p.adj[u] & mask
		}
		frontier = next &^ visited
		visited |= frontier
	}
	return visited == mask
}

// InducedConnected reports whether P[mask], the vertex-induced subgraph on
// the vertices in mask, is connected. An empty mask is connected.
func (p *Pattern) InducedConnected(mask uint32) bool {
	if mask == 0 {
		return true
	}
	return p.connectedMask(mask, trailingZeros(mask))
}

// InducedEdges returns the edges of the vertex-induced subgraph P[mask].
func (p *Pattern) InducedEdges(mask uint32) [][2]Vertex {
	var out [][2]Vertex
	for u := 0; u < p.n; u++ {
		if mask&(1<<uint(u)) == 0 {
			continue
		}
		for v := u + 1; v < p.n; v++ {
			if mask&(1<<uint(v)) != 0 && p.HasEdge(u, v) {
				out = append(out, [2]Vertex{u, v})
			}
		}
	}
	return out
}

// Induced returns P[keep] as a new Pattern, relabeling the kept vertices
// 0..k-1 in ascending original order, along with the relabeling map
// (old → new; -1 for dropped vertices).
func (p *Pattern) Induced(mask uint32) (*Pattern, []Vertex) {
	remap := make([]Vertex, p.n)
	k := 0
	for u := 0; u < p.n; u++ {
		if mask&(1<<uint(u)) != 0 {
			remap[u] = k
			k++
		} else {
			remap[u] = -1
		}
	}
	var edges [][2]Vertex
	for _, e := range p.InducedEdges(mask) {
		edges = append(edges, [2]Vertex{remap[e[0]], remap[e[1]]})
	}
	sub := MustNew(p.name+"[induced]", max(k, 1), edges)
	if k == 0 {
		sub.n = 0
	}
	return sub, remap
}

// String renders the pattern as name(n=…, m=…, edges).
func (p *Pattern) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(n=%d, m=%d:", p.name, p.n, p.m)
	for _, e := range p.Edges() {
		fmt.Fprintf(&sb, " %d-%d", e[0], e[1])
	}
	sb.WriteByte(')')
	return sb.String()
}

// Automorphisms enumerates Aut(P): every permutation σ of V(P) with
// (u,v) ∈ E ⇔ (σu,σv) ∈ E. Brute force over n! permutations with degree
// pruning; n is tiny.
func (p *Pattern) Automorphisms() [][]Vertex {
	perm := make([]Vertex, p.n)
	used := uint32(0)
	var out [][]Vertex
	var rec func(i int)
	rec = func(i int) {
		if i == p.n {
			cp := make([]Vertex, p.n)
			copy(cp, perm)
			out = append(out, cp)
			return
		}
		for v := 0; v < p.n; v++ {
			if used&(1<<uint(v)) != 0 || p.Degree(i) != p.Degree(v) {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				if p.HasEdge(i, j) != p.HasEdge(v, perm[j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			perm[i] = v
			used |= 1 << uint(v)
			rec(i + 1)
			used &^= 1 << uint(v)
		}
	}
	rec(0)
	return out
}

// PartialOrder is a set of symmetry-breaking constraints u < v on pattern
// vertices: a match φ must satisfy φ(u) < φ(v) for every pair.
type PartialOrder struct {
	// Less[u] is the bitmask of vertices v with constraint u < v.
	Less [MaxVertices]uint32
	n    int
}

// Pairs returns the constraints as (u, v) pairs with u < v required.
func (po *PartialOrder) Pairs() [][2]Vertex {
	var out [][2]Vertex
	for u := 0; u < po.n; u++ {
		for m := po.Less[u]; m != 0; m &= m - 1 {
			out = append(out, [2]Vertex{u, trailingZeros(m)})
		}
	}
	return out
}

// Empty reports whether there are no constraints (|Aut(P)| = 1).
func (po *PartialOrder) Empty() bool {
	for u := 0; u < po.n; u++ {
		if po.Less[u] != 0 {
			return false
		}
	}
	return true
}

// String renders the constraints like the paper's figures: "u0<u1, u2<u3".
func (po *PartialOrder) String() string {
	pairs := po.Pairs()
	if len(pairs) == 0 {
		return "∅"
	}
	parts := make([]string, len(pairs))
	for i, pr := range pairs {
		parts[i] = fmt.Sprintf("u%d<u%d", pr[0], pr[1])
	}
	return strings.Join(parts, ", ")
}

// SymmetryBreaking computes a symmetry-breaking partial order with the
// Grochow–Kellis construction the paper cites [7]: repeatedly pick the
// smallest vertex v lying in a non-trivial orbit of the remaining
// automorphism group, emit v < u for every other u in v's orbit, and
// restrict the group to the stabilizer of v. The result guarantees each
// isomorphic subgraph is counted exactly once (verified in tests against
// |Aut|-normalized brute force).
func SymmetryBreaking(p *Pattern) *PartialOrder {
	return SymmetryBreakingFromAut(p, p.Automorphisms())
}

// SymmetryBreakingFromAut runs the Grochow–Kellis construction on an
// explicit automorphism group (any subgroup of Aut(P) closed under
// composition works; the labeled-matching layer passes the
// label-preserving subgroup). The identity must be included.
func SymmetryBreakingFromAut(p *Pattern, auts [][]Vertex) *PartialOrder {
	po := &PartialOrder{n: p.n}
	for len(auts) > 1 {
		// Orbit of each vertex under the current group.
		var orbit [MaxVertices]uint32
		for _, a := range auts {
			for u := 0; u < p.n; u++ {
				orbit[u] |= 1 << uint(a[u])
			}
		}
		// Smallest vertex with a non-trivial orbit.
		v := -1
		for u := 0; u < p.n; u++ {
			if popcount(orbit[u]) > 1 {
				v = u
				break
			}
		}
		if v == -1 {
			break // group non-trivial but orbits all singletons: cannot happen
		}
		po.Less[v] |= orbit[v] &^ (1 << uint(v))
		// Stabilizer of v.
		var stab [][]Vertex
		for _, a := range auts {
			if a[v] == v {
				stab = append(stab, a)
			}
		}
		auts = stab
	}
	return po
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func trailingZeros(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

func maskToSlice(m uint32) []Vertex {
	out := make([]Vertex, 0, popcount(m))
	for ; m != 0; m &= m - 1 {
		out = append(out, trailingZeros(m))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
