package pattern

import (
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 0, nil); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := New("bad", MaxVertices+1, nil); err == nil {
		t.Error("accepted oversized pattern")
	}
	if _, err := New("bad", 2, [][2]Vertex{{0, 0}}); err == nil {
		t.Error("accepted self-loop")
	}
	if _, err := New("bad", 2, [][2]Vertex{{0, 5}}); err == nil {
		t.Error("accepted out-of-range edge")
	}
	p, err := New("dup", 2, [][2]Vertex{{0, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() != 1 {
		t.Errorf("duplicate edges kept: m=%d", p.NumEdges())
	}
}

func TestBasicAccessors(t *testing.T) {
	p := P2()
	if p.NumVertices() != 4 || p.NumEdges() != 5 {
		t.Fatalf("P2 shape wrong: %v", p)
	}
	if !p.HasEdge(0, 2) || !p.HasEdge(2, 0) {
		t.Error("chord missing")
	}
	if p.HasEdge(1, 3) {
		t.Error("phantom edge 1-3")
	}
	if p.Degree(0) != 3 || p.Degree(1) != 2 {
		t.Errorf("degrees wrong: d(0)=%d d(1)=%d", p.Degree(0), p.Degree(1))
	}
	ns := p.Neighbors(0)
	if len(ns) != 3 || ns[0] != 1 || ns[1] != 2 || ns[2] != 3 {
		t.Errorf("Neighbors(0) = %v", ns)
	}
	if len(p.Edges()) != 5 {
		t.Errorf("Edges() = %v", p.Edges())
	}
}

func TestConnectivity(t *testing.T) {
	if !P1().IsConnected() {
		t.Error("square should be connected")
	}
	disc := MustNew("disc", 4, [][2]Vertex{{0, 1}, {2, 3}})
	if disc.IsConnected() {
		t.Error("disconnected pattern reported connected")
	}
	// Induced subgraph connectivity.
	p := P4()                         // house
	if !p.InducedConnected(0b00011) { // {u0,u1}: edge
		t.Error("{u0,u1} should be connected")
	}
	if p.InducedConnected(0b01100) { // {u2,u3}: edge 2-3 exists... check
		// u2-u3 IS an edge of the house; this mask is connected.
	}
	if !p.InducedConnected(0b01100) {
		t.Error("{u2,u3} should be connected (edge 2-3)")
	}
	if p.InducedConnected(0b10100) { // {u2,u4}: no edge
		t.Error("{u2,u4} should be disconnected")
	}
	if !p.InducedConnected(0) {
		t.Error("empty mask should be connected")
	}
}

func TestInduced(t *testing.T) {
	p := P2()
	sub, remap := p.Induced(0b0111) // {u0,u1,u2}: triangle
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle wrong: %v", sub)
	}
	if remap[3] != -1 || remap[0] != 0 || remap[2] != 2 {
		t.Fatalf("remap = %v", remap)
	}
	sub2, _ := p.Induced(0b1010) // {u1,u3}: no edge
	if sub2.NumEdges() != 0 || sub2.NumVertices() != 2 {
		t.Fatalf("induced pair wrong: %v", sub2)
	}
}

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		p    *Pattern
		want int
	}{
		{Triangle(), 6}, // S3
		{P1(), 8},       // dihedral D4
		{P2(), 4},       // swap u1<->u3, swap u0<->u2
		{P3(), 24},      // S4
		{P4(), 2},       // mirror
		{P5(), 4},       // ladder: horizontal/vertical mirrors
		{P6(), 8},       // K5 minus 2-matching: swap within each pair × swap the pairs
		{P7(), 120},     // S5
		{Path(4), 2},    // reversal
		{Cycle(5), 10},  // D5
		{StarPattern(3), 6} /* leaves permute */}
	for _, c := range cases {
		got := len(c.p.Automorphisms())
		if got != c.want {
			t.Errorf("%s: |Aut| = %d, want %d", c.p.Name(), got, c.want)
		}
	}
}

func TestAutomorphismsAreAutomorphisms(t *testing.T) {
	for _, p := range Catalog() {
		for _, a := range p.Automorphisms() {
			for u := 0; u < p.NumVertices(); u++ {
				for v := u + 1; v < p.NumVertices(); v++ {
					if p.HasEdge(u, v) != p.HasEdge(a[u], a[v]) {
						t.Fatalf("%s: %v is not an automorphism", p.Name(), a)
					}
				}
			}
		}
	}
}

func TestSymmetryBreakingIdentityOnly(t *testing.T) {
	// A pattern with trivial Aut: path of 3 with a pendant triangle —
	// build an asymmetric graph: 0-1,1-2,2-3,1-3 ("paw").
	paw := MustNew("paw", 4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {1, 3}})
	if got := len(paw.Automorphisms()); got != 2 {
		t.Fatalf("paw |Aut| = %d, want 2 (swap 2,3)", got)
	}
	po := SymmetryBreaking(paw)
	pairs := po.Pairs()
	if len(pairs) != 1 || pairs[0] != [2]Vertex{2, 3} {
		t.Fatalf("paw partial order = %v, want [2<3]", po)
	}
}

// checkBreaksAllAutomorphisms verifies the Grochow–Kellis guarantee
// directly: for every non-identity automorphism a there must exist a
// constraint (u < v) with a mapping that inverts it on some concrete
// assignment — equivalently, among all automorphic images of any injective
// assignment, exactly one satisfies the partial order. We verify the
// "exactly one" property on a canonical assignment φ(u_i) = i and all its
// automorphic images.
func checkBreaksAllAutomorphisms(t *testing.T, p *Pattern) {
	t.Helper()
	po := SymmetryBreaking(p)
	auts := p.Automorphisms()
	satisfied := 0
	for _, a := range auts {
		// Image assignment: vertex u is mapped to data vertex a^{-1}(u)?
		// Use φ_a(u) = position of u under a: data value a[u].
		ok := true
		for u := 0; u < p.NumVertices(); u++ {
			for m := po.Less[u]; m != 0; m &= m - 1 {
				v := trailingZeros(m)
				if a[u] >= a[v] {
					ok = false
				}
			}
		}
		if ok {
			satisfied++
		}
	}
	if satisfied != 1 {
		t.Errorf("%s: %d automorphic images satisfy the partial order, want exactly 1 (po=%v, |Aut|=%d)",
			p.Name(), satisfied, po, len(auts))
	}
}

func TestSymmetryBreakingBreaksAll(t *testing.T) {
	pats := Catalog()
	pats = append(pats, Triangle(), Path(4), Path(5), Cycle(5), Cycle(6),
		StarPattern(3), StarPattern(4), Clique(3), Clique(6))
	for _, p := range pats {
		checkBreaksAllAutomorphisms(t, p)
	}
}

func TestPartialOrderString(t *testing.T) {
	po := SymmetryBreaking(Triangle())
	if po.Empty() {
		t.Fatal("triangle needs constraints")
	}
	if s := po.String(); s == "∅" || s == "" {
		t.Fatalf("String = %q", s)
	}
	pawless := SymmetryBreaking(MustNew("asym", 6, [][2]Vertex{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 3}, {1, 4}, {0, 2},
	}))
	_ = pawless
}

func TestCatalogShapes(t *testing.T) {
	want := []struct{ n, m int }{
		{4, 4}, {4, 5}, {4, 6}, {5, 6}, {6, 7}, {5, 8}, {5, 10},
	}
	cat := Catalog()
	maxN := 0
	for i, p := range cat {
		if p.NumVertices() != want[i].n || p.NumEdges() != want[i].m {
			t.Errorf("P%d: n=%d m=%d, want n=%d m=%d", i+1, p.NumVertices(), p.NumEdges(), want[i].n, want[i].m)
		}
		if !p.IsConnected() {
			t.Errorf("P%d disconnected", i+1)
		}
		if p.NumVertices() > maxN {
			maxN = p.NumVertices()
		}
	}
	if cat[4].NumVertices() != maxN {
		t.Error("P5 must have the most vertices (Table V note)")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"P1", "P7", "triangle", "square", "cycle5", "path4", "clique4", "star3"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	for _, name := range []string{"", "P8", "clique2", "cycle99", "blah"} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q): expected error", name)
		}
	}
}
