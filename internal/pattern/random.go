package pattern

import "math/rand"

// RandomConnected generates a random connected pattern on n vertices: a
// uniform random recursive tree (each vertex v>0 attaches to a uniform
// earlier vertex) plus up to extraEdges random chords. Duplicate chords
// and self-loops are dropped, so the final edge count is between n-1
// and n-1+extraEdges. Deterministic for a given rng state; used by the
// differential harness and the engine's randomized correctness tests.
func RandomConnected(rng *rand.Rand, n, extraEdges int) *Pattern {
	var edges [][2]Vertex
	for v := 1; v < n; v++ {
		edges = append(edges, [2]Vertex{rng.Intn(v), v})
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, [2]Vertex{u, v})
		}
	}
	return MustNew("random", n, edges)
}
