package pattern

import (
	"math/rand"
	"testing"
)

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		p := RandomConnected(rng, n, rng.Intn(5))
		if p.NumVertices() != n {
			t.Fatalf("n = %d, want %d", p.NumVertices(), n)
		}
		if p.NumEdges() < n-1 {
			t.Fatalf("%d edges on %d vertices cannot be connected", p.NumEdges(), n)
		}
		// BFS over the adjacency masks: the spanning-tree construction
		// guarantees one component.
		seen := uint32(1)
		queue := []Vertex{0}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if p.HasEdge(u, v) && seen&(1<<uint(v)) == 0 {
					seen |= 1 << uint(v)
					queue = append(queue, v)
				}
			}
		}
		if seen != 1<<uint(n)-1 {
			t.Fatalf("trial %d: pattern disconnected (reached %#x of %d vertices)", trial, seen, n)
		}
	}
	// Same seed, same pattern.
	a := RandomConnected(rand.New(rand.NewSource(7)), 5, 3)
	b := RandomConnected(rand.New(rand.NewSource(7)), 5, 3)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("RandomConnected not deterministic")
	}
}
