package bfsjoin

import (
	"sort"
	"time"

	"light/internal/engine"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

// SEED simulates the SEED distributed algorithm: decompose P into
// clique-star join units, materialize each unit's matches, and hash-join
// them round by round, charging intermediate space and shuffle cost.
// Like the real systems under the paper's protocol, the final join round
// streams its output (matches are counted, not stored); everything before
// it is materialized, which is where the BFS approach's space cost lives.
func SEED(g *graph.Graph, p *pattern.Pattern, opts Options) (Result, error) {
	t := NewTracker(opts)
	units := decomposeCliqueStar(p)
	res := Result{}
	for _, u := range units {
		res.Units = append(res.Units, u.String())
	}
	aut := uint64(len(p.Automorphisms()))

	if len(units) == 1 {
		// Single join unit (e.g. a clique pattern): SEED streams the
		// unit's matches directly with no intermediates.
		count, err := countUnit(g, units[0], t)
		if err != nil {
			return finishResult(res, t), err
		}
		res.Matches = count / aut
		return finishResult(res, t), nil
	}

	rels := make([]*Relation, 0, len(units))
	for _, u := range units {
		r, err := materialize(g, u, t)
		if err != nil {
			return finishResult(res, t), err
		}
		rels = append(rels, r)
	}
	// Join smallest-first among units sharing a vertex with the
	// accumulated relation (SEED optimizes its join order; smallest-first
	// is the standard greedy).
	sort.SliceStable(rels, func(i, j int) bool { return len(rels[i].Tuples) < len(rels[j].Tuples) })
	acc := rels[0]
	remaining := rels[1:]
	for len(remaining) > 0 {
		pick := -1
		for i, r := range remaining {
			if shared, _, _ := sharedVertices(acc, r); len(shared) > 0 {
				pick = i
				break
			}
		}
		if pick == -1 {
			// No unit shares a vertex yet (transient for connected P):
			// take the smallest and pay the Cartesian product.
			pick = 0
		}
		next := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		if len(remaining) == 0 {
			count, err := CountJoin(acc, next, t)
			if err != nil {
				return finishResult(res, t), err
			}
			res.Matches = count / aut
			break
		}
		joined, err := HashJoin(acc, next, t)
		if err != nil {
			return finishResult(res, t), err
		}
		t.Release(acc)
		t.Release(next)
		acc = joined
		if err := t.CheckTime(); err != nil {
			return finishResult(res, t), err
		}
	}
	out := finishResult(res, t)
	if opts.Sleep && out.ShuffleTime > 0 {
		time.Sleep(out.ShuffleTime)
	}
	return out, nil
}

// countUnit counts the unit's injective homomorphisms without storing
// them.
func countUnit(g *graph.Graph, u unit, t *Tracker) (uint64, error) {
	sub, pi, err := unitPattern(u)
	if err != nil {
		return 0, err
	}
	pl, err := plan.Compile(sub, &pattern.PartialOrder{}, pi, plan.ModeLIGHT)
	if err != nil {
		return 0, err
	}
	opts := engine.Options{}
	if !t.deadline.IsZero() {
		opts.TimeLimit = time.Until(t.deadline)
		if opts.TimeLimit <= 0 {
			return 0, ErrTimeLimit
		}
	}
	r, err := engine.New(g, pl, opts).Run(nil)
	if err == engine.ErrTimeLimit {
		return 0, ErrTimeLimit
	}
	if err != nil {
		return 0, err
	}
	return r.Matches, nil
}

func finishResult(res Result, t *Tracker) Result {
	res.PeakBytes = t.peak
	res.ShuffledTuples = t.shuffled
	res.ShuffleTime = t.ShuffleTime()
	return res
}
