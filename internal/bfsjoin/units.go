package bfsjoin

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"light/internal/engine"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

// unit is one join unit: a connected subpattern given by parent-pattern
// vertices and a subset of parent edges.
type unit struct {
	vertices []pattern.Vertex
	edges    [][2]pattern.Vertex
	kind     string // "clique", "star", "core" — for reporting
}

func (u unit) String() string {
	return fmt.Sprintf("%s%v(%d edges)", u.kind, u.vertices, len(u.edges))
}

// decomposeCliqueStar splits p into SEED's clique-star join units:
// greedily peel maximal cliques (size ≥ 3) that cover uncovered edges,
// then group leftover edges into stars around the busiest endpoints.
func decomposeCliqueStar(p *pattern.Pattern) []unit {
	n := p.NumVertices()
	uncovered := map[[2]pattern.Vertex]bool{}
	for _, e := range p.Edges() {
		uncovered[e] = true
	}
	var units []unit
	// Clique phase.
	for len(uncovered) > 0 {
		bestMask, bestGain := uint32(0), 0
		for mask := uint32(1); mask < 1<<uint(n); mask++ {
			if bits.OnesCount32(mask) < 3 || !isClique(p, mask) {
				continue
			}
			gain := 0
			for e := range uncovered {
				if mask&(1<<uint(e[0])) != 0 && mask&(1<<uint(e[1])) != 0 {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && bits.OnesCount32(mask) > bits.OnesCount32(bestMask)) {
				bestMask, bestGain = mask, gain
			}
		}
		if bestGain == 0 {
			break
		}
		u := unit{kind: "clique"}
		for m := bestMask; m != 0; m &= m - 1 {
			u.vertices = append(u.vertices, bits.TrailingZeros32(m))
		}
		for i := 0; i < len(u.vertices); i++ {
			for j := i + 1; j < len(u.vertices); j++ {
				e := [2]pattern.Vertex{u.vertices[i], u.vertices[j]}
				u.edges = append(u.edges, e)
				delete(uncovered, e)
			}
		}
		units = append(units, u)
	}
	// Star phase.
	for len(uncovered) > 0 {
		counts := make([]int, n)
		for e := range uncovered {
			counts[e[0]]++
			counts[e[1]]++
		}
		center, best := 0, 0
		for v, c := range counts {
			if c > best {
				center, best = v, c
			}
		}
		u := unit{kind: "star", vertices: []pattern.Vertex{center}}
		var edges [][2]pattern.Vertex
		for e := range uncovered {
			if e[0] == center || e[1] == center {
				edges = append(edges, e)
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		for _, e := range edges {
			other := e[0]
			if other == center {
				other = e[1]
			}
			u.vertices = append(u.vertices, other)
			u.edges = append(u.edges, e)
			delete(uncovered, e)
		}
		units = append(units, u)
	}
	return units
}

func isClique(p *pattern.Pattern, mask uint32) bool {
	vs := []pattern.Vertex{}
	for m := mask; m != 0; m &= m - 1 {
		vs = append(vs, bits.TrailingZeros32(m))
	}
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !p.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// minConnectedVertexCover returns the smallest vertex set covering every
// edge of p whose induced subgraph is connected (CRYSTAL's core), by
// brute force over subsets in increasing size.
func minConnectedVertexCover(p *pattern.Pattern) []pattern.Vertex {
	n := p.NumVertices()
	edges := p.Edges()
	for size := 1; size <= n; size++ {
		for mask := uint32(1); mask < 1<<uint(n); mask++ {
			if bits.OnesCount32(mask) != size {
				continue
			}
			covers := true
			for _, e := range edges {
				if mask&(1<<uint(e[0])) == 0 && mask&(1<<uint(e[1])) == 0 {
					covers = false
					break
				}
			}
			if !covers || !p.InducedConnected(mask) {
				continue
			}
			var out []pattern.Vertex
			for m := mask; m != 0; m &= m - 1 {
				out = append(out, bits.TrailingZeros32(m))
			}
			return out
		}
	}
	return nil // unreachable for a non-empty pattern: V(P) always works
}

// unitPattern relabels a unit into a standalone pattern plus a connected
// enumeration order for it.
func unitPattern(u unit) (*pattern.Pattern, []pattern.Vertex, error) {
	remap := map[pattern.Vertex]int{}
	for i, v := range u.vertices {
		remap[v] = i
	}
	var edges [][2]pattern.Vertex
	for _, e := range u.edges {
		edges = append(edges, [2]pattern.Vertex{remap[e[0]], remap[e[1]]})
	}
	sub, err := pattern.New(fmt.Sprintf("unit-%s", u.kind), len(u.vertices), edges)
	if err != nil {
		return nil, nil, err
	}
	if sub.NumVertices() == 1 {
		return sub, []pattern.Vertex{0}, nil
	}
	orders := plan.ConnectedOrders(sub, nil)
	if len(orders) == 0 {
		return nil, nil, fmt.Errorf("bfsjoin: unit %v is disconnected", u)
	}
	return sub, orders[0], nil
}

// materialize enumerates all injective homomorphisms of the unit's edge
// set and returns them as a charged Relation. No symmetry breaking (the
// caller divides the final count by |Aut(P)|).
func materialize(g *graph.Graph, u unit, t *Tracker) (*Relation, error) {
	sub, pi, err := unitPattern(u)
	if err != nil {
		return nil, err
	}
	pl, err := plan.Compile(sub, &pattern.PartialOrder{}, pi, plan.ModeLIGHT)
	if err != nil {
		return nil, err
	}
	opts := engine.Options{}
	if !t.deadline.IsZero() {
		opts.TimeLimit = time.Until(t.deadline)
		if opts.TimeLimit <= 0 {
			return nil, ErrTimeLimit
		}
	}
	rel := &Relation{Vertices: append([]pattern.Vertex(nil), u.vertices...)}
	rowBytes := int64(len(u.vertices)) * 4
	overBudget := false
	res, err := engine.New(g, pl, opts).Run(func(m []graph.VertexID) bool {
		tup := make([]graph.VertexID, len(u.vertices))
		for i := range u.vertices {
			tup[i] = m[i]
		}
		rel.Tuples = append(rel.Tuples, tup)
		if t.opts.MaxBytes > 0 && t.live+int64(len(rel.Tuples))*rowBytes > t.opts.MaxBytes {
			overBudget = true
			return false
		}
		return true
	})
	if err == engine.ErrTimeLimit {
		return nil, ErrTimeLimit
	}
	if err != nil {
		return nil, err
	}
	if overBudget {
		return nil, ErrOutOfSpace
	}
	_ = res
	if err := t.Charge(rel); err != nil {
		return nil, err
	}
	return rel, nil
}
