// Package bfsjoin simulates the distributed BFS-join subgraph
// enumeration algorithms the paper compares against (Section VIII-C):
// SEED (clique-star join units) and CRYSTAL (core + compressed crystal
// buds). Both decompose the pattern into units, materialize every unit's
// matches, and join them — maintaining the exponential intermediate
// results that are the paper's central criticism of the BFS approach.
//
// The simulation makes the two costs of that approach explicit and
// measurable on one machine:
//
//   - Space: every live intermediate relation is charged to a byte
//     budget; exceeding Options.MaxBytes aborts with ErrOutOfSpace (the
//     paper's OOS outcome).
//   - Shuffle: every materialized intermediate tuple is charged
//     Options.ShufflePerTuple of simulated I/O time (MapReduce reads,
//     writes and shuffles each one); the harness adds it to wall time.
//
// Counting is performed without symmetry breaking and divided by |Aut(P)|
// at the end, which is exact and mirrors how join-based systems
// deduplicate.
package bfsjoin

import (
	"errors"
	"fmt"
	"time"

	"light/internal/graph"
	"light/internal/pattern"
)

// ErrOutOfSpace is returned when the intermediate results exceed the
// space budget (the paper's OOS failure mode).
var ErrOutOfSpace = errors.New("bfsjoin: out of space (intermediate results exceeded budget)")

// ErrTimeLimit mirrors engine.ErrTimeLimit for the join phase.
var ErrTimeLimit = errors.New("bfsjoin: time limit exceeded")

// Options configure a simulated distributed run.
type Options struct {
	// MaxBytes caps the total bytes of live intermediate relations;
	// 0 means unlimited.
	MaxBytes int64
	// TimeLimit aborts long runs; 0 means unlimited.
	TimeLimit time.Duration
	// ShufflePerTuple is the simulated materialization/shuffle cost per
	// intermediate tuple. The returned Result reports the aggregate; when
	// Sleep is true the run actually sleeps for it, so wall-clock
	// comparisons against LIGHT include the BFS approach's I/O cost.
	ShufflePerTuple time.Duration
	// Sleep controls whether the simulated shuffle time is actually slept.
	Sleep bool
}

// Result reports a simulated run.
type Result struct {
	Matches        uint64        // embeddings (injective homs / |Aut|)
	PeakBytes      int64         // high-water mark of live intermediates
	ShuffledTuples int64         // total intermediate tuples materialized
	ShuffleTime    time.Duration // simulated I/O cost of those tuples
	Units          []string      // human-readable decomposition
}

// Relation is a materialized set of partial matches over a set of
// pattern vertices. Tuples are aligned with Vertices.
type Relation struct {
	Vertices []pattern.Vertex
	Tuples   [][]graph.VertexID
}

// Bytes returns the in-memory size charged to the space budget.
func (r *Relation) Bytes() int64 {
	return int64(len(r.Tuples)) * int64(len(r.Vertices)) * 4
}

// String summarizes the relation's schema and cardinality.
func (r *Relation) String() string {
	return fmt.Sprintf("R%v[%d tuples]", r.Vertices, len(r.Tuples))
}

// Tracker enforces the space budget and accumulates shuffle/space
// accounting. Exported so the EH baseline (internal/baselines) can share
// the same OOS semantics.
type Tracker struct {
	opts     Options
	live     int64
	peak     int64
	shuffled int64
	deadline time.Time
}

// NewTracker starts accounting under opts.
func NewTracker(opts Options) *Tracker {
	t := &Tracker{opts: opts}
	if opts.TimeLimit > 0 {
		t.deadline = time.Now().Add(opts.TimeLimit)
	}
	return t
}

// Charge accounts for a newly materialized relation.
func (t *Tracker) Charge(r *Relation) error {
	return t.ChargeBytes(r.Bytes(), int64(len(r.Tuples)))
}

// ChargeBytes accounts for bytes of live intermediate state representing
// tuples shuffled rows.
func (t *Tracker) ChargeBytes(bytes, tuples int64) error {
	t.live += bytes
	if t.live > t.peak {
		t.peak = t.live
	}
	t.shuffled += tuples
	if t.opts.MaxBytes > 0 && t.live > t.opts.MaxBytes {
		return ErrOutOfSpace
	}
	return nil
}

// Release frees a relation from the live set (a MapReduce round's inputs
// are dropped once its output is written).
func (t *Tracker) Release(r *Relation) { t.live -= r.Bytes() }

// CheckTime returns ErrTimeLimit once the deadline passes.
func (t *Tracker) CheckTime() error {
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		return ErrTimeLimit
	}
	return nil
}

// ShuffleTime returns the simulated I/O cost accumulated so far.
func (t *Tracker) ShuffleTime() time.Duration {
	return time.Duration(t.shuffled) * t.opts.ShufflePerTuple
}

// Deadline returns the run's absolute deadline (zero when unlimited);
// shared with the EH baseline so its engine invocations inherit it.
func (t *Tracker) Deadline() time.Time { return t.deadline }

// OverBudget reports whether the live intermediates plus extra bytes
// would exceed the space budget.
func (t *Tracker) OverBudget(extra int64) bool {
	return t.opts.MaxBytes > 0 && t.live+extra > t.opts.MaxBytes
}

// Peak returns the intermediate-space high-water mark in bytes.
func (t *Tracker) Peak() int64 { return t.peak }

// Shuffled returns the total intermediate tuples materialized.
func (t *Tracker) Shuffled() int64 { return t.shuffled }

// HashJoin joins a and b on their shared pattern vertices, keeping only
// tuples whose combined data vertices are pairwise distinct. The result
// covers the union of the two vertex sets and is charged to the tracker.
func HashJoin(a, b *Relation, t *Tracker) (*Relation, error) {
	_, aIdx, bIdx := sharedVertices(a, b)
	// b's extra vertices (appended after a's).
	var bExtra []int
	outVerts := append([]pattern.Vertex(nil), a.Vertices...)
	for i, v := range b.Vertices {
		if !containsVertex(a.Vertices, v) {
			bExtra = append(bExtra, i)
			outVerts = append(outVerts, v)
		}
	}

	// Build side: hash a's tuples by their shared-vertex key.
	type key [pattern.MaxVertices]graph.VertexID
	build := make(map[key][]int, len(a.Tuples))
	for ti, tup := range a.Tuples {
		var k key
		for i, idx := range aIdx {
			k[i] = tup[idx]
		}
		build[k] = append(build[k], ti)
	}

	out := &Relation{Vertices: outVerts}
	for pi, ptup := range b.Tuples {
		if pi&4095 == 0 {
			if err := t.CheckTime(); err != nil {
				return nil, err
			}
		}
		var k key
		for i, idx := range bIdx {
			k[i] = ptup[idx]
		}
		for _, ti := range build[k] {
			atup := a.Tuples[ti]
			// Injectivity across the union.
			ok := true
			for _, bi := range bExtra {
				for _, av := range atup {
					if ptup[bi] == av {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if !ok {
				continue
			}
			tup := make([]graph.VertexID, 0, len(outVerts))
			tup = append(tup, atup...)
			for _, bi := range bExtra {
				tup = append(tup, ptup[bi])
			}
			out.Tuples = append(out.Tuples, tup)
			// Charge incrementally so runaway joins hit the budget mid-way
			// instead of after allocating everything.
			if t.opts.MaxBytes > 0 && t.live+out.Bytes() > t.opts.MaxBytes {
				return nil, ErrOutOfSpace
			}
		}
	}
	if err := t.Charge(out); err != nil {
		return nil, err
	}
	return out, nil
}

// CountJoin is HashJoin for the final round: distributed systems stream
// the last join's output instead of storing it, so it only counts.
func CountJoin(a, b *Relation, t *Tracker) (uint64, error) {
	_, aIdx, bIdx := sharedVertices(a, b)
	var bExtra []int
	for i, v := range b.Vertices {
		if !containsVertex(a.Vertices, v) {
			bExtra = append(bExtra, i)
		}
	}
	type key [pattern.MaxVertices]graph.VertexID
	build := make(map[key][]int, len(a.Tuples))
	for ti, tup := range a.Tuples {
		var k key
		for i, idx := range aIdx {
			k[i] = tup[idx]
		}
		build[k] = append(build[k], ti)
	}
	var count uint64
	for pi, ptup := range b.Tuples {
		if pi&4095 == 0 {
			if err := t.CheckTime(); err != nil {
				return 0, err
			}
		}
		var k key
		for i, idx := range bIdx {
			k[i] = ptup[idx]
		}
		for _, ti := range build[k] {
			atup := a.Tuples[ti]
			ok := true
			for _, bi := range bExtra {
				for _, av := range atup {
					if ptup[bi] == av {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				count++
			}
		}
	}
	return count, nil
}

func sharedVertices(a, b *Relation) (shared []pattern.Vertex, aIdx, bIdx []int) {
	for i, v := range a.Vertices {
		for j, w := range b.Vertices {
			if v == w {
				shared = append(shared, v)
				aIdx = append(aIdx, i)
				bIdx = append(bIdx, j)
			}
		}
	}
	return shared, aIdx, bIdx
}

func containsVertex(vs []pattern.Vertex, v pattern.Vertex) bool {
	for _, w := range vs {
		if w == v {
			return true
		}
	}
	return false
}
