package bfsjoin

import (
	"testing"

	"light/internal/graph"
	"light/internal/pattern"
)

func rel(verts []pattern.Vertex, tuples ...[]graph.VertexID) *Relation {
	return &Relation{Vertices: verts, Tuples: tuples}
}

func TestHashJoinSharedVertex(t *testing.T) {
	a := rel([]pattern.Vertex{0, 1},
		[]graph.VertexID{10, 20},
		[]graph.VertexID{11, 21},
	)
	b := rel([]pattern.Vertex{1, 2},
		[]graph.VertexID{20, 30},
		[]graph.VertexID{20, 31},
		[]graph.VertexID{21, 30},
		[]graph.VertexID{99, 30},
	)
	out, err := HashJoin(a, b, NewTracker(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Vertices) != 3 {
		t.Fatalf("vertices = %v", out.Vertices)
	}
	// (10,20)⋈(20,30), (10,20)⋈(20,31), (11,21)⋈(21,30).
	if len(out.Tuples) != 3 {
		t.Fatalf("tuples = %v", out.Tuples)
	}
}

func TestHashJoinEnforcesInjectivity(t *testing.T) {
	a := rel([]pattern.Vertex{0, 1}, []graph.VertexID{10, 20})
	b := rel([]pattern.Vertex{1, 2},
		[]graph.VertexID{20, 10}, // would map u2 to 10 = φ(u0): rejected
		[]graph.VertexID{20, 30},
	)
	out, err := HashJoin(a, b, NewTracker(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tuples) != 1 || out.Tuples[0][2] != 30 {
		t.Fatalf("tuples = %v", out.Tuples)
	}
}

func TestHashJoinCartesianWhenDisjoint(t *testing.T) {
	a := rel([]pattern.Vertex{0}, []graph.VertexID{1}, []graph.VertexID{2})
	b := rel([]pattern.Vertex{1}, []graph.VertexID{3}, []graph.VertexID{4})
	out, err := HashJoin(a, b, NewTracker(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tuples) != 4 {
		t.Fatalf("Cartesian product size = %d, want 4", len(out.Tuples))
	}
}

func TestCountJoinEqualsHashJoin(t *testing.T) {
	a := rel([]pattern.Vertex{0, 1},
		[]graph.VertexID{1, 2}, []graph.VertexID{1, 3}, []graph.VertexID{2, 3},
	)
	b := rel([]pattern.Vertex{1, 2},
		[]graph.VertexID{2, 3}, []graph.VertexID{2, 4}, []graph.VertexID{3, 1}, []graph.VertexID{3, 4},
	)
	tr := NewTracker(Options{})
	out, err := HashJoin(a, b, tr)
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountJoin(a, b, NewTracker(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(out.Tuples)) {
		t.Fatalf("CountJoin %d != HashJoin %d", n, len(out.Tuples))
	}
}

func TestHashJoinBudgetMidway(t *testing.T) {
	// The incremental check must fire during the join, not after.
	a := rel([]pattern.Vertex{0}, []graph.VertexID{1}, []graph.VertexID{2}, []graph.VertexID{3})
	b := rel([]pattern.Vertex{1}, []graph.VertexID{4}, []graph.VertexID{5}, []graph.VertexID{6})
	tr := NewTracker(Options{MaxBytes: 16})
	if _, err := HashJoin(a, b, tr); err != ErrOutOfSpace {
		t.Fatalf("err = %v, want ErrOutOfSpace", err)
	}
}

func TestTrackerAccounting(t *testing.T) {
	tr := NewTracker(Options{MaxBytes: 100, ShufflePerTuple: 10})
	r := rel([]pattern.Vertex{0, 1}, []graph.VertexID{1, 2}, []graph.VertexID{3, 4})
	if err := tr.Charge(r); err != nil {
		t.Fatal(err)
	}
	if tr.Peak() != 16 || tr.Shuffled() != 2 {
		t.Fatalf("peak=%d shuffled=%d", tr.Peak(), tr.Shuffled())
	}
	if tr.ShuffleTime() != 20 {
		t.Fatalf("ShuffleTime = %v", tr.ShuffleTime())
	}
	tr.Release(r)
	if tr.OverBudget(85) {
		t.Fatal("released bytes still counted")
	}
	if !tr.OverBudget(101) {
		t.Fatal("budget not enforced")
	}
	// Peak is a high-water mark: release must not lower it.
	if tr.Peak() != 16 {
		t.Fatal("peak lowered by release")
	}
}

func TestUnitPatternRelabels(t *testing.T) {
	u := unit{kind: "star", vertices: []pattern.Vertex{3, 1, 4}, edges: [][2]pattern.Vertex{{3, 1}, {3, 4}}}
	sub, pi, err := unitPattern(u)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub = %v", sub)
	}
	if len(pi) != 3 {
		t.Fatalf("pi = %v", pi)
	}
	if u.String() == "" {
		t.Fatal("unit String empty")
	}
}
