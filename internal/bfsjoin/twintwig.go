package bfsjoin

import (
	"sort"
	"time"

	"light/internal/graph"
	"light/internal/pattern"
)

// TwinTwig simulates the TwinTwig distributed algorithm (Lai et al.,
// PVLDB 2015 — the paper's reference [12] and SEED's predecessor):
// decompose P into "twin twigs" — stars with one or two edges — and
// join them round by round. Because the units are so small, TwinTwig
// materializes more and larger intermediates than SEED's clique-star
// units, which is exactly why SEED superseded it; the simulation
// reproduces that ordering.
func TwinTwig(g *graph.Graph, p *pattern.Pattern, opts Options) (Result, error) {
	t := NewTracker(opts)
	units := decomposeTwinTwig(p)
	res := Result{}
	for _, u := range units {
		res.Units = append(res.Units, u.String())
	}
	aut := uint64(len(p.Automorphisms()))

	if len(units) == 1 {
		count, err := countUnit(g, units[0], t)
		if err != nil {
			return finishResult(res, t), err
		}
		res.Matches = count / aut
		return finishResult(res, t), nil
	}

	rels := make([]*Relation, 0, len(units))
	for _, u := range units {
		r, err := materialize(g, u, t)
		if err != nil {
			return finishResult(res, t), err
		}
		rels = append(rels, r)
	}
	sort.SliceStable(rels, func(i, j int) bool { return len(rels[i].Tuples) < len(rels[j].Tuples) })
	acc := rels[0]
	remaining := rels[1:]
	for len(remaining) > 0 {
		pick := -1
		for i, r := range remaining {
			if shared, _, _ := sharedVertices(acc, r); len(shared) > 0 {
				pick = i
				break
			}
		}
		if pick == -1 {
			pick = 0
		}
		next := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		if len(remaining) == 0 {
			count, err := CountJoin(acc, next, t)
			if err != nil {
				return finishResult(res, t), err
			}
			res.Matches = count / aut
			break
		}
		joined, err := HashJoin(acc, next, t)
		if err != nil {
			return finishResult(res, t), err
		}
		t.Release(acc)
		t.Release(next)
		acc = joined
		if err := t.CheckTime(); err != nil {
			return finishResult(res, t), err
		}
	}
	out := finishResult(res, t)
	if opts.Sleep && out.ShuffleTime > 0 {
		time.Sleep(out.ShuffleTime)
	}
	return out, nil
}

// decomposeTwinTwig greedily peels stars of at most two edges: pick the
// vertex with the most uncovered incident edges, take up to two of them
// as one twig, repeat.
func decomposeTwinTwig(p *pattern.Pattern) []unit {
	uncovered := map[[2]pattern.Vertex]bool{}
	for _, e := range p.Edges() {
		uncovered[e] = true
	}
	var units []unit
	for len(uncovered) > 0 {
		counts := make([]int, p.NumVertices())
		for e := range uncovered {
			counts[e[0]]++
			counts[e[1]]++
		}
		center, best := 0, 0
		for v, c := range counts {
			if c > best {
				center, best = v, c
			}
		}
		var edges [][2]pattern.Vertex
		for e := range uncovered {
			if e[0] == center || e[1] == center {
				edges = append(edges, e)
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		if len(edges) > 2 {
			edges = edges[:2] // a twig has at most two edges
		}
		u := unit{kind: "twig", vertices: []pattern.Vertex{center}}
		for _, e := range edges {
			other := e[0]
			if other == center {
				other = e[1]
			}
			u.vertices = append(u.vertices, other)
			u.edges = append(u.edges, e)
			delete(uncovered, e)
		}
		units = append(units, u)
	}
	return units
}
