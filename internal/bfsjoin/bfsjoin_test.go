package bfsjoin

import (
	"testing"
	"time"

	"light/internal/engine"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

// lightCount is the trusted reference (itself validated against brute
// force in the engine tests).
func lightCount(t *testing.T, g *graph.Graph, p *pattern.Pattern) uint64 {
	t.Helper()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.New(g, pl, engine.Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Matches
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"ba": gen.BarabasiAlbert(120, 4, 1),
		"er": gen.ErdosRenyi(80, 240, 2),
		"k9": gen.Complete(9),
	}
}

func TestDecomposeCliqueStarCoversAllEdges(t *testing.T) {
	for _, p := range pattern.Catalog() {
		units := decomposeCliqueStar(p)
		covered := map[[2]pattern.Vertex]bool{}
		for _, u := range units {
			for _, e := range u.edges {
				covered[orderedEdge(e[0], e[1])] = true
			}
			if len(u.vertices) < 2 {
				t.Fatalf("%s: degenerate unit %v", p.Name(), u)
			}
		}
		for _, e := range p.Edges() {
			if !covered[e] {
				t.Fatalf("%s: edge %v not covered by units %v", p.Name(), e, units)
			}
		}
	}
}

func TestDecomposeCliques(t *testing.T) {
	// A clique pattern must decompose into exactly one clique unit.
	units := decomposeCliqueStar(pattern.P7())
	if len(units) != 1 || units[0].kind != "clique" || len(units[0].vertices) != 5 {
		t.Fatalf("P7 units = %v", units)
	}
	// The square has no triangle: stars only.
	units = decomposeCliqueStar(pattern.P1())
	for _, u := range units {
		if u.kind != "star" {
			t.Fatalf("P1 unit %v should be a star", u)
		}
	}
}

func TestMinConnectedVertexCover(t *testing.T) {
	cases := []struct {
		p    *pattern.Pattern
		size int
	}{
		{pattern.Triangle(), 2},
		{pattern.P1(), 3}, // plain VC is 2 ({0,2}) but it's disconnected
		{pattern.P2(), 2}, // {0,2} is connected via the chord
		{pattern.P7(), 4},
		{pattern.StarPattern(4), 1},
	}
	for _, c := range cases {
		cover := minConnectedVertexCover(c.p)
		if len(cover) != c.size {
			t.Errorf("%s: cover %v, want size %d", c.p.Name(), cover, c.size)
		}
		// It must cover every edge.
		in := map[pattern.Vertex]bool{}
		for _, v := range cover {
			in[v] = true
		}
		for _, e := range c.p.Edges() {
			if !in[e[0]] && !in[e[1]] {
				t.Errorf("%s: edge %v uncovered by %v", c.p.Name(), e, cover)
			}
		}
	}
}

func TestSEEDMatchesLIGHT(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, p := range pattern.Catalog() {
			want := lightCount(t, g, p)
			res, err := SEED(g, p, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, p.Name(), err)
			}
			if res.Matches != want {
				t.Fatalf("%s/%s: SEED = %d, want %d (units %v)", gname, p.Name(), res.Matches, want, res.Units)
			}
		}
	}
}

func TestCrystalMatchesLIGHT(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, p := range pattern.Catalog() {
			want := lightCount(t, g, p)
			res, err := Crystal(g, p, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, p.Name(), err)
			}
			if res.Matches != want {
				t.Fatalf("%s/%s: Crystal = %d, want %d (units %v)", gname, p.Name(), res.Matches, want, res.Units)
			}
		}
	}
}

func TestSEEDOutOfSpace(t *testing.T) {
	// A tiny budget must trip ErrOutOfSpace on a multi-unit pattern.
	g := gen.BarabasiAlbert(400, 6, 3)
	_, err := SEED(g, pattern.P1(), Options{MaxBytes: 1024})
	if err != ErrOutOfSpace {
		t.Fatalf("err = %v, want ErrOutOfSpace", err)
	}
}

func TestCrystalOutOfSpace(t *testing.T) {
	g := gen.BarabasiAlbert(400, 6, 3)
	_, err := Crystal(g, pattern.P5(), Options{MaxBytes: 512})
	if err != ErrOutOfSpace {
		t.Fatalf("err = %v, want ErrOutOfSpace", err)
	}
}

func TestSEEDTimeLimit(t *testing.T) {
	g := gen.Complete(130)
	_, err := SEED(g, pattern.P4(), Options{TimeLimit: time.Millisecond})
	if err != ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}

func TestCrystalCompressesVsSEED(t *testing.T) {
	// CRYSTAL's factorized representation must beat SEED's materialized
	// intermediates on a pattern with buds (the square).
	g := gen.BarabasiAlbert(800, 5, 7)
	seedRes, err := SEED(g, pattern.P1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cryRes, err := Crystal(g, pattern.P1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cryRes.Matches != seedRes.Matches {
		t.Fatalf("counts diverge: %d vs %d", cryRes.Matches, seedRes.Matches)
	}
	if cryRes.PeakBytes >= seedRes.PeakBytes {
		t.Fatalf("CRYSTAL peak %d !< SEED peak %d", cryRes.PeakBytes, seedRes.PeakBytes)
	}
}

func TestShuffleAccounting(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 5)
	res, err := SEED(g, pattern.P1(), Options{ShufflePerTuple: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShuffledTuples == 0 {
		t.Fatal("no shuffle accounting")
	}
	if res.ShuffleTime != time.Duration(res.ShuffledTuples)*time.Microsecond {
		t.Fatalf("ShuffleTime = %v for %d tuples", res.ShuffleTime, res.ShuffledTuples)
	}
	// With Sleep, wall time must include the simulated cost.
	start := time.Now()
	res2, err := SEED(g, pattern.P1(), Options{ShufflePerTuple: 200 * time.Nanosecond, Sleep: true})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < res2.ShuffleTime {
		t.Fatalf("sleep shorter than simulated shuffle: %v < %v", time.Since(start), res2.ShuffleTime)
	}
}

func TestRelationBytes(t *testing.T) {
	r := &Relation{Vertices: []pattern.Vertex{0, 1, 2}}
	r.Tuples = append(r.Tuples, []graph.VertexID{1, 2, 3}, []graph.VertexID{4, 5, 6})
	if r.Bytes() != 24 {
		t.Fatalf("Bytes = %d, want 24", r.Bytes())
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTwinTwigMatchesLIGHT(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, p := range pattern.Catalog() {
			want := lightCount(t, g, p)
			res, err := TwinTwig(g, p, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, p.Name(), err)
			}
			if res.Matches != want {
				t.Fatalf("%s/%s: TwinTwig = %d, want %d (units %v)", gname, p.Name(), res.Matches, want, res.Units)
			}
		}
	}
}

func TestTwinTwigDecomposition(t *testing.T) {
	for _, p := range pattern.Catalog() {
		units := decomposeTwinTwig(p)
		covered := map[[2]pattern.Vertex]bool{}
		for _, u := range units {
			if len(u.edges) < 1 || len(u.edges) > 2 {
				t.Fatalf("%s: twig with %d edges", p.Name(), len(u.edges))
			}
			for _, e := range u.edges {
				covered[orderedEdge(e[0], e[1])] = true
			}
		}
		for _, e := range p.Edges() {
			if !covered[e] {
				t.Fatalf("%s: edge %v uncovered", p.Name(), e)
			}
		}
	}
}

func TestTwinTwigWorseThanSEED(t *testing.T) {
	// The historical ordering the paper relies on: TwinTwig's tiny join
	// units shuffle more intermediate tuples than SEED's clique-star
	// units on triangle-rich patterns.
	g := gen.BarabasiAlbert(400, 5, 13)
	for _, p := range []*pattern.Pattern{pattern.P3(), pattern.P7()} {
		tt, err := TwinTwig(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seed, err := SEED(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if tt.Matches != seed.Matches {
			t.Fatalf("%s: counts diverge", p.Name())
		}
		if tt.ShuffledTuples <= seed.ShuffledTuples {
			t.Fatalf("%s: TwinTwig shuffled %d !> SEED %d", p.Name(), tt.ShuffledTuples, seed.ShuffledTuples)
		}
	}
}

func TestTwinTwigOutOfSpace(t *testing.T) {
	g := gen.BarabasiAlbert(500, 6, 3)
	if _, err := TwinTwig(g, pattern.P4(), Options{MaxBytes: 1024}); err != ErrOutOfSpace {
		t.Fatalf("err = %v, want ErrOutOfSpace", err)
	}
}
