package bfsjoin

import (
	"fmt"
	"time"

	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/pattern"
)

// Crystal simulates the CRYSTAL distributed algorithm: materialize the
// matches of a minimum connected vertex cover (the core) and attach each
// remaining vertex (a bud) as a compressed candidate set per core tuple —
// the factorized "crystal" representation that shrinks intermediates
// relative to SEED. The final count expands the compression analytically
// with inclusion–exclusion over bud collisions.
func Crystal(g *graph.Graph, p *pattern.Pattern, opts Options) (Result, error) {
	t := NewTracker(opts)
	res := Result{}

	core := minConnectedVertexCover(p)
	var buds []pattern.Vertex
	inCore := map[pattern.Vertex]bool{}
	for _, v := range core {
		inCore[v] = true
	}
	for v := 0; v < p.NumVertices(); v++ {
		if !inCore[v] {
			buds = append(buds, v)
		}
	}
	res.Units = append(res.Units, fmt.Sprintf("core%v", core))
	for _, b := range buds {
		res.Units = append(res.Units, fmt.Sprintf("bud[%d]", b))
	}

	// Core unit: the induced subgraph on the cover.
	coreUnit := unit{kind: "core", vertices: core}
	for i := 0; i < len(core); i++ {
		for j := i + 1; j < len(core); j++ {
			if p.HasEdge(core[i], core[j]) {
				coreUnit.edges = append(coreUnit.edges, orderedEdge(core[i], core[j]))
			}
		}
	}
	coreRel, err := materialize(g, coreUnit, t)
	if err != nil {
		return finishResult(res, t), err
	}
	// Charge the compressed bud references: one candidate-set handle
	// (offset + length, 8 bytes) per bud per core tuple. This is the
	// compression CRYSTAL trades shuffle volume for.
	budRefBytes := int64(len(coreRel.Tuples)) * int64(len(buds)) * 8
	if err := t.ChargeBytes(budRefBytes, int64(len(coreRel.Tuples))*int64(len(buds))); err != nil {
		return finishResult(res, t), err
	}

	// Index of core vertices inside the relation tuples.
	corePos := map[pattern.Vertex]int{}
	for i, v := range coreRel.Vertices {
		corePos[v] = i
	}

	// Expand analytically per core tuple.
	dmax := g.MaxDegree()
	buf1 := make([]graph.VertexID, dmax)
	buf2 := make([]graph.VertexID, dmax)
	var total uint64
	aut := uint64(len(p.Automorphisms()))
	for ti, tup := range coreRel.Tuples {
		if ti&1023 == 0 {
			if err := t.CheckTime(); err != nil {
				return finishResult(res, t), err
			}
		}
		total += countBudAssignments(g, p, buds, corePos, tup, buf1, buf2)
	}
	res.Matches = total / aut
	out := finishResult(res, t)
	if opts.Sleep && out.ShuffleTime > 0 {
		time.Sleep(out.ShuffleTime)
	}
	return out, nil
}

// countBudAssignments counts injective assignments of the buds given one
// core tuple: each bud's candidate set is the intersection of its core
// neighbors' adjacency lists minus the core values; collisions between
// buds are removed by inclusion–exclusion over set partitions
// (Σ_partitions Π_blocks (-1)^{|B|-1}(|B|-1)!·|∩_{i∈B} C_i \ core|).
func countBudAssignments(g *graph.Graph, p *pattern.Pattern, buds []pattern.Vertex,
	corePos map[pattern.Vertex]int, tup []graph.VertexID, buf1, buf2 []graph.VertexID) uint64 {
	k := len(buds)
	if k == 0 {
		return 1
	}
	// blockCount[mask] = |∩_{i in mask} C_i \ coreValues| for every
	// non-empty subset of buds.
	blockCount := make([]int64, 1<<uint(k))
	for mask := 1; mask < 1<<uint(k); mask++ {
		var sets [][]graph.VertexID
		for i := 0; i < k; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for _, w := range p.Neighbors(buds[i]) {
				sets = append(sets, g.Neighbors(tup[corePos[w]]))
			}
		}
		n := intersect.MultiWay(buf1, buf2, sets, intersect.KindHybrid, intersect.DefaultDelta, nil)
		cnt := int64(n)
		for _, cv := range tup {
			if intersect.Contains(buf1[:n], cv) {
				cnt--
			}
		}
		blockCount[mask] = cnt
	}
	// Sum over set partitions of the buds.
	var total int64
	var rec func(remaining uint32, product int64, sign int64)
	rec = func(remaining uint32, product, sign int64) {
		if remaining == 0 {
			total += sign * product
			return
		}
		first := remaining & -remaining
		rest := remaining &^ first
		// Enumerate blocks containing `first`: first ∪ (subset of rest).
		for sub := rest; ; sub = (sub - 1) & rest {
			block := first | sub
			size := popcount32(block)
			w := factorial(size - 1)
			s := sign
			if size%2 == 0 {
				s = -s
			}
			rec(remaining&^block, product*blockCount[block], s*w)
			if sub == 0 {
				break
			}
		}
	}
	rec(uint32(1<<uint(k))-1, 1, 1)
	if total < 0 {
		return 0 // numerically impossible, but guard division semantics
	}
	return uint64(total)
}

func orderedEdge(a, b pattern.Vertex) [2]pattern.Vertex {
	if a > b {
		a, b = b, a
	}
	return [2]pattern.Vertex{a, b}
}

func popcount32(x uint32) int64 {
	var n int64
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func factorial(n int64) int64 {
	f := int64(1)
	for i := int64(2); i <= n; i++ {
		f *= i
	}
	return f
}
