// Package admission is the process-wide resource governor shared by
// concurrent enumeration runs: a FIFO-fair elastic worker-slot budget,
// a byte-accounted memory budget (enforced through internal/arena
// limiters), and the stall-watchdog configuration the parallel
// scheduler runs against per-worker progress heartbeats.
//
// The slot protocol: every admitted query is guaranteed one slot (FIFO
// order, so no query starves behind later arrivals), acquires up to
// its requested worker count opportunistically at admission, and
// returns surplus slots at scheduling boundaries while other queries
// wait. A query that cannot get its guaranteed slot before its
// admission deadline fails fast with ErrOverloaded instead of piling
// onto an oversubscribed host.
package admission

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"light/internal/arena"
	"light/internal/faultpoint"
)

// ErrOverloaded is returned by Admit when the guaranteed worker slot
// does not free up before the admission deadline — the governor's
// load-shedding signal.
var ErrOverloaded = errors.New("admission: overloaded, no worker slot before deadline")

// ErrStalled is the error a run is cancelled with when the stall
// watchdog fires and cancellation-on-stall is enabled.
var ErrStalled = errors.New("admission: run cancelled by stall watchdog")

// Config configures a Governor.
type Config struct {
	// Slots is the total worker-slot budget shared by every admitted
	// query; defaults to GOMAXPROCS. The governor guarantees one slot
	// per admitted query, so at most Slots queries run at once.
	Slots int
	// MemoryBudget caps the total candidate-arena bytes of all runs
	// admitted through this governor (0 = unlimited). Per-run budgets
	// nest under it.
	MemoryBudget int64
	// StallInterval is the watchdog sampling period (default 1s).
	StallInterval time.Duration
	// StallPatience is how many consecutive intervals a busy worker may
	// go without progress before the watchdog fires (default 5).
	StallPatience int
	// CancelOnStall makes a fired watchdog cooperatively cancel the
	// stalled run (which then returns ErrStalled) instead of only
	// recording the diagnostic.
	CancelOnStall bool
	// DisableWatchdog turns the stall watchdog off entirely.
	DisableWatchdog bool
}

// WatchdogConfig is the per-run stall-watchdog parameterization the
// parallel scheduler consumes: sample worker heartbeats every
// Interval, fire after Patience intervals without progress, and
// optionally cancel the run.
type WatchdogConfig struct {
	Interval time.Duration
	Patience int
	Cancel   bool
}

// waiter is one query blocked in Admit, woken by slot handoff.
type waiter struct {
	ch      chan struct{} // closed on grant
	granted bool
}

// Governor is the shared resource governor. Construct with New; the
// zero value is not usable. All methods are safe for concurrent use.
type Governor struct {
	cfg Config
	mem *arena.Limiter // nil when MemoryBudget is 0

	mu      sync.Mutex
	free    int
	waiters []*waiter
	active  map[*Admission]struct{}

	// needy mirrors len(waiters) > 0 so the scheduler's shed check can
	// bail without the lock on the (common) uncontended path.
	needy atomic.Bool

	admitted  atomic.Uint64 // queries admitted (observability)
	timeouts  atomic.Uint64 // admissions that failed with ErrOverloaded
	handoffs  atomic.Uint64 // slots handed directly to a FIFO waiter
}

// New returns a Governor with cfg, applying defaults.
func New(cfg Config) *Governor {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.StallInterval <= 0 {
		cfg.StallInterval = time.Second
	}
	if cfg.StallPatience <= 0 {
		cfg.StallPatience = 5
	}
	return &Governor{
		cfg:    cfg,
		mem:    arena.NewLimiter(cfg.MemoryBudget, nil),
		free:   cfg.Slots,
		active: map[*Admission]struct{}{},
	}
}

// Slots returns the governor's total worker-slot budget.
func (g *Governor) Slots() int { return g.cfg.Slots }

// MemLimiter returns the governor's process-wide memory limiter (nil
// when unlimited); per-run limiters chain under it.
func (g *Governor) MemLimiter() *arena.Limiter { return g.mem }

// Watchdog returns the stall-watchdog configuration admitted runs
// should start their watchdog with, or nil when disabled.
func (g *Governor) Watchdog() *WatchdogConfig {
	if g.cfg.DisableWatchdog {
		return nil
	}
	return &WatchdogConfig{
		Interval: g.cfg.StallInterval,
		Patience: g.cfg.StallPatience,
		Cancel:   g.cfg.CancelOnStall,
	}
}

// ActiveQueries returns the number of currently admitted runs.
func (g *Governor) ActiveQueries() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.active)
}

// MemoryInUse returns the bytes currently reserved against the
// governor's memory budget.
func (g *Governor) MemoryInUse() int64 { return g.mem.Used() }

// Timeouts returns how many admissions failed with ErrOverloaded.
func (g *Governor) Timeouts() uint64 { return g.timeouts.Load() }

// Admit blocks until the query's guaranteed worker slot is available
// (FIFO order among waiters), then opportunistically grabs up to
// want-1 additional slots that no earlier waiter needs. It fails with
// ErrOverloaded when timeout elapses first (timeout <= 0 waits until
// ctx is done), or ctx.Err() on cancellation. The returned Admission
// must be Closed when the run ends.
func (g *Governor) Admit(ctx context.Context, want int, timeout time.Duration) (*Admission, error) {
	if err := faultpoint.Hit(faultpoint.PointSlotGrant); err != nil {
		return nil, fmt.Errorf("admission: slot grant: %w", err)
	}
	if want < 1 {
		want = 1
	}
	start := time.Now()

	g.mu.Lock()
	if g.free > 0 && len(g.waiters) == 0 {
		g.free--
		a := g.finishAdmitLocked(want, 0)
		g.mu.Unlock()
		return a, nil
	}
	w := &waiter{ch: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.needy.Store(true)
	notify := g.notifyFuncsLocked()
	g.mu.Unlock()

	// Tell every running admission the queue is non-empty, so pools
	// holding surplus slots re-check their shed condition instead of
	// keeping idle workers parked on slots a waiter needs. Called
	// outside g.mu: the notify functions take scheduler locks.
	for _, f := range notify {
		f()
	}

	var timer *time.Timer
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}

	select {
	case <-w.ch:
		g.mu.Lock()
		a := g.finishAdmitLocked(want, time.Since(start))
		g.mu.Unlock()
		return a, nil
	case <-timeoutC:
		if g.abandonWaiter(w) {
			g.timeouts.Add(1)
			return nil, fmt.Errorf("%w (waited %v)", ErrOverloaded, time.Since(start).Round(time.Millisecond))
		}
		// Granted in the race window: accept the slot after all.
		g.mu.Lock()
		a := g.finishAdmitLocked(want, time.Since(start))
		g.mu.Unlock()
		return a, nil
	case <-done:
		if g.abandonWaiter(w) {
			return nil, ctx.Err()
		}
		g.mu.Lock()
		a := g.finishAdmitLocked(want, time.Since(start))
		g.mu.Unlock()
		a.Close()
		return nil, ctx.Err()
	}
}

// finishAdmitLocked builds the Admission for a query that now holds
// its guaranteed slot, grabbing surplus slots opportunistically —
// never over the heads of queued waiters.
func (g *Governor) finishAdmitLocked(want int, waited time.Duration) *Admission {
	a := &Admission{g: g, held: 1, waited: waited}
	if len(g.waiters) == 0 {
		extra := want - 1
		if extra > g.free {
			extra = g.free
		}
		g.free -= extra
		a.held += extra
	}
	a.granted = a.held
	g.active[a] = struct{}{}
	g.admitted.Add(1)
	return a
}

// abandonWaiter removes w from the queue if it has not been granted;
// it reports whether the abandonment won (false means the slot arrived
// first and the caller owns it).
func (g *Governor) abandonWaiter(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return false
	}
	for i, q := range g.waiters {
		if q == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			break
		}
	}
	if len(g.waiters) == 0 {
		g.needy.Store(false)
	}
	return true
}

// releaseSlotLocked returns one slot to the pool, handing it directly
// to the FIFO head when someone is waiting (direct handoff keeps the
// order fair — a freed slot can never be barged by a later arrival).
func (g *Governor) releaseSlotLocked() {
	if len(g.waiters) > 0 {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		if len(g.waiters) == 0 {
			g.needy.Store(false)
		}
		w.granted = true
		g.handoffs.Add(1)
		close(w.ch)
		return
	}
	g.free++
}

// notifyFuncsLocked snapshots the notify callbacks of active
// admissions (called with g.mu held; the callbacks must be invoked
// after it is released).
func (g *Governor) notifyFuncsLocked() []func() {
	var fns []func()
	for a := range g.active {
		if f := a.notify; f != nil {
			fns = append(fns, f)
		}
	}
	return fns
}

// Admission is one query's handle on the governor: the slots it holds
// and its admission-wait observability. The zero value and nil are
// inert (TryShed and Close no-op), so ungoverned runs need no
// branching.
type Admission struct {
	g       *Governor
	waited  time.Duration
	granted int // slots held at admission (peak)

	// held and shed are guarded by g.mu.
	held int
	shed int
	// notify, set once before the run starts (SetNotify), is called by
	// the governor when a new waiter enqueues.
	notify func()

	closed bool
}

// Wait returns how long the query waited for its guaranteed slot.
func (a *Admission) Wait() time.Duration {
	if a == nil {
		return 0
	}
	return a.waited
}

// Granted returns the number of slots held immediately after
// admission (the run's initial worker-pool size).
func (a *Admission) Granted() int {
	if a == nil {
		return 0
	}
	return a.granted
}

// Slots returns the slots currently held.
func (a *Admission) Slots() int {
	if a == nil {
		return 0
	}
	a.g.mu.Lock()
	defer a.g.mu.Unlock()
	return a.held
}

// SetNotify registers f to run when the governor's wait queue becomes
// non-empty — the scheduler points it at its worker wakeup so parked
// workers re-check the shed condition promptly. Call before the run
// starts; f must not call back into the governor synchronously.
func (a *Admission) SetNotify(f func()) {
	if a == nil {
		return
	}
	a.g.mu.Lock()
	a.notify = f
	a.g.mu.Unlock()
}

// TryShed returns one surplus slot to the governor if queries are
// waiting and this admission holds more than its guaranteed slot. It
// reports whether a slot was shed — the calling worker should then
// retire. Allocation-free and cheap when no one is waiting (a single
// atomic load), so schedulers may call it at every boundary.
//
//light:hotpath
func (a *Admission) TryShed() bool {
	if a == nil || !a.g.needy.Load() {
		return false
	}
	return a.shedSlow()
}

// shedSlow is TryShed's contended path, split out so the hot path
// stays a single atomic load.
//
//lightvet:ignore hotpath -- runs only when queries are queued; the shed itself is the cold event being traded
func (a *Admission) shedSlow() bool {
	if err := faultpoint.Hit(faultpoint.PointSlotReturn); err != nil {
		// An injected fault skips this shed; the slot stays with the
		// run and is returned at Close.
		return false
	}
	a.g.mu.Lock()
	defer a.g.mu.Unlock()
	if a.closed || a.held <= 1 || len(a.g.waiters) == 0 {
		return false
	}
	a.held--
	a.shed++
	a.g.releaseSlotLocked()
	return true
}

// ReleaseTo returns surplus slots to the governor so the admission
// holds at most n (never below the guaranteed one). Callers that
// decide — e.g. on the memory-degradation ladder — to run fewer
// workers than admission granted must call this before the pool
// spawns: the shed protocol's last-worker guard (held > 1) is only
// sound while held slots == live workers, so slots with no worker
// behind them would both starve waiting queries and let every pool
// worker, including the last, TryShed and retire with work still
// queued. Safe on nil; a no-op when already at or below n.
func (a *Admission) ReleaseTo(n int) {
	if a == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	a.g.mu.Lock()
	defer a.g.mu.Unlock()
	for !a.closed && a.held > n {
		a.held--
		a.g.releaseSlotLocked()
	}
}

// Shed returns how many slots this admission has returned early.
func (a *Admission) Shed() int {
	if a == nil {
		return 0
	}
	a.g.mu.Lock()
	defer a.g.mu.Unlock()
	return a.shed
}

// Close returns every held slot and deregisters the admission.
// Idempotent; safe on nil.
func (a *Admission) Close() {
	if a == nil {
		return
	}
	a.g.mu.Lock()
	if a.closed {
		a.g.mu.Unlock()
		return
	}
	a.closed = true
	held := a.held
	a.held = 0
	for i := 0; i < held; i++ {
		a.g.releaseSlotLocked()
	}
	delete(a.g.active, a)
	a.g.mu.Unlock()
}
