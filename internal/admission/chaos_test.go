//go:build faultinject

// Chaos soak: concurrent governed queries with injected checkpoint-write
// failures and admission faultpoints. Build with -tags faultinject.
package admission_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"light"
	"light/internal/faultpoint"
)

// TestSoakCheckpointWriteFaults runs 4 concurrent checkpointing queries
// on a shared 2-slot Governor while the first 3 checkpoint writes fail.
// The retry-with-backoff path must absorb every injected failure: all
// queries finish with exact counts and the retries show up in the
// reports.
func TestSoakCheckpointWriteFaults(t *testing.T) {
	g, pats, refs := soakFixture(t)
	dir := t.TempDir()

	errInjected := errors.New("injected checkpoint failure")
	faultpoint.Set(faultpoint.PointCheckpointWrite, faultpoint.FailTimes(3, errInjected))
	defer faultpoint.Reset()

	gov := light.NewGovernor(light.GovernorConfig{Slots: 2, DisableWatchdog: true})

	const queries = 4
	var (
		wg      sync.WaitGroup
		reports [queries]*light.RunReport
		errs    [queries]error
		matches [queries]uint64
	)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			pi := q % len(pats)
			res, err := light.CountContext(context.Background(), g, pats[pi], light.Options{
				Workers:            2,
				Governor:           gov,
				CheckpointPath:     filepath.Join(dir, fmt.Sprintf("q%d.ckpt", q)),
				CheckpointInterval: 25 * time.Millisecond,
			})
			errs[q], matches[q], reports[q] = err, res.Matches, res.Report
		}(q)
	}
	wg.Wait()

	var retries uint64
	for q := 0; q < queries; q++ {
		if errs[q] != nil {
			t.Errorf("query %d: unexpected error %v", q, errs[q])
			continue
		}
		if want := refs[q%len(pats)]; matches[q] != want {
			t.Errorf("query %d: matches = %d, want %d", q, matches[q], want)
		}
		if reports[q] != nil {
			retries += reports[q].CheckpointRetries
		}
	}
	// FailTimes(3) injects exactly 3 transient failures process-wide;
	// each one must have been retried (never surfaced as a run error).
	if retries != 3 {
		t.Errorf("total CheckpointRetries = %d, want 3", retries)
	}
}

// TestAdmitFaultInjected fails the slot-grant faultpoint once: the
// governed run must surface the injected error before spawning any
// workers, and the governor must stay clean for the next admission.
func TestAdmitFaultInjected(t *testing.T) {
	g, pats, refs := soakFixture(t)

	errBoom := errors.New("injected admission failure")
	faultpoint.Set(faultpoint.PointSlotGrant, faultpoint.FailTimes(1, errBoom))
	defer faultpoint.Reset()

	gov := light.NewGovernor(light.GovernorConfig{Slots: 2, DisableWatchdog: true})
	opts := light.Options{Workers: 2, Governor: gov}

	if _, err := light.CountContext(context.Background(), g, pats[0], opts); !errors.Is(err, errBoom) {
		t.Fatalf("first run error = %v, want injected %v", err, errBoom)
	}
	if n := gov.ActiveQueries(); n != 0 {
		t.Fatalf("ActiveQueries = %d after failed admission, want 0", n)
	}
	res, err := light.CountContext(context.Background(), g, pats[0], opts)
	if err != nil {
		t.Fatalf("second run after injected failure: %v", err)
	}
	if res.Matches != refs[0] {
		t.Fatalf("second run matches = %d, want %d", res.Matches, refs[0])
	}
}

// TestWatchdogFireFaultSuppressed errors the watchdog-fire faultpoint so
// a genuinely stalled worker is never reported or cancelled: the run must
// still complete with the exact count and zero recorded stalls.
func TestWatchdogFireFaultSuppressed(t *testing.T) {
	g, pats, refs := soakFixture(t)

	faultpoint.Set(faultpoint.PointWatchdogFire, faultpoint.FailTimes(1<<30, errors.New("suppressed")))
	defer faultpoint.Reset()

	gov := light.NewGovernor(light.GovernorConfig{
		Slots:         2,
		StallInterval: 10 * time.Millisecond,
		StallPatience: 3,
		CancelOnStall: true, // would cancel the run if the fire were not suppressed
	})

	var once sync.Once
	var seen uint64
	res, err := light.EnumerateContext(context.Background(), g, pats[0],
		light.Options{Workers: 1, Governor: gov},
		func(m []light.VertexID) bool {
			once.Do(func() { time.Sleep(120 * time.Millisecond) })
			seen++
			return true
		})
	if err != nil {
		t.Fatalf("run error = %v, want nil (watchdog fire suppressed)", err)
	}
	if seen != refs[0] {
		t.Fatalf("visited %d matches, want %d", seen, refs[0])
	}
	if res.Report != nil && res.Report.WatchdogStalls != 0 {
		t.Fatalf("WatchdogStalls = %d, want 0 when firing is suppressed", res.Report.WatchdogStalls)
	}
}
