// Multi-query soak: N concurrent runs sharing one Governor, exercising
// FIFO-fair admission, elastic slot return, the stall watchdog, and
// goroutine hygiene end to end. It lives in package admission_test so
// it can drive the public light API against this package's governor.
package admission_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"light"
)

// soakFixture builds the shared graph, patterns, and serial reference
// counts for the soak tests. -short shrinks the graph so verify.sh's
// quick pass stays fast.
func soakFixture(t *testing.T) (*light.Graph, []*light.Pattern, []uint64) {
	t.Helper()
	size := 3000
	if testing.Short() {
		size = 800
	}
	g := light.GenerateBarabasiAlbert(size, 6, 29)
	var pats []*light.Pattern
	for _, name := range []string{"triangle", "square"} {
		p, err := light.PatternByName(name)
		if err != nil {
			t.Fatalf("PatternByName(%s): %v", name, err)
		}
		pats = append(pats, p)
	}
	refs := make([]uint64, len(pats))
	for i, p := range pats {
		res, err := light.Count(g, p, light.Options{})
		if err != nil {
			t.Fatalf("reference Count(%s): %v", p.Name(), err)
		}
		refs[i] = res.Matches
	}
	return g, pats, refs
}

// settleGoroutines polls until the process goroutine count returns to
// at most base+slack, failing with a full stack dump if it never does.
func settleGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not settle: %d now vs %d before\n%s", n, base, buf)
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGovernorMultiQuerySoak runs 8 concurrent queries on a 4-slot
// Governor. Every query must be admitted (FIFO fairness: none starve),
// produce its exact serial count, and leave no goroutines behind. One
// query carries a deliberately stalled visitor; the watchdog (observe
// mode) must record the stall without disturbing the count.
func TestGovernorMultiQuerySoak(t *testing.T) {
	g, pats, refs := soakFixture(t)

	before := runtime.NumGoroutine()
	gov := light.NewGovernor(light.GovernorConfig{
		Slots:         4,
		StallInterval: 15 * time.Millisecond,
		StallPatience: 3,
		// Observe-only: stalled queries finish, with the stall on record.
	})

	const queries = 8
	const stallQuery = 5 // this one drags its feet mid-enumeration
	var (
		wg      sync.WaitGroup
		results [queries]light.Result
		errs    [queries]error
	)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			opts := light.Options{
				Workers:  1 + q%4,
				Governor: gov,
			}
			pi := q % len(pats)
			if q == stallQuery {
				var (
					once sync.Once
					seen atomic.Uint64
				)
				_, errs[q] = light.EnumerateContext(context.Background(), g, pats[pi], opts,
					func(m []light.VertexID) bool {
						once.Do(func() { time.Sleep(150 * time.Millisecond) })
						seen.Add(1)
						return true
					})
				results[q].Matches = seen.Load()
				return
			}
			results[q], errs[q] = light.CountContext(context.Background(), g, pats[pi], opts)
		}(q)
	}
	wg.Wait()

	for q := 0; q < queries; q++ {
		if errs[q] != nil {
			t.Errorf("query %d: unexpected error %v", q, errs[q])
			continue
		}
		if want := refs[q%len(pats)]; results[q].Matches != want {
			t.Errorf("query %d: matches = %d, want %d", q, results[q].Matches, want)
		}
	}
	if n := gov.ActiveQueries(); n != 0 {
		t.Errorf("ActiveQueries = %d after all runs finished, want 0", n)
	}
	if used := gov.MemoryInUse(); used != 0 {
		t.Errorf("MemoryInUse = %d after all runs finished, want 0", used)
	}
	settleGoroutines(t, before, 3)
}

// TestGovernorSoakSequentialWaves admits more waves of queries than
// slots, serially per goroutine, to shake out slot-accounting drift
// across many admit/close cycles.
func TestGovernorSoakSequentialWaves(t *testing.T) {
	g, pats, refs := soakFixture(t)

	waves := 3
	if testing.Short() {
		waves = 2
	}
	gov := light.NewGovernor(light.GovernorConfig{Slots: 2, DisableWatchdog: true})

	var wg sync.WaitGroup
	errCh := make(chan error, 4*waves)
	for lane := 0; lane < 4; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for w := 0; w < waves; w++ {
				pi := (lane + w) % len(pats)
				res, err := light.CountContext(context.Background(), g, pats[pi],
					light.Options{Workers: 2, Governor: gov})
				if err != nil {
					errCh <- fmt.Errorf("lane %d wave %d: %v", lane, w, err)
					return
				}
				if res.Matches != refs[pi] {
					errCh <- fmt.Errorf("lane %d wave %d: matches = %d, want %d", lane, w, res.Matches, refs[pi])
					return
				}
			}
		}(lane)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := gov.ActiveQueries(); n != 0 {
		t.Errorf("ActiveQueries = %d after all waves, want 0", n)
	}
}
