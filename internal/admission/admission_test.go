package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDefaults(t *testing.T) {
	g := New(Config{})
	if g.Slots() < 1 {
		t.Fatalf("Slots = %d, want >= 1", g.Slots())
	}
	wd := g.Watchdog()
	if wd == nil || wd.Interval != time.Second || wd.Patience != 5 || wd.Cancel {
		t.Fatalf("default watchdog config = %+v", wd)
	}
	if New(Config{DisableWatchdog: true}).Watchdog() != nil {
		t.Fatalf("DisableWatchdog still returned a watchdog config")
	}
	if g.MemLimiter() != nil {
		t.Fatalf("zero MemoryBudget produced a limiter")
	}
	if New(Config{MemoryBudget: 1 << 20}).MemLimiter() == nil {
		t.Fatalf("MemoryBudget did not produce a limiter")
	}
}

func TestAdmitOpportunisticGrow(t *testing.T) {
	g := New(Config{Slots: 4})
	a, err := g.Admit(context.Background(), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if got := a.Granted(); got != 4 {
		t.Fatalf("Granted = %d, want all 4 slots", got)
	}
	b, err := g.Admit(context.Background(), 2, 10*time.Millisecond)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second Admit on a full governor: err = %v, want ErrOverloaded", err)
	}
	_ = b
	if g.Timeouts() != 1 {
		t.Fatalf("Timeouts = %d, want 1", g.Timeouts())
	}
}

func TestAdmitGuaranteedSlotEventually(t *testing.T) {
	g := New(Config{Slots: 2})
	a, _ := g.Admit(context.Background(), 2, 0)
	done := make(chan *Admission)
	go func() {
		b, err := g.Admit(context.Background(), 2, time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- b
	}()
	// Give the second admission time to enqueue, then free a slot.
	for g.ActiveQueries() == 1 && !g.needy.Load() {
		time.Sleep(time.Millisecond)
	}
	a.Close()
	b := <-done
	if b == nil {
		t.Fatal("waiter never granted")
	}
	if got := b.Granted(); got != 2 {
		t.Fatalf("Granted after full release = %d, want 2", got)
	}
	b.Close()
}

// TestFIFOFairness enqueues waiters in a known order and releases slots
// one at a time: grants must come back in arrival order — a freed slot
// is handed directly to the queue head, never barged.
func TestFIFOFairness(t *testing.T) {
	g := New(Config{Slots: 1})
	hold, err := g.Admit(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	const n = 5
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	admitted := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		// Enqueue deterministically: wait until waiter i is visibly in
		// the queue before starting waiter i+1.
		go func() {
			defer wg.Done()
			a, err := g.Admit(context.Background(), 1, 5*time.Second)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			admitted <- struct{}{}
			a.Close()
		}()
		waitForQueueLen(t, g, i+1)
	}

	hold.Close() // hand the slot down the queue, one Close at a time
	for i := 0; i < n; i++ {
		<-admitted
	}
	wg.Wait()

	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO 0..%d", order, n-1)
		}
	}
	if g.handoffs.Load() != n {
		t.Fatalf("handoffs = %d, want %d (every grant via direct handoff)", g.handoffs.Load(), n)
	}
}

func waitForQueueLen(t *testing.T, g *Governor, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		l := len(g.waiters)
		g.mu.Unlock()
		if l >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestTryShed(t *testing.T) {
	g := New(Config{Slots: 4})
	a, _ := g.Admit(context.Background(), 4, 0)
	if a.TryShed() {
		t.Fatalf("TryShed with empty queue shed a slot")
	}

	notified := make(chan struct{}, 1)
	a.SetNotify(func() {
		select {
		case notified <- struct{}{}:
		default:
		}
	})

	got := make(chan *Admission)
	go func() {
		b, err := g.Admit(context.Background(), 1, time.Second)
		if err != nil {
			t.Error(err)
		}
		got <- b
	}()
	select {
	case <-notified:
	case <-time.After(time.Second):
		t.Fatal("notify callback never fired for a new waiter")
	}
	if !a.TryShed() {
		t.Fatalf("TryShed with a queued waiter did not shed")
	}
	b := <-got
	if a.Slots() != 3 || a.Shed() != 1 {
		t.Fatalf("after shed: Slots = %d, Shed = %d", a.Slots(), a.Shed())
	}
	// Down to the guaranteed slot, shedding must stop.
	a.g.mu.Lock()
	a.held = 1
	a.g.mu.Unlock()
	b2 := make(chan error, 1)
	go func() {
		c, err := g.Admit(context.Background(), 1, 50*time.Millisecond)
		if c != nil {
			c.Close()
		}
		b2 <- err
	}()
	waitForQueueLen(t, g, 1)
	if a.TryShed() {
		t.Fatalf("TryShed gave away the guaranteed slot")
	}
	<-b2
	b.Close()
	a.Close()
}

// TestReleaseTo: a run that decides to use fewer workers than admission
// granted (the memory-degradation ladder) returns the surplus
// immediately, restoring the held-slots == live-workers invariant the
// shed protocol's last-worker guard depends on — with stale surplus
// slots, every pool worker including the last could shed and retire
// mid-run.
func TestReleaseTo(t *testing.T) {
	g := New(Config{Slots: 4})
	a, _ := g.Admit(context.Background(), 4, 0)
	a.ReleaseTo(1)
	if a.Slots() != 1 || a.Granted() != 4 {
		t.Fatalf("after ReleaseTo(1): Slots = %d, Granted = %d, want 1 and 4", a.Slots(), a.Granted())
	}
	// The returned slots are immediately admittable — no shedding or
	// Close required.
	b, err := g.Admit(context.Background(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Granted() != 3 {
		t.Fatalf("released slots not granted to the next query: Granted = %d, want 3", b.Granted())
	}
	// With the invariant restored, a queued waiter cannot pry away the
	// last worker's slot.
	werr := make(chan error, 1)
	go func() {
		c, err := g.Admit(context.Background(), 1, 50*time.Millisecond)
		if c != nil {
			c.Close()
		}
		werr <- err
	}()
	waitForQueueLen(t, g, 1)
	if a.TryShed() {
		t.Fatalf("TryShed gave away the guaranteed slot after ReleaseTo")
	}
	if err := <-werr; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("waiter err = %v, want ErrOverloaded", err)
	}
	// No-ops: at or above held, clamped below the guaranteed slot, nil.
	a.ReleaseTo(5)
	if a.Slots() != 1 {
		t.Fatalf("ReleaseTo above held changed Slots to %d", a.Slots())
	}
	b.ReleaseTo(0)
	if b.Slots() != 1 {
		t.Fatalf("ReleaseTo(0) dropped below the guaranteed slot: Slots = %d", b.Slots())
	}
	(*Admission)(nil).ReleaseTo(1)
	a.Close()
	b.Close()
	a.ReleaseTo(0) // after Close: must not double-release
	g.mu.Lock()
	free := g.free
	g.mu.Unlock()
	if free != 4 {
		t.Fatalf("free = %d after both Closes, want 4", free)
	}
}

func TestCloseIdempotent(t *testing.T) {
	g := New(Config{Slots: 3})
	a, _ := g.Admit(context.Background(), 3, 0)
	a.Close()
	a.Close()
	g.mu.Lock()
	free := g.free
	g.mu.Unlock()
	if free != 3 {
		t.Fatalf("free = %d after double Close, want 3", free)
	}
	if g.ActiveQueries() != 0 {
		t.Fatalf("ActiveQueries = %d after Close", g.ActiveQueries())
	}
}

func TestAdmitContextCancelled(t *testing.T) {
	g := New(Config{Slots: 1})
	a, _ := g.Admit(context.Background(), 1, 0)
	defer a.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Admit(ctx, 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abandoned waiter must not linger in the queue.
	g.mu.Lock()
	l := len(g.waiters)
	g.mu.Unlock()
	if l != 0 {
		t.Fatalf("abandoned waiter left in queue")
	}
}

func TestNilAdmissionInert(t *testing.T) {
	var a *Admission
	if a.TryShed() || a.Slots() != 0 || a.Granted() != 0 || a.Shed() != 0 || a.Wait() != 0 {
		t.Fatalf("nil Admission reported state")
	}
	a.Close()
	a.SetNotify(func() {})
}
