package diffcheck

import (
	"sort"
	"strconv"
	"strings"
)

// The reference oracle is a deliberately naive backtracking matcher
// that shares no code with the engine: adjacency is a slice of sorted
// neighbor lists built directly from an edge list, candidate generation
// is "neighbors of one assigned anchor", and there is no symmetry
// breaking, no candidate caching, no plan. It counts *embeddings*
// (injective edge-preserving maps, all |Aut(P)| of them per subgraph)
// and optionally collects the set of distinct image edge sets, which
// identifies subgraphs up to automorphism. The engine's symmetry-broken
// match count must then satisfy matches × |Aut(P)| == embeddings, and
// its emitted mappings must cover exactly the oracle's image sets.

type oracleResult struct {
	Embeddings uint64
	Keys       map[string]bool // image-edge-set keys; nil unless requested
	Capped     bool            // true when the embedding cap was hit
}

type oracle struct {
	adj    [][]uint32 // data adjacency, sorted
	pn     int
	padj   [][]int  // pattern adjacency
	pedges [][2]int // pattern edges, for image keys
	order  []int    // BFS assignment order over pattern vertices
	pos    []int    // pos[u] = index of u in order, -1 if later
	limit  uint64
	keys   map[string]bool
	count  uint64
	capped bool
	assign []uint32
	used   map[uint32]bool
}

// countEmbeddings runs the reference matcher. graphN/graphEdges
// describe the data graph (in whatever labeling the caller wants keys
// expressed), patN/patEdges the pattern. The pattern must be connected.
func countEmbeddings(graphN int, graphEdges [][2]uint32, patN int, patEdges [][2]int, limit uint64, collectKeys bool) oracleResult {
	o := &oracle{
		adj:    make([][]uint32, graphN),
		pn:     patN,
		padj:   make([][]int, patN),
		pedges: patEdges,
		limit:  limit,
		assign: make([]uint32, patN),
		used:   make(map[uint32]bool, patN),
	}
	for _, e := range graphEdges {
		o.adj[e[0]] = append(o.adj[e[0]], e[1])
		o.adj[e[1]] = append(o.adj[e[1]], e[0])
	}
	for i := range o.adj {
		sort.Slice(o.adj[i], func(a, b int) bool { return o.adj[i][a] < o.adj[i][b] })
		// Dedupe: callers may pass edge lists with duplicates (autCount
		// feeds raw pattern edges back in as a data graph), and a
		// duplicated neighbor would double-count every embedding through
		// it.
		w := 0
		for j, v := range o.adj[i] {
			if j == 0 || v != o.adj[i][j-1] {
				o.adj[i][w] = v
				w++
			}
		}
		o.adj[i] = o.adj[i][:w]
	}
	seenEdge := map[[2]int]bool{}
	for _, e := range patEdges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		if a == b || seenEdge[[2]int{a, b}] {
			continue
		}
		seenEdge[[2]int{a, b}] = true
		o.padj[a] = append(o.padj[a], b)
		o.padj[b] = append(o.padj[b], a)
	}
	// BFS assignment order from pattern vertex 0; every later vertex has
	// an already-assigned neighbor to anchor its candidate set.
	o.pos = make([]int, patN)
	for i := range o.pos {
		o.pos[i] = -1
	}
	o.order = []int{0}
	o.pos[0] = 0
	for qi := 0; qi < len(o.order); qi++ {
		for _, w := range o.padj[o.order[qi]] {
			if o.pos[w] < 0 {
				o.pos[w] = len(o.order)
				o.order = append(o.order, w)
			}
		}
	}
	if collectKeys {
		o.keys = map[string]bool{}
	}
	if len(o.order) == patN { // connected; else caller screens with patternConnected
		o.extend(0)
	}
	return oracleResult{Embeddings: o.count, Keys: o.keys, Capped: o.capped}
}

func (o *oracle) extend(i int) {
	if o.capped {
		return
	}
	if i == o.pn {
		o.count++
		if o.count > o.limit {
			o.capped = true
			return
		}
		if o.keys != nil {
			o.keys[o.imageKey()] = true
		}
		return
	}
	u := o.order[i]
	var cands []uint32
	if i == 0 {
		cands = make([]uint32, len(o.adj))
		for v := range o.adj {
			cands[v] = uint32(v)
		}
	} else {
		// Anchor on any already-assigned pattern neighbor; BFS order
		// guarantees one exists.
		for _, w := range o.padj[u] {
			if o.pos[w] < i {
				cands = o.adj[o.assign[w]]
				break
			}
		}
	}
	for _, v := range cands {
		if o.used[v] {
			continue
		}
		ok := true
		for _, w := range o.padj[u] {
			if o.pos[w] < i && !o.hasEdge(o.assign[w], v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		o.assign[u] = v
		o.used[v] = true
		o.extend(i + 1)
		delete(o.used, v)
		if o.capped {
			return
		}
	}
}

func (o *oracle) hasEdge(a, b uint32) bool {
	nb := o.adj[a]
	j := sort.Search(len(nb), func(k int) bool { return nb[k] >= b })
	return j < len(nb) && nb[j] == b
}

// imageKey canonicalizes the current embedding's image edge set. Two
// embeddings produce the same key iff they differ by a pattern
// automorphism, so the key set identifies subgraphs.
func (o *oracle) imageKey() string {
	return imageKey(o.pedges, func(u int) uint32 { return o.assign[u] })
}

// imageKey renders the image of the pattern edge set under the mapping
// as a canonical string: normalized endpoint pairs, sorted, joined.
// Shared by the oracle and by RunCase's check of engine-emitted
// mappings, so both sides canonicalize identically.
func imageKey(pedges [][2]int, mapTo func(u int) uint32) string {
	pairs := make([][2]uint32, 0, len(pedges))
	for _, e := range pedges {
		x, y := mapTo(e[0]), mapTo(e[1])
		if x > y {
			x, y = y, x
		}
		pairs = append(pairs, [2]uint32{x, y})
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	var sb strings.Builder
	for i, pr := range pairs {
		if i > 0 && pairs[i-1] == pr {
			continue // duplicate pattern edges map to one image edge
		}
		sb.WriteString(strconv.FormatUint(uint64(pr[0]), 10))
		sb.WriteByte('-')
		sb.WriteString(strconv.FormatUint(uint64(pr[1]), 10))
		sb.WriteByte(';')
	}
	return sb.String()
}

// autCount counts the pattern's automorphisms with the same reference
// matcher, by embedding the pattern into itself: an injective
// edge-preserving self-map of a finite graph is a bijection whose
// inverse also preserves edges, i.e. an automorphism. Independent of
// pattern.Automorphisms.
func autCount(patN int, patEdges [][2]int) uint64 {
	self := make([][2]uint32, len(patEdges))
	for i, e := range patEdges {
		self[i] = [2]uint32{uint32(e[0]), uint32(e[1])}
	}
	r := countEmbeddings(patN, self, patN, patEdges, 1<<40, false)
	return r.Embeddings
}
