package diffcheck

import (
	"fmt"
	"strings"
)

// Shrink greedily minimizes a failing case while fails(c) stays true:
// it repeatedly tries deleting a graph vertex, a pattern vertex, a
// graph edge, or a pattern edge (in that order — vertex deletions
// shrink fastest), accepting any mutation that still fails, until a
// full pass accepts nothing or the evaluation budget runs out. The
// predicate is a parameter so tests can shrink against synthetic bugs;
// production callers use ShrinkDiscrepancy.
func Shrink(c Case, fails func(Case) bool, budget int) Case {
	evals := 0
	try := func(m Case) bool {
		if evals >= budget {
			return false
		}
		if m.Validate() != nil {
			return false
		}
		evals++
		return fails(m)
	}
	for {
		improved := false
		for v := c.GraphN - 1; v >= 0 && c.GraphN > 1; v-- {
			if m := removeGraphVertex(c, uint32(v)); try(m) {
				c, improved = m, true
			}
		}
		for v := c.PatternN - 1; v >= 0 && c.PatternN > 2; v-- {
			if m := removePatternVertex(c, v); try(m) {
				c, improved = m, true
			}
		}
		for i := len(c.GraphEdges) - 1; i >= 0; i-- {
			if m := removeGraphEdge(c, i); try(m) {
				c, improved = m, true
			}
		}
		for i := len(c.PatternEdges) - 1; i >= 0; i-- {
			if m := removePatternEdge(c, i); try(m) {
				c, improved = m, true
			}
		}
		if !improved || evals >= budget {
			return c
		}
	}
}

// ShrinkDiscrepancy minimizes the case behind d using the quick matrix
// (any discrepancy counts, not just the original stage — standard
// shrinking practice) and returns the reduced case. The original is
// returned unchanged when no smaller failing case is found.
func ShrinkDiscrepancy(d *Discrepancy, cfg Config) Case {
	quick := cfg
	quick.Quick = true
	if quick.MaxEmbeddings == 0 || quick.MaxEmbeddings > 100000 {
		quick.MaxEmbeddings = 100000
	}
	// A delta-stage discrepancy found in full mode (where the stage runs
	// regardless of cfg.Delta) must stay reproducible under the quick
	// matrix, or the shrinker would never see it fail.
	if strings.HasPrefix(d.Stage, "delta/") {
		quick.Delta = true
	}
	c := Shrink(d.Case, func(m Case) bool {
		_, md := RunCase(m, quick)
		return md != nil
	}, 600)
	if c.GraphN != d.Case.GraphN || len(c.GraphEdges) != len(d.Case.GraphEdges) ||
		c.PatternN != d.Case.PatternN || len(c.PatternEdges) != len(d.Case.PatternEdges) {
		c.Family = "shrunk:" + d.Case.Family
	}
	return c
}

func removeGraphVertex(c Case, v uint32) Case {
	m := c
	m.GraphN = c.GraphN - 1
	m.GraphEdges = nil
	for _, e := range c.GraphEdges {
		if e[0] == v || e[1] == v {
			continue
		}
		a, b := e[0], e[1]
		if a > v {
			a--
		}
		if b > v {
			b--
		}
		m.GraphEdges = append(m.GraphEdges, [2]uint32{a, b})
	}
	return m
}

func removePatternVertex(c Case, v int) Case {
	m := c
	m.PatternN = c.PatternN - 1
	m.PatternEdges = nil
	for _, e := range c.PatternEdges {
		if e[0] == v || e[1] == v {
			continue
		}
		a, b := e[0], e[1]
		if a > v {
			a--
		}
		if b > v {
			b--
		}
		m.PatternEdges = append(m.PatternEdges, [2]int{a, b})
	}
	return m
}

func removeGraphEdge(c Case, i int) Case {
	m := c
	m.GraphEdges = append(append([][2]uint32{}, c.GraphEdges[:i]...), c.GraphEdges[i+1:]...)
	return m
}

func removePatternEdge(c Case, i int) Case {
	m := c
	m.PatternEdges = append(append([][2]int{}, c.PatternEdges[:i]...), c.PatternEdges[i+1:]...)
	return m
}

// ReproTest renders the case as a self-contained Go test, ready to
// paste into internal/diffcheck, so a discrepancy found by the CLI or
// the fuzzer becomes a checked-in regression test verbatim.
func ReproTest(c Case) string {
	var sb strings.Builder
	sb.WriteString("func TestDiffcheckRepro(t *testing.T) {\n")
	fmt.Fprintf(&sb, "\tc := diffcheck.Case{\n")
	fmt.Fprintf(&sb, "\t\tFamily: %q, Seed: %d,\n", c.Family, c.Seed)
	fmt.Fprintf(&sb, "\t\tGraphN: %d,\n", c.GraphN)
	sb.WriteString("\t\tGraphEdges: [][2]uint32{")
	for i, e := range c.GraphEdges {
		if i%8 == 0 {
			sb.WriteString("\n\t\t\t")
		}
		fmt.Fprintf(&sb, "{%d, %d}, ", e[0], e[1])
	}
	sb.WriteString("\n\t\t},\n")
	fmt.Fprintf(&sb, "\t\tPatternN: %d,\n", c.PatternN)
	sb.WriteString("\t\tPatternEdges: [][2]int{")
	for i, e := range c.PatternEdges {
		if i%8 == 0 {
			sb.WriteString("\n\t\t\t")
		}
		fmt.Fprintf(&sb, "{%d, %d}, ", e[0], e[1])
	}
	sb.WriteString("\n\t\t},\n\t}\n")
	sb.WriteString("\tif _, d := diffcheck.RunCase(c, diffcheck.Config{}); d != nil {\n")
	sb.WriteString("\t\tt.Fatal(d)\n\t}\n}\n")
	return sb.String()
}
