package diffcheck

import (
	"testing"
)

// FuzzDifferential decodes arbitrary bytes into a (pattern, graph)
// case and runs the quick oracle matrix: any disagreement between the
// reference and the engine is a crash. The decoder always produces a
// connected pattern (spanning tree first), so nearly every input
// exercises real enumeration instead of dying in validation.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{4, 10, 1, 2, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{3, 6, 0, 0, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{7, 20, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, ok := decodeCase(data)
		if !ok {
			return
		}
		cfg := Config{Quick: true, MaxEmbeddings: 50000, Lanes: true, Delta: true}
		_, d := RunCase(c, cfg)
		if d != nil {
			t.Fatalf("discrepancy:\n%v\n\nminimal repro:\n%s", d, ReproTest(ShrinkDiscrepancy(d, cfg)))
		}
	})
}

// decodeCase maps raw fuzz bytes onto a valid case: byte 0 sizes the
// pattern (3–7), byte 1 the graph (4–35), and the rest alternate
// between pattern chords and graph edges, with a spanning tree over
// both laid down first so everything stays connected and in range.
func decodeCase(data []byte) (Case, bool) {
	if len(data) < 6 {
		return Case{}, false
	}
	pn := 3 + int(data[0])%5
	gn := 4 + int(data[1])%32
	c := Case{Family: "fuzz", GraphN: gn, PatternN: pn}
	// Pattern spanning tree: vertex v attaches to data-chosen earlier
	// vertex.
	pos := 2
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := int(data[pos])
		pos++
		return b
	}
	for v := 1; v < pn; v++ {
		c.PatternEdges = append(c.PatternEdges, [2]int{next() % v, v})
	}
	// Graph path backbone keeps the data graph from degenerating to
	// isolated vertices.
	for v := 1; v < gn; v++ {
		c.GraphEdges = append(c.GraphEdges, [2]uint32{uint32(v - 1), uint32(v)})
	}
	// Remaining bytes alternate: pattern chord, then graph chord pairs.
	for pos+2 < len(data) {
		pu, pv := next()%pn, next()%pn
		if pu != pv {
			c.PatternEdges = append(c.PatternEdges, [2]int{pu, pv})
		}
		gu, gv := next()%gn, next()%gn
		if gu != gv {
			c.GraphEdges = append(c.GraphEdges, [2]uint32{uint32(gu), uint32(gv)})
		}
	}
	return c, c.Validate() == nil
}
