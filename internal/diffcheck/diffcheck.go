package diffcheck

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"light/internal/baselines"
	"light/internal/bfsjoin"
	"light/internal/engine"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/parallel"
	"light/internal/pattern"
	"light/internal/plan"
	"light/internal/supervise"
)

// Config tunes a RunCase invocation.
type Config struct {
	// Quick trims the oracle matrix to the cheap core (one serial mode
	// cross-check, one kernel sweep entry, one parallel run, the
	// enumerate-set check). Used by the fuzz target and -short tests.
	Quick bool
	// Workers for the parallel runs (default 3 — odd, so chunk
	// boundaries don't align with the candidate counts).
	Workers int
	// MaxEmbeddings caps the brute-force reference; cases that exceed it
	// are skipped, not failed (default 300000).
	MaxEmbeddings uint64
	// TimeLimit bounds each baseline oracle run (default 30s). A
	// baseline that reports a budget error is skipped, not failed.
	TimeLimit time.Duration
	// Lanes forces the lane-batch oracle stage (identical-pattern root
	// batch plus a mixed-spec batch, per-lane counters vs sequential
	// references) even in Quick mode; full mode always runs it.
	Lanes bool
	// Delta forces the edge-delta oracle stage (a seed-derived mutation
	// batch applied copy-on-write, checked against a fresh CSR rebuild
	// and the CountDelta identity) even in Quick mode; full mode always
	// runs it.
	Delta bool
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.MaxEmbeddings == 0 {
		cfg.MaxEmbeddings = 300000
	}
	if cfg.TimeLimit == 0 {
		cfg.TimeLimit = 30 * time.Second
	}
	return cfg
}

// Outcome summarizes a non-failing RunCase.
type Outcome struct {
	Skipped bool   // the case was not evaluated (reason says why)
	Reason  string // skip reason
	Ref     uint64 // reference match count (embeddings / |Aut|)
	Checks  int    // oracle comparisons that ran
}

// Discrepancy is a differential failure: some implementation disagreed
// with the reference on this case. It carries the case so the shrinker
// and repro renderer can pick it up directly.
type Discrepancy struct {
	Case   Case
	Stage  string // which comparison failed, e.g. "parallel/RootChunk/kernel=Hybrid"
	Want   uint64
	Got    uint64
	Detail string
}

// Error renders the discrepancy with enough context to reproduce it.
func (d *Discrepancy) Error() string {
	s := fmt.Sprintf("diffcheck: %s: got %d, want %d (family=%s seed=%d |V(G)|=%d |E(G)|=%d |V(P)|=%d |E(P)|=%d)",
		d.Stage, d.Got, d.Want, d.Case.Family, d.Case.Seed,
		d.Case.GraphN, len(d.Case.GraphEdges), d.Case.PatternN, len(d.Case.PatternEdges))
	if d.Detail != "" {
		s += ": " + d.Detail
	}
	return s
}

// engineVariant is one point in the kernel × TailCount × DegreeFilter
// cube.
type engineVariant struct {
	name string
	opts engine.Options
}

func kernelName(k intersect.Kind) string {
	switch k {
	case intersect.KindMerge:
		return "Merge"
	case intersect.KindMergeBlock:
		return "MergeBlock"
	case intersect.KindGalloping:
		return "Galloping"
	case intersect.KindHybrid:
		return "Hybrid"
	case intersect.KindHybridBlock:
		return "HybridBlock"
	case intersect.KindMergeBitmap:
		return "MergeBitmap"
	case intersect.KindHybridBitmap:
		return "HybridBitmap"
	}
	return fmt.Sprintf("Kind(%d)", k)
}

func variants(quick bool) []engineVariant {
	kernels := []intersect.Kind{
		intersect.KindMerge, intersect.KindMergeBlock, intersect.KindGalloping,
		intersect.KindHybrid, intersect.KindHybridBlock,
		intersect.KindMergeBitmap, intersect.KindHybridBitmap,
	}
	if quick {
		// The cheap core: the default kernel, the all-features-on corner
		// of the cube, and the bitmap-probe path.
		return []engineVariant{
			{"kernel=Merge", engine.Options{}},
			{"kernel=Hybrid,tc,df", engine.Options{Kernel: intersect.KindHybrid, TailCount: true, DegreeFilter: true}},
			{"kernel=HybridBitmap", engine.Options{Kernel: intersect.KindHybridBitmap}},
		}
	}
	var vs []engineVariant
	for _, k := range kernels {
		for _, tc := range []bool{false, true} {
			for _, df := range []bool{false, true} {
				name := "kernel=" + kernelName(k)
				if tc {
					name += ",tc"
				}
				if df {
					name += ",df"
				}
				vs = append(vs, engineVariant{name, engine.Options{Kernel: k, TailCount: tc, DegreeFilter: df}})
			}
		}
	}
	return vs
}

var schedulers = []struct {
	name string
	s    parallel.Scheduler
}{
	{"WorkStealing", parallel.WorkStealing},
	{"RootChunk", parallel.RootChunk},
	{"StaticPartition", parallel.StaticPartition},
}

// RunCase evaluates the full oracle matrix on one case. It returns a
// nil Discrepancy when every implementation agrees (or the case was
// skipped; see Outcome.Skipped), and the first disagreement otherwise.
func RunCase(c Case, cfg Config) (Outcome, *Discrepancy) {
	cfg = cfg.withDefaults()
	out := Outcome{}
	fail := func(stage string, want, got uint64, detail string) (Outcome, *Discrepancy) {
		return out, &Discrepancy{Case: c, Stage: stage, Want: want, Got: got, Detail: detail}
	}

	g, p, err := c.Build()
	if err != nil {
		out.Skipped, out.Reason = true, err.Error()
		return out, nil
	}
	// Differential graphs are tiny, far below the auto hub threshold, so
	// derive a small τ from the seed: most cases get indexed hubs (the
	// bitmap kernels' probe path), the rest keep the auto index and
	// exercise the list fallback.
	if c.Seed%4 != 0 {
		g.BuildHubIndex(1 + int(uint64(c.Seed)%7))
	}
	po := pattern.SymmetryBreaking(p)
	orders := plan.ConnectedOrders(p, po)
	if len(orders) == 0 {
		out.Skipped, out.Reason = true, "no connected enumeration order"
		return out, nil
	}

	// Reference: embeddings + image-edge-set keys on the *ordered*
	// graph's labels, so engine-emitted mappings compare directly.
	oe := graphEdges(g)
	ref := countEmbeddings(g.NumVertices(), oe, c.PatternN, c.PatternEdges, cfg.MaxEmbeddings, true)
	if ref.Capped {
		out.Skipped, out.Reason = true, fmt.Sprintf("reference exceeded %d embeddings", cfg.MaxEmbeddings)
		return out, nil
	}
	aut := autCount(c.PatternN, c.PatternEdges)
	if aut == 0 || ref.Embeddings%aut != 0 {
		return fail("oracle/aut-divisibility", 0, ref.Embeddings%aut,
			fmt.Sprintf("embeddings=%d not divisible by |Aut|=%d", ref.Embeddings, aut))
	}
	want := ref.Embeddings / aut
	out.Ref = want
	out.Checks++
	if got := uint64(len(ref.Keys)); got != want {
		// Self-check of the subgraph-identity argument: #distinct image
		// edge sets must equal embeddings/|Aut|.
		return fail("oracle/key-count", want, got, "distinct image edge sets != embeddings/|Aut|")
	}

	// Independent |Aut| cross-check against the pattern package.
	out.Checks++
	if got := uint64(len(p.Automorphisms())); got != aut {
		return fail("oracle/automorphisms", aut, got, "pattern.Automorphisms disagrees with self-embedding count")
	}

	pi := orders[int(uint64(c.Seed)%uint64(len(orders)))]

	// Serial plan modes.
	modes := []plan.Mode{plan.ModeLIGHT, plan.ModeSE}
	if !cfg.Quick {
		modes = append(modes, plan.ModeLM, plan.ModeMSC)
	}
	plans := map[plan.Mode]*plan.Plan{}
	for _, mode := range modes {
		pl, err := plan.Compile(p, po, pi, mode)
		if err != nil {
			return fail("compile/"+mode.Name(), want, 0, err.Error())
		}
		plans[mode] = pl
		res, err := engine.New(g, pl, engine.Options{}).Run(nil)
		if err != nil {
			return fail("serial/"+mode.Name(), want, 0, err.Error())
		}
		out.Checks++
		if res.Matches != want {
			return fail("serial/"+mode.Name(), want, res.Matches, "")
		}
	}
	light := plans[plan.ModeLIGHT]

	// In full mode, every remaining connected order must agree too (the
	// shrinker often reduces failures to order sensitivity).
	if !cfg.Quick {
		for oi, alt := range orders {
			if oi == int(uint64(c.Seed)%uint64(len(orders))) {
				continue
			}
			pl, err := plan.Compile(p, po, alt, plan.ModeLIGHT)
			if err != nil {
				return fail(fmt.Sprintf("compile/order[%d]", oi), want, 0, err.Error())
			}
			res, err := engine.New(g, pl, engine.Options{}).Run(nil)
			if err != nil {
				return fail(fmt.Sprintf("serial/order[%d]", oi), want, 0, err.Error())
			}
			out.Checks++
			if res.Matches != want {
				return fail(fmt.Sprintf("serial/order[%d]", oi), want, res.Matches, "")
			}
		}
	}

	// Kernel × TailCount × DegreeFilter cube, serial; each variant's
	// Result is kept as the twin for the parallel counter-equality check.
	vs := variants(cfg.Quick)
	serialRes := make([]engine.Result, len(vs))
	for i, v := range vs {
		res, err := engine.New(g, light, v.opts).Run(nil)
		if err != nil {
			return fail("serial/"+v.name, want, 0, err.Error())
		}
		out.Checks++
		if res.Matches != want {
			return fail("serial/"+v.name, want, res.Matches, "")
		}
		serialRes[i] = res
	}

	// Parallel: every scheduler × every variant, with exact counter
	// equality against the serial twin. Donated frames snapshot their
	// candidate sets, so Nodes/Comps/Stats are partition-independent.
	scheds := schedulers
	if cfg.Quick {
		scheds = schedulers[:1]
	}
	for _, sc := range scheds {
		for i, v := range vs {
			popts := parallel.Options{
				Engine:    v.opts,
				Workers:   cfg.Workers,
				Scheduler: sc.s,
				ChunkSize: 4,
				MinSplit:  2,
			}
			res, err := parallel.Run(g, light, popts, nil)
			if err != nil {
				return fail("parallel/"+sc.name+"/"+v.name, want, 0, err.Error())
			}
			out.Checks++
			if res.Matches != want {
				return fail("parallel/"+sc.name+"/"+v.name, want, res.Matches, "")
			}
			if d := counterDiff(serialRes[i], res.Result); d != "" {
				return fail("counters/"+sc.name+"/"+v.name, want, res.Matches, d)
			}
		}
	}

	// Lane-batch oracle: the same case run bit-parallel — a root-window
	// batch of identical-pattern lanes and a mixed-spec batch — with each
	// lane's attributed counters demanded equal to a sequential run.
	if cfg.Lanes || !cfg.Quick {
		var alt *plan.Plan
		if len(orders) > 1 {
			oi := (int(uint64(c.Seed)%uint64(len(orders))) + 1) % len(orders)
			alt, err = plan.Compile(p, po, orders[oi], plan.ModeLIGHT)
			if err != nil {
				return fail("lanes/compile-alt", want, 0, err.Error())
			}
		}
		if d := checkLanes(c, g, light, alt, want, cfg); d != nil {
			out.Checks++
			return out, d
		}
		out.Checks += 2
	}

	// Edge-delta oracle: the same case mutated through the public
	// copy-on-write API, with the overlay count checked against a fresh
	// rebuild and CountDelta checked against the counting identity.
	if cfg.Delta || !cfg.Quick {
		if d := checkDelta(c, want, cfg); d != nil {
			out.Checks++
			return out, d
		}
		out.Checks += 5
	}

	// Enumerate mode: the emitted mapping set must be exactly the
	// reference image sets, with no duplicates (symmetry breaking emits
	// one representative per automorphism class).
	if d := checkEnumerate(c, g, light, ref.Keys, want, "enumerate/serial", func(visit engine.VisitFunc) error {
		_, err := engine.New(g, light, engine.Options{}).Run(visit)
		return err
	}); d != nil {
		out.Checks++
		return out, d
	}
	out.Checks++
	if !cfg.Quick {
		if d := checkEnumerate(c, g, light, ref.Keys, want, "enumerate/parallel", func(visit engine.VisitFunc) error {
			var mu sync.Mutex
			_, err := parallel.Run(g, light, parallel.Options{
				Workers: cfg.Workers, Scheduler: parallel.WorkStealing, ChunkSize: 4, MinSplit: 2,
			}, func(m []graph.VertexID) bool {
				mu.Lock()
				defer mu.Unlock()
				return visit(m)
			})
			return err
		}); d != nil {
			out.Checks++
			return out, d
		}
		out.Checks++
	}

	if !cfg.Quick {
		// BFS-join and worst-case-optimal baselines. Budget errors skip
		// the individual oracle; any returned count must agree.
		type baseline struct {
			name string
			run  func() (uint64, error)
		}
		bopts := bfsjoin.Options{MaxBytes: 1 << 30, TimeLimit: cfg.TimeLimit}
		for _, b := range []baseline{
			{"EH", func() (uint64, error) {
				r, err := baselines.EH(g, p, baselines.Options{MaxBytes: 1 << 30, TimeLimit: cfg.TimeLimit})
				return r.Matches, err
			}},
			{"CFL", func() (uint64, error) {
				r, err := baselines.CFL(g, p, baselines.Options{TimeLimit: cfg.TimeLimit})
				return r.Matches, err
			}},
			{"SEED", func() (uint64, error) {
				r, err := bfsjoin.SEED(g, p, bopts)
				return r.Matches, err
			}},
			{"TwinTwig", func() (uint64, error) {
				r, err := bfsjoin.TwinTwig(g, p, bopts)
				return r.Matches, err
			}},
		} {
			got, err := b.run()
			if err != nil {
				continue // budget exhausted — not a correctness signal
			}
			out.Checks++
			if got != want {
				return fail("baseline/"+b.name, want, got, "")
			}
		}

		// Kill-and-resume checkpoint round-trip: stop the run partway via
		// the visitor, reload the final snapshot, resume in count mode, and
		// demand the committed + re-enumerated total equals the reference.
		if want >= 2 {
			if d := checkResume(c, g, light, want, cfg); d != nil {
				out.Checks++
				return out, d
			}
			out.Checks++
		}
	}

	return out, nil
}

// counterDiff compares the partition-independent counters of a serial
// run and a parallel run under identical engine options.
func counterDiff(s, p engine.Result) string {
	var diffs []string
	add := func(name string, a, b uint64) {
		if a != b {
			diffs = append(diffs, fmt.Sprintf("%s: serial=%d parallel=%d", name, a, b))
		}
	}
	add("Matches", s.Matches, p.Matches)
	add("Nodes", s.Nodes, p.Nodes)
	add("Comps", s.Comps, p.Comps)
	add("Stats.Intersections", s.Stats.Intersections, p.Stats.Intersections)
	add("Stats.Galloping", s.Stats.Galloping, p.Stats.Galloping)
	add("Stats.Elements", s.Stats.Elements, p.Stats.Elements)
	add("Stats.BitmapProbes", s.Stats.BitmapProbes, p.Stats.BitmapProbes)
	return strings.Join(diffs, "; ")
}

// checkEnumerate drives an enumeration through run and checks the
// emitted mappings against the reference key set: right count, no
// duplicate subgraphs, and set equality with the oracle.
func checkEnumerate(c Case, g *graph.Graph, pl *plan.Plan, refKeys map[string]bool, want uint64,
	stage string, run func(engine.VisitFunc) error) *Discrepancy {
	got := map[string]bool{}
	dup := ""
	var emitted uint64
	err := run(func(m []graph.VertexID) bool {
		emitted++
		k := imageKey(c.PatternEdges, func(u int) uint32 { return uint32(m[u]) })
		if got[k] && dup == "" {
			dup = k
		}
		got[k] = true
		return true
	})
	if err != nil {
		return &Discrepancy{Case: c, Stage: stage, Want: want, Detail: err.Error()}
	}
	if emitted != want {
		return &Discrepancy{Case: c, Stage: stage, Want: want, Got: emitted, Detail: "emitted mapping count"}
	}
	if dup != "" {
		return &Discrepancy{Case: c, Stage: stage, Want: want, Got: emitted,
			Detail: "duplicate subgraph emitted: " + dup}
	}
	for k := range got {
		if !refKeys[k] {
			return &Discrepancy{Case: c, Stage: stage, Want: want, Got: emitted,
				Detail: "emitted subgraph not in reference set: " + k}
		}
	}
	for k := range refKeys {
		if !got[k] {
			return &Discrepancy{Case: c, Stage: stage, Want: want, Got: emitted,
				Detail: "reference subgraph never emitted: " + k}
		}
	}
	return nil
}

// checkResume interrupts a checkpointed parallel run roughly halfway,
// reloads the snapshot, and verifies the resumed run completes the
// count exactly.
func checkResume(c Case, g *graph.Graph, pl *plan.Plan, want uint64, cfg Config) *Discrepancy {
	f, err := os.CreateTemp("", "lightdiff-*.ckpt")
	if err != nil {
		return &Discrepancy{Case: c, Stage: "resume/tempfile", Want: want, Detail: err.Error()}
	}
	path := f.Name()
	if err := f.Close(); err != nil {
		return &Discrepancy{Case: c, Stage: "resume/tempfile", Want: want, Detail: err.Error()}
	}
	defer os.Remove(path)

	stopAt := want / 2
	if stopAt == 0 {
		stopAt = 1
	}
	var mu sync.Mutex
	var seen uint64
	opts := parallel.Options{
		Workers:    cfg.Workers,
		Scheduler:  parallel.WorkStealing,
		ChunkSize:  4,
		MinSplit:   2,
		Checkpoint: &parallel.CheckpointOptions{Path: path, Interval: time.Hour},
	}
	_, err = parallel.Run(g, pl, opts, func(m []graph.VertexID) bool {
		mu.Lock()
		defer mu.Unlock()
		seen++
		return seen < stopAt
	})
	if err != nil {
		return &Discrepancy{Case: c, Stage: "resume/interrupted-run", Want: want, Detail: err.Error()}
	}
	ck, err := supervise.LoadCheckpoint(path)
	if err != nil {
		return &Discrepancy{Case: c, Stage: "resume/load", Want: want, Detail: err.Error()}
	}
	resumed := parallel.Options{
		Workers:   cfg.Workers,
		Scheduler: parallel.WorkStealing,
		ChunkSize: 4,
		MinSplit:  2,
		Resume:    ck,
	}
	res, err := parallel.Run(g, pl, resumed, nil)
	if err != nil {
		return &Discrepancy{Case: c, Stage: "resume/resumed-run", Want: want, Detail: err.Error()}
	}
	if res.Matches != want {
		return &Discrepancy{Case: c, Stage: "resume/total", Want: want, Got: res.Matches,
			Detail: fmt.Sprintf("stopped after %d visits, checkpoint committed %d matches", seen, ck.Base.Matches)}
	}
	return nil
}
