package diffcheck

import (
	"fmt"
	"math/rand"

	"light"
)

// checkDelta is the edge-delta oracle: rebuild the case through the
// public API, apply a seed-derived mutation batch (a few inserts, a few
// deletes of existing edges), and demand that
//
//   - the pre-mutation count through a pinned snapshot equals the
//     brute-force reference (counting is isomorphism-invariant, so the
//     relabeling NewGraph applies changes nothing);
//   - the overlay count equals a fresh CSR rebuilt from the mutated
//     adjacency (the copy-on-write read path hides no edges and invents
//     none);
//   - CountDelta satisfies count(to) == count(from) + Net, and swapping
//     the snapshots mirrors gained/lost exactly;
//   - compaction does not change the count.
//
// The batch is a pure function of Case.Seed, so the shrinker re-derives
// it when it rebuilds a reduced case — no extra state to carry.
func checkDelta(c Case, want uint64, cfg Config) *Discrepancy {
	fail := func(stage string, wantN, got uint64, detail string) *Discrepancy {
		return &Discrepancy{Case: c, Stage: stage, Want: wantN, Got: got, Detail: detail}
	}

	pairs := make([][2]light.VertexID, len(c.GraphEdges))
	for i, e := range c.GraphEdges {
		pairs[i] = [2]light.VertexID{light.VertexID(e[0]), light.VertexID(e[1])}
	}
	lg := light.NewGraph(c.GraphN, pairs)
	p, err := light.NewPattern("case", c.PatternN, c.PatternEdges)
	if err != nil {
		return fail("delta/pattern", want, 0, err.Error())
	}

	from := lg.Snapshot()
	cFrom, err := light.Count(lg, p, light.Options{Snapshot: from, Workers: cfg.Workers})
	if err != nil {
		return fail("delta/base-count", want, 0, err.Error())
	}
	if cFrom.Matches != want {
		return fail("delta/base-count", want, cFrom.Matches, "pre-mutation count disagrees with reference")
	}

	// The mutation batch: up to five random pairs added (two IDs past
	// the current range, so vertex growth is exercised) and up to three
	// existing edges removed, all derived from the case seed.
	rng := rand.New(rand.NewSource(c.Seed ^ 0x0de17a))
	n := lg.NumVertices()
	var add, rem [][2]light.VertexID
	for i := 0; i < 5; i++ {
		u, v := light.VertexID(rng.Intn(n+2)), light.VertexID(rng.Intn(n+2))
		if u == v {
			continue
		}
		add = append(add, [2]light.VertexID{u, v})
	}
	var existing [][2]light.VertexID
	for u := 0; u < n; u++ {
		for _, v := range lg.Neighbors(light.VertexID(u)) {
			if int(v) > u {
				existing = append(existing, [2]light.VertexID{light.VertexID(u), v})
			}
		}
	}
	for i := 0; i < 3 && len(existing) > 0; i++ {
		rem = append(rem, existing[rng.Intn(len(existing))])
	}

	to, err := lg.ApplyEdges(add, rem)
	if err != nil {
		return fail("delta/apply", want, 0, err.Error())
	}
	cTo, err := light.Count(lg, p, light.Options{Snapshot: to, Workers: cfg.Workers})
	if err != nil {
		return fail("delta/overlay-count", want, 0, err.Error())
	}

	// Fresh rebuild: read the mutated adjacency back through the public
	// accessors (the head is `to` now) and count on a clean CSR.
	var mutated [][2]light.VertexID
	for u := 0; u < to.NumVertices(); u++ {
		for _, v := range lg.Neighbors(light.VertexID(u)) {
			if int(v) > u {
				mutated = append(mutated, [2]light.VertexID{light.VertexID(u), v})
			}
		}
	}
	fresh := light.NewGraph(to.NumVertices(), mutated)
	cFresh, err := light.Count(fresh, p, light.Options{})
	if err != nil {
		return fail("delta/rebuild", want, 0, err.Error())
	}
	if cFresh.Matches != cTo.Matches {
		return fail("delta/rebuild", cFresh.Matches, cTo.Matches,
			fmt.Sprintf("overlay count disagrees with fresh CSR rebuild (batch: +%d -%d)", len(add), len(rem)))
	}

	dr, err := light.CountDelta(lg, p, from, to, light.Options{Workers: cfg.Workers})
	if err != nil {
		return fail("delta/count-delta", want, 0, err.Error())
	}
	if int64(cTo.Matches) != int64(cFrom.Matches)+dr.Net {
		return fail("delta/identity", cTo.Matches, cFrom.Matches,
			fmt.Sprintf("count(from)=%d + net %d != count(to)=%d (gained %d, lost %d, %d added / %d removed edges)",
				cFrom.Matches, dr.Net, cTo.Matches, dr.Gained, dr.Lost, dr.AddedEdges, dr.RemovedEdges))
	}
	rev, err := light.CountDelta(lg, p, to, from, light.Options{Workers: cfg.Workers})
	if err != nil {
		return fail("delta/reversed", want, 0, err.Error())
	}
	if rev.Net != -dr.Net || rev.Gained != dr.Lost || rev.Lost != dr.Gained {
		return fail("delta/reversed", cTo.Matches, cFrom.Matches,
			fmt.Sprintf("reversed delta (net %d, gained %d, lost %d) does not mirror forward (net %d, gained %d, lost %d)",
				rev.Net, rev.Gained, rev.Lost, dr.Net, dr.Gained, dr.Lost))
	}

	if _, err := lg.Compact(); err != nil {
		return fail("delta/compact", want, 0, err.Error())
	}
	cComp, err := light.Count(lg, p, light.Options{})
	if err != nil {
		return fail("delta/compacted-count", want, 0, err.Error())
	}
	if cComp.Matches != cTo.Matches {
		return fail("delta/compacted-count", cTo.Matches, cComp.Matches, "compaction changed the count")
	}
	return nil
}
