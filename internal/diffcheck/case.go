// Package diffcheck is the differential correctness harness: it
// generates random (pattern, data graph) cases, runs each one through
// every implementation in the repo that can count or enumerate matches
// — an independent brute-force reference, the BFS-join baselines, and
// the LIGHT engine serial and parallel under every scheduler, kernel,
// TailCount and DegreeFilter combination, plus a kill-and-resume
// checkpoint round-trip — and cross-checks the results. On a
// discrepancy, a greedy shrinker reduces the case to a minimal repro
// and renders it as a ready-to-paste Go test.
//
// The package is consumed three ways: deterministic seeded short tests
// (diffcheck_test.go), a native fuzz target (FuzzDifferential), and the
// cmd/lightdiff CLI that scripts/verify.sh and the nightly soak run.
package diffcheck

import (
	"fmt"
	"math/rand"

	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
)

// Case is a self-contained differential test case: explicit edge lists
// rather than generator parameters, so the shrinker can delete vertices
// and edges one at a time and rebuild.
type Case struct {
	Family string // generator family the case came from ("shrunk" after reduction)
	Seed   int64  // generation seed (also derandomizes order choice in RunCase)

	GraphN     int
	GraphEdges [][2]uint32

	PatternN     int
	PatternEdges [][2]int
}

// Families lists the generator families GenerateCase accepts. The first
// two are the standard random models; the rest are adversarial: extreme
// hub skew, maximal density, near-2-colorability, and mass degree ties
// under the ordered-graph relabeling.
var Families = []string{"er", "ba", "star", "clique", "bipartite", "ties"}

// GenerateCase builds a random case from the named family. The data
// graph and the 3–7 vertex connected pattern are both deterministic
// functions of (family, seed). Sizes are tuned so the brute-force
// reference usually stays under the embedding cap.
func GenerateCase(family string, seed int64) (Case, error) {
	rng := rand.New(rand.NewSource(seed))
	var g *graph.Graph
	switch family {
	case "er":
		n := 12 + rng.Intn(16)
		g = gen.ErdosRenyi(n, 2*n+rng.Intn(n), seed^0x5e5e)
	case "ba":
		g = gen.BarabasiAlbert(15+rng.Intn(15), 2+rng.Intn(2), seed^0xba)
	case "star":
		leaves := 8 + rng.Intn(14)
		g = gen.StarChords(leaves, rng.Intn(2*leaves), seed^0x57a7)
	case "clique":
		g = gen.Complete(5 + rng.Intn(5))
	case "bipartite":
		g = gen.NearBipartite(3+rng.Intn(6), 3+rng.Intn(6), rng.Intn(7), seed^0xb1b1)
	case "ties":
		g = gen.DegreeTies(2+rng.Intn(4), 4+rng.Intn(4), seed^0x7135)
	default:
		return Case{}, fmt.Errorf("diffcheck: unknown family %q (known: %v)", family, Families)
	}
	p := pattern.RandomConnected(rng, 3+rng.Intn(5), rng.Intn(4))
	c := Case{
		Family:     family,
		Seed:       seed,
		GraphN:     g.NumVertices(),
		GraphEdges: graphEdges(g),
		PatternN:   p.NumVertices(),
	}
	for u := 0; u < p.NumVertices(); u++ {
		for v := u + 1; v < p.NumVertices(); v++ {
			if p.HasEdge(u, v) {
				c.PatternEdges = append(c.PatternEdges, [2]int{u, v})
			}
		}
	}
	return c, nil
}

// graphEdges snapshots g's edge list (u < v once per edge).
func graphEdges(g *graph.Graph) [][2]uint32 {
	edges := make([][2]uint32, 0, g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if uint32(v) > uint32(u) {
				edges = append(edges, [2]uint32{uint32(u), uint32(v)})
			}
		}
	}
	return edges
}

// Validate rejects cases whose edge lists are not well-formed (out of
// range endpoints or self-loops). Duplicate edges are fine — both the
// graph builder and pattern.New deduplicate.
func (c Case) Validate() error {
	if c.GraphN < 1 {
		return fmt.Errorf("diffcheck: graph has %d vertices", c.GraphN)
	}
	if c.PatternN < 2 || c.PatternN > pattern.MaxVertices {
		return fmt.Errorf("diffcheck: pattern has %d vertices, want 2..%d", c.PatternN, pattern.MaxVertices)
	}
	for _, e := range c.GraphEdges {
		if int(e[0]) >= c.GraphN || int(e[1]) >= c.GraphN || e[0] == e[1] {
			return fmt.Errorf("diffcheck: bad graph edge (%d,%d) on %d vertices", e[0], e[1], c.GraphN)
		}
	}
	for _, e := range c.PatternEdges {
		if e[0] < 0 || e[1] < 0 || e[0] >= c.PatternN || e[1] >= c.PatternN || e[0] == e[1] {
			return fmt.Errorf("diffcheck: bad pattern edge (%d,%d) on %d vertices", e[0], e[1], c.PatternN)
		}
	}
	if !patternConnected(c.PatternN, c.PatternEdges) {
		return fmt.Errorf("diffcheck: pattern is disconnected")
	}
	return nil
}

// Build materializes the case: the ordered data graph and the compiled
// pattern. Counting is isomorphism-invariant, so the degree-relabeling
// BuildOrdered applies does not change any oracle's answer; mapping-set
// comparisons use the ordered graph's labels on both sides (see
// RunCase).
func (c Case) Build() (*graph.Graph, *pattern.Pattern, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	b := graph.NewBuilder(c.GraphN)
	for _, e := range c.GraphEdges {
		b.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]))
	}
	g := b.BuildOrdered()
	pe := make([][2]pattern.Vertex, len(c.PatternEdges))
	for i, e := range c.PatternEdges {
		pe[i] = [2]pattern.Vertex{e[0], e[1]}
	}
	p, err := pattern.New("case", c.PatternN, pe)
	if err != nil {
		return nil, nil, err
	}
	return g, p, nil
}

// patternConnected reports whether the n-vertex pattern with the given
// edges is one component (BFS; independent of the pattern package).
func patternConnected(n int, edges [][2]int) bool {
	if n < 1 {
		return false
	}
	adj := make([][]int, n)
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return false
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n)
	seen[0] = true
	queue := []int{0}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == n
}
