package diffcheck

import (
	"context"
	"fmt"

	"light/internal/engine"
	"light/internal/graph"
	"light/internal/lanes"
	"light/internal/plan"
)

// checkLanes runs the case lane-batched and demands every lane's
// attributed counters equal its sequential reference, two ways:
//
//   - an identical-pattern root batch: six lanes over the same plan
//     whose root sets are the full graph, two overlapping windows, and
//     a three-way partition — each lane checked against a sequential
//     RunRoots over exactly that subset, plus the partition's counts
//     summing to the reference;
//   - a mixed batch: the case plan unrestricted, degree-thresholded,
//     and filtered, plus (when the pattern admits a second connected
//     order) an incompatible plan that must land in its own lane group
//     — each lane checked against a sequential run under the
//     equivalent engine filter.
//
// Both batches run through the parallel scheduler at cfg.Workers, so
// donation frames carry lane masks across workers; counter equality is
// partition-independent for the same reason it is in counterDiff.
func checkLanes(c Case, g *graph.Graph, pl, alt *plan.Plan, want uint64, cfg Config) *Discrepancy {
	fail := func(stage string, wantN, got uint64, detail string) *Discrepancy {
		return &Discrepancy{Case: c, Stage: stage, Want: wantN, Got: got, Detail: detail}
	}
	n := g.NumVertices()
	window := func(lo, hi int) []graph.VertexID {
		if hi > n {
			hi = n
		}
		vs := make([]graph.VertexID, 0, hi-lo)
		for v := lo; v < hi; v++ {
			vs = append(vs, graph.VertexID(v))
		}
		return vs
	}

	// Identical-pattern root batch: overlapping windows + a partition.
	rootSets := [][]graph.VertexID{
		nil, // every root
		window(0, 2*n/3),
		window(n/3, n),
		window(0, n/3),
		window(n/3, 2*n/3),
		window(2*n/3, n),
	}
	queries := make([]lanes.Query, len(rootSets))
	for i, roots := range rootSets {
		queries[i] = lanes.Query{Plan: pl, Spec: lanes.Spec{Roots: roots}}
	}
	res, err := lanes.Run(context.Background(), g, queries, lanes.Options{Workers: cfg.Workers})
	if err != nil {
		return fail("lanes/roots", want, 0, err.Error())
	}
	if res.Groups != 1 {
		return fail("lanes/roots", 1, uint64(res.Groups), "identical plans split into multiple lane groups")
	}
	for i, roots := range rootSets {
		seq := roots
		if seq == nil {
			seq = window(0, n)
		}
		solo, err := engine.New(g, pl, engine.Options{}).RunRoots(seq, nil)
		if err != nil {
			return fail(fmt.Sprintf("lanes/roots[%d]", i), want, 0, err.Error())
		}
		if d := laneDiff(solo, res.PerQuery[i]); d != "" {
			return fail(fmt.Sprintf("lanes/roots[%d]", i), solo.Matches, res.PerQuery[i].Matches, d)
		}
	}
	if got := res.PerQuery[0].Matches; got != want {
		return fail("lanes/roots/full", want, got, "unrestricted lane disagrees with reference")
	}
	if sum := res.PerQuery[3].Matches + res.PerQuery[4].Matches + res.PerQuery[5].Matches; sum != want {
		return fail("lanes/roots/partition", want, sum, "partitioned root lanes do not sum to the reference")
	}

	// Mixed batch: per-lane narrowing plus an incompatible second plan.
	evenFilter := func(u int, v graph.VertexID) bool { return v%2 == 0 }
	mixed := []lanes.Query{
		{Plan: pl},
		{Plan: pl, Spec: lanes.Spec{MinDegree: 2}},
		{Plan: pl, Spec: lanes.Spec{Filter: evenFilter}},
	}
	refs := []func(u int, v graph.VertexID) bool{
		nil,
		func(u int, v graph.VertexID) bool { return g.Degree(v) >= 2 },
		evenFilter,
	}
	wantGroups := 1
	if alt != nil {
		mixed = append(mixed, lanes.Query{Plan: alt})
		wantGroups = 2
	}
	mres, err := lanes.Run(context.Background(), g, mixed, lanes.Options{Workers: cfg.Workers})
	if err != nil {
		return fail("lanes/mixed", want, 0, err.Error())
	}
	if mres.Groups != wantGroups {
		return fail("lanes/mixed", uint64(wantGroups), uint64(mres.Groups), "unexpected lane-group count")
	}
	for i, ref := range refs {
		solo, err := engine.New(g, pl, engine.Options{Filter: ref}).Run(nil)
		if err != nil {
			return fail(fmt.Sprintf("lanes/mixed[%d]", i), want, 0, err.Error())
		}
		if d := laneDiff(solo, mres.PerQuery[i]); d != "" {
			return fail(fmt.Sprintf("lanes/mixed[%d]", i), solo.Matches, mres.PerQuery[i].Matches, d)
		}
	}
	if alt != nil {
		solo, err := engine.New(g, alt, engine.Options{}).Run(nil)
		if err != nil {
			return fail("lanes/mixed/alt-order", want, 0, err.Error())
		}
		if d := laneDiff(solo, mres.PerQuery[3]); d != "" {
			return fail("lanes/mixed/alt-order", solo.Matches, mres.PerQuery[3].Matches, d)
		}
		if solo.Matches != want {
			return fail("lanes/mixed/alt-order", want, solo.Matches, "alternative order disagrees with reference")
		}
	}
	return nil
}

// laneDiff compares a sequential reference run's counters with a lane's
// attributed counters; empty means exact equality.
func laneDiff(s engine.Result, l engine.LaneCounts) string {
	got := engine.LaneCounts{Matches: s.Matches, Nodes: s.Nodes, Comps: s.Comps, Stats: s.Stats}
	if got == l {
		return ""
	}
	return fmt.Sprintf("sequential %+v vs lane %+v", got, l)
}
