package diffcheck

import (
	"strings"
	"testing"
)

// TestDifferentialSeeded is the deterministic core of the harness: a
// fixed grid of seeds across every family, full oracle matrix, zero
// discrepancies expected. -short trims the grid and the matrix.
func TestDifferentialSeeded(t *testing.T) {
	seedsPerFamily := 8
	cfg := Config{}
	if testing.Short() {
		seedsPerFamily = 3
		cfg.Quick = true
	}
	executed, skipped := 0, 0
	for _, fam := range Families {
		for s := 0; s < seedsPerFamily; s++ {
			c, err := GenerateCase(fam, int64(1000*s+17))
			if err != nil {
				t.Fatal(err)
			}
			out, d := RunCase(c, cfg)
			if d != nil {
				t.Fatalf("discrepancy:\n%v\n\nminimal repro:\n%s", d, ReproTest(ShrinkDiscrepancy(d, cfg)))
			}
			if out.Skipped {
				skipped++
				continue
			}
			executed++
			if out.Checks < 5 {
				t.Fatalf("%s/%d: only %d oracle comparisons ran", fam, s, out.Checks)
			}
		}
	}
	if executed < len(Families) {
		t.Fatalf("only %d cases executed (%d skipped): families are over-generating capped cases", executed, skipped)
	}
	t.Logf("executed %d cases, skipped %d", executed, skipped)
}

// TestRunCaseKnownCounts pins the harness itself on hand-computable
// cases, so a bug that silently skips every comparison cannot hide.
func TestRunCaseKnownCounts(t *testing.T) {
	cases := []struct {
		name string
		c    Case
		ref  uint64
	}{
		{
			// Triangles in K4: C(4,3) = 4.
			name: "triangle-in-K4",
			c: Case{
				GraphN:       4,
				GraphEdges:   [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
				PatternN:     3,
				PatternEdges: [][2]int{{0, 1}, {1, 2}, {0, 2}},
			},
			ref: 4,
		},
		{
			// Edges in a 4-cycle: 4.
			name: "edge-in-C4",
			c: Case{
				GraphN:       4,
				GraphEdges:   [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {0, 3}},
				PatternN:     2,
				PatternEdges: [][2]int{{0, 1}},
			},
			ref: 4,
		},
		{
			// Paths of length 2 in a triangle: one per choice of center = 3.
			name: "path2-in-triangle",
			c: Case{
				GraphN:       3,
				GraphEdges:   [][2]uint32{{0, 1}, {1, 2}, {0, 2}},
				PatternN:     3,
				PatternEdges: [][2]int{{0, 1}, {1, 2}},
			},
			ref: 3,
		},
	}
	for _, tc := range cases {
		out, d := RunCase(tc.c, Config{})
		if d != nil {
			t.Fatalf("%s: %v", tc.name, d)
		}
		if out.Skipped {
			t.Fatalf("%s: skipped: %s", tc.name, out.Reason)
		}
		if out.Ref != tc.ref {
			t.Fatalf("%s: reference count %d, want %d", tc.name, out.Ref, tc.ref)
		}
	}
}

// TestOracleIndependents pins the reference pieces directly.
func TestOracleIndependents(t *testing.T) {
	// Triangle: 3! = 6 automorphisms; path of 2 edges: 2.
	if got := autCount(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}); got != 6 {
		t.Fatalf("|Aut(triangle)| = %d, want 6", got)
	}
	if got := autCount(3, [][2]int{{0, 1}, {1, 2}}); got != 2 {
		t.Fatalf("|Aut(P3)| = %d, want 2", got)
	}
	// Embeddings of the triangle in K4: 4 * 3! = 24, and 4 distinct
	// image edge sets.
	r := countEmbeddings(4, [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
		3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 1000, true)
	if r.Embeddings != 24 || len(r.Keys) != 4 || r.Capped {
		t.Fatalf("triangle in K4: emb=%d keys=%d capped=%v, want 24/4/false", r.Embeddings, len(r.Keys), r.Capped)
	}
	// The cap must trip, not hang, on an explosive case.
	big := countEmbeddings(4, [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
		3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 10, false)
	if !big.Capped {
		t.Fatal("embedding cap did not trip")
	}
}

// TestShrinkSyntheticBug checks the shrinker's contract against a
// synthetic predicate: "fails" iff the graph still contains a triangle
// and the pattern has an edge. The minimal such case is K3 with a
// single-edge... pattern of 2 vertices; the shrinker must get close.
func TestShrinkSyntheticBug(t *testing.T) {
	c, err := GenerateCase("er", 4242)
	if err != nil {
		t.Fatal(err)
	}
	hasTriangle := func(m Case) bool {
		adj := map[[2]uint32]bool{}
		for _, e := range m.GraphEdges {
			adj[[2]uint32{e[0], e[1]}] = true
			adj[[2]uint32{e[1], e[0]}] = true
		}
		for _, e := range m.GraphEdges {
			for w := uint32(0); w < uint32(m.GraphN); w++ {
				if adj[[2]uint32{e[0], w}] && adj[[2]uint32{e[1], w}] {
					return true
				}
			}
		}
		return false
	}
	fails := func(m Case) bool { return hasTriangle(m) && len(m.PatternEdges) > 0 }
	if !fails(c) {
		t.Skip("seed produced a triangle-free ER graph")
	}
	s := Shrink(c, fails, 10000)
	if !fails(s) {
		t.Fatal("shrinker returned a passing case")
	}
	if s.GraphN != 3 || len(s.GraphEdges) != 3 {
		t.Fatalf("shrunk graph is %d vertices / %d edges, want the bare triangle", s.GraphN, len(s.GraphEdges))
	}
	if s.PatternN != 2 || len(s.PatternEdges) != 1 {
		t.Fatalf("shrunk pattern is %d vertices / %d edges, want a single edge", s.PatternN, len(s.PatternEdges))
	}
}

// TestReproTestRendering checks the repro emitter produces a paste-able
// test mentioning every structural element.
func TestReproTestRendering(t *testing.T) {
	c := Case{
		Family: "shrunk:er", Seed: 7,
		GraphN: 3, GraphEdges: [][2]uint32{{0, 1}, {1, 2}, {0, 2}},
		PatternN: 3, PatternEdges: [][2]int{{0, 1}, {1, 2}, {0, 2}},
	}
	s := ReproTest(c)
	for _, want := range []string{
		"func TestDiffcheckRepro(t *testing.T)",
		"diffcheck.Case{",
		"GraphN: 3",
		"PatternN: 3",
		"{1, 2},",
		"diffcheck.RunCase(c, diffcheck.Config{})",
		"t.Fatal(d)",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("repro test missing %q:\n%s", want, s)
		}
	}
}

// TestGenerateCaseValidity: every family must produce a buildable,
// connected-pattern case for a spread of seeds.
func TestGenerateCaseValidity(t *testing.T) {
	for _, fam := range Families {
		for s := int64(0); s < 5; s++ {
			c, err := GenerateCase(fam, s)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", fam, s, err)
			}
			if _, _, err := c.Build(); err != nil {
				t.Fatalf("%s/%d: %v", fam, s, err)
			}
		}
	}
	if _, err := GenerateCase("nope", 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}
