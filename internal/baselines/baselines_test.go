package baselines

import (
	"testing"
	"time"

	"light/internal/engine"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

func lightCount(t *testing.T, g *graph.Graph, p *pattern.Pattern) uint64 {
	t.Helper()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.New(g, pl, engine.Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Matches
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"ba": gen.BarabasiAlbert(90, 4, 1),
		"er": gen.ErdosRenyi(70, 200, 2),
		"k8": gen.Complete(8),
	}
}

func TestEHMatchesLIGHT(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, p := range pattern.Catalog() {
			want := lightCount(t, g, p)
			res, err := EH(g, p, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, p.Name(), err)
			}
			if res.Matches != want {
				t.Fatalf("%s/%s: EH = %d, want %d (order %s)", gname, p.Name(), res.Matches, want, res.Order)
			}
		}
	}
}

func TestCFLMatchesLIGHT(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, p := range pattern.Catalog() {
			want := lightCount(t, g, p)
			res, err := CFL(g, p, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, p.Name(), err)
			}
			if res.Matches != want {
				t.Fatalf("%s/%s: CFL = %d, want %d (order %s)", gname, p.Name(), res.Matches, want, res.Order)
			}
		}
	}
}

func TestEHOrderIsAscendingDegree(t *testing.T) {
	// The paper: π³(P2) = (u1, u3, u0, u2) — EH picks a non-connected
	// ascending-degree order.
	p := pattern.P2()
	order := ehOrder(p, allMask(p))
	want := []pattern.Vertex{1, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ehOrder(P2) = %v, want %v", order, want)
		}
	}
	// And it is indeed non-connected (u1, u3 are not adjacent).
	if plan.IsConnectedOrder(p, order) {
		t.Fatal("expected a non-connected order for P2")
	}
}

func TestEHDoesMoreIntersectionsThanSE(t *testing.T) {
	// Fig 5a: EH's intersection count dwarfs SE's on the chordal square.
	g := gen.BarabasiAlbert(200, 4, 9)
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	pl, _ := plan.Compile(p, po, []pattern.Vertex{0, 2, 1, 3}, plan.ModeSE)
	seRes, err := engine.New(g, pl, engine.Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	ehRes, err := EH(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ehRes.Intersections <= seRes.Stats.Intersections {
		t.Fatalf("EH intersections %d !> SE %d", ehRes.Intersections, seRes.Stats.Intersections)
	}
}

func TestEHSplitsLargePatterns(t *testing.T) {
	g := gen.BarabasiAlbert(80, 4, 3)
	res, err := EH(g, pattern.P4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Order != "split on u2" && res.Order[:5] != "split" {
		t.Fatalf("P4 should split, got order %q", res.Order)
	}
	if res.PeakBytes == 0 {
		t.Fatal("split run should account component memory")
	}
}

func TestEHOutOfSpace(t *testing.T) {
	g := gen.BarabasiAlbert(300, 6, 5)
	_, err := EH(g, pattern.P4(), Options{MaxBytes: 256})
	if err != ErrOutOfSpace {
		t.Fatalf("err = %v, want ErrOutOfSpace", err)
	}
}

func TestEHTimeLimit(t *testing.T) {
	g := gen.Complete(200)
	_, err := EH(g, pattern.P2(), Options{TimeLimit: time.Millisecond})
	if err != ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}

func TestCFLTimeLimit(t *testing.T) {
	g := gen.Complete(200)
	_, err := CFL(g, pattern.P7(), Options{TimeLimit: time.Millisecond})
	if err != ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}

func TestCFLOrderConnectedAndAdmissible(t *testing.T) {
	for _, p := range pattern.Catalog() {
		po := pattern.SymmetryBreaking(p)
		pi := cflOrder(p, po)
		if !plan.IsConnectedOrder(p, pi) {
			t.Fatalf("%s: CFL order %v not connected", p.Name(), pi)
		}
		pos := make([]int, p.NumVertices())
		for i, u := range pi {
			pos[u] = i
		}
		for _, pr := range po.Pairs() {
			if pos[pr[0]] > pos[pr[1]] {
				t.Fatalf("%s: CFL order %v violates u%d<u%d", p.Name(), pi, pr[0], pr[1])
			}
		}
	}
}
