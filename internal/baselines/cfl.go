package baselines

import (
	"light/internal/engine"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/pattern"
	"light/internal/plan"
)

// CFL simulates the CFL labeled-matching algorithm on unlabeled graphs:
//
//   - Preprocessing builds the only index unlabeled graphs admit — the
//     degree filter d(v) ≥ d_P(u) (the paper: "the filtering methods
//     designed for labeled subgraph enumeration are often ineffective on
//     unlabeled graphs").
//   - The enumeration order is CFL's BFS-from-the-densest-vertex order
//     (core first, descending degree), which is connected but ignores the
//     cost model — on some patterns (P4 in the paper) it is much worse
//     than SE's optimized order.
//   - Set intersections always "loop the smaller set and binary-search
//     the larger" (our Galloping kernel), which wins only under heavy
//     cardinality skew.
//
// Counting semantics are identical to the engine's (symmetry-broken
// embeddings), so tests can compare counts directly.
func CFL(g *graph.Graph, p *pattern.Pattern, opts Options) (Result, error) {
	po := pattern.SymmetryBreaking(p)
	pi := cflOrder(p, po)
	pl, err := plan.Compile(p, po, pi, plan.ModeSE)
	if err != nil {
		return Result{}, err
	}
	e := engine.New(g, pl, engine.Options{
		Kernel:       intersect.KindGalloping,
		TimeLimit:    opts.TimeLimit,
		DegreeFilter: true,
	})
	res, err := e.Run(nil)
	out := Result{
		Matches:       res.Matches,
		Intersections: res.Stats.Intersections,
		Order:         orderString(pi),
	}
	if err == engine.ErrTimeLimit {
		return out, ErrTimeLimit
	}
	return out, err
}

// cflOrder is a BFS from the highest-degree vertex, expanding to the
// placed-adjacent vertex with (most backward neighbors, highest degree)
// — a connected order chosen structurally rather than by cost, subject
// to the symmetry-breaking position constraints. If the partial order
// makes the structural choice infeasible, the remaining admissible
// vertex with the same priority rule is taken.
func cflOrder(p *pattern.Pattern, po *pattern.PartialOrder) []pattern.Vertex {
	n := p.NumVertices()
	var order []pattern.Vertex
	var placed uint32
	admissible := func(u pattern.Vertex) bool {
		if placed&(1<<uint(u)) != 0 {
			return false
		}
		// All vertices constrained before u must be placed.
		for w := 0; w < n; w++ {
			if po.Less[w]&(1<<uint(u)) != 0 && placed&(1<<uint(w)) == 0 {
				return false
			}
		}
		// After the first vertex, u must touch the placed set.
		return len(order) == 0 || p.NeighborMask(u)&placed != 0
	}
	for len(order) < n {
		best := -1
		bestKey := [2]int{-1, -1}
		for u := 0; u < n; u++ {
			if !admissible(u) {
				continue
			}
			back := popcount(p.NeighborMask(u) & placed)
			key := [2]int{back, p.Degree(u)}
			if best == -1 || key[0] > bestKey[0] || (key[0] == bestKey[0] && key[1] > bestKey[1]) {
				best, bestKey = u, key
			}
		}
		order = append(order, best)
		placed |= 1 << uint(best)
	}
	return order
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Note on DUALSIM: the paper's single-machine comparison point is proxied
// by parallel SE (parallel.Run with plan.ModeSE) — its in-memory
// enumeration is the same DFS family as SE (Section II-B). The proxy
// lives in cmd/benchpaper; see DESIGN.md §3.
