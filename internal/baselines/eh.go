// Package baselines implements single-machine comparison systems from
// the paper's Section VIII-B1: an EmptyHeaded-like relational WCOJ
// engine (EH) and a CFL-like labeled-matching engine (CFL). Both are
// simulations of systems whose code is unavailable offline; see
// DESIGN.md §3 for the substitution argument. They reproduce the failure
// modes the paper reports — EH's non-connected orders and
// component-materialization OOM, CFL's ineffective unlabeled filtering —
// while producing exact counts (validated against LIGHT in tests).
package baselines

import (
	"errors"
	"sort"
	"time"

	"light/internal/bfsjoin"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/pattern"
)

// ErrOutOfSpace mirrors bfsjoin.ErrOutOfSpace for EH's materialized
// component joins.
var ErrOutOfSpace = bfsjoin.ErrOutOfSpace

// ErrTimeLimit is returned when a baseline exceeds its time budget.
var ErrTimeLimit = errors.New("baselines: time limit exceeded")

// Options configure a baseline run.
type Options struct {
	// MaxBytes caps EH's materialized component relations (0 = unlimited).
	MaxBytes int64
	// TimeLimit aborts the run (0 = unlimited).
	TimeLimit time.Duration
}

// Result reports a baseline run.
type Result struct {
	Matches       uint64
	Intersections uint64 // set intersections performed (Fig 5)
	PeakBytes     int64  // EH: peak materialized component bytes
	Order         string // human-readable description of the chosen order(s)
}

// EH simulates EmptyHeaded: patterns with at most four vertices run as a
// single generic worst-case-optimal join using EH's attribute order
// (ascending degree — possibly non-connected, as the paper observes for
// P2); larger patterns split into two vertex-induced components whose
// results are materialized and hash-joined, reproducing EH's memory
// blow-up on P4 and P6.
func EH(g *graph.Graph, p *pattern.Pattern, opts Options) (Result, error) {
	t := bfsjoin.NewTracker(bfsjoin.Options{MaxBytes: opts.MaxBytes, TimeLimit: opts.TimeLimit})
	aut := uint64(len(p.Automorphisms()))
	res := Result{}

	if p.NumVertices() <= 4 {
		order := ehOrder(p, allMask(p))
		res.Order = orderString(order)
		e := newGeneric(g, p, allMask(p), order, opts.TimeLimit)
		count, err := e.count()
		res.Intersections = e.stats.Intersections
		if err != nil {
			return res, err
		}
		res.Matches = count / aut
		return res, nil
	}

	// Two-component decomposition: peel a minimum-degree vertex v;
	// component A = P[V∖{v}], component B = P[{v} ∪ N(v)].
	v := minDegreeVertex(p)
	maskA := allMask(p) &^ (1 << uint(v))
	maskB := uint32(1<<uint(v)) | p.NeighborMask(v)
	res.Order = "split on u" + itoa(v)

	relA, ints1, err := materializeComponent(g, p, maskA, t, opts)
	res.Intersections += ints1
	if err != nil {
		return res, err
	}
	relB, ints2, err := materializeComponent(g, p, maskB, t, opts)
	res.Intersections += ints2
	if err != nil {
		return res, err
	}
	count, err := bfsjoin.CountJoin(relA, relB, t)
	res.PeakBytes = t.Peak()
	if err == bfsjoin.ErrTimeLimit {
		return res, ErrTimeLimit
	}
	if err != nil {
		return res, err
	}
	res.Matches = count / aut
	return res, nil
}

// materializeComponent enumerates the vertex-induced subgraph P[mask]
// with EH's order and materializes the result tuples.
func materializeComponent(g *graph.Graph, p *pattern.Pattern, mask uint32, t *bfsjoin.Tracker, opts Options) (*bfsjoin.Relation, uint64, error) {
	order := ehOrder(p, mask)
	e := newGeneric(g, p, mask, order, opts.TimeLimit)
	rel := &bfsjoin.Relation{Vertices: order}
	rowBytes := int64(len(order)) * 4
	err := e.enumerate(func(m []graph.VertexID) bool {
		tup := make([]graph.VertexID, len(order))
		for i, u := range order {
			tup[i] = m[u]
		}
		rel.Tuples = append(rel.Tuples, tup)
		return !t.OverBudget(int64(len(rel.Tuples)) * rowBytes)
	})
	if err != nil {
		return nil, e.stats.Intersections, err
	}
	if t.OverBudget(rel.Bytes()) {
		return nil, e.stats.Intersections, ErrOutOfSpace
	}
	if err := t.Charge(rel); err != nil {
		return nil, e.stats.Intersections, err
	}
	return rel, e.stats.Intersections, nil
}

// ehOrder returns EH's attribute order for the vertices in mask:
// ascending degree within the full pattern, ties by id. Connectivity is
// not considered — exactly the property that hurts EH on P2 in the paper
// (π³(P2) = (u1, u3, u0, u2)).
func ehOrder(p *pattern.Pattern, mask uint32) []pattern.Vertex {
	var vs []pattern.Vertex
	for u := 0; u < p.NumVertices(); u++ {
		if mask&(1<<uint(u)) != 0 {
			vs = append(vs, u)
		}
	}
	sort.SliceStable(vs, func(i, j int) bool {
		di, dj := p.Degree(vs[i]), p.Degree(vs[j])
		if di != dj {
			return di < dj
		}
		return vs[i] < vs[j]
	})
	return vs
}

func minDegreeVertex(p *pattern.Pattern) pattern.Vertex {
	best, bestDeg := 0, p.NumVertices()+1
	for u := 0; u < p.NumVertices(); u++ {
		if d := p.Degree(u); d < bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

func allMask(p *pattern.Pattern) uint32 {
	return uint32(1<<uint(p.NumVertices())) - 1
}

func orderString(order []pattern.Vertex) string {
	s := "("
	for i, u := range order {
		if i > 0 {
			s += ","
		}
		s += "u" + itoa(u)
	}
	return s + ")"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// generic is a compact WCOJ enumerator that, unlike the main engine,
// accepts non-connected orders: a vertex with no backward neighbors
// scans all of V(G).
type generic struct {
	g        *graph.Graph
	p        *pattern.Pattern
	order    []pattern.Vertex
	backward [][]pattern.Vertex // backward neighbors per position
	assigned []graph.VertexID
	bufs     [][]graph.VertexID
	scratch  []graph.VertexID
	stats    intersect.Stats
	deadline time.Time
	nodes    uint64
	visit    func([]graph.VertexID) bool
	err      error
}

func newGeneric(g *graph.Graph, p *pattern.Pattern, mask uint32, order []pattern.Vertex, limit time.Duration) *generic {
	e := &generic{
		g:        g,
		p:        p,
		order:    order,
		assigned: make([]graph.VertexID, p.NumVertices()),
		scratch:  make([]graph.VertexID, g.MaxDegree()),
	}
	if limit > 0 {
		e.deadline = time.Now().Add(limit)
	}
	e.backward = make([][]pattern.Vertex, len(order))
	e.bufs = make([][]graph.VertexID, len(order))
	var placed uint32
	for i, u := range order {
		for _, w := range p.Neighbors(u) {
			if placed&(1<<uint(w)) != 0 {
				e.backward[i] = append(e.backward[i], w)
			}
		}
		placed |= 1 << uint(u)
		e.bufs[i] = make([]graph.VertexID, g.MaxDegree())
	}
	return e
}

func (e *generic) count() (uint64, error) {
	var n uint64
	err := e.enumerate(func([]graph.VertexID) bool { n++; return true })
	return n, err
}

// enumerate walks the order; visit receives the mapping indexed by
// pattern vertex. Returning false stops (not an error).
func (e *generic) enumerate(visit func([]graph.VertexID) bool) error {
	e.visit = visit
	e.err = nil
	e.rec(0)
	return e.err
}

func (e *generic) rec(i int) bool {
	if i == len(e.order) {
		return e.visit(e.assigned)
	}
	u := e.order[i]
	back := e.backward[i]
	var cands []graph.VertexID
	switch len(back) {
	case 0:
		// Non-connected step: every data vertex is a candidate. This is
		// the search-space explosion the paper charges EH with.
		for v := 0; v < e.g.NumVertices(); v++ {
			if !e.tryExtend(i, u, graph.VertexID(v)) {
				return false
			}
		}
		return true
	case 1:
		cands = e.g.Neighbors(e.assigned[back[0]])
	default:
		sets := make([][]graph.VertexID, len(back))
		for k, w := range back {
			sets[k] = e.g.Neighbors(e.assigned[w])
		}
		n := intersect.MultiWay(e.bufs[i], e.scratch, sets, intersect.KindMerge, intersect.DefaultDelta, &e.stats)
		cands = e.bufs[i][:n]
	}
	for _, v := range cands {
		if !e.tryExtend(i, u, v) {
			return false
		}
	}
	return true
}

func (e *generic) tryExtend(i int, u pattern.Vertex, v graph.VertexID) bool {
	// Injectivity.
	for k := 0; k < i; k++ {
		if e.assigned[e.order[k]] == v {
			return true // skip candidate, keep going
		}
	}
	e.nodes++
	if e.nodes&8191 == 0 && !e.deadline.IsZero() && time.Now().After(e.deadline) {
		e.err = ErrTimeLimit
		return false
	}
	e.assigned[u] = v
	return e.rec(i + 1)
}
