package intersect

import (
	"light/internal/bitset"
	"light/internal/graph"
)

// This file holds the hub-bitmap kernels. High-degree ("hub") adjacency
// lists carry a word-packed bitmap (built by the graph package's hub
// index), and intersecting any set against a hub becomes one O(1)
// membership probe per element of the smaller side — O(|small|) total
// instead of O(|small|·log|large|) galloping. The engine selects these
// kernels through KindMergeBitmap/KindHybridBitmap; when no operand has
// a bitmap they degrade to the corresponding list kernel, so results
// are identical to the scalar kernels by construction (and verified by
// the equivalence property tests and the diffcheck oracle matrix).

// MergeBitmap intersects sorted set a against the hub bitmap into dst,
// which must have capacity at least len(a) and may alias a (probing
// writes position n <= the read position, preserving order). Each
// element of a costs one bitmap probe, recorded in stats.BitmapProbes.
//
//light:hotpath
//light:cap-contract
func MergeBitmap(dst, a []graph.VertexID, hub *bitset.Bitmap, stats *Stats) int {
	if stats != nil {
		stats.Intersections++
		stats.Elements += uint64(len(a))
		stats.BitmapProbes += uint64(len(a))
	}
	dst = dst[:cap(dst)]
	n := 0
	for _, x := range a {
		if hub.Contains(x) {
			dst[n] = x
			n++
		}
	}
	return n
}

// MultiWayBitmap is MultiWay with hub-bitmap awareness: bitmaps[i],
// when non-nil, is the bitmap form of sets[i]. The smallest set is
// materialized as the base, every bitmap-backed operand is applied as a
// probe filter (cheapest first: each pass costs O(|current|)), and the
// remaining plain lists are intersected with Pair using kernel k's list
// fallback. sets and bitmaps are reordered in place, in lockstep.
//
// Capacity contract and aliasing rules match MultiWay: dst and scratch
// each need capacity at least the minimum set length, and the single-set
// case panics on an undersized dst. When no operand has a bitmap the
// call is exactly MultiWay.
//
//light:hotpath
func MultiWayBitmap(dst, scratch []graph.VertexID, sets [][]graph.VertexID, bitmaps []*bitset.Bitmap, k Kind, delta int, stats *Stats) int {
	lk := k.ListFallback()
	switch len(sets) {
	case 0:
		return 0
	case 1:
		return copySingle(dst, sets[0])
	}
	// Selection sort by length, keeping the bitmap slice aligned.
	for i := range sets {
		min := i
		for j := i + 1; j < len(sets); j++ {
			if len(sets[j]) < len(sets[min]) {
				min = j
			}
		}
		sets[i], sets[min] = sets[min], sets[i]
		bitmaps[i], bitmaps[min] = bitmaps[min], bitmaps[i]
	}
	// Probe phase: filter the smallest set through every bitmap-backed
	// operand. MergeBitmap tolerates dst aliasing its input, so the
	// running result stays in dst across passes. The base's own bitmap
	// (bitmaps[0]) is never used — the base is iterated, not probed.
	cur := sets[0]
	probed := false
	n := len(cur)
	for i := 1; i < len(sets); i++ {
		if bitmaps[i] == nil {
			continue
		}
		probed = true
		n = MergeBitmap(dst, cur, bitmaps[i], stats)
		if n == 0 {
			return 0
		}
		cur = dst[:n]
	}
	if !probed {
		// No bitmap operand: identical to the list kernel. sets are
		// already sorted; MultiWay's own sort pass is a no-op.
		return MultiWay(dst, scratch, sets, lk, delta, stats)
	}
	// List phase: intersect the remaining plain lists, ping-ponging
	// between dst and scratch like MultiWay.
	curBuf, otherBuf := dst, scratch
	inDst := true
	for i := 1; i < len(sets) && n > 0; i++ {
		if bitmaps[i] != nil {
			continue
		}
		n = Pair(otherBuf, cur, sets[i], lk, delta, stats)
		curBuf, otherBuf = otherBuf, curBuf
		cur = curBuf[:n]
		inDst = !inDst
	}
	if !inDst {
		// cur is curBuf[:n], so the bounds are provably equal; the
		// explicit reslice states it (and satisfies capcontract).
		copy(dst[:n], cur[:n])
	}
	return n
}
