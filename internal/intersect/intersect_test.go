package intersect

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"light/internal/bitset"
	"light/internal/graph"
)

// ids converts ints to VertexIDs for test brevity.
func ids(xs ...int) []graph.VertexID {
	out := make([]graph.VertexID, len(xs))
	for i, x := range xs {
		out[i] = graph.VertexID(x)
	}
	return out
}

// refIntersect is the trivially correct reference.
func refIntersect(a, b []graph.VertexID) []graph.VertexID {
	in := map[graph.VertexID]bool{}
	for _, x := range a {
		in[x] = true
	}
	var out []graph.VertexID
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// randomSorted returns a strictly sorted random set of size up to maxLen
// over [0, universe).
func randomSorted(rng *rand.Rand, maxLen, universe int) []graph.VertexID {
	n := rng.Intn(maxLen + 1)
	seen := map[graph.VertexID]bool{}
	for len(seen) < n {
		seen[graph.VertexID(rng.Intn(universe))] = true
	}
	out := make([]graph.VertexID, 0, n)
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func runKernel(k Kind, a, b []graph.VertexID) []graph.VertexID {
	capN := len(a)
	if len(b) < capN {
		capN = len(b)
	}
	dst := make([]graph.VertexID, 0, capN)
	n := Pair(dst, a, b, k, DefaultDelta, nil)
	return dst[:n]
}

// allKinds includes the bitmap kinds: through Pair they must behave
// exactly like their list fallbacks (Pair has no bitmap operands).
var allKinds = []Kind{KindMerge, KindMergeBlock, KindGalloping, KindHybrid, KindHybridBlock, KindMergeBitmap, KindHybridBitmap}

func TestKernelsFixedCases(t *testing.T) {
	cases := []struct{ a, b, want []graph.VertexID }{
		{ids(), ids(), ids()},
		{ids(1), ids(), ids()},
		{ids(), ids(1), ids()},
		{ids(1, 2, 3), ids(2, 3, 4), ids(2, 3)},
		{ids(1, 3, 5, 7), ids(2, 4, 6, 8), ids()},
		{ids(1, 2, 3), ids(1, 2, 3), ids(1, 2, 3)},
		{ids(5), ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16), ids(5)},
		{ids(0, 100, 200, 300), ids(0, 1, 2, 3, 4, 5, 6, 7, 100, 300, 301, 302, 303, 304, 305, 306, 307), ids(0, 100, 300)},
	}
	for _, k := range allKinds {
		for ci, c := range cases {
			got := runKernel(k, c.a, c.b)
			if len(got) == 0 && len(c.want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("%v case %d: got %v, want %v", k, ci, got, c.want)
			}
		}
	}
}

func TestKernelsAgreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		a := randomSorted(rng, 120, 300)
		b := randomSorted(rng, 120, 300)
		want := refIntersect(a, b)
		for _, k := range allKinds {
			got := runKernel(k, a, b)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d kernel %v: got %v, want %v (a=%v b=%v)", trial, k, got, want, a, b)
			}
		}
	}
}

func TestKernelsSkewed(t *testing.T) {
	// Heavy skew exercises the galloping path inside Hybrid.
	rng := rand.New(rand.NewSource(5))
	big := randomSorted(rng, 5000, 20000)
	for trial := 0; trial < 50; trial++ {
		small := randomSorted(rng, 8, 20000)
		want := refIntersect(small, big)
		for _, k := range allKinds {
			got := runKernel(k, small, big)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("kernel %v skewed: got %v, want %v", k, got, want)
			}
			// Symmetric argument order must agree too.
			got2 := runKernel(k, big, small)
			if !reflect.DeepEqual(got2, got) {
				t.Fatalf("kernel %v not symmetric", k)
			}
		}
	}
}

func TestDstMayAliasA(t *testing.T) {
	for _, k := range allKinds {
		a := ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)
		b := ids(2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36)
		n := Pair(a[:0], a, b, k, DefaultDelta, nil)
		want := ids(2, 4, 6, 8, 10, 12, 14, 16, 18)
		if !reflect.DeepEqual(a[:n], want) {
			t.Errorf("%v with dst aliasing a: got %v, want %v", k, a[:n], want)
		}
	}
}

func TestHybridDispatch(t *testing.T) {
	var st Stats
	small := ids(1)
	big := make([]graph.VertexID, 100)
	for i := range big {
		big[i] = graph.VertexID(2 * i)
	}
	dst := make([]graph.VertexID, 0, len(big))
	Pair(dst, small, big, KindHybrid, DefaultDelta, &st) // ratio 100 ≥ 50 → galloping
	if st.Galloping != 1 || st.Intersections != 1 {
		t.Fatalf("skewed pair not dispatched to galloping: %+v", st)
	}
	Pair(dst, big[:50], big, KindHybrid, DefaultDelta, &st) // ratio 2 < 50 → merge
	if st.Galloping != 1 || st.Intersections != 2 {
		t.Fatalf("balanced pair dispatched wrongly: %+v", st)
	}
	if p := st.GallopingPercent(); p != 50 {
		t.Fatalf("GallopingPercent = %v, want 50", p)
	}
	// Empty input counts as skewed (O(1) instead of O(len)).
	Pair(dst, nil, big, KindHybrid, DefaultDelta, &st)
	if st.Galloping != 2 {
		t.Fatalf("empty set should gallop: %+v", st)
	}
}

func TestCount(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		a := randomSorted(rng, 80, 150)
		b := randomSorted(rng, 80, 150)
		if got, want := Count(a, b, DefaultDelta, nil), len(refIntersect(a, b)); got != want {
			t.Fatalf("Count = %d, want %d", got, want)
		}
	}
	// Force both dispatch paths. A nil stats must be accepted.
	if Count(ids(1), ids(1, 2, 3), 1, nil) != 1 {
		t.Fatal("galloping count wrong")
	}
	if Count(ids(1, 2), ids(2, 3), 100, nil) != 1 {
		t.Fatal("merge count wrong")
	}
}

// TestCountStats is the regression test for the counter-parity bugfix:
// Count used to bypass *Stats entirely, so counting-mode intersections
// and scanned elements never reached reports. Every expectation below
// is hand-counted.
func TestCountStats(t *testing.T) {
	var st Stats
	// Merge path: |a|=4, |b|=3, ratio 4/3 < δ=50. One intersection,
	// 4+3=7 elements, no galloping, |a ∩ b| = |{2,4}| = 2.
	if got := Count(ids(1, 2, 3, 4), ids(2, 4, 6), DefaultDelta, &st); got != 2 {
		t.Fatalf("merge-path Count = %d, want 2", got)
	}
	if st.Intersections != 1 || st.Elements != 7 || st.Galloping != 0 {
		t.Fatalf("merge-path stats = %+v, want {Intersections:1 Elements:7 Galloping:0}", st)
	}
	// Galloping path: δ=1 makes the 2/2 ratio skewed. Second
	// intersection, 2+2=4 more elements (11 total), one gallop.
	if got := Count(ids(1, 2), ids(2, 3), 1, &st); got != 1 {
		t.Fatalf("galloping-path Count = %d, want 1", got)
	}
	if st.Intersections != 2 || st.Elements != 11 || st.Galloping != 1 {
		t.Fatalf("galloping-path stats = %+v, want {Intersections:2 Elements:11 Galloping:1}", st)
	}
	// Empty input is skewed by definition: gallops, scans 0+3 elements.
	if got := Count(nil, ids(1, 2, 3), DefaultDelta, &st); got != 0 {
		t.Fatalf("empty Count = %d, want 0", got)
	}
	if st.Intersections != 3 || st.Elements != 14 || st.Galloping != 2 {
		t.Fatalf("empty-input stats = %+v, want {Intersections:3 Elements:14 Galloping:2}", st)
	}
	// Count and Pair must account identically for the same operands, so
	// counting-mode runs stay counter-comparable with materializing runs.
	var cs, ps Stats
	a, b := ids(1, 2, 3, 4), ids(2, 4, 6)
	Count(a, b, DefaultDelta, &cs)
	Pair(make([]graph.VertexID, 3), a, b, KindHybrid, DefaultDelta, &ps)
	if cs != ps {
		t.Fatalf("Count stats %+v != Pair stats %+v for identical operands", cs, ps)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", name)
		}
	}()
	f()
}

// TestMultiWayCapacityEdges is the regression table for the silent-
// truncation bugfix: the single-set path used to copy(dst[:cap(dst)],
// sets[0]) and return the truncated count when dst was undersized.
// Cases cover the 0/1/2/k-set capacity edges.
func TestMultiWayCapacityEdges(t *testing.T) {
	sets := func(ss ...[]graph.VertexID) [][]graph.VertexID { return ss }
	// 0 sets: nil dst is fine, result 0.
	if n := MultiWay(nil, nil, nil, KindMerge, DefaultDelta, nil); n != 0 {
		t.Fatalf("0 sets: n = %d", n)
	}
	// 1 empty set: zero-capacity dst satisfies the contract.
	if n := MultiWay(nil, nil, sets(ids()), KindMerge, DefaultDelta, nil); n != 0 {
		t.Fatalf("1 empty set: n = %d", n)
	}
	// 1 set, exact capacity: full copy.
	dst3 := make([]graph.VertexID, 3)
	if n := MultiWay(dst3, nil, sets(ids(7, 8, 9)), KindMerge, DefaultDelta, nil); n != 3 {
		t.Fatalf("1 set exact cap: n = %d, want 3", n)
	}
	// 1 set, undersized dst: must panic, not return a truncated count.
	mustPanic(t, "MultiWay 1 set cap 2 < len 3", func() {
		MultiWay(make([]graph.VertexID, 2), nil, sets(ids(7, 8, 9)), KindMerge, DefaultDelta, nil)
	})
	mustPanic(t, "MultiWay 1 set nil dst", func() {
		MultiWay(nil, nil, sets(ids(1)), KindMerge, DefaultDelta, nil)
	})
	// 2 sets: capacity = min set length is sufficient by contract.
	dst1 := make([]graph.VertexID, 1)
	scratch1 := make([]graph.VertexID, 1)
	if n := MultiWay(dst1, scratch1, sets(ids(2), ids(1, 2, 3)), KindMerge, DefaultDelta, nil); n != 1 || dst1[0] != 2 {
		t.Fatalf("2 sets: n = %d dst = %v", n, dst1)
	}
	// k sets with an empty operand: min length 0, zero-capacity buffers.
	if n := MultiWay(nil, nil, sets(ids(1, 2), ids(), ids(3)), KindMerge, DefaultDelta, nil); n != 0 {
		t.Fatalf("k sets with empty operand: n = %d", n)
	}
	// MultiWayBitmap shares the single-set contract.
	mustPanic(t, "MultiWayBitmap 1 set cap 0 < len 2", func() {
		MultiWayBitmap(nil, nil, sets(ids(1, 2)), make([]*bitset.Bitmap, 1), KindHybridBitmap, DefaultDelta, nil)
	})
}

func TestContains(t *testing.T) {
	s := ids(2, 4, 6, 8)
	for _, x := range []int{2, 4, 6, 8} {
		if !Contains(s, graph.VertexID(x)) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []int{0, 1, 3, 5, 7, 9} {
		if Contains(s, graph.VertexID(x)) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains on empty set")
	}
}

func TestMultiWay(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(4)
		sets := make([][]graph.VertexID, k)
		minLen := 1 << 30
		for i := range sets {
			sets[i] = randomSorted(rng, 60, 100)
			if len(sets[i]) < minLen {
				minLen = len(sets[i])
			}
		}
		want := sets[0]
		for _, s := range sets[1:] {
			want = refIntersect(want, s)
		}
		dst := make([]graph.VertexID, minLen)
		scratch := make([]graph.VertexID, minLen)
		var st Stats
		n := MultiWay(dst, scratch, sets, KindHybrid, DefaultDelta, &st)
		got := dst[:n]
		if len(got) != len(want) {
			t.Fatalf("trial %d: MultiWay len %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: MultiWay[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
		if k >= 2 && st.Intersections == 0 {
			t.Fatal("stats not recorded")
		}
		if st.Intersections > uint64(k-1) {
			t.Fatalf("MultiWay did %d intersections for %d sets (early exit broken?)", st.Intersections, k)
		}
	}
}

func TestMultiWayEdgeCases(t *testing.T) {
	if n := MultiWay(nil, nil, nil, KindMerge, DefaultDelta, nil); n != 0 {
		t.Fatalf("empty MultiWay = %d", n)
	}
	dst := make([]graph.VertexID, 3)
	if n := MultiWay(dst, nil, [][]graph.VertexID{ids(1, 2, 3)}, KindMerge, DefaultDelta, nil); n != 3 {
		t.Fatalf("single-set MultiWay = %d, want 3", n)
	}
	// An empty operand short-circuits: one intersection at most.
	var st Stats
	scratch := make([]graph.VertexID, 3)
	n := MultiWay(dst, scratch, [][]graph.VertexID{ids(1, 2), ids(), ids(1)}, KindMerge, DefaultDelta, &st)
	if n != 0 {
		t.Fatalf("MultiWay with empty operand = %d, want 0", n)
	}
	if st.Intersections != 1 {
		t.Fatalf("expected early exit after 1 intersection, did %d", st.Intersections)
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range allKinds {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("avx512"); ok {
		t.Error("ParseKind accepted junk")
	}
	if Kind(99).String() != "Unknown" {
		t.Error("unknown Kind String")
	}
}

// TestQuickKernelEquivalence property-checks all kernels against the map
// reference on arbitrary inputs.
func TestQuickKernelEquivalence(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := dedupSort(xs)
		b := dedupSort(ys)
		want := refIntersect(a, b)
		for _, k := range allKinds {
			got := runKernel(k, a, b)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func dedupSort(xs []uint16) []graph.VertexID {
	seen := map[graph.VertexID]bool{}
	for _, x := range xs {
		seen[graph.VertexID(x)] = true
	}
	out := make([]graph.VertexID, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	balanced := [2][]graph.VertexID{randomSorted(rng, 4096, 1<<20), randomSorted(rng, 4096, 1<<20)}
	skewed := [2][]graph.VertexID{randomSorted(rng, 32, 1<<20), randomSorted(rng, 8192, 1<<20)}
	dst := make([]graph.VertexID, 8192)
	for _, k := range allKinds {
		b.Run(k.String()+"/balanced", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Pair(dst, balanced[0], balanced[1], k, DefaultDelta, nil)
			}
		})
		b.Run(k.String()+"/skewed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Pair(dst, skewed[0], skewed[1], k, DefaultDelta, nil)
			}
		})
	}
}

func TestMergeBlockLaneBoundaries(t *testing.T) {
	// Adversarial inputs around the 8-lane block size: equal runs, runs
	// straddling block edges, and lengths exactly at multiples of 8.
	mk := func(start, n, step int) []graph.VertexID {
		out := make([]graph.VertexID, n)
		for i := range out {
			out[i] = graph.VertexID(start + i*step)
		}
		return out
	}
	cases := [][2][]graph.VertexID{
		{mk(0, 16, 1), mk(0, 16, 1)},   // identical, two full blocks
		{mk(0, 16, 1), mk(8, 16, 1)},   // half-overlap at block edge
		{mk(0, 24, 2), mk(1, 24, 2)},   // fully interleaved, no matches
		{mk(0, 8, 1), mk(0, 9, 1)},     // one exactly a block, one not
		{mk(0, 17, 3), mk(0, 17, 5)},   // coprime strides
		{mk(0, 8, 100), mk(700, 8, 1)}, // disjoint ranges, block skip path
	}
	for i, c := range cases {
		want := refIntersect(c[0], c[1])
		got := runKernel(KindMergeBlock, c[0], c[1])
		if len(got) != len(want) {
			t.Fatalf("case %d: got %v, want %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, want)
			}
		}
	}
}
