// Package intersect implements the sorted-set intersection kernels of the
// paper's Section VII-A: Merge (linear two-pointer), Galloping
// (exponential-probe binary search for cardinality-skewed inputs), and
// Hybrid (Algorithm 4: Merge when |S1|/|S2| and |S2|/|S1| are below the
// threshold δ, Galloping otherwise; δ defaults to 50 as in the paper).
//
// The paper implements Merge and Hybrid with AVX2. Go has no SIMD
// intrinsics in the standard toolchain, so this package substitutes
// Block kernels: 8-lane block-skipping, branch-reduced scalar loops with
// the same algorithmic structure (block max compare, skip-ahead) as the
// vectorized versions. See DESIGN.md §3 for why this preserves the
// experiments' shape.
//
// All kernels take strictly sorted uint32 slices and write the
// intersection into a caller-provided destination with capacity at least
// min(len(a), len(b)), keeping the hot path allocation-free. dst may
// alias a. Each kernel returns the number of elements written.
package intersect

import "light/internal/graph"

// DefaultDelta is the Hybrid size-ratio threshold δ from the paper
// (configured as 50 based on Lemire et al.'s performance study).
const DefaultDelta = 50

// lane is the simulated SIMD width (AVX2 holds eight 32-bit lanes).
const lane = 8

// Kind selects an intersection kernel.
type Kind int

const (
	// KindMerge is the linear two-pointer merge, O(|S1|+|S2|).
	KindMerge Kind = iota
	// KindMergeBlock is Merge with 8-lane block skipping — the stand-in
	// for the paper's MergeAVX2.
	KindMergeBlock
	// KindGalloping scans the smaller set and exponentially probes the
	// larger, O(|S1|·log|S2|) for |S1| < |S2|.
	KindGalloping
	// KindHybrid is Algorithm 4 with scalar Merge.
	KindHybrid
	// KindHybridBlock is Algorithm 4 with block-skipping Merge — the
	// stand-in for the paper's HybridAVX2.
	KindHybridBlock
	// KindMergeBitmap probes hub bitmaps for high-degree K1 operands and
	// falls back to MergeBlock between plain lists (see MultiWayBitmap).
	KindMergeBitmap
	// KindHybridBitmap probes hub bitmaps and falls back to HybridBlock
	// between plain lists — the production bitmap configuration.
	KindHybridBitmap
)

// String returns the kernel name as used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case KindMerge:
		return "Merge"
	case KindMergeBlock:
		return "MergeBlock"
	case KindGalloping:
		return "Galloping"
	case KindHybrid:
		return "Hybrid"
	case KindHybridBlock:
		return "HybridBlock"
	case KindMergeBitmap:
		return "MergeBitmap"
	case KindHybridBitmap:
		return "HybridBitmap"
	}
	return "Unknown"
}

// ListFallback returns the pure list kernel a bitmap kind degrades to
// when no operand has a hub bitmap; non-bitmap kinds return themselves.
func (k Kind) ListFallback() Kind {
	switch k {
	case KindMergeBitmap:
		return KindMergeBlock
	case KindHybridBitmap:
		return KindHybridBlock
	}
	return k
}

// UsesBitmaps reports whether k is one of the bitmap-probing kinds.
func (k Kind) UsesBitmaps() bool {
	return k == KindMergeBitmap || k == KindHybridBitmap
}

// ParseKind maps a kernel name (as printed by String) to its Kind.
func ParseKind(s string) (Kind, bool) {
	for k := KindMerge; k <= KindHybridBitmap; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Stats counts kernel invocations, letting experiments report the number
// of set intersections (Fig 5) and the Galloping share (Table III).
// Counters are not synchronized; use one Stats per worker and Add them.
type Stats struct {
	Intersections uint64 // total pairwise intersection operations
	Galloping     uint64 // how many of them used the galloping path
	Elements      uint64 // total input elements scanned (len(a)+len(b) per op)
	BitmapProbes  uint64 // elements probed against hub bitmaps
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Intersections += other.Intersections
	s.Galloping += other.Galloping
	s.Elements += other.Elements
	s.BitmapProbes += other.BitmapProbes
}

// Sub returns the counter-wise difference s − before; both must come
// from the same monotonically-growing accumulator (the lane engine uses
// it to carve one COMP's delta out of a running total).
//
//light:hotpath
func (s Stats) Sub(before Stats) Stats {
	return Stats{
		Intersections: s.Intersections - before.Intersections,
		Galloping:     s.Galloping - before.Galloping,
		Elements:      s.Elements - before.Elements,
		BitmapProbes:  s.BitmapProbes - before.BitmapProbes,
	}
}

// GallopingPercent returns the percentage of intersections that used the
// galloping path (Table III), or 0 when no intersections ran.
func (s *Stats) GallopingPercent() float64 {
	if s.Intersections == 0 {
		return 0
	}
	return 100 * float64(s.Galloping) / float64(s.Intersections)
}

// Pair intersects a and b into dst using kernel k with threshold delta,
// recording the operation in stats (which may be nil). It returns the
// number of elements written. This is the instrumented entry point the
// enumeration engines use.
//
//light:hotpath
func Pair(dst, a, b []graph.VertexID, k Kind, delta int, stats *Stats) int {
	if stats != nil {
		stats.Intersections++
		stats.Elements += uint64(len(a) + len(b))
	}
	// Pair has no bitmap operands; bitmap kinds run their list fallback
	// here (MultiWayBitmap is the bitmap-aware entry point).
	k = k.ListFallback()
	switch k {
	case KindMerge:
		return Merge(dst, a, b)
	case KindMergeBlock:
		return MergeBlock(dst, a, b)
	case KindGalloping:
		if stats != nil {
			stats.Galloping++
		}
		return Galloping(dst, a, b)
	case KindHybrid:
		if skewed(len(a), len(b), delta) {
			if stats != nil {
				stats.Galloping++
			}
			return Galloping(dst, a, b)
		}
		return Merge(dst, a, b)
	case KindHybridBlock:
		if skewed(len(a), len(b), delta) {
			if stats != nil {
				stats.Galloping++
			}
			return Galloping(dst, a, b)
		}
		return MergeBlock(dst, a, b)
	}
	return Merge(dst, a, b)
}

// Merge intersects two sorted sets with the classic two-pointer loop.
// The capacity contract is the caller's: cap(dst) must cover the full
// intersection (size it to min(len(a), len(b))); under-capacity panics
// on the write.
//
//light:hotpath
//light:cap-contract
func Merge(dst, a, b []graph.VertexID) int {
	dst = dst[:cap(dst)]
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x == y {
			dst[n] = x
			n++
			i++
			j++
		} else if x < y {
			i++
		} else {
			j++
		}
	}
	return n
}

// MergeBlock is Merge restructured the way the SIMD kernel is: whole
// 8-element blocks whose maximum is below the other side's current
// minimum are skipped with a single comparison (the vector compare), and
// only value-overlapping windows are merged element-wise. Same caller
// capacity contract as Merge: under-capacity panics on the write.
//
//light:hotpath
//light:cap-contract
func MergeBlock(dst, a, b []graph.VertexID) int {
	dst = dst[:cap(dst)]
	n := 0
	i, j := 0, 0
	for i+lane <= len(a) && j+lane <= len(b) {
		amax, bmax := a[i+lane-1], b[j+lane-1]
		if amax < b[j] {
			i += lane
			continue
		}
		if bmax < a[i] {
			j += lane
			continue
		}
		// The blocks overlap in value range, so both starting values are
		// at most lim and the inner merge makes progress.
		lim := amax
		if bmax < lim {
			lim = bmax
		}
		for a[i] <= lim && b[j] <= lim {
			x, y := a[i], b[j]
			if x == y {
				dst[n] = x
				n++
				i++
				j++
				if i == len(a) || j == len(b) {
					return n
				}
			} else if x < y {
				i++
			} else {
				j++
			}
		}
	}
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x == y {
			dst[n] = x
			n++
			i++
			j++
		} else if x < y {
			i++
		} else {
			j++
		}
	}
	return n
}

// gallop returns the smallest index idx >= lo with s[idx] >= x, probing
// exponentially from lo and finishing with binary search.
func gallop(s []graph.VertexID, lo int, x graph.VertexID) int {
	if lo >= len(s) || s[lo] >= x {
		return lo
	}
	bound := 1
	for lo+bound < len(s) && s[lo+bound] < x {
		bound <<= 1
	}
	hi := lo + bound
	if hi > len(s) {
		hi = len(s)
	}
	lo += bound >> 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Galloping scans the smaller set and locates each element in the larger
// one with exponential search. O(|small|·log|large|) — the right tool
// under cardinality skew. Same caller capacity contract as Merge:
// under-capacity panics on the write.
//
//light:hotpath
//light:cap-contract
func Galloping(dst, a, b []graph.VertexID) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	dst = dst[:cap(dst)]
	n := 0
	j := 0
	for _, x := range a {
		j = gallop(b, j, x)
		if j == len(b) {
			break
		}
		if b[j] == x {
			dst[n] = x
			n++
			j++
		}
	}
	return n
}

// Hybrid is Algorithm 4 with scalar Merge: Merge when the size ratio is
// below delta in both directions, Galloping otherwise. If stats is
// non-nil the invocation is counted.
func Hybrid(dst, a, b []graph.VertexID, delta int, stats *Stats) int {
	return Pair(dst, a, b, KindHybrid, delta, stats)
}

// HybridBlock is Hybrid with the block-skipping merge (the HybridAVX2
// stand-in).
func HybridBlock(dst, a, b []graph.VertexID, delta int, stats *Stats) int {
	return Pair(dst, a, b, KindHybridBlock, delta, stats)
}

// skewed reports whether the cardinality ratio reaches delta in either
// direction (the negation of Algorithm 4's Merge condition). Empty sets
// count as skewed so the O(min) galloping path handles them in O(1).
func skewed(la, lb, delta int) bool {
	if la == 0 || lb == 0 {
		return true
	}
	return la/lb >= delta || lb/la >= delta
}

// Count returns |a ∩ b| without materializing the result, using the
// hybrid strategy with threshold delta. The operation is recorded in
// stats (which may be nil) exactly like a materializing Pair call:
// counting intersections are intersections, and leaving them out of
// Stats silently skewed Fig 5/Table III-style reports and excluded the
// counting path from serial-vs-parallel counter-parity checks.
//
//light:hotpath
func Count(a, b []graph.VertexID, delta int, stats *Stats) int {
	if stats != nil {
		stats.Intersections++
		stats.Elements += uint64(len(a) + len(b))
	}
	if skewed(len(a), len(b), delta) {
		if stats != nil {
			stats.Galloping++
		}
		return countGalloping(a, b)
	}
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x == y {
			n++
			i++
			j++
		} else if x < y {
			i++
		} else {
			j++
		}
	}
	return n
}

func countGalloping(a, b []graph.VertexID) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	j := 0
	for _, x := range a {
		j = gallop(b, j, x)
		if j == len(b) {
			break
		}
		if b[j] == x {
			n++
			j++
		}
	}
	return n
}

// Contains reports whether sorted set s contains x, by binary search.
//
//light:hotpath
func Contains(s []graph.VertexID, x graph.VertexID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// MultiWay intersects sets[0] ∩ sets[1] ∩ … into dst, smallest set first
// so the running time is proportional to the minimum cardinality (the min
// property, Definition II.6). scratch is a second buffer of the same
// capacity used for ping-ponging; dst and scratch must each have capacity
// at least min over sets of len. Returns the count written into dst.
//
// The sets slice is reordered in place (ascending length). With one set,
// its contents are copied into dst; an undersized dst panics instead of
// silently truncating (see copySingle).
//
//light:hotpath
func MultiWay(dst, scratch []graph.VertexID, sets [][]graph.VertexID, k Kind, delta int, stats *Stats) int {
	switch len(sets) {
	case 0:
		return 0
	case 1:
		return copySingle(dst, sets[0])
	}
	// Selection sort by length: set counts are tiny (≤ pattern degree).
	for i := range sets {
		min := i
		for j := i + 1; j < len(sets); j++ {
			if len(sets[j]) < len(sets[min]) {
				min = j
			}
		}
		sets[i], sets[min] = sets[min], sets[i]
	}
	cur, other := dst, scratch
	inDst := true
	n := Pair(cur, sets[0], sets[1], k, delta, stats)
	for i := 2; i < len(sets) && n > 0; i++ {
		n = Pair(other, cur[:n], sets[i], k, delta, stats)
		cur, other = other, cur
		inDst = !inDst
	}
	if !inDst {
		copy(dst[:n], cur[:n])
	}
	return n
}

// copySingle is the one-operand case of the multiway kernels: the
// intersection of a single set is the set itself. The capacity contract
// (cap(dst) >= the minimum set length — here the only set) is enforced
// rather than assumed: a bare copy(dst[:cap(dst)], s) would silently
// truncate an undersized destination and return a wrong count, turning
// a caller bug into a wrong enumeration answer instead of a crash.
//
//light:hotpath
func copySingle(dst, s []graph.VertexID) int {
	if cap(dst) < len(s) {
		panic("intersect: destination capacity below single-operand length (multiway capacity contract violated)")
	}
	return copy(dst[:cap(dst)], s)
}
