package intersect

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"light/internal/bitset"
	"light/internal/graph"
)

// bm builds the bitmap form of a sorted set (nil input → empty bitmap).
func bm(s []graph.VertexID) *bitset.Bitmap { return bitset.FromSorted(s) }

func TestMergeBitmapFixed(t *testing.T) {
	cases := []struct{ a, hub, want []graph.VertexID }{
		{ids(), ids(), ids()},
		{ids(1, 2, 3), ids(), ids()},
		{ids(), ids(1, 2, 3), ids()},
		{ids(1, 2, 3), ids(2, 3, 4), ids(2, 3)},
		{ids(1, 3, 5), ids(2, 4, 6), ids()},
		{ids(1, 2, 3), ids(1, 2, 3), ids(1, 2, 3)},
		{ids(0, 63, 64, 65, 127, 128), ids(0, 64, 128), ids(0, 64, 128)},
		{ids(5, 1000, 2000), ids(1000), ids(1000)},
	}
	for ci, c := range cases {
		dst := make([]graph.VertexID, 0, len(c.a))
		n := MergeBitmap(dst, c.a, bm(c.hub), nil)
		got := dst[:n]
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: got %v, want %v", ci, got, c.want)
		}
	}
}

// TestMergeBitmapEquivalence is the core property: probing a's elements
// against FromSorted(b) must agree exactly with scalar Merge on (a, b).
func TestMergeBitmapEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 500; trial++ {
		a := randomSorted(rng, 120, 400)
		b := randomSorted(rng, 120, 400)
		want := refIntersect(a, b)
		dst := make([]graph.VertexID, 0, len(a))
		n := MergeBitmap(dst, a, bm(b), nil)
		got := dst[:n]
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d (a=%v b=%v)", trial, len(got), len(want), a, b)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

// TestMergeBitmapAlias pins the dst-aliases-a contract: probing writes
// position n <= the read cursor, so filtering in place is safe.
func TestMergeBitmapAlias(t *testing.T) {
	a := ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	hub := bm(ids(2, 4, 6, 8, 10, 12))
	n := MergeBitmap(a[:0], a, hub, nil)
	want := ids(2, 4, 6, 8, 10)
	if !reflect.DeepEqual(a[:n], want) {
		t.Fatalf("aliased MergeBitmap: got %v, want %v", a[:n], want)
	}
}

// TestMergeBitmapStats hand-counts the accounting: one intersection,
// len(a) elements scanned, len(a) bitmap probes.
func TestMergeBitmapStats(t *testing.T) {
	var st Stats
	dst := make([]graph.VertexID, 4)
	n := MergeBitmap(dst, ids(1, 2, 3, 4), bm(ids(2, 4, 100)), &st)
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	want := Stats{Intersections: 1, Elements: 4, BitmapProbes: 4}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

// multiWayBitmapRef computes the expected intersection with the map
// reference, ignoring bitmaps entirely.
func multiWayBitmapRef(sets [][]graph.VertexID) []graph.VertexID {
	want := sets[0]
	for _, s := range sets[1:] {
		want = refIntersect(want, s)
	}
	return want
}

// TestMultiWayBitmapEquivalence randomizes hub/non-hub mixes: each
// operand independently carries its bitmap form or nil, and the result
// must equal the pure list MultiWay on the same operands.
func TestMultiWayBitmapEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 400; trial++ {
		k := 1 + rng.Intn(4)
		sets := make([][]graph.VertexID, k)
		bitmaps := make([]*bitset.Bitmap, k)
		minLen := 1 << 30
		for i := range sets {
			sets[i] = randomSorted(rng, 60, 150)
			if rng.Intn(2) == 0 {
				bitmaps[i] = bm(sets[i])
			}
			if len(sets[i]) < minLen {
				minLen = len(sets[i])
			}
		}
		want := multiWayBitmapRef(sets)
		if k == 1 && minLen == 0 {
			continue // nothing to check; the single-empty-set case is covered elsewhere
		}
		dst := make([]graph.VertexID, minLen)
		scratch := make([]graph.VertexID, minLen)
		var st Stats
		n := MultiWayBitmap(dst, scratch, sets, bitmaps, KindHybridBitmap, DefaultDelta, &st)
		got := dst[:n]
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d): len %d, want %d", trial, k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

// TestMultiWayBitmapMixes spot-checks the dispatch corners: all
// operands bitmap-backed, none bitmap-backed (pure fallback), and only
// the smallest set bitmap-backed (its bitmap is never used — the base
// is iterated, so the call degrades to the list kernel).
func TestMultiWayBitmapMixes(t *testing.T) {
	a := ids(1, 2, 3)            // smallest → base
	b := ids(1, 2, 3, 4, 5, 6)   // mid
	c := ids(2, 3, 4, 5, 6, 7, 8)
	want := ids(2, 3)
	run := func(name string, bitmaps []*bitset.Bitmap, wantProbes uint64) {
		t.Helper()
		sets := [][]graph.VertexID{a, b, c}
		dst := make([]graph.VertexID, 3)
		scratch := make([]graph.VertexID, 3)
		var st Stats
		n := MultiWayBitmap(dst, scratch, sets, bitmaps, KindHybridBitmap, DefaultDelta, &st)
		if !reflect.DeepEqual(dst[:n], want) {
			t.Fatalf("%s: got %v, want %v", name, dst[:n], want)
		}
		if wantProbes == 0 && st.BitmapProbes != 0 {
			t.Fatalf("%s: unexpected probes %d", name, st.BitmapProbes)
		}
		if wantProbes > 0 && st.BitmapProbes != wantProbes {
			t.Fatalf("%s: probes = %d, want %d", name, st.BitmapProbes, wantProbes)
		}
	}
	// All bitmap-backed: base {1,2,3} probes b (3 probes → {1,2,3}),
	// then probes c (3 probes → {2,3}).
	run("all-bitmaps", []*bitset.Bitmap{bm(a), bm(b), bm(c)}, 6)
	// None bitmap-backed: pure list fallback, zero probes.
	run("no-bitmaps", make([]*bitset.Bitmap, 3), 0)
	// Only the base has a bitmap: never probed, zero probes.
	run("base-only", []*bitset.Bitmap{bm(a), nil, nil}, 0)
	// One mid operand bitmap-backed: 3 probes against b, then a list
	// intersection with c.
	run("mixed", []*bitset.Bitmap{nil, bm(b), nil}, 3)
}

func TestMultiWayBitmapEmptyOperand(t *testing.T) {
	sets := [][]graph.VertexID{ids(1, 2), ids()}
	bitmaps := []*bitset.Bitmap{nil, bm(ids())}
	if n := MultiWayBitmap(nil, nil, sets, bitmaps, KindHybridBitmap, DefaultDelta, nil); n != 0 {
		t.Fatalf("empty operand: n = %d", n)
	}
	// Probe phase short-circuit: a bitmap pass that empties the base
	// stops before touching later operands.
	var st Stats
	sets = [][]graph.VertexID{ids(1), ids(2, 3), ids(1, 2, 3, 4)}
	bitmaps = []*bitset.Bitmap{nil, bm(ids(2, 3)), nil}
	dst := make([]graph.VertexID, 1)
	scratch := make([]graph.VertexID, 1)
	if n := MultiWayBitmap(dst, scratch, sets, bitmaps, KindHybridBitmap, DefaultDelta, &st); n != 0 {
		t.Fatalf("probe-emptied base: n = %d", n)
	}
	if st.Intersections != 1 {
		t.Fatalf("expected early exit after the probe pass, did %d intersections", st.Intersections)
	}
}

// TestQuickBitmapEquivalence property-checks MergeBitmap and a fully
// bitmap-backed MultiWayBitmap against the scalar reference on
// arbitrary inputs (the τ-boundary analogue: any set may be a "hub").
func TestQuickBitmapEquivalence(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := dedupSort(xs)
		b := dedupSort(ys)
		want := refIntersect(a, b)
		dst := make([]graph.VertexID, 0, len(a))
		n := MergeBitmap(dst, a, bm(b), nil)
		if n != len(want) {
			return false
		}
		for i := range want {
			if dst[:n][i] != want[i] {
				return false
			}
		}
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		minLen := len(a)
		if len(b) < minLen {
			minLen = len(b)
		}
		d2 := make([]graph.VertexID, minLen)
		s2 := make([]graph.VertexID, minLen)
		n2 := MultiWayBitmap(d2, s2, [][]graph.VertexID{a, b}, []*bitset.Bitmap{bm(a), bm(b)}, KindMergeBitmap, DefaultDelta, nil)
		if n2 != len(want) {
			return false
		}
		for i := range want {
			if d2[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBitmapKernels cross-checks MergeBitmap against Merge on fuzzer-
// chosen byte strings decoded as two sorted sets.
func FuzzBitmapKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0, 255})
	f.Add([]byte{7, 7, 7}, []byte{7})
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		a := make([]graph.VertexID, 0, len(xb))
		for i, x := range xb {
			// Strictly increasing by construction: value + position ramp.
			a = append(a, graph.VertexID(x)+graph.VertexID(i)*256)
		}
		b := make([]graph.VertexID, 0, len(yb))
		for i, y := range yb {
			b = append(b, graph.VertexID(y)+graph.VertexID(i)*256)
		}
		want := make([]graph.VertexID, len(a))
		wn := Merge(want, a, b)
		dst := make([]graph.VertexID, len(a))
		gn := MergeBitmap(dst, a, bm(b), nil)
		if gn != wn {
			t.Fatalf("MergeBitmap = %d elements, Merge = %d (a=%v b=%v)", gn, wn, a, b)
		}
		for i := 0; i < wn; i++ {
			if dst[i] != want[i] {
				t.Fatalf("element %d: bitmap %d, merge %d", i, dst[i], want[i])
			}
		}
	})
}

func BenchmarkMergeBitmapVsGalloping(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	small := randomSorted(rng, 64, 1<<18)
	big := randomSorted(rng, 1<<15, 1<<18)
	hub := bm(big)
	dst := make([]graph.VertexID, len(small))
	b.Run("Galloping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Galloping(dst, small, big)
		}
	})
	b.Run("MergeBitmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MergeBitmap(dst, small, hub, nil)
		}
	})
}
