package engine

import (
	"math/rand"
	"testing"

	"light/internal/delta"
	"light/internal/gen"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/pattern"
	"light/internal/plan"
)

// materialize rebuilds the overlay view as a standalone CSR graph via
// the Builder — the independent reference the overlay path must match.
func materialize(t *testing.T, ov *delta.Overlay) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(ov.NumVertices())
	for v := 0; v < ov.NumVertices(); v++ {
		for _, u := range ov.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < u {
				b.AddEdge(graph.VertexID(v), u)
			}
		}
	}
	return b.Build()
}

// TestOverlayMatchesMaterialized runs every kernel (bitmap kernels
// included) over overlay views of several generated graphs and checks
// the counts against a from-scratch rebuild of the same adjacency. The
// rebuild keeps identical vertex IDs (Builder, no reorder), so the two
// runs walk the same symmetry-broken search tree and must agree exactly.
func TestOverlayMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := map[string]*graph.Graph{
		"ba":   gen.BarabasiAlbert(60, 3, 1),
		"er":   gen.ErdosRenyi(50, 120, 2),
		"grid": gen.Grid(5, 6),
	}
	pats := []*pattern.Pattern{
		mustPattern(t, "triangle", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}),
		mustPattern(t, "path3", 3, [][2]int{{0, 1}, {1, 2}}),
		mustPattern(t, "square", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
	}
	kernels := []intersect.Kind{
		intersect.KindMerge, intersect.KindHybridBlock,
		intersect.KindMergeBitmap, intersect.KindHybridBitmap,
	}
	for name, g := range graphs {
		n := g.NumVertices()
		// A few rounds of random mutation, stacking overlays.
		var ov *delta.Overlay
		for round := 0; round < 3; round++ {
			var add, rem []delta.Edge
			for i := 0; i < 6; i++ {
				e := delta.Edge{
					U: graph.VertexID(rng.Intn(n + 2)),
					V: graph.VertexID(rng.Intn(n + 2)),
				}.Canon()
				if e.U == e.V {
					continue
				}
				if rng.Intn(2) == 0 {
					add = append(add, e)
				} else {
					rem = append(rem, e)
				}
			}
			next, err := delta.Apply(g, ov, add, rem)
			if err != nil {
				t.Fatal(err)
			}
			ov = next
			if ov == nil {
				continue
			}
			ref := materialize(t, ov)
			for _, p := range pats {
				po := pattern.SymmetryBreaking(p)
				pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range kernels {
					want, err := New(ref, pl, Options{Kernel: k}).Run(nil)
					if err != nil {
						t.Fatal(err)
					}
					got, err := New(g, pl, Options{Kernel: k, Overlay: ov}).Run(nil)
					if err != nil {
						t.Fatal(err)
					}
					if got.Matches != want.Matches {
						t.Errorf("%s/%s/%s round %d: overlay %d matches, materialized %d",
							name, p.Name(), k, round, got.Matches, want.Matches)
					}
					// TailCount must agree too.
					gotTC, err := New(g, pl, Options{Kernel: k, Overlay: ov, TailCount: true}).Run(nil)
					if err != nil {
						t.Fatal(err)
					}
					if gotTC.Matches != want.Matches {
						t.Errorf("%s/%s/%s round %d: overlay tailcount %d, want %d",
							name, p.Name(), k, round, gotTC.Matches, want.Matches)
					}
				}
			}
		}
	}
}

// TestOverlayEmptyDeltaIsNoOpView checks that an overlay carrying no
// effective changes is never even constructed (Apply returns prev), and
// that an enumerator with a nil overlay equals the plain path.
func TestOverlayEmptyDeltaIsNoOpView(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 3)
	ov, err := delta.Apply(g, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ov != nil {
		t.Fatalf("empty Apply returned overlay %v", ov)
	}
}

// TestOverlayForeignBasePanics pins the guard in New: an overlay built
// over a different base graph is a programming error.
func TestOverlayForeignBasePanics(t *testing.T) {
	g1 := gen.Grid(3, 3)
	g2 := gen.Grid(3, 3)
	ov, err := delta.Apply(g2, nil, []delta.Edge{{U: 0, V: 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ov == nil {
		t.Skip("edge already present in grid")
	}
	p := mustPattern(t, "edge", 2, [][2]int{{0, 1}})
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an overlay with a foreign base")
		}
	}()
	New(g1, pl, Options{Overlay: ov})
}

func mustPattern(t *testing.T, name string, n int, edges [][2]int) *pattern.Pattern {
	t.Helper()
	es := make([][2]pattern.Vertex, len(edges))
	for i, e := range edges {
		es[i] = [2]pattern.Vertex{e[0], e[1]}
	}
	p, err := pattern.New(name, n, es)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
