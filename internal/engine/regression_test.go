package engine

import (
	"strings"
	"testing"
	"time"

	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

// TestTailCountCancellationLatency pins the fix for the unbounded
// cancellation latency under TailCount: checkDeadline used to poll only
// when Nodes&8191 == 0, but tailCount advances Nodes in batches, so a
// run whose node counter never lands on the residue ignored Stop
// forever. The construction makes that deterministic: a single-edge
// pattern on a star graph increments Nodes by exactly 2 per root (one
// root MAT + one tail batch of size 1), and the tail poll always
// observes an odd counter — pre-fix, a pre-set Stop flag was never
// seen and the run completed in full.
func TestTailCountCancellationLatency(t *testing.T) {
	const leaves = 30000
	g := gen.Star(leaves)
	p := pattern.Path(2)
	po := pattern.SymmetryBreaking(p)
	// π = (u0, u1) pins the construction: every leaf root contributes one
	// root MAT plus one tail batch of size 1 (the hub), so Nodes is odd at
	// every tail poll.
	pl, err := plan.Compile(p, po, []pattern.Vertex{0, 1}, plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, pl, Options{TailCount: true})
	var stop stopFlag
	stop.b.Store(true) // cancelled before the run even starts
	e.Stop = &stop.b
	res, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("pre-set Stop flag ignored: run completed with %d matches, %d nodes", res.Matches, res.Nodes)
	}
	// The poll cadence is one check per 8192 checkDeadline calls and
	// every call here adds at most 2 nodes, so a cancelled run must
	// unwind within a bounded number of nodes — far below the full
	// enumeration's 2*leaves+1.
	if res.Nodes > 2*8192+2 {
		t.Fatalf("cancelled TailCount run expanded %d nodes, want <= %d", res.Nodes, 2*8192+2)
	}
}

// TestTailCountTimeLimitLatency is the TimeLimit flavor of the same
// bug: an already-expired deadline must abort the TailCount run at the
// first polls, not after the full enumeration.
func TestTailCountTimeLimitLatency(t *testing.T) {
	g := gen.Star(30000)
	p := pattern.Path(2)
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, []pattern.Vertex{0, 1}, plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, pl, Options{TailCount: true, Deadline: time.Now().Add(-time.Hour)})
	res, err := e.Run(nil)
	if err != ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if res.Nodes > 2*8192+2 {
		t.Fatalf("expired-deadline TailCount run expanded %d nodes, want <= %d", res.Nodes, 2*8192+2)
	}
}

// TestRootFilterCancellationLatency pins the RunRoots poll hoist: the
// root loop used to poll only after the Filter guard, so a filter that
// rejects every root spun through the whole candidate set without a
// single checkDeadline call — a pre-set Stop flag was never observed
// and the run completed with Stopped=false. The poll now precedes the
// filter, so the first root iteration sees the flag.
func TestRootFilterCancellationLatency(t *testing.T) {
	g := gen.Star(30000)
	p := pattern.Path(2)
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, []pattern.Vertex{0, 1}, plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	rejectRoots := func(u int, v graph.VertexID) bool { return u != int(pl.Pi[0]) }
	e := New(g, pl, Options{Filter: rejectRoots})
	var stop stopFlag
	stop.b.Store(true) // cancelled before the run even starts
	e.Stop = &stop.b
	res, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("pre-set Stop flag ignored behind an all-rejecting root filter: run completed, %d nodes", res.Nodes)
	}
	if res.Nodes != 0 {
		t.Fatalf("cancelled run expanded %d nodes, want 0", res.Nodes)
	}
}

// TestMatLoopFilterCancellationLatency is the MAT-loop flavor of the
// same hoist: the candidate loop used to run its injectivity, degree,
// and Filter rejects before the poll, so rejected candidates burned no
// checkDeadline calls at all. The construction makes the latency gap
// observable through the 8192-call poll cadence: the filter trips Stop
// on the first tail candidate and rejects everything, so post-fix the
// hub root's 30000 rejected candidates accumulate polls and the run
// unwinds inside that first MAT loop (Nodes == 1). Pre-fix the MAT loop
// contributed zero polls, so only the once-per-root poll advanced the
// cadence and ~8192 further roots expanded before the flag was seen.
func TestMatLoopFilterCancellationLatency(t *testing.T) {
	g := gen.Star(30000) // hub is vertex 0, enumerated first
	p := pattern.Path(2)
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, []pattern.Vertex{0, 1}, plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	var stop stopFlag
	trip := func(u int, v graph.VertexID) bool {
		if u == int(pl.Pi[0]) {
			return true // accept every root; reject (and trip on) tail candidates
		}
		stop.b.Store(true)
		return false
	}
	e := New(g, pl, Options{Filter: trip})
	e.Stop = &stop.b
	res, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("Stop tripped by the tail filter was never observed: run completed, %d nodes", res.Nodes)
	}
	if res.Nodes > 4096 {
		t.Fatalf("cancelled run expanded %d nodes, want the hub root only (pre-fix shape expands ~8192)", res.Nodes)
	}
}

// TestFrameValidateMaskSigmaConsistency pins the Frame.Validate fix: a
// frame whose MatMask disagrees with the σ prefix (wrong popcount or
// wrong bits) must be rejected, because resume would apply injectivity
// and symmetry-breaking checks to the wrong vertices. Pre-fix, Validate
// only range-checked the mask (and skipped even that for 32-vertex
// patterns).
func TestFrameValidateMaskSigmaConsistency(t *testing.T) {
	g := gen.Complete(8)
	p := pattern.P4() // 5 vertices: lazy σ has a non-trivial MAT prefix
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	// Find a resumable MAT beyond σ[0] and build a valid frame for it.
	sigmaIdx := -1
	for i := 1; i < len(pl.Sigma); i++ {
		if pl.Sigma[i].Mode == plan.Mat {
			sigmaIdx = i
			break
		}
	}
	if sigmaIdx < 0 {
		t.Fatal("plan has no resumable MAT")
	}
	valid := func() *Frame {
		f := &Frame{
			SigmaIdx:  sigmaIdx,
			Assigned:  make([]graph.VertexID, p.NumVertices()),
			MatMask:   pl.MatMaskBefore(sigmaIdx),
			Cands:     make([][]graph.VertexID, p.NumVertices()),
			Remaining: []graph.VertexID{0, 1},
		}
		return f
	}
	if err := valid().Validate(pl, g); err != nil {
		t.Fatalf("baseline frame rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(f *Frame)
		wantSub string
	}{
		{
			name:    "mask missing the root bit",
			mutate:  func(f *Frame) { f.MatMask &^= 1 << uint(pl.Pi[0]) },
			wantSub: "inconsistent with σ",
		},
		{
			name:    "mask with a spurious extra MAT",
			mutate:  func(f *Frame) { f.MatMask |= 1 << uint(pl.Sigma[len(pl.Sigma)-1].Vertex) },
			wantSub: "inconsistent with σ",
		},
		{
			name: "right popcount, wrong vertices",
			mutate: func(f *Frame) {
				// Swap one materialized bit for an unmaterialized one.
				want := pl.MatMaskBefore(sigmaIdx)
				all := uint32(1<<uint(p.NumVertices())) - 1
				inv := ^want & all
				if want == 0 || inv == 0 {
					t.Fatal("construction needs both set and clear bits")
				}
				f.MatMask = want&(want-1) | inv&-inv // drop lowest set, add lowest clear
			},
			wantSub: "inconsistent with σ",
		},
		{
			name:    "mask exceeding the pattern",
			mutate:  func(f *Frame) { f.MatMask |= 1 << 20 },
			wantSub: "exceeds pattern size",
		},
	}
	for _, tc := range cases {
		f := valid()
		tc.mutate(f)
		err := f.Validate(pl, g)
		if err == nil {
			t.Errorf("%s: Validate accepted corrupt frame mask %#x at σ[%d]", tc.name, f.MatMask, f.SigmaIdx)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestNegativeDeltaRejected pins the Options.Delta validation: a
// negative δ makes every cardinality pair look skewed, silently turning
// the Hybrid kernels into pure Galloping. Pre-fix it survived
// withDefaults untouched.
func TestNegativeDeltaRejected(t *testing.T) {
	g := gen.Complete(4)
	p := pattern.Triangle()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("engine.New accepted Delta = -1")
		}
	}()
	New(g, pl, Options{Delta: -1})
}

// TestTrailingZeros32Intrinsic pins the math/bits replacement of the
// hand-rolled loop, which spun forever on 0. The watchdog goroutine
// makes the pre-fix hang a clean test failure instead of a test-binary
// timeout.
func TestTrailingZeros32Intrinsic(t *testing.T) {
	done := make(chan int, 1)
	go func() { done <- trailingZeros32(0) }()
	select {
	case got := <-done:
		if got != 32 {
			t.Fatalf("trailingZeros32(0) = %d, want 32", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("trailingZeros32(0) did not return (infinite loop)")
	}
	for i := 0; i < 32; i++ {
		if got := trailingZeros32(1 << uint(i)); got != i {
			t.Fatalf("trailingZeros32(1<<%d) = %d, want %d", i, got, i)
		}
	}
}
