package engine

import (
	"testing"

	"light/internal/arena"
	"light/internal/gen"
	"light/internal/intersect"
	"light/internal/pattern"
	"light/internal/plan"
)

// compile builds a LIGHT plan for p with symmetry breaking, failing the
// test on compile errors.
func compile(t *testing.T, p *pattern.Pattern) *plan.Plan {
	t.Helper()
	po := pattern.SymmetryBreaking(p)
	pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestBitmapKernelMatchesList runs the bitmap kernels against their list
// fallbacks on hub-rich graphs: identical match and node counts, and on
// a graph with hubs the bitmap kernel must actually probe.
func TestBitmapKernelMatchesList(t *testing.T) {
	cases := []struct {
		name string
		p    *pattern.Pattern
	}{
		{"triangle", pattern.Triangle()},
		{"4clique", pattern.P3()},
		{"p5", pattern.P5()},
	}
	g := gen.StarChords(300, 900, 7)
	// Force a small τ so the star center (and chord-heavy leaves) carry
	// bitmaps even on this small test graph.
	g.BuildHubIndex(8)
	if g.NumHubs() == 0 {
		t.Fatal("test graph has no hubs; bitmap path not exercised")
	}
	for _, c := range cases {
		pl := compile(t, c.p)
		base, err := New(g, pl, Options{Kernel: intersect.KindHybridBlock}).Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []intersect.Kind{intersect.KindMergeBitmap, intersect.KindHybridBitmap} {
			res, err := New(g, pl, Options{Kernel: k}).Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Matches != base.Matches || res.Nodes != base.Nodes || res.Comps != base.Comps {
				t.Fatalf("%s/%v: matches/nodes/comps %d/%d/%d, list kernel %d/%d/%d",
					c.name, k, res.Matches, res.Nodes, res.Comps, base.Matches, base.Nodes, base.Comps)
			}
			if base.Stats.BitmapProbes != 0 {
				t.Fatalf("%s: list kernel recorded %d bitmap probes", c.name, base.Stats.BitmapProbes)
			}
			// Patterns with multi-operand COMPs must hit the hub index.
			if c.p.NumVertices() >= 4 && res.Stats.BitmapProbes == 0 {
				t.Fatalf("%s/%v: no bitmap probes on a hub-rich graph", c.name, k)
			}
		}
	}
}

// TestBitmapKernelNoHubIndex pins the fallback: with the hub index
// dropped, bitmap kernels silently run their list fallback and agree.
func TestBitmapKernelNoHubIndex(t *testing.T) {
	g := gen.BarabasiAlbert(150, 5, 3)
	g.BuildHubIndex(-1)
	pl := compile(t, pattern.P3())
	base, err := New(g, pl, Options{Kernel: intersect.KindHybridBlock}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(g, pl, Options{Kernel: intersect.KindHybridBitmap}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != base.Matches || res.Stats.BitmapProbes != 0 {
		t.Fatalf("no-index run: matches %d (want %d), probes %d (want 0)",
			res.Matches, base.Matches, res.Stats.BitmapProbes)
	}
}

// TestSteadyStateZeroAllocs pins the arena contract: after the first run
// warms the slabs, whole enumeration runs allocate nothing — for the
// list kernels and the bitmap kernels alike.
func TestSteadyStateZeroAllocs(t *testing.T) {
	g := gen.StarChords(120, 360, 11)
	g.BuildHubIndex(8)
	pl := compile(t, pattern.P5())
	for _, k := range []intersect.Kind{intersect.KindHybridBlock, intersect.KindHybridBitmap} {
		e := New(g, pl, Options{Kernel: k})
		if _, err := e.Run(nil); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(3, func() {
			if _, err := e.Run(nil); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Fatalf("kernel %v: %v allocations per steady-state run, want 0", k, n)
		}
	}
}

// TestSharedArenaAcrossEnumerators pins the per-worker reuse pattern the
// parallel scheduler relies on: two enumerators built on one arena (run
// sequentially) share slabs, and the footprint does not grow with the
// number of enumerators.
func TestSharedArenaAcrossEnumerators(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 5)
	pl := compile(t, pattern.Triangle())
	ar := arena.New()
	opts := Options{Kernel: intersect.KindHybridBlock, Arena: ar}
	e1 := New(g, pl, opts)
	r1, err := e1.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	after1 := ar.Bytes()
	e2 := New(g, pl, opts)
	r2, err := e2.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Matches != r2.Matches {
		t.Fatalf("shared-arena runs disagree: %d vs %d", r1.Matches, r2.Matches)
	}
	if ar.Bytes() != after1 {
		t.Fatalf("arena grew across enumerators: %d then %d", after1, ar.Bytes())
	}
	if e1.CandidateMemoryBytes() != e2.CandidateMemoryBytes() {
		t.Fatal("enumerators on one arena report different footprints")
	}
}
