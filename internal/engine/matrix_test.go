package engine

import (
	"testing"

	"light/internal/gen"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/pattern"
	"light/internal/plan"
)

// TestTailCountDegreeFilterEquality promotes two soundness properties
// from scattered spot checks to a deterministic sweep over the full
// pattern catalog on seeded graphs:
//
//   - TailCount on/off must not change the match count. The shortcut
//     adds the size of the final MAT's candidate set instead of
//     looping, which is only sound because tail candidates already
//     passed every COMP/injectivity/partial-order check.
//   - DegreeFilter on/off must not change the match count. The filter
//     d_G(v) >= d_P(u) is sound for subgraph (not induced) matching:
//     any data vertex in a match has at least the pattern vertex's
//     degree.
//
// Both properties are checked per kernel, because TailCount bypasses
// the kernel on the tail position and DegreeFilter changes which
// candidate sets the kernels see.
func TestTailCountDegreeFilterEquality(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er", gen.ErdosRenyi(80, 240, 7)},
		{"ba", gen.BarabasiAlbert(150, 3, 9)},
		{"starchords", gen.StarChords(40, 60, 5)},
		{"ties", gen.DegreeTies(5, 6, 3)},
	}
	// Small τ so these small graphs carry indexed hubs and the bitmap
	// kernels exercise the probe path, not just the list fallback.
	for _, tg := range graphs {
		tg.g.BuildHubIndex(3)
	}
	kernels := []intersect.Kind{
		intersect.KindMerge, intersect.KindHybrid,
		intersect.KindMergeBitmap, intersect.KindHybridBitmap,
	}
	for _, tg := range graphs {
		for _, p := range pattern.Catalog() {
			po := pattern.SymmetryBreaking(p)
			pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range kernels {
				base, err := New(tg.g, pl, Options{Kernel: k}).Run(nil)
				if err != nil {
					t.Fatalf("%s/%s: %v", tg.name, p.Name(), err)
				}
				for _, opts := range []Options{
					{Kernel: k, TailCount: true},
					{Kernel: k, DegreeFilter: true},
					{Kernel: k, TailCount: true, DegreeFilter: true},
				} {
					res, err := New(tg.g, pl, opts).Run(nil)
					if err != nil {
						t.Fatalf("%s/%s tc=%v df=%v: %v", tg.name, p.Name(), opts.TailCount, opts.DegreeFilter, err)
					}
					if res.Matches != base.Matches {
						t.Errorf("%s/%s kernel=%d tc=%v df=%v: %d matches, want %d",
							tg.name, p.Name(), k, opts.TailCount, opts.DegreeFilter, res.Matches, base.Matches)
					}
				}
			}
		}
	}
}

// TestTailCountNodeAccounting pins the shortcut's side contract: with
// TailCount on, Nodes still counts every leaf (the batch adds n, not
// 1), so metrics stay comparable across configurations.
func TestTailCountNodeAccounting(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 13)
	for _, p := range pattern.Catalog() {
		po := pattern.SymmetryBreaking(p)
		pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
		if err != nil {
			t.Fatal(err)
		}
		off, err := New(g, pl, Options{}).Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		on, err := New(g, pl, Options{TailCount: true}).Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if on.Nodes != off.Nodes {
			t.Errorf("%s: TailCount changed node accounting: %d vs %d", p.Name(), on.Nodes, off.Nodes)
		}
	}
}
