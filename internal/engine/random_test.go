package engine

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

type stopFlag struct{ b atomic.Bool }

// randomConnectedPattern is kept as a local alias so the call sites read
// the same; the generator itself now lives in the pattern package where
// the differential harness shares it.
func randomConnectedPattern(rng *rand.Rand, n, extraEdges int) *pattern.Pattern {
	return pattern.RandomConnected(rng, n, extraEdges)
}

// TestRandomPatternsMatchBruteForce is the widest correctness net: random
// patterns × random graphs × random modes × random orders, all compared
// against the independent brute-force matcher.
func TestRandomPatternsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(3) // 3..5 pattern vertices
		p := randomConnectedPattern(rng, n, rng.Intn(4))
		var g = gen.ErdosRenyi(20+rng.Intn(20), 40+rng.Intn(80), int64(trial))
		po := pattern.SymmetryBreaking(p)
		want := bruteCount(p, po, g)

		orders := plan.ConnectedOrders(p, po)
		pi := orders[rng.Intn(len(orders))]
		mode := allModes[rng.Intn(len(allModes))]
		pl, err := plan.Compile(p, po, pi, mode)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := New(g, pl, Options{TailCount: trial%2 == 0}).Run(nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Matches != want {
			t.Fatalf("trial %d: pattern %v mode %s π=%v: got %d, want %d",
				trial, p, mode.Name(), pi, res.Matches, want)
		}
	}
}

// TestRandomPatternsAllModesAgree fuzzes larger graphs where brute force
// is too slow, checking the four engines against each other instead.
func TestRandomPatternsAllModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(2)
		p := randomConnectedPattern(rng, n, rng.Intn(3))
		g := gen.BarabasiAlbert(150+rng.Intn(150), 3+rng.Intn(3), int64(trial))
		po := pattern.SymmetryBreaking(p)
		pi := plan.ConnectedOrders(p, po)[0]
		var want uint64
		for i, mode := range allModes {
			pl, err := plan.Compile(p, po, pi, mode)
			if err != nil {
				t.Fatal(err)
			}
			res, err := New(g, pl, Options{}).Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = res.Matches
			} else if res.Matches != want {
				t.Fatalf("trial %d mode %s: %d != %d (pattern %v)", trial, mode.Name(), res.Matches, want, p)
			}
		}
	}
}

// TestExternalStopFlag verifies the parallel scheduler's stop channel:
// setting Stop mid-run unwinds without error and flags Stopped.
func TestExternalStopFlag(t *testing.T) {
	g := gen.Complete(60)
	p := pattern.Clique(4)
	po := pattern.SymmetryBreaking(p)
	pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	e := New(g, pl, Options{})
	var stop stopFlag
	e.Stop = &stop.b
	n := 0
	res, err := e.Run(func(m []graph.VertexID) bool {
		n++
		if n == 10 {
			stop.b.Store(true)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("expected Stopped via external flag")
	}
	if res.Matches >= 487635 { // full C(60,4)
		t.Fatal("stop flag had no effect")
	}
}
