package engine

import (
	"testing"
	"time"

	"light/internal/gen"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/pattern"
	"light/internal/plan"
)

// bruteCount counts injective homomorphisms from p to g that satisfy the
// partial order, by naive recursion in natural vertex order with no
// candidate machinery. The independent reference for all engines.
func bruteCount(p *pattern.Pattern, po *pattern.PartialOrder, g *graph.Graph) uint64 {
	n := p.NumVertices()
	nv := g.NumVertices()
	assigned := make([]graph.VertexID, n)
	used := make([]bool, nv)
	var count uint64
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			count++
			return
		}
		for v := 0; v < nv; v++ {
			if used[v] {
				continue
			}
			ok := true
			for w := 0; w < u && ok; w++ {
				if p.HasEdge(u, w) && !g.HasEdge(graph.VertexID(v), assigned[w]) {
					ok = false
				}
			}
			if ok && po != nil {
				for w := 0; w < u && ok; w++ {
					if po.Less[w]&(1<<uint(u)) != 0 && assigned[w] >= graph.VertexID(v) {
						ok = false
					}
					if po.Less[u]&(1<<uint(w)) != 0 && graph.VertexID(v) >= assigned[w] {
						ok = false
					}
				}
			}
			if !ok {
				continue
			}
			assigned[u] = graph.VertexID(v)
			used[v] = true
			rec(u + 1)
			used[v] = false
		}
	}
	rec(0)
	return count
}

var allModes = []plan.Mode{plan.ModeSE, plan.ModeLM, plan.ModeMSC, plan.ModeLIGHT}

// testGraphs returns small graphs diverse enough to exercise every code
// path: skewed, uniform, dense, disconnected-ish.
func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"ba":       gen.BarabasiAlbert(60, 3, 1),
		"er":       gen.ErdosRenyi(50, 120, 2),
		"complete": gen.Complete(9),
		"grid":     gen.Grid(5, 6),
		"star":     gen.Star(12),
		"sparse":   gen.ErdosRenyi(40, 30, 3),
	}
}

func TestEnginesMatchBruteForceAllModesAllOrders(t *testing.T) {
	graphs := testGraphs()
	pats := []*pattern.Pattern{pattern.Triangle(), pattern.P1(), pattern.P2(), pattern.Path(3), pattern.StarPattern(3)}
	for gname, g := range graphs {
		for _, p := range pats {
			po := pattern.SymmetryBreaking(p)
			want := bruteCount(p, po, g)
			for _, pi := range plan.ConnectedOrders(p, po) {
				for _, mode := range allModes {
					pl, err := plan.Compile(p, po, pi, mode)
					if err != nil {
						t.Fatal(err)
					}
					res, err := New(g, pl, Options{}).Run(nil)
					if err != nil {
						t.Fatal(err)
					}
					if res.Matches != want {
						t.Fatalf("%s/%s mode=%s π=%v: got %d, want %d",
							gname, p.Name(), mode.Name(), pi, res.Matches, want)
					}
				}
			}
		}
	}
}

func TestEnginesMatchBruteForceCatalog(t *testing.T) {
	// Full catalog on two graphs with the chosen (not exhaustive) order.
	graphs := map[string]*graph.Graph{
		"ba": gen.BarabasiAlbert(45, 4, 7),
		"er": gen.ErdosRenyi(35, 100, 8),
	}
	for gname, g := range graphs {
		for _, p := range pattern.Catalog() {
			po := pattern.SymmetryBreaking(p)
			want := bruteCount(p, po, g)
			pi := plan.ConnectedOrders(p, po)[0]
			for _, mode := range allModes {
				pl, err := plan.Compile(p, po, pi, mode)
				if err != nil {
					t.Fatal(err)
				}
				res, err := New(g, pl, Options{}).Run(nil)
				if err != nil {
					t.Fatal(err)
				}
				if res.Matches != want {
					t.Fatalf("%s/%s mode=%s: got %d, want %d", gname, p.Name(), mode.Name(), res.Matches, want)
				}
			}
		}
	}
}

func TestSymmetryBreakingCountsEmbeddings(t *testing.T) {
	// Matches with the partial order × |Aut| = injective homomorphisms.
	g := gen.ErdosRenyi(30, 90, 5)
	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.P1(), pattern.P3(), pattern.Cycle(5)} {
		po := pattern.SymmetryBreaking(p)
		homs := bruteCount(p, nil, g)
		aut := uint64(len(p.Automorphisms()))
		pl, err := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
		if err != nil {
			t.Fatal(err)
		}
		res, err := New(g, pl, Options{}).Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches*aut != homs {
			t.Fatalf("%s: %d matches × %d aut = %d, want %d homs", p.Name(), res.Matches, aut, res.Matches*aut, homs)
		}
	}
}

func TestAllKernelsSameCount(t *testing.T) {
	g := gen.BarabasiAlbert(120, 5, 3)
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	var want uint64
	for i, k := range []intersect.Kind{intersect.KindMerge, intersect.KindMergeBlock, intersect.KindGalloping, intersect.KindHybrid, intersect.KindHybridBlock} {
		res, err := New(g, pl, Options{Kernel: k}).Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Matches
		} else if res.Matches != want {
			t.Fatalf("kernel %v: %d matches, want %d", k, res.Matches, want)
		}
	}
	if want == 0 {
		t.Fatal("degenerate test: zero matches")
	}
}

func TestTailCountMatchesFaithful(t *testing.T) {
	for _, g := range testGraphs() {
		for _, p := range []*pattern.Pattern{pattern.P1(), pattern.P2(), pattern.P4()} {
			po := pattern.SymmetryBreaking(p)
			for _, mode := range allModes {
				pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], mode)
				faithful, err := New(g, pl, Options{}).Run(nil)
				if err != nil {
					t.Fatal(err)
				}
				shortcut, err := New(g, pl, Options{TailCount: true}).Run(nil)
				if err != nil {
					t.Fatal(err)
				}
				if faithful.Matches != shortcut.Matches {
					t.Fatalf("%s %s: tail count %d, faithful %d", p.Name(), mode.Name(), shortcut.Matches, faithful.Matches)
				}
			}
		}
	}
}

func TestLMReducesIntersections(t *testing.T) {
	// The paper's headline effect: on the chordal square, LM performs
	// strictly fewer intersections than SE (up to 95% fewer, §VIII-B1).
	g := gen.BarabasiAlbert(300, 6, 11)
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	// The paper's running-example order (u0, u2, u1, u3): u1 and u3 stay
	// free after both anchors are materialized, which is where laziness
	// pays. π = (0,1,2,3) would degenerate to the interleaved σ.
	pi := []pattern.Vertex{0, 2, 1, 3}
	se, _ := plan.Compile(p, po, pi, plan.ModeSE)
	lm, _ := plan.Compile(p, po, pi, plan.ModeLM)
	light, _ := plan.Compile(p, po, pi, plan.ModeLIGHT)
	rSE, err := New(g, se, Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	rLM, err := New(g, lm, Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	rLIGHT, err := New(g, light, Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rLM.Stats.Intersections >= rSE.Stats.Intersections {
		t.Fatalf("LM intersections %d !< SE %d", rLM.Stats.Intersections, rSE.Stats.Intersections)
	}
	if rLIGHT.Stats.Intersections > rLM.Stats.Intersections {
		t.Fatalf("LIGHT intersections %d > LM %d", rLIGHT.Stats.Intersections, rLM.Stats.Intersections)
	}
	if rSE.Matches != rLM.Matches || rSE.Matches != rLIGHT.Matches {
		t.Fatal("counts diverged")
	}
}

func TestVisitor(t *testing.T) {
	g := gen.Complete(6)
	p := pattern.Triangle()
	po := pattern.SymmetryBreaking(p)
	pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	var got [][3]graph.VertexID
	res, err := New(g, pl, Options{}).Run(func(m []graph.VertexID) bool {
		got = append(got, [3]graph.VertexID{m[0], m[1], m[2]})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// C(6,3) = 20 triangles.
	if res.Matches != 20 || len(got) != 20 {
		t.Fatalf("matches = %d, visited = %d, want 20", res.Matches, len(got))
	}
	// Every visited mapping must be a valid triangle with distinct,
	// order-respecting vertices.
	seen := map[[3]graph.VertexID]bool{}
	for _, m := range got {
		if seen[m] {
			t.Fatalf("duplicate mapping %v", m)
		}
		seen[m] = true
		if !(m[0] < m[1] && m[1] < m[2]) {
			t.Fatalf("partial order violated: %v", m)
		}
		if !g.HasEdge(m[0], m[1]) || !g.HasEdge(m[1], m[2]) || !g.HasEdge(m[0], m[2]) {
			t.Fatalf("non-triangle emitted: %v", m)
		}
	}
}

func TestVisitorEarlyStop(t *testing.T) {
	g := gen.Complete(8)
	p := pattern.Triangle()
	po := pattern.SymmetryBreaking(p)
	pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	calls := 0
	res, err := New(g, pl, Options{}).Run(func(m []graph.VertexID) bool {
		calls++
		return calls < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || calls != 5 {
		t.Fatalf("stopped=%v calls=%d, want stop after 5", res.Stopped, calls)
	}
}

func TestTimeLimit(t *testing.T) {
	// A large clique query on a big complete graph cannot finish in 1ns.
	g := gen.Complete(120)
	p := pattern.Clique(5)
	po := pattern.SymmetryBreaking(p)
	pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	_, err := New(g, pl, Options{TimeLimit: time.Nanosecond}).Run(nil)
	if err != ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}

func TestRunRootsPartition(t *testing.T) {
	// Splitting the root candidates across calls must partition the
	// result exactly.
	g := gen.BarabasiAlbert(100, 4, 13)
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	e := New(g, pl, Options{})
	full, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for lo := 0; lo < g.NumVertices(); lo += 17 {
		hi := lo + 17
		if hi > g.NumVertices() {
			hi = g.NumVertices()
		}
		roots := make([]graph.VertexID, 0, hi-lo)
		for v := lo; v < hi; v++ {
			roots = append(roots, graph.VertexID(v))
		}
		res, err := e.RunRoots(roots, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Matches
	}
	if sum != full.Matches {
		t.Fatalf("partitioned sum %d != full %d", sum, full.Matches)
	}
}

func TestSnapshotResume(t *testing.T) {
	// Split every MAT loop at depth σ=2: keep half, resume the rest from
	// the frame; the total must equal the unsplit count.
	g := gen.BarabasiAlbert(80, 4, 17)
	for _, p := range []*pattern.Pattern{pattern.P2(), pattern.P4(), pattern.P5()} {
		po := pattern.SymmetryBreaking(p)
		for _, mode := range allModes {
			pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], mode)
			e := New(g, pl, Options{})
			want, err := e.Run(nil)
			if err != nil {
				t.Fatal(err)
			}

			var frames []*Frame
			e2 := New(g, pl, Options{})
			e2.Hook = func(en *Enumerator, sigmaIdx int, cands []graph.VertexID) int {
				if sigmaIdx != 2 || len(cands) < 2 {
					return len(cands)
				}
				keep := len(cands) / 2
				frames = append(frames, en.Snapshot(sigmaIdx, cands[keep:]))
				return keep
			}
			got, err := e2.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			e3 := New(g, pl, Options{})
			for _, f := range frames {
				res, err := e3.Resume(f, nil)
				if err != nil {
					t.Fatal(err)
				}
				got.Add(res)
			}
			if got.Matches != want.Matches {
				t.Fatalf("%s %s: split total %d, want %d (frames=%d)", p.Name(), mode.Name(), got.Matches, want.Matches, len(frames))
			}
		}
	}
}

func TestCandidateMemoryBytes(t *testing.T) {
	g := gen.BarabasiAlbert(100, 4, 1)
	p := pattern.P5()
	pl, _ := plan.Compile(p, pattern.SymmetryBreaking(p), plan.ConnectedOrders(p, pattern.SymmetryBreaking(p))[0], plan.ModeLIGHT)
	e := New(g, pl, Options{})
	// Buffers are carved lazily from the arena: nothing is held before
	// the first run, and repeated runs reuse the same slabs.
	if got := e.CandidateMemoryBytes(); got != 0 {
		t.Fatalf("CandidateMemoryBytes before any run = %d, want 0", got)
	}
	if _, err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	after := e.CandidateMemoryBytes()
	if after <= 0 {
		t.Fatalf("CandidateMemoryBytes after run = %d, want > 0", after)
	}
	if _, err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	if again := e.CandidateMemoryBytes(); again != after {
		t.Fatalf("CandidateMemoryBytes grew across runs: %d then %d", after, again)
	}
}

func TestSingleVertexAndEdgePatterns(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 9)
	one := pattern.MustNew("v", 1, nil)
	pl, err := plan.Compile(one, nil, []pattern.Vertex{0}, plan.ModeLIGHT)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(g, pl, Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 20 {
		t.Fatalf("single-vertex matches = %d, want 20", res.Matches)
	}

	edge := pattern.Path(2)
	po := pattern.SymmetryBreaking(edge)
	pl2, _ := plan.Compile(edge, po, plan.ConnectedOrders(edge, po)[0], plan.ModeLIGHT)
	res2, err := New(g, pl2, Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Matches != uint64(g.NumEdges()) {
		t.Fatalf("edge matches = %d, want M = %d", res2.Matches, g.NumEdges())
	}
}

func TestAGMWorstCase(t *testing.T) {
	// Example III.1: the chordal square on K_√M has Θ(M²) results; check
	// the exact count on a complete graph. On K_n the chordal square with
	// symmetry breaking counts n!/(n-4)! / |Aut| selections.
	g := gen.Complete(12)
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	res, err := New(g, pl, Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(12 * 11 * 10 * 9 / 4) // |Aut(P2)| = 4
	if res.Matches != want {
		t.Fatalf("K12 chordal squares = %d, want %d", res.Matches, want)
	}
}

func TestDegreeFilterPreservesCounts(t *testing.T) {
	// The degree filter is sound: it may only skip vertices that cannot
	// appear in any match, so counts are unchanged.
	for gname, g := range testGraphs() {
		for _, p := range []*pattern.Pattern{pattern.P2(), pattern.P4(), pattern.StarPattern(3)} {
			po := pattern.SymmetryBreaking(p)
			pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
			plain, err := New(g, pl, Options{}).Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			filtered, err := New(g, pl, Options{DegreeFilter: true}).Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Matches != filtered.Matches {
				t.Fatalf("%s/%s: degree filter changed count %d -> %d", gname, p.Name(), plain.Matches, filtered.Matches)
			}
		}
	}
}

func TestCustomFilterRestrictsMatches(t *testing.T) {
	// An even-vertices-only filter: every reported mapping obeys it and
	// the count equals a filtered brute-force run.
	g := gen.ErdosRenyi(30, 120, 4)
	p := pattern.Triangle()
	po := pattern.SymmetryBreaking(p)
	pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
	e := New(g, pl, Options{})
	e2 := New(g, pl, Options{Filter: func(u int, v graph.VertexID) bool { return v%2 == 0 }})
	all, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e2.Run(func(m []graph.VertexID) bool {
		for _, v := range m {
			if v%2 != 0 {
				t.Fatalf("filter violated: %v", m)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches == 0 || res.Matches >= all.Matches {
		t.Fatalf("filtered %d vs all %d: filter had no effect", res.Matches, all.Matches)
	}
}

func TestAGMGrowthRate(t *testing.T) {
	// Example III.1: on complete graphs the chordal square count grows as
	// M² = Θ(n⁴). Doubling n must multiply the count by ~2⁴.
	p := pattern.P2()
	po := pattern.SymmetryBreaking(p)
	count := func(n int) float64 {
		g := gen.Complete(n)
		pl, _ := plan.Compile(p, po, plan.ConnectedOrders(p, po)[0], plan.ModeLIGHT)
		res, err := New(g, pl, Options{TailCount: true}).Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Matches)
	}
	ratio := count(24) / count(12)
	if ratio < 12 || ratio > 24 { // n⁴ scaling gives ~16 + lower-order terms
		t.Fatalf("K24/K12 ratio = %.1f, want ≈16 (AGM n⁴ growth)", ratio)
	}
}
