// Package engine executes compiled enumeration plans against a data
// graph. One Enumerator interprets the plan's execution order σ
// recursively (the paper's Algorithms 1 and 2 unified): COMP operations
// compute candidate sets with the plan's K1/K2 operands (Equation 6) and
// MAT operations extend the partial result, enforcing injectivity and the
// symmetry-breaking partial order.
//
// An Enumerator is single-threaded and reusable; the parallel package
// runs one per worker and splits work between them.
package engine

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"light/internal/arena"
	"light/internal/bitset"
	"light/internal/delta"
	"light/internal/graph"
	"light/internal/intersect"
	"light/internal/metrics"
	"light/internal/plan"
)

// ErrTimeLimit is returned when Options.TimeLimit elapses mid-run (the
// paper's OOT outcome).
var ErrTimeLimit = errors.New("engine: time limit exceeded")

// ErrMemoryBudget is returned when a budgeted arena (admission memory
// governance) denies a candidate-buffer allocation: the run has
// exhausted every degradation rung and must hard-stop. The unwind path
// is the same as ErrTimeLimit, so partial results and checkpoint
// frames remain valid.
var ErrMemoryBudget = errors.New("engine: memory budget exceeded")

// errLaneVisit rejects enumeration-mode runs in lane mode: a visitor
// would need the per-match lane mask to tell which queries a mapping
// belongs to, and no caller needs that; lane batches are count-only.
var errLaneVisit = errors.New("engine: lane mode is count-only; visitors are not supported")

// VisitFunc receives each match: mapping[u] is the data vertex assigned
// to pattern vertex u. The slice is reused between calls; copy it to
// retain. Return false to stop the enumeration early.
type VisitFunc func(mapping []graph.VertexID) bool

// LaneProber is the engine's view of a bit-parallel lane batch (the
// lanes package implements it): up to 64 queries that share one
// compiled plan, packed one per bit of a uint64 word. The engine walks
// the shared search tree once, carrying the mask of still-live lanes,
// and asks the prober which lanes accept each assignment. Probers must
// be immutable during a run and safe for concurrent use by many
// workers.
type LaneProber interface {
	// NumLanes is the number of packed queries (1..64).
	NumLanes() int
	// All is the mask with one bit set per lane.
	All() uint64
	// RootMask returns the lanes whose root set contains v (applied
	// only when materializing the plan's root vertex).
	RootMask(v graph.VertexID) uint64
	// MaskFor returns the lanes whose per-query filters accept
	// assigning data vertex v (with degree deg) to pattern vertex u.
	// It runs in the innermost MAT loop and must be allocation-free.
	MaskFor(u int, v graph.VertexID, deg int) uint64
}

// LaneCounts are one lane's individually-attributed counters: exactly
// the counters a sequential run of that lane's query (same plan, its
// root set and filters) would produce. The attribution rule makes this
// exact, not approximate: a lane is live at a search-tree node iff the
// sequential run of its query would expand that node, and every COMP's
// operands depend only on the assignments above it — never on which
// other lanes are live — so charging each shared operation to every
// live lane reproduces each query's solo counters bit-for-bit.
type LaneCounts struct {
	Matches uint64
	Nodes   uint64
	Comps   uint64
	Stats   intersect.Stats
}

// Add accumulates other into lc.
func (lc *LaneCounts) Add(other LaneCounts) {
	lc.Matches += other.Matches
	lc.Nodes += other.Nodes
	lc.Comps += other.Comps
	lc.Stats.Add(other.Stats)
}

// Options configure an Enumerator.
type Options struct {
	// Kernel selects the set intersection implementation (default
	// KindMerge, the paper's serial baseline configuration).
	Kernel intersect.Kind
	// Delta is the Hybrid threshold δ (default intersect.DefaultDelta).
	// Valid values are non-negative: 0 selects the default, positive
	// values set the skew ratio at which Hybrid kernels switch to
	// galloping. Negative values are rejected by New — they would make
	// every cardinality pair look skewed, silently degrading the Hybrid
	// kernels to pure Galloping.
	Delta int
	// TimeLimit aborts the run with ErrTimeLimit when positive. The
	// clock starts at each Run/RunRoots/Resume call.
	TimeLimit time.Duration
	// Deadline, when set, is an absolute cutoff shared across calls; it
	// takes precedence over TimeLimit. The parallel scheduler pins one
	// deadline for all workers and chunks.
	Deadline time.Time
	// TailCount enables the leaf-MAT counting shortcut in count-only
	// runs: when the final σ operation is a MAT, add the number of valid
	// candidates instead of looping. Keep false for the paper-faithful
	// engine; benchmarks measure the difference.
	TailCount bool
	// DegreeFilter skips candidates whose data degree is below the
	// pattern vertex's degree — the only filter unlabeled graphs admit
	// from the labeled-matching toolbox (used by the CFL baseline).
	DegreeFilter bool
	// Filter, when non-nil, must approve every (pattern vertex, data
	// vertex) assignment; assignments it rejects are skipped. It must be
	// sound (never reject a vertex that completes to a valid match the
	// caller wants) and fast — it runs in the innermost loop. The
	// labeled-matching layer uses it for label and neighborhood-label-
	// frequency filtering. Filter disables the TailCount shortcut.
	Filter func(u int, v graph.VertexID) bool
	// Metrics, when non-nil, receives this enumerator's counters: each
	// RunRoots/Resume/Run folds its Result into the recorder when it
	// finishes. Per-event counting stays in plain per-enumerator fields;
	// only the fold touches atomics, so the hot path is unaffected.
	Metrics *metrics.Recorder
	// Arena, when non-nil, backs the enumerator's candidate buffers. The
	// parallel scheduler passes one arena per worker so every enumerator
	// a worker builds reuses the same slabs; when nil, New creates a
	// private arena. The arena must not be shared between enumerators
	// that run concurrently.
	Arena *arena.Arena
	// Overlay, when non-nil, is the copy-on-write edge-delta view the
	// enumerator reads adjacency through instead of the raw CSR: touched
	// vertices resolve to the overlay's merged lists, untouched vertices
	// read the base graph directly, and hub-bitmap probes are suppressed
	// for touched vertices (their base bitmaps are stale). The overlay's
	// base must be the graph passed to New. When nil — the common case —
	// every adjacency read takes the direct CSR path at the cost of one
	// nil check.
	Overlay *delta.Overlay
	// Lanes, when non-nil, switches the enumerator into bit-parallel
	// lane mode: it walks the plan's search tree once for the whole
	// batch, masking lanes off as their per-query filters reject
	// assignments, and attributes every node, match, COMP, and
	// intersection to each live lane in Result.Lanes. Lane mode is
	// count-only (no visitors) and disables the TailCount shortcut —
	// the leaf loop must run to apply leaf-level lane masks.
	Lanes LaneProber
}

func (o Options) withDefaults() Options {
	if o.Delta == 0 {
		o.Delta = intersect.DefaultDelta
	}
	return o
}

// Result summarizes a run.
type Result struct {
	Matches uint64          // matches found (respecting the partial order)
	Stats   intersect.Stats // set intersection counters
	Nodes   uint64          // search-tree nodes expanded (MAT extensions)
	Comps   uint64          // COMP operations executed (incl. aliases)
	Stopped bool            // true when the visitor stopped the run early
	// Lanes holds per-lane attributed counters in lane mode (one entry
	// per lane of Options.Lanes); nil otherwise. The top-level counters
	// above then describe the shared batch traversal — the work
	// actually performed — while Lanes splits it per query.
	Lanes []LaneCounts
}

// Add accumulates other into r (for combining per-worker results).
func (r *Result) Add(other Result) {
	r.Matches += other.Matches
	r.Stats.Add(other.Stats)
	r.Nodes += other.Nodes
	r.Comps += other.Comps
	r.Stopped = r.Stopped || other.Stopped
	if len(other.Lanes) > len(r.Lanes) {
		grown := make([]LaneCounts, len(other.Lanes)) //lightvet:ignore hotpath -- grows at most once per worker, when the first lane result lands
		copy(grown, r.Lanes)
		r.Lanes = grown
	}
	for i := range other.Lanes {
		r.Lanes[i].Add(other.Lanes[i])
	}
}

// AddTo folds r into a metrics recorder (no-op when m is nil). The
// merge count is derived: every intersection that did not gallop merged.
//
//light:hotpath
func (r *Result) AddTo(m *metrics.Recorder) {
	if m == nil {
		return
	}
	m.Add(metrics.EngineNodes, r.Nodes)
	m.Add(metrics.EngineMatches, r.Matches)
	m.Add(metrics.EngineComps, r.Comps)
	m.Add(metrics.IntersectOps, r.Stats.Intersections)
	m.Add(metrics.IntersectGalloping, r.Stats.Galloping)
	m.Add(metrics.IntersectMerge, r.Stats.Intersections-r.Stats.Galloping)
	m.Add(metrics.IntersectElements, r.Stats.Elements)
	m.Add(metrics.IntersectBitmapProbes, r.Stats.BitmapProbes)
}

// MatHook, when non-nil, is invoked at the start of every non-root MAT
// loop with the σ index and the full candidate slice about to be
// iterated; it returns how many of those candidates the enumerator should
// process locally (the rest having been donated elsewhere). Used by the
// work-stealing scheduler; see the parallel package.
type MatHook func(e *Enumerator, sigmaIdx int, candidates []graph.VertexID) int

// Enumerator executes one plan on one graph.
type Enumerator struct {
	g    *graph.Graph
	ov   *delta.Overlay // aliases opts.Overlay; nil = read the CSR directly
	pl   *plan.Plan
	opts Options

	// Hook for work donation (nil in sequential runs).
	Hook MatHook

	// Stop, when non-nil, is polled at the deadline cadence; setting it
	// aborts the run with Stopped=true and no error. The parallel
	// scheduler uses it to propagate early termination across workers.
	Stop *atomic.Bool

	// Progress, when non-nil, is incremented at the deadline-poll
	// cadence (every 8192 σ steps) — a cheap per-worker heartbeat the
	// stall watchdog samples to tell a slow-but-advancing worker from a
	// wedged one.
	Progress *atomic.Uint64

	assigned []graph.VertexID // per pattern vertex, valid when materialized
	matMask  uint32           // bitmask of materialized pattern vertices
	allRoots []graph.VertexID // lazily built full root list for Run

	// Candidate buffers are carved from ar lazily, one cap-dmax slice
	// per pattern vertex on first use after begin. A run that prunes
	// early never pays for the deeper buffers, and the arena makes the
	// whole set one slab reset instead of n live allocations.
	cand    [][]graph.VertexID
	bufs    [][]graph.VertexID
	scratch []graph.VertexID
	setsTmp [][]graph.VertexID
	bmsTmp  []*bitset.Bitmap
	ar      *arena.Arena
	dmax    int
	// useBitmaps caches opts.Kernel.UsesBitmaps(): when set, compute
	// probes the graph's hub index for K1 operands.
	useBitmaps bool

	// Lane mode state: lanes aliases opts.Lanes (nil check per
	// candidate), alive is the mask of lanes live on the current search
	// path, and laneBuf is the persistent per-lane counter array begin
	// aliases into result.Lanes (allocated once in New, so per-chunk
	// resets stay allocation-free).
	lanes   LaneProber
	alive   uint64
	laneBuf []LaneCounts

	visit    VisitFunc
	result   Result
	deadline time.Time
	// polls counts checkDeadline calls; the poll cadence is keyed to it
	// rather than to Result.Nodes, which tailCount advances in batches
	// that can step over any fixed residue forever.
	polls    uint64
	err      error
}

// New prepares an Enumerator for repeated runs of pl over g. It panics
// on invalid options (negative Delta): that is a programming error, and
// returning a degraded enumerator would silently change every Hybrid
// kernel into pure Galloping.
func New(g *graph.Graph, pl *plan.Plan, opts Options) *Enumerator {
	if opts.Delta < 0 {
		panic(fmt.Sprintf("engine: Options.Delta is %d, must be non-negative (0 selects the default δ=%d)", opts.Delta, intersect.DefaultDelta))
	}
	if opts.Lanes != nil {
		if nl := opts.Lanes.NumLanes(); nl < 1 || nl > 64 {
			panic(fmt.Sprintf("engine: Options.Lanes packs %d lanes, must be 1..64", nl))
		}
		if opts.Filter != nil {
			panic("engine: Options.Filter and Options.Lanes are exclusive; per-lane filters belong in the prober")
		}
	}
	opts = opts.withDefaults()
	n := pl.Pattern.NumVertices()
	ar := opts.Arena
	if ar == nil {
		ar = arena.New()
	}
	if opts.Overlay != nil && opts.Overlay.Base() != g {
		panic("engine: Options.Overlay was built over a different base graph")
	}
	var laneBuf []LaneCounts
	if opts.Lanes != nil {
		laneBuf = make([]LaneCounts, opts.Lanes.NumLanes())
	}
	dmax := g.MaxDegree()
	if opts.Overlay != nil {
		dmax = opts.Overlay.MaxDegree()
	}
	return &Enumerator{
		g:          g,
		ov:         opts.Overlay,
		pl:         pl,
		opts:       opts,
		assigned:   make([]graph.VertexID, n),
		cand:       make([][]graph.VertexID, n),
		bufs:       make([][]graph.VertexID, n),
		setsTmp:    make([][]graph.VertexID, 0, n),
		bmsTmp:     make([]*bitset.Bitmap, 0, n),
		ar:         ar,
		dmax:       dmax,
		useBitmaps: opts.Kernel.UsesBitmaps(),
		lanes:      opts.Lanes,
		laneBuf:    laneBuf,
	}
}

// numVertices, degree, neighbors, and hubBitmap are the enumerator's
// adjacency reads: overlay-aware when Options.Overlay is set, one nil
// check and a direct CSR call otherwise (the zero-cost fast path for
// unmutated graphs).

//light:hotpath
func (e *Enumerator) numVertices() int {
	if e.ov != nil {
		return e.ov.NumVertices()
	}
	return e.g.NumVertices()
}

//light:hotpath
func (e *Enumerator) degree(v graph.VertexID) int {
	if e.ov != nil {
		return e.ov.Degree(v)
	}
	return e.g.Degree(v)
}

//light:hotpath
func (e *Enumerator) neighbors(v graph.VertexID) []graph.VertexID {
	if e.ov != nil {
		return e.ov.Neighbors(v)
	}
	return e.g.Neighbors(v)
}

// hubBitmap returns the hub bitmap usable for v's neighbor list, or nil.
// A vertex the overlay touched must not probe its base bitmap — the
// bitmap encodes the pre-mutation list and would silently corrupt
// intersections — so touched vertices always fall back to list kernels.
//
//light:hotpath
func (e *Enumerator) hubBitmap(v graph.VertexID) *bitset.Bitmap {
	if e.ov != nil && e.ov.Touched(v) {
		return nil
	}
	return e.g.HubBitmap(v)
}

// Plan returns the plan the enumerator executes.
func (e *Enumerator) Plan() *plan.Plan { return e.pl }

// Graph returns the data graph.
func (e *Enumerator) Graph() *graph.Graph { return e.g }

// CandidateMemoryBytes reports the memory held by candidate-set buffers
// (the paper's Table V metric): the arena slabs the lazy per-vertex
// buffers and the scratch buffer are carved from. Enumerators sharing
// an arena (one worker's sequence of chunks) report the same slabs.
func (e *Enumerator) CandidateMemoryBytes() int64 {
	return e.ar.Bytes()
}

// Run enumerates over every root candidate (C(π[1]) = V(G)) and returns
// the combined result. visit may be nil for count-only runs.
func (e *Enumerator) Run(visit VisitFunc) (Result, error) {
	if e.allRoots == nil {
		n := e.numVertices()
		e.allRoots = make([]graph.VertexID, n)
		for i := range e.allRoots {
			e.allRoots[i] = graph.VertexID(i)
		}
	}
	return e.RunRoots(e.allRoots, visit)
}

// RunRoots enumerates only the given root candidates (used by the
// parallel schedulers to partition C(π[1])). roots must be ascending.
//
//light:hotpath
func (e *Enumerator) RunRoots(roots []graph.VertexID, visit VisitFunc) (Result, error) {
	e.begin(visit)
	if e.lanes != nil && visit != nil {
		e.err = errLaneVisit
		return e.finish()
	}
	rootVertex := e.pl.Pi[0]
	for _, v := range roots {
		// Poll before the filter: a filter that rejects every root
		// would otherwise spin through the whole candidate set without
		// ever observing cancellation (the cancelpoll invariant).
		if !e.checkDeadline() {
			break
		}
		if e.opts.Filter != nil && !e.opts.Filter(rootVertex, v) {
			continue
		}
		if e.lanes != nil {
			m := e.lanes.RootMask(v) & e.lanes.MaskFor(rootVertex, v, e.degree(v))
			if m == 0 {
				continue
			}
			e.alive = m
			e.laneNodes(m)
		}
		e.assigned[rootVertex] = v
		e.matMask = 1 << uint(rootVertex)
		e.result.Nodes++
		if !e.step(1) {
			break
		}
	}
	return e.finish()
}

// laneNodes charges one expanded node to every live lane.
//
//light:hotpath
func (e *Enumerator) laneNodes(m uint64) {
	for ; m != 0; m &= m - 1 {
		e.laneBuf[bits.TrailingZeros64(m)].Nodes++
	}
}

// Frame is a resumable suspension of the search: the state needed to
// continue a MAT loop at σ[SigmaIdx] over Remaining. Frames own their
// slices (deep copies), so they can cross goroutines.
type Frame struct {
	SigmaIdx  int
	Assigned  []graph.VertexID
	MatMask   uint32
	Cands     [][]graph.VertexID // per pattern vertex; nil when not live
	Remaining []graph.VertexID
	// LaneMask is the mask of lanes live at the suspension point (0
	// outside lane mode). A donated or checkpointed frame from a lane
	// batch must resume with exactly these lanes, or the thief/resumer
	// would attribute the subtree to the wrong queries.
	LaneMask uint64
}

// Snapshot captures the current search state as a Frame that resumes the
// MAT at sigmaIdx over the given candidates. Called by MatHook
// implementations.
func (e *Enumerator) Snapshot(sigmaIdx int, candidates []graph.VertexID) *Frame {
	n := e.pl.Pattern.NumVertices()
	f := &Frame{
		SigmaIdx:  sigmaIdx,
		Assigned:  append([]graph.VertexID(nil), e.assigned...),
		MatMask:   e.matMask,
		Cands:     make([][]graph.VertexID, n),
		Remaining: append([]graph.VertexID(nil), candidates...),
		LaneMask:  e.alive,
	}
	for u := 0; u < n; u++ {
		if e.candLiveAt(u, sigmaIdx) {
			f.Cands[u] = append([]graph.VertexID(nil), e.cand[u]...)
		}
	}
	return f
}

// Validate checks that f is structurally consistent with pl and g —
// SigmaIdx resumes a MAT, every vertex id is in range, the mask fits
// the pattern, and no candidate set exceeds the per-vertex buffers
// Resume copies into. Frames deserialized from a checkpoint must pass
// it before Resume, so a corrupt or mismatched file cannot index out
// of bounds or silently truncate candidate sets.
func (f *Frame) Validate(pl *plan.Plan, g *graph.Graph) error {
	n := pl.Pattern.NumVertices()
	if f.SigmaIdx < 1 || f.SigmaIdx >= len(pl.Sigma) {
		return fmt.Errorf("engine: frame resumes σ[%d] of %d ops", f.SigmaIdx, len(pl.Sigma))
	}
	if pl.Sigma[f.SigmaIdx].Mode != plan.Mat {
		return fmt.Errorf("engine: frame resumes σ[%d], which is not a MAT", f.SigmaIdx)
	}
	if len(f.Assigned) != n {
		return fmt.Errorf("engine: frame assigns %d of %d pattern vertices", len(f.Assigned), n)
	}
	// The mask must fit the pattern (guarded arithmetic: for n == 32
	// every uint32 is in range, and 1<<32 would overflow the shift) and
	// agree exactly with σ: a frame suspended at σ[SigmaIdx] has
	// materialized precisely the vertices whose MAT precedes it, root
	// included — so popcount(MatMask) equals the number of earlier MATs
	// and the bits identify them. A corrupt checkpoint whose mask
	// disagrees with the σ prefix would otherwise resume with injectivity
	// and symmetry-breaking checks applied to the wrong vertices.
	if n < 32 && f.MatMask >= 1<<uint(n) {
		return fmt.Errorf("engine: frame mask %#x exceeds pattern size %d", f.MatMask, n)
	}
	if want := pl.MatMaskBefore(f.SigmaIdx); f.MatMask != want {
		return fmt.Errorf("engine: frame mask %#x inconsistent with σ[:%d] (want %#x: %d MATs incl. root)",
			f.MatMask, f.SigmaIdx, want, bits.OnesCount32(want))
	}
	if len(f.Cands) != n {
		return fmt.Errorf("engine: frame carries %d of %d candidate sets", len(f.Cands), n)
	}
	nv := int64(g.NumVertices())
	dmax := g.MaxDegree()
	for u, vs := range f.Cands {
		if len(vs) > dmax {
			return fmt.Errorf("engine: frame candidate set %d has %d vertices, graph d_max is %d", u, len(vs), dmax)
		}
		for _, v := range vs {
			if int64(v) >= nv {
				return fmt.Errorf("engine: frame candidate %d out of range (|V|=%d)", v, nv)
			}
		}
	}
	for m := f.MatMask; m != 0; m &= m - 1 {
		if v := f.Assigned[trailingZeros32(m)]; int64(v) >= nv {
			return fmt.Errorf("engine: frame assignment %d out of range (|V|=%d)", v, nv)
		}
	}
	for _, v := range f.Remaining {
		if int64(v) >= nv {
			return fmt.Errorf("engine: frame remaining candidate %d out of range (|V|=%d)", v, nv)
		}
	}
	return nil
}

// candLiveAt reports whether C(u) computed before σ[sigmaIdx] is still
// referenced at or after it (by u's own MAT or by a later COMP using u as
// a K2 operand).
func (e *Enumerator) candLiveAt(u int, sigmaIdx int) bool {
	if u == e.pl.Pi[0] {
		return false
	}
	computed := false
	for i := 0; i < sigmaIdx; i++ {
		op := e.pl.Sigma[i]
		if op.Mode == plan.Comp && op.Vertex == u {
			computed = true
			break
		}
	}
	if !computed {
		return false
	}
	for i := sigmaIdx; i < len(e.pl.Sigma); i++ {
		op := e.pl.Sigma[i]
		if op.Mode == plan.Mat && op.Vertex == u {
			return true
		}
		if op.Mode == plan.Comp {
			for _, w := range e.pl.Ops[op.Vertex].K2 {
				if w == u {
					return true
				}
			}
		}
	}
	return false
}

// Resume continues the search captured in f. The frame's candidate sets
// are copied into the enumerator's own buffers.
//
//light:hotpath
func (e *Enumerator) Resume(f *Frame, visit VisitFunc) (Result, error) {
	e.begin(visit)
	if e.lanes != nil {
		if visit != nil {
			e.err = errLaneVisit
			return e.finish()
		}
		if f.LaneMask == 0 || f.LaneMask&^e.lanes.All() != 0 {
			// A zero mask means the frame came from a non-lane run (or
			// a pre-lane checkpoint); stray high bits mean a different
			// batch. Either way the attribution would be garbage.
			e.err = fmt.Errorf("engine: frame lane mask %#x does not match the %d-lane batch", f.LaneMask, e.lanes.NumLanes()) //lightvet:ignore hotpath -- terminal validation failure, not per-node work
			return e.finish()
		}
		e.alive = f.LaneMask
	}
	copy(e.assigned, f.Assigned)
	e.matMask = f.MatMask
	for u := range f.Cands {
		if f.Cands[u] == nil {
			continue
		}
		b := e.buf(u)
		if b == nil && e.dmax > 0 {
			// Budget denied the resume buffers: fail rather than
			// silently truncate the frame's candidate sets to nothing.
			e.err = ErrMemoryBudget
			return e.finish()
		}
		m := copy(b[:cap(b)], f.Cands[u])
		e.cand[u] = b[:m]
	}
	e.matLoop(f.SigmaIdx, f.Remaining, false)
	return e.finish()
}

// begin resets per-run state. Releasing the arena invalidates every
// buffer carved last run, so the buffer and candidate tables are
// cleared with it; buf/scratchBuf re-carve on first use.
//
//light:hotpath
func (e *Enumerator) begin(visit VisitFunc) {
	e.visit = visit
	e.result = Result{}
	e.polls = 0
	e.err = nil
	if e.lanes != nil {
		for i := range e.laneBuf {
			e.laneBuf[i] = LaneCounts{}
		}
		e.result.Lanes = e.laneBuf
		e.alive = e.lanes.All()
	}
	e.ar.Reset()
	e.scratch = nil
	for u := range e.bufs {
		e.bufs[u] = nil
		e.cand[u] = nil
	}
	switch {
	case !e.opts.Deadline.IsZero():
		e.deadline = e.opts.Deadline
	case e.opts.TimeLimit > 0:
		e.deadline = time.Now().Add(e.opts.TimeLimit)
	default:
		e.deadline = time.Time{}
	}
}

func (e *Enumerator) finish() (Result, error) {
	e.result.AddTo(e.opts.Metrics)
	if e.err != nil {
		return e.result, e.err
	}
	return e.result, nil
}

// step executes σ[i] and everything after it. It returns false to unwind
// the whole search (deadline hit or visitor stop).
//
//light:hotpath
func (e *Enumerator) step(i int) bool {
	if i == len(e.pl.Sigma) {
		return e.emit()
	}
	op := e.pl.Sigma[i]
	if op.Mode == plan.Comp {
		if !e.compute(op.Vertex) {
			// Empty candidate set prunes this branch; a compute error
			// (memory budget denial) unwinds the whole search.
			return e.err == nil
		}
		return e.step(i + 1)
	}
	candidates := e.cand[op.Vertex]
	return e.matLoop(i, candidates, true)
}

// compute runs the COMP of u (Equation 6) into e.cand[u], returning
// false when the candidate set is empty. In lane mode the operation and
// its kernel-stat delta are charged to every live lane: the operands
// depend only on the assignments above this node, so each live lane's
// sequential run would perform the identical computation here.
func (e *Enumerator) compute(u int) bool {
	if e.lanes != nil {
		before := e.result.Stats
		ok := e.computeShared(u)
		delta := e.result.Stats.Sub(before)
		for m := e.alive; m != 0; m &= m - 1 {
			lc := &e.laneBuf[bits.TrailingZeros64(m)]
			lc.Comps++
			lc.Stats.Add(delta)
		}
		return ok
	}
	return e.computeShared(u)
}

// computeShared is the lane-agnostic COMP body.
//
//light:hotpath
func (e *Enumerator) computeShared(u int) bool {
	e.result.Comps++
	ops := &e.pl.Ops[u]
	nOperands := len(ops.K1) + len(ops.K2)
	if nOperands == 1 {
		// Single operand: alias, zero intersections (the Fig 2b case).
		if len(ops.K1) == 1 {
			e.cand[u] = e.neighbors(e.assigned[ops.K1[0]])
		} else {
			e.cand[u] = e.cand[ops.K2[0]]
		}
		return len(e.cand[u]) > 0
	}
	dst := e.buf(u)
	scr := e.scratchBuf()
	if (dst == nil || scr == nil) && e.dmax > 0 {
		// A budgeted arena denied the carve: hard memory-budget stop.
		e.err = ErrMemoryBudget
		return false
	}
	sets := e.setsTmp[:0]
	if e.useBitmaps {
		// Bitmap-probe path: collect the hub bitmap (or nil) of every K1
		// operand in lockstep with sets; K2 cached candidates never have
		// bitmap form. With no hub among the operands this degrades to
		// the plain list call below via MultiWayBitmap's fallback.
		bms := e.bmsTmp[:0]
		for _, w := range ops.K1 {
			v := e.assigned[w]
			sets = append(sets, e.neighbors(v))
			bms = append(bms, e.hubBitmap(v))
		}
		for _, w := range ops.K2 {
			sets = append(sets, e.cand[w])
			bms = append(bms, nil)
		}
		n := intersect.MultiWayBitmap(dst, scr, sets, bms, e.opts.Kernel, e.opts.Delta, &e.result.Stats)
		e.cand[u] = dst[:n]
		return n > 0
	}
	for _, w := range ops.K1 {
		sets = append(sets, e.neighbors(e.assigned[w]))
	}
	for _, w := range ops.K2 {
		sets = append(sets, e.cand[w])
	}
	n := intersect.MultiWay(dst, scr, sets, e.opts.Kernel, e.opts.Delta, &e.result.Stats)
	e.cand[u] = dst[:n]
	return n > 0
}

// buf returns pattern vertex u's cap-d_max candidate buffer, carving it
// from the arena on first use this run.
//
//light:hotpath
func (e *Enumerator) buf(u int) []graph.VertexID {
	b := e.bufs[u]
	if b == nil && e.dmax > 0 {
		b = e.ar.Alloc(e.dmax)
		e.bufs[u] = b
	}
	return b
}

// scratchBuf returns the shared multiway ping-pong buffer, carved from
// the arena on first use this run.
//
//light:hotpath
func (e *Enumerator) scratchBuf() []graph.VertexID {
	if e.scratch == nil && e.dmax > 0 {
		e.scratch = e.ar.Alloc(e.dmax)
	}
	return e.scratch
}

// matLoop materializes σ[i]'s vertex over candidates. checkHook controls
// whether the donation hook may split this loop (resumed frames already
// passed through it).
func (e *Enumerator) matLoop(i int, candidates []graph.VertexID, checkHook bool) bool {
	u := e.pl.Sigma[i].Vertex
	// Symmetry-breaking bounds: candidates are sorted, so constraints
	// against already-materialized vertices become a sub-range.
	lo, hi := e.bounds(i)
	if lo >= hi {
		return true
	}
	from := lowerBound(candidates, lo)
	to := lowerBound(candidates, hi)
	candidates = candidates[from:to]
	if len(candidates) == 0 {
		return true
	}

	// Counting shortcut: the last operation's loop body only counts.
	// Lane mode must take the full loop — each leaf candidate still
	// needs its per-lane mask probe.
	if e.opts.TailCount && e.visit == nil && e.opts.Filter == nil && e.lanes == nil && i == len(e.pl.Sigma)-1 {
		return e.tailCount(u, candidates)
	}

	if checkHook && e.Hook != nil {
		keep := e.Hook(e, i, candidates)
		candidates = candidates[:keep]
	}
	bit := uint32(1) << uint(u)
	minDeg := 0
	if e.opts.DegreeFilter {
		minDeg = e.pl.Pattern.Degree(u)
	}
	for _, v := range candidates {
		// Poll first: the injectivity/degree/filter rejects used to
		// precede the poll, so candidate runs rejected wholesale
		// completed iterations without a cancellation check.
		if !e.checkDeadline() {
			return false
		}
		if e.usedValue(v) {
			continue
		}
		if minDeg > 0 && e.degree(v) < minDeg {
			continue
		}
		if e.opts.Filter != nil && !e.opts.Filter(u, v) {
			continue
		}
		if e.lanes != nil {
			// Lane mask probe: drop the lanes whose query-specific
			// filters reject this assignment; if none survive, the
			// whole subtree is dead for the batch. The parent's mask
			// is restored after the recursion — cheaper than a frame.
			m := e.alive & e.lanes.MaskFor(u, v, e.degree(v))
			if m == 0 {
				continue
			}
			saved := e.alive
			e.alive = m
			e.laneNodes(m)
			e.assigned[u] = v
			e.matMask |= bit
			e.result.Nodes++
			ok := e.step(i + 1)
			e.alive = saved
			if !ok {
				return false
			}
			e.matMask &^= bit
			continue
		}
		e.assigned[u] = v
		e.matMask |= bit
		e.result.Nodes++
		if !e.step(i + 1) {
			return false
		}
		e.matMask &^= bit
	}
	return true
}

// lowerBound returns the smallest index k with int64(s[k]) >= x, by
// binary search. Equivalent to sort.Search but closure-free, keeping the
// MAT loop allocation-free.
func lowerBound(s []graph.VertexID, x int64) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int64(s[mid]) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// bounds returns the open-below, open-above data-vertex id window
// [lo, hi) implied by σ[i]'s symmetry-breaking constraints.
func (e *Enumerator) bounds(i int) (lo, hi int64) {
	lo, hi = 0, int64(e.numVertices())
	for _, c := range e.pl.MatConstraints[i] {
		ov := int64(e.assigned[c.Other])
		if c.Lower {
			if ov+1 > lo {
				lo = ov + 1
			}
		} else {
			if ov < hi {
				hi = ov
			}
		}
	}
	return lo, hi
}

// usedValue reports whether data vertex v is already used by a
// materialized pattern vertex (the injectivity check; |φ| is tiny).
func (e *Enumerator) usedValue(v graph.VertexID) bool {
	for m := e.matMask; m != 0; m &= m - 1 {
		u := trailingZeros32(m)
		if e.assigned[u] == v {
			return true
		}
	}
	return false
}

// tailCount adds the number of valid assignments of the final MAT without
// recursing: candidates within bounds minus those violating injectivity.
func (e *Enumerator) tailCount(u int, candidates []graph.VertexID) bool {
	if !e.checkDeadline() {
		return false
	}
	n := uint64(len(candidates))
	for m := e.matMask; m != 0; m &= m - 1 {
		w := trailingZeros32(m)
		if intersect.Contains(candidates, e.assigned[w]) {
			n--
		}
	}
	e.result.Matches += n
	e.result.Nodes += n
	return true
}

func (e *Enumerator) emit() bool {
	e.result.Matches++
	if e.lanes != nil {
		for m := e.alive; m != 0; m &= m - 1 {
			e.laneBuf[bits.TrailingZeros64(m)].Matches++
		}
	}
	if e.visit != nil && !e.visit(e.assigned) {
		e.result.Stopped = true
		return false
	}
	return true
}

// checkDeadline polls the external stop flag and the clock every 8192
// calls; returns false when the run should unwind. The cadence counter
// is dedicated — keying it to Result.Nodes would let tailCount's batch
// increments (Nodes += n) step over the zero residue indefinitely,
// making Stop/TimeLimit latency unbounded under TailCount.
func (e *Enumerator) checkDeadline() bool {
	if e.polls&8191 != 0 {
		e.polls++
		return true
	}
	e.polls++
	if e.Progress != nil {
		e.Progress.Add(1)
	}
	if e.Stop != nil && e.Stop.Load() {
		e.result.Stopped = true
		return false
	}
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		e.err = ErrTimeLimit
		return false
	}
	return true
}

// trailingZeros32 is the math/bits intrinsic (the previous hand-rolled
// O(bits) loop additionally spun forever on 0; TrailingZeros32(0) is 32).
func trailingZeros32(x uint32) int {
	return bits.TrailingZeros32(x)
}
