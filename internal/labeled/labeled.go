// Package labeled extends the enumeration engine to vertex-labeled
// graphs — the setting the paper's Section II-B positions unlabeled
// enumeration inside ("unlabeled subgraph enumeration can be viewed as a
// special case of labeled subgraph enumeration that all vertices have
// the same label"). It supplies what labels add on top of the core
// engine:
//
//   - label-equality candidate filtering, plus the neighborhood label
//     frequency (NLF) filter the paper cites from the labeled-matching
//     literature [5], [9]: φ(u) must have at least as many ℓ-labeled
//     neighbors as u, for every label ℓ;
//   - per-label root candidate lists, so the search starts from the
//     (usually small) label class of the first pattern vertex;
//   - symmetry breaking restricted to label-preserving automorphisms,
//     so each labeled subgraph is still counted exactly once.
//
// The enumeration itself is the unchanged LIGHT machinery: plans,
// lazy materialization, minimum set cover, work stealing.
package labeled

import (
	"fmt"
	"sort"

	"light/internal/engine"
	"light/internal/estimate"
	"light/internal/graph"
	"light/internal/parallel"
	"light/internal/pattern"
	"light/internal/plan"
)

// Label is a vertex label.
type Label = uint16

// Graph is a vertex-labeled data graph with its filtering indexes.
type Graph struct {
	G      *graph.Graph
	Labels []Label

	// byLabel[ℓ] lists the vertices with label ℓ, ascending.
	byLabel map[Label][]graph.VertexID
	// nlf[v] is v's neighborhood label frequency signature: sorted
	// (label, count) pairs.
	nlf [][]labelCount
}

type labelCount struct {
	label Label
	count uint32
}

// NewGraph attaches labels to a data graph and builds the label and NLF
// indexes. labels[v] is the label of vertex v; len(labels) must equal
// the vertex count.
func NewGraph(g *graph.Graph, labels []Label) (*Graph, error) {
	if len(labels) != g.NumVertices() {
		return nil, fmt.Errorf("labeled: %d labels for %d vertices", len(labels), g.NumVertices())
	}
	lg := &Graph{
		G:       g,
		Labels:  labels,
		byLabel: make(map[Label][]graph.VertexID),
		nlf:     make([][]labelCount, g.NumVertices()),
	}
	for v := 0; v < g.NumVertices(); v++ {
		lg.byLabel[labels[v]] = append(lg.byLabel[labels[v]], graph.VertexID(v))
		lg.nlf[v] = signature(labels, g.Neighbors(graph.VertexID(v)))
	}
	return lg, nil
}

// signature builds the sorted (label, count) histogram of the given
// vertices.
func signature(labels []Label, vs []graph.VertexID) []labelCount {
	counts := map[Label]uint32{}
	for _, w := range vs {
		counts[labels[w]]++
	}
	sig := make([]labelCount, 0, len(counts))
	for l, c := range counts {
		sig = append(sig, labelCount{l, c})
	}
	sort.Slice(sig, func(i, j int) bool { return sig[i].label < sig[j].label })
	return sig
}

// VerticesWithLabel returns the ascending vertex list carrying ℓ.
func (g *Graph) VerticesWithLabel(l Label) []graph.VertexID { return g.byLabel[l] }

// Pattern is a vertex-labeled pattern with its per-vertex requirements.
type Pattern struct {
	P      *pattern.Pattern
	Labels []Label

	// required[u] is u's NLF requirement (its pattern-side signature).
	required [][]labelCount
}

// NewPattern attaches labels to a pattern graph.
func NewPattern(p *pattern.Pattern, labels []Label) (*Pattern, error) {
	if len(labels) != p.NumVertices() {
		return nil, fmt.Errorf("labeled: %d labels for %d pattern vertices", len(labels), p.NumVertices())
	}
	lp := &Pattern{P: p, Labels: labels, required: make([][]labelCount, p.NumVertices())}
	for u := 0; u < p.NumVertices(); u++ {
		ns := p.Neighbors(u)
		vs := make([]graph.VertexID, len(ns))
		for i, w := range ns {
			vs[i] = graph.VertexID(w)
		}
		lp.required[u] = signature(labels, vs)
	}
	return lp, nil
}

// Automorphisms returns the label-preserving automorphisms of the
// pattern — the subgroup of Aut(P) that maps every vertex to an
// equally-labeled one.
func (p *Pattern) Automorphisms() [][]pattern.Vertex {
	var out [][]pattern.Vertex
	for _, a := range p.P.Automorphisms() {
		ok := true
		for u, img := range a {
			if p.Labels[u] != p.Labels[img] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, a)
		}
	}
	return out
}

// SymmetryBreaking computes the partial order from the label-preserving
// automorphism subgroup.
func (p *Pattern) SymmetryBreaking() *pattern.PartialOrder {
	return pattern.SymmetryBreakingFromAut(p.P, p.Automorphisms())
}

// nlfSatisfied reports whether have covers need: for every label in
// need, have must carry at least that count. Both are label-sorted.
func nlfSatisfied(have, need []labelCount) bool {
	i := 0
	for _, req := range need {
		for i < len(have) && have[i].label < req.label {
			i++
		}
		if i == len(have) || have[i].label != req.label || have[i].count < req.count {
			return false
		}
	}
	return true
}

// Filter returns the engine filter implementing the label checks for
// this (graph, pattern) pair: label equality, degree, and NLF.
func Filter(g *Graph, p *Pattern) func(u int, v graph.VertexID) bool {
	return func(u int, v graph.VertexID) bool {
		if g.Labels[v] != p.Labels[u] {
			return false
		}
		if g.G.Degree(v) < p.P.Degree(u) {
			return false
		}
		return nlfSatisfied(g.nlf[v], p.required[u])
	}
}

// Options configure a labeled enumeration.
type Options struct {
	Engine  engine.Options
	Workers int
	Mode    plan.Mode // zero value is SE; callers usually want plan.ModeLIGHT
}

// Count returns the number of labeled matches: injective homomorphisms
// that preserve labels, deduplicated over label-preserving
// automorphisms.
func Count(g *Graph, p *Pattern, opts Options) (engine.Result, error) {
	return run(g, p, opts, nil)
}

// Enumerate streams every labeled match to visit.
func Enumerate(g *Graph, p *Pattern, opts Options, visit engine.VisitFunc) (engine.Result, error) {
	return run(g, p, opts, visit)
}

func run(g *Graph, p *Pattern, opts Options, visit engine.VisitFunc) (engine.Result, error) {
	po := p.SymmetryBreaking()
	pl, err := plan.Choose(p.P, po, estimate.Collect(g.G), opts.Mode)
	if err != nil {
		return engine.Result{}, err
	}
	opts.Engine.Filter = Filter(g, p)
	if opts.Workers > 1 {
		res, err := parallel.Run(g.G, pl, parallel.Options{Engine: opts.Engine, Workers: opts.Workers}, visit)
		return res.Result, err
	}
	e := engine.New(g.G, pl, opts.Engine)
	// Root candidates: only the label class of π[1], the cheap pruning
	// labels buy at the top of the search tree.
	roots := g.VerticesWithLabel(p.Labels[pl.Pi[0]])
	return e.RunRoots(roots, visit)
}
